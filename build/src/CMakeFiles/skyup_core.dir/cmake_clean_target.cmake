file(REMOVE_RECURSE
  "libskyup_core.a"
)
