# Empty dependencies file for skyup_core.
# This may be replaced when dependencies are built.
