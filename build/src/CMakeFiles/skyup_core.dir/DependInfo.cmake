
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/join.cc" "src/CMakeFiles/skyup_core.dir/core/join.cc.o" "gcc" "src/CMakeFiles/skyup_core.dir/core/join.cc.o.d"
  "/root/repo/src/core/lower_bounds.cc" "src/CMakeFiles/skyup_core.dir/core/lower_bounds.cc.o" "gcc" "src/CMakeFiles/skyup_core.dir/core/lower_bounds.cc.o.d"
  "/root/repo/src/core/parallel_probing.cc" "src/CMakeFiles/skyup_core.dir/core/parallel_probing.cc.o" "gcc" "src/CMakeFiles/skyup_core.dir/core/parallel_probing.cc.o.d"
  "/root/repo/src/core/planner.cc" "src/CMakeFiles/skyup_core.dir/core/planner.cc.o" "gcc" "src/CMakeFiles/skyup_core.dir/core/planner.cc.o.d"
  "/root/repo/src/core/probing.cc" "src/CMakeFiles/skyup_core.dir/core/probing.cc.o" "gcc" "src/CMakeFiles/skyup_core.dir/core/probing.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/skyup_core.dir/core/report.cc.o" "gcc" "src/CMakeFiles/skyup_core.dir/core/report.cc.o.d"
  "/root/repo/src/core/single_upgrade.cc" "src/CMakeFiles/skyup_core.dir/core/single_upgrade.cc.o" "gcc" "src/CMakeFiles/skyup_core.dir/core/single_upgrade.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skyup_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyup_skyline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyup_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyup_base.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyup_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
