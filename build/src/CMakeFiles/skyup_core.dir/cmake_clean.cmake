file(REMOVE_RECURSE
  "CMakeFiles/skyup_core.dir/core/join.cc.o"
  "CMakeFiles/skyup_core.dir/core/join.cc.o.d"
  "CMakeFiles/skyup_core.dir/core/lower_bounds.cc.o"
  "CMakeFiles/skyup_core.dir/core/lower_bounds.cc.o.d"
  "CMakeFiles/skyup_core.dir/core/parallel_probing.cc.o"
  "CMakeFiles/skyup_core.dir/core/parallel_probing.cc.o.d"
  "CMakeFiles/skyup_core.dir/core/planner.cc.o"
  "CMakeFiles/skyup_core.dir/core/planner.cc.o.d"
  "CMakeFiles/skyup_core.dir/core/probing.cc.o"
  "CMakeFiles/skyup_core.dir/core/probing.cc.o.d"
  "CMakeFiles/skyup_core.dir/core/report.cc.o"
  "CMakeFiles/skyup_core.dir/core/report.cc.o.d"
  "CMakeFiles/skyup_core.dir/core/single_upgrade.cc.o"
  "CMakeFiles/skyup_core.dir/core/single_upgrade.cc.o.d"
  "libskyup_core.a"
  "libskyup_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyup_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
