file(REMOVE_RECURSE
  "libskyup_base.a"
)
