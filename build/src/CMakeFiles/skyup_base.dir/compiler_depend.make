# Empty compiler generated dependencies file for skyup_base.
# This may be replaced when dependencies are built.
