file(REMOVE_RECURSE
  "CMakeFiles/skyup_base.dir/core/cost_function.cc.o"
  "CMakeFiles/skyup_base.dir/core/cost_function.cc.o.d"
  "CMakeFiles/skyup_base.dir/core/dataset.cc.o"
  "CMakeFiles/skyup_base.dir/core/dataset.cc.o.d"
  "CMakeFiles/skyup_base.dir/core/dominance.cc.o"
  "CMakeFiles/skyup_base.dir/core/dominance.cc.o.d"
  "CMakeFiles/skyup_base.dir/core/point.cc.o"
  "CMakeFiles/skyup_base.dir/core/point.cc.o.d"
  "libskyup_base.a"
  "libskyup_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyup_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
