
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_function.cc" "src/CMakeFiles/skyup_base.dir/core/cost_function.cc.o" "gcc" "src/CMakeFiles/skyup_base.dir/core/cost_function.cc.o.d"
  "/root/repo/src/core/dataset.cc" "src/CMakeFiles/skyup_base.dir/core/dataset.cc.o" "gcc" "src/CMakeFiles/skyup_base.dir/core/dataset.cc.o.d"
  "/root/repo/src/core/dominance.cc" "src/CMakeFiles/skyup_base.dir/core/dominance.cc.o" "gcc" "src/CMakeFiles/skyup_base.dir/core/dominance.cc.o.d"
  "/root/repo/src/core/point.cc" "src/CMakeFiles/skyup_base.dir/core/point.cc.o" "gcc" "src/CMakeFiles/skyup_base.dir/core/point.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skyup_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
