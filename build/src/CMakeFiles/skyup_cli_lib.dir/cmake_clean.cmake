file(REMOVE_RECURSE
  "CMakeFiles/skyup_cli_lib.dir/cli/cli.cc.o"
  "CMakeFiles/skyup_cli_lib.dir/cli/cli.cc.o.d"
  "libskyup_cli_lib.a"
  "libskyup_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyup_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
