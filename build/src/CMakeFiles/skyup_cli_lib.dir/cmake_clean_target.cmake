file(REMOVE_RECURSE
  "libskyup_cli_lib.a"
)
