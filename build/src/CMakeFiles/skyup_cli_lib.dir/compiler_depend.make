# Empty compiler generated dependencies file for skyup_cli_lib.
# This may be replaced when dependencies are built.
