file(REMOVE_RECURSE
  "CMakeFiles/skyup_util.dir/util/csv.cc.o"
  "CMakeFiles/skyup_util.dir/util/csv.cc.o.d"
  "CMakeFiles/skyup_util.dir/util/logging.cc.o"
  "CMakeFiles/skyup_util.dir/util/logging.cc.o.d"
  "CMakeFiles/skyup_util.dir/util/random.cc.o"
  "CMakeFiles/skyup_util.dir/util/random.cc.o.d"
  "CMakeFiles/skyup_util.dir/util/stats.cc.o"
  "CMakeFiles/skyup_util.dir/util/stats.cc.o.d"
  "CMakeFiles/skyup_util.dir/util/status.cc.o"
  "CMakeFiles/skyup_util.dir/util/status.cc.o.d"
  "libskyup_util.a"
  "libskyup_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyup_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
