# Empty dependencies file for skyup_util.
# This may be replaced when dependencies are built.
