file(REMOVE_RECURSE
  "libskyup_util.a"
)
