# Empty compiler generated dependencies file for skyup_rtree.
# This may be replaced when dependencies are built.
