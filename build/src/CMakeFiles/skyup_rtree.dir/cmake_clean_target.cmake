file(REMOVE_RECURSE
  "libskyup_rtree.a"
)
