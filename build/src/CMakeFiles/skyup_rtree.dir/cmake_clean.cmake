file(REMOVE_RECURSE
  "CMakeFiles/skyup_rtree.dir/rtree/bulk_load.cc.o"
  "CMakeFiles/skyup_rtree.dir/rtree/bulk_load.cc.o.d"
  "CMakeFiles/skyup_rtree.dir/rtree/mbr.cc.o"
  "CMakeFiles/skyup_rtree.dir/rtree/mbr.cc.o.d"
  "CMakeFiles/skyup_rtree.dir/rtree/rtree.cc.o"
  "CMakeFiles/skyup_rtree.dir/rtree/rtree.cc.o.d"
  "libskyup_rtree.a"
  "libskyup_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyup_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
