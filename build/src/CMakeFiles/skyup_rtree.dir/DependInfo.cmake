
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtree/bulk_load.cc" "src/CMakeFiles/skyup_rtree.dir/rtree/bulk_load.cc.o" "gcc" "src/CMakeFiles/skyup_rtree.dir/rtree/bulk_load.cc.o.d"
  "/root/repo/src/rtree/mbr.cc" "src/CMakeFiles/skyup_rtree.dir/rtree/mbr.cc.o" "gcc" "src/CMakeFiles/skyup_rtree.dir/rtree/mbr.cc.o.d"
  "/root/repo/src/rtree/rtree.cc" "src/CMakeFiles/skyup_rtree.dir/rtree/rtree.cc.o" "gcc" "src/CMakeFiles/skyup_rtree.dir/rtree/rtree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skyup_base.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyup_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
