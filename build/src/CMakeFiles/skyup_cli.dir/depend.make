# Empty dependencies file for skyup_cli.
# This may be replaced when dependencies are built.
