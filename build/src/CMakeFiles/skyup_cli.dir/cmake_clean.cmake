file(REMOVE_RECURSE
  "CMakeFiles/skyup_cli.dir/cli/main.cc.o"
  "CMakeFiles/skyup_cli.dir/cli/main.cc.o.d"
  "skyup_cli"
  "skyup_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyup_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
