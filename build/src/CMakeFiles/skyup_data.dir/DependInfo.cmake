
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/cost_fitting.cc" "src/CMakeFiles/skyup_data.dir/data/cost_fitting.cc.o" "gcc" "src/CMakeFiles/skyup_data.dir/data/cost_fitting.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/CMakeFiles/skyup_data.dir/data/generator.cc.o" "gcc" "src/CMakeFiles/skyup_data.dir/data/generator.cc.o.d"
  "/root/repo/src/data/normalize.cc" "src/CMakeFiles/skyup_data.dir/data/normalize.cc.o" "gcc" "src/CMakeFiles/skyup_data.dir/data/normalize.cc.o.d"
  "/root/repo/src/data/ordinal.cc" "src/CMakeFiles/skyup_data.dir/data/ordinal.cc.o" "gcc" "src/CMakeFiles/skyup_data.dir/data/ordinal.cc.o.d"
  "/root/repo/src/data/wine.cc" "src/CMakeFiles/skyup_data.dir/data/wine.cc.o" "gcc" "src/CMakeFiles/skyup_data.dir/data/wine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skyup_skyline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyup_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyup_base.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyup_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
