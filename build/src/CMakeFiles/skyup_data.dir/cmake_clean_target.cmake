file(REMOVE_RECURSE
  "libskyup_data.a"
)
