file(REMOVE_RECURSE
  "CMakeFiles/skyup_data.dir/data/cost_fitting.cc.o"
  "CMakeFiles/skyup_data.dir/data/cost_fitting.cc.o.d"
  "CMakeFiles/skyup_data.dir/data/generator.cc.o"
  "CMakeFiles/skyup_data.dir/data/generator.cc.o.d"
  "CMakeFiles/skyup_data.dir/data/normalize.cc.o"
  "CMakeFiles/skyup_data.dir/data/normalize.cc.o.d"
  "CMakeFiles/skyup_data.dir/data/ordinal.cc.o"
  "CMakeFiles/skyup_data.dir/data/ordinal.cc.o.d"
  "CMakeFiles/skyup_data.dir/data/wine.cc.o"
  "CMakeFiles/skyup_data.dir/data/wine.cc.o.d"
  "libskyup_data.a"
  "libskyup_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyup_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
