# Empty compiler generated dependencies file for skyup_data.
# This may be replaced when dependencies are built.
