# Empty dependencies file for skyup_skyline.
# This may be replaced when dependencies are built.
