file(REMOVE_RECURSE
  "CMakeFiles/skyup_skyline.dir/skyline/bbs.cc.o"
  "CMakeFiles/skyup_skyline.dir/skyline/bbs.cc.o.d"
  "CMakeFiles/skyup_skyline.dir/skyline/bnl.cc.o"
  "CMakeFiles/skyup_skyline.dir/skyline/bnl.cc.o.d"
  "CMakeFiles/skyup_skyline.dir/skyline/dnc.cc.o"
  "CMakeFiles/skyup_skyline.dir/skyline/dnc.cc.o.d"
  "CMakeFiles/skyup_skyline.dir/skyline/dominating_skyline.cc.o"
  "CMakeFiles/skyup_skyline.dir/skyline/dominating_skyline.cc.o.d"
  "CMakeFiles/skyup_skyline.dir/skyline/sfs.cc.o"
  "CMakeFiles/skyup_skyline.dir/skyline/sfs.cc.o.d"
  "libskyup_skyline.a"
  "libskyup_skyline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyup_skyline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
