file(REMOVE_RECURSE
  "libskyup_skyline.a"
)
