# Empty compiler generated dependencies file for hotel_upgrade.
# This may be replaced when dependencies are built.
