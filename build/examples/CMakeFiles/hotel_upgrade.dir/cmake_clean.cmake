file(REMOVE_RECURSE
  "CMakeFiles/hotel_upgrade.dir/hotel_upgrade.cpp.o"
  "CMakeFiles/hotel_upgrade.dir/hotel_upgrade.cpp.o.d"
  "hotel_upgrade"
  "hotel_upgrade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotel_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
