file(REMOVE_RECURSE
  "CMakeFiles/wine_analysis.dir/wine_analysis.cpp.o"
  "CMakeFiles/wine_analysis.dir/wine_analysis.cpp.o.d"
  "wine_analysis"
  "wine_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wine_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
