# Empty dependencies file for wine_analysis.
# This may be replaced when dependencies are built.
