# Empty dependencies file for progressive_market.
# This may be replaced when dependencies are built.
