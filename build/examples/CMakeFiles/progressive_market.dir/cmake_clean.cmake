file(REMOVE_RECURSE
  "CMakeFiles/progressive_market.dir/progressive_market.cpp.o"
  "CMakeFiles/progressive_market.dir/progressive_market.cpp.o.d"
  "progressive_market"
  "progressive_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/progressive_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
