
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/progressive_market.cpp" "examples/CMakeFiles/progressive_market.dir/progressive_market.cpp.o" "gcc" "examples/CMakeFiles/progressive_market.dir/progressive_market.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skyup_cli_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyup_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyup_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyup_skyline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyup_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyup_base.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyup_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
