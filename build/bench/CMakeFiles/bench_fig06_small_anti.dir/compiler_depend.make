# Empty compiler generated dependencies file for bench_fig06_small_anti.
# This may be replaced when dependencies are built.
