file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_small_anti.dir/bench_fig06_small_anti.cc.o"
  "CMakeFiles/bench_fig06_small_anti.dir/bench_fig06_small_anti.cc.o.d"
  "bench_fig06_small_anti"
  "bench_fig06_small_anti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_small_anti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
