file(REMOVE_RECURSE
  "libskyup_bench_common.a"
)
