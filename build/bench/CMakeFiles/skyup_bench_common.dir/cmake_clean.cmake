file(REMOVE_RECURSE
  "CMakeFiles/skyup_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/skyup_bench_common.dir/bench_common.cc.o.d"
  "CMakeFiles/skyup_bench_common.dir/figure_suites.cc.o"
  "CMakeFiles/skyup_bench_common.dir/figure_suites.cc.o.d"
  "libskyup_bench_common.a"
  "libskyup_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyup_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
