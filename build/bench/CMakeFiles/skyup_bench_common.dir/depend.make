# Empty dependencies file for skyup_bench_common.
# This may be replaced when dependencies are built.
