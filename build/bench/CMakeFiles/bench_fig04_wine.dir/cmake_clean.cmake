file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_wine.dir/bench_fig04_wine.cc.o"
  "CMakeFiles/bench_fig04_wine.dir/bench_fig04_wine.cc.o.d"
  "bench_fig04_wine"
  "bench_fig04_wine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_wine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
