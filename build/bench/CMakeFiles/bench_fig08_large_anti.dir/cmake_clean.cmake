file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_large_anti.dir/bench_fig08_large_anti.cc.o"
  "CMakeFiles/bench_fig08_large_anti.dir/bench_fig08_large_anti.cc.o.d"
  "bench_fig08_large_anti"
  "bench_fig08_large_anti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_large_anti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
