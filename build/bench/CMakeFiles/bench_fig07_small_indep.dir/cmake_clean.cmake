file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_small_indep.dir/bench_fig07_small_indep.cc.o"
  "CMakeFiles/bench_fig07_small_indep.dir/bench_fig07_small_indep.cc.o.d"
  "bench_fig07_small_indep"
  "bench_fig07_small_indep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_small_indep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
