# Empty compiler generated dependencies file for bench_fig07_small_indep.
# This may be replaced when dependencies are built.
