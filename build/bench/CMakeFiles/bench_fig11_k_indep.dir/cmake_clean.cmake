file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_k_indep.dir/bench_fig11_k_indep.cc.o"
  "CMakeFiles/bench_fig11_k_indep.dir/bench_fig11_k_indep.cc.o.d"
  "bench_fig11_k_indep"
  "bench_fig11_k_indep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_k_indep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
