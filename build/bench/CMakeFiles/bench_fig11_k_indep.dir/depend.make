# Empty dependencies file for bench_fig11_k_indep.
# This may be replaced when dependencies are built.
