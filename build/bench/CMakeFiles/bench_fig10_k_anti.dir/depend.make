# Empty dependencies file for bench_fig10_k_anti.
# This may be replaced when dependencies are built.
