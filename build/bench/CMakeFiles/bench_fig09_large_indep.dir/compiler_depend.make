# Empty compiler generated dependencies file for bench_fig09_large_indep.
# This may be replaced when dependencies are built.
