# Empty dependencies file for bench_fig05_wine_k.
# This may be replaced when dependencies are built.
