file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_wine_k.dir/bench_fig05_wine_k.cc.o"
  "CMakeFiles/bench_fig05_wine_k.dir/bench_fig05_wine_k.cc.o.d"
  "bench_fig05_wine_k"
  "bench_fig05_wine_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_wine_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
