# Empty compiler generated dependencies file for dominating_skyline_test.
# This may be replaced when dependencies are built.
