file(REMOVE_RECURSE
  "CMakeFiles/dominating_skyline_test.dir/dominating_skyline_test.cc.o"
  "CMakeFiles/dominating_skyline_test.dir/dominating_skyline_test.cc.o.d"
  "dominating_skyline_test"
  "dominating_skyline_test.pdb"
  "dominating_skyline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dominating_skyline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
