file(REMOVE_RECURSE
  "CMakeFiles/parallel_probing_test.dir/parallel_probing_test.cc.o"
  "CMakeFiles/parallel_probing_test.dir/parallel_probing_test.cc.o.d"
  "parallel_probing_test"
  "parallel_probing_test.pdb"
  "parallel_probing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_probing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
