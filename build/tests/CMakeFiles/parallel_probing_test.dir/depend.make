# Empty dependencies file for parallel_probing_test.
# This may be replaced when dependencies are built.
