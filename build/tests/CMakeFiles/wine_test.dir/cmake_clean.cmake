file(REMOVE_RECURSE
  "CMakeFiles/wine_test.dir/wine_test.cc.o"
  "CMakeFiles/wine_test.dir/wine_test.cc.o.d"
  "wine_test"
  "wine_test.pdb"
  "wine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
