# Empty compiler generated dependencies file for wine_test.
# This may be replaced when dependencies are built.
