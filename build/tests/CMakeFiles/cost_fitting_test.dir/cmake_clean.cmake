file(REMOVE_RECURSE
  "CMakeFiles/cost_fitting_test.dir/cost_fitting_test.cc.o"
  "CMakeFiles/cost_fitting_test.dir/cost_fitting_test.cc.o.d"
  "cost_fitting_test"
  "cost_fitting_test.pdb"
  "cost_fitting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_fitting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
