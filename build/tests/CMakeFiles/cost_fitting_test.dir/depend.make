# Empty dependencies file for cost_fitting_test.
# This may be replaced when dependencies are built.
