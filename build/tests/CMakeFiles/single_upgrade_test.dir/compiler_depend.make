# Empty compiler generated dependencies file for single_upgrade_test.
# This may be replaced when dependencies are built.
