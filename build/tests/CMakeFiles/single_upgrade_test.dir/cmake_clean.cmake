file(REMOVE_RECURSE
  "CMakeFiles/single_upgrade_test.dir/single_upgrade_test.cc.o"
  "CMakeFiles/single_upgrade_test.dir/single_upgrade_test.cc.o.d"
  "single_upgrade_test"
  "single_upgrade_test.pdb"
  "single_upgrade_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_upgrade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
