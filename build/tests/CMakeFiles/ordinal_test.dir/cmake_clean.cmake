file(REMOVE_RECURSE
  "CMakeFiles/ordinal_test.dir/ordinal_test.cc.o"
  "CMakeFiles/ordinal_test.dir/ordinal_test.cc.o.d"
  "ordinal_test"
  "ordinal_test.pdb"
  "ordinal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordinal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
