# Empty compiler generated dependencies file for ordinal_test.
# This may be replaced when dependencies are built.
