# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/status_test[1]_include.cmake")
include("/root/repo/build/tests/random_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/dominance_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_test[1]_include.cmake")
include("/root/repo/build/tests/cost_function_test[1]_include.cmake")
include("/root/repo/build/tests/mbr_test[1]_include.cmake")
include("/root/repo/build/tests/rtree_test[1]_include.cmake")
include("/root/repo/build/tests/skyline_test[1]_include.cmake")
include("/root/repo/build/tests/dominating_skyline_test[1]_include.cmake")
include("/root/repo/build/tests/single_upgrade_test[1]_include.cmake")
include("/root/repo/build/tests/lower_bounds_test[1]_include.cmake")
include("/root/repo/build/tests/probing_test[1]_include.cmake")
include("/root/repo/build/tests/join_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/generator_test[1]_include.cmake")
include("/root/repo/build/tests/normalize_test[1]_include.cmake")
include("/root/repo/build/tests/wine_test[1]_include.cmake")
include("/root/repo/build/tests/equivalence_property_test[1]_include.cmake")
include("/root/repo/build/tests/ordinal_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_probing_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/cost_fitting_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/integration_stress_test[1]_include.cmake")
