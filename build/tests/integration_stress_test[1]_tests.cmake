add_test([=[IntegrationStressTest.AllSurfacesAgreeOnRandomWorkloads]=]  /root/repo/build/tests/integration_stress_test [==[--gtest_filter=IntegrationStressTest.AllSurfacesAgreeOnRandomWorkloads]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[IntegrationStressTest.AllSurfacesAgreeOnRandomWorkloads]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  integration_stress_test_TESTS IntegrationStressTest.AllSurfacesAgreeOnRandomWorkloads)
