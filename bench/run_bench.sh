#!/usr/bin/env sh
# Runs the micro-benchmark suite and records the result as JSON at the
# repository root (BENCH_topk.json). The file captures the probe hot path
# both ways — pointer/scalar baseline (BM_DominatingSkylineProbe,
# BM_TopKImprovedProbing) and flat/batched (BM_*Flat) — so the speedup of
# the arena + SIMD path is reproducible from one artifact.
#
# Usage: bench/run_bench.sh [--smoke] [build-dir] [output-file]
# Defaults: build-dir = ./build, output-file = ./BENCH_topk.json.
# The CMake target `run_bench` invokes this with its own build dir.
#
# --smoke: CI mode. Every registered benchmark runs for a minimal time
# (one repetition, ~10ms each) purely to prove the bench binary and its
# data generators still execute; results go to stdout and NO json file is
# written, so a CI run can never clobber the committed baseline.
set -eu

smoke=0
if [ "${1:-}" = "--smoke" ]; then
  smoke=1
  shift
fi

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
out_file=${2:-"$repo_root/BENCH_topk.json"}
bench_bin="$build_dir/bench/bench_micro"

if [ ! -x "$bench_bin" ]; then
  echo "error: $bench_bin not found or not executable." >&2
  echo "Build it first: cmake --build $build_dir --target bench_micro" >&2
  exit 1
fi

if [ "$smoke" = 1 ]; then
  "$bench_bin" \
    --benchmark_min_time=0.01 \
    --benchmark_repetitions=1
  echo "bench smoke: OK (no json written)"
  exit 0
fi

"$bench_bin" \
  --benchmark_filter='BM_DominatingSkylineProbe|BM_TopKImprovedProbing$|BM_TopKImprovedProbingFlat|BM_FilterDominatedKernel|BM_DominatesAnyKernel' \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out="$out_file" \
  --benchmark_out_format=json

# Phase attribution: run one representative sharded top-k query through
# the CLI with telemetry on and fold the per-phase seconds + latency
# percentiles into the benchmark artifact under "phase_profile", so a
# BENCH_topk.json regression diff also shows WHERE the time moved.
cli_bin="$build_dir/src/skyup_cli"
if [ -x "$cli_bin" ]; then
  workdir=$(mktemp -d)
  trap 'rm -rf "$workdir"' EXIT
  "$cli_bin" generate --out="$workdir/P.csv" --count=20000 --dims=3 \
    --dist=anti --seed=7
  "$cli_bin" generate --out="$workdir/T.csv" --count=2000 --dims=3 \
    --dist=indep --seed=11
  "$cli_bin" topk --competitors="$workdir/P.csv" \
    --products="$workdir/T.csv" --k=50 --algorithm=improved --threads=4 \
    --metrics-out="$workdir/metrics.json" >/dev/null
  python3 - "$out_file" "$workdir/metrics.json" <<'EOF'
import json, sys
out_path, metrics_path = sys.argv[1], sys.argv[2]
with open(out_path) as f:
    bench = json.load(f)
with open(metrics_path) as f:
    metrics = json.load(f)
gauges = metrics.get("gauges", {})
bench["phase_profile"] = {
    "workload": "anti 20000x2000 d=3 k=50 improved threads=4",
    "phase_seconds": {
        name.replace("skyup_phase_", "").replace("_seconds", ""): value
        for name, value in gauges.items()
        if name.startswith("skyup_phase_")
    },
    "wall_seconds": gauges.get("skyup_query_wall_seconds"),
    "shards": gauges.get("skyup_query_shards"),
    "latency": {
        name.replace("skyup_", "").replace("_seconds", ""): {
            k: histogram.get(k) for k in ("count", "p50", "p95", "p99")
        }
        for name, histogram in metrics.get("histograms", {}).items()
        if name.endswith("_latency_seconds")
    },
}
with open(out_path, "w") as f:
    json.dump(bench, f, indent=1)
    f.write("\n")
print("merged phase profile into", out_path)
EOF
else
  echo "note: $cli_bin not built; phase_profile section skipped" >&2
fi

echo "wrote $out_file"
