#!/usr/bin/env sh
# Runs the micro-benchmark suite and records the result as JSON at the
# repository root (BENCH_topk.json). The file captures the probe hot path
# both ways — pointer/scalar baseline (BM_DominatingSkylineProbe,
# BM_TopKImprovedProbing) and flat/batched (BM_*Flat) — so the speedup of
# the arena + SIMD path is reproducible from one artifact.
#
# Usage: bench/run_bench.sh [--smoke] [build-dir] [output-file]
# Defaults: build-dir = ./build, output-file = ./BENCH_topk.json.
# The CMake target `run_bench` invokes this with its own build dir.
#
# --smoke: CI mode. Every registered benchmark runs for a minimal time
# (one repetition, ~10ms each) purely to prove the bench binary and its
# data generators still execute; results go to stdout and NO json file is
# written, so a CI run can never clobber the committed baseline.
set -eu

smoke=0
if [ "${1:-}" = "--smoke" ]; then
  smoke=1
  shift
fi

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
out_file=${2:-"$repo_root/BENCH_topk.json"}
bench_bin="$build_dir/bench/bench_micro"

if [ ! -x "$bench_bin" ]; then
  echo "error: $bench_bin not found or not executable." >&2
  echo "Build it first: cmake --build $build_dir --target bench_micro" >&2
  exit 1
fi

if [ "$smoke" = 1 ]; then
  "$bench_bin" \
    --benchmark_min_time=0.01 \
    --benchmark_repetitions=1
  echo "bench smoke: OK (no json written)"
  exit 0
fi

"$bench_bin" \
  --benchmark_filter='BM_DominatingSkylineProbe|BM_TopKImprovedProbing$|BM_TopKImprovedProbingFlat|BM_FilterDominatedKernel|BM_DominatesAnyKernel' \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out="$out_file" \
  --benchmark_out_format=json

echo "wrote $out_file"
