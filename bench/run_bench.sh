#!/usr/bin/env sh
# Runs the micro-benchmark suite and records the result as JSON at the
# repository root (BENCH_topk.json). The file captures the probe hot path
# both ways — pointer/scalar baseline (BM_DominatingSkylineProbe,
# BM_TopKImprovedProbing) and flat/batched (BM_*Flat) — so the speedup of
# the arena + SIMD path is reproducible from one artifact.
#
# Usage: bench/run_bench.sh [--smoke|--serve|--load|--shard] [build-dir]
#        [output-file]
# Defaults: build-dir = ./build, output-file = ./BENCH_topk.json.
# The CMake target `run_bench` invokes this with its own build dir.
#
# --smoke: CI mode. Every registered benchmark runs for a minimal time
# (one repetition, ~10ms each) purely to prove the bench binary and its
# data generators still execute; results go to stdout and NO json file is
# written, so a CI run can never clobber the committed baseline.
#
# --serve: serving-layer section only. Replays a generated update+query
# workload through `skyup_cli serve --replay` (deterministic mode) and
# folds update throughput + query-latency percentiles under churn into
# BENCH_topk.json["serve"], leaving every other section untouched.
#
# --load: closed-loop saturation section. Runs `skyup_cli serve
# --load-gen` twice against the same workload shape — amortization OFF
# (--batch-max=1 --memo-cache-mb=0) and ON (--batch-max=32
# --memo-cache-mb=64) — and folds both reports plus the QPS-per-core and
# p99 improvement factors into BENCH_topk.json["load"].
#
# --shard: shard-per-core saturation A/B. Runs the same closed-loop
# workload against the single-table server and against --shards=<cores>
# (scatter-gather workers = cores), and folds both reports plus the
# sharded/unsharded QPS and p99 factors — with the shard count and
# partitioner kind recorded — into BENCH_topk.json["shard"].
#
# Provenance: every mode that writes BENCH_topk.json refuses to run
# against a non-Release build directory (numbers from -O0/debug builds
# have poisoned committed baselines before). --smoke is exempt — it
# writes nothing.
set -eu

smoke=0
serve=0
load=0
shard=0
if [ "${1:-}" = "--smoke" ]; then
  smoke=1
  shift
elif [ "${1:-}" = "--serve" ]; then
  serve=1
  shift
elif [ "${1:-}" = "--load" ]; then
  load=1
  shift
elif [ "${1:-}" = "--shard" ]; then
  shard=1
  shift
fi

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
out_file=${2:-"$repo_root/BENCH_topk.json"}
bench_bin="$build_dir/bench/bench_micro"

if [ "$smoke" != 1 ]; then
  build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[A-Z]*=//p' \
    "$build_dir/CMakeCache.txt" 2>/dev/null || true)
  if [ "$build_type" != "Release" ]; then
    echo "error: refusing to write benchmark JSON from a non-Release" \
      "build (CMAKE_BUILD_TYPE='${build_type:-unknown}' in" \
      "$build_dir/CMakeCache.txt)." >&2
    echo "Configure with -DCMAKE_BUILD_TYPE=Release, or use --smoke" \
      "(which writes no JSON)." >&2
    exit 1
  fi
fi

if [ "$serve" = 1 ]; then
  cli_bin="$build_dir/src/skyup_cli"
  if [ ! -x "$cli_bin" ]; then
    echo "error: $cli_bin not found or not executable." >&2
    echo "Build it first: cmake --build $build_dir --target skyup_cli" >&2
    exit 1
  fi
  workdir=$(mktemp -d)
  trap 'rm -rf "$workdir"' EXIT
  # A churn-heavy mix (the generator interleaves ~73% updates with
  # queries) at 20k ops: every query runs against a live backlog, so the
  # p99 below is latency *under churn*, not steady-state.
  "$cli_bin" serve --gen-ops="$workdir/ops.csv" --ops=20000 --dims=3 \
    --seed=42
  "$cli_bin" serve --replay="$workdir/ops.csv" \
    --out="$workdir/results.txt" --metrics-out="$workdir/metrics.json" \
    2> "$workdir/summary.txt"
  cat "$workdir/summary.txt"
  python3 - "$out_file" "$workdir/metrics.json" "$workdir/summary.txt" <<'EOF'
import json, re, sys
out_path, metrics_path, summary_path = sys.argv[1], sys.argv[2], sys.argv[3]
try:
    with open(out_path) as f:
        bench = json.load(f)
except FileNotFoundError:
    bench = {}
with open(metrics_path) as f:
    metrics = json.load(f)
wall_us = int(re.search(r"in (\d+) us", open(summary_path).read()).group(1))
counters = metrics.get("counters", {})
gauges = metrics.get("gauges", {})
updates = counters.get("skyup_serve_updates_applied_total", 0)
latency = metrics.get("histograms", {}).get(
    "skyup_serve_query_latency_seconds", {})
bench["serve"] = {
    "workload": "generated seed=42 ops=20000 dims=3, deterministic replay",
    "wall_seconds": wall_us / 1e6,
    "updates_applied": updates,
    "update_throughput_per_s": updates / (wall_us / 1e6) if wall_us else None,
    "queries_executed": counters.get("skyup_serve_queries_executed_total"),
    "rebuilds_published": counters.get("skyup_serve_rebuilds_published_total"),
    "patches_published": counters.get("skyup_serve_patches_published_total"),
    "erase_fallback_scans": counters.get(
        "skyup_serve_erase_fallback_scans_total"),
    "candidates_pruned": counters.get("skyup_serve_candidates_pruned_total"),
    "prune_disabled_queries": counters.get(
        "skyup_serve_prune_disabled_queries_total"),
    "cache_hits": counters.get("skyup_serve_cache_hits_total"),
    "cache_misses": counters.get("skyup_serve_cache_misses_total"),
    "memo_hits": counters.get("skyup_serve_memo_hits_total"),
    "memo_misses": counters.get("skyup_serve_memo_misses_total"),
    "batches_executed": counters.get("skyup_serve_batches_executed_total"),
    "final_epoch": gauges.get("skyup_serve_snapshot_epoch"),
    "final_backlog_ops": gauges.get("skyup_serve_delta_backlog_ops"),
    "query_latency": {
        k: latency.get(k) for k in ("count", "p50", "p95", "p99")
    },
}
with open(out_path, "w") as f:
    json.dump(bench, f, indent=1)
    f.write("\n")
print("merged serve section into", out_path)
EOF
  # Flight-recorder overhead: the same deterministic replay, recorder on
  # (the always-on default) vs --flight-recorder=off, best-of-5 wall time
  # each — min-of-N is the standard estimator for a bimodal-noise floor.
  # The top-level CMakeLists compiles Release with -falign-functions=64
  # precisely so this A/B delta measures the recorder, not the code
  # layout shift from the disabled branch. Acceptance budget: <= 2%.
  trials=5
  i=1
  while [ "$i" -le "$trials" ]; do
    "$cli_bin" serve --replay="$workdir/ops.csv" \
      --out="$workdir/results_on.txt" 2> "$workdir/rec_on_$i.txt"
    "$cli_bin" serve --replay="$workdir/ops.csv" --flight-recorder=off \
      --out="$workdir/results_off.txt" 2> "$workdir/rec_off_$i.txt"
    i=$((i + 1))
  done
  # Determinism guard at bench level: the recorder is observe-only, so
  # the result log must be byte-identical with it on or off.
  cmp "$workdir/results_on.txt" "$workdir/results_off.txt"
  python3 - "$out_file" "$workdir" "$trials" <<'EOF'
import json, re, sys
out_path, workdir, trials = sys.argv[1], sys.argv[2], int(sys.argv[3])

def best_us(prefix):
    walls = []
    for i in range(1, trials + 1):
        with open(f"{workdir}/{prefix}_{i}.txt") as f:
            walls.append(int(re.search(r"in (\d+) us", f.read()).group(1)))
    return min(walls), walls

on_best, on_all = best_us("rec_on")
off_best, off_all = best_us("rec_off")
overhead_pct = 100.0 * (on_best - off_best) / off_best if off_best else None
with open(out_path) as f:
    bench = json.load(f)
bench["obs_overhead"] = {
    "workload": "generated seed=42 ops=20000 dims=3, deterministic replay",
    "methodology": ("best-of-%d wall time, recorder on (default) vs "
                    "--flight-recorder=off; Release built with "
                    "-falign-functions=64 to pin code layout; result "
                    "logs cmp-identical" % trials),
    "recorder_on_best_us": on_best,
    "recorder_off_best_us": off_best,
    "recorder_on_trials_us": on_all,
    "recorder_off_trials_us": off_all,
    "overhead_pct": overhead_pct,
    "budget_pct": 2.0,
}
with open(out_path, "w") as f:
    json.dump(bench, f, indent=1)
    f.write("\n")
print("merged obs_overhead into %s: %.2f%% (budget 2%%)"
      % (out_path, overhead_pct or 0.0))
EOF
  exit 0
fi

if [ "$load" = 1 ]; then
  cli_bin="$build_dir/src/skyup_cli"
  if [ ! -x "$cli_bin" ]; then
    echo "error: $cli_bin not found or not executable." >&2
    echo "Build it first: cmake --build $build_dir --target skyup_cli" >&2
    exit 1
  fi
  workdir=$(mktemp -d)
  trap 'rm -rf "$workdir"' EXIT
  # Saturation (unpaced closed loop): more clients than workers so the
  # queue actually forms — grouped execution only amortizes work the
  # queue presents to it. Identical shape both runs; only the
  # amortization knobs differ.
  common="--dims=3 --duration=10 --clients=16 --threads=2 \
    --preload-p=30000 --preload-t=1500 --query-fraction=0.9 --k=10 \
    --rebuild-threshold=1024 --seed=42"
  echo "load-gen baseline (batch-max=1, memo off) ..."
  # shellcheck disable=SC2086
  "$cli_bin" serve --load-gen $common --batch-max=1 --memo-cache-mb=0 \
    --out="$workdir/base.json"
  echo "load-gen amortized (batch-max=32, memo 64MB) ..."
  # shellcheck disable=SC2086
  "$cli_bin" serve --load-gen $common --batch-max=32 --memo-cache-mb=64 \
    --out="$workdir/amortized.json"
  python3 - "$out_file" "$workdir/base.json" "$workdir/amortized.json" <<'EOF'
import json, sys
out_path, base_path, amortized_path = sys.argv[1], sys.argv[2], sys.argv[3]
try:
    with open(out_path) as f:
        bench = json.load(f)
except FileNotFoundError:
    bench = {}
with open(base_path) as f:
    base = json.load(f)
with open(amortized_path) as f:
    amortized = json.load(f)
qps_x = (amortized["achieved_qps_per_core"] / base["achieved_qps_per_core"]
         if base["achieved_qps_per_core"] else None)
p99_x = (base["latency_p99_seconds"] / amortized["latency_p99_seconds"]
         if amortized["latency_p99_seconds"] else None)
bench["load"] = {
    "workload": ("closed-loop saturation: 16 clients over 2 workers, "
                 "P=30000 T=1500 d=3 k=10, 90% queries, 10 s, seed=42"),
    "baseline": base,
    "amortized": amortized,
    "qps_per_core_improvement": qps_x,
    "p99_improvement": p99_x,
}
with open(out_path, "w") as f:
    json.dump(bench, f, indent=1)
    f.write("\n")
print("merged load section into", out_path)
print("qps/core improvement: %.2fx, p99 improvement: %.2fx"
      % (qps_x or 0.0, p99_x or 0.0))
EOF
  exit 0
fi

if [ "$shard" = 1 ]; then
  cli_bin="$build_dir/src/skyup_cli"
  if [ ! -x "$cli_bin" ]; then
    echo "error: $cli_bin not found or not executable." >&2
    echo "Build it first: cmake --build $build_dir --target skyup_cli" >&2
    exit 1
  fi
  workdir=$(mktemp -d)
  trap 'rm -rf "$workdir"' EXIT
  cores=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
  shards=$cores
  # Floor of 4: on tiny containers a 1-shard "sharded" run would A/B
  # nothing; 4 shards still exercises routing + scatter-gather (the
  # partition is correct on any core count, only the speedup needs
  # cores).
  [ "$shards" -lt 4 ] && shards=4
  # Saturation shape tuned for raw QPS (small k, memo+batching on, big
  # client fleet): the A/B isolates sharding — identical knobs except
  # --shards. The unsharded run gives the single-table worker pool the
  # same core budget the sharded run spends on shard workers, so the
  # comparison is cores-for-cores.
  common="--dims=3 --duration=10 --clients=32 --query-fraction=0.95 \
    --k=5 --preload-p=30000 --preload-t=1500 --rebuild-threshold=2048 \
    --batch-max=32 --memo-cache-mb=64 --seed=42"
  echo "shard A/B baseline (single table, threads=$cores) ..."
  # shellcheck disable=SC2086
  "$cli_bin" serve --load-gen $common --threads="$cores" --shards=0 \
    --out="$workdir/single.json"
  echo "shard A/B sharded (shards=$shards, $cores shard workers) ..."
  # Shard workers = cores (the shard-per-core deployment shape): with
  # fewer cores than shards, spawning one worker per shard would only
  # oversubscribe; ParallelFor folds multiple shards into each worker.
  # shellcheck disable=SC2086
  "$cli_bin" serve --load-gen $common --threads="$cores" \
    --shards="$shards" --shard-threads="$cores" \
    --out="$workdir/sharded.json"
  python3 - "$out_file" "$workdir/single.json" "$workdir/sharded.json" \
    "$shards" <<'EOF'
import json, sys
out_path, single_path, sharded_path = sys.argv[1], sys.argv[2], sys.argv[3]
shards = int(sys.argv[4])
try:
    with open(out_path) as f:
        bench = json.load(f)
except FileNotFoundError:
    bench = {}
with open(single_path) as f:
    single = json.load(f)
with open(sharded_path) as f:
    sharded = json.load(f)
qps_x = (sharded["achieved_qps"] / single["achieved_qps"]
         if single["achieved_qps"] else None)
p99_x = (single["latency_p99_seconds"] / sharded["latency_p99_seconds"]
         if sharded["latency_p99_seconds"] else None)
bench["shard"] = {
    "workload": ("closed-loop saturation: 32 clients, P=30000 T=1500 d=3 "
                 "k=5, 95% queries, 10 s, seed=42; same core budget both "
                 "runs"),
    "shards": shards,
    "partitioner": "str-tiles",
    "single_table": single,
    "sharded": sharded,
    "qps_improvement": qps_x,
    "p99_improvement": p99_x,
}
with open(out_path, "w") as f:
    json.dump(bench, f, indent=1)
    f.write("\n")
print("merged shard section into", out_path)
print("sharded %.0f qps vs single-table %.0f qps (%.2fx), p99 %.2fx"
      % (sharded["achieved_qps"], single["achieved_qps"],
         qps_x or 0.0, p99_x or 0.0))
EOF
  exit 0
fi

if [ ! -x "$bench_bin" ]; then
  echo "error: $bench_bin not found or not executable." >&2
  echo "Build it first: cmake --build $build_dir --target bench_micro" >&2
  exit 1
fi

if [ "$smoke" = 1 ]; then
  "$bench_bin" \
    --benchmark_min_time=0.01 \
    --benchmark_repetitions=1
  echo "bench smoke: OK (no json written)"
  exit 0
fi

"$bench_bin" \
  --benchmark_filter='BM_DominatingSkylineProbe|BM_TopKImprovedProbing$|BM_TopKImprovedProbingFlat|BM_FilterDominatedKernel|BM_DominatesAnyKernel' \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out="$out_file" \
  --benchmark_out_format=json

# Phase attribution: run one representative sharded top-k query through
# the CLI with telemetry on and fold the per-phase seconds + latency
# percentiles into the benchmark artifact under "phase_profile", so a
# BENCH_topk.json regression diff also shows WHERE the time moved.
cli_bin="$build_dir/src/skyup_cli"
if [ -x "$cli_bin" ]; then
  workdir=$(mktemp -d)
  trap 'rm -rf "$workdir"' EXIT
  "$cli_bin" generate --out="$workdir/P.csv" --count=20000 --dims=3 \
    --dist=anti --seed=7
  "$cli_bin" generate --out="$workdir/T.csv" --count=2000 --dims=3 \
    --dist=indep --seed=11
  "$cli_bin" topk --competitors="$workdir/P.csv" \
    --products="$workdir/T.csv" --k=50 --algorithm=improved --threads=4 \
    --metrics-out="$workdir/metrics.json" >/dev/null
  python3 - "$out_file" "$workdir/metrics.json" <<'EOF'
import json, sys
out_path, metrics_path = sys.argv[1], sys.argv[2]
with open(out_path) as f:
    bench = json.load(f)
with open(metrics_path) as f:
    metrics = json.load(f)
gauges = metrics.get("gauges", {})
bench["phase_profile"] = {
    "workload": "anti 20000x2000 d=3 k=50 improved threads=4",
    "phase_seconds": {
        name.replace("skyup_phase_", "").replace("_seconds", ""): value
        for name, value in gauges.items()
        if name.startswith("skyup_phase_")
    },
    "wall_seconds": gauges.get("skyup_query_wall_seconds"),
    "shards": gauges.get("skyup_query_shards"),
    "latency": {
        name.replace("skyup_", "").replace("_seconds", ""): {
            k: histogram.get(k) for k in ("count", "p50", "p95", "p99")
        }
        for name, histogram in metrics.get("histograms", {}).items()
        if name.endswith("_latency_seconds")
    },
}
with open(out_path, "w") as f:
    json.dump(bench, f, indent=1)
    f.write("\n")
print("merged phase profile into", out_path)
EOF
else
  echo "note: $cli_bin not built; phase_profile section skipped" >&2
fi

echo "wrote $out_file"
