#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "util/logging.h"
#include "util/timer.h"

namespace skyup {
namespace bench {

BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--scale=", 8) == 0) {
      args.scale = std::atof(a + 8);
    } else if (std::strncmp(a, "--repeats=", 10) == 0) {
      args.repeats = static_cast<size_t>(std::atoll(a + 10));
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      args.seed = static_cast<uint64_t>(std::atoll(a + 7));
    } else if (std::strncmp(a, "--probe-cap=", 12) == 0) {
      args.probe_cap = static_cast<size_t>(std::atoll(a + 12));
    } else if (std::strcmp(a, "--help") == 0) {
      std::printf(
          "options: --scale=<f> --repeats=<n> --seed=<n> --probe-cap=<n>\n"
          "  --scale=1 reproduces the paper's full cardinalities\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option '%s' (see --help)\n", a);
      std::exit(2);
    }
  }
  if (args.scale <= 0.0 || args.scale > 1.0) {
    std::fprintf(stderr, "--scale must be in (0, 1]\n");
    std::exit(2);
  }
  if (args.repeats == 0) args.repeats = 1;
  return args;
}

size_t Scaled(size_t paper_value, double scale, size_t min_value) {
  const size_t scaled = static_cast<size_t>(
      static_cast<double>(paper_value) * scale);
  return std::max(scaled, std::min(min_value, paper_value));
}

double TimeMillis(const std::function<void()>& fn) {
  Timer timer;
  fn();
  return timer.ElapsedMillis();
}

double MedianMillis(const std::function<void()>& fn, size_t repeats) {
  std::vector<double> samples;
  samples.reserve(repeats);
  for (size_t i = 0; i < repeats; ++i) samples.push_back(TimeMillis(fn));
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

std::string Ms(double millis) {
  char buf[32];
  if (millis < 10.0) {
    std::snprintf(buf, sizeof(buf), "%.2f", millis);
  } else if (millis < 100.0) {
    std::snprintf(buf, sizeof(buf), "%.1f", millis);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", millis);
  }
  return buf;
}

Table::Table(std::vector<std::string> headers, size_t width) : width_(width) {
  Row(headers);
  std::string rule;
  for (size_t i = 0; i < headers.size(); ++i) {
    rule += std::string(width_ - 2, '-') + "  ";
  }
  std::printf("%s\n", rule.c_str());
}

void Table::Row(const std::vector<std::string>& cells) {
  std::string line;
  for (const std::string& cell : cells) {
    line += cell;
    if (cell.size() < width_) line += std::string(width_ - cell.size(), ' ');
  }
  std::printf("%s\n", line.c_str());
  std::fflush(stdout);
}

Workload BuildSynthetic(size_t np, size_t nt, size_t dims,
                        Distribution distribution, uint64_t seed,
                        size_t fanout) {
  Result<Dataset> p = GenerateCompetitors(np, dims, distribution, seed);
  Result<Dataset> t = GenerateProducts(nt, dims, distribution, seed + 1);
  SKYUP_CHECK(p.ok() && t.ok());
  return BuildFrom(std::move(p).value(), std::move(t).value(), fanout);
}

Workload BuildFrom(Dataset competitors, Dataset products, size_t fanout) {
  Workload w;
  w.competitors = std::make_unique<Dataset>(std::move(competitors));
  w.products = std::make_unique<Dataset>(std::move(products));
  RTree::Options options;
  options.max_entries = fanout;
  Result<RTree> rp = RTree::BulkLoad(*w.competitors, options);
  Result<RTree> rt = RTree::BulkLoad(*w.products, options);
  SKYUP_CHECK(rp.ok() && rt.ok());
  w.rp = std::make_unique<RTree>(std::move(rp).value());
  w.rt = std::make_unique<RTree>(std::move(rt).value());
  return w;
}

namespace {

// A product subset for capped probing runs: the first `cap` rows.
Dataset Head(const Dataset& ds, size_t cap) {
  Dataset out(ds.dims());
  const size_t n = std::min(cap, ds.size());
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) out.Add(ds.data(static_cast<PointId>(i)));
  return out;
}

}  // namespace

double RunTopK(const Workload& w, const ProductCostFunction& cost_fn,
               Algorithm algorithm, size_t k, LowerBoundKind kind,
               BoundMode mode, size_t probe_cap, bool* extrapolated) {
  if (extrapolated != nullptr) *extrapolated = false;
  const bool probing = algorithm == Algorithm::kBasicProbing ||
                       algorithm == Algorithm::kImprovedProbing ||
                       algorithm == Algorithm::kBruteForce;

  if (probing && probe_cap != 0 && w.products->size() > probe_cap) {
    // Probing processes each product independently; time a prefix and
    // extrapolate linearly (the paper's own |T| experiments confirm the
    // linearity; Figures 6(b)/7(b)).
    Dataset capped = Head(*w.products, probe_cap);
    const double factor = static_cast<double>(w.products->size()) /
                          static_cast<double>(capped.size());
    double millis = 0.0;
    switch (algorithm) {
      case Algorithm::kBasicProbing:
        millis = TimeMillis([&] {
          SKYUP_CHECK(TopKBasicProbing(*w.rp, capped, cost_fn, k).ok());
        });
        break;
      case Algorithm::kImprovedProbing:
        millis = TimeMillis([&] {
          SKYUP_CHECK(TopKImprovedProbing(*w.rp, capped, cost_fn, k).ok());
        });
        break;
      case Algorithm::kBruteForce:
        millis = TimeMillis([&] {
          SKYUP_CHECK(
              TopKBruteForce(*w.competitors, capped, cost_fn, k).ok());
        });
        break;
      default:
        break;
    }
    if (extrapolated != nullptr) *extrapolated = true;
    return millis * factor;
  }

  switch (algorithm) {
    case Algorithm::kBasicProbing:
      return TimeMillis([&] {
        SKYUP_CHECK(TopKBasicProbing(*w.rp, *w.products, cost_fn, k).ok());
      });
    case Algorithm::kImprovedProbing:
      return TimeMillis([&] {
        SKYUP_CHECK(
            TopKImprovedProbing(*w.rp, *w.products, cost_fn, k).ok());
      });
    case Algorithm::kBruteForce:
      return TimeMillis([&] {
        SKYUP_CHECK(
            TopKBruteForce(*w.competitors, *w.products, cost_fn, k).ok());
      });
    case Algorithm::kJoin: {
      JoinOptions options;
      options.lower_bound = kind;
      options.bound_mode = mode;
      return TimeMillis([&] {
        SKYUP_CHECK(TopKJoin(*w.rp, *w.rt, cost_fn, k, options).ok());
      });
    }
  }
  SKYUP_CHECK(false);
  return 0.0;
}

double RunProgressive(const Workload& w, const ProductCostFunction& cost_fn,
                      size_t k, LowerBoundKind kind, BoundMode mode) {
  JoinOptions options;
  options.lower_bound = kind;
  options.bound_mode = mode;
  return TimeMillis([&] {
    Result<JoinCursor> cursor =
        JoinCursor::Create(w.rp.get(), w.rt.get(), &cost_fn, options);
    SKYUP_CHECK(cursor.ok());
    for (size_t i = 0; i < k; ++i) {
      if (!cursor->Next().has_value()) break;
    }
  });
}

void PrintHeader(const std::string& figure, const std::string& description,
                 const BenchArgs& args) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("scale=%.2f seed=%llu repeats=%zu probe_cap=%zu\n",
              args.scale, static_cast<unsigned long long>(args.seed),
              args.repeats, args.probe_cap);
  std::printf("(--scale=1 reproduces the paper's cardinalities; probing\n"
              " times marked * are linearly extrapolated beyond probe_cap;\n"
              " join figures use the paper's LBC formula for fidelity --\n"
              " bench_ablation [2] measures its result drift vs the exact\n"
              " sound mode)\n");
  std::printf("==============================================================\n");
}

void PrintShape(const std::string& text) {
  std::printf("shape: %s\n", text.c_str());
}

}  // namespace bench
}  // namespace skyup
