// Figure 9 — see figure_suites.h for the shared driver.

#include "figure_suites.h"

int main(int argc, char** argv) {
  return skyup::bench::RunLargeFigure(
      "Figure 9", skyup::Distribution::kIndependent, argc, argv);
}
