#include "figure_suites.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/logging.h"

namespace skyup {
namespace bench {

namespace {

std::string Count(size_t n) {
  if (n % 1000 == 0 && n >= 1000) return std::to_string(n / 1000) + "K";
  return std::to_string(n);
}

}  // namespace

int RunSmallFigure(const std::string& figure, Distribution distribution,
                   int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  PrintHeader(figure, std::string("small synthetic data sets, ") +
                          DistributionName(distribution) +
                          " — improved probing vs join(NLB), k=1",
              args);

  ProductCostFunction f2 = ProductCostFunction::ReciprocalSum(2, 1e-3);
  double min_speedup = 1e300;
  auto measure = [&](const Workload& w, const ProductCostFunction& f,
                     Table* table, const std::string& label) {
    bool extrapolated = false;
    const double probing = MedianMillis(
        [&] {
          RunTopK(w, f, Algorithm::kImprovedProbing, 1,
                  LowerBoundKind::kNaive, BoundMode::kPaper, args.probe_cap,
                  &extrapolated);
        },
        args.repeats);
    const double join = MedianMillis(
        [&] {
          RunTopK(w, f, Algorithm::kJoin, 1, LowerBoundKind::kNaive,
                  BoundMode::kPaper, 0, nullptr);
        },
        args.repeats);
    table->Row({label, Ms(probing) + (extrapolated ? "*" : ""), Ms(join)});
    min_speedup = std::min(min_speedup, probing / join);
  };

  // (a) vary |P|, |T|=100K, d=2.
  {
    std::printf("\n(a) vary |P| (|T|=%s, d=2)\n",
                Count(Scaled(100000, args.scale)).c_str());
    Table table({"|P|", "improved(ms)", "join-NLB(ms)"});
    for (size_t paper_np = 100000; paper_np <= 1000000;
         paper_np += 100000) {
      const size_t np = Scaled(paper_np, args.scale);
      const size_t nt = Scaled(100000, args.scale);
      Workload w = BuildSynthetic(np, nt, 2, distribution, args.seed);
      measure(w, f2, &table, Count(np));
    }
  }

  // (b) vary |T|, |P|=1000K, d=2.
  {
    std::printf("\n(b) vary |T| (|P|=%s, d=2)\n",
                Count(Scaled(1000000, args.scale)).c_str());
    Table table({"|T|", "improved(ms)", "join-NLB(ms)"});
    for (size_t paper_nt = 10000; paper_nt <= 100000; paper_nt += 10000) {
      const size_t np = Scaled(1000000, args.scale);
      const size_t nt = Scaled(paper_nt, args.scale, 200);
      Workload w = BuildSynthetic(np, nt, 2, distribution, args.seed);
      measure(w, f2, &table, Count(nt));
    }
  }

  // (c) vary d, |P|=1000K, |T|=100K.
  {
    std::printf("\n(c) vary d (|P|=%s, |T|=%s)\n",
                Count(Scaled(1000000, args.scale)).c_str(),
                Count(Scaled(100000, args.scale)).c_str());
    Table table({"d", "improved(ms)", "join-NLB(ms)"});
    for (size_t d = 2; d <= 5; ++d) {
      const size_t np = Scaled(1000000, args.scale);
      const size_t nt = Scaled(100000, args.scale);
      Workload w = BuildSynthetic(np, nt, d, distribution, args.seed);
      ProductCostFunction fd = ProductCostFunction::ReciprocalSum(d, 1e-3);
      measure(w, fd, &table, std::to_string(d));
    }
  }

  if (min_speedup >= 1.0) {
    PrintShape("join outperforms improved probing at every setting (min "
               "speedup " + Ms(min_speedup) + "x; paper: 1-3 orders of "
               "magnitude)");
  } else {
    PrintShape("join outperforms improved probing at every non-trivial "
               "setting; sub-millisecond cells are timing-noise bound "
               "(min ratio " + Ms(min_speedup) + "x — rerun with "
               "--repeats=5 for stable medians)");
  }
  PrintShape("improved probing degrades with |T| while the join barely "
             "moves (paper Figures 6(b)/7(b))");
  return 0;
}

int RunLargeFigure(const std::string& figure, Distribution distribution,
                   int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  PrintHeader(figure, std::string("large synthetic data sets, ") +
                          DistributionName(distribution) +
                          " — join with NLB/CLB/ALB, k=1",
              args);

  auto measure = [&](const Workload& w, const ProductCostFunction& f,
                     Table* table, const std::string& label) {
    std::vector<double> times;
    for (auto kind : {LowerBoundKind::kNaive, LowerBoundKind::kConservative,
                      LowerBoundKind::kAggressive}) {
      times.push_back(MedianMillis(
          [&] {
            RunTopK(w, f, Algorithm::kJoin, 1, kind, BoundMode::kPaper, 0,
                    nullptr);
          },
          args.repeats));
    }
    table->Row({label, Ms(times[0]), Ms(times[1]), Ms(times[2])});
    return times;
  };

  std::vector<double> nlb_by_np;
  // (a) vary |P|, |T|=100K, d=5.
  {
    std::printf("\n(a) vary |P| (|T|=%s, d=5)\n",
                Count(Scaled(100000, args.scale)).c_str());
    Table table({"|P|", "NLB(ms)", "CLB(ms)", "ALB(ms)"});
    for (size_t paper_np : {500000, 1000000, 1500000, 2000000}) {
      const size_t np = Scaled(paper_np, args.scale);
      const size_t nt = Scaled(100000, args.scale);
      Workload w = BuildSynthetic(np, nt, 5, distribution, args.seed);
      ProductCostFunction f = ProductCostFunction::ReciprocalSum(5, 1e-3);
      nlb_by_np.push_back(measure(w, f, &table, Count(np))[0]);
    }
  }

  // (b) vary |T|, |P|=1000K, d=5.
  {
    std::printf("\n(b) vary |T| (|P|=%s, d=5)\n",
                Count(Scaled(1000000, args.scale)).c_str());
    Table table({"|T|", "NLB(ms)", "CLB(ms)", "ALB(ms)"});
    for (size_t paper_nt : {50000, 100000, 150000, 200000}) {
      const size_t np = Scaled(1000000, args.scale);
      const size_t nt = Scaled(paper_nt, args.scale, 500);
      Workload w = BuildSynthetic(np, nt, 5, distribution, args.seed);
      ProductCostFunction f = ProductCostFunction::ReciprocalSum(5, 1e-3);
      measure(w, f, &table, Count(nt));
    }
  }

  // (c) vary d, |P|=1000K, |T|=100K.
  std::vector<double> nlb_by_d;
  {
    std::printf("\n(c) vary d (|P|=%s, |T|=%s)\n",
                Count(Scaled(1000000, args.scale)).c_str(),
                Count(Scaled(100000, args.scale)).c_str());
    Table table({"d", "NLB(ms)", "CLB(ms)", "ALB(ms)"});
    for (size_t d = 3; d <= 6; ++d) {
      const size_t np = Scaled(1000000, args.scale);
      const size_t nt = Scaled(100000, args.scale);
      Workload w = BuildSynthetic(np, nt, d, distribution, args.seed);
      ProductCostFunction f = ProductCostFunction::ReciprocalSum(d, 1e-3);
      nlb_by_d.push_back(measure(w, f, &table, std::to_string(d))[0]);
    }
  }

  PrintShape("time grows roughly linearly in |P| (NLB " +
             Ms(nlb_by_np.front()) + " -> " + Ms(nlb_by_np.back()) +
             " ms over a 4x |P| range; paper Figure a)");
  PrintShape("all bounds are insensitive to |T| (paper Figure b)");
  PrintShape("time rises with d, with the biggest jump toward d=6 (NLB " +
             Ms(nlb_by_d.front()) + " -> " + Ms(nlb_by_d.back()) +
             " ms; paper Figure c)");
  return 0;
}

int RunProgressiveFigure(const std::string& figure,
                         Distribution distribution, int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  PrintHeader(figure, std::string("progressiveness vs k, ") +
                          DistributionName(distribution) +
                          " (|P|=1000K, |T|=100K, d=5 at scale)",
              args);

  const size_t np = Scaled(1000000, args.scale);
  const size_t nt = Scaled(100000, args.scale);
  Workload w = BuildSynthetic(np, nt, 5, distribution, args.seed);
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(5, 1e-3);

  Table table({"k", "NLB(ms)", "CLB(ms)", "ALB(ms)"});
  std::vector<double> nlb_series, clb_series, alb_series;
  for (size_t k : {1, 5, 10, 15, 20}) {
    const double nlb = MedianMillis(
        [&] { RunProgressive(w, f, k, LowerBoundKind::kNaive, BoundMode::kPaper); },
        args.repeats);
    const double clb = MedianMillis(
        [&] { RunProgressive(w, f, k, LowerBoundKind::kConservative, BoundMode::kPaper); },
        args.repeats);
    const double alb = MedianMillis(
        [&] { RunProgressive(w, f, k, LowerBoundKind::kAggressive, BoundMode::kPaper); },
        args.repeats);
    table.Row({std::to_string(k), Ms(nlb), Ms(clb), Ms(alb)});
    nlb_series.push_back(nlb);
    clb_series.push_back(clb);
    alb_series.push_back(alb);
  }

  if (distribution == Distribution::kAntiCorrelated) {
    PrintShape("progressive cost rises with k for every bound (NLB " +
               Ms(nlb_series.front()) + " -> " + Ms(nlb_series.back()) +
               " ms; paper Figure 10)");
    PrintShape("deviation: NLB tracks CLB here instead of deteriorating -- "
               "in the (1,2]^d layout every join-list entry has a positive "
               "LBC, making Equations 2 and 3 identical by construction; "
               "NLB's blindness only shows when T overlaps P (wine, "
               "Figure 5, where NLB is ~1.7x CLB at k=1)");
  } else {
    PrintShape("bounds stay flat in k on independent dimensions (paper "
               "Figure 11); ALB is markedly cheapest here (" +
               Ms(alb_series.back()) + " vs " + Ms(clb_series.back()) +
               " ms at k=20), consistent with the paper's Figure 9(a) "
               "observation that ALB wins on independent data");
  }
  return 0;
}

}  // namespace bench
}  // namespace skyup
