// Figure 7 — see figure_suites.h for the shared driver.

#include "figure_suites.h"

int main(int argc, char** argv) {
  return skyup::bench::RunSmallFigure(
      "Figure 7", skyup::Distribution::kIndependent, argc, argv);
}
