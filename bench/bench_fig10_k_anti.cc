// Figure 10 — see figure_suites.h for the shared driver.

#include "figure_suites.h"

int main(int argc, char** argv) {
  return skyup::bench::RunProgressiveFigure(
      "Figure 10", skyup::Distribution::kAntiCorrelated, argc, argv);
}
