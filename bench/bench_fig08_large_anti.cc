// Figure 8 — see figure_suites.h for the shared driver.

#include "figure_suites.h"

int main(int argc, char** argv) {
  return skyup::bench::RunLargeFigure(
      "Figure 8", skyup::Distribution::kAntiCorrelated, argc, argv);
}
