#ifndef SKYUP_BENCH_BENCH_COMMON_H_
#define SKYUP_BENCH_BENCH_COMMON_H_

// Shared harness for the paper-reproduction benchmarks (bench_fig*). Each
// binary regenerates one figure of the paper's Section IV: it prints the
// same rows/series the figure plots, plus a qualitative summary of the
// shape the paper reports.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/join.h"
#include "core/planner.h"
#include "core/probing.h"
#include "data/generator.h"

namespace skyup {
namespace bench {

/// Command-line options common to every figure benchmark.
///
///   --scale=<f>    fraction of the paper's cardinalities (default 0.02;
///                  --scale=1 reproduces the full paper sizes)
///   --repeats=<n>  timing repetitions, median reported (default 1)
///   --seed=<n>     workload seed (default 42)
///   --probe-cap=<n> max products actually probed by the probing
///                  algorithms; their time is linearly extrapolated to
///                  |T| beyond the cap (probing is per-product
///                  independent). 0 disables the cap. Default 2000.
struct BenchArgs {
  double scale = 0.02;
  size_t repeats = 1;
  uint64_t seed = 42;
  size_t probe_cap = 200;
};

BenchArgs ParseArgs(int argc, char** argv);

/// paper_value * scale, with a floor to keep workloads meaningful.
size_t Scaled(size_t paper_value, double scale, size_t min_value = 1000);

/// Wall-clock of one call, in milliseconds.
double TimeMillis(const std::function<void()>& fn);

/// Runs `fn` `repeats` times and returns the median milliseconds.
double MedianMillis(const std::function<void()>& fn, size_t repeats);

/// "12.3" / "4567" style fixed formatting for table cells.
std::string Ms(double millis);

/// Fixed-width table writer for figure rows.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, size_t width = 16);
  void Row(const std::vector<std::string>& cells);

 private:
  size_t width_;
};

/// A competitor/product pair with both R-trees built (addresses stable).
struct Workload {
  std::unique_ptr<Dataset> competitors;
  std::unique_ptr<Dataset> products;
  std::unique_ptr<RTree> rp;
  std::unique_ptr<RTree> rt;
};

/// Builds the paper's synthetic layout: P in [0,1)^dims, T in (1,2]^dims.
Workload BuildSynthetic(size_t np, size_t nt, size_t dims,
                        Distribution distribution, uint64_t seed,
                        size_t fanout = 64);

/// Builds a workload around existing datasets (e.g. the wine split).
Workload BuildFrom(Dataset competitors, Dataset products, size_t fanout = 64);

/// Times one top-k run of the given algorithm over the workload. For the
/// probing algorithms, at most `probe_cap` products are probed and the
/// time is extrapolated linearly (0 = no cap); `extrapolated` reports
/// whether that happened.
double RunTopK(const Workload& w, const ProductCostFunction& cost_fn,
               Algorithm algorithm, size_t k, LowerBoundKind kind,
               BoundMode mode, size_t probe_cap, bool* extrapolated);

/// Times the progressive join until `k` results have streamed out.
double RunProgressive(const Workload& w, const ProductCostFunction& cost_fn,
                      size_t k, LowerBoundKind kind,
                      BoundMode mode = BoundMode::kSound);

/// Prints the standard benchmark preamble.
void PrintHeader(const std::string& figure, const std::string& description,
                 const BenchArgs& args);

/// Prints "shape: <text>" summary lines the figure is expected to show.
void PrintShape(const std::string& text);

}  // namespace bench
}  // namespace skyup

#endif  // SKYUP_BENCH_BENCH_COMMON_H_
