// Ablation studies for the design choices DESIGN.md calls out:
//   1. mutual-dominance pruning of join lists (Alg. 4 lines 25-30),
//   2. the paper's LBC formula vs this library's sound correction —
//      execution time AND top-k agreement with the brute-force oracle,
//   3. LBC case frequencies (how often cases 1-4 of Section III-B3 fire),
//   4. probing variants: how much work getDominatingSky saves,
//   5. zero-bound leaf refinement (DESIGN.md finding #2),
//   6. Algorithm 1 vs an exact grid oracle (the paper's open optimality
//      question).

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/dominance.h"
#include "core/lower_bounds.h"
#include "core/single_upgrade.h"
#include "data/wine.h"
#include "skyline/skyline.h"
#include "util/logging.h"
#include "util/random.h"

namespace skyup {
namespace bench {
namespace {

void AblateMutualDominance(const BenchArgs& args) {
  std::printf("\n[1] mutual-dominance pruning (anti-correlated, d=3)\n");
  Table table({"|P|", "pruning", "time(ms)", "jl-pruned", "lbc-evals"});
  for (size_t paper_np : {200000, 600000, 1000000}) {
    const size_t np = Scaled(paper_np, args.scale);
    const size_t nt = Scaled(100000, args.scale);
    Workload w = BuildSynthetic(np, nt, 3, Distribution::kAntiCorrelated,
                                args.seed);
    ProductCostFunction f = ProductCostFunction::ReciprocalSum(3, 1e-3);
    for (bool pruning : {true, false}) {
      JoinOptions options;
      options.mutual_dominance_pruning = pruning;
      ExecStats stats;
      const double ms = MedianMillis(
          [&] {
            SKYUP_CHECK(TopKJoin(*w.rp, *w.rt, f, 10, options, &stats).ok());
          },
          args.repeats);
      table.Row({std::to_string(np), pruning ? "on" : "off", Ms(ms),
                 std::to_string(stats.jl_entries_pruned),
                 std::to_string(stats.lbc_evaluations)});
    }
  }
  PrintShape("pruning removes dominated join-list entries and lowers LBC "
             "evaluations at identical results (join_test proves result "
             "invariance)");
}

void AblateBoundMode(const BenchArgs& args) {
  std::printf("\n[2] paper vs sound LBC formula (k=10)\n");
  Table table({"workload", "mode", "time(ms)", "topk-agree", "cost-agree"});

  auto compare = [&](const Workload& w, const ProductCostFunction& f,
                     const std::string& label) {
    Result<std::vector<UpgradeResult>> oracle =
        TopKImprovedProbing(*w.rp, *w.products, f, 10);
    SKYUP_CHECK(oracle.ok());
    for (auto mode : {BoundMode::kPaper, BoundMode::kSound}) {
      JoinOptions options;
      options.bound_mode = mode;
      Result<std::vector<UpgradeResult>> join(std::vector<UpgradeResult>{});
      const double ms = MedianMillis(
          [&] {
            join = TopKJoin(*w.rp, *w.rt, f, 10, options);
            SKYUP_CHECK(join.ok());
          },
          args.repeats);
      size_t id_agree = 0;
      size_t cost_agree = 0;
      for (size_t i = 0; i < join->size() && i < oracle->size(); ++i) {
        if ((*join)[i].product_id == (*oracle)[i].product_id) ++id_agree;
        if (std::abs((*join)[i].cost - (*oracle)[i].cost) < 1e-9) {
          ++cost_agree;
        }
      }
      table.Row({label, BoundModeName(mode), Ms(ms),
                 std::to_string(id_agree) + "/10",
                 std::to_string(cost_agree) + "/10"});
    }
  };

  // The wine workload is where the paper formula's overestimation actually
  // flips results (DESIGN.md finding #1).
  {
    Result<Dataset> wine = SynthesizeWine(4898, args.seed + 1970);
    SKYUP_CHECK(wine.ok());
    Result<Dataset> reduced = WineSubset(
        *wine, {WineAttr::kChlorides, WineAttr::kSulphates,
                WineAttr::kTotalSulfurDioxide});
    SKYUP_CHECK(reduced.ok());
    Result<WineSplit> split = SplitWine(*reduced, 1000, args.seed);
    SKYUP_CHECK(split.ok());
    Workload w = BuildFrom(std::move(split->competitors),
                           std::move(split->products));
    ProductCostFunction f = ProductCostFunction::ReciprocalSum(3, 1e-3);
    compare(w, f, "wine c,s,t");
  }

  for (auto distribution : {Distribution::kIndependent,
                            Distribution::kAntiCorrelated}) {
    for (size_t d : {2, 4}) {
      const size_t np = Scaled(200000, args.scale);
      const size_t nt = Scaled(20000, args.scale);
      Workload w = BuildSynthetic(np, nt, d, distribution, args.seed);
      ProductCostFunction f = ProductCostFunction::ReciprocalSum(d, 1e-3);
      const std::string label =
          std::string(1, "iac"[static_cast<int>(distribution)]) + "/d" +
          std::to_string(d);
      compare(w, f, label);
    }
  }
  PrintShape("the sound formula keeps the join exact; the paper formula's "
             "agreement column documents where its overestimation flips "
             "results (the wine workload) and where it does not (the "
             "disjoint synthetic layout)");
}

void LbcCaseFrequencies(const BenchArgs& args) {
  std::printf("\n[3] LBC case frequencies over random (e_T, e_P) node "
              "pairs\n");
  Table table({"layout", "case1-adv", "case2-inc", "case3-dis",
               "case4-mixed"});
  struct Layout {
    const char* name;
    double t_lo, t_hi;
  };
  // The paper's layout (T above P) versus overlapping sets.
  for (const Layout& layout :
       {Layout{"paper (1,2]", 1.0, 2.0}, Layout{"overlapping", 0.0, 1.0}}) {
    Rng rng(args.seed + 99);
    size_t cases[4] = {0, 0, 0, 0};
    const size_t dims = 3;
    for (int i = 0; i < 20000; ++i) {
      double et_min[3], ep_min[3], ep_max[3];
      for (size_t k = 0; k < dims; ++k) {
        et_min[k] = rng.NextDouble(layout.t_lo, layout.t_hi);
        const double a = rng.NextDouble();
        const double b = rng.NextDouble();
        ep_min[k] = std::min(a, b);
        ep_max[k] = std::max(a, b);
      }
      const DimClassification cls =
          ClassifyDims(et_min, ep_min, ep_max, dims);
      if (cls.advantaged != 0) {
        ++cases[0];
      } else if (cls.disadvantaged == 0) {
        ++cases[1];
      } else if (cls.incomparable == 0) {
        ++cases[2];
      } else {
        ++cases[3];
      }
    }
    table.Row({layout.name, std::to_string(cases[0]),
               std::to_string(cases[1]), std::to_string(cases[2]),
               std::to_string(cases[3])});
  }
  PrintShape("in the paper's layout nearly every pair is case 3 (all "
             "dimensions disadvantaged): positive bounds do the pruning");
}

void AblateProbing(const BenchArgs& args) {
  std::printf("\n[4] probing work: range-query vs getDominatingSky\n");
  Table table({"|P|", "basic-fetched", "improved", "ratio"}, 18);
  for (size_t paper_np : {100000, 500000, 1000000}) {
    const size_t np = Scaled(paper_np, args.scale);
    Workload w = BuildSynthetic(np, 500, 2, Distribution::kIndependent,
                                args.seed);
    ProductCostFunction f = ProductCostFunction::ReciprocalSum(2, 1e-3);
    ExecStats basic, improved;
    SKYUP_CHECK(
        TopKBasicProbing(*w.rp, *w.products, f, 1, 1e-6, &basic).ok());
    SKYUP_CHECK(
        TopKImprovedProbing(*w.rp, *w.products, f, 1, 1e-6, &improved).ok());
    const double ratio = static_cast<double>(basic.dominators_fetched) /
                         static_cast<double>(
                             std::max<size_t>(1, improved.dominators_fetched));
    table.Row({std::to_string(np), std::to_string(basic.dominators_fetched),
               std::to_string(improved.dominators_fetched), Ms(ratio) + "x"});
  }
  PrintShape("getDominatingSky retrieves orders of magnitude fewer points "
             "than the ADR range query (the Figure 2 intuition)");
}

void AblateLeafRefinement(const BenchArgs& args) {
  std::printf("\n[5] zero-bound leaf refinement (DESIGN.md finding #2) on "
              "the overlapping-sets (wine-like) layout\n");
  Table table({"workload", "refine", "time(ms)", "exact-costs",
               "of-|T|"});
  // Wine-like: T drawn from the same cube as P (dominated products picked
  // by construction would need the wine pipeline; random products inside
  // the cube show the same degeneracy).
  for (size_t paper_np : {100000, 400000}) {
    const size_t np = Scaled(paper_np, args.scale);
    const size_t nt = Scaled(40000, args.scale);
    Result<Dataset> p =
        GenerateCompetitors(np, 3, Distribution::kIndependent, args.seed);
    Result<Dataset> t = GenerateCompetitors(nt, 3, Distribution::kIndependent,
                                            args.seed + 1);
    SKYUP_CHECK(p.ok() && t.ok());
    Workload w = BuildFrom(std::move(p).value(), std::move(t).value());
    ProductCostFunction f = ProductCostFunction::ReciprocalSum(3, 1e-3);

    for (bool refine : {true, false}) {
      JoinOptions options;
      options.refine_zero_bound_leaves = refine;
      ExecStats stats;
      const double ms = MedianMillis(
          [&] {
            SKYUP_CHECK(TopKJoin(*w.rp, *w.rt, f, 5, options, &stats).ok());
          },
          args.repeats);
      table.Row({"|P|=" + std::to_string(np), refine ? "on" : "off", Ms(ms),
                 std::to_string(stats.products_processed),
                 std::to_string(w.products->size())});
    }
  }
  PrintShape("verbatim Algorithm 4 (refine=off) computes an exact cost for "
             "nearly every product when T overlaps P; refinement prunes "
             "most of them");
}

// The paper leaves Algorithm 1's optimality open (its final research
// direction). For small inputs the optimum is computable exactly: the
// optimal upgrade takes each coordinate from {t_k} U {s_k - eps} (raising
// any coordinate further would violate an escape constraint or pass t_k),
// so exhaustive enumeration over that grid with the escape-all check is an
// oracle. This ablation measures how far Algorithm 1's heuristic lands
// from it.
void AblateUpgradeOptimality(const BenchArgs& args) {
  std::printf("\n[6] Algorithm 1 vs exact grid oracle (optimality gap)\n");
  Table table({"d", "trials", "optimal", "mean-gap", "max-gap"});
  Rng rng(args.seed + 7);
  constexpr double kEps = 1e-6;

  for (size_t d : {2, 3}) {
    const ProductCostFunction f = ProductCostFunction::ReciprocalSum(d, 1e-3);
    size_t optimal = 0;
    double gap_sum = 0.0;
    double gap_max = 0.0;
    const int trials = 400;
    for (int trial = 0; trial < trials; ++trial) {
      // A dominated product and the skyline of its dominators.
      std::vector<double> t(d);
      for (auto& v : t) v = rng.NextDouble(0.7, 1.5);
      Dataset competitors(d);
      for (int i = 0; i < 40; ++i) {
        std::vector<double> q(d);
        for (size_t k = 0; k < d; ++k) q[k] = rng.NextDouble(0.0, t[k]);
        competitors.Add(q);
      }
      std::vector<const double*> sky;
      for (size_t i = 0; i < competitors.size(); ++i) {
        const double* q = competitors.data(static_cast<PointId>(i));
        if (Dominates(q, t.data(), d)) sky.push_back(q);
      }
      SkylineOfPointers(&sky, d);
      if (sky.empty() || sky.size() > 7) {
        continue;  // keep the oracle exhaustive and cheap
      }

      const UpgradeOutcome heuristic =
          UpgradeProduct(sky, t.data(), d, f, kEps);

      // Oracle: enumerate all per-dimension threshold choices.
      std::vector<std::vector<double>> levels(d);
      for (size_t k = 0; k < d; ++k) {
        levels[k].push_back(t[k]);
        for (const double* s : sky) levels[k].push_back(s[k] - kEps);
      }
      double best = std::numeric_limits<double>::infinity();
      std::vector<size_t> pick(d, 0);
      std::vector<double> candidate(d);
      for (;;) {
        for (size_t k = 0; k < d; ++k) candidate[k] = levels[k][pick[k]];
        bool escapes_all = true;
        for (const double* s : sky) {
          if (DominatesOrEqual(s, candidate.data(), d)) {
            escapes_all = false;
            break;
          }
        }
        if (escapes_all) {
          best = std::min(best, f.Cost(candidate.data()) - f.Cost(t.data()));
        }
        size_t k = 0;
        while (k < d && ++pick[k] == levels[k].size()) pick[k++] = 0;
        if (k == d) break;
      }

      const double gap = heuristic.cost - best;
      const double rel = best > 1e-12 ? gap / best : 0.0;
      if (rel < 1e-9) ++optimal;
      gap_sum += rel;
      gap_max = std::max(gap_max, rel);
    }
    char mean_buf[32], max_buf[32];
    std::snprintf(mean_buf, sizeof(mean_buf), "%.2f%%",
                  100.0 * gap_sum / trials);
    std::snprintf(max_buf, sizeof(max_buf), "%.1f%%", 100.0 * gap_max);
    table.Row({std::to_string(d), std::to_string(trials),
               std::to_string(optimal), mean_buf, max_buf});
  }
  PrintShape("Algorithm 1 is near-always optimal at d=2 (its consecutive-"
             "pair candidates cover the 2-d frontier) but almost never "
             "exactly optimal at d>=3, where the optimum mixes thresholds "
             "from more than two skyline points — a concrete answer to the "
             "paper's open optimality question");
}

int Main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  PrintHeader("Ablations", "design-choice studies beyond the paper's "
              "figures", args);
  AblateMutualDominance(args);
  AblateBoundMode(args);
  LbcCaseFrequencies(args);
  AblateProbing(args);
  AblateLeafRefinement(args);
  AblateUpgradeOptimality(args);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace skyup

int main(int argc, char** argv) { return skyup::bench::Main(argc, argv); }
