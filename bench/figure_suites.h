#ifndef SKYUP_BENCH_FIGURE_SUITES_H_
#define SKYUP_BENCH_FIGURE_SUITES_H_

// Implementations of the paper's synthetic-data figure families. Each
// figure binary (bench_fig06..bench_fig11) is a thin main() that picks the
// distribution; anti-correlated and independent variants share these
// drivers.

#include <string>

#include "bench_common.h"
#include "data/generator.h"

namespace skyup {
namespace bench {

/// Figures 6 and 7 — small synthetic data sets (Table IV): improved
/// probing vs join(NLB) across (a) |P| in 100K..1000K, (b) |T| in
/// 10K..100K, (c) d in 2..5. Defaults: |P|=1000K, |T|=100K, d=2.
int RunSmallFigure(const std::string& figure, Distribution distribution,
                   int argc, char** argv);

/// Figures 8 and 9 — large synthetic data sets (Table V): join with
/// NLB/CLB/ALB across (a) |P| in 500K..2000K, (b) |T| in 50K..200K,
/// (c) d in 3..6. Defaults: |P|=1000K, |T|=100K, d=5.
int RunLargeFigure(const std::string& figure, Distribution distribution,
                   int argc, char** argv);

/// Figures 10 and 11 — progressiveness at the Table V defaults: time until
/// k results for k in 1..20, for each lower bound.
int RunProgressiveFigure(const std::string& figure,
                         Distribution distribution, int argc, char** argv);

}  // namespace bench
}  // namespace skyup

#endif  // SKYUP_BENCH_FIGURE_SUITES_H_
