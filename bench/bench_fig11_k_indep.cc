// Figure 11 — see figure_suites.h for the shared driver.

#include "figure_suites.h"

int main(int argc, char** argv) {
  return skyup::bench::RunProgressiveFigure(
      "Figure 11", skyup::Distribution::kIndependent, argc, argv);
}
