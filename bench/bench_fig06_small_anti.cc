// Figure 6 — see figure_suites.h for the shared driver.

#include "figure_suites.h"

int main(int argc, char** argv) {
  return skyup::bench::RunSmallFigure(
      "Figure 6", skyup::Distribution::kAntiCorrelated, argc, argv);
}
