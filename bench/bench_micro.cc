// Micro-benchmarks (google-benchmark) of the substrate kernels: R-tree
// construction and queries, skyline algorithms, Algorithm 1, and the LBC
// kernels. These are component-level numbers; the figure reproductions
// live in the bench_fig* binaries.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/dominance_batch.h"
#include "core/lower_bounds.h"
#include "core/parallel_probing.h"
#include "core/probing.h"
#include "core/single_upgrade.h"
#include "data/generator.h"
#include "skyline/dominating_skyline.h"
#include "skyline/skyline.h"
#include "util/logging.h"
#include "util/random.h"

namespace skyup {
namespace {

Dataset MakeData(size_t n, size_t dims, Distribution distribution,
                 uint64_t seed = 7) {
  Result<Dataset> ds = GenerateCompetitors(n, dims, distribution, seed);
  SKYUP_CHECK(ds.ok());
  return std::move(ds).value();
}

void BM_RTreeBulkLoad(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Dataset ds = MakeData(n, 3, Distribution::kIndependent);
  for (auto _ : state) {
    Result<RTree> tree = RTree::BulkLoad(ds);
    SKYUP_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree->root());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(10000)->Arg(100000);

void BM_RTreeInsert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Dataset ds = MakeData(n, 3, Distribution::kIndependent);
  for (auto _ : state) {
    RTree tree(&ds);
    for (size_t i = 0; i < n; ++i) tree.Insert(static_cast<PointId>(i));
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RTreeInsert)->Arg(10000);

void BM_RTreeRangeQuery(benchmark::State& state) {
  Dataset ds = MakeData(100000, 3, Distribution::kIndependent);
  Result<RTree> tree = RTree::BulkLoad(ds);
  SKYUP_CHECK(tree.ok());
  Rng rng(3);
  std::vector<PointId> out;
  for (auto _ : state) {
    std::vector<double> lo(3), hi(3);
    for (size_t i = 0; i < 3; ++i) {
      lo[i] = rng.NextDouble(0.0, 0.8);
      hi[i] = lo[i] + 0.2;
    }
    out.clear();
    tree->RangeQuery(Mbr::FromCorners(lo.data(), hi.data(), 3), &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_RTreeRangeQuery);

template <SkylineAlgorithm kAlgo>
void BM_Skyline(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Distribution distribution = state.range(1) == 0
                                        ? Distribution::kIndependent
                                        : Distribution::kAntiCorrelated;
  Dataset ds = MakeData(n, 3, distribution);
  for (auto _ : state) {
    std::vector<PointId> sky = Skyline(ds, kAlgo);
    benchmark::DoNotOptimize(sky.size());
  }
}
BENCHMARK(BM_Skyline<SkylineAlgorithm::kBnl>)
    ->Args({20000, 0})
    ->Args({20000, 1});
BENCHMARK(BM_Skyline<SkylineAlgorithm::kSfs>)
    ->Args({20000, 0})
    ->Args({20000, 1});
BENCHMARK(BM_Skyline<SkylineAlgorithm::kBbs>)
    ->Args({20000, 0})
    ->Args({20000, 1});
BENCHMARK(BM_Skyline<SkylineAlgorithm::kDnc>)
    ->Args({20000, 0})
    ->Args({20000, 1});

void BM_DominatingSkylineProbe(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Dataset ds = MakeData(n, 3, Distribution::kAntiCorrelated);
  Result<RTree> tree = RTree::BulkLoad(ds);
  SKYUP_CHECK(tree.ok());
  const std::vector<double> t = {1.5, 1.5, 1.5};
  for (auto _ : state) {
    std::vector<PointId> sky = DominatingSkyline(tree.value(), t.data());
    benchmark::DoNotOptimize(sky.size());
  }
}
BENCHMARK(BM_DominatingSkylineProbe)->Arg(100000);

// The same probe through the flat arena snapshot + batched kernels; the
// pointer/scalar bench above is the seed baseline this is measured against
// (bench/run_bench.sh records the pair in BENCH_topk.json).
void BM_DominatingSkylineProbeFlat(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Dataset ds = MakeData(n, 3, Distribution::kAntiCorrelated);
  Result<FlatRTree> tree = FlatRTree::BulkLoad(ds);
  SKYUP_CHECK(tree.ok());
  const std::vector<double> t = {1.5, 1.5, 1.5};
  ProbeStats stats;
  for (auto _ : state) {
    stats = ProbeStats();
    std::vector<PointId> sky = DominatingSkyline(tree.value(), t.data(),
                                                 &stats);
    benchmark::DoNotOptimize(sky.size());
  }
  state.counters["kernel_calls"] =
      static_cast<double>(stats.block_kernel_calls);
}
BENCHMARK(BM_DominatingSkylineProbeFlat)->Arg(100000);

// The raw batch kernels against a register-pressure-free scalar sweep:
// lane filtering (the leaf/window shape) over one SoA block. range(0) is
// the lane count, range(1) selects dispatched (1) or forced-scalar (0).
void BM_FilterDominatedKernel(benchmark::State& state) {
  const size_t count = static_cast<size_t>(state.range(0));
  const bool dispatched = state.range(1) != 0;
  const size_t dims = 3;
  Dataset ds = MakeData(count, dims, Distribution::kAntiCorrelated);
  SoaBlock block(dims);
  for (size_t i = 0; i < ds.size(); ++i) {
    block.Append(ds.data(static_cast<PointId>(i)));
  }
  const std::vector<double> q(dims, 0.51);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    out.clear();
    const size_t kept =
        dispatched ? FilterDominated(block.view(), q.data(), &out)
                   : FilterDominatedScalar(block.view(), q.data(), &out);
    benchmark::DoNotOptimize(kept);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(count));
  state.SetLabel(dispatched ? BatchKernelName() : "scalar");
}
BENCHMARK(BM_FilterDominatedKernel)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({4096, 0})
    ->Args({4096, 1});

void BM_DominatesAnyKernel(benchmark::State& state) {
  const size_t count = static_cast<size_t>(state.range(0));
  const bool dispatched = state.range(1) != 0;
  const size_t dims = 3;
  Dataset ds = MakeData(count, dims, Distribution::kAntiCorrelated);
  SoaBlock block(dims);
  for (size_t i = 0; i < ds.size(); ++i) {
    block.Append(ds.data(static_cast<PointId>(i)));
  }
  // A query nothing dominates: the worst case, every lane is examined.
  const std::vector<double> q(dims, -1.0);
  for (auto _ : state) {
    const bool any = dispatched ? DominatesAny(block.view(), q.data())
                                : DominatesAnyScalar(block.view(), q.data());
    benchmark::DoNotOptimize(any);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(count));
  state.SetLabel(dispatched ? BatchKernelName() : "scalar");
}
BENCHMARK(BM_DominatesAnyKernel)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({4096, 0})
    ->Args({4096, 1});

void BM_UpgradeProduct(benchmark::State& state) {
  const size_t sky_size = static_cast<size_t>(state.range(0));
  const size_t dims = static_cast<size_t>(state.range(1));
  Dataset ds = MakeData(20000, dims, Distribution::kAntiCorrelated);
  std::vector<PointId> sky_ids = SkylineSfs(ds);
  std::vector<const double*> sky;
  for (PointId id : sky_ids) {
    if (sky.size() >= sky_size) break;
    sky.push_back(ds.data(id));
  }
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(dims, 1e-3);
  std::vector<double> p(dims, 1.5);
  for (auto _ : state) {
    UpgradeOutcome out = UpgradeProduct(sky, p.data(), dims, f, 1e-6);
    benchmark::DoNotOptimize(out.cost);
  }
}
BENCHMARK(BM_UpgradeProduct)->Args({16, 3})->Args({256, 3})->Args({256, 5});

// A realistic upgrade catalog: half the candidates drawn from the
// competitor distribution (many already competitive, cost ~0), half from
// the deeply dominated shifted product region, interleaved. The cheap
// candidates pull the top-k threshold down early, letting the sound
// lower-bound cut disqualify expensive candidates outright.
Dataset MixedCatalog(size_t n_each, uint64_t seed) {
  Result<Dataset> competitive =
      GenerateCompetitors(n_each, 3, Distribution::kAntiCorrelated, seed);
  Result<Dataset> dominated =
      GenerateProducts(n_each, 3, Distribution::kAntiCorrelated, seed + 1);
  SKYUP_CHECK(competitive.ok() && dominated.ok());
  Dataset out(3);
  out.Reserve(2 * n_each);
  for (size_t i = 0; i < n_each; ++i) {
    out.Add(competitive->data(static_cast<PointId>(i)));
    out.Add(dominated->data(static_cast<PointId>(i)));
  }
  return out;
}

// End-to-end improved probing, sequential vs the sharded parallel engine.
// The parallel path adds shared-threshold lower-bound pruning; `pruned`
// counts candidates disqualified before any skyline/Algorithm 1 work and
// `upgrades` the candidates that paid full price — together they always sum
// to |T|, so the counters quantify pruning effectiveness directly.
void BM_TopKImprovedProbing(benchmark::State& state) {
  Dataset p = MakeData(20000, 3, Distribution::kAntiCorrelated);
  Dataset t = MixedCatalog(1000, 9);
  Result<RTree> tree = RTree::BulkLoad(p);
  SKYUP_CHECK(tree.ok());
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(3, 1e-3);
  for (auto _ : state) {
    Result<std::vector<UpgradeResult>> top =
        TopKImprovedProbing(tree.value(), t, f, 10);
    SKYUP_CHECK(top.ok());
    benchmark::DoNotOptimize(top->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t.size()));
}
BENCHMARK(BM_TopKImprovedProbing);

// End-to-end improved probing through the flat snapshot — the tentpole
// hot path as the planner runs it with default options.
void BM_TopKImprovedProbingFlat(benchmark::State& state) {
  Dataset p = MakeData(20000, 3, Distribution::kAntiCorrelated);
  Dataset t = MixedCatalog(1000, 9);
  Result<FlatRTree> tree = FlatRTree::BulkLoad(p);
  SKYUP_CHECK(tree.ok());
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(3, 1e-3);
  for (auto _ : state) {
    Result<std::vector<UpgradeResult>> top =
        TopKImprovedProbing(tree.value(), t, f, 10);
    SKYUP_CHECK(top.ok());
    benchmark::DoNotOptimize(top->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t.size()));
}
BENCHMARK(BM_TopKImprovedProbingFlat);

void BM_TopKImprovedProbingParallel(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  Dataset p = MakeData(20000, 3, Distribution::kAntiCorrelated);
  Dataset t = MixedCatalog(1000, 9);
  Result<RTree> tree = RTree::BulkLoad(p);
  SKYUP_CHECK(tree.ok());
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(3, 1e-3);
  ExecStats stats;
  for (auto _ : state) {
    stats = ExecStats();
    Result<std::vector<UpgradeResult>> top = TopKImprovedProbingParallel(
        tree.value(), t, f, 10, 1e-6, threads, &stats);
    SKYUP_CHECK(top.ok());
    benchmark::DoNotOptimize(top->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t.size()));
  state.counters["pruned"] = static_cast<double>(stats.candidates_pruned);
  state.counters["upgrades"] = static_cast<double>(stats.upgrade_calls);
}
BENCHMARK(BM_TopKImprovedProbingParallel)->Arg(1)->Arg(2)->Arg(4);

void BM_LbcPair(benchmark::State& state) {
  const BoundMode mode =
      state.range(0) == 0 ? BoundMode::kPaper : BoundMode::kSound;
  const size_t dims = 5;
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(dims, 1e-3);
  Rng rng(11);
  std::vector<double> et_min(dims), ep_min(dims), ep_max(dims);
  for (size_t i = 0; i < dims; ++i) {
    et_min[i] = rng.NextDouble(1.0, 2.0);
    const double a = rng.NextDouble();
    const double b = rng.NextDouble();
    ep_min[i] = std::min(a, b);
    ep_max[i] = std::max(a, b);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(LbcPair(et_min.data(), ep_min.data(),
                                     ep_max.data(), dims, f, mode));
  }
}
BENCHMARK(BM_LbcPair)->Arg(0)->Arg(1);

void BM_LbcJoinList(benchmark::State& state) {
  const LowerBoundKind kind = static_cast<LowerBoundKind>(state.range(0));
  const size_t entries = 64;
  const size_t dims = 5;
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(dims, 1e-3);
  Rng rng(12);
  std::vector<double> et_min(dims);
  for (auto& v : et_min) v = rng.NextDouble(1.0, 2.0);
  std::vector<std::vector<double>> mins(entries), maxs(entries);
  std::vector<EntryBounds> jl;
  for (size_t e = 0; e < entries; ++e) {
    mins[e].resize(dims);
    maxs[e].resize(dims);
    for (size_t i = 0; i < dims; ++i) {
      const double a = rng.NextDouble();
      const double b = rng.NextDouble();
      mins[e][i] = std::min(a, b);
      maxs[e][i] = std::max(a, b);
    }
    jl.push_back({mins[e].data(), maxs[e].data()});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LbcJoinList(et_min.data(), jl, dims, f, kind, BoundMode::kPaper));
  }
}
BENCHMARK(BM_LbcJoinList)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace skyup

BENCHMARK_MAIN();
