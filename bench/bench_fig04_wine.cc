// Figure 4 — execution time of all algorithms on the four wine attribute
// combinations (Table III): basic probing, improved probing, and the join
// with each lower bound. |P| = 3,898, |T| = 1,000, k = 1.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "data/wine.h"
#include "util/logging.h"

namespace skyup {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  PrintHeader("Figure 4",
              "execution time on wine attribute combinations (|P|=3898, "
              "|T|=1000, k=1)",
              args);

  Result<Dataset> wine = SynthesizeWine(4898, args.seed + 1970);
  SKYUP_CHECK(wine.ok());

  Table table({"combo", "basic(ms)", "improved(ms)", "join-NLB(ms)",
               "join-CLB(ms)", "join-ALB(ms)"});

  double worst_basic_vs_improved = 1e300;
  double worst_improved_vs_join = 1e300;
  for (const auto& combo : WineAttributeCombinations()) {
    Result<Dataset> reduced = WineSubset(*wine, combo);
    SKYUP_CHECK(reduced.ok());
    Result<WineSplit> split = SplitWine(*reduced, 1000, args.seed);
    SKYUP_CHECK(split.ok());
    Workload w = BuildFrom(std::move(split->competitors),
                           std::move(split->products));
    ProductCostFunction cost_fn =
        ProductCostFunction::ReciprocalSum(combo.size(), 1e-3);

    auto run = [&](Algorithm algo, LowerBoundKind kind) {
      return MedianMillis(
          [&] {
            bool extrapolated = false;
            RunTopK(w, cost_fn, algo, 1, kind, BoundMode::kPaper,
                    /*probe_cap=*/0, &extrapolated);
          },
          args.repeats);
    };

    const double basic = run(Algorithm::kBasicProbing,
                             LowerBoundKind::kNaive);
    const double improved = run(Algorithm::kImprovedProbing,
                                LowerBoundKind::kNaive);
    const double nlb = run(Algorithm::kJoin, LowerBoundKind::kNaive);
    const double clb = run(Algorithm::kJoin, LowerBoundKind::kConservative);
    const double alb = run(Algorithm::kJoin, LowerBoundKind::kAggressive);

    table.Row({WineComboLabel(combo), Ms(basic), Ms(improved), Ms(nlb),
               Ms(clb), Ms(alb)});

    worst_basic_vs_improved =
        std::min(worst_basic_vs_improved, basic / improved);
    const double best_join = std::min(nlb, std::min(clb, alb));
    worst_improved_vs_join =
        std::min(worst_improved_vs_join, improved / best_join);
  }

  PrintShape("basic probing slowest on every combination (min basic/improved "
             "ratio " + Ms(worst_basic_vs_improved) + "x; paper: improved "
             "cuts 1/3-1/2)");
  PrintShape("join beats improved probing on every combination (min ratio " +
             Ms(worst_improved_vs_join) + "x)");
  PrintShape("the three lower bounds differ only modestly at this small "
             "scale (paper Section IV-B)");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace skyup

int main(int argc, char** argv) { return skyup::bench::Main(argc, argv); }
