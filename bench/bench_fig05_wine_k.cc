// Figure 5 — progressiveness on the wine data set with attributes c,s,t:
// time until the join (NLB / CLB / ALB) has produced k results, k = 1..20.

#include <string>
#include <vector>

#include "bench_common.h"
#include "data/wine.h"
#include "util/logging.h"

namespace skyup {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  PrintHeader("Figure 5",
              "effect of k on the wine data set (c,s,t attributes)", args);

  Result<Dataset> wine = SynthesizeWine(4898, args.seed + 1970);
  SKYUP_CHECK(wine.ok());
  const std::vector<WineAttr> combo = {WineAttr::kChlorides,
                                       WineAttr::kSulphates,
                                       WineAttr::kTotalSulfurDioxide};
  Result<Dataset> reduced = WineSubset(*wine, combo);
  SKYUP_CHECK(reduced.ok());
  Result<WineSplit> split = SplitWine(*reduced, 1000, args.seed);
  SKYUP_CHECK(split.ok());
  Workload w =
      BuildFrom(std::move(split->competitors), std::move(split->products));
  ProductCostFunction cost_fn = ProductCostFunction::ReciprocalSum(3, 1e-3);

  Table table({"k", "NLB(ms)", "CLB(ms)", "ALB(ms)"});
  std::vector<double> clb_series;
  for (size_t k : {1, 5, 10, 15, 20}) {
    const double nlb = MedianMillis(
        [&] { RunProgressive(w, cost_fn, k, LowerBoundKind::kNaive, BoundMode::kPaper); },
        args.repeats);
    const double clb = MedianMillis(
        [&] { RunProgressive(w, cost_fn, k, LowerBoundKind::kConservative, BoundMode::kPaper); },
        args.repeats);
    const double alb = MedianMillis(
        [&] { RunProgressive(w, cost_fn, k, LowerBoundKind::kAggressive, BoundMode::kPaper); },
        args.repeats);
    table.Row({std::to_string(k), Ms(nlb), Ms(clb), Ms(alb)});
    clb_series.push_back(clb);
  }

  PrintShape("all lower bounds grow only mildly with k on this small real "
             "data set (paper: 'perform steadily as k increases')");
  PrintShape("CLB stays flat from k=1 to k=20 (measured " +
             Ms(clb_series.front()) + " -> " + Ms(clb_series.back()) +
             " ms; paper: CLB best overall)");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace skyup

int main(int argc, char** argv) { return skyup::bench::Main(argc, argv); }
