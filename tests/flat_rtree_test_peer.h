#ifndef SKYUP_TESTS_FLAT_RTREE_TEST_PEER_H_
#define SKYUP_TESTS_FLAT_RTREE_TEST_PEER_H_

// Test-only corruption backdoor into FlatRTree's private arenas, used to
// prove that Validate() pinpoints the first violated invariant and that
// the paranoid contract hooks actually abort on a broken snapshot. Lives
// under tests/ and must never be included from src/.

#include <cstdint>
#include <vector>

#include "rtree/flat_rtree.h"

namespace skyup {

class FlatRTreeTestPeer {
 public:
  // Raw mutable access to each arena, so tests can stage precise damage.
  static std::vector<int32_t>& level(FlatRTree* t) { return t->level_; }
  static std::vector<uint32_t>& begin(FlatRTree* t) { return t->begin_; }
  static std::vector<uint32_t>& end(FlatRTree* t) { return t->end_; }
  static std::vector<double>& lo_soa(FlatRTree* t) { return t->lo_soa_; }
  static std::vector<double>& hi_soa(FlatRTree* t) { return t->hi_soa_; }
  static std::vector<double>& lo_aos(FlatRTree* t) { return t->lo_aos_; }
  static std::vector<double>& hi_aos(FlatRTree* t) { return t->hi_aos_; }
  static std::vector<double>& key(FlatRTree* t) { return t->key_; }
  static std::vector<PointId>& point_ids(FlatRTree* t) {
    return t->point_ids_;
  }
  static std::vector<double>& pt_soa(FlatRTree* t) { return t->pt_soa_; }
  static std::vector<double>& pt_aos(FlatRTree* t) { return t->pt_aos_; }
  // Tombstone arenas.
  static std::vector<uint8_t>& slot_live(FlatRTree* t) {
    return t->slot_live_;
  }
  static std::vector<uint32_t>& live_count(FlatRTree* t) {
    return t->live_count_;
  }
  static std::vector<uint32_t>& parent(FlatRTree* t) { return t->parent_; }
  static std::vector<uint32_t>& leaf_of_slot(FlatRTree* t) {
    return t->leaf_of_slot_;
  }
  static std::vector<uint32_t>& slot_of_row(FlatRTree* t) {
    return t->slot_of_row_;
  }
  static size_t& tombstones(FlatRTree* t) { return t->tombstones_; }
};

}  // namespace skyup

#endif  // SKYUP_TESTS_FLAT_RTREE_TEST_PEER_H_
