// Randomized equivalence suite for the batched dominance kernels
// (core/dominance_batch.h): the dispatched entry points (AVX2 when the
// build and the CPU provide it) must agree bit for bit with the scalar
// oracle and with per-lane first-principles dominance tests — on uniform
// random blocks, tie-heavy blocks drawn from a tiny value alphabet, and
// blocks of exact duplicates, across dims 2..6 and lane counts that
// exercise every 4-lane-group/tail split.

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "core/dominance.h"
#include "core/dominance_batch.h"

namespace skyup {
namespace {

enum class BlockKind { kUniform, kTieHeavy, kDuplicates };

const char* KindName(BlockKind kind) {
  switch (kind) {
    case BlockKind::kUniform:
      return "uniform";
    case BlockKind::kTieHeavy:
      return "tie-heavy";
    case BlockKind::kDuplicates:
      return "duplicates";
  }
  return "?";
}

// A block plus an independently generated query point. Tie-heavy data draws
// every coordinate from {0.25, 0.5, 0.75}, so equal-on-some-dimensions and
// equal-on-all-dimensions lanes are common rather than measure-zero.
struct Case {
  SoaBlock block;
  std::vector<double> query;
};

Case MakeCase(size_t dims, size_t count, BlockKind kind, std::mt19937_64* rng) {
  Case c{SoaBlock(dims), std::vector<double>(dims)};
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::uniform_int_distribution<int> coarse(1, 3);
  std::vector<double> p(dims);
  auto draw = [&](std::vector<double>* out) {
    for (size_t d = 0; d < dims; ++d) {
      (*out)[d] = kind == BlockKind::kUniform ? uniform(*rng)
                                              : 0.25 * coarse(*rng);
    }
  };
  draw(&c.query);
  draw(&p);
  for (size_t i = 0; i < count; ++i) {
    if (kind != BlockKind::kDuplicates) draw(&p);
    c.block.Append(p.data());
  }
  return c;
}

TEST(SoaBlockTest, AppendClearAndViewRoundTrip) {
  SoaBlock block(3);
  EXPECT_TRUE(block.empty());
  const double a[] = {1.0, 2.0, 3.0};
  const double b[] = {4.0, 5.0, 6.0};
  block.Append(a);
  block.Append(b);
  ASSERT_EQ(block.size(), 2u);
  for (size_t d = 0; d < 3; ++d) {
    EXPECT_EQ(block.at(0, d), a[d]);
    EXPECT_EQ(block.at(1, d), b[d]);
  }
  const SoaView view = block.view();
  ASSERT_EQ(view.count, 2u);
  ASSERT_EQ(view.dims, 3u);
  ASSERT_GE(view.stride, view.count);
  for (size_t d = 0; d < 3; ++d) {
    EXPECT_EQ(view.dim(d)[0], a[d]);
    EXPECT_EQ(view.dim(d)[1], b[d]);
  }
  block.Clear();
  EXPECT_TRUE(block.empty());
  block.Append(b);
  EXPECT_EQ(block.at(0, 2), 6.0);
}

TEST(SoaBlockTest, LaneIndicesSurviveGrowth) {
  // Append enough lanes to force several capacity doublings and check that
  // earlier lanes keep their index and values.
  SoaBlock block(4);
  std::vector<std::vector<double>> rows;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  for (size_t i = 0; i < 300; ++i) {
    std::vector<double> p(4);
    for (double& x : p) x = uniform(rng);
    block.Append(p.data());
    rows.push_back(std::move(p));
  }
  ASSERT_EQ(block.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t d = 0; d < 4; ++d) {
      ASSERT_EQ(block.at(i, d), rows[i][d]) << "lane " << i << " dim " << d;
    }
  }
}

TEST(DominanceBatchTest, KernelNameIsKnown) {
  const std::string name = BatchKernelName();
  EXPECT_TRUE(name == "avx2" || name == "scalar") << name;
}

// The core equivalence sweep: dispatched == scalar oracle == per-lane
// first-principles answer, for every kernel, on every block shape.
TEST(DominanceBatchTest, DispatchedMatchesScalarAndFirstPrinciples) {
  std::mt19937_64 rng(20260805);
  const size_t counts[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 64, 67};
  for (size_t dims = 2; dims <= 6; ++dims) {
    for (BlockKind kind :
         {BlockKind::kUniform, BlockKind::kTieHeavy, BlockKind::kDuplicates}) {
      for (size_t count : counts) {
        for (int rep = 0; rep < 8; ++rep) {
          const Case c = MakeCase(dims, count, kind, &rng);
          const SoaView view = c.block.view();
          const double* q = c.query.data();
          SCOPED_TRACE(std::string(KindName(kind)) + " dims=" +
                       std::to_string(dims) + " count=" +
                       std::to_string(count) + " rep=" + std::to_string(rep));

          // DominatesAny: any lane <= q on all dimensions.
          bool expect_any = false;
          std::vector<double> lane(dims);
          for (size_t i = 0; i < count && !expect_any; ++i) {
            for (size_t d = 0; d < dims; ++d) lane[d] = c.block.at(i, d);
            expect_any = DominatesOrEqual(lane.data(), q, dims);
          }
          EXPECT_EQ(DominatesAny(view, q), expect_any);
          EXPECT_EQ(DominatesAnyScalar(view, q), expect_any);

          // FilterDominated, strict and non-strict: exact ascending index
          // lists.
          for (bool strict : {true, false}) {
            std::vector<uint32_t> expect;
            for (size_t i = 0; i < count; ++i) {
              for (size_t d = 0; d < dims; ++d) lane[d] = c.block.at(i, d);
              const bool keep = strict ? Dominates(lane.data(), q, dims)
                                       : DominatesOrEqual(lane.data(), q, dims);
              if (keep) expect.push_back(static_cast<uint32_t>(i));
            }
            std::vector<uint32_t> got, got_scalar;
            EXPECT_EQ(FilterDominated(view, q, &got, strict), expect.size());
            EXPECT_EQ(FilterDominatedScalar(view, q, &got_scalar, strict),
                      expect.size());
            EXPECT_EQ(got, expect) << "strict=" << strict;
            EXPECT_EQ(got_scalar, expect) << "strict=" << strict;
          }

          // ClassifyBlock: one Compare per lane.
          std::vector<DomRelation> got(count), got_scalar(count);
          ClassifyBlock(view, q, got.data());
          ClassifyBlockScalar(view, q, got_scalar.data());
          for (size_t i = 0; i < count; ++i) {
            for (size_t d = 0; d < dims; ++d) lane[d] = c.block.at(i, d);
            const DomRelation expect = Compare(lane.data(), q, dims);
            EXPECT_EQ(got[i], expect) << "lane " << i;
            EXPECT_EQ(got_scalar[i], expect) << "lane " << i;
          }
        }
      }
    }
  }
}

// FilterDominated must *append* (callers reuse one scratch vector per
// traversal) and report only the newly appended count.
TEST(DominanceBatchTest, FilterDominatedAppendsToExistingOutput) {
  SoaBlock block(2);
  const double lo[] = {0.1, 0.1};
  const double hi[] = {0.9, 0.9};
  block.Append(lo);
  block.Append(hi);
  const double q[] = {0.5, 0.5};
  std::vector<uint32_t> out = {77};
  EXPECT_EQ(FilterDominated(block.view(), q, &out), 1u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 77u);
  EXPECT_EQ(out[1], 0u);
}

// A strided view (capacity > count, as FlatRTree node ranges produce) must
// read the right lanes — a regression guard for stride/count mix-ups.
TEST(DominanceBatchTest, StridedViewReadsCorrectLanes) {
  // Manual dimension-major buffer: stride 8, 3 live lanes, 2 dims.
  std::vector<double> data(2 * 8, -1.0);
  const double lanes[3][2] = {{0.2, 0.2}, {0.6, 0.6}, {0.3, 0.9}};
  for (size_t i = 0; i < 3; ++i) {
    data[0 * 8 + i] = lanes[i][0];
    data[1 * 8 + i] = lanes[i][1];
  }
  const SoaView view{data.data(), 8, 3, 2};
  const double q[] = {0.5, 0.5};
  std::vector<uint32_t> out;
  EXPECT_EQ(FilterDominated(view, q, &out), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0u);
  EXPECT_TRUE(DominatesAny(view, q));
}

// The multi-query tile kernel: dispatched == scalar oracle == per-pair
// first-principles dominance, in both orientations, over tile widths that
// exercise the 4-member register-block chunks and their tails.
TEST(DominanceBatchTest, TileMasksMatchScalarAndFirstPrinciples) {
  std::mt19937_64 rng(20260807);
  const size_t lane_counts[] = {0, 1, 3, 4, 5, 8, 17, 64, 67};
  const size_t tile_counts[] = {1, 2, 3, 4, 5, 8, 9, 16, 63, 64};
  for (size_t dims = 2; dims <= 5; ++dims) {
    for (BlockKind kind :
         {BlockKind::kUniform, BlockKind::kTieHeavy, BlockKind::kDuplicates}) {
      for (size_t lanes : lane_counts) {
        for (size_t tiles : tile_counts) {
          const Case c = MakeCase(dims, lanes, kind, &rng);
          // Tile points drawn the same way as block lanes, so tie-heavy
          // cases produce exact lane==tile coordinate matches (the strict
          // vs non-strict boundary).
          std::vector<Case> extra;
          std::vector<const double*> tile(tiles);
          for (size_t j = 0; j < tiles; ++j) {
            extra.push_back(MakeCase(dims, 0, kind, &rng));
            tile[j] = extra.back().query.data();
          }
          const SoaView view = c.block.view();
          for (bool strict : {true, false}) {
            SCOPED_TRACE(std::string(KindName(kind)) + " dims=" +
                         std::to_string(dims) + " lanes=" +
                         std::to_string(lanes) + " tiles=" +
                         std::to_string(tiles) +
                         (strict ? " strict" : " non-strict"));
            std::vector<uint64_t> got(lanes, ~uint64_t{0});
            std::vector<uint64_t> oracle(lanes, 0);
            TileDominanceMasks(view, tile.data(), tiles, strict, got.data());
            TileDominanceMasksScalar(view, tile.data(), tiles, strict,
                                     oracle.data());
            std::vector<double> lane(dims);
            for (size_t i = 0; i < lanes; ++i) {
              ASSERT_EQ(got[i], oracle[i]) << "lane " << i;
              for (size_t d = 0; d < dims; ++d) lane[d] = c.block.at(i, d);
              for (size_t j = 0; j < tiles; ++j) {
                const bool expect =
                    strict ? Dominates(lane.data(), tile[j], dims)
                           : DominatesOrEqual(lane.data(), tile[j], dims);
                ASSERT_EQ((got[i] >> j) & 1u, expect ? 1u : 0u)
                    << "lane " << i << " tile " << j;
              }
            }
          }
        }
      }
    }
  }
}

// For any fixed tile member, the tile kernel's bit column must reproduce
// the single-query FilterDominated decisions exactly (the contract the
// tile traversal's per-member pruning relies on).
TEST(DominanceBatchTest, TileMaskColumnsMatchSingleQueryFilter) {
  std::mt19937_64 rng(977);
  for (int rep = 0; rep < 20; ++rep) {
    const size_t dims = 2 + rep % 4;
    const Case c = MakeCase(dims, 33, BlockKind::kTieHeavy, &rng);
    std::vector<Case> extra;
    std::vector<const double*> tile;
    for (size_t j = 0; j < 7; ++j) {
      extra.push_back(MakeCase(dims, 0, BlockKind::kTieHeavy, &rng));
      tile.push_back(extra.back().query.data());
    }
    const SoaView view = c.block.view();
    std::vector<uint64_t> masks(view.count, 0);
    TileDominanceMasks(view, tile.data(), tile.size(), /*strict=*/true,
                       masks.data());
    for (size_t j = 0; j < tile.size(); ++j) {
      std::vector<uint32_t> solo;
      FilterDominated(view, tile[j], &solo, /*strict=*/true);
      std::vector<uint32_t> from_tile;
      for (size_t i = 0; i < view.count; ++i) {
        if ((masks[i] >> j) & 1u) {
          from_tile.push_back(static_cast<uint32_t>(i));
        }
      }
      EXPECT_EQ(from_tile, solo) << "tile member " << j;
    }
  }
}

}  // namespace
}  // namespace skyup
