#include "util/status.h"

#include <gtest/gtest.h>

#include <string>

namespace skyup {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    std::string name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::OutOfRange("c"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::FailedPrecondition("d"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::Internal("e"), StatusCode::kInternal, "Internal"},
      {Status::IOError("f"), StatusCode::kIOError, "IOError"},
      {Status::NotSupported("g"), StatusCode::kNotSupported, "NotSupported"},
      {Status::Cancelled("h"), StatusCode::kCancelled, "Cancelled"},
      {Status::DeadlineExceeded("i"), StatusCode::kDeadlineExceeded,
       "DeadlineExceeded"},
      {Status::ResourceExhausted("j"), StatusCode::kResourceExhausted,
       "ResourceExhausted"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeName(c.status.code())), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, ToStringIncludesMessage) {
  Status s = Status::InvalidArgument("k must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be positive");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, MoveOnlyType) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

Status Passthrough(const Status& s) {
  SKYUP_RETURN_IF_ERROR(s);
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Passthrough(Status::OK()).ok());
  EXPECT_EQ(Passthrough(Status::Internal("boom")).code(),
            StatusCode::kInternal);
}

}  // namespace
}  // namespace skyup
