// Tests for the wire protocol and the multi-tenant front door
// (serve/shard/wire.h, serve/shard/front_door.h, serve/shard/registry.h):
// frame round trips including bit-exact doubles, the full command table
// over a real loopback socket, tenant isolation, error code recovery
// across the wire, the tenant registry's validation rules, and shutdown
// (command-initiated and Stop-initiated, both clean).

#include "serve/shard/wire.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "serve/shard/front_door.h"
#include "serve/shard/registry.h"

namespace skyup {
namespace {

ServerOptions TenantBase() {
  ServerOptions base;
  base.dims = 1;  // per-tenant `create` overrides
  base.query_threads = 2;
  base.background_rebuild = false;
  base.rebuild_threshold_ops = 8;
  base.flight_recorder = false;
  return base;
}

Result<std::unique_ptr<FrontDoor>> StartDoor() {
  FrontDoorOptions options;
  options.port = 0;  // ephemeral
  options.tenant_base = TenantBase();
  return FrontDoor::Start(options);
}

uint64_t StatValue(
    const std::vector<std::pair<std::string, std::string>>& stats,
    const std::string& key) {
  for (const auto& [k, v] : stats) {
    if (k == key) return std::stoull(v);
  }
  ADD_FAILURE() << "stat key missing: " << key;
  return 0;
}

TEST(WireFrameTest, RoundTripsThroughASocketPair) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload = "hello\nwith\nnewlines";
  ASSERT_TRUE(WireWriteFrame(fds[0], payload).ok());
  auto got = WireReadFrame(fds[1]);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, payload);
  // Empty frames are rejected on both sides of the protocol.
  EXPECT_FALSE(WireWriteFrame(fds[0], "").ok());
  close(fds[0]);
  close(fds[1]);
}

TEST(WireFrameTest, DistinguishesCleanCloseFromMidFrameClose) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  close(fds[0]);  // peer gone before any byte
  EXPECT_EQ(WireReadFrame(fds[1], /*eof_ok=*/true).status().code(),
            StatusCode::kCancelled);
  close(fds[1]);

  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string partial = "100\ntoo short";  // promises 100 bytes
  ASSERT_EQ(send(fds[0], partial.data(), partial.size(), 0),
            static_cast<ssize_t>(partial.size()));
  close(fds[0]);
  EXPECT_EQ(WireReadFrame(fds[1], /*eof_ok=*/true).status().code(),
            StatusCode::kIOError);
  close(fds[1]);
}

TEST(WireFrameTest, RejectsOversizedAndMalformedHeaders) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string huge = std::to_string(kWireMaxFrameBytes + 1) + "\n";
  ASSERT_EQ(send(fds[0], huge.data(), huge.size(), 0),
            static_cast<ssize_t>(huge.size()));
  EXPECT_FALSE(WireReadFrame(fds[1]).ok());
  close(fds[0]);
  close(fds[1]);

  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string junk = "abc\n";
  ASSERT_EQ(send(fds[0], junk.data(), junk.size(), 0),
            static_cast<ssize_t>(junk.size()));
  EXPECT_FALSE(WireReadFrame(fds[1]).ok());
  close(fds[0]);
  close(fds[1]);
}

TEST(WireFormatTest, DoublesSurviveTheTextRoundTripBitExactly) {
  const std::vector<double> coords = {1.0 / 3.0, 1e-300, 0.1 + 0.2,
                                      123456.789012345678};
  const std::string row = WireFormatCoords(coords);
  // Parse the space-separated tokens back and demand bit equality.
  std::vector<double> parsed;
  size_t start = 0;
  while (start < row.size()) {
    size_t space = row.find(' ', start);
    if (space == std::string::npos) space = row.size();
    parsed.push_back(std::stod(row.substr(start, space - start)));
    start = space + 1;
  }
  ASSERT_EQ(parsed.size(), coords.size());
  for (size_t i = 0; i < coords.size(); ++i) {
    // lint: float-eq-ok (%.17g round trip must be bit-exact)
    EXPECT_EQ(parsed[i], coords[i]) << "coord " << i;
  }
}

TEST(TenantRegistryTest, ValidatesNamesAndRejectsDuplicates) {
  TenantRegistry registry(TenantBase());
  EXPECT_EQ(registry.Create("", 2, 1, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Create("bad name", 2, 1, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Create(std::string(65, 'a'), 2, 1, 0).status().code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(registry.Create("good.name-1_2", 2, 1, 0).ok());
  EXPECT_EQ(registry.Create("good.name-1_2", 2, 1, 0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.Find("missing").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(FrontDoorTest, CommandTableEndToEnd) {
  auto door = StartDoor();
  ASSERT_TRUE(door.ok());
  ASSERT_NE((*door)->port(), 0);

  auto client = WireClient::Dial("127.0.0.1", (*door)->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping().ok());

  auto tenant_id = client->CreateTenant("acme", /*dims=*/2, /*shards=*/3,
                                        /*quota=*/16);
  ASSERT_TRUE(tenant_id.ok());
  EXPECT_EQ(*tenant_id, 1u);

  // add: stable ids count from 1 per kind.
  auto p1 = client->Insert("acme", /*competitor=*/true, {0.2, 0.8});
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p1, 1u);
  auto t1 = client->Insert("acme", /*competitor=*/false, {0.9, 0.9});
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(*t1, 1u);

  // load: bulk rows in one frame.
  auto loaded = client->Call("load acme\np,0.7,0.1\nt,0.5,0.5");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->substr(0, 3), "+ok") << *loaded;

  ASSERT_TRUE(client->TopK("acme", 2, /*timeout_seconds=*/5.0).ok());
  ASSERT_TRUE(client->Erase("acme", /*competitor=*/true, *p1).ok());
  EXPECT_EQ(client->Erase("acme", true, *p1).code(), StatusCode::kNotFound);

  auto stats = client->Stats("acme");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(StatValue(*stats, "tenant_id"), 1u);
  EXPECT_EQ(StatValue(*stats, "dims"), 2u);
  EXPECT_EQ(StatValue(*stats, "shards"), 3u);
  EXPECT_EQ(StatValue(*stats, "quota"), 16u);
  EXPECT_EQ(StatValue(*stats, "queries_executed"), 1u);
  EXPECT_EQ(StatValue(*stats, "updates_applied"), 5u);
  EXPECT_EQ(StatValue(*stats, "shard_queries"), 1u);
  EXPECT_EQ(StatValue(*stats, "shard_fanout"), 3u);

  (*door)->Stop();
}

TEST(FrontDoorTest, TenantsAreIsolatedAndErrorsCarryCodes) {
  auto door = StartDoor();
  ASSERT_TRUE(door.ok());
  auto client = WireClient::Dial("127.0.0.1", (*door)->port());
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE(client->CreateTenant("a", 2, 1, 0).ok());
  ASSERT_TRUE(client->CreateTenant("b", 3, 2, 0).ok());
  ASSERT_TRUE(client->Insert("a", true, {0.1, 0.2}).ok());
  ASSERT_TRUE(client->Insert("b", true, {0.1, 0.2, 0.3}).ok());

  // Wrong arity for tenant b: the error code crosses the wire intact.
  EXPECT_EQ(client->Insert("b", true, {0.1, 0.2}).status().code(),
            StatusCode::kInvalidArgument);
  // Unknown tenant.
  EXPECT_EQ(client->Insert("ghost", true, {0.5, 0.5}).status().code(),
            StatusCode::kNotFound);
  // Duplicate create without attach.
  EXPECT_EQ(client->CreateTenant("a", 2, 1, 0).status().code(),
            StatusCode::kFailedPrecondition);
  // attach_existing recovers the id instead.
  auto attached = client->CreateTenant("a", 2, 1, 0,
                                       /*attach_existing=*/true);
  ASSERT_TRUE(attached.ok());
  EXPECT_EQ(*attached, 1u);

  // Tenant a still has exactly one row; tenant b's updates stayed in b.
  auto stats_a = client->Stats("a");
  ASSERT_TRUE(stats_a.ok());
  EXPECT_EQ(StatValue(*stats_a, "updates_applied"), 1u);
  EXPECT_EQ(StatValue(*stats_a, "tenant_id"), 1u);
  auto stats_b = client->Stats("b");
  ASSERT_TRUE(stats_b.ok());
  EXPECT_EQ(StatValue(*stats_b, "tenant_id"), 2u);

  // Unknown commands and malformed requests answer -err, not a hangup.
  auto bad = client->Call("frobnicate");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->substr(0, 4), "-err") << *bad;
  bad = client->Call("topk a notanumber");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->substr(0, 4), "-err") << *bad;

  (*door)->Stop();
}

TEST(FrontDoorTest, ShutdownCommandUnblocksWaitForShutdown) {
  auto door = StartDoor();
  ASSERT_TRUE(door.ok());
  auto client = WireClient::Dial("127.0.0.1", (*door)->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Shutdown().ok());
  (*door)->WaitForShutdown();  // must return promptly
  (*door)->Stop();
  (*door)->Stop();  // idempotent
}

TEST(FrontDoorTest, StopWithLiveConnectionsIsClean) {
  auto door = StartDoor();
  ASSERT_TRUE(door.ok());
  std::vector<WireClient> clients;
  for (int i = 0; i < 3; ++i) {
    auto client = WireClient::Dial("127.0.0.1", (*door)->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->Ping().ok());
    clients.push_back(std::move(*client));
  }
  (*door)->Stop();  // must unblock all connection reads and join
  // Subsequent calls on the dead connection fail, not hang.
  EXPECT_FALSE(clients[0].Ping().ok());
}

TEST(WireLoadTargetTest, DrivesARemoteTenant) {
  auto door = StartDoor();
  ASSERT_TRUE(door.ok());
  auto admin = WireClient::Dial("127.0.0.1", (*door)->port());
  ASSERT_TRUE(admin.ok());
  ASSERT_TRUE(admin->CreateTenant("bench", 2, 2, 0).ok());

  auto target = WireLoadTarget::Create("127.0.0.1", (*door)->port(),
                                       "bench");
  ASSERT_TRUE(target.ok());
  auto conn = (*target)->Connect(1);
  ASSERT_TRUE(conn.ok());
  auto id = (*conn)->InsertCompetitor({0.3, 0.7});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*conn)->InsertProduct({0.8, 0.8}).ok());
  ASSERT_TRUE((*conn)->Query(3, /*timeout_seconds=*/5.0).ok());
  ASSERT_TRUE((*conn)->EraseCompetitor(*id).ok());

  auto backlog = (*target)->DeltaBacklog();
  ASSERT_TRUE(backlog.ok());
  EXPECT_EQ(*backlog, 3u);
  auto threshold = (*target)->RebuildThresholdOps();
  ASSERT_TRUE(threshold.ok());
  EXPECT_EQ(*threshold, 8u);  // TenantBase's rebuild_threshold_ops

  (*door)->Stop();
}

}  // namespace
}  // namespace skyup
