#include "obs/phase_timings.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace skyup {
namespace {

// The MergeFrom tripwire: set every field to a distinct value and check
// the merge sums each one. A field added to PhaseTimings without a line
// in MergeFrom trips the static_assert there; a field added *with* the
// assert bumped but without the add would fail here.
TEST(PhaseTimingsTest, MergeFromCoversEveryField) {
  static_assert(sizeof(PhaseTimings) == 6 * sizeof(double),
                "PhaseTimings changed shape: extend this test");
  PhaseTimings a;
  a.probe_seconds = 1.0;
  a.skyline_seconds = 2.0;
  a.upgrade_seconds = 3.0;
  a.prune_seconds = 4.0;
  a.merge_seconds = 5.0;
  a.other_seconds = 6.0;
  PhaseTimings b;
  b.probe_seconds = 10.0;
  b.skyline_seconds = 20.0;
  b.upgrade_seconds = 30.0;
  b.prune_seconds = 40.0;
  b.merge_seconds = 50.0;
  b.other_seconds = 60.0;

  a.MergeFrom(b);
  EXPECT_DOUBLE_EQ(a.probe_seconds, 11.0);
  EXPECT_DOUBLE_EQ(a.skyline_seconds, 22.0);
  EXPECT_DOUBLE_EQ(a.upgrade_seconds, 33.0);
  EXPECT_DOUBLE_EQ(a.prune_seconds, 44.0);
  EXPECT_DOUBLE_EQ(a.merge_seconds, 55.0);
  EXPECT_DOUBLE_EQ(a.other_seconds, 66.0);
  EXPECT_DOUBLE_EQ(a.TotalSeconds(), 231.0);
}

TEST(PhaseTimingsTest, TotalIsTheFieldSum) {
  PhaseTimings t;
  EXPECT_DOUBLE_EQ(t.TotalSeconds(), 0.0);
  t.probe_seconds = 0.5;
  t.other_seconds = 0.25;
  EXPECT_DOUBLE_EQ(t.TotalSeconds(), 0.75);
}

TEST(PhaseBreakdownTest, AddShardAppendsAndRollsUp) {
  PhaseBreakdown breakdown;
  PhaseTimings shard;
  shard.probe_seconds = 1.0;
  breakdown.AddShard(shard);
  shard.probe_seconds = 2.0;
  breakdown.AddShard(shard);
  ASSERT_EQ(breakdown.per_shard.size(), 2u);
  EXPECT_DOUBLE_EQ(breakdown.per_shard[0].probe_seconds, 1.0);
  EXPECT_DOUBLE_EQ(breakdown.per_shard[1].probe_seconds, 2.0);
  EXPECT_DOUBLE_EQ(breakdown.total.probe_seconds, 3.0);
}

TEST(PhaseClockTest, LapsTileElapsedTime) {
  PhaseTimings timings;
  PhaseClock clock(&timings);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double probe = clock.Lap(&PhaseTimings::probe_seconds);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double upgrade = clock.Lap(&PhaseTimings::upgrade_seconds);
  EXPECT_GE(probe, 0.002);
  EXPECT_GE(upgrade, 0.002);
  EXPECT_DOUBLE_EQ(timings.probe_seconds, probe);
  EXPECT_DOUBLE_EQ(timings.upgrade_seconds, upgrade);
  // Laps are chained: the second lap starts where the first ended, so the
  // total is the sum without overlap.
  EXPECT_DOUBLE_EQ(timings.TotalSeconds(), probe + upgrade);
}

TEST(PhaseClockTest, NullSinkDisablesEverything) {
  PhaseClock clock(nullptr);
  EXPECT_FALSE(clock.enabled());
  EXPECT_DOUBLE_EQ(clock.Lap(&PhaseTimings::probe_seconds), 0.0);
}

TEST(PhaseClockTest, RepeatedLapsIntoOneFieldAccumulate) {
  PhaseTimings timings;
  PhaseClock clock(&timings);
  const double first = clock.Lap(&PhaseTimings::probe_seconds);
  const double second = clock.Lap(&PhaseTimings::probe_seconds);
  EXPECT_DOUBLE_EQ(timings.probe_seconds, first + second);
}

TEST(ShardTelemetryTest, FlushAppendsShardAndMergesHistograms) {
  ShardTelemetry shard;
  shard.LapProbe();
  shard.LapUpgrade();
  shard.LapOther();

  QueryTelemetry query;
  shard.FlushInto(&query);
  ASSERT_EQ(query.phases.per_shard.size(), 1u);
  EXPECT_EQ(query.probe_latency.count(), 1u);
  EXPECT_EQ(query.upgrade_latency.count(), 1u);
  EXPECT_GE(query.phases.total.TotalSeconds(), 0.0);
  // lint: float-eq-ok (flushing copies the shard's exact values)
  EXPECT_EQ(query.phases.total.probe_seconds, shard.timings().probe_seconds);

  // A second shard stacks: two entries, histograms merge.
  ShardTelemetry other;
  other.LapProbe();
  other.FlushInto(&query);
  EXPECT_EQ(query.phases.per_shard.size(), 2u);
  EXPECT_EQ(query.probe_latency.count(), 2u);
}

TEST(ShardTelemetryTest, NullSafeWrappersAcceptNull) {
  // Each must be a plain branch on null — no crash, no effect.
  LapProbe(nullptr);
  LapSkyline(nullptr);
  LapUpgrade(nullptr);
  LapPrune(nullptr);
  LapMerge(nullptr);
  LapOther(nullptr);

  ShardTelemetry shard;
  LapProbe(&shard);
  LapSkyline(&shard);
  LapUpgrade(&shard);
  LapPrune(&shard);
  LapMerge(&shard);
  LapOther(&shard);
  EXPECT_GE(shard.timings().TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace skyup
