#include "core/parallel_probing.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/probing.h"
#include "data/generator.h"

namespace skyup {
namespace {

struct Fixture {
  Dataset competitors;
  Dataset products;
  ProductCostFunction cost_fn;
};

Fixture Make(size_t np, size_t nt, size_t dims, Distribution distribution,
             uint64_t seed) {
  Result<Dataset> p = GenerateCompetitors(np, dims, distribution, seed);
  Result<Dataset> t = GenerateProducts(nt, dims, distribution, seed + 1);
  EXPECT_TRUE(p.ok() && t.ok());
  return Fixture{std::move(p).value(), std::move(t).value(),
                 ProductCostFunction::ReciprocalSum(dims, 1e-3)};
}

TEST(ParallelProbingTest, MatchesSequentialExactly) {
  for (auto distribution : {Distribution::kIndependent,
                            Distribution::kAntiCorrelated}) {
    Fixture fx = Make(800, 120, 3, distribution, 42);
    Result<RTree> tree = RTree::BulkLoad(fx.competitors);
    ASSERT_TRUE(tree.ok());

    Result<std::vector<UpgradeResult>> sequential =
        TopKImprovedProbing(tree.value(), fx.products, fx.cost_fn, 15);
    ASSERT_TRUE(sequential.ok());

    for (size_t threads : {1, 2, 4, 7}) {
      Result<std::vector<UpgradeResult>> parallel =
          TopKImprovedProbingParallel(tree.value(), fx.products, fx.cost_fn,
                                      15, 1e-6, threads);
      ASSERT_TRUE(parallel.ok());
      ASSERT_EQ(parallel->size(), sequential->size()) << threads;
      for (size_t i = 0; i < sequential->size(); ++i) {
        EXPECT_EQ((*parallel)[i].product_id, (*sequential)[i].product_id)
            << "threads=" << threads << " rank=" << i;
        EXPECT_NEAR((*parallel)[i].cost, (*sequential)[i].cost, 1e-12);
        EXPECT_EQ((*parallel)[i].upgraded, (*sequential)[i].upgraded);
      }
    }
  }
}

TEST(ParallelProbingTest, MoreThreadsThanProducts) {
  Fixture fx = Make(200, 3, 2, Distribution::kIndependent, 7);
  Result<RTree> tree = RTree::BulkLoad(fx.competitors);
  ASSERT_TRUE(tree.ok());
  Result<std::vector<UpgradeResult>> r = TopKImprovedProbingParallel(
      tree.value(), fx.products, fx.cost_fn, 3, 1e-6, /*threads=*/64);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
}

TEST(ParallelProbingTest, DefaultThreadCount) {
  Fixture fx = Make(300, 50, 2, Distribution::kIndependent, 8);
  Result<RTree> tree = RTree::BulkLoad(fx.competitors);
  ASSERT_TRUE(tree.ok());
  ExecStats stats;
  Result<std::vector<UpgradeResult>> r = TopKImprovedProbingParallel(
      tree.value(), fx.products, fx.cost_fn, 5, 1e-6, /*threads=*/0, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 5u);
  EXPECT_EQ(stats.products_processed, 50u);
  // Every candidate either paid for Algorithm 1 or was cut by the sound
  // lower bound — nothing falls through the accounting.
  EXPECT_EQ(stats.upgrade_calls + stats.candidates_pruned,
            stats.products_processed);
}

TEST(ParallelProbingTest, ShardTruncationKeepsGlobalOptimum) {
  // Many products per shard force the bounded-buffer truncation path; the
  // global top-k must survive it.
  Fixture fx = Make(400, 500, 2, Distribution::kAntiCorrelated, 9);
  Result<RTree> tree = RTree::BulkLoad(fx.competitors);
  ASSERT_TRUE(tree.ok());
  Result<std::vector<UpgradeResult>> sequential =
      TopKImprovedProbing(tree.value(), fx.products, fx.cost_fn, 8);
  Result<std::vector<UpgradeResult>> parallel = TopKImprovedProbingParallel(
      tree.value(), fx.products, fx.cost_fn, 8, 1e-6, 3);
  ASSERT_TRUE(sequential.ok() && parallel.ok());
  ASSERT_EQ(parallel->size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ((*parallel)[i].product_id, (*sequential)[i].product_id);
    EXPECT_NEAR((*parallel)[i].cost, (*sequential)[i].cost, 1e-12);
  }
}

TEST(ParallelProbingTest, RejectsInvalidArguments) {
  Fixture fx = Make(100, 10, 2, Distribution::kIndependent, 10);
  Result<RTree> tree = RTree::BulkLoad(fx.competitors);
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(TopKImprovedProbingParallel(tree.value(), fx.products,
                                           fx.cost_fn, 0)
                   .ok());
  EXPECT_FALSE(TopKImprovedProbingParallel(tree.value(), fx.products,
                                           fx.cost_fn, 1, -1.0)
                   .ok());
  Dataset empty(2);
  EXPECT_FALSE(
      TopKImprovedProbingParallel(tree.value(), empty, fx.cost_fn, 1).ok());
}

}  // namespace
}  // namespace skyup
