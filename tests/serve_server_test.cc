// Tests for the concurrent query front-end (serve/server.h): inline and
// queued query paths, admission control (bounded queue, kResourceExhausted
// rejection), queued-deadline shedding, outcome accounting, metrics
// export, and the ServeStats merge contract (every field summed).

#include "serve/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <sstream>
#include <vector>

#include "obs/metrics.h"
#include "util/timer.h"

namespace skyup {
namespace {

Result<std::unique_ptr<Server>> MakeServer(ServerOptions options) {
  return Server::Create(
      ProductCostFunction::ReciprocalSum(options.dims, 1e-3), options);
}

ServerOptions SmallOptions() {
  ServerOptions options;
  options.dims = 2;
  options.query_threads = 2;
  options.background_rebuild = false;
  options.rebuild_threshold_ops = 8;
  return options;
}

void Seed(Server* server) {
  ASSERT_TRUE(server->InsertCompetitor({0.1, 0.2}).ok());
  ASSERT_TRUE(server->InsertCompetitor({0.3, 0.1}).ok());
  ASSERT_TRUE(server->InsertProduct({0.9, 0.9}).ok());
  ASSERT_TRUE(server->InsertProduct({0.8, 0.7}).ok());
}

TEST(ServeStatsTest, MergeFromSumsEveryFieldDistinctly) {
  // Distinct primes per field: any dropped or double-merged field changes
  // the expected sum, so a new field wired into the struct but not into
  // MergeFrom cannot pass (the static_assert + tools/lint.py tripwire
  // guard the field count itself).
  ServeStats a;
  a.queries_executed = 2;
  a.queries_rejected = 3;
  a.queries_timed_out = 5;
  a.updates_applied = 7;
  a.updates_rejected = 11;
  a.rebuilds_published = 13;
  a.patches_published = 17;
  a.delta_ops_scanned = 19;
  a.erase_fallback_scans = 23;
  a.candidates_evaluated = 29;
  a.candidates_pruned = 31;
  a.prune_disabled_queries = 37;
  a.cache_hits = 149;
  a.cache_misses = 151;
  a.rebuild_threshold_ops = 41;
  a.publish_min_backlog = 43;
  a.publish_min_interval_ms = 47;
  a.compact_tombstone_pct = 53;
  a.compact_tail_pct = 59;
  ServeStats b;
  b.queries_executed = 61;
  b.queries_rejected = 67;
  b.queries_timed_out = 71;
  b.updates_applied = 73;
  b.updates_rejected = 79;
  b.rebuilds_published = 83;
  b.patches_published = 89;
  b.delta_ops_scanned = 97;
  b.erase_fallback_scans = 101;
  b.candidates_evaluated = 103;
  b.candidates_pruned = 107;
  b.prune_disabled_queries = 109;
  b.cache_hits = 157;
  b.cache_misses = 163;
  b.rebuild_threshold_ops = 113;
  b.publish_min_backlog = 127;
  b.publish_min_interval_ms = 131;
  b.compact_tombstone_pct = 137;
  b.compact_tail_pct = 139;

  a.MergeFrom(b);
  EXPECT_EQ(a.queries_executed, 63u);
  EXPECT_EQ(a.queries_rejected, 70u);
  EXPECT_EQ(a.queries_timed_out, 76u);
  EXPECT_EQ(a.updates_applied, 80u);
  EXPECT_EQ(a.updates_rejected, 90u);
  EXPECT_EQ(a.rebuilds_published, 96u);
  EXPECT_EQ(a.patches_published, 106u);
  EXPECT_EQ(a.delta_ops_scanned, 116u);
  EXPECT_EQ(a.erase_fallback_scans, 124u);
  EXPECT_EQ(a.candidates_evaluated, 132u);
  EXPECT_EQ(a.candidates_pruned, 138u);
  EXPECT_EQ(a.prune_disabled_queries, 146u);
  EXPECT_EQ(a.cache_hits, 306u);
  EXPECT_EQ(a.cache_misses, 314u);
  EXPECT_EQ(a.rebuild_threshold_ops, 154u);
  EXPECT_EQ(a.publish_min_backlog, 170u);
  EXPECT_EQ(a.publish_min_interval_ms, 178u);
  EXPECT_EQ(a.compact_tombstone_pct, 190u);
  EXPECT_EQ(a.compact_tail_pct, 198u);
}

TEST(ServerTest, CreateValidatesOptions) {
  ServerOptions bad = SmallOptions();
  bad.dims = 0;
  EXPECT_FALSE(Server::Create(ProductCostFunction::ReciprocalSum(2, 1e-3),
                              bad)
                   .ok());
  bad = SmallOptions();
  bad.dims = 3;  // cost function below stays 2-d
  EXPECT_FALSE(Server::Create(ProductCostFunction::ReciprocalSum(2, 1e-3),
                              bad)
                   .ok());
  bad = SmallOptions();
  bad.max_pending = 0;
  EXPECT_FALSE(MakeServer(bad).ok());
}

TEST(ServerTest, InlineQueryReturnsRankedStableIds) {
  Result<std::unique_ptr<Server>> server = MakeServer(SmallOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Seed(server->get());

  QueryRequest request;
  request.k = 2;
  QueryResponse response = (*server)->Query(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  ASSERT_EQ(response.results.size(), 2u);
  EXPECT_LE(response.results[0].cost, response.results[1].cost);
  EXPECT_EQ(response.epoch, 1u);  // below rebuild threshold: still epoch 1

  ServeStats stats = (*server)->stats();
  EXPECT_EQ(stats.queries_executed, 1u);
  EXPECT_EQ(stats.updates_applied, 4u);
  EXPECT_EQ(stats.candidates_evaluated, 2u);
}

TEST(ServerTest, SubmittedQueryResolvesWithResults) {
  Result<std::unique_ptr<Server>> server = MakeServer(SmallOptions());
  ASSERT_TRUE(server.ok());
  Seed(server->get());

  QueryRequest request;
  request.k = 1;
  std::future<QueryResponse> future = (*server)->Submit(request);
  QueryResponse response = future.get();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.results.size(), 1u);
}

TEST(ServerTest, FullQueueRejectsWithResourceExhausted) {
  ServerOptions options = SmallOptions();
  options.max_pending = 2;
  Result<std::unique_ptr<Server>> server = MakeServer(options);
  ASSERT_TRUE(server.ok());
  Seed(server->get());

  // With workers held, the queue fills deterministically.
  (*server)->HoldWorkersForTest();
  QueryRequest request;
  request.k = 1;
  std::future<QueryResponse> q1 = (*server)->Submit(request);
  std::future<QueryResponse> q2 = (*server)->Submit(request);
  std::future<QueryResponse> q3 = (*server)->Submit(request);

  // The third submit is rejected immediately, without a worker.
  QueryResponse rejected = q3.get();
  EXPECT_EQ(rejected.status.code(), StatusCode::kResourceExhausted);

  (*server)->ReleaseWorkersForTest();
  EXPECT_TRUE(q1.get().status.ok());
  EXPECT_TRUE(q2.get().status.ok());

  ServeStats stats = (*server)->stats();
  EXPECT_EQ(stats.queries_rejected, 1u);
  EXPECT_EQ(stats.queries_executed, 2u);
}

TEST(ServerTest, QueuedDeadlineShedsWithoutRunning) {
  Result<std::unique_ptr<Server>> server = MakeServer(SmallOptions());
  ASSERT_TRUE(server.ok());
  Seed(server->get());

  (*server)->HoldWorkersForTest();
  QueryRequest request;
  request.k = 1;
  request.control = std::make_shared<QueryControl>();
  // Deadline already in the past at submission: the worker must shed the
  // query the moment it dequeues it.
  request.control->SetDeadline(SteadyClock::now() -
                               std::chrono::milliseconds(1));
  std::future<QueryResponse> future = (*server)->Submit(request);
  (*server)->ReleaseWorkersForTest();

  QueryResponse response = future.get();
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(response.results.empty());
  EXPECT_EQ((*server)->stats().queries_timed_out, 1u);
}

TEST(ServerTest, InlineTimeoutAlreadyExpiredReturnsDeadlineExceeded) {
  Result<std::unique_ptr<Server>> server = MakeServer(SmallOptions());
  ASSERT_TRUE(server.ok());
  Seed(server->get());

  QueryRequest request;
  request.k = 1;
  request.control = std::make_shared<QueryControl>();
  request.control->SetDeadline(SteadyClock::now() -
                               std::chrono::milliseconds(1));
  QueryResponse response = (*server)->Query(request);
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(ServerTest, ExternalCancelResolvesSubmittedQuery) {
  Result<std::unique_ptr<Server>> server = MakeServer(SmallOptions());
  ASSERT_TRUE(server.ok());
  Seed(server->get());

  (*server)->HoldWorkersForTest();
  QueryRequest request;
  request.k = 1;
  request.control = std::make_shared<QueryControl>();
  std::future<QueryResponse> future = (*server)->Submit(request);
  request.control->Cancel();
  (*server)->ReleaseWorkersForTest();
  EXPECT_EQ(future.get().status.code(), StatusCode::kCancelled);
}

TEST(ServerTest, InlineRebuildTriggersOnThreshold) {
  ServerOptions options = SmallOptions();
  options.rebuild_threshold_ops = 4;
  Result<std::unique_ptr<Server>> server = MakeServer(options);
  ASSERT_TRUE(server.ok());
  Seed(server->get());  // 4 accepted updates: threshold reached

  // The first publish folds an empty-index base: always a major rebuild.
  EXPECT_EQ((*server)->table().epoch(), 2u);
  EXPECT_EQ((*server)->table().delta_backlog(), 0u);
  EXPECT_EQ((*server)->stats().rebuilds_published, 1u);
  EXPECT_EQ((*server)->stats().patches_published, 0u);

  // A follow-up batch of product inserts leaves the competitor index
  // untouched — published incrementally as a patch, not a rebuild.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE((*server)->InsertProduct({0.5 + 0.01 * i, 0.5}).ok());
  }
  EXPECT_EQ((*server)->table().epoch(), 3u);
  EXPECT_EQ((*server)->table().delta_backlog(), 0u);
  EXPECT_EQ((*server)->stats().rebuilds_published, 1u);
  EXPECT_EQ((*server)->stats().patches_published, 1u);
}

TEST(ServerTest, StatsEchoThePublishPolicy) {
  ServerOptions options = SmallOptions();
  options.rebuild_threshold_ops = 16;
  options.publish_min_backlog = 3;
  options.publish_min_interval_seconds = 0.25;
  options.compact_tombstone_pct = 20;
  options.compact_tail_pct = 40;
  Result<std::unique_ptr<Server>> server = MakeServer(options);
  ASSERT_TRUE(server.ok());
  ServeStats stats = (*server)->stats();
  EXPECT_EQ(stats.rebuild_threshold_ops, 16u);
  EXPECT_EQ(stats.publish_min_backlog, 3u);
  EXPECT_EQ(stats.publish_min_interval_ms, 250u);
  EXPECT_EQ(stats.compact_tombstone_pct, 20u);
  EXPECT_EQ(stats.compact_tail_pct, 40u);
}

TEST(ServerTest, RejectedUpdatesAreCountedNotApplied) {
  Result<std::unique_ptr<Server>> server = MakeServer(SmallOptions());
  ASSERT_TRUE(server.ok());
  EXPECT_FALSE((*server)->InsertCompetitor({0.1}).ok());  // arity
  EXPECT_FALSE((*server)->EraseProduct(7).ok());          // unknown id
  ServeStats stats = (*server)->stats();
  EXPECT_EQ(stats.updates_rejected, 2u);
  EXPECT_EQ(stats.updates_applied, 0u);
  EXPECT_EQ((*server)->table().live_competitor_count(), 0u);
}

TEST(ServerTest, FillMetricsExportsCountersAndGauges) {
  Result<std::unique_ptr<Server>> server = MakeServer(SmallOptions());
  ASSERT_TRUE(server.ok());
  Seed(server->get());
  QueryRequest request;
  request.k = 1;
  ASSERT_TRUE((*server)->Query(request).status.ok());

  MetricsRegistry registry;
  (*server)->FillMetrics(&registry);
  std::ostringstream prom;
  registry.WritePrometheus(prom);
  const std::string text = prom.str();
  EXPECT_NE(text.find("skyup_serve_queries_executed_total 1"),
            std::string::npos);
  EXPECT_NE(text.find("skyup_serve_updates_applied_total 4"),
            std::string::npos);
  EXPECT_NE(text.find("skyup_serve_snapshot_epoch 1"), std::string::npos);
  EXPECT_NE(text.find("skyup_serve_delta_backlog_ops 4"),
            std::string::npos);
  EXPECT_NE(text.find("skyup_serve_live_products 2"), std::string::npos);
  EXPECT_NE(text.find("skyup_serve_query_latency_seconds_count 1"),
            std::string::npos);
}

TEST(ServerTest, BackgroundModeServesQueriesUnderChurn) {
  ServerOptions options = SmallOptions();
  options.background_rebuild = true;
  options.rebuild_threshold_ops = 4;
  Result<std::unique_ptr<Server>> server = MakeServer(options);
  ASSERT_TRUE(server.ok());

  QueryRequest request;
  request.k = 3;
  for (int round = 0; round < 30; ++round) {
    ASSERT_TRUE((*server)
                    ->InsertCompetitor({0.1 + 0.01 * round, 0.5})
                    .ok());
    ASSERT_TRUE((*server)->InsertProduct({0.9, 0.9 - 0.01 * round}).ok());
    QueryResponse response = (*server)->Query(request);
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.results.size(),
              std::min<size_t>(3, static_cast<size_t>(round + 1)));
  }
  // Shutdown with the rebuilder possibly mid-merge must be clean (TSan
  // leg runs this file under -L serve).
}

}  // namespace
}  // namespace skyup
