#include "core/join.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "core/dominance.h"
#include "core/probing.h"
#include "data/generator.h"
#include "data/wine.h"

namespace skyup {
namespace {

// Owns the datasets behind stable pointers so the R-trees stay valid.
struct Workload {
  std::unique_ptr<Dataset> competitors;
  std::unique_ptr<Dataset> products;
  std::unique_ptr<RTree> rp;
  std::unique_ptr<RTree> rt;
  std::unique_ptr<ProductCostFunction> cost_fn;
};

Workload MakeWorkload(size_t np, size_t nt, size_t dims,
                      Distribution distribution, uint64_t seed,
                      size_t fanout = 16) {
  Workload w;
  Result<Dataset> p = GenerateCompetitors(np, dims, distribution, seed);
  Result<Dataset> t = GenerateProducts(nt, dims, distribution, seed + 1);
  EXPECT_TRUE(p.ok() && t.ok());
  w.competitors = std::make_unique<Dataset>(std::move(p).value());
  w.products = std::make_unique<Dataset>(std::move(t).value());
  RTree::Options options;
  options.max_entries = fanout;
  Result<RTree> rp = RTree::BulkLoad(*w.competitors, options);
  Result<RTree> rt = RTree::BulkLoad(*w.products, options);
  EXPECT_TRUE(rp.ok() && rt.ok());
  w.rp = std::make_unique<RTree>(std::move(rp).value());
  w.rt = std::make_unique<RTree>(std::move(rt).value());
  w.cost_fn = std::make_unique<ProductCostFunction>(
      ProductCostFunction::ReciprocalSum(dims, 1e-3));
  return w;
}

JoinOptions Opts(LowerBoundKind kind, BoundMode mode) {
  JoinOptions o;
  o.lower_bound = kind;
  o.bound_mode = mode;
  return o;
}

TEST(JoinCursorTest, CreateValidatesInputs) {
  Workload w = MakeWorkload(100, 20, 2, Distribution::kIndependent, 1);
  EXPECT_FALSE(
      JoinCursor::Create(nullptr, w.rt.get(), w.cost_fn.get()).ok());
  EXPECT_FALSE(
      JoinCursor::Create(w.rp.get(), nullptr, w.cost_fn.get()).ok());
  EXPECT_FALSE(JoinCursor::Create(w.rp.get(), w.rt.get(), nullptr).ok());

  JoinOptions bad;
  bad.epsilon = 0.0;
  EXPECT_FALSE(
      JoinCursor::Create(w.rp.get(), w.rt.get(), w.cost_fn.get(), bad).ok());

  ProductCostFunction f3 = ProductCostFunction::ReciprocalSum(3);
  EXPECT_FALSE(JoinCursor::Create(w.rp.get(), w.rt.get(), &f3).ok());

  Dataset empty(2);
  RTree empty_tree(&empty);
  EXPECT_FALSE(
      JoinCursor::Create(&empty_tree, w.rt.get(), w.cost_fn.get()).ok());
}

TEST(JoinCursorTest, ExhaustsAllProducts) {
  Workload w = MakeWorkload(300, 40, 2, Distribution::kIndependent, 5);
  Result<JoinCursor> cursor =
      JoinCursor::Create(w.rp.get(), w.rt.get(), w.cost_fn.get(),
                         Opts(LowerBoundKind::kConservative,
                              BoundMode::kSound));
  ASSERT_TRUE(cursor.ok());
  size_t count = 0;
  std::vector<bool> seen(w.products->size(), false);
  while (auto r = cursor->Next()) {
    ASSERT_GE(r->product_id, 0);
    ASSERT_LT(static_cast<size_t>(r->product_id), seen.size());
    EXPECT_FALSE(seen[static_cast<size_t>(r->product_id)])
        << "product reported twice";
    seen[static_cast<size_t>(r->product_id)] = true;
    ++count;
  }
  EXPECT_EQ(count, w.products->size());
}

TEST(JoinCursorTest, SoundModeStreamsNondecreasingCosts) {
  for (auto kind : {LowerBoundKind::kNaive, LowerBoundKind::kConservative,
                    LowerBoundKind::kAggressive}) {
    Workload w = MakeWorkload(500, 60, 3, Distribution::kAntiCorrelated, 9);
    Result<JoinCursor> cursor = JoinCursor::Create(
        w.rp.get(), w.rt.get(), w.cost_fn.get(),
        Opts(kind, BoundMode::kSound));
    ASSERT_TRUE(cursor.ok());
    double prev = -1.0;
    while (auto r = cursor->Next()) {
      EXPECT_GE(r->cost, prev - 1e-9)
          << "out-of-order result under " << LowerBoundKindName(kind);
      prev = r->cost;
    }
  }
}

class JoinAgreementTest
    : public ::testing::TestWithParam<std::tuple<LowerBoundKind, BoundMode,
                                                 int>> {};

TEST_P(JoinAgreementTest, TopKCostsMatchBruteForce) {
  const auto [kind, mode, variant] = GetParam();
  const Distribution distribution = variant % 2 == 0
                                        ? Distribution::kIndependent
                                        : Distribution::kAntiCorrelated;
  const size_t dims = 2 + static_cast<size_t>(variant) % 3;
  Workload w = MakeWorkload(700, 80, dims, distribution,
                            100 + static_cast<uint64_t>(variant));

  Result<std::vector<UpgradeResult>> oracle =
      TopKBruteForce(*w.competitors, *w.products, *w.cost_fn, 12);
  ASSERT_TRUE(oracle.ok());

  Result<std::vector<UpgradeResult>> join = TopKJoin(
      *w.rp, *w.rt, *w.cost_fn, 12, Opts(kind, mode));
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  ASSERT_EQ(join->size(), oracle->size());

  for (size_t i = 0; i < oracle->size(); ++i) {
    // Identical cost sequence (ties may swap which product realizes a
    // cost, so compare costs, not ids).
    EXPECT_NEAR((*join)[i].cost, (*oracle)[i].cost, 1e-9)
        << LowerBoundKindName(kind) << "/" << BoundModeName(mode)
        << " rank " << i;
    // And each reported cost is the true cost of the reported product.
    Dataset one(w.products->dims());
    one.Add(w.products->data((*join)[i].product_id));
    Result<std::vector<UpgradeResult>> check =
        TopKBruteForce(*w.competitors, one, *w.cost_fn, 1);
    ASSERT_TRUE(check.ok());
    EXPECT_NEAR((*join)[i].cost, (*check)[0].cost, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JoinAgreementTest,
    ::testing::Combine(
        ::testing::Values(LowerBoundKind::kNaive,
                          LowerBoundKind::kConservative,
                          LowerBoundKind::kAggressive),
        ::testing::Values(BoundMode::kSound),
        ::testing::Values(0, 1, 2, 3)),
    [](const auto& param_info) {
      return std::string(LowerBoundKindName(std::get<0>(param_info.param))) +
             "_" + BoundModeName(std::get<1>(param_info.param)) + "_v" +
             std::to_string(std::get<2>(param_info.param));
    });

TEST(JoinTest, UpgradedResultsAreUndominated) {
  Workload w = MakeWorkload(600, 50, 3, Distribution::kAntiCorrelated, 33);
  Result<std::vector<UpgradeResult>> top =
      TopKJoin(*w.rp, *w.rt, *w.cost_fn, 10);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 10u);
  for (const UpgradeResult& r : *top) {
    for (size_t i = 0; i < w.competitors->size(); ++i) {
      ASSERT_FALSE(Dominates(w.competitors->data(static_cast<PointId>(i)),
                             r.upgraded.data(), 3));
    }
  }
}

TEST(JoinTest, CompetitiveProductsComeFirstAtZeroCost) {
  // Products straddling the competitor cube: some undominated.
  Workload w = MakeWorkload(200, 1, 2, Distribution::kIndependent, 55);
  // Rebuild the product set manually: one clearly undominated product.
  auto products = std::make_unique<Dataset>(2);
  products->Add({-1.0, 5.0});  // best x overall: undominated
  products->Add({1.5, 1.5});   // dominated by everything
  Result<RTree> rt = RTree::BulkLoad(*products);
  ASSERT_TRUE(rt.ok());

  Result<std::vector<UpgradeResult>> top =
      TopKJoin(*w.rp, rt.value(), *w.cost_fn, 2);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);
  EXPECT_EQ((*top)[0].product_id, 0);
  EXPECT_TRUE((*top)[0].already_competitive);
  EXPECT_DOUBLE_EQ((*top)[0].cost, 0.0);
  EXPECT_GT((*top)[1].cost, 0.0);
}

TEST(JoinTest, MutualDominancePruningIsResultInvariant) {
  Workload w = MakeWorkload(800, 60, 3, Distribution::kIndependent, 77);
  JoinOptions with = Opts(LowerBoundKind::kConservative, BoundMode::kSound);
  JoinOptions without = with;
  without.mutual_dominance_pruning = false;

  ExecStats stats_with, stats_without;
  Result<std::vector<UpgradeResult>> a =
      TopKJoin(*w.rp, *w.rt, *w.cost_fn, 15, with, &stats_with);
  Result<std::vector<UpgradeResult>> b =
      TopKJoin(*w.rp, *w.rt, *w.cost_fn, 15, without, &stats_without);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_NEAR((*a)[i].cost, (*b)[i].cost, 1e-9);
  }
  EXPECT_GT(stats_with.jl_entries_pruned, 0u);
  EXPECT_EQ(stats_without.jl_entries_pruned, 0u);
}

TEST(JoinTest, LeafRefinementIsResultInvariant) {
  // Overlapping layout (T inside P's box) — the degenerate case of
  // DESIGN.md finding #2. Results must be identical with the refinement
  // on or off; only the amount of exact-cost work differs.
  Result<Dataset> p =
      GenerateCompetitors(2000, 3, Distribution::kIndependent, 501);
  Result<Dataset> t =
      GenerateCompetitors(300, 3, Distribution::kIndependent, 502);
  ASSERT_TRUE(p.ok() && t.ok());
  auto pp = std::make_unique<Dataset>(std::move(p).value());
  auto tt = std::make_unique<Dataset>(std::move(t).value());
  Result<RTree> rp = RTree::BulkLoad(*pp);
  Result<RTree> rt = RTree::BulkLoad(*tt);
  ASSERT_TRUE(rp.ok() && rt.ok());
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(3, 1e-3);

  JoinOptions on = Opts(LowerBoundKind::kConservative, BoundMode::kSound);
  JoinOptions off = on;
  off.refine_zero_bound_leaves = false;

  ExecStats stats_on, stats_off;
  Result<std::vector<UpgradeResult>> a =
      TopKJoin(rp.value(), rt.value(), f, 10, on, &stats_on);
  Result<std::vector<UpgradeResult>> b =
      TopKJoin(rp.value(), rt.value(), f, 10, off, &stats_off);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_NEAR((*a)[i].cost, (*b)[i].cost, 1e-9);
  }
  // Verbatim Algorithm 4 probes (nearly) the whole catalog here.
  EXPECT_GT(stats_off.products_processed, tt->size() / 2);
  EXPECT_LE(stats_on.products_processed, stats_off.products_processed);

}

TEST(JoinTest, LeafRefinementPrunesWineLikeWorkloads) {
  // The wine workload (products are strictly dominated tuples inside the
  // competitor space) is where finding #2 matters: with the paper-mode
  // bounds, refining zero-bound leaves must skip the exact computation
  // for most products, while the verbatim algorithm probes everything.
  Result<Dataset> wine = SynthesizeWine(1500, 99);
  ASSERT_TRUE(wine.ok());
  Result<Dataset> reduced = WineSubset(
      *wine, {WineAttr::kChlorides, WineAttr::kSulphates,
              WineAttr::kTotalSulfurDioxide});
  ASSERT_TRUE(reduced.ok());
  Result<WineSplit> split = SplitWine(*reduced, 300, 7);
  ASSERT_TRUE(split.ok());
  auto pp = std::make_unique<Dataset>(std::move(split->competitors));
  auto tt = std::make_unique<Dataset>(std::move(split->products));
  Result<RTree> rp = RTree::BulkLoad(*pp);
  Result<RTree> rt = RTree::BulkLoad(*tt);
  ASSERT_TRUE(rp.ok() && rt.ok());
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(3, 1e-3);

  // Ground truth.
  Result<std::vector<UpgradeResult>> oracle =
      TopKBruteForce(*pp, *tt, f, 1);
  ASSERT_TRUE(oracle.ok());

  // Sound bounds: refinement keeps the result exact and skips some exact
  // computations, while the verbatim algorithm (refine off) probes nearly
  // the whole catalog.
  JoinOptions sound_on = Opts(LowerBoundKind::kConservative,
                              BoundMode::kSound);
  JoinOptions sound_off = sound_on;
  sound_off.refine_zero_bound_leaves = false;
  ExecStats stats_on, stats_off;
  Result<std::vector<UpgradeResult>> a =
      TopKJoin(rp.value(), rt.value(), f, 1, sound_on, &stats_on);
  Result<std::vector<UpgradeResult>> b =
      TopKJoin(rp.value(), rt.value(), f, 1, sound_off, &stats_off);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR((*a)[0].cost, (*oracle)[0].cost, 1e-9);
  EXPECT_NEAR((*b)[0].cost, (*oracle)[0].cost, 1e-9);
  EXPECT_GT(stats_off.products_processed, tt->size() / 2);
  EXPECT_LT(stats_on.products_processed, stats_off.products_processed);

  // DESIGN.md finding #1, demonstrated: the paper's LBC formula is an
  // overestimate, and combined with leaf refinement it prunes the true
  // optimum on this (deterministic) wine workload. Its reported cost can
  // never be *below* the optimum, but here it is far above it.
  JoinOptions paper_on = Opts(LowerBoundKind::kConservative,
                              BoundMode::kPaper);
  Result<std::vector<UpgradeResult>> c =
      TopKJoin(rp.value(), rt.value(), f, 1, paper_on);
  ASSERT_TRUE(c.ok());
  EXPECT_GE((*c)[0].cost, (*oracle)[0].cost - 1e-9);
  EXPECT_GT((*c)[0].cost, (*oracle)[0].cost + 0.1)
      << "if this starts matching the oracle, the demonstration workload "
         "has shifted; the property being documented is that it *can* "
         "mismatch";
}

TEST(JoinTest, ProgressivenessStopsEarly) {
  // Asking for 1 result must process far fewer products than |T|.
  Workload w = MakeWorkload(2000, 500, 2, Distribution::kIndependent, 91);
  ExecStats stats;
  Result<std::vector<UpgradeResult>> top =
      TopKJoin(*w.rp, *w.rt, *w.cost_fn, 1,
               Opts(LowerBoundKind::kConservative, BoundMode::kPaper),
               &stats);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 1u);
  EXPECT_LT(stats.products_processed, w.products->size() / 2)
      << "join should not probe most of T for k=1";
}

TEST(JoinTest, PaperModeCostsAreIndividuallyCorrect) {
  // Under the paper's (unsound) bounds the *ordering* can in principle
  // drift on near-ties, but every reported cost must still be that
  // product's true upgrading cost.
  Workload w = MakeWorkload(700, 80, 3, Distribution::kAntiCorrelated, 123);
  Result<std::vector<UpgradeResult>> join =
      TopKJoin(*w.rp, *w.rt, *w.cost_fn, 15,
               Opts(LowerBoundKind::kConservative, BoundMode::kPaper));
  ASSERT_TRUE(join.ok());
  for (const UpgradeResult& r : *join) {
    Dataset one(w.products->dims());
    one.Add(w.products->data(r.product_id));
    Result<std::vector<UpgradeResult>> check =
        TopKBruteForce(*w.competitors, one, *w.cost_fn, 1);
    ASSERT_TRUE(check.ok());
    EXPECT_NEAR(r.cost, (*check)[0].cost, 1e-9);
  }
}

TEST(JoinTest, LargeFanoutAndSmallFanoutAgree) {
  Workload coarse = MakeWorkload(900, 70, 2, Distribution::kIndependent,
                                 200, /*fanout=*/64);
  Workload fine = MakeWorkload(900, 70, 2, Distribution::kIndependent,
                               200, /*fanout=*/4);
  Result<std::vector<UpgradeResult>> a =
      TopKJoin(*coarse.rp, *coarse.rt, *coarse.cost_fn, 10,
               Opts(LowerBoundKind::kAggressive, BoundMode::kSound));
  Result<std::vector<UpgradeResult>> b =
      TopKJoin(*fine.rp, *fine.rt, *fine.cost_fn, 10,
               Opts(LowerBoundKind::kAggressive, BoundMode::kSound));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_NEAR((*a)[i].cost, (*b)[i].cost, 1e-9);
  }
}

TEST(JoinTest, StatsAccounting) {
  Workload w = MakeWorkload(500, 50, 2, Distribution::kIndependent, 301);
  ExecStats stats;
  ASSERT_TRUE(TopKJoin(*w.rp, *w.rt, *w.cost_fn, 5, JoinOptions{}, &stats)
                  .ok());
  EXPECT_GT(stats.heap_pops, 0u);
  EXPECT_GT(stats.t_expansions, 0u);
  EXPECT_GT(stats.lbc_evaluations, 0u);
  EXPECT_GE(stats.upgrade_calls, 5u);
}

TEST(JoinCursorTest, ExhaustedCursorStaysEmpty) {
  Workload w = MakeWorkload(50, 5, 2, Distribution::kIndependent, 610);
  Result<JoinCursor> cursor =
      JoinCursor::Create(w.rp.get(), w.rt.get(), w.cost_fn.get());
  ASSERT_TRUE(cursor.ok());
  size_t n = 0;
  while (cursor->Next()) ++n;
  EXPECT_EQ(n, 5u);
  EXPECT_FALSE(cursor->Next().has_value());
  EXPECT_FALSE(cursor->Next().has_value());
}

TEST(JoinTest, KLargerThanTReturnsEverything) {
  Workload w = MakeWorkload(80, 7, 3, Distribution::kAntiCorrelated, 611);
  Result<std::vector<UpgradeResult>> top =
      TopKJoin(*w.rp, *w.rt, *w.cost_fn, 100);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->size(), 7u);
}

TEST(JoinTest, ProductIdenticalToCompetitorIsCompetitive) {
  // A product exactly equal to a skyline competitor is not dominated.
  auto p = std::make_unique<Dataset>(2);
  p->Add({0.3, 0.3});
  p->Add({0.1, 0.6});
  auto t = std::make_unique<Dataset>(2);
  t->Add({0.3, 0.3});
  Result<RTree> rp = RTree::BulkLoad(*p);
  Result<RTree> rt = RTree::BulkLoad(*t);
  ASSERT_TRUE(rp.ok() && rt.ok());
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(2, 1e-3);
  Result<std::vector<UpgradeResult>> top =
      TopKJoin(rp.value(), rt.value(), f, 1);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 1u);
  EXPECT_TRUE((*top)[0].already_competitive);
  EXPECT_DOUBLE_EQ((*top)[0].cost, 0.0);
}

TEST(JoinTest, SingleEntryTrees) {
  auto p = std::make_unique<Dataset>(3);
  p->Add({0.1, 0.2, 0.3});
  auto t = std::make_unique<Dataset>(3);
  t->Add({0.4, 0.4, 0.4});
  Result<RTree> rp = RTree::BulkLoad(*p);
  Result<RTree> rt = RTree::BulkLoad(*t);
  ASSERT_TRUE(rp.ok() && rt.ok());
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(3, 1e-3);
  Result<std::vector<UpgradeResult>> top =
      TopKJoin(rp.value(), rt.value(), f, 1);
  ASSERT_TRUE(top.ok());
  EXPECT_GT((*top)[0].cost, 0.0);
  // The upgraded product beats the lone competitor on some dimension.
  bool beats = false;
  for (size_t d = 0; d < 3; ++d) {
    beats = beats || (*top)[0].upgraded[d] < p->data(0)[d];
  }
  EXPECT_TRUE(beats);
}

TEST(JoinTest, KZeroRejected) {
  Workload w = MakeWorkload(100, 10, 2, Distribution::kIndependent, 400);
  EXPECT_FALSE(TopKJoin(*w.rp, *w.rt, *w.cost_fn, 0).ok());
}

}  // namespace
}  // namespace skyup
