// Tests for the flight recorder (obs/flight_recorder.h): ring overwrite
// semantics with drop accounting, oldest-first readback, the enabled
// gate, JSONL dump shape, and concurrent recording — the last is why
// this suite carries the "parallel" label and runs under TSan.

#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace skyup {
namespace {

QueryFlightRecord MakeRecord(uint64_t id) {
  QueryFlightRecord record;
  record.query_id = id;
  record.epoch = 3;
  record.k = 5;
  record.results = 5;
  record.wall_seconds = 0.001 * static_cast<double>(id);
  record.phases.probe_seconds = 0.0001;
  return record;
}

TEST(FlightRecorderTest, HoldsEverythingUnderCapacity) {
  FlightRecorder recorder(FlightRecorderOptions{4, 4});
  for (uint64_t i = 1; i <= 3; ++i) recorder.RecordQuery(MakeRecord(i));
  const std::vector<QueryFlightRecord> records = recorder.QueryRecords();
  ASSERT_EQ(records.size(), 3u);
  for (uint64_t i = 0; i < 3; ++i) EXPECT_EQ(records[i].query_id, i + 1);
  const FlightRecorderStats stats = recorder.stats();
  EXPECT_EQ(stats.queries_recorded, 3u);
  EXPECT_EQ(stats.queries_dropped, 0u);
}

TEST(FlightRecorderTest, RingOverwritesOldestFirstAndCountsDrops) {
  FlightRecorder recorder(FlightRecorderOptions{4, 2});
  for (uint64_t i = 1; i <= 10; ++i) recorder.RecordQuery(MakeRecord(i));
  const std::vector<QueryFlightRecord> records = recorder.QueryRecords();
  ASSERT_EQ(records.size(), 4u);
  // The four newest survive, oldest-first.
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(records[i].query_id, 7 + i);
  const FlightRecorderStats stats = recorder.stats();
  EXPECT_EQ(stats.queries_recorded, 10u);
  EXPECT_EQ(stats.queries_dropped, 6u);
}

TEST(FlightRecorderTest, SampleRingIsIndependent) {
  FlightRecorder recorder(FlightRecorderOptions{2, 3});
  for (uint64_t i = 1; i <= 5; ++i) {
    SystemSample sample;
    sample.epoch = i;
    recorder.RecordSample(sample);
  }
  const std::vector<SystemSample> samples = recorder.Samples();
  ASSERT_EQ(samples.size(), 3u);
  for (uint64_t i = 0; i < 3; ++i) EXPECT_EQ(samples[i].epoch, 3 + i);
  EXPECT_EQ(recorder.stats().samples_dropped, 2u);
  EXPECT_EQ(recorder.stats().queries_recorded, 0u);
}

TEST(FlightRecorderTest, ZeroRingSizesClampToOne) {
  FlightRecorder recorder(FlightRecorderOptions{0, 0});
  recorder.RecordQuery(MakeRecord(1));
  recorder.RecordQuery(MakeRecord(2));
  const std::vector<QueryFlightRecord> records = recorder.QueryRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].query_id, 2u);
}

TEST(FlightRecorderTest, EnabledGateToggles) {
  FlightRecorder recorder;
  EXPECT_TRUE(recorder.enabled());  // always-on by default
  recorder.set_enabled(false);
  EXPECT_FALSE(recorder.enabled());
  recorder.set_enabled(true);
  EXPECT_TRUE(recorder.enabled());
}

TEST(FlightRecorderTest, ClearResetsRingsAndCounters) {
  FlightRecorder recorder(FlightRecorderOptions{2, 2});
  for (uint64_t i = 1; i <= 5; ++i) recorder.RecordQuery(MakeRecord(i));
  recorder.Clear();
  EXPECT_TRUE(recorder.QueryRecords().empty());
  EXPECT_EQ(recorder.stats().queries_recorded, 0u);
  recorder.RecordQuery(MakeRecord(9));
  ASSERT_EQ(recorder.QueryRecords().size(), 1u);
  EXPECT_EQ(recorder.QueryRecords()[0].query_id, 9u);
}

TEST(FlightRecorderTest, JsonlDumpHasMetaThenQueriesThenSamples) {
  FlightRecorder recorder(FlightRecorderOptions{8, 8});
  QueryFlightRecord record = MakeRecord(11);
  record.status = StatusCode::kDeadlineExceeded;
  record.slow = true;
  recorder.RecordQuery(record);
  SystemSample sample;
  sample.epoch = 4;
  sample.tombstone_pct = 12.5;
  recorder.RecordSample(sample);

  std::ostringstream out;
  recorder.WriteJsonl(out);
  std::vector<std::string> lines;
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"type\":\"flight_meta\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"queries_recorded\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\":\"query\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"query_id\":11"), std::string::npos);
  EXPECT_NE(lines[1].find("\"status\":\"DeadlineExceeded\""),
            std::string::npos);
  EXPECT_NE(lines[1].find("\"slow\":true"), std::string::npos);
  EXPECT_NE(lines[1].find("\"phases\":{"), std::string::npos);
  EXPECT_NE(lines[2].find("\"type\":\"sample\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"tombstone_pct\":12.5"), std::string::npos);
  // Every line is one self-contained JSON object (CI re-validates each
  // with a real JSON parser).
  for (const std::string& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
  }
}

TEST(FlightRecorderTest, NonFiniteTimingsDumpAsNull) {
  QueryFlightRecord record = MakeRecord(1);
  record.wall_seconds = std::numeric_limits<double>::quiet_NaN();
  const std::string json = QueryRecordJson(record);
  EXPECT_NE(json.find("\"wall_s\":null"), std::string::npos);
}

TEST(FlightRecorderTest, ConcurrentRecordersLoseNothingButTheOverwritten) {
  constexpr size_t kRing = 64;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  FlightRecorder recorder(FlightRecorderOptions{kRing, 8});
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.RecordQuery(
            MakeRecord(static_cast<uint64_t>(t) * kPerThread + i + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const FlightRecorderStats stats = recorder.stats();
  EXPECT_EQ(stats.queries_recorded,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.queries_dropped,
            static_cast<uint64_t>(kThreads * kPerThread - kRing));
  EXPECT_EQ(recorder.QueryRecords().size(), kRing);
}

}  // namespace
}  // namespace skyup
