// Randomized end-to-end integration: every public surface in one loop —
// generators, normalization, all cost-function families (including fitted
// ones), every top-k algorithm, the parallel prober, and the progressive
// cursor — cross-checked against each other and against the dominance
// invariants on each trial.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/dominance.h"
#include "core/parallel_probing.h"
#include "core/planner.h"
#include "data/cost_fitting.h"
#include "data/generator.h"
#include "data/normalize.h"
#include "util/random.h"

namespace skyup {
namespace {

std::shared_ptr<const AttributeCostFunction> RandomAttributeCost(Rng* rng) {
  switch (rng->NextUint64(4)) {
    case 0:
      return std::make_shared<const ReciprocalCost>(
          rng->NextDouble(1e-3, 0.1));
    case 1:
      return std::make_shared<const LinearCost>(rng->NextDouble(5.0, 20.0),
                                                rng->NextDouble(0.0, 3.0));
    case 2:
      return std::make_shared<const ExponentialCost>(
          rng->NextDouble(1.0, 5.0), rng->NextDouble(0.1, 2.0));
    default:
      return std::make_shared<const PowerCost>(rng->NextDouble(0.5, 2.0),
                                               rng->NextDouble(0.5, 2.0),
                                               rng->NextDouble(1e-2, 0.2));
  }
}

// A fitted (isotonic) cost from noisy samples of a decreasing curve.
std::shared_ptr<const AttributeCostFunction> RandomFittedCost(Rng* rng) {
  std::vector<CostSample> samples;
  const double slope = rng->NextDouble(0.5, 3.0);
  for (int i = 0; i < 40; ++i) {
    const double x = rng->NextDouble(0.0, 2.0);
    samples.push_back(
        {x, 6.0 - slope * x + rng->NextGaussian() * 0.2});
  }
  auto fit = FitAttributeCost(samples);
  EXPECT_TRUE(fit.ok());
  return std::move(fit).value();
}

TEST(IntegrationStressTest, AllSurfacesAgreeOnRandomWorkloads) {
  Rng rng(20120406);
  for (int trial = 0; trial < 25; ++trial) {
    const size_t dims = 2 + rng.NextUint64(4);  // 2..5
    const auto distribution =
        static_cast<Distribution>(rng.NextUint64(3));
    const size_t np = 150 + rng.NextUint64(500);
    const size_t nt = 20 + rng.NextUint64(80);
    const size_t k = 1 + rng.NextUint64(12);

    Result<Dataset> p = GenerateCompetitors(
        np, dims, distribution, 5000 + static_cast<uint64_t>(trial));
    ASSERT_TRUE(p.ok());
    // Candidates straddle the competitor cube so every LBC case occurs.
    GeneratorConfig tconf;
    tconf.count = nt;
    tconf.dims = dims;
    tconf.distribution = distribution;
    tconf.lo = 0.2;
    tconf.hi = rng.NextDouble() < 0.5 ? 1.0 : 1.8;
    tconf.seed = 6000 + static_cast<uint64_t>(trial);
    Result<Dataset> t = GenerateDataset(tconf);
    ASSERT_TRUE(t.ok());

    // Random per-dimension cost family (one dimension fitted from noisy
    // samples), random weights.
    std::vector<std::shared_ptr<const AttributeCostFunction>> per_dim;
    std::vector<double> weights;
    for (size_t d = 0; d < dims; ++d) {
      per_dim.push_back(d == 0 ? RandomFittedCost(&rng)
                               : RandomAttributeCost(&rng));
      weights.push_back(rng.NextDouble(0.5, 2.0));
    }
    Result<ProductCostFunction> cost_fn =
        ProductCostFunction::WeightedSum(per_dim, weights);
    ASSERT_TRUE(cost_fn.ok());

    PlannerOptions options;
    options.validate_monotonicity = true;
    options.rtree_fanout = 4 + rng.NextUint64(29);
    options.lower_bound =
        static_cast<LowerBoundKind>(rng.NextUint64(3));
    options.bound_mode = BoundMode::kSound;
    Result<UpgradePlanner> planner =
        UpgradePlanner::Create(*p, *t, *cost_fn, options);
    ASSERT_TRUE(planner.ok()) << planner.status().ToString();

    Result<std::vector<UpgradeResult>> oracle =
        planner->TopK(k, Algorithm::kBruteForce);
    ASSERT_TRUE(oracle.ok());

    for (auto algo : {Algorithm::kBasicProbing, Algorithm::kImprovedProbing,
                      Algorithm::kJoin}) {
      Result<std::vector<UpgradeResult>> got = planner->TopK(k, algo);
      ASSERT_TRUE(got.ok()) << AlgorithmName(algo);
      ASSERT_EQ(got->size(), oracle->size());
      for (size_t i = 0; i < got->size(); ++i) {
        ASSERT_NEAR((*got)[i].cost, (*oracle)[i].cost, 1e-9)
            << AlgorithmName(algo) << " trial " << trial << " rank " << i;
      }
    }

    // Parallel probing matches sequential id-for-id.
    Result<std::vector<UpgradeResult>> parallel =
        TopKImprovedProbingParallel(planner->competitors_tree(),
                                    planner->products(),
                                    planner->cost_function(), k, 1e-6, 3);
    ASSERT_TRUE(parallel.ok());
    Result<std::vector<UpgradeResult>> sequential =
        planner->TopK(k, Algorithm::kImprovedProbing);
    ASSERT_TRUE(sequential.ok());
    ASSERT_EQ(parallel->size(), sequential->size());
    for (size_t i = 0; i < parallel->size(); ++i) {
      ASSERT_EQ((*parallel)[i].product_id, (*sequential)[i].product_id);
    }

    // The cursor streams the full ranking in nondecreasing cost order and
    // every upgraded vector is undominated and componentwise-improving.
    Result<JoinCursor> cursor = planner->OpenJoinCursor();
    ASSERT_TRUE(cursor.ok());
    double prev = -1.0;
    size_t streamed = 0;
    while (auto r = cursor->Next()) {
      ASSERT_GE(r->cost, prev - 1e-9);
      prev = r->cost;
      ++streamed;
      ASSERT_GE(r->cost, -1e-9);
      const double* original = planner->products().data(r->product_id);
      for (size_t d = 0; d < dims; ++d) {
        ASSERT_LE(r->upgraded[d], original[d] + 1e-12);
      }
      for (size_t i = 0; i < planner->competitors().size(); ++i) {
        ASSERT_FALSE(
            Dominates(planner->competitors().data(static_cast<PointId>(i)),
                      r->upgraded.data(), dims))
            << "trial " << trial;
      }
    }
    ASSERT_EQ(streamed, planner->products().size());
  }
}

}  // namespace
}  // namespace skyup
