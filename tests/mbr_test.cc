#include "rtree/mbr.h"

#include <gtest/gtest.h>

#include <vector>

namespace skyup {
namespace {

TEST(MbrTest, EmptyBoxProperties) {
  Mbr box(2);
  EXPECT_TRUE(box.IsEmpty());
  EXPECT_DOUBLE_EQ(box.Area(), 0.0);
  EXPECT_DOUBLE_EQ(box.Margin(), 0.0);
}

TEST(MbrTest, FromPointIsDegenerate) {
  const std::vector<double> p = {1, 2, 3};
  Mbr box = Mbr::FromPoint(p.data(), 3);
  EXPECT_FALSE(box.IsEmpty());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(box.min(i), p[i]);
    EXPECT_DOUBLE_EQ(box.max(i), p[i]);
  }
  EXPECT_DOUBLE_EQ(box.Area(), 0.0);
  EXPECT_TRUE(box.Contains(p.data()));
}

TEST(MbrTest, ExpandGrowsBox) {
  Mbr box(2);
  const std::vector<double> a = {0, 0};
  const std::vector<double> b = {2, 3};
  box.Expand(a.data());
  box.Expand(b.data());
  EXPECT_DOUBLE_EQ(box.min(0), 0.0);
  EXPECT_DOUBLE_EQ(box.max(1), 3.0);
  EXPECT_DOUBLE_EQ(box.Area(), 6.0);
  EXPECT_DOUBLE_EQ(box.Margin(), 5.0);
}

TEST(MbrTest, ExpandByBox) {
  const std::vector<double> lo1 = {0, 0}, hi1 = {1, 1};
  const std::vector<double> lo2 = {2, -1}, hi2 = {3, 0.5};
  Mbr a = Mbr::FromCorners(lo1.data(), hi1.data(), 2);
  Mbr b = Mbr::FromCorners(lo2.data(), hi2.data(), 2);
  a.Expand(b);
  EXPECT_DOUBLE_EQ(a.min(0), 0.0);
  EXPECT_DOUBLE_EQ(a.max(0), 3.0);
  EXPECT_DOUBLE_EQ(a.min(1), -1.0);
  EXPECT_DOUBLE_EQ(a.max(1), 1.0);
}

TEST(MbrTest, ExpandByEmptyBoxIsNoop) {
  const std::vector<double> lo = {0, 0}, hi = {1, 1};
  Mbr a = Mbr::FromCorners(lo.data(), hi.data(), 2);
  Mbr empty(2);
  Mbr before = a;
  a.Expand(empty);
  EXPECT_TRUE(a == before);
}

TEST(MbrTest, IntersectionCases) {
  const std::vector<double> lo1 = {0, 0}, hi1 = {2, 2};
  const std::vector<double> lo2 = {1, 1}, hi2 = {3, 3};
  const std::vector<double> lo3 = {2, 2}, hi3 = {4, 4};   // touching corner
  const std::vector<double> lo4 = {5, 5}, hi4 = {6, 6};   // disjoint
  Mbr a = Mbr::FromCorners(lo1.data(), hi1.data(), 2);
  Mbr b = Mbr::FromCorners(lo2.data(), hi2.data(), 2);
  Mbr c = Mbr::FromCorners(lo3.data(), hi3.data(), 2);
  Mbr d = Mbr::FromCorners(lo4.data(), hi4.data(), 2);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(a.Intersects(c));  // closed boxes: shared corner intersects
  EXPECT_FALSE(a.Intersects(d));
  EXPECT_FALSE(a.Intersects(Mbr(2)));  // empty never intersects
}

TEST(MbrTest, ContainsBox) {
  const std::vector<double> lo1 = {0, 0}, hi1 = {4, 4};
  const std::vector<double> lo2 = {1, 1}, hi2 = {2, 2};
  Mbr outer = Mbr::FromCorners(lo1.data(), hi1.data(), 2);
  Mbr inner = Mbr::FromCorners(lo2.data(), hi2.data(), 2);
  EXPECT_TRUE(outer.ContainsBox(inner));
  EXPECT_FALSE(inner.ContainsBox(outer));
  EXPECT_TRUE(outer.ContainsBox(Mbr(2)));  // empty box in anything
}

TEST(MbrTest, Enlargement) {
  const std::vector<double> lo1 = {0, 0}, hi1 = {1, 1};
  const std::vector<double> lo2 = {2, 0}, hi2 = {3, 1};
  Mbr a = Mbr::FromCorners(lo1.data(), hi1.data(), 2);
  Mbr b = Mbr::FromCorners(lo2.data(), hi2.data(), 2);
  // Union is [0,3]x[0,1], area 3; a's own area is 1.
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 2.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(a), 0.0);
}

TEST(MbrTest, OverlapArea) {
  const std::vector<double> lo1 = {0, 0}, hi1 = {2, 2};
  const std::vector<double> lo2 = {1, 1}, hi2 = {3, 3};
  const std::vector<double> lo3 = {5, 5}, hi3 = {6, 6};
  Mbr a = Mbr::FromCorners(lo1.data(), hi1.data(), 2);
  Mbr b = Mbr::FromCorners(lo2.data(), hi2.data(), 2);
  Mbr c = Mbr::FromCorners(lo3.data(), hi3.data(), 2);
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 1.0);
  EXPECT_DOUBLE_EQ(a.OverlapArea(c), 0.0);
}

TEST(MbrTest, MinCornerSum) {
  const std::vector<double> lo = {1, 2, 3}, hi = {4, 5, 6};
  Mbr box = Mbr::FromCorners(lo.data(), hi.data(), 3);
  EXPECT_DOUBLE_EQ(box.MinCornerSum(), 6.0);
}

TEST(MbrTest, ResetRestoresEmpty) {
  const std::vector<double> p = {1, 1};
  Mbr box = Mbr::FromPoint(p.data(), 2);
  box.Reset();
  EXPECT_TRUE(box.IsEmpty());
}

TEST(MbrTest, EqualityAndToString) {
  const std::vector<double> lo = {0, 0}, hi = {1, 2};
  Mbr a = Mbr::FromCorners(lo.data(), hi.data(), 2);
  Mbr b = Mbr::FromCorners(lo.data(), hi.data(), 2);
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(Mbr(2) == Mbr(2));
  EXPECT_FALSE(a == Mbr(2));
  EXPECT_NE(a.ToString().find(".."), std::string::npos);
}

TEST(MbrTest, ContainsIsClosedOnBoundary) {
  const std::vector<double> lo = {0, 0}, hi = {1, 1};
  Mbr box = Mbr::FromCorners(lo.data(), hi.data(), 2);
  const std::vector<double> edge = {1.0, 0.0};
  const std::vector<double> outside = {1.0000001, 0.0};
  EXPECT_TRUE(box.Contains(edge.data()));
  EXPECT_FALSE(box.Contains(outside.data()));
}

}  // namespace
}  // namespace skyup
