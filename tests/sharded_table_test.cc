// Tests for the shard-per-core live state (serve/shard/sharded_table.h):
// global stable-id allocation in op order, erase routing through the id
// maps, the deterministic inline publish trigger on *total* backlog, the
// cross-shard epoch invariant (every captured view set is all-old or
// all-new — including under concurrent publish cycles, which is the
// TSan-facing stress here), and aggregated diagnostics.

#include "serve/shard/sharded_table.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "util/random.h"

namespace skyup {
namespace {

ShardedTableOptions SmallOptions(size_t shards) {
  ShardedTableOptions options;
  options.dims = 2;
  options.shards = shards;
  options.partition_fit_after = 8;
  return options;
}

TEST(ShardedTableTest, CreateValidatesOptions) {
  ShardedTableOptions bad;
  bad.dims = 0;
  bad.shards = 2;
  EXPECT_FALSE(ShardedTable::Create(bad).ok());
  bad.dims = 2;
  bad.shards = 0;
  EXPECT_FALSE(ShardedTable::Create(bad).ok());
}

TEST(ShardedTableTest, AllocatesGlobalIdsInOpOrder) {
  auto table = ShardedTable::Create(SmallOptions(3));
  ASSERT_TRUE(table.ok());
  Rng rng(1);
  // Competitors and products each count from 1, regardless of which
  // shard the rows land on — the single-table id sequence.
  for (uint64_t i = 1; i <= 20; ++i) {
    auto id = (*table)->InsertCompetitor(
        {rng.NextDouble(0, 1), rng.NextDouble(0, 1)});
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, i);
  }
  for (uint64_t i = 1; i <= 10; ++i) {
    auto id = (*table)->InsertProduct(
        {rng.NextDouble(0, 1), rng.NextDouble(0, 1)});
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, i);
  }
}

TEST(ShardedTableTest, ErasesRouteToTheOwningShard) {
  auto table = ShardedTable::Create(SmallOptions(4));
  ASSERT_TRUE(table.ok());
  Rng rng(2);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 40; ++i) {
    auto id = (*table)->InsertCompetitor(
        {rng.NextDouble(0, 1), rng.NextDouble(0, 1)});
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // Every id erases exactly once; a second erase is kNotFound, and the
  // live counts confirm the rows really left their owning shards.
  for (const uint64_t id : ids) {
    EXPECT_TRUE((*table)->EraseCompetitor(id).ok()) << "id " << id;
    EXPECT_EQ((*table)->EraseCompetitor(id).code(), StatusCode::kNotFound);
  }
  EXPECT_EQ((*table)->SampleDiagnostics().live_competitors, 0u);
  EXPECT_EQ((*table)->EraseCompetitor(999).code(), StatusCode::kNotFound);
  EXPECT_EQ((*table)->EraseProduct(1).code(), StatusCode::kNotFound);
}

TEST(ShardedTableTest, RejectsArityMismatch) {
  auto table = ShardedTable::Create(SmallOptions(2));
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->InsertCompetitor({0.5}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*table)->InsertProduct({0.1, 0.2, 0.3}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardedTableTest, InlinePublishFiresOnTotalBacklog) {
  auto table = ShardedTable::Create(SmallOptions(3));
  ASSERT_TRUE(table.ok());
  RebuildPolicy policy;
  policy.threshold_ops = 10;
  Rng rng(3);
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE((*table)
                    ->InsertCompetitor(
                        {rng.NextDouble(0, 1), rng.NextDouble(0, 1)})
                    .ok());
    auto published = (*table)->MaybePublishInline(policy);
    ASSERT_TRUE(published.ok());
    EXPECT_EQ(*published, 0u) << "below threshold at op " << i;
  }
  EXPECT_EQ((*table)->delta_backlog(), 9u);
  ASSERT_TRUE((*table)->InsertProduct({0.9, 0.9}).ok());
  auto published = (*table)->MaybePublishInline(policy);
  ASSERT_TRUE(published.ok());
  // One cycle publishes EVERY shard, including idle ones.
  EXPECT_EQ(*published, 3u);
  EXPECT_EQ((*table)->delta_backlog(), 0u);
  EXPECT_EQ((*table)->publish_cycles(), 1u);
  EXPECT_EQ((*table)->rebuilds_published() + (*table)->patches_published(),
            3u);
}

TEST(ShardedTableTest, EpochAdvancesInLockStepAcrossShards) {
  auto table = ShardedTable::Create(SmallOptions(5));
  ASSERT_TRUE(table.ok());
  RebuildPolicy policy;
  policy.threshold_ops = 4;
  const uint64_t epoch0 = (*table)->epoch();
  Rng rng(4);
  for (int cycle = 0; cycle < 6; ++cycle) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE((*table)
                      ->InsertCompetitor(
                          {rng.NextDouble(0, 1), rng.NextDouble(0, 1)})
                      .ok());
    }
    ASSERT_TRUE((*table)->MaybePublishInline(policy).ok());
    EXPECT_EQ((*table)->epoch(), epoch0 + 1 + cycle);
    const ShardedView view = (*table)->AcquireViews();
    ASSERT_EQ(view.views.size(), 5u);
    for (const ReadView& v : view.views) {
      EXPECT_EQ(v.epoch(), view.epoch) << "shard epoch diverged";
    }
  }
}

TEST(ShardedTableTest, ViewsPinTheirEpochAcrossLaterPublishes) {
  auto table = ShardedTable::Create(SmallOptions(2));
  ASSERT_TRUE(table.ok());
  RebuildPolicy policy;
  policy.threshold_ops = 1;
  ASSERT_TRUE((*table)->InsertCompetitor({0.4, 0.6}).ok());
  ASSERT_TRUE((*table)->MaybePublishInline(policy).ok());
  const ShardedView old_view = (*table)->AcquireViews();
  ASSERT_TRUE((*table)->InsertCompetitor({0.6, 0.4}).ok());
  ASSERT_TRUE((*table)->MaybePublishInline(policy).ok());
  EXPECT_EQ((*table)->epoch(), old_view.epoch + 1);
  for (const ReadView& v : old_view.views) {
    EXPECT_EQ(v.epoch(), old_view.epoch);
  }
}

TEST(ShardedTableTest, DiagnosticsAggregateAcrossShards) {
  auto table = ShardedTable::Create(SmallOptions(3));
  ASSERT_TRUE(table.ok());
  Rng rng(6);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE((*table)
                    ->InsertCompetitor(
                        {rng.NextDouble(0, 1), rng.NextDouble(0, 1)})
                    .ok());
  }
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(
        (*table)
            ->InsertProduct({rng.NextDouble(0, 1), rng.NextDouble(0, 1)})
            .ok());
  }
  const LiveTable::Diagnostics diag = (*table)->SampleDiagnostics();
  EXPECT_EQ(diag.live_competitors, 30u);
  EXPECT_EQ(diag.live_products, 7u);
  EXPECT_EQ(diag.delta_backlog, 37u);
  EXPECT_EQ(diag.epoch, (*table)->epoch());
}

// The cross-shard epoch fence under fire: a writer pushes updates while
// a coordinator publishes cycles and readers continuously capture view
// sets. A reader must NEVER observe two shards at different epochs in
// one capture — that is the all-old-or-all-new guarantee the two-phase
// freeze/install protocol exists for. Run under TSan via the "parallel"
// label to also check the fence is data-race-free.
TEST(ShardedTableStressTest, ReadersNeverObserveMixedEpochs) {
  auto table = ShardedTable::Create(SmallOptions(4));
  ASSERT_TRUE(table.ok());
  RebuildPolicy policy;
  policy.threshold_ops = 8;
  policy.poll_interval_seconds = 0.001;
  (*table)->Start(policy);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> captures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const ShardedView view = (*table)->AcquireViews();
        for (const ReadView& v : view.views) {
          ASSERT_EQ(v.epoch(), view.epoch)
              << "mixed-epoch capture: shard at " << v.epoch()
              << " inside a view set stamped " << view.epoch;
        }
        captures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Rng rng(7);
  std::vector<uint64_t> live;
  for (int i = 0; i < 3000; ++i) {
    if (!live.empty() && rng.NextUint64(4) == 0) {
      const size_t at = static_cast<size_t>(rng.NextUint64(live.size()));
      ASSERT_TRUE((*table)->EraseCompetitor(live[at]).ok());
      live[at] = live.back();
      live.pop_back();
    } else {
      auto id = (*table)->InsertCompetitor(
          {rng.NextDouble(0, 1), rng.NextDouble(0, 1)});
      ASSERT_TRUE(id.ok());
      live.push_back(*id);
    }
    if (i % 256 == 0) (*table)->Nudge();
  }
  // The writer can outrun the coordinator's first poll; give it a
  // bounded window to publish at least one cycle before stopping (the
  // backlog is far above threshold, so a poll MUST fire a cycle).
  for (int spin = 0; spin < 5000 && (*table)->publish_cycles() == 0;
       ++spin) {
    (*table)->Nudge();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  (*table)->Stop();
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(captures.load(), 0u);
  EXPECT_TRUE((*table)->last_error().ok());
  EXPECT_GT((*table)->publish_cycles(), 0u);
}

}  // namespace
}  // namespace skyup
