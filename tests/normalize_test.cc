#include "data/normalize.h"

#include <gtest/gtest.h>

#include <vector>

namespace skyup {
namespace {

Dataset MakeDataset(const std::vector<std::vector<double>>& rows) {
  Result<Dataset> r = Dataset::FromRows(rows);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(NormalizerTest, MinimizeMapsToUnitInterval) {
  Dataset ds = MakeDataset({{10, 100}, {20, 300}, {15, 200}});
  Result<Normalizer> norm = Normalizer::Fit(ds);
  ASSERT_TRUE(norm.ok());
  Dataset unit = norm->Normalize(ds);
  EXPECT_DOUBLE_EQ(unit.data(0)[0], 0.0);   // min maps to 0
  EXPECT_DOUBLE_EQ(unit.data(1)[0], 1.0);   // max maps to 1
  EXPECT_DOUBLE_EQ(unit.data(2)[0], 0.5);
  EXPECT_DOUBLE_EQ(unit.data(1)[1], 1.0);
}

TEST(NormalizerTest, MaximizeFlipsOrientation) {
  Dataset ds = MakeDataset({{100}, {300}, {200}});
  Result<Normalizer> norm =
      Normalizer::Fit(ds, {Direction::kMaximize});
  ASSERT_TRUE(norm.ok());
  Dataset unit = norm->Normalize(ds);
  // The best (largest) raw value becomes 0 (best in minimize space).
  EXPECT_DOUBLE_EQ(unit.data(1)[0], 0.0);
  EXPECT_DOUBLE_EQ(unit.data(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(unit.data(2)[0], 0.5);
}

TEST(NormalizerTest, DenormalizeRoundTrips) {
  Dataset ds = MakeDataset({{10, 5}, {30, 9}, {20, 7}});
  Result<Normalizer> norm = Normalizer::Fit(
      ds, {Direction::kMinimize, Direction::kMaximize});
  ASSERT_TRUE(norm.ok());
  Dataset unit = norm->Normalize(ds);
  for (size_t i = 0; i < ds.size(); ++i) {
    const std::vector<double> u(unit.data(static_cast<PointId>(i)),
                                unit.data(static_cast<PointId>(i)) + 2);
    const std::vector<double> raw = norm->Denormalize(u);
    EXPECT_NEAR(raw[0], ds.data(static_cast<PointId>(i))[0], 1e-9);
    EXPECT_NEAR(raw[1], ds.data(static_cast<PointId>(i))[1], 1e-9);
  }
}

TEST(NormalizerTest, DenormalizeBeyondRangeExtrapolates) {
  Dataset ds = MakeDataset({{10}, {30}});
  Result<Normalizer> norm = Normalizer::Fit(ds);
  ASSERT_TRUE(norm.ok());
  // An upgraded value slightly below the observed best (-epsilon in unit
  // space) lands slightly beyond the raw extreme.
  const std::vector<double> raw = norm->Denormalize({-0.05});
  EXPECT_NEAR(raw[0], 9.0, 1e-9);
}

TEST(NormalizerTest, FitAllSpansMultipleDatasets) {
  Dataset a = MakeDataset({{0.0}, {1.0}});
  Dataset b = MakeDataset({{2.0}, {4.0}});
  Result<Normalizer> norm = Normalizer::FitAll({&a, &b});
  ASSERT_TRUE(norm.ok());
  EXPECT_DOUBLE_EQ(norm->scale(0).lo, 0.0);
  EXPECT_DOUBLE_EQ(norm->scale(0).hi, 4.0);
  Dataset unit_b = norm->Normalize(b);
  EXPECT_DOUBLE_EQ(unit_b.data(0)[0], 0.5);
  EXPECT_DOUBLE_EQ(unit_b.data(1)[0], 1.0);
}

TEST(NormalizerTest, ConstantDimensionIsWellDefined) {
  Dataset ds = MakeDataset({{5, 1}, {5, 2}});
  Result<Normalizer> norm = Normalizer::Fit(ds);
  ASSERT_TRUE(norm.ok());
  Dataset unit = norm->Normalize(ds);
  EXPECT_DOUBLE_EQ(unit.data(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(unit.data(1)[0], 0.0);
}

TEST(NormalizerTest, RejectsBadInputs) {
  Dataset ds = MakeDataset({{1, 2}});
  EXPECT_FALSE(Normalizer::FitAll({}).ok());
  EXPECT_FALSE(Normalizer::FitAll({nullptr}).ok());
  Dataset empty(2);
  EXPECT_FALSE(Normalizer::Fit(empty).ok());
  EXPECT_FALSE(Normalizer::Fit(ds, {Direction::kMinimize}).ok());
  Dataset other = MakeDataset({{1, 2, 3}});
  EXPECT_FALSE(Normalizer::FitAll({&ds, &other}).ok());
}

TEST(NormalizerTest, PreservesDominanceUnderMixedDirections) {
  // Phone semantics: (weight min, standby max). Phone X (lighter, longer
  // standby) dominates Y; normalization must preserve that in minimize
  // space.
  Dataset ds = MakeDataset({{120, 200}, {180, 150}, {150, 180}});
  Result<Normalizer> norm = Normalizer::Fit(
      ds, {Direction::kMinimize, Direction::kMaximize});
  ASSERT_TRUE(norm.ok());
  Dataset unit = norm->Normalize(ds);
  // Row 0 beats row 1 on both raw criteria.
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_LT(unit.data(0)[d], unit.data(1)[d]);
  }
}

}  // namespace
}  // namespace skyup
