#include "core/report.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace skyup {
namespace {

std::vector<UpgradeResult> SampleResults() {
  UpgradeResult a;
  a.product_id = 7;
  a.cost = 0.0;
  a.upgraded = {0.5, 0.25};
  a.already_competitive = true;
  UpgradeResult b;
  b.product_id = 3;
  b.cost = 1.5;
  b.upgraded = {0.125, 0.75};
  b.already_competitive = false;
  return {a, b};
}

std::string Render(ReportFormat format) {
  std::ostringstream out;
  WriteReport(SampleResults(), format, out);
  return out.str();
}

TEST(ReportFormatTest, ParseRoundTrips) {
  for (auto format : {ReportFormat::kText, ReportFormat::kCsv,
                      ReportFormat::kJson}) {
    Result<ReportFormat> parsed = ParseReportFormat(ReportFormatName(format));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, format);
  }
  EXPECT_FALSE(ParseReportFormat("xml").ok());
}

TEST(ReportTest, TextListsRanksAndStatus) {
  const std::string text = Render(ReportFormat::kText);
  EXPECT_NE(text.find("rank"), std::string::npos);
  EXPECT_NE(text.find("competitive"), std::string::npos);
  EXPECT_NE(text.find("dominated"), std::string::npos);
  EXPECT_NE(text.find("(0.5, 0.25)"), std::string::npos);
}

TEST(ReportTest, CsvRowsAreMachineReadable) {
  const std::string csv = Render(ReportFormat::kCsv);
  EXPECT_EQ(csv, "1,7,0,1,0.5,0.25\n2,3,1.5,0,0.125,0.75\n");
}

TEST(ReportTest, JsonIsWellFormedEnough) {
  const std::string json = Render(ReportFormat::kJson);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"rank\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"product\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"competitive\": true"), std::string::npos);
  EXPECT_NE(json.find("\"upgraded\": [0.125, 0.75]"), std::string::npos);
  // Exactly one separating comma between the two objects.
  EXPECT_NE(json.find("},\n"), std::string::npos);
  EXPECT_EQ(json.find("}]"), std::string::npos);  // objects on own lines
}

TEST(ReportTest, EmptyResults) {
  std::ostringstream out;
  WriteReport({}, ReportFormat::kJson, out);
  EXPECT_EQ(out.str(), "[\n]\n");
  std::ostringstream csv;
  WriteReport({}, ReportFormat::kCsv, csv);
  EXPECT_EQ(csv.str(), "");
}

}  // namespace
}  // namespace skyup
