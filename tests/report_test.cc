#include "core/report.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace skyup {
namespace {

std::vector<UpgradeResult> SampleResults() {
  UpgradeResult a;
  a.product_id = 7;
  a.cost = 0.0;
  a.upgraded = {0.5, 0.25};
  a.already_competitive = true;
  UpgradeResult b;
  b.product_id = 3;
  b.cost = 1.5;
  b.upgraded = {0.125, 0.75};
  b.already_competitive = false;
  return {a, b};
}

std::string Render(ReportFormat format) {
  std::ostringstream out;
  WriteReport(SampleResults(), format, out);
  return out.str();
}

TEST(ReportFormatTest, ParseRoundTrips) {
  for (auto format : {ReportFormat::kText, ReportFormat::kCsv,
                      ReportFormat::kJson}) {
    Result<ReportFormat> parsed = ParseReportFormat(ReportFormatName(format));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, format);
  }
  EXPECT_FALSE(ParseReportFormat("xml").ok());
}

TEST(ReportTest, TextListsRanksAndStatus) {
  const std::string text = Render(ReportFormat::kText);
  EXPECT_NE(text.find("rank"), std::string::npos);
  EXPECT_NE(text.find("competitive"), std::string::npos);
  EXPECT_NE(text.find("dominated"), std::string::npos);
  EXPECT_NE(text.find("(0.5, 0.25)"), std::string::npos);
}

TEST(ReportTest, CsvRowsAreMachineReadable) {
  const std::string csv = Render(ReportFormat::kCsv);
  EXPECT_EQ(csv, "1,7,0,1,0.5,0.25\n2,3,1.5,0,0.125,0.75\n");
}

TEST(ReportTest, JsonIsWellFormedEnough) {
  const std::string json = Render(ReportFormat::kJson);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"rank\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"product\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"competitive\": true"), std::string::npos);
  EXPECT_NE(json.find("\"upgraded\": [0.125, 0.75]"), std::string::npos);
  // Exactly one separating comma between the two objects.
  EXPECT_NE(json.find("},\n"), std::string::npos);
  EXPECT_EQ(json.find("}]"), std::string::npos);  // objects on own lines
}

TEST(ReportTest, EmptyResults) {
  std::ostringstream out;
  WriteReport({}, ReportFormat::kJson, out);
  EXPECT_EQ(out.str(), "[\n]\n");
  std::ostringstream csv;
  WriteReport({}, ReportFormat::kCsv, csv);
  EXPECT_EQ(csv.str(), "");
}

TEST(ReportMetricsTest, ExecStatsRegisterAsCounters) {
  ExecStats stats;
  stats.products_processed = 11;
  stats.heap_pops = 7;
  stats.block_kernel_calls = 3;
  MetricsRegistry registry;
  AddExecStatsMetrics(stats, &registry);
  // One counter per ExecStats field; the static_assert in the adapter
  // keeps this count honest when fields are added.
  EXPECT_EQ(registry.size(), 14u);

  std::ostringstream out;
  registry.WritePrometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("skyup_products_processed_total 11"),
            std::string::npos);
  EXPECT_NE(text.find("skyup_heap_pops_total 7"), std::string::npos);
  EXPECT_NE(text.find("skyup_block_kernel_calls_total 3"),
            std::string::npos);
}

TEST(ReportMetricsTest, TelemetryRegistersGaugesAndHistograms) {
  QueryTelemetry telemetry;
  telemetry.phases.total.probe_seconds = 0.5;
  telemetry.phases.per_shard.resize(2);
  telemetry.probe_latency.Observe(1e-4);
  MetricsRegistry registry;
  AddTelemetryMetrics(telemetry, &registry);

  std::ostringstream out;
  registry.WritePrometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("skyup_phase_probe_seconds 0.5"), std::string::npos);
  EXPECT_NE(text.find("skyup_query_shards 2"), std::string::npos);
  EXPECT_NE(text.find("skyup_probe_latency_seconds_count 1"),
            std::string::npos);
  EXPECT_NE(text.find("skyup_upgrade_latency_seconds_count 0"),
            std::string::npos);
}

TEST(ReportProfileTest, WriteProfileCoversPhasesShardsAndHistograms) {
  QueryTelemetry telemetry;
  PhaseTimings shard;
  shard.probe_seconds = 0.75;
  shard.upgrade_seconds = 0.25;
  telemetry.phases.AddShard(shard);
  shard.probe_seconds = 0.25;
  telemetry.phases.AddShard(shard);
  telemetry.probe_latency.Observe(1e-3);

  std::ostringstream out;
  WriteProfile(telemetry, 2.0, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("phase profile (2 shards)"), std::string::npos);
  EXPECT_NE(text.find("probe"), std::string::npos);
  EXPECT_NE(text.find("% attributed"), std::string::npos);
  EXPECT_NE(text.find("per-shard seconds"), std::string::npos);
  EXPECT_NE(text.find("shard 1"), std::string::npos);
  EXPECT_NE(text.find("latency histograms"), std::string::npos);
  EXPECT_NE(text.find("n=1"), std::string::npos);

  // wall_seconds <= 0 omits the coverage line; one shard drops the
  // per-shard table.
  QueryTelemetry single;
  single.phases.AddShard(shard);
  std::ostringstream brief;
  WriteProfile(single, 0.0, brief);
  EXPECT_EQ(brief.str().find("attributed)"), std::string::npos);
  EXPECT_EQ(brief.str().find("per-shard"), std::string::npos);
}

}  // namespace
}  // namespace skyup
