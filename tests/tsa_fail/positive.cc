// Expected-pass seed (EXPECT=pass, tsa_compile_check.cmake): exercises
// the whole annotated wrapper surface — Mutex/MutexLock, SharedMutex
// with Reader/WriterLock, CondVar waits (plain, timed, explicit
// predicate loop), try_lock, SKYUP_REQUIRES preconditions, and a
// lock-order-correct band nesting — and must stay clean under the full
// thread-safety flag set. If this seed starts failing, the wrapper
// types (src/util/mutex.h), not the seed, regressed.

#include <chrono>

#include "util/lock_order.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

using skyup::lock_order::kObsRegistry;
using skyup::lock_order::kTable;
using skyup::lock_order::kTableSub;

class Table {
 public:
  void Put(int v) {
    skyup::MutexLock lock(mu_);
    value_ = v;
    ApplyLocked();
    skyup::MutexLock sub(sub_mu_);  // correct order: table before sub
    sub_value_ = v;
  }

  int Get() const {
    skyup::MutexLock lock(mu_);
    return value_;
  }

  bool TryBump() {
    if (!mu_.try_lock()) return false;
    ++value_;
    mu_.unlock();
    return true;
  }

  void WaitNonZero() {
    skyup::MutexLock lock(mu_);
    while (value_ == 0) {
      cv_.wait(mu_);
    }
  }

  bool WaitNonZeroFor(std::chrono::milliseconds timeout) {
    skyup::MutexLock lock(mu_);
    while (value_ == 0) {
      if (cv_.wait_for(mu_, timeout) == std::cv_status::timeout) {
        return value_ != 0;
      }
    }
    return true;
  }

  void Signal() {
    {
      skyup::MutexLock lock(mu_);
      value_ = 1;
    }
    cv_.notify_all();
  }

 private:
  void ApplyLocked() SKYUP_REQUIRES(mu_) { ++value_; }

  mutable skyup::Mutex mu_ SKYUP_ACQUIRED_AFTER(kTable)
      SKYUP_ACQUIRED_BEFORE(kTableSub);
  skyup::CondVar cv_;
  int value_ SKYUP_GUARDED_BY(mu_) = 0;
  skyup::Mutex sub_mu_ SKYUP_ACQUIRED_AFTER(kTableSub)
      SKYUP_ACQUIRED_BEFORE(kObsRegistry);
  int sub_value_ SKYUP_GUARDED_BY(sub_mu_) = 0;
};

class SharedCounter {
 public:
  int Read() const {
    skyup::ReaderLock lock(mu_);
    return value_;
  }

  void Write(int v) {
    skyup::WriterLock lock(mu_);
    value_ = v;
  }

 private:
  mutable skyup::SharedMutex mu_;
  int value_ SKYUP_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Table t;
  t.Put(1);
  t.Signal();
  t.WaitNonZero();
  static_cast<void>(t.WaitNonZeroFor(std::chrono::milliseconds(1)));
  static_cast<void>(t.TryBump());
  SharedCounter s;
  s.Write(2);
  return t.Get() + s.Read();
}
