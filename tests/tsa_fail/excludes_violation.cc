// Compile-fail seed (EXPECT=fail, tsa_compile_check.cmake): calling a
// SKYUP_EXCLUDES(mu) function while holding mu must be rejected
// ("cannot call function ... while mutex ... is held"). This is the
// anti-reentrancy contract Server::RecordOutcome and the AfterUpdate
// hooks rely on — violating it self-deadlocks on a non-recursive mutex.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Stats {
 public:
  void Record() SKYUP_EXCLUDES(mu_) {
    skyup::MutexLock lock(mu_);
    ++count_;
  }

  void RecordTwice() {
    skyup::MutexLock lock(mu_);
    Record();  // BUG: re-enters while mu_ is held — self-deadlock.
  }

 private:
  skyup::Mutex mu_;
  int count_ SKYUP_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Stats s;
  s.RecordTwice();
  return 0;
}
