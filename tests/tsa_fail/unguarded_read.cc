// Compile-fail seed (EXPECT=fail, tsa_compile_check.cmake): reading a
// SKYUP_GUARDED_BY member without holding its mutex must be rejected
// ("reading variable ... requires holding mutex"). This is the bread-
// and-butter diagnostic every annotated member in src/serve relies on.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() {
    skyup::MutexLock lock(mu_);
    ++value_;
  }

  // BUG: reads the guarded member with no lock held.
  int Read() const { return value_; }

 private:
  mutable skyup::Mutex mu_;
  int value_ SKYUP_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return c.Read();
}
