// Compile-fail seed (EXPECT=fail, tsa_compile_check.cmake): the sharded
// serving tier inserted a kShardTable band between the rebuilder and the
// per-shard table locks (ShardedTable::route_mu_/epoch_mu_ live there).
// Taking a shard-band lock while holding a table-band lock is the
// classic deadlock shape for scatter-gather — a shard insert holds the
// router and then the shard's table lock, never the other way — so the
// rank inversion must be rejected under -Wthread-safety. As with the
// kTableSub seed, the edge is only reachable through the rank token's
// transitive closure.

#include "util/lock_order.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

using skyup::lock_order::kRebuilder;
using skyup::lock_order::kShardTable;
using skyup::lock_order::kTable;
using skyup::lock_order::kTableSub;

skyup::Mutex router SKYUP_ACQUIRED_AFTER(kShardTable)
    SKYUP_ACQUIRED_BEFORE(kTable);
skyup::Mutex shard_table SKYUP_ACQUIRED_AFTER(kTable)
    SKYUP_ACQUIRED_BEFORE(kTableSub);

void Inverted() {
  skyup::MutexLock hold_table(shard_table);
  skyup::MutexLock hold_router(router);  // BUG: router is a higher band.
}

}  // namespace

int main() {
  Inverted();
  return 0;
}
