// Compile-fail seed (EXPECT=fail, tsa_compile_check.cmake): an early
// return while the mutex is still held must be rejected ("mutex ... is
// still held at the end of function"). Manual lock()/unlock() is legal
// on the wrapper — the analysis is what keeps every path balanced.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

skyup::Mutex g_mu;
int g_value SKYUP_GUARDED_BY(g_mu) = 0;

int TakeAndMaybeLeak(bool early) {
  g_mu.lock();
  if (early) return -1;  // BUG: returns without unlocking g_mu.
  const int v = g_value;
  g_mu.unlock();
  return v;
}

}  // namespace

int main() { return TakeAndMaybeLeak(false); }
