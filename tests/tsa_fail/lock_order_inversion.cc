// Compile-fail seed (EXPECT=fail, tsa_compile_check.cmake): acquiring
// two mutexes against their declared band order must be rejected under
// -Wthread-safety-beta ("mutex ... must be acquired before ..."). The
// mutexes sandwich the kTableSub rank exactly like the real table
// substructures in src/serve, so this also proves the inversion is
// caught *through* the rank token's transitive closure — there is no
// direct edge between `outer` and `inner`.

#include "util/lock_order.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

using skyup::lock_order::kObsRegistry;
using skyup::lock_order::kTable;
using skyup::lock_order::kTableSub;

skyup::Mutex outer SKYUP_ACQUIRED_AFTER(kTable)
    SKYUP_ACQUIRED_BEFORE(kTableSub);
skyup::Mutex inner SKYUP_ACQUIRED_AFTER(kTableSub)
    SKYUP_ACQUIRED_BEFORE(kObsRegistry);

void Inverted() {
  skyup::MutexLock hold_inner(inner);
  skyup::MutexLock hold_outer(outer);  // BUG: outer is a higher band.
}

}  // namespace

int main() {
  Inverted();
  return 0;
}
