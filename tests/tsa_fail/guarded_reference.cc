// Compile-fail seed (EXPECT=fail, tsa_compile_check.cmake): returning
// a mutable reference to a SKYUP_GUARDED_BY member must be rejected
// (-Wthread-safety-reference, "returning variable ... by reference
// requires holding mutex") — the reference lets every caller mutate the
// member with no lock in sight.

#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Registry {
 public:
  void Add(int v) {
    skyup::MutexLock lock(mu_);
    entries_.push_back(v);
  }

  // BUG: leaks an unlocked mutable reference to the guarded vector.
  std::vector<int>& entries() { return entries_; }

 private:
  skyup::Mutex mu_;
  std::vector<int> entries_ SKYUP_GUARDED_BY(mu_);
};

}  // namespace

int main() {
  Registry r;
  r.Add(1);
  return static_cast<int>(r.entries().size());
}
