# Drives one tests/tsa_fail/ seed through `clang -fsyntax-only` with the
# same thread-safety flag set the SKYUP_THREAD_SAFETY build uses, and
# checks the outcome against the seed's expectation:
#
#   EXPECT=fail  the seed must be REJECTED, and the rejection must come
#                from the thread-safety analysis (stderr mentions
#                "thread-safety"), not from an unrelated compile error —
#                a broken include path would otherwise count as a pass.
#   EXPECT=pass  the seed must compile clean; this is the automated
#                check that the wrapper types themselves are TSA-sound.
#
# Invoked by the `tsa_fail_*` / `tsa_pass_*` ctest entries (label
# "static", tests/CMakeLists.txt):
#   cmake -DCXX=<clang++> -DINCLUDE_DIR=<repo>/src -DSEED_FILE=<seed.cc>
#         -DEXPECT=fail -P tsa_compile_check.cmake

foreach(var CXX INCLUDE_DIR SEED_FILE EXPECT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "tsa_compile_check: -D${var}=... is required")
  endif()
endforeach()

execute_process(
  COMMAND ${CXX} -std=c++20 -fsyntax-only -I${INCLUDE_DIR}
          -Wthread-safety
          -Wthread-safety-beta
          -Werror=thread-safety-analysis
          -Werror=thread-safety-attributes
          -Werror=thread-safety-precise
          -Werror=thread-safety-reference
          -Werror=thread-safety-beta
          ${SEED_FILE}
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE compile_stdout
  ERROR_VARIABLE compile_stderr)

if(EXPECT STREQUAL "fail")
  if(exit_code EQUAL 0)
    message(FATAL_ERROR
            "${SEED_FILE}: expected the thread-safety analysis to reject "
            "this seed, but it compiled clean — the annotations no longer "
            "bite")
  endif()
  if(NOT compile_stderr MATCHES "thread-safety")
    message(FATAL_ERROR
            "${SEED_FILE}: rejected, but not by the thread-safety "
            "analysis — fix the seed so the intended diagnostic fires:\n"
            "${compile_stderr}")
  endif()
elseif(EXPECT STREQUAL "pass")
  if(NOT exit_code EQUAL 0)
    message(FATAL_ERROR
            "${SEED_FILE}: expected to compile clean under the full "
            "thread-safety flag set, but failed:\n${compile_stderr}")
  endif()
else()
  message(FATAL_ERROR "tsa_compile_check: EXPECT must be pass or fail "
                      "(got '${EXPECT}')")
endif()
