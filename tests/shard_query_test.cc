// Tests for scatter-gather top-k (serve/shard/shard_query.h): results
// must be byte-identical to the single-table engine (`TopKOverlay`) over
// the same live state, for any shard count, any worker count, and
// regardless of publish state — the query is a pure function of the
// live value set, and sharding only partitions the work. Also pins the
// sharded counter semantics (shard_queries/shard_fanout bump, cache
// counters track the GLOBAL upgrade cache — per-shard caches do not
// exist) and the flight-recorder attribution struct.

#include "serve/shard/shard_query.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cost_function.h"
#include "serve/live_table.h"
#include "serve/query.h"
#include "util/random.h"

namespace skyup {
namespace {

constexpr double kEps = 1e-6;

struct TwinState {
  std::unique_ptr<ShardedTable> sharded;
  std::unique_ptr<LiveTable> single;
};

// Drives the same op stream into an N-shard table and a single table.
TwinState BuildTwins(size_t shards, uint64_t seed, int steps,
                     size_t dims = 2) {
  ShardedTableOptions so;
  so.dims = dims;
  so.shards = shards;
  so.partition_fit_after = 16;
  auto sharded = ShardedTable::Create(so);
  EXPECT_TRUE(sharded.ok());
  LiveTableOptions lo;
  lo.dims = dims;
  auto single = LiveTable::Create(lo);
  EXPECT_TRUE(single.ok());

  Rng rng(seed);
  std::vector<uint64_t> live_p;
  std::vector<uint64_t> live_t;
  for (int i = 0; i < steps; ++i) {
    const uint64_t roll = rng.NextUint64(10);
    std::vector<double> coords(dims);
    for (double& c : coords) c = rng.NextDouble(0, 2);
    if (roll < 4 || live_p.size() < 2) {
      auto a = (*sharded)->InsertCompetitor(coords);
      auto b = (*single)->InsertCompetitor(coords);
      EXPECT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(*a, *b);
      live_p.push_back(*a);
    } else if (roll < 7) {
      auto a = (*sharded)->InsertProduct(coords);
      auto b = (*single)->InsertProduct(coords);
      EXPECT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(*a, *b);
      live_t.push_back(*a);
    } else if (roll < 9 && !live_p.empty()) {
      const size_t at = static_cast<size_t>(rng.NextUint64(live_p.size()));
      EXPECT_TRUE((*sharded)->EraseCompetitor(live_p[at]).ok());
      EXPECT_TRUE((*single)->EraseCompetitor(live_p[at]).ok());
      live_p[at] = live_p.back();
      live_p.pop_back();
    } else if (!live_t.empty()) {
      const size_t at = static_cast<size_t>(rng.NextUint64(live_t.size()));
      EXPECT_TRUE((*sharded)->EraseProduct(live_t[at]).ok());
      EXPECT_TRUE((*single)->EraseProduct(live_t[at]).ok());
      live_t[at] = live_t.back();
      live_t.pop_back();
    }
  }
  return {std::move(*sharded), std::move(*single)};
}

void ExpectSameResults(const std::vector<UpgradeResult>& want,
                       const std::vector<UpgradeResult>& got) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].product_id, want[i].product_id) << "rank " << i;
    // lint: float-eq-ok (differential: scatter-gather must match the
    // single-table engine bit-for-bit)
    EXPECT_EQ(got[i].cost, want[i].cost) << "rank " << i;
    EXPECT_EQ(got[i].upgraded, want[i].upgraded) << "rank " << i;
    EXPECT_EQ(got[i].already_competitive, want[i].already_competitive)
        << "rank " << i;
  }
}

TEST(ShardQueryTest, MatchesSingleTableAcrossShardCounts) {
  const ProductCostFunction cost_fn =
      ProductCostFunction::ReciprocalSum(2, 1e-3);
  for (const size_t shards : {1u, 2u, 3u, 5u, 9u}) {
    TwinState twins = BuildTwins(shards, /*seed=*/shards, /*steps=*/120);
    const ReadView single_view = twins.single->AcquireView();
    const ShardedView sharded_view = twins.sharded->AcquireViews();
    for (const size_t k : {1u, 3u, 8u, 100u}) {
      auto want = TopKOverlay(single_view, cost_fn, k, kEps);
      ASSERT_TRUE(want.ok());
      auto got = TopKSharded(sharded_view, cost_fn, k, kEps);
      ASSERT_TRUE(got.ok()) << "shards=" << shards;
      ExpectSameResults(*want, *got);
    }
  }
}

TEST(ShardQueryTest, PublishStateDoesNotChangeResults) {
  // Publishing moves rows from overlay to snapshot; the live value set —
  // and therefore the query answer — is unchanged. Publish only the
  // sharded side and compare against the never-published single table.
  const ProductCostFunction cost_fn =
      ProductCostFunction::ReciprocalSum(3, 1e-3);
  TwinState twins = BuildTwins(/*shards=*/4, /*seed=*/77, /*steps=*/150,
                               /*dims=*/3);
  RebuildPolicy policy;
  policy.threshold_ops = 1;
  auto published = twins.sharded->MaybePublishInline(policy);
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(*published, 4u);
  auto want = TopKOverlay(twins.single->AcquireView(), cost_fn, 10, kEps);
  ASSERT_TRUE(want.ok());
  auto got = TopKSharded(twins.sharded->AcquireViews(), cost_fn, 10, kEps);
  ASSERT_TRUE(got.ok());
  ExpectSameResults(*want, *got);
}

TEST(ShardQueryTest, WorkerCountDoesNotChangeResults) {
  const ProductCostFunction cost_fn =
      ProductCostFunction::ReciprocalSum(2, 1e-3);
  TwinState twins = BuildTwins(/*shards=*/5, /*seed=*/13, /*steps=*/140);
  const ShardedView view = twins.sharded->AcquireViews();
  auto serial = TopKSharded(view, cost_fn, 6, kEps, /*threads=*/1);
  ASSERT_TRUE(serial.ok());
  for (const size_t threads : {0u, 2u, 3u, 16u}) {
    auto got = TopKSharded(view, cost_fn, 6, kEps, threads);
    ASSERT_TRUE(got.ok()) << "threads=" << threads;
    ExpectSameResults(*serial, *got);
  }
}

TEST(ShardQueryTest, EmptyProductSetYieldsEmptyResult) {
  ShardedTableOptions so;
  so.dims = 2;
  so.shards = 3;
  auto sharded = ShardedTable::Create(so);
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE((*sharded)->InsertCompetitor({0.5, 0.5}).ok());
  auto got = TopKSharded((*sharded)->AcquireViews(),
                         ProductCostFunction::ReciprocalSum(2, 1e-3), 5,
                         kEps);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

TEST(ShardQueryTest, BatchMembersMatchTheirSoloRuns) {
  const ProductCostFunction cost_fn =
      ProductCostFunction::ReciprocalSum(2, 1e-3);
  TwinState twins = BuildTwins(/*shards=*/3, /*seed=*/33, /*steps=*/140);
  const ShardedView view = twins.sharded->AcquireViews();
  // Mixed ks (duplicates included) plus one malformed member: the group
  // must resolve each member to exactly its solo outcome, and a bad
  // member fails alone without poisoning the group.
  std::vector<BatchQuery> batch;
  for (const size_t k : {1u, 4u, 4u, 9u, 100u}) {
    BatchQuery q;
    q.k = k;
    batch.push_back(q);
  }
  batch.push_back(BatchQuery{/*k=*/0, /*control=*/nullptr});
  for (const size_t threads : {0u, 1u, 2u, 8u}) {
    std::vector<BatchQueryResult> out;
    ServeStats stats;
    TopKShardedBatch(view, cost_fn, batch, kEps, threads, &out, &stats);
    ASSERT_EQ(out.size(), batch.size());
    for (size_t i = 0; i + 1 < out.size(); ++i) {
      ASSERT_TRUE(out[i].status.ok()) << "member " << i;
      auto solo = TopKSharded(view, cost_fn, batch[i].k, kEps, 1);
      ASSERT_TRUE(solo.ok());
      ExpectSameResults(*solo, out[i].results);
    }
    EXPECT_EQ(out.back().status.code(), StatusCode::kInvalidArgument);
    EXPECT_TRUE(out.back().results.empty());
    EXPECT_EQ(stats.shard_queries, 5u) << "threads=" << threads;
    EXPECT_EQ(stats.shard_fanout, 15u) << "threads=" << threads;
  }
}

TEST(ShardQueryTest, CountersBumpAndGlobalCacheServesRepeats) {
  const ProductCostFunction cost_fn =
      ProductCostFunction::ReciprocalSum(2, 1e-3);
  TwinState twins = BuildTwins(/*shards=*/3, /*seed=*/21, /*steps=*/100);
  const ShardedView view = twins.sharded->AcquireViews();
  // Per-shard caches do not exist (they would memoize shard-local
  // dominators); the global cache on the sharded view replaces them.
  for (const ReadView& v : view.views) {
    EXPECT_EQ(v.cache, nullptr);
  }
  ASSERT_NE(view.cache, nullptr);
  ServeStats stats;
  ShardQueryInfo info;
  auto got = TopKSharded(view, cost_fn, 4, kEps, /*threads=*/0,
                         /*control=*/nullptr, &stats, /*telemetry=*/nullptr,
                         &info);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(stats.shard_queries, 1u);
  EXPECT_EQ(stats.shard_fanout, 3u);
  EXPECT_GT(stats.candidates_evaluated, 0u);
  // A cold cache: every live product misses, every outcome is stored.
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, stats.candidates_evaluated);
  EXPECT_EQ(info.shard_count, 3u);
  EXPECT_LT(info.slowest_shard, 3u);
  EXPECT_GE(info.slowest_shard_seconds, 0.0);

  // A repeat of the same query is served wholly from the cache — zero
  // candidate evaluations — and stays byte-identical.
  ServeStats repeat_stats;
  auto repeat = TopKSharded(twins.sharded->AcquireViews(), cost_fn, 4, kEps,
                            /*threads=*/0, /*control=*/nullptr,
                            &repeat_stats);
  ASSERT_TRUE(repeat.ok());
  ExpectSameResults(*got, *repeat);
  EXPECT_EQ(repeat_stats.cache_hits, stats.cache_misses);
  EXPECT_EQ(repeat_stats.cache_misses, 0u);
  EXPECT_EQ(repeat_stats.candidates_evaluated, 0u);

  // An update that can change dominator skylines invalidates through the
  // routed op stream: the next query recomputes (some misses) yet still
  // matches the single-table engine over the updated twin state.
  ASSERT_TRUE(twins.sharded->InsertCompetitor({0.01, 0.01}).ok());
  ASSERT_TRUE(twins.single->InsertCompetitor({0.01, 0.01}).ok());
  ServeStats warm_stats;
  auto warm = TopKSharded(twins.sharded->AcquireViews(), cost_fn, 4, kEps,
                          /*threads=*/0, /*control=*/nullptr, &warm_stats);
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(warm_stats.cache_misses, 0u);
  auto expect = TopKOverlay(twins.single->AcquireView(), cost_fn, 4, kEps);
  ASSERT_TRUE(expect.ok());
  ExpectSameResults(*expect, *warm);
}

}  // namespace
}  // namespace skyup
