// Tests for the serve workload format and replayer (serve/replay.h):
// parser acceptance/rejection, generator determinism and id-validity, and
// the core replay property — two runs of the same workload produce
// byte-identical result logs — plus the CLI `serve` command wiring.

#include "serve/replay.h"

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "serve/server.h"

namespace skyup {
namespace {

Result<std::unique_ptr<Server>> MakeReplayServer(size_t dims) {
  ServerOptions options;
  options.dims = dims;
  options.background_rebuild = false;
  options.rebuild_threshold_ops = 16;
  options.query_threads = 1;
  return Server::Create(ProductCostFunction::ReciprocalSum(dims, 1e-3),
                        options);
}

TEST(WorkloadParseTest, RoundTripsAllOpKinds) {
  const std::string text =
      "# skyup serve workload dims=2\n"
      "\n"
      "# a comment\n"
      "ip,0.5,0.25\n"
      "it,0.9,0.8\n"
      "ep,1\n"
      "et,1\n"
      "q,5\n";
  Result<ReplayWorkload> workload = ParseWorkload(text);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  EXPECT_EQ(workload->dims, 2u);
  ASSERT_EQ(workload->ops.size(), 5u);
  EXPECT_EQ(workload->ops[0].kind, ReplayOpKind::kInsertCompetitor);
  EXPECT_EQ(workload->ops[0].coords, (std::vector<double>{0.5, 0.25}));
  EXPECT_EQ(workload->ops[1].kind, ReplayOpKind::kInsertProduct);
  EXPECT_EQ(workload->ops[2].kind, ReplayOpKind::kEraseCompetitor);
  EXPECT_EQ(workload->ops[2].id, 1u);
  EXPECT_EQ(workload->ops[3].kind, ReplayOpKind::kEraseProduct);
  EXPECT_EQ(workload->ops[4].kind, ReplayOpKind::kQuery);
  EXPECT_EQ(workload->ops[4].k, 5u);
}

TEST(WorkloadParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseWorkload("").ok());                       // no header
  EXPECT_FALSE(ParseWorkload("ip,0.5,0.5\n").ok());           // no header
  EXPECT_FALSE(
      ParseWorkload("# skyup serve workload dims=2\nip,0.5\n").ok());
  EXPECT_FALSE(
      ParseWorkload("# skyup serve workload dims=2\nzz,1\n").ok());
  EXPECT_FALSE(
      ParseWorkload("# skyup serve workload dims=2\nq,0\n").ok());
  EXPECT_FALSE(
      ParseWorkload("# skyup serve workload dims=2\nep,abc\n").ok());
}

TEST(WorkloadGenerateTest, DeterministicAndReplayable) {
  std::ostringstream a, b;
  ASSERT_TRUE(GenerateWorkload(42, 300, 3, a).ok());
  ASSERT_TRUE(GenerateWorkload(42, 300, 3, b).ok());
  EXPECT_EQ(a.str(), b.str());

  std::ostringstream c;
  ASSERT_TRUE(GenerateWorkload(43, 300, 3, c).ok());
  EXPECT_NE(a.str(), c.str());

  // Every generated op must be accepted by a real server (erases name
  // live ids only).
  Result<ReplayWorkload> workload = ParseWorkload(a.str());
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->ops.size(), 300u);
  Result<std::unique_ptr<Server>> server = MakeReplayServer(3);
  ASSERT_TRUE(server.ok());
  std::ostringstream results;
  Result<ReplayReport> report = Replay(server->get(), *workload, results);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->inserts_p + report->inserts_t + report->erases_p +
                report->erases_t + report->queries,
            300u);
}

TEST(ReplayTest, TwoRunsAreByteIdentical) {
  std::ostringstream text;
  ASSERT_TRUE(GenerateWorkload(7, 400, 2, text).ok());
  Result<ReplayWorkload> workload = ParseWorkload(text.str());
  ASSERT_TRUE(workload.ok());

  std::string logs[2];
  for (std::string& log : logs) {
    Result<std::unique_ptr<Server>> server = MakeReplayServer(2);
    ASSERT_TRUE(server.ok());
    std::ostringstream results;
    Result<ReplayReport> report = Replay(server->get(), *workload, results);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GT(report->queries, 0u);
    log = results.str();
  }
  EXPECT_EQ(logs[0], logs[1]);
  EXPECT_FALSE(logs[0].empty());
}

TEST(ReplayTest, ShardCountNeverChangesTheResultLog) {
  // The core sharding determinism property: replaying one workload
  // against `--shards N` servers produces a result log byte-identical to
  // the single-table server's, for shard counts including 1 and counts
  // larger than most of the run's competitor set. CI guards the same
  // property end to end through the CLI (.github/workflows/ci.yml).
  std::ostringstream text;
  ASSERT_TRUE(GenerateWorkload(11, 500, 3, text).ok());
  Result<ReplayWorkload> workload = ParseWorkload(text.str());
  ASSERT_TRUE(workload.ok());

  std::string baseline;
  uint64_t baseline_epoch = 0;
  size_t baseline_backlog = 0;
  for (const size_t shards : {0u, 1u, 2u, 4u, 7u}) {
    ServerOptions options;
    options.dims = 3;
    options.background_rebuild = false;
    options.rebuild_threshold_ops = 16;
    options.query_threads = 1;
    options.shards = shards;
    Result<std::unique_ptr<Server>> server = Server::Create(
        ProductCostFunction::ReciprocalSum(3, 1e-3), options);
    ASSERT_TRUE(server.ok()) << "shards=" << shards;
    std::ostringstream results;
    Result<ReplayReport> report = Replay(server->get(), *workload, results);
    ASSERT_TRUE(report.ok())
        << "shards=" << shards << ": " << report.status().ToString();
    if (shards == 0) {
      baseline = results.str();
      baseline_epoch = report->final_epoch;
      baseline_backlog = report->final_backlog;
      EXPECT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(results.str(), baseline) << "shards=" << shards;
      // Inline publish cycles fire on the same total-backlog instants.
      EXPECT_EQ(report->final_epoch, baseline_epoch)
          << "shards=" << shards;
      EXPECT_EQ(report->final_backlog, baseline_backlog)
          << "shards=" << shards;
    }
  }
}

TEST(ReplayTest, RequiresDeterministicMode) {
  ServerOptions options;
  options.dims = 2;
  options.background_rebuild = true;
  Result<std::unique_ptr<Server>> server = Server::Create(
      ProductCostFunction::ReciprocalSum(2, 1e-3), options);
  ASSERT_TRUE(server.ok());
  ReplayWorkload workload;
  workload.dims = 2;
  std::ostringstream results;
  Result<ReplayReport> report = Replay(server->get(), workload, results);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeCliTest, GenerateThenReplayEndToEnd) {
  const std::string ops_path =
      ::testing::TempDir() + "/skyup_serve_ops.csv";
  const std::string out_a = ::testing::TempDir() + "/skyup_serve_a.txt";
  const std::string out_b = ::testing::TempDir() + "/skyup_serve_b.txt";

  std::ostringstream out, err;
  int code = cli::Run({"serve", "--gen-ops=" + ops_path, "--ops=200",
                       "--dims=2", "--seed=5"},
                      out, err);
  ASSERT_EQ(code, 0) << err.str();

  for (const std::string& path : {out_a, out_b}) {
    std::ostringstream run_out, run_err;
    code = cli::Run({"serve", "--replay=" + ops_path, "--out=" + path},
                    run_out, run_err);
    ASSERT_EQ(code, 0) << run_err.str();
    EXPECT_NE(run_err.str().find("# replay:"), std::string::npos);
  }
  std::ifstream a(out_a), b(out_b);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_FALSE(sa.str().empty());
}

TEST(ServeCliTest, ReplayShardsFlagKeepsOutputByteIdentical) {
  const std::string ops_path =
      ::testing::TempDir() + "/skyup_serve_shard_ops.csv";
  std::ostringstream out, err;
  int code = cli::Run({"serve", "--gen-ops=" + ops_path, "--ops=300",
                       "--dims=2", "--seed=9"},
                      out, err);
  ASSERT_EQ(code, 0) << err.str();

  std::string baseline;
  for (const std::string shards : {"0", "3"}) {
    const std::string out_path = ::testing::TempDir() +
                                 "/skyup_serve_shard_" + shards + ".txt";
    std::ostringstream run_out, run_err;
    code = cli::Run({"serve", "--replay=" + ops_path,
                     "--shards=" + shards, "--out=" + out_path},
                    run_out, run_err);
    ASSERT_EQ(code, 0) << run_err.str();
    std::ifstream f(out_path);
    std::stringstream s;
    s << f.rdbuf();
    if (shards == "0") {
      baseline = s.str();
      ASSERT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(s.str(), baseline);
    }
  }
}

TEST(ServeCliTest, ReplayAndGenAreMutuallyExclusive) {
  std::ostringstream out, err;
  EXPECT_EQ(cli::Run({"serve"}, out, err), 2);
  EXPECT_EQ(cli::Run({"serve", "--replay=a", "--gen-ops=b"}, out, err), 2);
}

}  // namespace
}  // namespace skyup
