// Tests for the structured JSONL logger (obs/log.h): gating with no
// sink, level filtering, field formatting and escaping, stats counters,
// and concurrent emission (whole lines, never interleaved) — the last is
// why this suite carries the "parallel" label and runs under TSan.

#include "obs/log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace skyup {
namespace {

// Every test installs and removes its own sink; the gate is global, so
// leaving one installed would leak records into the next test.
class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { CloseLogSink(); }
};

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST_F(LogTest, NoSinkMeansDisabledAndFree) {
  CloseLogSink();
  EXPECT_FALSE(LogEnabled(LogLevel::kError));
  // Emitting with no sink must be safe (and build nothing).
  LogRecord(LogLevel::kInfo, "dropped").U64("n", 1);
}

TEST_F(LogTest, EmitsOneJsonObjectPerLine) {
  std::ostringstream out;
  SetLogStream(&out, LogLevel::kInfo);
  EXPECT_TRUE(LogEnabled(LogLevel::kInfo));
  LogRecord(LogLevel::kInfo, "publish").U64("epoch", 7).Str("kind", "major");
  LogRecord(LogLevel::kWarn, "slow_query")
      .U64("query_id", 42)
      .F64("wall_s", 0.5);
  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"event\":\"publish\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"epoch\":7"), std::string::npos);
  EXPECT_NE(lines[0].find("\"kind\":\"major\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"query_id\":42"), std::string::npos);
  EXPECT_NE(lines[1].find("\"wall_s\":0.5"), std::string::npos);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"ts_us\":"), std::string::npos);
  }
}

TEST_F(LogTest, MinLevelFilters) {
  std::ostringstream out;
  SetLogStream(&out, LogLevel::kWarn);
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_TRUE(LogEnabled(LogLevel::kWarn));
  LogRecord(LogLevel::kInfo, "ignored");
  LogRecord(LogLevel::kError, "kept");
  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"kept\""), std::string::npos);
}

TEST_F(LogTest, EscapesStringsAndHandlesNonFinite) {
  std::ostringstream out;
  SetLogStream(&out, LogLevel::kDebug);
  LogRecord(LogLevel::kDebug, "esc")
      .Str("msg", "a \"quoted\"\nline\\path")
      .F64("bad", std::numeric_limits<double>::infinity())
      .Bool("flag", true);
  const std::string text = out.str();
  EXPECT_NE(text.find("a \\\"quoted\\\"\\nline\\\\path"), std::string::npos);
  EXPECT_NE(text.find("\"bad\":null"), std::string::npos);
  EXPECT_NE(text.find("\"flag\":true"), std::string::npos);
}

TEST_F(LogTest, StatsCountEmitted) {
  std::ostringstream out;
  SetLogStream(&out, LogLevel::kInfo);
  const LogStats before = GetLogStats();
  LogRecord(LogLevel::kInfo, "one");
  LogRecord(LogLevel::kInfo, "two");
  const LogStats after = GetLogStats();
  EXPECT_EQ(after.emitted - before.emitted, 2u);
}

TEST_F(LogTest, FileSinkAppends) {
  const std::string path =
      ::testing::TempDir() + "/skyup_log_test.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(SetLogFile(path, LogLevel::kInfo).ok());
  LogRecord(LogLevel::kInfo, "to_file").U64("n", 1);
  CloseLogSink();  // flushes and closes
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"event\":\"to_file\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(LogTest, ConcurrentEmittersNeverInterleaveLines) {
  std::ostringstream out;
  SetLogStream(&out, LogLevel::kInfo);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        LogRecord(LogLevel::kInfo, "burst")
            .U64("thread", static_cast<uint64_t>(t))
            .U64("i", static_cast<uint64_t>(i))
            .Str("pad", "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  CloseLogSink();
  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads * kPerThread));
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"event\":\"burst\""), std::string::npos);
  }
}

}  // namespace
}  // namespace skyup
