#include "core/lower_bounds.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "core/dominance.h"
#include "core/single_upgrade.h"
#include "data/generator.h"
#include "skyline/skyline.h"
#include "util/random.h"

namespace skyup {
namespace {

const ProductCostFunction& CostFn2() {
  static const ProductCostFunction* f =
      new ProductCostFunction(ProductCostFunction::ReciprocalSum(2, 1e-3));
  return *f;
}

const ProductCostFunction& CostFn2x3() {
  static const ProductCostFunction* f =
      new ProductCostFunction(ProductCostFunction::ReciprocalSum(3, 1e-3));
  return *f;
}

TEST(ClassifyDimsTest, PartitionsDimensions) {
  // e_T.min = (5, 5, 5); e_P spans [2,4] x [6,8] x [4,6].
  const std::vector<double> et_min = {5, 5, 5};
  const std::vector<double> ep_min = {2, 6, 4};
  const std::vector<double> ep_max = {4, 8, 6};
  DimClassification cls =
      ClassifyDims(et_min.data(), ep_min.data(), ep_max.data(), 3);
  EXPECT_EQ(cls.disadvantaged, 0b001u);  // dim 0: ep_max < et_min
  EXPECT_EQ(cls.advantaged, 0b010u);     // dim 1: et_min < ep_min
  EXPECT_EQ(cls.incomparable, 0b100u);   // dim 2: ep_min <= et_min <= ep_max
  EXPECT_EQ(cls.disadvantaged | cls.advantaged | cls.incomparable, 0b111u);
}

TEST(LbcPairTest, CaseOneAdvantagedIsZero) {
  // e_T.min better than e_P.min on dim 1 -> no upgrade needed.
  const std::vector<double> et_min = {0.9, 0.1};
  const std::vector<double> ep_min = {0.2, 0.2};
  const std::vector<double> ep_max = {0.4, 0.4};
  EXPECT_DOUBLE_EQ(
      LbcPair(et_min.data(), ep_min.data(), ep_max.data(), 2, CostFn2()),
      0.0);
}

TEST(LbcPairTest, CaseTwoAllIncomparableIsZero) {
  const std::vector<double> et_min = {0.3, 0.3};
  const std::vector<double> ep_min = {0.2, 0.2};
  const std::vector<double> ep_max = {0.4, 0.4};
  EXPECT_DOUBLE_EQ(
      LbcPair(et_min.data(), ep_min.data(), ep_max.data(), 2, CostFn2()),
      0.0);
}

TEST(LbcPairTest, CaseThreeAllDisadvantaged) {
  const std::vector<double> et_min = {0.8, 0.8};
  const std::vector<double> ep_min = {0.2, 0.2};
  const std::vector<double> ep_max = {0.4, 0.4};
  const double expected = CostFn2().Cost(ep_max) - CostFn2().Cost(et_min);
  EXPECT_NEAR(
      LbcPair(et_min.data(), ep_min.data(), ep_max.data(), 2, CostFn2()),
      expected, 1e-12);
  EXPECT_GT(expected, 0.0);
}

TEST(LbcPairTest, CaseFourMixed) {
  // Dim 0 disadvantaged, dim 1 incomparable: t_v = (ep_max.x, et_min.y).
  const std::vector<double> et_min = {0.8, 0.3};
  const std::vector<double> ep_min = {0.2, 0.2};
  const std::vector<double> ep_max = {0.4, 0.4};
  const std::vector<double> tv = {0.4, 0.3};
  const double expected = CostFn2().Cost(tv) - CostFn2().Cost(et_min);
  EXPECT_NEAR(
      LbcPair(et_min.data(), ep_min.data(), ep_max.data(), 2, CostFn2()),
      expected, 1e-12);
}

TEST(LbcPairTest, PointEntryDegenerateBox) {
  // A point competitor (min == max) strictly better on all dims.
  const std::vector<double> et_min = {0.8, 0.8};
  const std::vector<double> q = {0.4, 0.4};
  const double lbc =
      LbcPair(et_min.data(), q.data(), q.data(), 2, CostFn2());
  EXPECT_NEAR(lbc, CostFn2().Cost(q) - CostFn2().Cost(et_min), 1e-12);
}

TEST(LbcJoinListTest, EmptyListIsZeroForAllKinds) {
  const std::vector<double> et_min = {0.5, 0.5};
  for (auto kind : {LowerBoundKind::kNaive, LowerBoundKind::kConservative,
                    LowerBoundKind::kAggressive}) {
    EXPECT_DOUBLE_EQ(LbcJoinList(et_min.data(), {}, 2, CostFn2(), kind), 0.0);
  }
}

struct JlFixture {
  std::vector<std::vector<double>> mins;
  std::vector<std::vector<double>> maxs;

  std::vector<EntryBounds> Bounds() const {
    std::vector<EntryBounds> out;
    for (size_t i = 0; i < mins.size(); ++i) {
      out.push_back({mins[i].data(), maxs[i].data()});
    }
    return out;
  }
};

TEST(LbcJoinListTest, NaiveTakesMinIncludingZeros) {
  // One zero-LBC entry (advantaged dim) and one positive entry.
  const std::vector<double> et_min = {0.5, 0.5};
  JlFixture jl;
  jl.mins = {{0.7, 0.1}, {0.1, 0.1}};
  jl.maxs = {{0.9, 0.3}, {0.3, 0.3}};
  const double nlb = LbcJoinList(et_min.data(), jl.Bounds(), 2, CostFn2(),
                                 LowerBoundKind::kNaive);
  const double clb = LbcJoinList(et_min.data(), jl.Bounds(), 2, CostFn2(),
                                 LowerBoundKind::kConservative);
  EXPECT_DOUBLE_EQ(nlb, 0.0);
  EXPECT_GT(clb, 0.0);  // CLB ignores the zero entry -> tighter
  const double pair1 = LbcPair(et_min.data(), jl.mins[1].data(),
                               jl.maxs[1].data(), 2, CostFn2());
  EXPECT_DOUBLE_EQ(clb, pair1);
}

TEST(LbcJoinListTest, ConservativeFallsBackToZeroWhenAllZero) {
  const std::vector<double> et_min = {0.1, 0.9};
  JlFixture jl;
  jl.mins = {{0.2, 0.2}};
  jl.maxs = {{0.4, 0.4}};
  EXPECT_DOUBLE_EQ(LbcJoinList(et_min.data(), jl.Bounds(), 2, CostFn2(),
                               LowerBoundKind::kConservative),
                   0.0);
}

TEST(LbcJoinListTest, AggressiveTakesMaxWithinSignatureGroup) {
  // Two entries both fully disadvantaging e_T (same signature): ALB must
  // charge the more expensive one, CLB only the cheaper.
  const std::vector<double> et_min = {0.9, 0.9};
  JlFixture jl;
  jl.mins = {{0.5, 0.5}, {0.1, 0.1}};
  jl.maxs = {{0.6, 0.6}, {0.2, 0.2}};
  const double lbc0 = LbcPair(et_min.data(), jl.mins[0].data(),
                              jl.maxs[0].data(), 2, CostFn2());
  const double lbc1 = LbcPair(et_min.data(), jl.mins[1].data(),
                              jl.maxs[1].data(), 2, CostFn2());
  ASSERT_GT(lbc1, lbc0);  // tighter box is deeper -> more expensive

  const double clb = LbcJoinList(et_min.data(), jl.Bounds(), 2, CostFn2(),
                                 LowerBoundKind::kConservative);
  const double alb = LbcJoinList(et_min.data(), jl.Bounds(), 2, CostFn2(),
                                 LowerBoundKind::kAggressive);
  EXPECT_DOUBLE_EQ(clb, lbc0);
  EXPECT_DOUBLE_EQ(alb, lbc1);
}

TEST(LbcJoinListTest, AggressiveTakesMinAcrossGroups) {
  // Different signatures: dim-0-disadvantaged vs dim-1-disadvantaged.
  const std::vector<double> et_min = {0.5, 0.5};
  JlFixture jl;
  jl.mins = {{0.1, 0.6}, {0.6, 0.1}};
  jl.maxs = {{0.2, 0.8}, {0.8, 0.3}};
  const double lbc0 = LbcPair(et_min.data(), jl.mins[0].data(),
                              jl.maxs[0].data(), 2, CostFn2());
  const double lbc1 = LbcPair(et_min.data(), jl.mins[1].data(),
                              jl.maxs[1].data(), 2, CostFn2());
  const double alb = LbcJoinList(et_min.data(), jl.Bounds(), 2, CostFn2(),
                                 LowerBoundKind::kAggressive);
  EXPECT_DOUBLE_EQ(alb, std::min(lbc0, lbc1));
}

TEST(LbcJoinListTest, BoundOrderingHolds) {
  // NLB <= CLB always; both <= ALB on common signatures.
  Rng rng(31);
  const size_t dims = 3;
  const ProductCostFunction f = ProductCostFunction::ReciprocalSum(dims, 1e-3);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> et_min(dims);
    for (auto& v : et_min) v = rng.NextDouble(0.4, 1.6);
    JlFixture jl;
    const size_t entries = 1 + rng.NextUint64(6);
    for (size_t e = 0; e < entries; ++e) {
      std::vector<double> lo(dims), hi(dims);
      for (size_t i = 0; i < dims; ++i) {
        const double a = rng.NextDouble();
        const double b = rng.NextDouble();
        lo[i] = std::min(a, b);
        hi[i] = std::max(a, b);
      }
      jl.mins.push_back(lo);
      jl.maxs.push_back(hi);
    }
    const double nlb = LbcJoinList(et_min.data(), jl.Bounds(), dims, f,
                                   LowerBoundKind::kNaive);
    const double clb = LbcJoinList(et_min.data(), jl.Bounds(), dims, f,
                                   LowerBoundKind::kConservative);
    const double alb = LbcJoinList(et_min.data(), jl.Bounds(), dims, f,
                                   LowerBoundKind::kAggressive);
    EXPECT_LE(nlb, clb + 1e-12);
    EXPECT_LE(clb, alb + 1e-12);
    EXPECT_GE(nlb, 0.0);
  }
}

// The defining property of the *sound* mode: every LBC variant must
// lower-bound the true upgrading cost of every point inside e_T against
// the points inside the (tight) join-list boxes.
TEST(LbcPropertyTest, SoundBoundsNeverExceedTrueUpgradeCost) {
  Rng rng(67);
  for (size_t dims = 2; dims <= 4; ++dims) {
    const ProductCostFunction f =
        ProductCostFunction::ReciprocalSum(dims, 1e-3);
    for (int trial = 0; trial < 150; ++trial) {
      // Random competitor points, grouped into boxes; each box is the
      // *tight* MBR of its group (the R-tree invariant the sound bound
      // relies on).
      Dataset competitors(dims);
      std::vector<std::vector<double>> mins, maxs;
      const size_t groups = 1 + rng.NextUint64(3);
      for (size_t g = 0; g < groups; ++g) {
        std::vector<double> lo(dims,
                               std::numeric_limits<double>::infinity());
        std::vector<double> hi(dims,
                               -std::numeric_limits<double>::infinity());
        const size_t npts = 1 + rng.NextUint64(5);
        for (size_t n = 0; n < npts; ++n) {
          std::vector<double> q(dims);
          for (size_t i = 0; i < dims; ++i) {
            q[i] = rng.NextDouble();
            lo[i] = std::min(lo[i], q[i]);
            hi[i] = std::max(hi[i], q[i]);
          }
          competitors.Add(q);
        }
        mins.push_back(lo);
        maxs.push_back(hi);
      }
      std::vector<EntryBounds> bounds;
      for (size_t g = 0; g < groups; ++g) {
        bounds.push_back({mins[g].data(), maxs[g].data()});
      }

      // t is the corner of its own (conceptual) e_T box: et_min == t is
      // the tightest legal choice, making the test strictest.
      std::vector<double> t(dims);
      for (size_t i = 0; i < dims; ++i) t[i] = rng.NextDouble(0.3, 1.3);

      std::vector<const double*> dominators;
      for (size_t i = 0; i < competitors.size(); ++i) {
        const double* q = competitors.data(static_cast<PointId>(i));
        if (Dominates(q, t.data(), dims)) dominators.push_back(q);
      }
      SkylineOfPointers(&dominators, dims);
      const UpgradeOutcome truth =
          UpgradeProduct(dominators, t.data(), dims, f, 1e-6);

      for (auto kind : {LowerBoundKind::kNaive,
                        LowerBoundKind::kConservative,
                        LowerBoundKind::kAggressive}) {
        const double bound = LbcJoinList(t.data(), bounds, dims, f, kind,
                                         BoundMode::kSound);
        ASSERT_LE(bound, truth.cost + 1e-9)
            << LowerBoundKindName(kind) << " overestimated at trial "
            << trial << " (d=" << dims << ")";
      }
    }
  }
}

// Documents the paper formula's caveat: for a point entry, cases 3/4 charge
// matching e_P.max on *all* disadvantaged dimensions, but the cheapest real
// upgrade (Algorithm 1) escapes on one dimension — so the paper value can
// exceed the true cost, while the sound mode never does.
TEST(LbcPropertyTest, PaperBoundOverestimatesOnPointEntries) {
  const size_t dims = 2;
  const ProductCostFunction f = ProductCostFunction::ReciprocalSum(dims, 1e-3);
  const std::vector<double> q = {0.4, 0.4};  // single dominator (leaf entry)
  const std::vector<double> t = {0.8, 0.8};

  const UpgradeOutcome truth = UpgradeProduct({q.data()}, t.data(), dims, f,
                                              1e-6);
  const double paper =
      LbcPair(t.data(), q.data(), q.data(), dims, f, BoundMode::kPaper);
  const double sound =
      LbcPair(t.data(), q.data(), q.data(), dims, f, BoundMode::kSound);

  EXPECT_GT(paper, truth.cost);        // the paper's "bound" overshoots
  EXPECT_LE(sound, truth.cost + 1e-9);  // the correction does not
  EXPECT_GT(sound, 0.0);
}

TEST(LbcPairTest, SoundModeZeroWithTwoIncomparableDims) {
  // Both dims incomparable and a third disadvantaged: contents may contain
  // no dominator at all, so the sound bound must be 0.
  const std::vector<double> et_min = {0.5, 0.5, 0.9};
  const std::vector<double> ep_min = {0.3, 0.3, 0.1};
  const std::vector<double> ep_max = {0.7, 0.7, 0.2};
  EXPECT_DOUBLE_EQ(LbcPair(et_min.data(), ep_min.data(), ep_max.data(), 3,
                           CostFn2x3(), BoundMode::kSound),
                   0.0);
  EXPECT_GT(LbcPair(et_min.data(), ep_min.data(), ep_max.data(), 3,
                    CostFn2x3(), BoundMode::kPaper),
            0.0);
}

TEST(LbcPairTest, SoundCaseThreeUsesTwoCheapestEscapesOrMinFace) {
  // All-disadvantaged box: the bound is min( min-face single escape,
  // sum of the two cheapest max-corner escapes ).
  const std::vector<double> et_min = {0.9, 0.9};
  const std::vector<double> ep_min = {0.2, 0.3};
  const std::vector<double> ep_max = {0.4, 0.5};
  const auto& f = CostFn2();
  const double m0 = f.AttributeCost(0, 0.2) - f.AttributeCost(0, 0.9);
  const double m1 = f.AttributeCost(1, 0.3) - f.AttributeCost(1, 0.9);
  const double c0 = f.AttributeCost(0, 0.4) - f.AttributeCost(0, 0.9);
  const double c1 = f.AttributeCost(1, 0.5) - f.AttributeCost(1, 0.9);
  const double expected = std::min(std::min(m0, m1), c0 + c1);
  EXPECT_NEAR(LbcPair(et_min.data(), ep_min.data(), ep_max.data(), 2, f,
                      BoundMode::kSound),
              expected, 1e-12);
  EXPECT_GT(expected, 0.0);
}

TEST(LbcPairTest, SoundCaseThreePointEntryIsSingleDimEscape) {
  // Degenerate box (a dominator point): min face == max corner, so the
  // bound collapses to the cheapest single-dimension escape.
  const std::vector<double> q = {0.3, 0.6};
  const std::vector<double> t = {0.8, 0.9};
  const auto& f = CostFn2();
  const double e0 = f.AttributeCost(0, 0.3) - f.AttributeCost(0, 0.8);
  const double e1 = f.AttributeCost(1, 0.6) - f.AttributeCost(1, 0.9);
  EXPECT_NEAR(
      LbcPair(t.data(), q.data(), q.data(), 2, f, BoundMode::kSound),
      std::min(e0, e1), 1e-12);
}

TEST(LbcPairTest, SoundSingleDimension) {
  // d=1: escaping the box requires dipping below its min face.
  const ProductCostFunction f1 = ProductCostFunction::ReciprocalSum(1, 1e-3);
  const std::vector<double> et_min = {0.9};
  const std::vector<double> ep_min = {0.2};
  const std::vector<double> ep_max = {0.4};
  const double expected =
      f1.AttributeCost(0, 0.2) - f1.AttributeCost(0, 0.9);
  EXPECT_NEAR(LbcPair(et_min.data(), ep_min.data(), ep_max.data(), 1, f1,
                      BoundMode::kSound),
              expected, 1e-12);
}

TEST(LbcPairTest, SoundNeverExceedsPaper) {
  // The paper formula charges every disadvantaged dimension; the sound one
  // at most two. With >= 2 disadvantaged dims, sound <= paper.
  Rng rng(91);
  const ProductCostFunction f3 = ProductCostFunction::ReciprocalSum(3, 1e-3);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> et_min(3), lo(3), hi(3);
    for (size_t i = 0; i < 3; ++i) {
      et_min[i] = rng.NextDouble(0.5, 1.5);
      const double a = rng.NextDouble(0.0, 0.5);
      const double b = rng.NextDouble(0.0, 0.5);
      lo[i] = std::min(a, b);
      hi[i] = std::max(a, b);
    }
    const double paper = LbcPair(et_min.data(), lo.data(), hi.data(), 3, f3,
                                 BoundMode::kPaper);
    const double sound = LbcPair(et_min.data(), lo.data(), hi.data(), 3, f3,
                                 BoundMode::kSound);
    EXPECT_LE(sound, paper + 1e-12);
    EXPECT_GE(sound, 0.0);
  }
}

TEST(LbcPairTest, SoundModePositiveWithOneIncomparableDim) {
  // One incomparable dim: a guaranteed dominator exists on its min face.
  const std::vector<double> et_min = {0.5, 0.9};
  const std::vector<double> ep_min = {0.2, 0.1};
  const std::vector<double> ep_max = {0.7, 0.2};
  const double sound = LbcPair(et_min.data(), ep_min.data(), ep_max.data(),
                               2, CostFn2(), BoundMode::kSound);
  // min( escape via incomparable dim 0 at ep_min, escape via dim 1 at
  // ep_max ).
  const double via0 =
      CostFn2().AttributeCost(0, 0.2) - CostFn2().AttributeCost(0, 0.5);
  const double via1 =
      CostFn2().AttributeCost(1, 0.2) - CostFn2().AttributeCost(1, 0.9);
  EXPECT_NEAR(sound, std::min(via0, via1), 1e-12);
  EXPECT_GT(sound, 0.0);
}

TEST(LowerBoundKindTest, Names) {
  EXPECT_STREQ(LowerBoundKindName(LowerBoundKind::kNaive), "NLB");
  EXPECT_STREQ(LowerBoundKindName(LowerBoundKind::kConservative), "CLB");
  EXPECT_STREQ(LowerBoundKindName(LowerBoundKind::kAggressive), "ALB");
}

TEST(LbcJoinListTest, DetailsExposePairwiseValues) {
  const std::vector<double> et_min = {0.9, 0.9};
  JlFixture jl;
  jl.mins = {{0.5, 0.5}, {0.1, 0.95}};
  jl.maxs = {{0.6, 0.6}, {0.2, 1.0}};
  std::vector<double> pair_lbcs;
  LbcJoinListWithDetails(et_min.data(), jl.Bounds(), 2, CostFn2(),
                         LowerBoundKind::kConservative, BoundMode::kPaper,
                         &pair_lbcs);
  ASSERT_EQ(pair_lbcs.size(), 2u);
  EXPECT_DOUBLE_EQ(pair_lbcs[0], LbcPair(et_min.data(), jl.mins[0].data(),
                                         jl.maxs[0].data(), 2, CostFn2()));
  EXPECT_DOUBLE_EQ(pair_lbcs[1], LbcPair(et_min.data(), jl.mins[1].data(),
                                         jl.maxs[1].data(), 2, CostFn2()));
}

}  // namespace
}  // namespace skyup
