// Tests for the flat arena R-tree snapshot (rtree/flat_rtree.h) and the
// batched traversals built on it: structural invariants via Validate(),
// and bit-identical equivalence with the pointer-tree scalar paths —
// dominating-skyline probes, BBS, and full improved-probing top-k at every
// thread count — across dims 2..6, distributions, tie-heavy catalogs, and
// exact-duplicate catalogs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/dominance.h"
#include "core/parallel_probing.h"
#include "core/planner.h"
#include "core/probing.h"
#include "data/generator.h"
#include "flat_rtree_test_peer.h"
#include "rtree/flat_rtree.h"
#include "rtree/rtree.h"
#include "skyline/dominating_skyline.h"
#include "skyline/skyline.h"

namespace skyup {
namespace {

Dataset MakeData(size_t n, size_t dims, Distribution distribution,
                 uint64_t seed) {
  Result<Dataset> data = GenerateCompetitors(n, dims, distribution, seed);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

// Every point duplicated `copies` times: ties on all dimensions at once,
// the adversarial case for ordering and tie-break drift.
Dataset Duplicated(const Dataset& base, size_t copies) {
  Dataset out(base.dims());
  for (size_t c = 0; c < copies; ++c) {
    for (size_t i = 0; i < base.size(); ++i) {
      out.Add(base.data(static_cast<PointId>(i)));
    }
  }
  return out;
}

// Coordinates snapped to a coarse grid: many partial ties without full
// duplication.
Dataset TieHeavy(const Dataset& base) {
  Dataset out(base.dims());
  std::vector<double> p(base.dims());
  for (size_t i = 0; i < base.size(); ++i) {
    const double* row = base.data(static_cast<PointId>(i));
    for (size_t d = 0; d < base.dims(); ++d) {
      p[d] = 0.125 * static_cast<int>(row[d] * 8.0);
    }
    out.Add(p.data());
  }
  return out;
}

void ExpectSameIds(const std::vector<PointId>& flat,
                   const std::vector<PointId>& pointer,
                   const std::string& label) {
  ASSERT_EQ(flat.size(), pointer.size()) << label;
  for (size_t i = 0; i < flat.size(); ++i) {
    ASSERT_EQ(flat[i], pointer[i]) << label << " position " << i;
  }
}

void ExpectBitIdentical(const std::vector<UpgradeResult>& a,
                        const std::vector<UpgradeResult>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].product_id, b[i].product_id) << label << " rank " << i;
    // Bit-level, not approximate: the flat path must run the exact same
    // arithmetic as the pointer path.
    ASSERT_EQ(a[i].cost, b[i].cost) << label << " rank " << i;
    ASSERT_EQ(a[i].upgraded, b[i].upgraded) << label << " rank " << i;
    ASSERT_EQ(a[i].already_competitive, b[i].already_competitive)
        << label << " rank " << i;
  }
}

TEST(FlatRTreeTest, ValidatesAcrossShapes) {
  for (size_t dims = 2; dims <= 6; ++dims) {
    for (size_t n : {1u, 2u, 5u, 64u, 65u, 500u}) {
      for (size_t fanout : {4u, 16u, 64u}) {
        const Dataset data =
            MakeData(n, dims, Distribution::kAntiCorrelated, 11 * dims + n);
        RTreeOptions options;
        options.max_entries = fanout;
        Result<FlatRTree> flat = FlatRTree::BulkLoad(data, options);
        ASSERT_TRUE(flat.ok());
        const Status st = flat.value().Validate();
        EXPECT_TRUE(st.ok()) << "dims=" << dims << " n=" << n
                             << " fanout=" << fanout << ": " << st.message();
        EXPECT_EQ(flat.value().size(), n);
        EXPECT_EQ(flat.value().dims(), dims);
      }
    }
  }
}

// Validate() must not just fail on a corrupted arena — its message must
// name the first violated invariant, so a paranoid-level abort points
// straight at the broken structure. One fresh snapshot per corruption.
TEST(FlatRTreeTest, ValidateNamesTheViolatedInvariant) {
  const Dataset data = MakeData(200, 3, Distribution::kIndependent, 7);
  RTreeOptions options;
  options.max_entries = 8;  // several levels, so internal nodes exist
  const auto build = [&]() {
    Result<FlatRTree> flat = FlatRTree::BulkLoad(data, options);
    EXPECT_TRUE(flat.ok());
    return std::move(flat).value();
  };
  const auto message = [](const FlatRTree& t) {
    const Status st = t.Validate();
    EXPECT_FALSE(st.ok());
    return std::string(st.message());
  };

  {
    FlatRTree t = build();
    FlatRTreeTestPeer::hi_aos(&t)[1] += 0.25;  // AoS only: mirrors disagree
    EXPECT_NE(message(t).find("SoA/AoS corner mismatch at node 0"),
              std::string::npos)
        << message(t);
  }
  {
    FlatRTree t = build();
    FlatRTreeTestPeer::key(&t)[0] += 1.0;
    EXPECT_NE(message(t).find("stale best-first key at node 0"),
              std::string::npos)
        << message(t);
  }
  {
    FlatRTree t = build();
    // Swapping two slot ids desynchronizes the cached coordinates from the
    // dataset rows they claim to mirror.
    auto& ids = FlatRTreeTestPeer::point_ids(&t);
    ASSERT_GE(ids.size(), 2u);
    std::swap(ids.front(), ids.back());
    EXPECT_NE(message(t).find("stale leaf coordinates at slot"),
              std::string::npos)
        << message(t);
  }
  {
    FlatRTree t = build();
    ASSERT_FALSE(t.is_leaf(FlatRTree::kRoot));
    FlatRTreeTestPeer::end(&t)[0] = 0;  // root's child run becomes empty
    EXPECT_NE(message(t).find("child range malformed at node 0"),
              std::string::npos)
        << message(t);
  }
  {
    FlatRTree t = build();
    // Demoting the last node's level breaks the parent's level-1 contract.
    FlatRTreeTestPeer::level(&t).back() -= 1;
    EXPECT_NE(message(t).find("child level skew at node"), std::string::npos)
        << message(t);
  }
  {
    FlatRTree t = build();
    // Growing a child's box past its parent breaks containment; patch all
    // three mirrors (SoA, AoS, key) so containment is the *first* failure.
    const uint32_t child = t.child_begin(FlatRTree::kRoot);
    const size_t n = t.node_count();
    FlatRTreeTestPeer::lo_aos(&t)[child * 3] -= 1.0;
    FlatRTreeTestPeer::lo_soa(&t)[child] -= 1.0;  // d=0 lane
    FlatRTreeTestPeer::key(&t)[child] -= 1.0;
    ASSERT_EQ(FlatRTreeTestPeer::lo_soa(&t).size(), 3 * n);
    EXPECT_NE(message(t).find("child MBR escapes parent at node"),
              std::string::npos)
        << message(t);
  }
}

// Rows as a sorted coordinate value set. Erase-path comparisons against the
// pointer tree must be value-based: RTree::Delete condenses underflowing
// nodes and reinserts survivors, so tie-broken representatives and traversal
// stats may legitimately differ even though the answer set cannot.
std::vector<std::vector<double>> ValueSet(const Dataset& data,
                                          const std::vector<PointId>& rows) {
  std::vector<std::vector<double>> out;
  out.reserve(rows.size());
  for (PointId id : rows) {
    const double* p = data.data(id);
    out.emplace_back(p, p + data.dims());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Brute-force oracle: skyline of the live strict dominators of `q`.
std::vector<std::vector<double>> BruteDominatorValueSet(
    const Dataset& data, const std::vector<uint8_t>& alive, const double* q) {
  std::vector<const double*> doms;
  for (size_t i = 0; i < data.size(); ++i) {
    const double* row = data.data(static_cast<PointId>(i));
    if (alive[i] && Dominates(row, q, data.dims())) {
      doms.push_back(row);
    }
  }
  SkylineOfPointers(&doms, data.dims());
  std::vector<std::vector<double>> out;
  out.reserve(doms.size());
  for (const double* p : doms) {
    out.emplace_back(p, p + data.dims());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// The tentpole contract: after any erase sequence, probing the tombstoned
// flat snapshot answers exactly like a pointer tree that physically deleted
// the rows, and like brute force over the surviving rows. Validate() and the
// live/tombstone tallies must hold after every single erase.
TEST(FlatTombstoneTest, EraseThenQueryMatchesPointerDeleteAndBruteForce) {
  for (size_t dims : {2u, 3u}) {
    const size_t n = 220;
    const Dataset data =
        MakeData(n, dims, Distribution::kAntiCorrelated, 29 + dims);
    const Dataset queries =
        MakeData(24, dims, Distribution::kIndependent, 91 + dims);
    RTreeOptions options;
    options.max_entries = 8;
    Result<RTree> tree = RTree::BulkLoad(data, options);
    ASSERT_TRUE(tree.ok());
    FlatRTree flat = FlatRTree::FromTree(tree.value());
    std::vector<uint8_t> alive(n, 1);
    size_t live = n;
    for (size_t r = 0; r < 140; ++r) {
      const PointId row = static_cast<PointId>((r * 37 + 11) % n);
      if (!alive[static_cast<size_t>(row)]) {
        EXPECT_FALSE(flat.Erase(row)) << "double erase must be rejected";
        continue;
      }
      ASSERT_TRUE(flat.Erase(row));
      ASSERT_TRUE(tree.value().Delete(row));
      alive[static_cast<size_t>(row)] = 0;
      --live;
      const Status st = flat.Validate();
      ASSERT_TRUE(st.ok()) << "dims=" << dims << " round=" << r << ": "
                           << st.message();
      ASSERT_EQ(flat.live_size(), live);
      ASSERT_EQ(flat.tombstones(), n - live);
      if (r % 10 != 9) continue;  // probe every tenth erase
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        const double* q = queries.data(static_cast<PointId>(qi));
        const auto flat_set = ValueSet(data, DominatingSkyline(flat, q));
        const auto tree_set = ValueSet(data, DominatingSkyline(tree.value(), q));
        const auto brute_set = BruteDominatorValueSet(data, alive, q);
        ASSERT_EQ(flat_set, brute_set)
            << "flat vs brute, dims=" << dims << " round=" << r
            << " query=" << qi;
        ASSERT_EQ(tree_set, brute_set)
            << "pointer vs brute, dims=" << dims << " round=" << r
            << " query=" << qi;
      }
    }
  }
}

// Killing every slot of one leaf must zero that node's live count and keep
// queries exact (the dead subtree is skipped, not visited); killing every
// row must leave an empty-but-valid index with an empty root MBR.
TEST(FlatTombstoneTest, EraseWholeLeafThenEverything) {
  const size_t n = 96;
  const Dataset data = MakeData(n, 3, Distribution::kIndependent, 53);
  const Dataset queries = MakeData(12, 3, Distribution::kIndependent, 54);
  RTreeOptions options;
  options.max_entries = 8;
  Result<FlatRTree> built = FlatRTree::BulkLoad(data, options);
  ASSERT_TRUE(built.ok());
  FlatRTree flat = std::move(built).value();
  std::vector<uint8_t> alive(n, 1);

  uint32_t leaf = 0;
  while (!flat.is_leaf(leaf)) ++leaf;
  for (uint32_t j = flat.point_begin(leaf); j < flat.point_end(leaf); ++j) {
    const PointId row = flat.point_ids()[j];
    ASSERT_TRUE(flat.Erase(row));
    alive[static_cast<size_t>(row)] = 0;
  }
  EXPECT_EQ(flat.node_live_count(leaf), 0u);
  {
    const Status st = flat.Validate();
    ASSERT_TRUE(st.ok()) << st.message();
  }
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const double* q = queries.data(static_cast<PointId>(qi));
    ASSERT_EQ(ValueSet(data, DominatingSkyline(flat, q)),
              BruteDominatorValueSet(data, alive, q))
        << "query " << qi << " after emptying leaf " << leaf;
  }

  for (size_t i = 0; i < n; ++i) {
    const PointId row = static_cast<PointId>(i);
    EXPECT_EQ(flat.Erase(row), alive[i] != 0);
  }
  EXPECT_EQ(flat.live_size(), 0u);
  EXPECT_EQ(flat.tombstones(), n);
  EXPECT_TRUE(flat.root_mbr().IsEmpty());
  {
    const Status st = flat.Validate();
    ASSERT_TRUE(st.ok()) << st.message();
  }
  const double q[3] = {0.99, 0.99, 0.99};
  EXPECT_TRUE(DominatingSkyline(flat, q).empty());
  EXPECT_TRUE(SkylineBbs(flat).empty());
}

// Erase() edge cases, the insert-erase-reinsert cycle (reinsertion is a
// fresh row + re-flatten: tombstones never resurrect in place), and Clone()
// independence.
TEST(FlatTombstoneTest, EraseEdgeCasesReinsertAndClone) {
  Dataset data = MakeData(40, 3, Distribution::kIndependent, 13);
  data.Reserve(data.size() + 1);  // keep row storage stable across Add below
  RTreeOptions options;
  options.max_entries = 8;
  RTree tree(&data, options);
  for (size_t i = 0; i < 40; ++i) {
    tree.Insert(static_cast<PointId>(i));
  }
  FlatRTree flat = FlatRTree::FromTree(tree);

  EXPECT_FALSE(flat.Erase(static_cast<PointId>(-1)));
  EXPECT_FALSE(flat.Erase(static_cast<PointId>(data.size())));
  EXPECT_TRUE(flat.row_alive(0));
  EXPECT_TRUE(flat.Erase(0));
  EXPECT_FALSE(flat.Erase(0));
  EXPECT_FALSE(flat.row_alive(0));
  EXPECT_EQ(flat.live_size(), 39u);
  EXPECT_EQ(flat.tombstones(), 1u);
  ASSERT_TRUE(tree.Delete(0));
  {
    const Status st = flat.Validate();
    ASSERT_TRUE(st.ok()) << st.message();
  }

  // Reinsert the erased coordinates as a fresh row: the old snapshot does
  // not know it, a re-flatten indexes it with a clean slate.
  const std::vector<double> coords(data.data(0), data.data(0) + 3);
  const PointId reborn = data.Add(coords.data());
  EXPECT_FALSE(flat.Erase(reborn)) << "rows appended after the snapshot are "
                                      "unindexed";
  EXPECT_FALSE(flat.row_alive(reborn));
  tree.Insert(reborn);
  FlatRTree refreshed = FlatRTree::FromTree(tree);
  EXPECT_EQ(refreshed.live_size(), 40u);
  EXPECT_EQ(refreshed.tombstones(), 0u);
  EXPECT_TRUE(refreshed.row_alive(reborn));
  EXPECT_FALSE(refreshed.row_alive(0));  // deleted from the pointer tree
  {
    const Status st = refreshed.Validate();
    ASSERT_TRUE(st.ok()) << st.message();
  }

  // Clone() deep-copies the arena: erasing in the clone must not leak into
  // the source (the serve patch-publish path depends on this).
  const Dataset copy = data;
  FlatRTree clone = refreshed.Clone(&copy);
  EXPECT_TRUE(clone.Erase(5));
  EXPECT_FALSE(clone.row_alive(5));
  EXPECT_TRUE(refreshed.row_alive(5));
  EXPECT_EQ(clone.live_size(), 39u);
  EXPECT_EQ(refreshed.live_size(), 40u);
  {
    const Status st = clone.Validate();
    ASSERT_TRUE(st.ok()) << st.message();
    const Status src = refreshed.Validate();
    ASSERT_TRUE(src.ok()) << src.message();
  }
}

// Validate() must name the tombstone-layer invariants too: every arena of
// the delete machinery gets one precise corruption.
TEST(FlatRTreeTest, ValidateNamesTombstoneInvariants) {
  const Dataset data = MakeData(200, 3, Distribution::kIndependent, 7);
  RTreeOptions options;
  options.max_entries = 8;
  const auto build = [&]() {
    Result<FlatRTree> flat = FlatRTree::BulkLoad(data, options);
    EXPECT_TRUE(flat.ok());
    return std::move(flat).value();
  };
  const auto message = [](const FlatRTree& t) {
    const Status st = t.Validate();
    EXPECT_FALSE(st.ok());
    return std::string(st.message());
  };

  {
    FlatRTree t = build();
    // A dead slot the tally never heard about.
    FlatRTreeTestPeer::slot_live(&t)[0] = 0;
    EXPECT_NE(message(t).find("tombstone tally out of sync"),
              std::string::npos)
        << message(t);
  }
  {
    FlatRTree t = build();
    // Tally patched up too: now the stale per-node live counts are the
    // first lie left standing.
    FlatRTreeTestPeer::slot_live(&t)[0] = 0;
    FlatRTreeTestPeer::tombstones(&t) = 1;
    EXPECT_NE(message(t).find("leaf live count out of sync at node "),
              std::string::npos)
        << message(t);
  }
  {
    FlatRTree t = build();
    FlatRTreeTestPeer::live_count(&t)[FlatRTree::kRoot] += 1;
    EXPECT_NE(message(t).find("internal live count out of sync at node 0"),
              std::string::npos)
        << message(t);
  }
  {
    FlatRTree t = build();
    const uint32_t child = t.child_begin(FlatRTree::kRoot);
    FlatRTreeTestPeer::parent(&t)[child] = child;
    EXPECT_NE(message(t).find("parent link wrong at node "),
              std::string::npos)
        << message(t);
  }
  {
    FlatRTree t = build();
    // After a real erase, growing the root box (all mirrors, key is a
    // min-corner sum so the max-side inflation leaves it alone) breaks the
    // exact-union-over-live-content contract the serve prune leans on.
    ASSERT_TRUE(t.Erase(t.point_ids()[0]));
    ASSERT_TRUE(t.Validate().ok());
    const size_t n = t.node_count();
    FlatRTreeTestPeer::hi_aos(&t)[0 * 3 + 0] += 0.5;
    FlatRTreeTestPeer::hi_soa(&t)[0 * n + 0] += 0.5;
    EXPECT_NE(message(t).find("MBR not tight over live points at node 0"),
              std::string::npos)
        << message(t);
  }
  {
    FlatRTree t = build();
    FlatRTreeTestPeer::leaf_of_slot(&t)[0] = FlatRTree::kRoot;  // not a leaf
    EXPECT_NE(message(t).find("leaf-of-slot map wrong at slot 0"),
              std::string::npos)
        << message(t);
  }
  {
    FlatRTree t = build();
    const size_t row = static_cast<size_t>(t.point_ids()[0]);
    FlatRTreeTestPeer::slot_of_row(&t)[row] = FlatRTree::kNoSlot;
    EXPECT_NE(message(t).find("slot-of-row map wrong at slot 0"),
              std::string::npos)
        << message(t);
  }
}

TEST(FlatRTreeTest, SnapshotsDynamicallyGrownTree) {
  // FromTree must flatten any pointer tree, not just STR-shaped ones.
  Dataset data = MakeData(300, 3, Distribution::kIndependent, 99);
  data.Reserve(data.size() + 1);  // keep row pointers stable across the Add
  RTree tree(&data);
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(static_cast<PointId>(i));
  }
  const FlatRTree flat = FlatRTree::FromTree(tree);
  const Status st = flat.Validate();
  EXPECT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(flat.size(), data.size());

  // The snapshot is a point-in-time copy: it does not see later inserts —
  // rebuild to refresh (the documented immutability contract).
  const std::vector<double> extra(3, 0.5);
  tree.Insert(data.Add(extra));
  EXPECT_EQ(flat.size(), data.size() - 1);
  const FlatRTree refreshed = FlatRTree::FromTree(tree);
  EXPECT_EQ(refreshed.size(), data.size());
  EXPECT_TRUE(refreshed.Validate().ok());
}

TEST(FlatRTreeTest, RootMbrMatchesPointerRoot) {
  const Dataset data = MakeData(200, 4, Distribution::kCorrelated, 5);
  Result<RTree> tree = RTree::BulkLoad(data);
  ASSERT_TRUE(tree.ok());
  const FlatRTree flat = FlatRTree::FromTree(tree.value());
  const Mbr root = flat.root_mbr();
  ASSERT_FALSE(root.IsEmpty());
  for (size_t d = 0; d < 4; ++d) {
    EXPECT_EQ(root.min_data()[d], tree.value().root()->mbr.min_data()[d]);
    EXPECT_EQ(root.max_data()[d], tree.value().root()->mbr.max_data()[d]);
  }
}

TEST(FlatProbeTest, DominatingSkylineMatchesPointerTreeBitForBit) {
  for (size_t dims = 2; dims <= 6; ++dims) {
    for (Distribution distribution :
         {Distribution::kIndependent, Distribution::kAntiCorrelated}) {
      const Dataset base = MakeData(400, dims, distribution, 31 * dims);
      for (int variant = 0; variant < 3; ++variant) {
        const Dataset data = variant == 0   ? MakeData(400, dims, distribution,
                                                       31 * dims)
                             : variant == 1 ? TieHeavy(base)
                                            : Duplicated(base, 3);
        Result<RTree> tree = RTree::BulkLoad(data);
        ASSERT_TRUE(tree.ok());
        const FlatRTree flat = FlatRTree::FromTree(tree.value());
        const Dataset queries =
            MakeData(40, dims, Distribution::kIndependent, 7 * dims + variant);
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          const double* t = queries.data(static_cast<PointId>(qi));
          ProbeStats pointer_stats, flat_stats;
          const std::vector<PointId> expect =
              DominatingSkyline(tree.value(), t, &pointer_stats);
          const std::vector<PointId> got =
              DominatingSkyline(flat, t, &flat_stats);
          ExpectSameIds(got, expect,
                        "dims=" + std::to_string(dims) + " variant=" +
                            std::to_string(variant) + " q=" +
                            std::to_string(qi));
          // Same traversal shape: both paths pop/visit/scan identically.
          EXPECT_EQ(flat_stats.heap_pops, pointer_stats.heap_pops);
          EXPECT_EQ(flat_stats.nodes_visited, pointer_stats.nodes_visited);
          EXPECT_EQ(flat_stats.points_scanned, pointer_stats.points_scanned);
          // The pointer probe is the scalar baseline; only the flat probe
          // exercises the batch kernels.
          EXPECT_EQ(pointer_stats.block_kernel_calls, 0u);
          if (flat_stats.nodes_visited > 0) {
            EXPECT_GT(flat_stats.block_kernel_calls, 0u);
          }
        }
      }
    }
  }
}

TEST(FlatProbeTest, BbsMatchesPointerTreeBitForBit) {
  for (size_t dims = 2; dims <= 6; ++dims) {
    const Dataset base = MakeData(500, dims, Distribution::kAntiCorrelated,
                                  17 * dims);
    for (int variant = 0; variant < 3; ++variant) {
      const Dataset data = variant == 0   ? MakeData(500, dims,
                                                     Distribution::kIndependent,
                                                     17 * dims)
                           : variant == 1 ? TieHeavy(base)
                                          : Duplicated(base, 2);
      Result<RTree> tree = RTree::BulkLoad(data);
      ASSERT_TRUE(tree.ok());
      const FlatRTree flat = FlatRTree::FromTree(tree.value());
      ExpectSameIds(SkylineBbs(flat), SkylineBbs(tree.value()),
                    "bbs dims=" + std::to_string(dims) + " variant=" +
                        std::to_string(variant));
    }
  }
}

TEST(FlatTopKTest, ImprovedProbingBitIdenticalAtEveryThreadCount) {
  for (size_t dims : {2u, 3u, 5u}) {
    const Dataset base = MakeData(300, dims, Distribution::kAntiCorrelated,
                                  41 * dims);
    for (int variant = 0; variant < 2; ++variant) {
      const Dataset competitors = variant == 0 ? TieHeavy(base)
                                               : Duplicated(base, 2);
      const Dataset products =
          MakeData(60, dims, Distribution::kIndependent, 43 * dims + variant);
      const ProductCostFunction cost_fn =
          ProductCostFunction::ReciprocalSum(dims, 1e-3);
      Result<RTree> tree = RTree::BulkLoad(competitors);
      ASSERT_TRUE(tree.ok());
      const FlatRTree flat = FlatRTree::FromTree(tree.value());
      const size_t k = 10;

      Result<std::vector<UpgradeResult>> expect =
          TopKImprovedProbing(tree.value(), products, cost_fn, k);
      ASSERT_TRUE(expect.ok());

      ExecStats seq_stats;
      Result<std::vector<UpgradeResult>> flat_seq =
          TopKImprovedProbing(flat, products, cost_fn, k, 1e-6, &seq_stats);
      ASSERT_TRUE(flat_seq.ok());
      ExpectBitIdentical(flat_seq.value(), expect.value(),
                         "flat-seq dims=" + std::to_string(dims) +
                             " variant=" + std::to_string(variant));
      EXPECT_GT(seq_stats.block_kernel_calls, 0u);

      for (size_t threads : {1u, 2u, 7u, 0u}) {
        ExecStats par_stats;
        Result<std::vector<UpgradeResult>> flat_par =
            TopKImprovedProbingParallel(flat, products, cost_fn, k, 1e-6,
                                        threads, &par_stats);
        ASSERT_TRUE(flat_par.ok());
        ExpectBitIdentical(flat_par.value(), expect.value(),
                           "flat-par dims=" + std::to_string(dims) +
                               " variant=" + std::to_string(variant) +
                               " threads=" + std::to_string(threads));
        EXPECT_EQ(par_stats.upgrade_calls + par_stats.candidates_pruned,
                  par_stats.products_processed);
      }
    }
  }
}

TEST(FlatIndexTest, BulkLoadSnapshotEmptyDataset) {
  // The serving rebuild path must survive an empty competitor table — no
  // node arena, but dims and dataset binding intact.
  Dataset empty(3);
  Result<FlatRTree> tree = FlatRTree::BulkLoadSnapshot(empty);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  const double probe[] = {0.5, 0.5, 0.5};
  std::vector<PointId> sky = DominatingSkyline(*tree, probe, nullptr);
  EXPECT_TRUE(sky.empty());
}

TEST(FlatIndexTest, BulkLoadSnapshotNonEmptyMatchesBulkLoad) {
  const Dataset competitors =
      MakeData(150, 3, Distribution::kIndependent, 77);
  Result<FlatRTree> a = FlatRTree::BulkLoadSnapshot(competitors);
  Result<FlatRTree> b = FlatRTree::BulkLoad(competitors);
  ASSERT_TRUE(a.ok() && b.ok());
  const double probe[] = {0.9, 0.9, 0.9};
  ExpectSameIds(DominatingSkyline(*a, probe, nullptr),
                DominatingSkyline(*b, probe, nullptr), "snapshot-vs-bulk");
}

TEST(FlatTopKTest, ProductAppendAfterBulkLoadKeepsQueriesValid) {
  // Regression: the flat index pins the *competitor* dataset, but T is
  // free to grow between queries. Appending products — including
  // self-appends, which used to hit the Dataset::Add aliasing bug — must
  // leave the index probes and a re-run query fully valid.
  const Dataset competitors =
      MakeData(300, 3, Distribution::kAntiCorrelated, 11);
  Dataset products = MakeData(40, 3, Distribution::kIndependent, 12);
  const ProductCostFunction cost_fn =
      ProductCostFunction::ReciprocalSum(3, 1e-3);
  Result<FlatRTree> flat = FlatRTree::BulkLoad(competitors);
  ASSERT_TRUE(flat.ok());

  Result<std::vector<UpgradeResult>> before = TopKImprovedProbingParallel(
      *flat, products, cost_fn, 5, 1e-6, 2, nullptr);
  ASSERT_TRUE(before.ok());

  // Grow T after the index was built: fresh rows and a self-append that
  // forces reallocation of the products storage.
  for (int i = 0; i < 100; ++i) {
    products.Add(products.data(static_cast<PointId>(i % products.size())));
  }
  Result<std::vector<UpgradeResult>> after = TopKImprovedProbingParallel(
      *flat, products, cost_fn, 5, 1e-6, 2, nullptr);
  ASSERT_TRUE(after.ok());

  // The appended rows are duplicates of existing products, so the top-5
  // costs cannot change (ids may differ across tied duplicates only if
  // ranks tie — costs are the invariant here).
  ASSERT_EQ(after->size(), before->size());
  for (size_t i = 0; i < before->size(); ++i) {
    EXPECT_EQ((*after)[i].cost, (*before)[i].cost) << "rank " << i;
  }
}

TEST(FlatTopKTest, PlannerFlatToggleChangesPathNotResults) {
  const Dataset competitors =
      MakeData(400, 3, Distribution::kAntiCorrelated, 3);
  const Dataset products = MakeData(50, 3, Distribution::kIndependent, 4);
  const ProductCostFunction cost_fn =
      ProductCostFunction::ReciprocalSum(3, 1e-3);

  PlannerOptions flat_options;
  ASSERT_TRUE(flat_options.use_flat_index);  // documented default
  PlannerOptions pointer_options;
  pointer_options.use_flat_index = false;

  Result<UpgradePlanner> flat_planner =
      UpgradePlanner::Create(competitors, products, cost_fn, flat_options);
  Result<UpgradePlanner> pointer_planner =
      UpgradePlanner::Create(competitors, products, cost_fn, pointer_options);
  ASSERT_TRUE(flat_planner.ok() && pointer_planner.ok());
  EXPECT_NE(flat_planner.value().competitors_flat(), nullptr);
  EXPECT_EQ(pointer_planner.value().competitors_flat(), nullptr);

  ExecStats flat_stats, pointer_stats;
  Result<std::vector<UpgradeResult>> a = flat_planner.value().TopK(
      8, Algorithm::kImprovedProbing, &flat_stats);
  Result<std::vector<UpgradeResult>> b = pointer_planner.value().TopK(
      8, Algorithm::kImprovedProbing, &pointer_stats);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectBitIdentical(a.value(), b.value(), "planner toggle");
  EXPECT_GT(flat_stats.block_kernel_calls, 0u);
  EXPECT_EQ(pointer_stats.block_kernel_calls, 0u);
}

}  // namespace
}  // namespace skyup
