#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace skyup {
namespace {

TEST(CsvTest, ParsesSimpleNumericTable) {
  Result<CsvTable> r = ParseCsv("1,2,3\n4,5,6\n", /*has_header=*/false);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0], (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(r->rows[1], (std::vector<double>{4, 5, 6}));
  EXPECT_TRUE(r->header.empty());
}

TEST(CsvTest, ParsesHeader) {
  Result<CsvTable> r = ParseCsv("a,b\n1.5,-2e3\n", /*has_header=*/true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r->rows[0][0], 1.5);
  EXPECT_DOUBLE_EQ(r->rows[0][1], -2000.0);
}

TEST(CsvTest, SkipsBlankLines) {
  Result<CsvTable> r = ParseCsv("1,2\n\n3,4\n\n", false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST(CsvTest, HandlesCarriageReturns) {
  Result<CsvTable> r = ParseCsv("1,2\r\n3,4\r\n", false);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_DOUBLE_EQ(r->rows[1][1], 4.0);
}

TEST(CsvTest, RejectsNonNumericField) {
  Result<CsvTable> r = ParseCsv("1,banana\n", false);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("banana"), std::string::npos);
}

TEST(CsvTest, RejectsTrailingJunk) {
  Result<CsvTable> r = ParseCsv("1,2x\n", false);
  EXPECT_FALSE(r.ok());
}

TEST(CsvTest, AcceptsTrailingWhitespaceInFields) {
  Result<CsvTable> r = ParseCsv("1 ,2\t\n", false);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->rows[0][0], 1.0);
}

TEST(CsvTest, RejectsInconsistentArity) {
  Result<CsvTable> r = ParseCsv("1,2\n3\n", false);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("expected 2 fields"),
            std::string::npos);
}

TEST(CsvTest, EmptyInputYieldsEmptyTable) {
  Result<CsvTable> r = ParseCsv("", false);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST(CsvTest, RoundTripThroughToCsv) {
  CsvTable table;
  table.header = {"x", "y"};
  table.rows = {{1.25, 2.5}, {-3, 4}};
  Result<CsvTable> back = ParseCsv(ToCsv(table), /*has_header=*/true);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->header, table.header);
  EXPECT_EQ(back->rows, table.rows);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/skyup_csv_test.csv";
  CsvTable table;
  table.rows = {{1, 2}, {3, 4}};
  ASSERT_TRUE(WriteCsvFile(path, table).ok());
  Result<CsvTable> back = ReadCsvFile(path, /*has_header=*/false);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rows, table.rows);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIOError) {
  Result<CsvTable> r = ReadCsvFile("/nonexistent/skyup.csv", false);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace skyup
