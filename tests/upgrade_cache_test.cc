// Tests for the versioned upgrade-result cache (serve/upgrade_cache.h):
// the store/lookup contract (version gating, epsilon match, the admit-hint
// payload elision), the dominance-based invalidation rules for competitor
// inserts and erases, product-op handling, and an end-to-end differential
// under live-table churn — every query answered partly from cache must
// equal the same query recomputed with the cache detached.

#include "serve/upgrade_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "serve/live_table.h"
#include "serve/query.h"
#include "serve/rebuilder.h"
#include "util/random.h"

namespace skyup {
namespace {

DeltaOp CompetitorInsert(uint64_t id, std::vector<double> coords) {
  return DeltaOp{DeltaTarget::kCompetitor, DeltaKind::kInsert, id,
                 std::move(coords)};
}

DeltaOp CompetitorErase(uint64_t id) {
  return DeltaOp{DeltaTarget::kCompetitor, DeltaKind::kErase, id, {}};
}

// Stores an entry for `product_id` with the given cost and skyline values.
void StoreEntry(UpgradeCache* cache, uint64_t product_id,
                const std::vector<double>& coords, double cost,
                const std::vector<std::vector<double>>& skyline,
                double epsilon = 1e-6) {
  UpgradeOutcome outcome;
  outcome.cost = cost;
  outcome.upgraded = coords;  // payload content is irrelevant here
  outcome.already_competitive = skyline.empty();
  std::vector<const double*> members;
  members.reserve(skyline.size());
  for (const auto& m : skyline) members.push_back(m.data());
  cache->Store(product_id, coords.data(), cache->version(), epsilon,
               outcome, members);
}

bool Hits(const UpgradeCache& cache, uint64_t product_id,
          double epsilon = 1e-6) {
  UpgradeCache::Hit hit;
  return cache.Lookup(product_id, cache.version(), epsilon,
                      /*admit_hint=*/1e300, &hit);
}

TEST(UpgradeCacheTest, StoreLookupRoundTripAndGates) {
  UpgradeCache cache(2);
  const std::vector<double> t = {5.0, 5.0};
  StoreEntry(&cache, 7, t, 1.25, {{2.0, 2.0}});
  ASSERT_EQ(cache.size(), 1u);

  UpgradeCache::Hit hit;
  ASSERT_TRUE(cache.Lookup(7, cache.version(), 1e-6, 10.0, &hit));
  EXPECT_EQ(hit.cost, 1.25);
  EXPECT_FALSE(hit.already_competitive);
  EXPECT_TRUE(hit.payload_copied);
  EXPECT_EQ(hit.upgraded, t);

  // A losing candidate still hits, but skips the payload copy.
  ASSERT_TRUE(cache.Lookup(7, cache.version(), 1e-6, 1.0, &hit));
  EXPECT_EQ(hit.cost, 1.25);
  EXPECT_FALSE(hit.payload_copied);

  // Different epsilon is a different query: miss.
  EXPECT_FALSE(cache.Lookup(7, cache.version(), 1e-3, 10.0, &hit));
  // Unknown product: miss.
  EXPECT_FALSE(cache.Lookup(8, cache.version(), 1e-6, 10.0, &hit));
}

TEST(UpgradeCacheTest, EntriesFromTheFutureAreInvisibleToStaleViews) {
  UpgradeCache cache(2);
  const uint64_t stale_version = cache.version();
  cache.OnDeltaOp(CompetitorInsert(1, {9.0, 9.0}));
  StoreEntry(&cache, 7, {5.0, 5.0}, 1.0, {});
  // The entry was computed after the stale view's ops: it must not serve
  // that view, but does serve the current one.
  UpgradeCache::Hit hit;
  EXPECT_FALSE(cache.Lookup(7, stale_version, 1e-6, 10.0, &hit));
  EXPECT_TRUE(cache.Lookup(7, cache.version(), 1e-6, 10.0, &hit));
}

TEST(UpgradeCacheTest, StoreFromAnOutdatedViewIsDropped) {
  UpgradeCache cache(2);
  const uint64_t old_version = cache.version();
  cache.OnDeltaOp(CompetitorInsert(1, {1.0, 1.0}));
  UpgradeOutcome outcome;
  outcome.cost = 1.0;
  const std::vector<double> t = {5.0, 5.0};
  cache.Store(7, t.data(), old_version, 1e-6, outcome, {});
  EXPECT_EQ(cache.size(), 0u);
}

TEST(UpgradeCacheTest, InsertInvalidatesOnlyUncoveredDominators) {
  UpgradeCache cache(2);
  StoreEntry(&cache, 7, {5.0, 5.0}, 2.0, {{2.0, 2.0}});

  // Dominates the product but is covered by the stored member (2,2):
  // the skyline value set cannot change, the entry survives.
  cache.OnDeltaOp(CompetitorInsert(1, {3.0, 3.0}));
  EXPECT_TRUE(Hits(cache, 7));

  // Does not dominate the product at all (worse in dim 0): survives.
  cache.OnDeltaOp(CompetitorInsert(2, {6.0, 1.0}));
  EXPECT_TRUE(Hits(cache, 7));

  // Dominates the product and escapes the member ((2,2) is worse in
  // dim 0): it enters the skyline, so the entry must go.
  cache.OnDeltaOp(CompetitorInsert(3, {1.0, 3.0}));
  EXPECT_FALSE(Hits(cache, 7));
}

TEST(UpgradeCacheTest, EraseInvalidatesUnlessStrictlyShadowed) {
  UpgradeCache cache(2);
  cache.OnDeltaOp(CompetitorInsert(1, {1.0, 1.0}));
  cache.OnDeltaOp(CompetitorInsert(2, {2.0, 2.0}));
  cache.OnDeltaOp(CompetitorInsert(3, {1.0, 1.0}));
  StoreEntry(&cache, 7, {5.0, 5.0}, 2.0, {{1.0, 1.0}});

  // (2,2) was shadowed by the member (1,1) strictly: its erase cannot
  // surface anything new, the entry survives.
  cache.OnDeltaOp(CompetitorErase(2));
  EXPECT_TRUE(Hits(cache, 7));

  // (1,1) ties the member's value: only DominatesOrEqual holds, so the
  // conservative rule invalidates (a duplicate of a member could BE the
  // stored skyline value).
  cache.OnDeltaOp(CompetitorErase(3));
  EXPECT_FALSE(Hits(cache, 7));
}

TEST(UpgradeCacheTest, ProductOpsDropOnlyTheirOwnEntry) {
  UpgradeCache cache(2);
  StoreEntry(&cache, 7, {5.0, 5.0}, 1.0, {});
  StoreEntry(&cache, 8, {6.0, 6.0}, 2.0, {});
  cache.OnDeltaOp(DeltaOp{DeltaTarget::kProduct, DeltaKind::kErase, 7, {}});
  EXPECT_FALSE(Hits(cache, 7));
  EXPECT_TRUE(Hits(cache, 8));
  cache.OnDeltaOp(
      DeltaOp{DeltaTarget::kProduct, DeltaKind::kInsert, 9, {4.0, 4.0}});
  EXPECT_TRUE(Hits(cache, 8));
  EXPECT_FALSE(Hits(cache, 9));
}

// End-to-end: random churn through a live table, querying after every few
// ops. Each query runs twice over the same view — once with the table's
// cache, once with the cache detached — and the answers must be
// identical. By the end the cached run must actually have hit.
TEST(UpgradeCacheTest, CachedQueriesMatchUncachedUnderChurn) {
  const size_t dims = 3;
  LiveTableOptions options;
  options.dims = dims;
  options.rtree_fanout = 4;
  Result<std::unique_ptr<LiveTable>> table = LiveTable::Create(options);
  ASSERT_TRUE(table.ok());
  LiveTable& t = **table;
  const ProductCostFunction cost_fn =
      ProductCostFunction::ReciprocalSum(dims, 1e-3);
  RebuildPolicy policy;
  policy.threshold_ops = 6;

  Rng rng(2024);
  std::vector<uint64_t> competitors;
  std::vector<uint64_t> products;
  uint64_t hits = 0;
  for (int step = 0; step < 240; ++step) {
    const uint64_t roll = rng.NextUint64(100);
    std::vector<double> coords(dims);
    for (double& c : coords) c = rng.NextDouble(0.0, 4.0);
    if (roll < 35 || competitors.empty()) {
      Result<uint64_t> id = t.InsertCompetitor(coords);
      ASSERT_TRUE(id.ok());
      competitors.push_back(*id);
    } else if (roll < 55 || products.empty()) {
      Result<uint64_t> id = t.InsertProduct(coords);
      ASSERT_TRUE(id.ok());
      products.push_back(*id);
    } else if (roll < 70) {
      const size_t pick = rng.NextUint64(competitors.size());
      ASSERT_TRUE(t.EraseCompetitor(competitors[pick]).ok());
      competitors.erase(competitors.begin() + static_cast<long>(pick));
    } else if (roll < 80) {
      const size_t pick = rng.NextUint64(products.size());
      ASSERT_TRUE(t.EraseProduct(products[pick]).ok());
      products.erase(products.begin() + static_cast<long>(pick));
    } else {
      const size_t k = 1 + rng.NextUint64(5);
      ReadView cached_view = t.AcquireView();
      ReadView plain_view = cached_view;
      plain_view.cache.reset();
      ServeStats stats;
      Result<std::vector<UpgradeResult>> with_cache = TopKOverlay(
          cached_view, cost_fn, k, 1e-6, /*control=*/nullptr, &stats);
      Result<std::vector<UpgradeResult>> without_cache =
          TopKOverlay(plain_view, cost_fn, k, 1e-6);
      ASSERT_TRUE(with_cache.ok());
      ASSERT_TRUE(without_cache.ok());
      hits += stats.cache_hits;
      ASSERT_EQ(with_cache->size(), without_cache->size()) << "step " << step;
      for (size_t i = 0; i < with_cache->size(); ++i) {
        EXPECT_EQ((*with_cache)[i].product_id,
                  (*without_cache)[i].product_id)
            << "step " << step << " rank " << i;
        // lint: float-eq-ok (cache reuse must be bit-exact, not close)
        EXPECT_EQ((*with_cache)[i].cost, (*without_cache)[i].cost)
            << "step " << step << " rank " << i;
        EXPECT_EQ((*with_cache)[i].upgraded, (*without_cache)[i].upgraded)
            << "step " << step << " rank " << i;
      }
    }
    ASSERT_TRUE(MaybeRebuildInline(&t, policy).ok());
  }
  EXPECT_GT(hits, 0u);
}

}  // namespace
}  // namespace skyup
