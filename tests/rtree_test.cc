#include "rtree/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "rtree/bulk_load.h"
#include "util/random.h"

namespace skyup {
namespace {

Dataset RandomDataset(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  Dataset ds(dims);
  ds.Reserve(n);
  std::vector<double> row(dims);
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : row) v = rng.NextDouble();
    ds.Add(row);
  }
  return ds;
}

std::vector<PointId> BruteForceRange(const Dataset& ds, const Mbr& box) {
  std::vector<PointId> out;
  for (size_t i = 0; i < ds.size(); ++i) {
    if (box.Contains(ds.data(static_cast<PointId>(i)))) {
      out.push_back(static_cast<PointId>(i));
    }
  }
  return out;
}

TEST(RTreeTest, EmptyTree) {
  Dataset ds(2);
  RTree tree(&ds);
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.Validate().ok());
  std::vector<PointId> out;
  const std::vector<double> lo = {0, 0}, hi = {1, 1};
  tree.RangeQuery(Mbr::FromCorners(lo.data(), hi.data(), 2), &out);
  EXPECT_TRUE(out.empty());
}

TEST(RTreeTest, InsertSinglePoint) {
  Dataset ds(2);
  ds.Add({0.5, 0.5});
  RTree tree(&ds);
  tree.Insert(0);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
}

TEST(RTreeTest, InsertManyValidates) {
  Dataset ds = RandomDataset(2000, 3, 42);
  RTree::Options options;
  options.max_entries = 8;
  RTree tree(&ds, options);
  for (size_t i = 0; i < ds.size(); ++i) {
    tree.Insert(static_cast<PointId>(i));
  }
  EXPECT_EQ(tree.size(), 2000u);
  Status s = tree.Validate();
  EXPECT_TRUE(s.ok()) << s.ToString();
  RTreeStats stats = tree.Stats();
  EXPECT_GT(stats.height, 2u);
  EXPECT_EQ(stats.point_count, 2000u);
}

TEST(RTreeTest, BulkLoadValidates) {
  Dataset ds = RandomDataset(5000, 2, 7);
  Result<RTree> tree = RTree::BulkLoad(ds);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 5000u);
  Status s = tree->Validate();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(RTreeTest, BulkLoadRejectsEmptyDataset) {
  Dataset ds(2);
  EXPECT_FALSE(RTree::BulkLoad(ds).ok());
}

TEST(RTreeTest, BulkLoadRejectsTinyFanout) {
  Dataset ds = RandomDataset(10, 2, 1);
  RTree::Options options;
  options.max_entries = 1;
  EXPECT_FALSE(RTree::BulkLoad(ds, options).ok());
}

TEST(RTreeTest, BulkLoadSmallDatasetSingleLeafRoot) {
  Dataset ds = RandomDataset(10, 2, 3);
  Result<RTree> tree = RTree::BulkLoad(ds);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->root()->is_leaf());
  EXPECT_EQ(tree->Stats().height, 1u);
}

TEST(RTreeTest, BulkLoadIsPacked) {
  // STR should produce close to n / fanout leaves.
  Dataset ds = RandomDataset(6400, 2, 9);
  RTree::Options options;
  options.max_entries = 64;
  Result<RTree> tree = RTree::BulkLoad(ds, options);
  ASSERT_TRUE(tree.ok());
  const RTreeStats stats = tree->Stats();
  EXPECT_LE(stats.leaf_count, 140u);  // perfect packing would give 100
  EXPECT_GE(stats.leaf_count, 100u);
}

class RangeQueryTest : public ::testing::TestWithParam<
                           std::tuple<size_t, size_t, bool>> {};

TEST_P(RangeQueryTest, MatchesBruteForce) {
  const size_t n = std::get<0>(GetParam());
  const size_t dims = std::get<1>(GetParam());
  const bool bulk = std::get<2>(GetParam());

  Dataset ds = RandomDataset(n, dims, 1000 + n + dims);
  RTree::Options options;
  options.max_entries = 16;
  RTree tree(&ds, options);
  if (bulk) {
    Result<RTree> loaded = RTree::BulkLoad(ds, options);
    ASSERT_TRUE(loaded.ok());
    tree = std::move(loaded).value();
  } else {
    for (size_t i = 0; i < ds.size(); ++i) {
      tree.Insert(static_cast<PointId>(i));
    }
  }
  ASSERT_TRUE(tree.Validate().ok());

  Rng rng(55);
  for (int q = 0; q < 25; ++q) {
    std::vector<double> lo(dims), hi(dims);
    for (size_t i = 0; i < dims; ++i) {
      const double a = rng.NextDouble();
      const double b = rng.NextDouble();
      lo[i] = std::min(a, b);
      hi[i] = std::max(a, b);
    }
    const Mbr box = Mbr::FromCorners(lo.data(), hi.data(), dims);
    std::vector<PointId> got;
    tree.RangeQuery(box, &got);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteForceRange(ds, box));
    EXPECT_EQ(tree.CountRange(box), got.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RangeQueryTest,
    ::testing::Combine(::testing::Values<size_t>(64, 500, 3000),
                       ::testing::Values<size_t>(2, 4),
                       ::testing::Bool()),
    [](const auto& param_info) {
      // Built by append: gcc 12's -Wrestrict false-fires on chained
      // `const char* + std::string` concatenation (PR105329).
      std::string name = "n";
      name += std::to_string(std::get<0>(param_info.param));
      name += "_d";
      name += std::to_string(std::get<1>(param_info.param));
      name += std::get<2>(param_info.param) ? "_bulk" : "_insert";
      return name;
    });

TEST(RTreeTest, RangeQueryWholeSpaceReturnsEverything) {
  Dataset ds = RandomDataset(300, 3, 77);
  Result<RTree> tree = RTree::BulkLoad(ds);
  ASSERT_TRUE(tree.ok());
  const std::vector<double> lo = {-1, -1, -1}, hi = {2, 2, 2};
  std::vector<PointId> out;
  tree->RangeQuery(Mbr::FromCorners(lo.data(), hi.data(), 3), &out);
  EXPECT_EQ(out.size(), 300u);
}

TEST(RTreeTest, DuplicatePointsAreAllIndexed) {
  Dataset ds(2);
  for (int i = 0; i < 100; ++i) ds.Add({0.5, 0.5});
  RTree::Options options;
  options.max_entries = 8;
  Result<RTree> tree = RTree::BulkLoad(ds, options);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->Validate().ok());
  const std::vector<double> lo = {0.5, 0.5};
  std::vector<PointId> out;
  tree->RangeQuery(Mbr::FromCorners(lo.data(), lo.data(), 2), &out);
  EXPECT_EQ(out.size(), 100u);
}

TEST(RTreeTest, MixedBulkThenInsert) {
  Dataset ds = RandomDataset(500, 2, 21);
  Result<RTree> tree = RTree::BulkLoad(ds);
  ASSERT_TRUE(tree.ok());
  // Appending to the dataset then inserting keeps the tree valid.
  Dataset* mutable_ds = const_cast<Dataset*>(&tree->dataset());
  Rng rng(22);
  for (int i = 0; i < 200; ++i) {
    const PointId id = mutable_ds->Add({rng.NextDouble(), rng.NextDouble()});
    tree->Insert(id);
  }
  EXPECT_EQ(tree->size(), 700u);
  EXPECT_TRUE(tree->Validate().ok()) << tree->Validate().ToString();
}

TEST(RStarSplitTest, InsertManyValidates) {
  Dataset ds = RandomDataset(3000, 3, 61);
  RTree::Options options;
  options.max_entries = 10;
  options.split = SplitStrategy::kRStar;
  RTree tree(&ds, options);
  for (size_t i = 0; i < ds.size(); ++i) {
    tree.Insert(static_cast<PointId>(i));
  }
  EXPECT_EQ(tree.size(), 3000u);
  Status s = tree.Validate();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(RStarSplitTest, QueriesAgreeWithQuadratic) {
  Dataset ds = RandomDataset(1200, 2, 62);
  RTree::Options quad_options;
  quad_options.max_entries = 8;
  quad_options.split = SplitStrategy::kQuadratic;
  RTree::Options rstar_options = quad_options;
  rstar_options.split = SplitStrategy::kRStar;

  RTree quad(&ds, quad_options);
  RTree rstar(&ds, rstar_options);
  for (size_t i = 0; i < ds.size(); ++i) {
    quad.Insert(static_cast<PointId>(i));
    rstar.Insert(static_cast<PointId>(i));
  }
  ASSERT_TRUE(quad.Validate().ok());
  ASSERT_TRUE(rstar.Validate().ok());

  Rng rng(63);
  for (int q = 0; q < 30; ++q) {
    std::vector<double> lo(2), hi(2);
    for (size_t i = 0; i < 2; ++i) {
      const double a = rng.NextDouble();
      const double b = rng.NextDouble();
      lo[i] = std::min(a, b);
      hi[i] = std::max(a, b);
    }
    const Mbr box = Mbr::FromCorners(lo.data(), hi.data(), 2);
    std::vector<PointId> via_quad, via_rstar;
    quad.RangeQuery(box, &via_quad);
    rstar.RangeQuery(box, &via_rstar);
    std::sort(via_quad.begin(), via_quad.end());
    std::sort(via_rstar.begin(), via_rstar.end());
    EXPECT_EQ(via_quad, via_rstar);
  }
}

TEST(RStarSplitTest, ReducesSiblingOverlap) {
  // On clustered data R* splits should produce less total sibling overlap
  // at the leaf level than quadratic splits.
  Rng rng(64);
  Dataset ds(2);
  for (int cluster = 0; cluster < 20; ++cluster) {
    const double cx = rng.NextDouble();
    const double cy = rng.NextDouble();
    for (int i = 0; i < 100; ++i) {
      ds.Add({cx + 0.02 * rng.NextGaussian(), cy + 0.02 * rng.NextGaussian()});
    }
  }

  auto leaf_overlap = [&](SplitStrategy strategy) {
    RTree::Options options;
    options.max_entries = 8;
    options.split = strategy;
    RTree tree(&ds, options);
    for (size_t i = 0; i < ds.size(); ++i) {
      tree.Insert(static_cast<PointId>(i));
    }
    EXPECT_TRUE(tree.Validate().ok());
    std::vector<const RTreeNode*> leaves;
    std::vector<const RTreeNode*> stack = {tree.root()};
    while (!stack.empty()) {
      const RTreeNode* node = stack.back();
      stack.pop_back();
      if (node->is_leaf()) {
        leaves.push_back(node);
      } else {
        for (const auto& child : node->children) stack.push_back(child.get());
      }
    }
    double overlap = 0.0;
    for (size_t i = 0; i < leaves.size(); ++i) {
      for (size_t j = i + 1; j < leaves.size(); ++j) {
        overlap += leaves[i]->mbr.OverlapArea(leaves[j]->mbr);
      }
    }
    return overlap;
  };

  const double quad = leaf_overlap(SplitStrategy::kQuadratic);
  const double rstar = leaf_overlap(SplitStrategy::kRStar);
  EXPECT_LT(rstar, quad);
}

TEST(RTreeDeleteTest, DeleteSinglePoint) {
  Dataset ds(2);
  ds.Add({0.5, 0.5});
  RTree tree(&ds);
  tree.Insert(0);
  EXPECT_TRUE(tree.Delete(0));
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Validate().ok());
  EXPECT_FALSE(tree.Delete(0));  // already gone
}

TEST(RTreeDeleteTest, DeleteMissingIdReturnsFalse) {
  Dataset ds(2);
  ds.Add({0.1, 0.1});
  ds.Add({0.9, 0.9});
  RTree tree(&ds);
  tree.Insert(0);
  EXPECT_FALSE(tree.Delete(1));   // valid row, never inserted
  EXPECT_FALSE(tree.Delete(99));  // invalid row
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RTreeDeleteTest, DeleteHalfThenQueriesStayExact) {
  Dataset ds = RandomDataset(1500, 2, 71);
  RTree::Options options;
  options.max_entries = 8;
  RTree tree(&ds, options);
  for (size_t i = 0; i < ds.size(); ++i) {
    tree.Insert(static_cast<PointId>(i));
  }

  // Delete every odd id; MBRs must re-tighten and fills stay legal.
  for (size_t i = 1; i < ds.size(); i += 2) {
    ASSERT_TRUE(tree.Delete(static_cast<PointId>(i))) << i;
  }
  EXPECT_EQ(tree.size(), 750u);
  Status s = tree.Validate();
  ASSERT_TRUE(s.ok()) << s.ToString();

  Rng rng(72);
  for (int q = 0; q < 20; ++q) {
    std::vector<double> lo(2), hi(2);
    for (size_t i = 0; i < 2; ++i) {
      const double a = rng.NextDouble();
      const double b = rng.NextDouble();
      lo[i] = std::min(a, b);
      hi[i] = std::max(a, b);
    }
    const Mbr box = Mbr::FromCorners(lo.data(), hi.data(), 2);
    std::vector<PointId> got;
    tree.RangeQuery(box, &got);
    std::sort(got.begin(), got.end());
    std::vector<PointId> expected;
    for (PointId id : BruteForceRange(ds, box)) {
      if (id % 2 == 0) expected.push_back(id);
    }
    ASSERT_EQ(got, expected);
  }
}

TEST(RTreeDeleteTest, DeleteEverythingShrinksToEmptyRoot) {
  Dataset ds = RandomDataset(300, 3, 73);
  RTree::Options options;
  options.max_entries = 6;
  RTree tree(&ds, options);
  for (size_t i = 0; i < ds.size(); ++i) {
    tree.Insert(static_cast<PointId>(i));
  }
  for (size_t i = 0; i < ds.size(); ++i) {
    ASSERT_TRUE(tree.Delete(static_cast<PointId>(i))) << i;
    ASSERT_TRUE(tree.Validate().ok()) << "after deleting " << i;
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Stats().height, 1u);
}

TEST(RTreeDeleteTest, InterleavedInsertDelete) {
  Dataset ds = RandomDataset(2000, 2, 74);
  RTree::Options options;
  options.max_entries = 10;
  RTree tree(&ds, options);
  Rng rng(75);
  std::vector<bool> present(ds.size(), false);
  size_t live = 0;
  for (int step = 0; step < 6000; ++step) {
    const PointId id = static_cast<PointId>(rng.NextUint64(ds.size()));
    if (present[static_cast<size_t>(id)]) {
      ASSERT_TRUE(tree.Delete(id));
      present[static_cast<size_t>(id)] = false;
      --live;
    } else {
      tree.Insert(id);
      present[static_cast<size_t>(id)] = true;
      ++live;
    }
  }
  EXPECT_EQ(tree.size(), live);
  Status s = tree.Validate();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(RTreeDeleteTest, DeleteFromBulkLoadedTree) {
  Dataset ds = RandomDataset(800, 3, 76);
  Result<RTree> tree = RTree::BulkLoad(ds);
  ASSERT_TRUE(tree.ok());
  for (PointId id : {0, 100, 200, 300, 400}) {
    ASSERT_TRUE(tree->Delete(id));
  }
  EXPECT_EQ(tree->size(), 795u);
  EXPECT_TRUE(tree->Validate().ok()) << tree->Validate().ToString();
}

TEST(StrSlabCountTest, FormulaCases) {
  // 1000 points, capacity 10 -> 100 pages; 2 dims left -> ceil(sqrt(100)).
  EXPECT_EQ(StrSlabCount(1000, 10, 2), 10u);
  EXPECT_EQ(StrSlabCount(1000, 10, 1), 100u);
  // Exact cube root should not round up from floating noise.
  EXPECT_EQ(StrSlabCount(640, 10, 3), 4u);
  EXPECT_EQ(StrSlabCount(5, 10, 2), 1u);
}

}  // namespace
}  // namespace skyup
