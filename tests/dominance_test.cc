#include "core/dominance.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"

namespace skyup {
namespace {

TEST(DominanceTest, StrictDominanceAllDims) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {2, 3, 4};
  EXPECT_TRUE(Dominates(a, b));
  EXPECT_FALSE(Dominates(b, a));
}

TEST(DominanceTest, DominanceWithOneStrictDim) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {1, 2, 4};
  EXPECT_TRUE(Dominates(a, b));
  EXPECT_FALSE(Dominates(b, a));
}

TEST(DominanceTest, EqualPointsDoNotDominate) {
  std::vector<double> a = {1, 2, 3};
  EXPECT_FALSE(Dominates(a, a));
  EXPECT_TRUE(DominatesOrEqual(a, a));
}

TEST(DominanceTest, IncomparablePoints) {
  std::vector<double> a = {1, 5};
  std::vector<double> b = {2, 3};
  EXPECT_FALSE(Dominates(a, b));
  EXPECT_FALSE(Dominates(b, a));
  EXPECT_EQ(Compare(a.data(), b.data(), 2), DomRelation::kIncomparable);
}

TEST(DominanceTest, CompareClassifiesAllCases) {
  std::vector<double> base = {2, 2};
  EXPECT_EQ(Compare(std::vector<double>{1, 1}.data(), base.data(), 2),
            DomRelation::kDominates);
  EXPECT_EQ(Compare(std::vector<double>{3, 3}.data(), base.data(), 2),
            DomRelation::kDominatedBy);
  EXPECT_EQ(Compare(std::vector<double>{2, 2}.data(), base.data(), 2),
            DomRelation::kEqual);
  EXPECT_EQ(Compare(std::vector<double>{1, 3}.data(), base.data(), 2),
            DomRelation::kIncomparable);
}

TEST(DominanceTest, SingleDimension) {
  double a = 1.0, b = 2.0;
  EXPECT_TRUE(Dominates(&a, &b, 1));
  EXPECT_FALSE(Dominates(&b, &a, 1));
  EXPECT_FALSE(Dominates(&a, &a, 1));
}

TEST(DominanceTest, MismatchedVectorSizesNeverDominate) {
  std::vector<double> a = {1, 2};
  std::vector<double> b = {1, 2, 3};
  EXPECT_FALSE(Dominates(a, b));
  EXPECT_FALSE(DominatesOrEqual(a, b));
}

TEST(DominanceTest, PaperTableOneExamples) {
  // Cell phones of Table I with maximize dims negated (standby, pixels):
  // weight, -standby, -pixels.
  const std::vector<std::vector<double>> phones = {
      {140, -200, -2.0},  // phone 1
      {180, -150, -3.0},  // phone 2
      {100, -160, -3.0},  // phone 3
      {180, -180, -3.0},  // phone 4
      {120, -180, -4.0},  // phone 5
      {150, -150, -3.0},  // phone 6
  };
  // The paper: phones 1, 3, and 5 are the skyline.
  auto dominated = [&](size_t i) {
    for (size_t j = 0; j < phones.size(); ++j) {
      if (j != i && Dominates(phones[j], phones[i])) return true;
    }
    return false;
  };
  EXPECT_FALSE(dominated(0));
  EXPECT_TRUE(dominated(1));
  EXPECT_FALSE(dominated(2));
  EXPECT_TRUE(dominated(3));
  EXPECT_FALSE(dominated(4));
  EXPECT_TRUE(dominated(5));
}

// Property: dominance is irreflexive, asymmetric, and transitive.
TEST(DominancePropertyTest, PartialOrderAxiomsOnRandomPoints) {
  Rng rng(99);
  const size_t dims = 4;
  std::vector<std::vector<double>> pts(60, std::vector<double>(dims));
  for (auto& p : pts) {
    for (auto& v : p) v = rng.NextDouble(0.0, 1.0);
  }
  for (const auto& a : pts) {
    EXPECT_FALSE(Dominates(a, a));
  }
  for (const auto& a : pts) {
    for (const auto& b : pts) {
      if (Dominates(a, b)) {
        EXPECT_FALSE(Dominates(b, a));
      }
      for (const auto& c : pts) {
        if (Dominates(a, b) && Dominates(b, c)) {
          EXPECT_TRUE(Dominates(a, c));
        }
      }
    }
  }
}

TEST(DominancePropertyTest, CompareConsistentWithPredicates) {
  Rng rng(100);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<double> a(3), b(3);
    for (size_t i = 0; i < 3; ++i) {
      // Coarse grid so equal coordinates occur often.
      a[i] = static_cast<double>(rng.NextUint64(4));
      b[i] = static_cast<double>(rng.NextUint64(4));
    }
    const DomRelation rel = Compare(a.data(), b.data(), 3);
    EXPECT_EQ(rel == DomRelation::kDominates, Dominates(a, b));
    EXPECT_EQ(rel == DomRelation::kDominatedBy, Dominates(b, a));
    EXPECT_EQ(rel == DomRelation::kEqual, a == b);
    EXPECT_EQ(
        rel == DomRelation::kDominates || rel == DomRelation::kEqual,
        DominatesOrEqual(a, b));
  }
}

}  // namespace
}  // namespace skyup
