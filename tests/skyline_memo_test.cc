// The epoch-scoped skyline memo (serve/skyline_memo.h): exact-match
// semantics under key collisions, the three coordinates of the cache key
// (epoch, probe point, erased-indexed count), publish invalidation, the
// byte-budget eviction bound, and concurrent hit/store safety (run under
// TSan via the "serve" label's sanitizer legs).

#include "serve/skyline_memo.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "serve/live_table.h"
#include "serve/rebuilder.h"
#include "util/random.h"

namespace skyup {
namespace {

std::vector<PointId> Rows(std::initializer_list<PointId> ids) {
  return std::vector<PointId>(ids);
}

TEST(SkylineMemoTest, HitRequiresExactEpochPointAndEraseCount) {
  SkylineMemo memo(/*dims=*/2, /*max_bytes=*/1 << 20);
  const std::vector<double> t = {0.25, 0.75};
  memo.Store(/*epoch=*/3, t.data(), /*erased_indexed=*/2, Rows({5, 9}));

  std::vector<PointId> rows;
  EXPECT_TRUE(memo.Lookup(3, t.data(), 2, &rows));
  EXPECT_EQ(rows, Rows({5, 9}));

  // Any single coordinate of the key off by one -> miss, not a wrong hit.
  EXPECT_FALSE(memo.Lookup(4, t.data(), 2, &rows));
  EXPECT_FALSE(memo.Lookup(3, t.data(), 3, &rows));
  const std::vector<double> nearby = {0.25, 0.7500000001};
  EXPECT_FALSE(memo.Lookup(3, nearby.data(), 2, &rows));
}

TEST(SkylineMemoTest, QuantizationCollisionsStayExact) {
  // The bucket key truncates mantissas, so points that differ only in low
  // mantissa bits collide into one bucket. Collisions must never alias:
  // each stored point answers only for its exact coordinates.
  SkylineMemo memo(2, 1 << 20);
  const double base = 0.333333333333333;
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 8; ++i) {
    // Perturb far below the 32-bit mantissa truncation granularity.
    points.push_back({base + static_cast<double>(i) * 1e-13, 0.5});
  }
  for (size_t i = 0; i < points.size(); ++i) {
    memo.Store(1, points[i].data(), 0, Rows({static_cast<PointId>(i)}));
  }
  std::vector<PointId> rows;
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(memo.Lookup(1, points[i].data(), 0, &rows)) << i;
    EXPECT_EQ(rows, Rows({static_cast<PointId>(i)})) << i;
  }
  // Signed zero: -0.0 == 0.0 under IEEE comparison, and the probe cannot
  // distinguish them either, so a hit across the two is sound. The key
  // must therefore collapse them (a split would be a needless miss, a
  // crash would be a bug); accept either result value but require that a
  // lookup with one spelling after storing the other does not alias some
  // unrelated entry.
  const std::vector<double> pos = {0.0, 0.5};
  const std::vector<double> neg = {-0.0, 0.5};
  memo.Store(1, pos.data(), 0, Rows({100}));
  ASSERT_TRUE(memo.Lookup(1, neg.data(), 0, &rows));
  EXPECT_EQ(rows, Rows({100}));
}

TEST(SkylineMemoTest, PublishDropsEverything) {
  SkylineMemo memo(2, 1 << 20);
  Rng rng(7);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 50; ++i) {
    points.push_back({rng.NextDouble(), rng.NextDouble()});
    memo.Store(1, points.back().data(), 0, Rows({static_cast<PointId>(i)}));
  }
  EXPECT_EQ(memo.entry_count(), 50u);
  memo.OnPublish();
  EXPECT_EQ(memo.entry_count(), 0u);
  EXPECT_EQ(memo.bytes_used(), 0u);
  std::vector<PointId> rows;
  for (const auto& p : points) {
    EXPECT_FALSE(memo.Lookup(1, p.data(), 0, &rows));
  }
}

TEST(SkylineMemoTest, EvictionKeepsBytesBounded) {
  // A deliberately tiny budget: stores far beyond it must evict rather
  // than grow. The bound is enforced per shard, so allow one in-flight
  // entry of slack per shard above the configured budget.
  const size_t budget = 8 << 10;
  SkylineMemo memo(3, budget);
  Rng rng(99);
  std::vector<double> t(3);
  std::vector<PointId> payload(64);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<PointId>(i);
  }
  for (int i = 0; i < 5000; ++i) {
    for (double& c : t) c = rng.NextDouble();
    memo.Store(1, t.data(), 0, payload);
  }
  EXPECT_GT(memo.evictions(), 0u);
  // Per-shard budget is max_bytes/16 + 1; eviction runs until under
  // budget *before* inserting the new entry, so the high-water mark is
  // one entry per shard above the budget.
  const size_t slack = 16 * (sizeof(void*) * 64 + 1024);
  EXPECT_LE(memo.bytes_used(), budget + slack);
  // The cache still works after heavy eviction churn.
  for (double& c : t) c = 0.5;
  memo.Store(1, t.data(), 0, Rows({42}));
  std::vector<PointId> rows;
  EXPECT_TRUE(memo.Lookup(1, t.data(), 0, &rows));
  EXPECT_EQ(rows, Rows({42}));
}

TEST(SkylineMemoTest, ConcurrentHitsStoresAndPublishes) {
  // Hammer one memo from several threads mixing stores, lookups, and
  // publishes; under TSan this is the data-race check, under plain builds
  // it checks that hits always return the value stored for that exact
  // key (epoch tag in the payload makes cross-epoch aliasing visible).
  SkylineMemo memo(2, 64 << 10);
  std::atomic<uint64_t> epoch{1};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> hits{0};

  auto worker = [&](uint64_t seed) {
    Rng rng(seed);
    std::vector<PointId> rows;
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t e = epoch.load(std::memory_order_relaxed);
      // A small point alphabet so threads genuinely share entries.
      std::vector<double> t = {
          0.1 * static_cast<double>(rng.NextUint64(16)),
          0.1 * static_cast<double>(rng.NextUint64(16))};
      if (memo.Lookup(e, t.data(), 0, &rows)) {
        hits.fetch_add(1, std::memory_order_relaxed);
        ASSERT_EQ(rows.size(), 3u);
        // Payload encodes its key: a hit from the wrong epoch or the
        // wrong point would be visible immediately.
        EXPECT_EQ(rows[0], static_cast<PointId>(e));
        EXPECT_EQ(rows[1], static_cast<PointId>(t[0] * 10.0 + 0.5));
        EXPECT_EQ(rows[2], static_cast<PointId>(t[1] * 10.0 + 0.5));
      } else {
        memo.Store(e, t.data(), 0,
                   Rows({static_cast<PointId>(e),
                         static_cast<PointId>(t[0] * 10.0 + 0.5),
                         static_cast<PointId>(t[1] * 10.0 + 0.5)}));
      }
    }
  };

  std::vector<std::thread> threads;
  for (uint64_t i = 0; i < 4; ++i) threads.emplace_back(worker, 1000 + i);
  for (int roll = 0; roll < 10; ++roll) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    epoch.fetch_add(1, std::memory_order_relaxed);
    memo.OnPublish();
  }
  stop.store(true);
  for (std::thread& t : threads) t.join();
  EXPECT_GT(hits.load(), 0u);
}

TEST(SkylineMemoTest, LiveTablePublishRollsTheMemo) {
  // End-to-end: the table-owned memo is dropped by CompleteRebuild, and
  // views carry the shared memo pointer.
  LiveTableOptions options;
  options.dims = 2;
  options.memo_cache_bytes = 1 << 20;
  Result<std::unique_ptr<LiveTable>> table = LiveTable::Create(options);
  ASSERT_TRUE(table.ok());
  LiveTable& t = **table;
  ASSERT_TRUE(t.InsertCompetitor({0.1, 0.2}).ok());
  ASSERT_TRUE(t.InsertProduct({0.9, 0.9}).ok());

  ReadView view = t.AcquireView();
  ASSERT_NE(view.memo, nullptr);
  const std::vector<double> probe = {0.5, 0.5};
  view.memo->Store(view.epoch(), probe.data(), 0, Rows({1}));
  std::vector<PointId> rows;
  EXPECT_TRUE(view.memo->Lookup(view.epoch(), probe.data(), 0, &rows));

  RebuildPolicy policy;
  policy.threshold_ops = 1;
  Result<PublishKind> published = MaybeRebuildInline(&t, policy);
  ASSERT_TRUE(published.ok());
  ASSERT_NE(*published, PublishKind::kNone);
  EXPECT_EQ(view.memo->entry_count(), 0u);
  EXPECT_FALSE(view.memo->Lookup(view.epoch(), probe.data(), 0, &rows));
  // The new view shares the same memo object.
  ReadView fresh = t.AcquireView();
  EXPECT_EQ(fresh.memo.get(), view.memo.get());
  EXPECT_GT(fresh.epoch(), view.epoch());
}

}  // namespace
}  // namespace skyup
