#include "skyline/dominating_skyline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/dominance.h"
#include "core/dominance_batch.h"
#include "data/generator.h"
#include "skyline/skyline.h"
#include "util/random.h"

namespace skyup {
namespace {

// Reference: collect all strict dominators of t, then take their skyline.
std::set<std::vector<double>> ReferenceDominatorSkyline(
    const Dataset& ds, const std::vector<double>& t) {
  std::vector<PointId> dominators;
  for (size_t i = 0; i < ds.size(); ++i) {
    const PointId id = static_cast<PointId>(i);
    if (Dominates(ds.data(id), t.data(), ds.dims())) dominators.push_back(id);
  }
  std::vector<PointId> sky = SkylineBnl(ds, &dominators);
  std::set<std::vector<double>> out;
  for (PointId id : sky) {
    out.insert(std::vector<double>(ds.data(id), ds.data(id) + ds.dims()));
  }
  return out;
}

std::set<std::vector<double>> Coords(const Dataset& ds,
                                     const std::vector<PointId>& ids) {
  std::set<std::vector<double>> out;
  for (PointId id : ids) {
    out.insert(std::vector<double>(ds.data(id), ds.data(id) + ds.dims()));
  }
  return out;
}

TEST(DominatingSkylineTest, NoDominators) {
  Result<Dataset> ds = Dataset::FromRows({{5, 5}, {6, 4}});
  ASSERT_TRUE(ds.ok());
  Result<RTree> tree = RTree::BulkLoad(*ds);
  ASSERT_TRUE(tree.ok());
  const std::vector<double> t = {1.0, 1.0};
  EXPECT_TRUE(DominatingSkyline(tree.value(), t.data()).empty());
}

TEST(DominatingSkylineTest, EqualPointIsNotADominator) {
  Result<Dataset> ds = Dataset::FromRows({{2, 2}, {3, 3}});
  ASSERT_TRUE(ds.ok());
  Result<RTree> tree = RTree::BulkLoad(*ds);
  ASSERT_TRUE(tree.ok());
  const std::vector<double> t = {2.0, 2.0};
  EXPECT_TRUE(DominatingSkyline(tree.value(), t.data()).empty());
}

TEST(DominatingSkylineTest, SimpleCase) {
  // Dominators of (5,5): (1,4), (4,1), (2,2); skyline of those: (1,4),
  // (4,1), (2,2) minus dominated members -> (2,2) dominates none of them;
  // all three are mutually incomparable except none dominates another.
  Result<Dataset> ds =
      Dataset::FromRows({{1, 4}, {4, 1}, {2, 2}, {6, 6}, {5, 0.5}});
  ASSERT_TRUE(ds.ok());
  Result<RTree> tree = RTree::BulkLoad(*ds);
  ASSERT_TRUE(tree.ok());
  const std::vector<double> t = {5.0, 5.0};
  std::vector<PointId> sky = DominatingSkyline(tree.value(), t.data());
  EXPECT_EQ(Coords(*ds, sky), ReferenceDominatorSkyline(*ds, t));
}

struct Param {
  size_t n;
  size_t dims;
  Distribution distribution;
};

class DominatingSkylineSweep : public ::testing::TestWithParam<Param> {};

TEST_P(DominatingSkylineSweep, MatchesReferenceOnRandomProbes) {
  const Param param = GetParam();
  Result<Dataset> p = GenerateCompetitors(param.n, param.dims,
                                          param.distribution, 404 + param.n);
  ASSERT_TRUE(p.ok());
  RTree::Options options;
  options.max_entries = 16;
  Result<RTree> tree = RTree::BulkLoad(*p, options);
  ASSERT_TRUE(tree.ok());

  Rng rng(17);
  for (int probe = 0; probe < 30; ++probe) {
    std::vector<double> t(param.dims);
    // Mix of inside-cube and beyond-cube probes.
    const double hi = probe % 2 == 0 ? 1.0 : 2.0;
    for (auto& v : t) v = rng.NextDouble(0.0, hi);
    std::vector<PointId> sky = DominatingSkyline(tree.value(), t.data());

    EXPECT_EQ(Coords(*p, sky), ReferenceDominatorSkyline(*p, t));
    for (PointId id : sky) {
      EXPECT_TRUE(Dominates(p->data(id), t.data(), param.dims));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DominatingSkylineSweep,
    ::testing::Values(Param{200, 2, Distribution::kIndependent},
                      Param{200, 2, Distribution::kAntiCorrelated},
                      Param{1000, 3, Distribution::kIndependent},
                      Param{1000, 3, Distribution::kAntiCorrelated},
                      Param{800, 4, Distribution::kCorrelated},
                      Param{600, 5, Distribution::kAntiCorrelated}),
    [](const auto& param_info) {
      // Built by append: gcc 12's -Wrestrict false-fires on chained
      // `const char* + std::string` concatenation (PR105329).
      std::string name = "n";
      name += std::to_string(param_info.param.n);
      name += "_d";
      name += std::to_string(param_info.param.dims);
      name += '_';
      name += "iac"[static_cast<int>(param_info.param.distribution)];
      return name;
    });

TEST(DominatingSkylineFromTest, RootSeedEqualsSingleSource) {
  Result<Dataset> p =
      GenerateCompetitors(800, 3, Distribution::kAntiCorrelated, 71);
  ASSERT_TRUE(p.ok());
  Result<RTree> tree = RTree::BulkLoad(*p);
  ASSERT_TRUE(tree.ok());
  const std::vector<double> t = {1.2, 1.2, 1.2};
  const auto single = Coords(*p, DominatingSkyline(tree.value(), t.data()));
  const auto multi = Coords(
      *p, DominatingSkylineFrom(*p, {tree->root()}, {}, t.data()));
  EXPECT_EQ(single, multi);
  EXPECT_FALSE(multi.empty());
}

TEST(DominatingSkylineFromTest, SubtreeSeedsAndExplicitPoints) {
  Result<Dataset> p =
      GenerateCompetitors(600, 2, Distribution::kIndependent, 72);
  ASSERT_TRUE(p.ok());
  RTree::Options options;
  options.max_entries = 8;
  Result<RTree> tree = RTree::BulkLoad(*p, options);
  ASSERT_TRUE(tree.ok());
  ASSERT_FALSE(tree->root()->is_leaf());

  // Seed from the root's children plus a few explicit point ids: must
  // equal the single-source result (same coverage, different seeding).
  std::vector<const RTreeNode*> roots;
  for (const auto& child : tree->root()->children) {
    roots.push_back(child.get());
  }
  const std::vector<PointId> extra = {0, 1, 2, 3, 4};
  const std::vector<double> t = {0.9, 0.9};
  const auto multi =
      Coords(*p, DominatingSkylineFrom(*p, roots, extra, t.data()));
  const auto single = Coords(*p, DominatingSkyline(tree.value(), t.data()));
  EXPECT_EQ(multi, single);
}

TEST(DominatingSkylineFromTest, EmptySeedsYieldEmpty) {
  Dataset p(2);
  p.Add({0.1, 0.1});
  EXPECT_TRUE(DominatingSkylineFrom(p, {}, {}, p.data(0)).empty());
}

TEST(DominatingSkylineFromTest, PointSeedsOnly) {
  Dataset p(2);
  p.Add({0.1, 0.5});
  p.Add({0.5, 0.1});
  p.Add({0.3, 0.3});
  p.Add({0.9, 0.9});  // not a dominator of t
  const std::vector<double> t = {0.8, 0.8};
  const auto sky = DominatingSkylineFrom(p, {}, {0, 1, 2, 3}, t.data());
  EXPECT_EQ(sky.size(), 3u);
}

TEST(DominatingSkylineTest, StatsAreAccounted) {
  Result<Dataset> p =
      GenerateCompetitors(2000, 2, Distribution::kIndependent, 8);
  ASSERT_TRUE(p.ok());
  Result<RTree> tree = RTree::BulkLoad(*p);
  ASSERT_TRUE(tree.ok());
  const std::vector<double> t = {1.5, 1.5};  // dominated by everything
  ProbeStats stats;
  std::vector<PointId> sky = DominatingSkyline(tree.value(), t.data(), &stats);
  EXPECT_FALSE(sky.empty());
  EXPECT_GT(stats.heap_pops, 0u);
  EXPECT_GT(stats.nodes_visited, 0u);
}

TEST(DominatingSkylineTest, PrunesFarNodes) {
  // A probe in the far corner dominated only by a tiny cluster: the
  // traversal should visit far fewer nodes than the tree has.
  Dataset ds(2);
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    ds.Add({0.5 + 0.5 * rng.NextDouble(), 0.5 + 0.5 * rng.NextDouble()});
  }
  ds.Add({0.01, 0.01});
  RTree::Options options;
  options.max_entries = 16;
  Result<RTree> tree = RTree::BulkLoad(ds, options);
  ASSERT_TRUE(tree.ok());
  const std::vector<double> t = {0.05, 0.05};
  ProbeStats stats;
  std::vector<PointId> sky = DominatingSkyline(tree.value(), t.data(), &stats);
  ASSERT_EQ(sky.size(), 1u);
  EXPECT_LT(stats.nodes_visited, tree->Stats().node_count / 4);
}

// The shared tile traversal vs the per-query probe, compared as *value
// sets* (the tile contract): the same dominator coordinate multiset per
// member, independent of accept order and of which row represents a
// coordinate-duplicate group.
std::vector<std::vector<double>> ValueSet(const Dataset& ds,
                                          const std::vector<PointId>& ids) {
  std::vector<std::vector<double>> values;
  values.reserve(ids.size());
  for (PointId id : ids) {
    const double* p = ds.data(id);
    values.emplace_back(p, p + ds.dims());
  }
  std::sort(values.begin(), values.end());
  return values;
}

TEST(DominatingSkylineTileTest, TileMatchesSoloProbesAsValueSets) {
  Rng rng(20260806);
  for (int rep = 0; rep < 30; ++rep) {
    const size_t dims = 2 + static_cast<size_t>(rng.NextUint64(3));
    const size_t n = 1 + static_cast<size_t>(rng.NextUint64(300));
    const bool tie_heavy = rep % 3 == 0;
    Dataset ds(dims);
    std::vector<double> p(dims);
    for (size_t i = 0; i < n; ++i) {
      for (double& c : p) {
        c = tie_heavy ? 0.25 * static_cast<double>(1 + rng.NextUint64(4))
                      : rng.NextDouble();
      }
      ds.Add(p);
    }
    RTree::Options options;
    options.max_entries = 2 + static_cast<size_t>(rng.NextUint64(7));
    Result<RTree> tree = RTree::BulkLoad(ds, options);
    ASSERT_TRUE(tree.ok());
    FlatRTree flat = FlatRTree::FromTree(tree.value());

    // Tombstone a random subset through the index, and kill a further
    // subset through the caller-side mask — the tile traversal composes
    // both, exactly like the solo probe.
    std::vector<uint8_t> dead(n, 0);
    for (size_t i = 0; i < n; ++i) {
      if (rng.NextUint64(8) == 0) {
        ASSERT_TRUE(flat.Erase(static_cast<PointId>(i)));
      } else if (rng.NextUint64(8) == 0) {
        dead[i] = 1;
      }
    }
    const uint8_t* mask = rep % 2 == 0 ? dead.data() : nullptr;

    // Tile widths across the chunk boundaries; members mix fresh random
    // points with exact copies of dataset rows (equal-coordinate stress).
    const size_t tile_count =
        1 + static_cast<size_t>(rng.NextUint64(kMaxDominanceTile));
    std::vector<std::vector<double>> points(tile_count);
    std::vector<const double*> tile(tile_count);
    for (size_t j = 0; j < tile_count; ++j) {
      if (rng.NextUint64(4) == 0) {
        const double* row =
            ds.data(static_cast<PointId>(rng.NextUint64(n)));
        points[j].assign(row, row + dims);
      } else {
        points[j].resize(dims);
        for (double& c : points[j]) c = rng.NextDouble(0.0, 1.2);
      }
      tile[j] = points[j].data();
    }

    std::vector<std::vector<PointId>> results(tile_count);
    ProbeStats tile_stats;
    DominatingSkylineTileInto(flat, tile.data(), tile_count, mask,
                              results.data(), &tile_stats);

    std::vector<PointId> solo;
    for (size_t j = 0; j < tile_count; ++j) {
      DominatingSkylineInto(flat, tile[j], mask, &solo);
      EXPECT_EQ(ValueSet(ds, results[j]), ValueSet(ds, solo))
          << "rep " << rep << " member " << j;
      for (PointId id : results[j]) {
        EXPECT_EQ(mask != nullptr && dead[static_cast<size_t>(id)], false)
            << "masked row " << id << " surfaced, rep " << rep;
      }
    }
  }
}

TEST(DominatingSkylineTileTest, SharedTraversalVisitsFewerNodesThanSolo) {
  // The point of the tile: one traversal over 64 near-identical probes
  // must touch far fewer nodes than 64 separate traversals.
  Dataset ds(2);
  Rng rng(11);
  for (int i = 0; i < 4000; ++i) {
    ds.Add({rng.NextDouble(), rng.NextDouble()});
  }
  RTree::Options options;
  options.max_entries = 8;
  Result<RTree> tree = RTree::BulkLoad(ds, options);
  ASSERT_TRUE(tree.ok());
  FlatRTree flat = FlatRTree::FromTree(tree.value());

  std::vector<std::vector<double>> points(kMaxDominanceTile);
  std::vector<const double*> tile(kMaxDominanceTile);
  for (size_t j = 0; j < kMaxDominanceTile; ++j) {
    points[j] = {0.8 + 0.2 * rng.NextDouble(), 0.8 + 0.2 * rng.NextDouble()};
    tile[j] = points[j].data();
  }
  std::vector<std::vector<PointId>> results(kMaxDominanceTile);
  ProbeStats shared;
  DominatingSkylineTileInto(flat, tile.data(), kMaxDominanceTile, nullptr,
                            results.data(), &shared);
  ProbeStats solo_total;
  std::vector<PointId> solo;
  for (size_t j = 0; j < kMaxDominanceTile; ++j) {
    ProbeStats one;
    DominatingSkylineInto(flat, tile[j], nullptr, &solo, &one);
    solo_total.nodes_visited += one.nodes_visited;
  }
  EXPECT_LT(shared.nodes_visited, solo_total.nodes_visited / 4);
}

}  // namespace
}  // namespace skyup
