#include "data/generator.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/dominance.h"
#include "skyline/skyline.h"
#include "util/stats.h"

namespace skyup {
namespace {

std::vector<double> Column(const Dataset& ds, size_t dim) {
  std::vector<double> out;
  out.reserve(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    out.push_back(ds.data(static_cast<PointId>(i))[dim]);
  }
  return out;
}

TEST(GeneratorTest, RespectsCountDimsAndRange) {
  for (auto distribution : {Distribution::kIndependent,
                            Distribution::kAntiCorrelated,
                            Distribution::kCorrelated}) {
    GeneratorConfig config;
    config.count = 500;
    config.dims = 4;
    config.distribution = distribution;
    config.lo = 2.0;
    config.hi = 5.0;
    config.seed = 99;
    Result<Dataset> ds = GenerateDataset(config);
    ASSERT_TRUE(ds.ok());
    EXPECT_EQ(ds->size(), 500u);
    EXPECT_EQ(ds->dims(), 4u);
    for (size_t i = 0; i < ds->size(); ++i) {
      const double* p = ds->data(static_cast<PointId>(i));
      for (size_t d = 0; d < 4; ++d) {
        EXPECT_GE(p[d], 2.0) << DistributionName(distribution);
        EXPECT_LE(p[d], 5.0) << DistributionName(distribution);
      }
    }
  }
}

TEST(GeneratorTest, DeterministicPerSeed) {
  GeneratorConfig config;
  config.count = 100;
  config.dims = 3;
  config.distribution = Distribution::kAntiCorrelated;
  config.seed = 7;
  Result<Dataset> a = GenerateDataset(config);
  Result<Dataset> b = GenerateDataset(config);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    for (size_t d = 0; d < 3; ++d) {
      EXPECT_DOUBLE_EQ(a->data(static_cast<PointId>(i))[d],
                       b->data(static_cast<PointId>(i))[d]);
    }
  }
  config.seed = 8;
  Result<Dataset> c = GenerateDataset(config);
  ASSERT_TRUE(c.ok());
  bool any_diff = false;
  for (size_t i = 0; i < a->size() && !any_diff; ++i) {
    any_diff = a->data(static_cast<PointId>(i))[0] !=
               c->data(static_cast<PointId>(i))[0];
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, RejectsInvalidConfig) {
  GeneratorConfig config;
  config.count = 0;
  config.dims = 2;
  EXPECT_FALSE(GenerateDataset(config).ok());
  config.count = 10;
  config.dims = 0;
  EXPECT_FALSE(GenerateDataset(config).ok());
  config.dims = 2;
  config.lo = 1.0;
  config.hi = 1.0;
  EXPECT_FALSE(GenerateDataset(config).ok());
}

TEST(GeneratorTest, AntiCorrelatedHasNegativePairwiseCorrelation) {
  Result<Dataset> ds =
      GenerateCompetitors(5000, 2, Distribution::kAntiCorrelated, 13);
  ASSERT_TRUE(ds.ok());
  const double r = PearsonCorrelation(Column(*ds, 0), Column(*ds, 1));
  EXPECT_LT(r, -0.5);
}

TEST(GeneratorTest, CorrelatedHasPositivePairwiseCorrelation) {
  Result<Dataset> ds =
      GenerateCompetitors(5000, 2, Distribution::kCorrelated, 14);
  ASSERT_TRUE(ds.ok());
  const double r = PearsonCorrelation(Column(*ds, 0), Column(*ds, 1));
  EXPECT_GT(r, 0.8);
}

TEST(GeneratorTest, IndependentHasNearZeroCorrelation) {
  Result<Dataset> ds =
      GenerateCompetitors(5000, 2, Distribution::kIndependent, 15);
  ASSERT_TRUE(ds.ok());
  const double r = PearsonCorrelation(Column(*ds, 0), Column(*ds, 1));
  EXPECT_NEAR(r, 0.0, 0.05);
}

TEST(GeneratorTest, SkylineSizeOrdering) {
  // The paper's premise: anti-correlated data has (much) larger skylines
  // than independent, which beats correlated.
  const size_t n = 4000;
  Result<Dataset> anti =
      GenerateCompetitors(n, 3, Distribution::kAntiCorrelated, 20);
  Result<Dataset> indep =
      GenerateCompetitors(n, 3, Distribution::kIndependent, 21);
  Result<Dataset> corr =
      GenerateCompetitors(n, 3, Distribution::kCorrelated, 22);
  ASSERT_TRUE(anti.ok() && indep.ok() && corr.ok());
  const size_t s_anti = SkylineSfs(*anti).size();
  const size_t s_indep = SkylineSfs(*indep).size();
  const size_t s_corr = SkylineSfs(*corr).size();
  EXPECT_GT(s_anti, 2 * s_indep);
  EXPECT_GE(s_indep, s_corr);
}

TEST(GeneratorTest, ProductsAreDominatedByAllCompetitors) {
  // P in [0,1)^d, T in (1,2]^d: every competitor dominates every product.
  Result<Dataset> p =
      GenerateCompetitors(200, 3, Distribution::kIndependent, 30);
  Result<Dataset> t = GenerateProducts(50, 3, Distribution::kIndependent, 31);
  ASSERT_TRUE(p.ok() && t.ok());
  for (size_t i = 0; i < t->size(); ++i) {
    for (size_t j = 0; j < p->size(); ++j) {
      ASSERT_TRUE(Dominates(p->data(static_cast<PointId>(j)),
                            t->data(static_cast<PointId>(i)), 3));
    }
  }
}

TEST(GeneratorTest, AntiCorrelatedSumsConcentrateNearHalf) {
  Result<Dataset> ds =
      GenerateCompetitors(3000, 4, Distribution::kAntiCorrelated, 44);
  ASSERT_TRUE(ds.ok());
  RunningStats sums;
  for (size_t i = 0; i < ds->size(); ++i) {
    const double* p = ds->data(static_cast<PointId>(i));
    double s = 0.0;
    for (size_t d = 0; d < 4; ++d) s += p[d];
    sums.Add(s);
  }
  EXPECT_NEAR(sums.mean(), 2.0, 0.15);   // d * 0.5
  EXPECT_LT(sums.stddev(), 0.7);         // concentrated around the plane
}

}  // namespace
}  // namespace skyup
