// Tests for the serve tier's flight-recorder integration (serve/server.h
// + obs/flight_recorder.h): query-id assignment across the inline,
// batch, and queued paths, per-record attribution (status, phases,
// counters), slow-query promotion into the structured log, admission
// rejections in the ring, DumpDiagnostics/RequestDump, periodic system
// samples, and the replay determinism guard (the recorder is strictly
// observe-only).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.h"
#include "serve/replay.h"
#include "serve/server.h"
#include "util/timer.h"

namespace skyup {
namespace {

Result<std::unique_ptr<Server>> MakeServer(ServerOptions options) {
  return Server::Create(
      ProductCostFunction::ReciprocalSum(options.dims, 1e-3), options);
}

ServerOptions SmallOptions() {
  ServerOptions options;
  options.dims = 2;
  options.query_threads = 2;
  options.background_rebuild = false;
  options.rebuild_threshold_ops = 64;
  return options;
}

void Seed(Server* server) {
  ASSERT_TRUE(server->InsertCompetitor({0.1, 0.2}).ok());
  ASSERT_TRUE(server->InsertCompetitor({0.3, 0.1}).ok());
  ASSERT_TRUE(server->InsertCompetitor({0.2, 0.4}).ok());
  ASSERT_TRUE(server->InsertProduct({0.9, 0.9}).ok());
  ASSERT_TRUE(server->InsertProduct({0.8, 0.7}).ok());
}

class FlightTest : public ::testing::Test {
 protected:
  void TearDown() override { CloseLogSink(); }
};

TEST_F(FlightTest, InlineQueriesGetMonotonicIdsAndFullRecords) {
  Result<std::unique_ptr<Server>> server = MakeServer(SmallOptions());
  ASSERT_TRUE(server.ok());
  Seed(server->get());

  QueryRequest request;
  request.k = 2;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*server)->Query(request).status.ok());
  }
  const std::vector<QueryFlightRecord> records =
      (*server)->flight_recorder().QueryRecords();
  ASSERT_EQ(records.size(), 3u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].query_id, i + 1);  // admission order, 1-based
    EXPECT_EQ(records[i].status, StatusCode::kOk);
    EXPECT_EQ(records[i].k, 2u);
    EXPECT_EQ(records[i].results, 2u);
    EXPECT_GE(records[i].epoch, 1u);
    EXPECT_GT(records[i].wall_seconds, 0.0);
    EXPECT_GT(records[i].end_ts_us, 0u);
    EXPECT_GT(records[i].candidates_evaluated + records[i].cache_hits, 0u);
    EXPECT_FALSE(records[i].slow);
  }
}

TEST_F(FlightTest, RecorderOffRecordsNothingAndAnswersMatch) {
  ServerOptions on_options = SmallOptions();
  ServerOptions off_options = SmallOptions();
  off_options.flight_recorder = false;
  Result<std::unique_ptr<Server>> on = MakeServer(on_options);
  Result<std::unique_ptr<Server>> off = MakeServer(off_options);
  ASSERT_TRUE(on.ok());
  ASSERT_TRUE(off.ok());
  Seed(on->get());
  Seed(off->get());

  QueryRequest request;
  request.k = 2;
  const QueryResponse a = (*on)->Query(request);
  const QueryResponse b = (*off)->Query(request);
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].product_id, b.results[i].product_id);
    EXPECT_DOUBLE_EQ(a.results[i].cost, b.results[i].cost);
  }
  EXPECT_EQ((*on)->flight_recorder().QueryRecords().size(), 1u);
  EXPECT_TRUE((*off)->flight_recorder().QueryRecords().empty());
}

// The acceptance test: a query killed by its deadline mid-run leaves a
// full record — query id, phase breakdown, DeadlineExceeded — in BOTH
// the slow-query structured log and the DumpDiagnostics output.
TEST_F(FlightTest, DeadlineKilledQueryIsInSlowLogAndDump) {
  ServerOptions options = SmallOptions();
  options.slow_query_us = 1;  // everything is "slow": promotion always fires
  Result<std::unique_ptr<Server>> server = MakeServer(options);
  ASSERT_TRUE(server.ok());
  Seed(server->get());

  std::ostringstream log;
  SetLogStream(&log, LogLevel::kWarn);

  // A control whose deadline already lapsed: the engine admits the query,
  // starts executing, and its first cooperative deadline check kills it —
  // the controlled path, exactly as a mid-run expiry behaves.
  QueryRequest request;
  request.k = 2;
  request.control = std::make_shared<QueryControl>();
  request.control->SetDeadline(SteadyClock::now() -
                               std::chrono::milliseconds(1));
  const QueryResponse response = (*server)->Query(request);
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);

  // The ring holds the full record.
  const std::vector<QueryFlightRecord> records =
      (*server)->flight_recorder().QueryRecords();
  ASSERT_EQ(records.size(), 1u);
  const QueryFlightRecord& record = records[0];
  EXPECT_EQ(record.query_id, 1u);
  EXPECT_EQ(record.status, StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(record.slow);
  EXPECT_EQ(record.query_id, request.control->query_id());

  // The slow-query log carries the same identity and outcome.
  CloseLogSink();
  const std::string log_text = log.str();
  EXPECT_NE(log_text.find("\"event\":\"slow_query\""), std::string::npos);
  EXPECT_NE(log_text.find("\"query_id\":1"), std::string::npos);
  EXPECT_NE(log_text.find("\"status\":\"DeadlineExceeded\""),
            std::string::npos);
  EXPECT_NE(log_text.find("\"probe_s\":"), std::string::npos);

  // And so does the post-hoc diagnostics dump.
  std::ostringstream dump;
  (*server)->DumpDiagnostics(dump);
  const std::string dump_text = dump.str();
  EXPECT_NE(dump_text.find("\"type\":\"flight_meta\""), std::string::npos);
  EXPECT_NE(dump_text.find("\"query_id\":1"), std::string::npos);
  EXPECT_NE(dump_text.find("\"status\":\"DeadlineExceeded\""),
            std::string::npos);
  EXPECT_NE(dump_text.find("\"slow\":true"), std::string::npos);
  // The dump always ends with a fresh system sample.
  EXPECT_NE(dump_text.find("\"type\":\"sample\""), std::string::npos);
}

TEST_F(FlightTest, AdmissionRejectionIsRecorded) {
  ServerOptions options = SmallOptions();
  options.max_pending = 1;
  Result<std::unique_ptr<Server>> server = MakeServer(options);
  ASSERT_TRUE(server.ok());
  Seed(server->get());

  (*server)->HoldWorkersForTest();
  QueryRequest request;
  request.k = 1;
  std::future<QueryResponse> q1 = (*server)->Submit(request);
  std::future<QueryResponse> q2 = (*server)->Submit(request);
  EXPECT_EQ(q2.get().status.code(), StatusCode::kResourceExhausted);
  (*server)->ReleaseWorkersForTest();
  EXPECT_TRUE(q1.get().status.ok());

  const std::vector<QueryFlightRecord> records =
      (*server)->flight_recorder().QueryRecords();
  ASSERT_EQ(records.size(), 2u);
  // The rejection is recorded at admission time, the accepted query at
  // completion — so the rejected id (2) appears first.
  EXPECT_EQ(records[0].query_id, 2u);
  EXPECT_EQ(records[0].status, StatusCode::kResourceExhausted);
  EXPECT_EQ(records[1].query_id, 1u);
  EXPECT_EQ(records[1].status, StatusCode::kOk);
  EXPECT_GE(records[1].queue_seconds, 0.0);
}

TEST_F(FlightTest, BatchMembersShareOneBatchId) {
  ServerOptions options = SmallOptions();
  options.batch_max = 8;
  Result<std::unique_ptr<Server>> server = MakeServer(options);
  ASSERT_TRUE(server.ok());
  Seed(server->get());

  std::vector<QueryRequest> requests(3);
  for (QueryRequest& r : requests) r.k = 1;
  const std::vector<QueryResponse> responses =
      (*server)->QueryBatch(requests);
  ASSERT_EQ(responses.size(), 3u);
  for (const QueryResponse& r : responses) ASSERT_TRUE(r.status.ok());

  const std::vector<QueryFlightRecord> records =
      (*server)->flight_recorder().QueryRecords();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_GT(records[0].batch_id, 0u);
  for (const QueryFlightRecord& record : records) {
    EXPECT_EQ(record.batch_id, records[0].batch_id);
    EXPECT_EQ(record.status, StatusCode::kOk);
    EXPECT_EQ(record.results, 1u);
  }
  EXPECT_NE(records[0].query_id, records[1].query_id);
  EXPECT_NE(records[1].query_id, records[2].query_id);
}

TEST_F(FlightTest, PeriodicSamplerFillsTheSampleRing) {
  ServerOptions options = SmallOptions();
  options.stats_interval_ms = 5;
  Result<std::unique_ptr<Server>> server = MakeServer(options);
  ASSERT_TRUE(server.ok());
  Seed(server->get());

  // Poll until the sampler has demonstrably fired (bounded wait).
  Timer timer;
  while ((*server)->flight_recorder().Samples().empty() &&
         timer.ElapsedSeconds() < 5.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::vector<SystemSample> samples =
      (*server)->flight_recorder().Samples();
  ASSERT_FALSE(samples.empty());
  EXPECT_GE(samples[0].epoch, 1u);
  EXPECT_GT(samples[0].ts_us, 0u);
  EXPECT_EQ(samples[0].live_competitors, 3u);
  EXPECT_EQ(samples[0].live_products, 2u);
}

TEST_F(FlightTest, RequestDumpWritesFileWithoutPausingAdmission) {
  const std::string path =
      ::testing::TempDir() + "/skyup_flight_dump_test.jsonl";
  std::remove(path.c_str());
  ServerOptions options = SmallOptions();
  options.flight_dump_path = path;
  Result<std::unique_ptr<Server>> server = MakeServer(options);
  ASSERT_TRUE(server.ok());
  Seed(server->get());
  QueryRequest request;
  request.k = 1;
  ASSERT_TRUE((*server)->Query(request).status.ok());

  (*server)->RequestDump();  // what a SIGUSR1 handler calls
  // Queries keep flowing while the diagnostics thread writes.
  ASSERT_TRUE((*server)->Query(request).status.ok());

  Timer timer;
  bool dumped = false;
  while (!dumped && timer.ElapsedSeconds() < 5.0) {
    std::ifstream in(path);
    std::string first_line;
    dumped = in.good() && std::getline(in, first_line) &&
             first_line.find("\"type\":\"flight_meta\"") != std::string::npos;
    if (!dumped) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(dumped) << "diagnostics thread never wrote " << path;
  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
  }
  EXPECT_GE(lines, 3u);  // meta + >= 1 query + >= 1 sample
  std::remove(path.c_str());
}

// Determinism guard: the replay result log is a pure function of the op
// stream; the recorder (and the slow-query log) must be strictly
// observe-only. Byte-identical output, recorder on vs off.
TEST_F(FlightTest, ReplayResultLogIsByteIdenticalRecorderOnOrOff) {
  std::ostringstream workload_text;
  ASSERT_TRUE(GenerateWorkload(/*seed=*/7, /*ops=*/300, /*dims=*/2,
                               workload_text)
                  .ok());
  Result<ReplayWorkload> workload = ParseWorkload(workload_text.str());
  ASSERT_TRUE(workload.ok());

  auto run = [&](bool recorder_on) -> std::string {
    ServerOptions options;
    options.dims = 2;
    options.query_threads = 1;
    options.background_rebuild = false;
    options.rebuild_threshold_ops = 32;
    options.batch_max = 8;
    options.flight_recorder = recorder_on;
    if (recorder_on) options.slow_query_us = 1;  // promotion on too
    Result<std::unique_ptr<Server>> server = MakeServer(options);
    EXPECT_TRUE(server.ok());
    std::ostringstream results;
    std::ostringstream log;
    if (recorder_on) SetLogStream(&log, LogLevel::kWarn);
    EXPECT_TRUE(Replay(server->get(), *workload, results).ok());
    if (recorder_on) {
      CloseLogSink();
      // The observers actually observed; they just must not interfere.
      EXPECT_FALSE(
          (*server)->flight_recorder().QueryRecords().empty());
    }
    return results.str();
  };

  const std::string with_recorder = run(true);
  const std::string without_recorder = run(false);
  ASSERT_FALSE(with_recorder.empty());
  EXPECT_EQ(with_recorder, without_recorder);
}

}  // namespace
}  // namespace skyup
