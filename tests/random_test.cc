#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/stats.h"

namespace skyup {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble(-3.0, 5.5);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.5);
  }
}

TEST(RngTest, NextUint64BoundedAndCoversRange) {
  Rng rng(11);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t x = rng.NextUint64(10);
    ASSERT_LT(x, 10u);
    ++seen[static_cast<size_t>(x)];
  }
  for (int count : seen) EXPECT_GT(count, 300);  // ~500 expected per bucket
}

TEST(RngTest, UniformMeanAndVariance) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.NextDouble());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int> original = v;
  rng.Shuffle(&v);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), original.begin()));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleHandlesSmallInputs) {
  Rng rng(23);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {5};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{5});
}

}  // namespace
}  // namespace skyup
