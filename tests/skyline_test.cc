#include "skyline/skyline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/dominance.h"
#include "data/generator.h"
#include "skyline/incremental.h"
#include "util/random.h"

namespace skyup {
namespace {

Dataset MakeDataset(const std::vector<std::vector<double>>& rows) {
  Result<Dataset> r = Dataset::FromRows(rows);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

// Reference skyline: distinct coordinate vectors not dominated by any
// point; for duplicated skyline vectors exactly one representative.
std::set<std::vector<double>> ReferenceSkylineCoords(const Dataset& ds) {
  std::set<std::vector<double>> out;
  for (size_t i = 0; i < ds.size(); ++i) {
    const PointId id = static_cast<PointId>(i);
    if (!IsDominated(ds, id)) {
      out.insert(std::vector<double>(ds.data(id), ds.data(id) + ds.dims()));
    }
  }
  return out;
}

std::set<std::vector<double>> Coords(const Dataset& ds,
                                     const std::vector<PointId>& ids) {
  std::set<std::vector<double>> out;
  for (PointId id : ids) {
    out.insert(std::vector<double>(ds.data(id), ds.data(id) + ds.dims()));
  }
  return out;
}

TEST(SkylineTest, PaperTableOneSkyline) {
  // Table I phones, maximize dims negated: the skyline is phones 1, 3, 5.
  Dataset ds = MakeDataset({{140, -200, -2.0},
                            {180, -150, -3.0},
                            {100, -160, -3.0},
                            {180, -180, -3.0},
                            {120, -180, -4.0},
                            {150, -150, -3.0}});
  for (auto algo : {SkylineAlgorithm::kBnl, SkylineAlgorithm::kSfs,
                    SkylineAlgorithm::kBbs, SkylineAlgorithm::kDnc}) {
    std::vector<PointId> sky = Skyline(ds, algo);
    std::sort(sky.begin(), sky.end());
    EXPECT_EQ(sky, (std::vector<PointId>{0, 2, 4}))
        << "algorithm " << static_cast<int>(algo);
  }
}

TEST(SkylineTest, SinglePointIsItsOwnSkyline) {
  Dataset ds = MakeDataset({{1, 2}});
  EXPECT_EQ(Skyline(ds, SkylineAlgorithm::kBnl).size(), 1u);
  EXPECT_EQ(Skyline(ds, SkylineAlgorithm::kBbs).size(), 1u);
  EXPECT_EQ(Skyline(ds, SkylineAlgorithm::kDnc).size(), 1u);
}

TEST(SkylineTest, TotallyOrderedChainHasSingletonSkyline) {
  Dataset ds = MakeDataset({{3, 3}, {2, 2}, {1, 1}, {4, 4}});
  for (auto algo : {SkylineAlgorithm::kBnl, SkylineAlgorithm::kSfs,
                    SkylineAlgorithm::kBbs, SkylineAlgorithm::kDnc}) {
    std::vector<PointId> sky = Skyline(ds, algo);
    ASSERT_EQ(sky.size(), 1u);
    EXPECT_EQ(sky[0], 2);
  }
}

TEST(SkylineTest, AntiChainIsFullyInSkyline) {
  Dataset ds = MakeDataset({{1, 4}, {2, 3}, {3, 2}, {4, 1}});
  for (auto algo : {SkylineAlgorithm::kBnl, SkylineAlgorithm::kSfs,
                    SkylineAlgorithm::kBbs, SkylineAlgorithm::kDnc}) {
    EXPECT_EQ(Skyline(ds, algo).size(), 4u);
  }
}

TEST(SkylineTest, DuplicatesKeepOneRepresentative) {
  Dataset ds = MakeDataset({{1, 1}, {1, 1}, {2, 2}});
  for (auto algo : {SkylineAlgorithm::kBnl, SkylineAlgorithm::kSfs,
                    SkylineAlgorithm::kBbs, SkylineAlgorithm::kDnc}) {
    std::vector<PointId> sky = Skyline(ds, algo);
    ASSERT_EQ(sky.size(), 1u) << "algorithm " << static_cast<int>(algo);
    EXPECT_EQ(ds.data(sky[0])[0], 1.0);
  }
}

TEST(SkylineTest, EmptyDatasetYieldsEmptySkyline) {
  Dataset ds(2);
  EXPECT_TRUE(Skyline(ds, SkylineAlgorithm::kBnl).empty());
  EXPECT_TRUE(Skyline(ds, SkylineAlgorithm::kSfs).empty());
  EXPECT_TRUE(Skyline(ds, SkylineAlgorithm::kBbs).empty());
  EXPECT_TRUE(Skyline(ds, SkylineAlgorithm::kDnc).empty());
}

TEST(SkylineTest, SubsetRestrictsBnlSfsAndDnc) {
  Dataset ds = MakeDataset({{1, 1}, {5, 5}, {4, 6}});
  const std::vector<PointId> subset = {1, 2};
  std::vector<PointId> bnl = SkylineBnl(ds, &subset);
  std::vector<PointId> sfs = SkylineSfs(ds, &subset);
  std::vector<PointId> dnc = SkylineDnc(ds, &subset);
  std::sort(bnl.begin(), bnl.end());
  std::sort(sfs.begin(), sfs.end());
  std::sort(dnc.begin(), dnc.end());
  EXPECT_EQ(bnl, (std::vector<PointId>{1, 2}));
  EXPECT_EQ(sfs, (std::vector<PointId>{1, 2}));
  EXPECT_EQ(dnc, (std::vector<PointId>{1, 2}));
}

TEST(SkylineTest, DncLargeRecursionDepth) {
  // Big enough to recurse several levels past the base case on every
  // dimension, with duplicates sprinkled in.
  Result<Dataset> base =
      GenerateCompetitors(3000, 3, Distribution::kAntiCorrelated, 808);
  ASSERT_TRUE(base.ok());
  Dataset ds = *base;
  for (int i = 0; i < 50; ++i) {
    ds.Add(ds.data(static_cast<PointId>(i)));  // duplicates
  }
  const auto expected = ReferenceSkylineCoords(ds);
  EXPECT_EQ(Coords(ds, SkylineDnc(ds)), expected);
}

struct SkylineSweepParam {
  size_t n;
  size_t dims;
  Distribution distribution;
};

class SkylineSweepTest
    : public ::testing::TestWithParam<SkylineSweepParam> {};

TEST_P(SkylineSweepTest, AllAlgorithmsAgreeAndAreCorrect) {
  const SkylineSweepParam param = GetParam();
  GeneratorConfig config;
  config.count = param.n;
  config.dims = param.dims;
  config.distribution = param.distribution;
  config.seed = 1234 + param.n;
  Result<Dataset> data = GenerateDataset(config);
  ASSERT_TRUE(data.ok());

  const std::set<std::vector<double>> expected =
      ReferenceSkylineCoords(*data);
  const auto bnl = Coords(*data, SkylineBnl(*data));
  const auto sfs = Coords(*data, SkylineSfs(*data));
  const auto dnc = Coords(*data, SkylineDnc(*data));
  Result<RTree> tree = RTree::BulkLoad(*data);
  ASSERT_TRUE(tree.ok());
  const auto bbs = Coords(*data, SkylineBbs(tree.value()));

  EXPECT_EQ(bnl, expected);
  EXPECT_EQ(sfs, expected);
  EXPECT_EQ(bbs, expected);
  EXPECT_EQ(dnc, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkylineSweepTest,
    ::testing::Values(
        SkylineSweepParam{100, 2, Distribution::kIndependent},
        SkylineSweepParam{100, 2, Distribution::kAntiCorrelated},
        SkylineSweepParam{100, 2, Distribution::kCorrelated},
        SkylineSweepParam{800, 3, Distribution::kIndependent},
        SkylineSweepParam{800, 3, Distribution::kAntiCorrelated},
        SkylineSweepParam{500, 5, Distribution::kIndependent},
        SkylineSweepParam{500, 5, Distribution::kAntiCorrelated},
        SkylineSweepParam{2000, 4, Distribution::kCorrelated}),
    [](const auto& param_info) {
      // Built by append: gcc 12's -Wrestrict false-fires on chained
      // `const char* + std::string` concatenation (PR105329).
      std::string name = "n";
      name += std::to_string(param_info.param.n);
      name += "_d";
      name += std::to_string(param_info.param.dims);
      name += '_';
      name += "iac"[static_cast<int>(param_info.param.distribution)];
      return name;
    });

TEST(SkylineTest, SkylineMembersAreMutuallyNonDominating) {
  Result<Dataset> data =
      GenerateCompetitors(1500, 3, Distribution::kAntiCorrelated, 5);
  ASSERT_TRUE(data.ok());
  std::vector<PointId> sky = SkylineSfs(*data);
  for (size_t i = 0; i < sky.size(); ++i) {
    for (size_t j = 0; j < sky.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(
          Dominates(data->data(sky[i]), data->data(sky[j]), data->dims()));
    }
  }
}

TEST(SkylineOfPointersTest, FiltersToSkylineInPlace) {
  Dataset ds = MakeDataset({{2, 2}, {1, 3}, {3, 1}, {2.5, 2.5}, {1, 3}});
  std::vector<const double*> ptrs;
  for (size_t i = 0; i < ds.size(); ++i) {
    ptrs.push_back(ds.data(static_cast<PointId>(i)));
  }
  SkylineOfPointers(&ptrs, 2);
  // Skyline coords: (2,2), (1,3), (3,1); the duplicate (1,3) collapses.
  ASSERT_EQ(ptrs.size(), 3u);
  std::set<std::vector<double>> got;
  for (const double* p : ptrs) got.insert({p[0], p[1]});
  const std::set<std::vector<double>> expected = {{2, 2}, {1, 3}, {3, 1}};
  EXPECT_EQ(got, expected);
}

TEST(SkylineOfPointersTest, EmptyInput) {
  std::vector<const double*> ptrs;
  SkylineOfPointers(&ptrs, 3);
  EXPECT_TRUE(ptrs.empty());
}

TEST(IsDominatedTest, Basics) {
  Dataset ds = MakeDataset({{1, 1}, {2, 2}, {1, 1}});
  EXPECT_FALSE(IsDominated(ds, 0));
  EXPECT_TRUE(IsDominated(ds, 1));
  EXPECT_FALSE(IsDominated(ds, 2));  // duplicate of a minimum: not dominated
}

TEST(PatchSkylineInsertTest, DropsDominatedAndDuplicateInserts) {
  Dataset ds = MakeDataset({{1, 3}, {3, 1}, {2, 2},    // seed skyline
                            {2.5, 2.5},                // dominated by (2,2)
                            {1, 3}});                  // duplicate member
  std::vector<const double*> sky = {ds.data(0), ds.data(1), ds.data(2)};
  EXPECT_FALSE(PatchSkylineInsert(&sky, ds.data(3), 2));
  EXPECT_FALSE(PatchSkylineInsert(&sky, ds.data(4), 2));
  ASSERT_EQ(sky.size(), 3u);
  // Rejected inserts leave the skyline untouched, order included.
  EXPECT_EQ(sky[0], ds.data(0));
  EXPECT_EQ(sky[1], ds.data(1));
  EXPECT_EQ(sky[2], ds.data(2));
}

TEST(PatchSkylineInsertTest, EvictsEveryDominatedMemberStably) {
  Dataset ds = MakeDataset({{1, 4}, {2, 2}, {4, 1}, {3, 3},   // seed
                            {1.5, 1.5}});  // evicts (2,2) and (3,3)
  std::vector<const double*> sky = {ds.data(0), ds.data(1), ds.data(2),
                                    ds.data(3)};
  EXPECT_TRUE(PatchSkylineInsert(&sky, ds.data(4), 2));
  ASSERT_EQ(sky.size(), 3u);
  // Survivors keep their relative order; the insert lands at the back.
  EXPECT_EQ(sky[0], ds.data(0));
  EXPECT_EQ(sky[1], ds.data(2));
  EXPECT_EQ(sky[2], ds.data(4));
}

TEST(PatchSkylineInsertTest, EmptySkylineAdmitsAnything) {
  Dataset ds = MakeDataset({{5, 5}});
  std::vector<const double*> sky;
  EXPECT_TRUE(PatchSkylineInsert(&sky, ds.data(0), 2));
  ASSERT_EQ(sky.size(), 1u);
  EXPECT_EQ(sky[0], ds.data(0));
}

// Folding points one at a time must land on the same value set as one-shot
// SkylineOfPointers over the union — the exactness argument the serving
// overlay (src/serve/query.cc) rests on.
TEST(PatchSkylineInsertTest, MatchesOneShotReductionOnRandomStreams) {
  for (size_t dims = 2; dims <= 4; ++dims) {
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      Result<Dataset> gen = GenerateCompetitors(
          60, dims, Distribution::kAntiCorrelated, 1000 * dims + seed);
      ASSERT_TRUE(gen.ok());
      const Dataset& ds = gen.value();

      std::vector<const double*> incremental;
      std::vector<const double*> all;
      for (size_t i = 0; i < ds.size(); ++i) {
        const double* p = ds.data(static_cast<PointId>(i));
        PatchSkylineInsert(&incremental, p, dims);
        all.push_back(p);
      }
      SkylineOfPointers(&all, dims);

      const auto values = [dims](const std::vector<const double*>& ptrs) {
        std::set<std::vector<double>> out;
        for (const double* p : ptrs) {
          out.insert(std::vector<double>(p, p + dims));
        }
        return out;
      };
      EXPECT_EQ(values(incremental), values(all))
          << "dims=" << dims << " seed=" << seed;
      // Value-set semantics: one representative per distinct vector.
      EXPECT_EQ(incremental.size(), values(incremental).size());
    }
  }
}

}  // namespace
}  // namespace skyup
