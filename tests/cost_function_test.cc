#include "core/cost_function.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

namespace skyup {
namespace {

TEST(AttributeCostTest, ReciprocalMatchesFormula) {
  ReciprocalCost f(0.001);
  EXPECT_DOUBLE_EQ(f.Cost(0.5), 1.0 / 0.501);
  EXPECT_DOUBLE_EQ(f.Cost(0.0), 1000.0);
}

TEST(AttributeCostTest, ReciprocalIsDecreasing) {
  ReciprocalCost f(0.01);
  double prev = f.Cost(0.0);
  for (double x = 0.1; x <= 2.0; x += 0.1) {
    const double cur = f.Cost(x);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(AttributeCostTest, LinearMatchesFormula) {
  LinearCost f(10.0, 2.0);
  EXPECT_DOUBLE_EQ(f.Cost(0.0), 10.0);
  EXPECT_DOUBLE_EQ(f.Cost(3.0), 4.0);
}

TEST(AttributeCostTest, ExponentialMatchesFormula) {
  ExponentialCost f(5.0, 1.0);
  EXPECT_DOUBLE_EQ(f.Cost(0.0), 5.0);
  EXPECT_NEAR(f.Cost(1.0), 5.0 * std::exp(-1.0), 1e-12);
}

TEST(AttributeCostTest, PowerMatchesFormula) {
  PowerCost f(2.0, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(f.Cost(0.0), 2.0);        // 2 * 1^-2
  EXPECT_DOUBLE_EQ(f.Cost(1.0), 2.0 / 4.0);  // 2 * 2^-2
}

TEST(AttributeCostTest, NamesAreDescriptive) {
  EXPECT_NE(ReciprocalCost(0.5).name().find("reciprocal"),
            std::string::npos);
  EXPECT_NE(LinearCost(1, 1).name().find("linear"), std::string::npos);
  EXPECT_NE(ExponentialCost(1, 1).name().find("exponential"),
            std::string::npos);
  EXPECT_NE(PowerCost(1, 1).name().find("power"), std::string::npos);
}

TEST(ProductCostTest, ReciprocalSumAddsDimensions) {
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(3, 0.001);
  const std::vector<double> p = {0.1, 0.2, 0.3};
  const double expected =
      1.0 / 0.101 + 1.0 / 0.201 + 1.0 / 0.301;
  EXPECT_NEAR(f.Cost(p), expected, 1e-12);
  EXPECT_EQ(f.dims(), 3u);
}

TEST(ProductCostTest, SumRejectsEmptyAndNull) {
  EXPECT_FALSE(ProductCostFunction::Sum({}).ok());
  EXPECT_FALSE(ProductCostFunction::Sum({nullptr}).ok());
}

TEST(ProductCostTest, WeightedSumAppliesWeights) {
  auto lin = std::make_shared<const LinearCost>(1.0, 1.0);
  Result<ProductCostFunction> f =
      ProductCostFunction::WeightedSum({lin, lin}, {2.0, 0.5});
  ASSERT_TRUE(f.ok());
  // Cost(x) = 2*(1-x0) + 0.5*(1-x1)
  EXPECT_DOUBLE_EQ(f->Cost(std::vector<double>{0.0, 0.0}), 2.5);
  EXPECT_DOUBLE_EQ(f->Cost(std::vector<double>{1.0, 0.0}), 0.5);
  EXPECT_DOUBLE_EQ(f->AttributeCost(0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(f->AttributeCost(1, 0.5), 0.25);
}

TEST(ProductCostTest, WeightedSumRejectsBadWeights) {
  auto lin = std::make_shared<const LinearCost>(1.0, 1.0);
  EXPECT_FALSE(ProductCostFunction::WeightedSum({lin, lin}, {1.0}).ok());
  EXPECT_FALSE(ProductCostFunction::WeightedSum({lin, lin}, {1.0, -1.0}).ok());
}

TEST(ProductCostTest, UpgradeCostIsDelta) {
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(2, 0.001);
  const std::vector<double> original = {0.5, 0.5};
  const std::vector<double> upgraded = {0.3, 0.5};
  EXPECT_NEAR(f.UpgradeCost(original.data(), upgraded.data()),
              f.Cost(upgraded) - f.Cost(original), 1e-12);
  EXPECT_GT(f.UpgradeCost(original.data(), upgraded.data()), 0.0);
}

TEST(ProductCostTest, MonotonicityHoldsForReciprocalSum) {
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(4, 0.001);
  EXPECT_TRUE(f.CheckMonotonicity(0.0, 2.0, 2048).ok());
}

// A deliberately non-monotonic attribute cost: cheaper as the value gets
// *better*, violating the paper's assumption.
class IncreasingCost final : public AttributeCostFunction {
 public:
  double Cost(double value) const override { return value; }
  std::string name() const override { return "increasing"; }
};

TEST(ProductCostTest, MonotonicityCheckCatchesViolations) {
  auto bad = std::make_shared<const IncreasingCost>();
  Result<ProductCostFunction> f = ProductCostFunction::Sum({bad, bad});
  ASSERT_TRUE(f.ok());
  Status s = f->CheckMonotonicity(0.0, 1.0, 2048);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(ProductCostTest, MonotonicityCheckValidatesRange) {
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(2);
  EXPECT_FALSE(f.CheckMonotonicity(1.0, 1.0).ok());
  EXPECT_FALSE(f.CheckMonotonicity(2.0, 1.0).ok());
}

TEST(ProductCostTest, DominanceImpliesHigherCost) {
  // The core invariant the algorithms rely on, spot-checked directly.
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(3, 0.001);
  const std::vector<double> better = {0.1, 0.4, 0.2};
  const std::vector<double> worse = {0.2, 0.4, 0.3};
  EXPECT_GT(f.Cost(better), f.Cost(worse));
}

}  // namespace
}  // namespace skyup
