#include "core/probing.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/dominance.h"
#include "data/generator.h"

namespace skyup {
namespace {

struct Fixture {
  Dataset competitors{2};
  Dataset products{2};
  ProductCostFunction cost_fn = ProductCostFunction::ReciprocalSum(2, 1e-3);
};

// A tiny scene with hand-checkable answers:
//   competitors: (0.1, 0.5), (0.5, 0.1), (0.3, 0.3)
//   products:    A=(0.6, 0.6) dominated by all three,
//                B=(0.05, 0.9) undominated (best x),
//                C=(2.0, 2.0) dominated by all three, far away.
Fixture MakeScene() {
  Fixture fx;
  fx.competitors.Add({0.1, 0.5});
  fx.competitors.Add({0.5, 0.1});
  fx.competitors.Add({0.3, 0.3});
  fx.products.Add({0.6, 0.6});   // A, id 0
  fx.products.Add({0.05, 0.9});  // B, id 1
  fx.products.Add({2.0, 2.0});   // C, id 2
  return fx;
}

TEST(ProbingTest, UndominatedProductCostsZeroAndRanksFirst) {
  Fixture fx = MakeScene();
  Result<RTree> rp = RTree::BulkLoad(fx.competitors);
  ASSERT_TRUE(rp.ok());

  for (auto algo : {&TopKBasicProbing, &TopKImprovedProbing}) {
    Result<std::vector<UpgradeResult>> top =
        (*algo)(rp.value(), fx.products, fx.cost_fn, 3, 1e-6, nullptr,
                nullptr);
    ASSERT_TRUE(top.ok()) << top.status().ToString();
    ASSERT_EQ(top->size(), 3u);
    EXPECT_EQ((*top)[0].product_id, 1);
    EXPECT_DOUBLE_EQ((*top)[0].cost, 0.0);
    EXPECT_TRUE((*top)[0].already_competitive);
    // A is nearer to the skyline than C, so cheaper to upgrade.
    EXPECT_EQ((*top)[1].product_id, 0);
    EXPECT_EQ((*top)[2].product_id, 2);
    EXPECT_LT((*top)[1].cost, (*top)[2].cost);
  }
}

TEST(ProbingTest, ResultsSortedByCost) {
  Result<Dataset> p =
      GenerateCompetitors(500, 3, Distribution::kIndependent, 3);
  Result<Dataset> t = GenerateProducts(80, 3, Distribution::kIndependent, 4);
  ASSERT_TRUE(p.ok() && t.ok());
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(3, 1e-3);
  Result<RTree> rp = RTree::BulkLoad(*p);
  ASSERT_TRUE(rp.ok());

  Result<std::vector<UpgradeResult>> top =
      TopKImprovedProbing(rp.value(), *t, f, 20);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 20u);
  for (size_t i = 1; i < top->size(); ++i) {
    EXPECT_LE((*top)[i - 1].cost, (*top)[i].cost);
  }
}

TEST(ProbingTest, KLargerThanTReturnsAll) {
  Fixture fx = MakeScene();
  Result<RTree> rp = RTree::BulkLoad(fx.competitors);
  ASSERT_TRUE(rp.ok());
  Result<std::vector<UpgradeResult>> top =
      TopKBasicProbing(rp.value(), fx.products, fx.cost_fn, 100);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->size(), 3u);
}

TEST(ProbingTest, RejectsInvalidArguments) {
  Fixture fx = MakeScene();
  Result<RTree> rp = RTree::BulkLoad(fx.competitors);
  ASSERT_TRUE(rp.ok());

  EXPECT_FALSE(
      TopKBasicProbing(rp.value(), fx.products, fx.cost_fn, 0).ok());
  EXPECT_FALSE(
      TopKBasicProbing(rp.value(), fx.products, fx.cost_fn, 1, -1.0).ok());

  Dataset wrong_dims(3);
  wrong_dims.Add({1, 2, 3});
  EXPECT_FALSE(
      TopKBasicProbing(rp.value(), wrong_dims, fx.cost_fn, 1).ok());

  Dataset empty(2);
  EXPECT_FALSE(TopKBasicProbing(rp.value(), empty, fx.cost_fn, 1).ok());

  ProductCostFunction f3 = ProductCostFunction::ReciprocalSum(3);
  EXPECT_FALSE(TopKBasicProbing(rp.value(), fx.products, f3, 1).ok());
}

TEST(ProbingTest, UpgradedResultsAreUndominated) {
  Result<Dataset> p =
      GenerateCompetitors(800, 2, Distribution::kAntiCorrelated, 11);
  Result<Dataset> t = GenerateProducts(50, 2, Distribution::kIndependent, 12);
  ASSERT_TRUE(p.ok() && t.ok());
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(2, 1e-3);
  Result<RTree> rp = RTree::BulkLoad(*p);
  ASSERT_TRUE(rp.ok());

  Result<std::vector<UpgradeResult>> top =
      TopKImprovedProbing(rp.value(), *t, f, 10);
  ASSERT_TRUE(top.ok());
  for (const UpgradeResult& r : *top) {
    for (size_t i = 0; i < p->size(); ++i) {
      ASSERT_FALSE(Dominates(p->data(static_cast<PointId>(i)),
                             r.upgraded.data(), 2))
          << "upgraded product " << r.product_id << " still dominated";
    }
  }
}

TEST(ProbingTest, BasicAndImprovedAgreeWithBruteForce) {
  for (auto distribution : {Distribution::kIndependent,
                            Distribution::kAntiCorrelated}) {
    Result<Dataset> p = GenerateCompetitors(600, 3, distribution, 21);
    Result<Dataset> t = GenerateProducts(60, 3, distribution, 22);
    ASSERT_TRUE(p.ok() && t.ok());
    ProductCostFunction f = ProductCostFunction::ReciprocalSum(3, 1e-3);
    Result<RTree> rp = RTree::BulkLoad(*p);
    ASSERT_TRUE(rp.ok());

    Result<std::vector<UpgradeResult>> oracle =
        TopKBruteForce(*p, *t, f, 15);
    Result<std::vector<UpgradeResult>> basic =
        TopKBasicProbing(rp.value(), *t, f, 15);
    Result<std::vector<UpgradeResult>> improved =
        TopKImprovedProbing(rp.value(), *t, f, 15);
    ASSERT_TRUE(oracle.ok() && basic.ok() && improved.ok());
    ASSERT_EQ(oracle->size(), basic->size());
    ASSERT_EQ(oracle->size(), improved->size());
    for (size_t i = 0; i < oracle->size(); ++i) {
      EXPECT_EQ((*oracle)[i].product_id, (*basic)[i].product_id);
      EXPECT_NEAR((*oracle)[i].cost, (*basic)[i].cost, 1e-9);
      EXPECT_EQ((*oracle)[i].product_id, (*improved)[i].product_id);
      EXPECT_NEAR((*oracle)[i].cost, (*improved)[i].cost, 1e-9);
    }
  }
}

TEST(ProbingTest, StatsShowImprovedFetchesFewerDominators) {
  Result<Dataset> p =
      GenerateCompetitors(3000, 2, Distribution::kIndependent, 31);
  Result<Dataset> t = GenerateProducts(30, 2, Distribution::kIndependent, 32);
  ASSERT_TRUE(p.ok() && t.ok());
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(2, 1e-3);
  Result<RTree> rp = RTree::BulkLoad(*p);
  ASSERT_TRUE(rp.ok());

  ExecStats basic_stats, improved_stats;
  ASSERT_TRUE(
      TopKBasicProbing(rp.value(), *t, f, 5, 1e-6, &basic_stats).ok());
  ASSERT_TRUE(
      TopKImprovedProbing(rp.value(), *t, f, 5, 1e-6, &improved_stats).ok());
  // Products in (1,2]^2 are dominated by nearly all 3000 competitors; the
  // improved probe only materializes the dominator *skyline*.
  EXPECT_GT(basic_stats.dominators_fetched,
            10 * improved_stats.dominators_fetched);
  EXPECT_EQ(basic_stats.products_processed, 30u);
  EXPECT_EQ(improved_stats.products_processed, 30u);
}

}  // namespace
}  // namespace skyup
