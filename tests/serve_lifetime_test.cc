// Snapshot-lifetime stress under concurrency (built for the TSan CI leg
// via the "serve" ctest label): reader threads continuously acquire views
// and query them while a writer thread churns updates and a rebuilder
// publishes fresh snapshots. Asserts that every query observes exactly one
// consistent epoch, that superseded snapshots stay fully usable while
// held (no use-after-free for TSan/ASan to find), and that epochs only
// move forward.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "serve/live_table.h"
#include "serve/query.h"
#include "serve/rebuilder.h"
#include "serve/server.h"
#include "util/random.h"

namespace skyup {
namespace {

TEST(SnapshotLifetimeTest, ReadersHoldSnapshotsAcrossRebuildPublishes) {
  LiveTableOptions table_options;
  table_options.dims = 3;
  Result<std::unique_ptr<LiveTable>> table = LiveTable::Create(table_options);
  ASSERT_TRUE(table.ok());
  LiveTable& t = **table;
  const ProductCostFunction cost_fn =
      ProductCostFunction::ReciprocalSum(3, 1e-3);

  // Seed some state so first views have work to do.
  {
    Rng rng(7);
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(
          t.InsertCompetitor(
               {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()})
              .ok());
    }
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(
          t.InsertProduct(
               {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()})
              .ok());
    }
  }

  RebuildPolicy policy;
  policy.threshold_ops = 16;
  policy.poll_interval_seconds = 0.001;
  Rebuilder rebuilder(&t, policy);
  rebuilder.Start();

  constexpr int kReaders = 4;
  constexpr uint64_t kTargetPublishes = 3;
  std::atomic<bool> stop{false};
  std::atomic<int> reader_failures{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(1000 + static_cast<uint64_t>(r));
      uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ReadView view = t.AcquireView();
        const uint64_t epoch_before = view.epoch();
        // Epochs a single reader observes never move backwards.
        if (epoch_before < last_epoch) {
          ++reader_failures;
          return;
        }
        last_epoch = epoch_before;
        const size_t k = 1 + static_cast<size_t>(rng.NextUint64(5));
        Result<std::vector<UpgradeResult>> top =
            TopKOverlay(view, cost_fn, k);
        if (!top.ok()) {
          ++reader_failures;
          return;
        }
        // The view pins exactly one epoch for the whole query, no matter
        // how many publishes landed meanwhile.
        if (view.epoch() != epoch_before) {
          ++reader_failures;
          return;
        }
      }
    });
  }

  // One long-lived holder keeps the *initial* snapshot alive across every
  // publish; its data must stay intact (UAF would trip ASan/TSan and the
  // size check below).
  ReadView pinned = t.AcquireView();
  const uint64_t pinned_epoch = pinned.epoch();
  const size_t pinned_rows = pinned.snapshot->competitors().size();

  // Writer churn on this thread until the rebuilder has published at
  // least kTargetPublishes times. The writer throttles on backlog —
  // otherwise it outruns the rebuilder, every merge swallows an enormous
  // log, and overlay queries slow to a crawl before 3 publishes land.
  Rng rng(99);
  uint64_t writes = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (rebuilder.rebuilds_published() < kTargetPublishes &&
         std::chrono::steady_clock::now() < deadline) {
    ASSERT_TRUE(
        t.InsertCompetitor(
             {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()})
            .ok());
    ++writes;
    if (writes % 16 == 0) rebuilder.Nudge();
    while (t.delta_backlog() > 64 &&
           rebuilder.rebuilds_published() < kTargetPublishes &&
           std::chrono::steady_clock::now() < deadline) {
      rebuilder.Nudge();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_GE(rebuilder.rebuilds_published(), kTargetPublishes);

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();
  rebuilder.Stop();

  EXPECT_EQ(reader_failures.load(), 0);
  EXPECT_TRUE(rebuilder.last_error().ok())
      << rebuilder.last_error().ToString();

  // The pinned view still answers queries against its original epoch.
  EXPECT_EQ(pinned.epoch(), pinned_epoch);
  EXPECT_EQ(pinned.snapshot->competitors().size(), pinned_rows);
  Result<std::vector<UpgradeResult>> pinned_top =
      TopKOverlay(pinned, cost_fn, 3);
  ASSERT_TRUE(pinned_top.ok());
  EXPECT_LT(pinned_epoch, t.epoch());
}

TEST(SnapshotLifetimeTest, ServerSubmitStormAcrossRebuilds) {
  // End-to-end variant through the Server: concurrent Submit() traffic
  // while updates stream in and the background rebuilder publishes.
  ServerOptions options;
  options.dims = 2;
  options.query_threads = 3;
  options.max_pending = 256;
  options.rebuild_threshold_ops = 32;
  options.background_rebuild = true;
  Result<std::unique_ptr<Server>> server = Server::Create(
      ProductCostFunction::ReciprocalSum(2, 1e-3), options);
  ASSERT_TRUE(server.ok());
  Server& s = **server;

  Rng rng(5);
  std::vector<std::future<QueryResponse>> pending;
  for (int round = 0; round < 400; ++round) {
    ASSERT_TRUE(
        s.InsertCompetitor({rng.NextDouble(), rng.NextDouble()}).ok());
    if (round % 3 == 0) {
      ASSERT_TRUE(
          s.InsertProduct({rng.NextDouble(), rng.NextDouble()}).ok());
    }
    QueryRequest request;
    request.k = 2;
    pending.push_back(s.Submit(request));
    if (pending.size() >= 64) {
      for (std::future<QueryResponse>& f : pending) {
        QueryResponse response = f.get();
        // Admission may reject under load; anything else must succeed.
        ASSERT_TRUE(response.status.ok() ||
                    response.status.code() ==
                        StatusCode::kResourceExhausted)
            << response.status.ToString();
      }
      pending.clear();
    }
  }
  for (std::future<QueryResponse>& f : pending) f.get();

  ServeStats stats = s.stats();
  EXPECT_GT(stats.queries_executed, 0u);
  EXPECT_GT(stats.rebuilds_published, 0u);
}

}  // namespace
}  // namespace skyup
