#include "cli/cli.h"

#include <gtest/gtest.h>

#include "obs/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace skyup {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult RunCli(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  const int code = cli::Run(args, out, err);
  return {code, out.str(), err.str()};
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/skyup_cli_" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  f << content;
}

TEST(CliTest, NoArgsPrintsUsage) {
  CliResult r = RunCli({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(CliTest, HelpReturnsZero) {
  CliResult r = RunCli({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails) {
  CliResult r = RunCli({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(CliTest, UnknownFlagFails) {
  CliResult r = RunCli({"wine", "--out=x", "--bogus=1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown flag --bogus"), std::string::npos);
}

TEST(CliTest, GenerateRequiresFlags) {
  CliResult r = RunCli({"generate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("requires"), std::string::npos);
}

TEST(CliTest, GenerateWritesCsv) {
  const std::string path = TempPath("gen.csv");
  CliResult r = RunCli({"generate", "--out=" + path, "--count=50",
                        "--dims=3", "--dist=anti", "--seed=5"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("wrote 50 x 3"), std::string::npos);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 50u);
  std::remove(path.c_str());
}

TEST(CliTest, GenerateRejectsBadDistribution) {
  CliResult r = RunCli({"generate", "--out=x", "--count=5", "--dims=2",
                        "--dist=zipf"});
  EXPECT_EQ(r.code, 2);
}

TEST(CliTest, SkylineOnTinyFile) {
  const std::string path = TempPath("sky.csv");
  WriteFile(path, "1,4\n2,3\n3,5\n2,2\n");
  for (const char* algo : {"bnl", "sfs", "bbs", "dnc"}) {
    CliResult r = RunCli({"skyline", "--in=" + path,
                          std::string("--algo=") + algo});
    ASSERT_EQ(r.code, 0) << algo << ": " << r.err;
    // Skyline rows: (1,4) and (2,2); (2,3) is dominated by (2,2).
    EXPECT_NE(r.out.find("2 members"), std::string::npos) << algo;
    EXPECT_NE(r.out.find("\n0\n"), std::string::npos) << algo;
    EXPECT_NE(r.out.find("\n3\n"), std::string::npos) << algo;
  }
  std::remove(path.c_str());
}

TEST(CliTest, SkylineMissingFileIsRuntimeError) {
  CliResult r = RunCli({"skyline", "--in=/nonexistent/nope.csv"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST(CliTest, TopKEndToEnd) {
  const std::string p_path = TempPath("P.csv");
  const std::string t_path = TempPath("T.csv");
  WriteFile(p_path, "0.1,0.5\n0.5,0.1\n0.3,0.3\n");
  WriteFile(t_path, "0.6,0.6\n0.05,0.9\n2.0,2.0\n");

  for (const char* algorithm : {"join", "improved", "basic", "brute"}) {
    CliResult r = RunCli({"topk", "--competitors=" + p_path,
                          "--products=" + t_path, "--k=3",
                          std::string("--algorithm=") + algorithm});
    ASSERT_EQ(r.code, 0) << algorithm << ": " << r.err;
    // Product row 1 is undominated: rank 1, cost 0, competitive flag 1.
    EXPECT_NE(r.out.find("1,1,0,1"), std::string::npos)
        << algorithm << " output:\n"
        << r.out;
  }

  // Lower-bound and paper-mode flags parse.
  for (const char* lb : {"nlb", "clb", "alb"}) {
    CliResult r = RunCli({"topk", "--competitors=" + p_path,
                          "--products=" + t_path, std::string("--lb=") + lb,
                          "--paper-bounds"});
    EXPECT_EQ(r.code, 0) << lb << ": " << r.err;
  }

  std::remove(p_path.c_str());
  std::remove(t_path.c_str());
}

TEST(CliTest, TopKStatsFlagPrintsCounters) {
  const std::string p_path = TempPath("Pstats.csv");
  const std::string t_path = TempPath("Tstats.csv");
  WriteFile(p_path, "0.1,0.5\n0.5,0.1\n0.3,0.3\n0.2,0.2\n");
  WriteFile(t_path, "0.6,0.6\n0.05,0.9\n2.0,2.0\n");

  CliResult r = RunCli({"topk", "--competitors=" + p_path,
                        "--products=" + t_path, "--k=3",
                        "--algorithm=improved", "--stats"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("# stats: kernel="), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("flat_index=on"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("heap_pops="), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("block_kernel_calls="), std::string::npos) << r.out;

  // Without --stats the counter lines stay away.
  CliResult quiet = RunCli({"topk", "--competitors=" + p_path,
                            "--products=" + t_path, "--k=3",
                            "--algorithm=improved"});
  ASSERT_EQ(quiet.code, 0) << quiet.err;
  EXPECT_EQ(quiet.out.find("# stats:"), std::string::npos) << quiet.out;

  // --flat-index=off runs the pointer-tree scalar path: zero kernel calls,
  // identical result rows.
  CliResult off = RunCli({"topk", "--competitors=" + p_path,
                          "--products=" + t_path, "--k=3",
                          "--algorithm=improved", "--flat-index=off",
                          "--stats"});
  ASSERT_EQ(off.code, 0) << off.err;
  EXPECT_NE(off.out.find("flat_index=off"), std::string::npos) << off.out;
  EXPECT_NE(off.out.find("block_kernel_calls=0"), std::string::npos)
      << off.out;

  // JSON output must stay pure JSON; counters go to the diagnostic stream.
  CliResult json = RunCli({"topk", "--competitors=" + p_path,
                           "--products=" + t_path, "--k=3",
                           "--algorithm=improved", "--format=json",
                           "--stats"});
  ASSERT_EQ(json.code, 0) << json.err;
  EXPECT_EQ(json.out.find("# stats:"), std::string::npos) << json.out;
  EXPECT_NE(json.err.find("# stats:"), std::string::npos) << json.err;

  CliResult bad = RunCli({"topk", "--competitors=" + p_path,
                          "--products=" + t_path, "--flat-index=maybe"});
  EXPECT_EQ(bad.code, 2);

  std::remove(p_path.c_str());
  std::remove(t_path.c_str());
}

TEST(CliTest, TopKObservabilityFlags) {
  const std::string p_path = TempPath("Pobs.csv");
  const std::string t_path = TempPath("Tobs.csv");
  const std::string trace_path = TempPath("trace.json");
  const std::string prom_path = TempPath("metrics.prom");
  const std::string json_path = TempPath("metrics.json");
  WriteFile(p_path, "0.1,0.5\n0.5,0.1\n0.3,0.3\n0.2,0.2\n");
  WriteFile(t_path, "0.6,0.6\n0.05,0.9\n2.0,2.0\n");

  CliResult r = RunCli({"topk", "--competitors=" + p_path,
                        "--products=" + t_path, "--k=3",
                        "--algorithm=improved", "--profile",
                        "--trace-out=" + trace_path,
                        "--metrics-out=" + prom_path});
  ASSERT_EQ(r.code, 0) << r.err;
  // The profile table goes to the diagnostic stream, not stdout.
  EXPECT_NE(r.err.find("phase profile"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("probe"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("upgrade"), std::string::npos) << r.err;
  EXPECT_EQ(r.out.find("phase profile"), std::string::npos) << r.out;

  // The trace file is valid Chrome trace JSON whenever the
  // instrumentation is compiled in; compiled out it's an empty shell
  // plus a warning on the diagnostic stream.
  std::ifstream trace_in(trace_path);
  ASSERT_TRUE(trace_in.good());
  std::stringstream trace_buf;
  trace_buf << trace_in.rdbuf();
  const std::string trace = trace_buf.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  if (kTraceLevel >= 1) {
    EXPECT_NE(trace.find("\"cli/topk\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  } else {
    EXPECT_NE(r.err.find("compiled out"), std::string::npos) << r.err;
  }
  EXPECT_NE(r.err.find("# trace:"), std::string::npos) << r.err;

  // Prometheus text exposition: counters and phase gauges present.
  std::ifstream prom_in(prom_path);
  ASSERT_TRUE(prom_in.good());
  std::stringstream prom_buf;
  prom_buf << prom_in.rdbuf();
  const std::string prom = prom_buf.str();
  EXPECT_NE(prom.find("# TYPE skyup_heap_pops_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("skyup_phase_probe_seconds"), std::string::npos);
  EXPECT_NE(prom.find("skyup_query_wall_seconds"), std::string::npos);
  EXPECT_NE(prom.find("skyup_probe_latency_seconds_bucket"),
            std::string::npos);

  // A .json suffix flips the exporter to JSON.
  CliResult j = RunCli({"topk", "--competitors=" + p_path,
                        "--products=" + t_path, "--k=3",
                        "--algorithm=join", "--metrics-out=" + json_path});
  ASSERT_EQ(j.code, 0) << j.err;
  std::ifstream json_in(json_path);
  ASSERT_TRUE(json_in.good());
  std::stringstream json_buf;
  json_buf << json_in.rdbuf();
  const std::string json = json_buf.str();
  EXPECT_EQ(json.find("# TYPE"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"skyup_heap_pops_total\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);

  // An unwritable metrics path is a runtime error, not a silent skip.
  CliResult bad = RunCli({"topk", "--competitors=" + p_path,
                          "--products=" + t_path, "--k=3",
                          "--metrics-out=/nonexistent-dir/m.prom"});
  EXPECT_EQ(bad.code, 1);

  std::remove(p_path.c_str());
  std::remove(t_path.c_str());
  std::remove(trace_path.c_str());
  std::remove(prom_path.c_str());
  std::remove(json_path.c_str());
}

TEST(CliTest, TopKRejectsMismatchedDims) {
  const std::string p_path = TempPath("P2.csv");
  const std::string t_path = TempPath("T2.csv");
  WriteFile(p_path, "0.1,0.5\n");
  WriteFile(t_path, "0.6,0.6,0.6\n");
  CliResult r = RunCli(
      {"topk", "--competitors=" + p_path, "--products=" + t_path});
  EXPECT_EQ(r.code, 1);
  std::remove(p_path.c_str());
  std::remove(t_path.c_str());
}

TEST(CliTest, WineWritesTable) {
  const std::string path = TempPath("wine.csv");
  CliResult r = RunCli({"wine", "--out=" + path, "--count=100"});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 100u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace skyup
