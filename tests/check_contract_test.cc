// Tests for the contract layer itself (util/check.h): that each macro is
// compiled in or out exactly as its level promises (side-effect counters
// prove conditions of elided checks are never evaluated), that active
// checks die with the condition text in the diagnostic, and that the
// paranoid hooks catch a deliberately corrupted FlatRTree arena which the
// lower levels sail past benignly.
//
// The same source adapts to whatever -DSKYUP_CHECK_LEVEL the build uses by
// branching on skyup::kCheckLevel, so every CI level runs the whole file.

#include <gtest/gtest.h>

#include <vector>

#include "data/generator.h"
#include "flat_rtree_test_peer.h"
#include "rtree/flat_rtree.h"
#include "skyline/dominating_skyline.h"
#include "skyline/skyline.h"
#include "util/check.h"
#include "util/status.h"

namespace skyup {
namespace {

static_assert(kCheckLevel >= 0 && kCheckLevel <= 2,
              "check.h must reject other levels at preprocessing time");

// SKYUP_DCHECK's activation depends on NDEBUG as well as the level.
constexpr bool kDcheckActive =
#ifdef NDEBUG
    kCheckLevel >= 2;
#else
    kCheckLevel >= 1;
#endif

TEST(CheckContractTest, ConditionsEvaluateOnlyWhenLevelCompilesThemIn) {
  int check_evals = 0;
  int dcheck_evals = 0;
  int paranoid_evals = 0;
  SKYUP_CHECK((++check_evals, true)) << "never printed";
  SKYUP_DCHECK((++dcheck_evals, true)) << "never printed";
  SKYUP_PARANOID((++paranoid_evals, true)) << "never printed";
  EXPECT_EQ(check_evals, kCheckLevel >= 1 ? 1 : 0);
  EXPECT_EQ(dcheck_evals, kDcheckActive ? 1 : 0);
  EXPECT_EQ(paranoid_evals, kCheckLevel >= 2 ? 1 : 0);
}

TEST(CheckContractTest, StatusFormsEvaluateOnlyWhenActive) {
  int ok_evals = 0;
  int paranoid_ok_evals = 0;
  const auto ok = [&ok_evals] {
    ++ok_evals;
    return Status::OK();
  };
  const auto paranoid_ok = [&paranoid_ok_evals] {
    ++paranoid_ok_evals;
    return Status::OK();
  };
  SKYUP_CHECK_OK(ok());
  SKYUP_PARANOID_OK(paranoid_ok());
  EXPECT_EQ(ok_evals, kCheckLevel >= 1 ? 1 : 0);
  EXPECT_EQ(paranoid_ok_evals, kCheckLevel >= 2 ? 1 : 0);
}

TEST(CheckContractTest, ElidedChecksSwallowStreamedDiagnostics) {
  // At level off even a false condition must neither abort nor evaluate
  // the streamed operands.
  if (kCheckLevel == 0) {
    int stream_evals = 0;
    SKYUP_CHECK(false) << "unreached " << ++stream_evals;
    SKYUP_PARANOID(false) << "unreached " << ++stream_evals;
    EXPECT_EQ(stream_evals, 0);
  }
}

TEST(CheckContractDeathTest, ActiveCheckDiesWithConditionAndDiagnostic) {
  if (kCheckLevel >= 1) {
    EXPECT_DEATH(SKYUP_CHECK(1 + 1 == 3) << "extra context",
                 "check failed: 1 \\+ 1 == 3.*extra context");
    EXPECT_DEATH(SKYUP_CHECK_OK(Status::Internal("wired through")),
                 "wired through");
  }
  if (kCheckLevel >= 2) {
    EXPECT_DEATH(SKYUP_PARANOID(false) << "expensive check tripped",
                 "check failed: false.*expensive check tripped");
  }
}

// The acceptance scenario for the whole layer: damage a FlatRTree arena
// through the test peer, then run a traversal that trusts the arena.
// Paranoid builds must refuse (entry-point Validate aborts with the named
// invariant); cheap/off builds — which skip the O(n d) validation by
// design — must still complete benignly, because this particular
// corruption (the SoA coordinate mirror) is invisible to the AoS lanes the
// flat BBS traversal reads.
TEST(CheckContractDeathTest, ParanoidCatchesCorruptedFlatArena) {
  Result<Dataset> data =
      GenerateCompetitors(128, 3, Distribution::kIndependent, 21);
  ASSERT_TRUE(data.ok());
  Result<FlatRTree> built = FlatRTree::BulkLoad(data.value());
  ASSERT_TRUE(built.ok());
  FlatRTree flat = std::move(built).value();
  const std::vector<PointId> expected = SkylineBbs(flat);

  ASSERT_FALSE(FlatRTreeTestPeer::pt_soa(&flat).empty());
  FlatRTreeTestPeer::pt_soa(&flat)[0] -= 0.5;
  ASSERT_FALSE(flat.Validate().ok());

  if (kCheckLevel >= 2) {
    EXPECT_DEATH(SkylineBbs(flat), "stale leaf coordinates at slot 0");
  } else {
    EXPECT_EQ(SkylineBbs(flat), expected);
  }
}

}  // namespace
}  // namespace skyup
