#include "obs/trace.h"

#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

namespace skyup {
namespace {

// Every test clears global trace state on entry; the suite must pass at
// all three compile levels (SKYUP_TRACE_LEVEL=off|phase|verbose), so
// span-count expectations branch on kTraceLevel.

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DisableTracing();
    ClearTrace();
  }
  void TearDown() override {
    DisableTracing();
    ClearTrace();
  }
};

TEST_F(TraceTest, DisabledByDefaultAndToggleable) {
  EXPECT_FALSE(TraceEnabled());
  EnableTracing();
  // With tracing compiled out entirely the runtime gate still flips; only
  // the spans are gone.
  EXPECT_TRUE(TraceEnabled());
  DisableTracing();
  EXPECT_FALSE(TraceEnabled());
}

TEST_F(TraceTest, SpansRecordOnlyWhileEnabled) {
  { SKYUP_TRACE_SPAN("test/before-enable"); }
  EXPECT_EQ(GetTraceStats().events_buffered, 0u);

  EnableTracing();
  { SKYUP_TRACE_SPAN("test/while-enabled"); }
  DisableTracing();
  { SKYUP_TRACE_SPAN("test/after-disable"); }

  const TraceStats stats = GetTraceStats();
  if (kTraceLevel >= 1) {
    EXPECT_EQ(stats.events_buffered, 1u);
  } else {
    EXPECT_EQ(stats.events_buffered, 0u);
  }
}

TEST_F(TraceTest, VerboseSpansNeedVerboseLevel) {
  EnableTracing();
  { SKYUP_TRACE_SPAN_VERBOSE("test/verbose"); }
  DisableTracing();
  const TraceStats stats = GetTraceStats();
  if (kTraceLevel >= 2) {
    EXPECT_EQ(stats.events_buffered, 1u);
  } else {
    EXPECT_EQ(stats.events_buffered, 0u);
  }
}

TEST_F(TraceTest, EnableClearsEarlierSpans) {
  EnableTracing();
  { SKYUP_TRACE_SPAN("test/first-session"); }
  DisableTracing();
  EnableTracing();  // a fresh session starts empty
  DisableTracing();
  EXPECT_EQ(GetTraceStats().events_buffered, 0u);
}

TEST_F(TraceTest, ChromeExportIsWellFormed) {
  EnableTracing();
  {
    SKYUP_TRACE_SPAN("test/outer");
    SKYUP_TRACE_SPAN("test/inner");
  }
  DisableTracing();

  std::ostringstream out;
  WriteChromeTrace(out);
  const std::string json = out.str();
  // Structural markers every Chrome/Perfetto loader needs.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  if (kTraceLevel >= 1) {
    EXPECT_NE(json.find("\"test/outer\""), std::string::npos);
    EXPECT_NE(json.find("\"test/inner\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  } else {
    EXPECT_EQ(json.find("\"ph\": \"X\""), std::string::npos);
  }
}

TEST_F(TraceTest, ThreadsGetTheirOwnBuffersAndNames) {
  EnableTracing();
  {
    SKYUP_TRACE_SPAN("test/main-thread");
  }
  std::thread worker([] {
    SetTraceThreadName("worker thread");
    SKYUP_TRACE_SPAN("test/worker-thread");
  });
  worker.join();
  DisableTracing();

  const TraceStats stats = GetTraceStats();
  std::ostringstream out;
  WriteChromeTrace(out);
  const std::string json = out.str();
  if (kTraceLevel >= 1) {
    EXPECT_EQ(stats.events_buffered, 2u);
    EXPECT_EQ(stats.threads, 2u);
    // The worker's buffer (and so its spans) survive the thread's exit.
    EXPECT_NE(json.find("\"test/worker-thread\""), std::string::npos);
    EXPECT_NE(json.find("\"worker thread\""), std::string::npos);
  }
}

TEST_F(TraceTest, FileExportRejectsUnwritablePath) {
  const Status status =
      WriteChromeTraceFile("/nonexistent-dir/trace.json");
  EXPECT_FALSE(status.ok());
}

TEST_F(TraceTest, LevelNameMatchesCompiledLevel) {
  const std::string name = TraceLevelName();
  if (kTraceLevel == 0) {
    EXPECT_EQ(name, "off");
  } else if (kTraceLevel == 1) {
    EXPECT_EQ(name, "phase");
  } else {
    EXPECT_EQ(name, "verbose");
  }
}

TEST_F(TraceTest, DisabledSpanDoesNotTouchBuffers) {
  // The level-compiled-in but runtime-disabled path: spans are one atomic
  // load and must leave no trace state behind.
  for (int i = 0; i < 1000; ++i) {
    SKYUP_TRACE_SPAN("test/disabled-hot-loop");
  }
  const TraceStats stats = GetTraceStats();
  EXPECT_EQ(stats.events_buffered, 0u);
  EXPECT_EQ(stats.events_dropped, 0u);
}

}  // namespace
}  // namespace skyup
