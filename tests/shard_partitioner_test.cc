// Tests for the STR-tile shard partitioner (serve/shard/partitioner.h):
// the bootstrap phase, the fit trigger, determinism as a function of the
// op stream, range/validity of routes for awkward shard counts, and the
// load-balance property on uniform data. Placement is pure load
// balancing (queries probe every shard), so these tests pin the
// *routing function*, not any correctness-by-placement claim.

#include "serve/shard/partitioner.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace skyup {
namespace {

std::vector<double> Pt(double x, double y) { return {x, y}; }

TEST(ShardPartitionerTest, SingleShardIsFittedImmediately) {
  ShardPartitionerOptions options;
  options.dims = 2;
  options.shards = 1;
  ShardPartitioner part(options);
  EXPECT_TRUE(part.fitted());
  EXPECT_EQ(part.RouteCompetitor(Pt(0.1, 0.9)), 0u);
  EXPECT_EQ(part.RouteProduct(Pt(123.0, -7.0)), 0u);
}

TEST(ShardPartitionerTest, BootstrapRoutesToShardZeroUntilFit) {
  ShardPartitionerOptions options;
  options.dims = 2;
  options.shards = 4;
  options.fit_after = 8;
  ShardPartitioner part(options);
  Rng rng(7);
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(part.fitted());
    EXPECT_EQ(part.RouteCompetitor(
                  Pt(rng.NextDouble(0, 1), rng.NextDouble(0, 1))),
              0u);
    // Products never feed the fit buffer and ride shard 0 meanwhile.
    EXPECT_EQ(part.RouteProduct(Pt(0.5, 0.5)), 0u);
  }
  part.RouteCompetitor(Pt(0.5, 0.5));  // 8th competitor triggers the fit
  EXPECT_TRUE(part.fitted());
}

TEST(ShardPartitionerTest, RoutesStayInRangeForAwkwardShardCounts) {
  for (const size_t shards : {2u, 3u, 5u, 7u, 9u}) {
    ShardPartitionerOptions options;
    options.dims = 3;
    options.shards = shards;
    options.fit_after = 16;
    ShardPartitioner part(options);
    Rng rng(shards);
    for (int i = 0; i < 400; ++i) {
      std::vector<double> p = {rng.NextDouble(0, 1), rng.NextDouble(0, 1),
                               rng.NextDouble(0, 1)};
      EXPECT_LT(part.RouteCompetitor(p), shards);
      EXPECT_LT(part.RouteProduct(p), shards);
    }
    EXPECT_TRUE(part.fitted());
  }
}

TEST(ShardPartitionerTest, MoreShardsThanFitPointsStillRoutesInRange) {
  // Fit with fewer buffered points than shards: some slabs are empty and
  // degrade to "everything right" — imbalance, never out-of-range.
  ShardPartitionerOptions options;
  options.dims = 2;
  options.shards = 9;
  options.fit_after = 3;
  ShardPartitioner part(options);
  part.RouteCompetitor(Pt(0.1, 0.1));
  part.RouteCompetitor(Pt(0.2, 0.9));
  part.RouteCompetitor(Pt(0.9, 0.4));
  EXPECT_TRUE(part.fitted());
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(part.RouteCompetitor(
                  Pt(rng.NextDouble(-2, 2), rng.NextDouble(-2, 2))),
              9u);
  }
}

TEST(ShardPartitionerTest, RoutingIsAPureFunctionOfTheOpStream) {
  ShardPartitionerOptions options;
  options.dims = 2;
  options.shards = 5;
  options.fit_after = 32;
  ShardPartitioner a(options);
  ShardPartitioner b(options);
  Rng rng(11);
  std::vector<std::vector<double>> stream;
  for (int i = 0; i < 300; ++i) {
    stream.push_back(Pt(rng.NextDouble(0, 4), rng.NextDouble(0, 4)));
  }
  for (const auto& p : stream) {
    EXPECT_EQ(a.RouteCompetitor(p), b.RouteCompetitor(p));
    EXPECT_EQ(a.RouteProduct(p), b.RouteProduct(p));
  }
}

TEST(ShardPartitionerTest, UniformDataBalancesAcrossShards) {
  ShardPartitionerOptions options;
  options.dims = 2;
  options.shards = 4;
  options.fit_after = 256;
  ShardPartitioner part(options);
  Rng rng(42);
  std::vector<size_t> counts(4, 0);
  for (int i = 0; i < 4000; ++i) {
    const uint32_t s = part.RouteCompetitor(
        Pt(rng.NextDouble(0, 1), rng.NextDouble(0, 1)));
    if (part.fitted()) ++counts[s];
  }
  // STR quantile cuts on a uniform stream: every shard should carry a
  // healthy share (exact quarter up to quantile granularity and the
  // fit-sample/post-fit distribution mismatch; 15% is a loose floor).
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_GT(counts[s], 3744u * 15 / 100)
        << "shard " << s << " starved: " << counts[s];
  }
}

TEST(ShardPartitionerTest, ProductsFollowTheCompetitorTiles) {
  ShardPartitionerOptions options;
  options.dims = 2;
  options.shards = 2;
  options.fit_after = 64;
  ShardPartitioner part(options);
  Rng rng(5);
  // Two well-separated clusters -> the first cut separates them, and a
  // product lands with the competitor cluster it competes against.
  for (int i = 0; i < 64; ++i) {
    const bool left = (i % 2) == 0;
    part.RouteCompetitor(Pt(left ? rng.NextDouble(0.0, 0.2)
                                 : rng.NextDouble(0.8, 1.0),
                            rng.NextDouble(0, 1)));
  }
  ASSERT_TRUE(part.fitted());
  const uint32_t left_shard = part.RouteProduct(Pt(0.05, 0.5));
  const uint32_t right_shard = part.RouteProduct(Pt(0.95, 0.5));
  EXPECT_NE(left_shard, right_shard);
  EXPECT_EQ(part.RouteProduct(Pt(0.1, 0.2)), left_shard);
  EXPECT_EQ(part.RouteProduct(Pt(0.9, 0.8)), right_shard);
}

TEST(ShardPartitionerTest, KindIsRecordedForBenchProvenance) {
  EXPECT_STREQ(ShardPartitioner::kind(), "str-tiles");
}

}  // namespace
}  // namespace skyup
