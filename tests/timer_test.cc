#include "util/timer.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace skyup {
namespace {

// The static_assert in the header already enforces this at compile time;
// restating it here keeps the contract visible in the test suite.
static_assert(SteadyClock::is_steady,
              "the shared skyup clock must be monotonic");

TEST(TimerTest, ElapsedNeverDecreases) {
  Timer timer;
  double previous = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double now = timer.ElapsedSeconds();
    EXPECT_GE(now, previous);
    previous = now;
  }
  EXPECT_GE(previous, 0.0);
}

TEST(TimerTest, ReadoutsAgreeAcrossUnits) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double seconds = timer.ElapsedSeconds();
  const double millis = timer.ElapsedMillis();
  const int64_t micros = timer.ElapsedMicros();
  EXPECT_GE(seconds, 0.005);
  EXPECT_GE(millis, seconds * 1e3);  // read later, clock is monotonic
  EXPECT_GE(static_cast<double>(micros), millis * 1e3 - 1e3);
}

TEST(TimerTest, RestartResetsTheOrigin) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 0.005);
}

TEST(ScopedTimerTest, AccumulatesAcrossScopes) {
  double sink = 0.0;
  {
    ScopedTimer t(&sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const double after_first = sink;
  EXPECT_GE(after_first, 0.002);
  {
    ScopedTimer t(&sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Adds, not overwrites: the second scope stacks onto the first.
  EXPECT_GE(sink, after_first + 0.002);
}

TEST(ScopedTimerTest, NullSinkIsANoOp) {
  ScopedTimer t(nullptr);  // must not crash or read the clock
}

}  // namespace
}  // namespace skyup
