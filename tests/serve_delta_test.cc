// Tests for the delta pipeline (serve/delta_log.h, serve/live_table.h,
// serve/rebuilder.h): write-ahead hook ordering, overlay folding
// (insert/erase cancellation, erase bitmaps, SoA mirror), live-table
// update semantics, and the freeze/merge/publish rebuild protocol
// including abandonment.

#include "serve/delta_log.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "serve/live_table.h"
#include "serve/rebuilder.h"

namespace skyup {
namespace {

Result<std::unique_ptr<LiveTable>> MakeTable(size_t dims) {
  LiveTableOptions options;
  options.dims = dims;
  return LiveTable::Create(options);
}

TEST(DeltaLogTest, AppendHookRunsBeforeVisibility) {
  DeltaLog log;
  std::vector<size_t> sizes_at_hook;
  log.SetAppendHook([&](const DeltaOp& op) {
    // Write-ahead contract: at hook time the op is NOT yet readable.
    sizes_at_hook.push_back(log.size());
    EXPECT_EQ(op.kind, DeltaKind::kInsert);
  });
  for (int i = 0; i < 3; ++i) {
    DeltaOp op;
    op.target = DeltaTarget::kCompetitor;
    op.kind = DeltaKind::kInsert;
    op.id = static_cast<uint64_t>(i + 1);
    op.coords = {0.1, 0.2};
    log.Append(std::move(op));
  }
  EXPECT_EQ(sizes_at_hook, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(log.size(), 3u);
}

TEST(DeltaLogTest, CopyPrefixClampsAndPreservesOrder) {
  DeltaLog log;
  for (uint64_t id = 1; id <= 4; ++id) {
    DeltaOp op;
    op.kind = DeltaKind::kErase;
    op.id = id;
    log.Append(std::move(op));
  }
  std::vector<DeltaOp> prefix = log.CopyPrefix(2);
  ASSERT_EQ(prefix.size(), 2u);
  EXPECT_EQ(prefix[0].id, 1u);
  EXPECT_EQ(prefix[1].id, 2u);
  EXPECT_EQ(log.CopyPrefix(99).size(), 4u);
  log.Clear();
  EXPECT_TRUE(log.empty());
}

TEST(LiveTableTest, InsertEraseSemantics) {
  Result<std::unique_ptr<LiveTable>> table = MakeTable(2);
  ASSERT_TRUE(table.ok());
  LiveTable& t = **table;

  Result<uint64_t> c1 = t.InsertCompetitor({0.1, 0.9});
  Result<uint64_t> c2 = t.InsertCompetitor({0.9, 0.1});
  Result<uint64_t> p1 = t.InsertProduct({0.5, 0.5});
  ASSERT_TRUE(c1.ok() && c2.ok() && p1.ok());
  EXPECT_EQ(*c1, 1u);
  EXPECT_EQ(*c2, 2u);
  EXPECT_EQ(*p1, 1u);  // per-table id spaces
  EXPECT_EQ(t.live_competitor_count(), 2u);
  EXPECT_EQ(t.live_product_count(), 1u);

  // Arity mismatch is rejected and changes nothing.
  EXPECT_EQ(t.InsertCompetitor({0.1}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(t.live_competitor_count(), 2u);

  EXPECT_TRUE(t.EraseCompetitor(1).ok());
  EXPECT_EQ(t.live_competitor_count(), 1u);
  // Double-erase and unknown ids are kNotFound.
  EXPECT_EQ(t.EraseCompetitor(1).code(), StatusCode::kNotFound);
  EXPECT_EQ(t.EraseProduct(42).code(), StatusCode::kNotFound);
}

TEST(LiveTableTest, ViewIsConsistentAtCaptureTime) {
  Result<std::unique_ptr<LiveTable>> table = MakeTable(2);
  ASSERT_TRUE(table.ok());
  LiveTable& t = **table;
  ASSERT_TRUE(t.InsertCompetitor({0.2, 0.2}).ok());

  ReadView view = t.AcquireView();
  EXPECT_EQ(view.deltas.size(), 1u);

  // Later updates do not leak into the captured view.
  ASSERT_TRUE(t.InsertCompetitor({0.3, 0.3}).ok());
  EXPECT_EQ(view.deltas.size(), 1u);
  EXPECT_EQ(t.AcquireView().deltas.size(), 2u);
}

// Regression for the trickiest annotated invariant (live_table.cc,
// AcquireView): the version stamp and the delta vector are captured
// under the same table mutex that serialized every accepted op, so
// `version` always equals the op count the view's deltas reflect —
// including across a rebuild, which empties the deltas but must not
// rewind the stamp (it is the upgrade cache's monotone validity clock).
TEST(LiveTableTest, ViewVersionStampMatchesCapturedDeltas) {
  Result<std::unique_ptr<LiveTable>> table = MakeTable(2);
  ASSERT_TRUE(table.ok());
  LiveTable& t = **table;

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(t.InsertCompetitor({0.1 * (i + 1), 0.9 - 0.1 * i}).ok());
  }
  ReadView before = t.AcquireView();
  EXPECT_EQ(before.version, 3u);
  EXPECT_EQ(before.deltas.size(), 3u);

  // Publish a snapshot: the deltas are absorbed, the stamp stays put.
  std::optional<LiveTable::RebuildJob> job = t.BeginRebuild();
  ASSERT_TRUE(job.has_value());
  Result<std::shared_ptr<const Snapshot>> merged = MergeSnapshot(
      *job->base, job->ops, job->next_epoch, t.index_options());
  ASSERT_TRUE(merged.ok());
  t.CompleteRebuild(*merged);

  ReadView after = t.AcquireView();
  EXPECT_EQ(after.version, 3u);
  EXPECT_TRUE(after.deltas.empty());

  // The next accepted op (erases count too) moves the stamp and the
  // captured deltas together.
  ASSERT_TRUE(t.EraseCompetitor(1).ok());
  ReadView next = t.AcquireView();
  EXPECT_EQ(next.version, 4u);
  EXPECT_EQ(next.deltas.size(), 1u);
  // Earlier views are unaffected (capture-time consistency).
  EXPECT_EQ(before.version, 3u);
  EXPECT_EQ(before.deltas.size(), 3u);
}

TEST(BuildOverlayTest, InsertThenEraseCancels) {
  Result<std::unique_ptr<LiveTable>> table = MakeTable(2);
  ASSERT_TRUE(table.ok());
  LiveTable& t = **table;
  Result<uint64_t> a = t.InsertCompetitor({0.1, 0.1});
  Result<uint64_t> b = t.InsertCompetitor({0.2, 0.2});
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(t.EraseCompetitor(*a).ok());

  DeltaOverlay overlay = BuildOverlay(t.AcquireView());
  ASSERT_EQ(overlay.inserted_competitors.size(), 1u);
  EXPECT_EQ(overlay.inserted_competitor_ids[0], *b);
  EXPECT_EQ(overlay.inserted_competitors.data(0)[0], 0.2);
  // The erased insert never reached the snapshot, so no bitmap entry.
  EXPECT_EQ(overlay.competitors_erased, 0u);
  // SoA mirror tracks the alive inserts.
  EXPECT_EQ(overlay.competitor_block.size(), 1u);
}

TEST(BuildOverlayTest, EraseOfBaseRowSetsBitmap) {
  Result<std::unique_ptr<LiveTable>> table = MakeTable(2);
  ASSERT_TRUE(table.ok());
  LiveTable& t = **table;
  Result<uint64_t> a = t.InsertCompetitor({0.1, 0.1});
  Result<uint64_t> b = t.InsertCompetitor({0.2, 0.2});
  ASSERT_TRUE(a.ok() && b.ok());

  // Absorb both inserts into a snapshot, then erase one of them.
  std::optional<LiveTable::RebuildJob> job = t.BeginRebuild();
  ASSERT_TRUE(job.has_value());
  Result<std::shared_ptr<const Snapshot>> merged = MergeSnapshot(
      *job->base, job->ops, job->next_epoch, t.index_options());
  ASSERT_TRUE(merged.ok());
  t.CompleteRebuild(*merged);
  EXPECT_EQ(t.epoch(), 2u);
  EXPECT_EQ(t.delta_backlog(), 0u);

  ASSERT_TRUE(t.EraseCompetitor(*a).ok());
  DeltaOverlay overlay = BuildOverlay(t.AcquireView());
  ASSERT_EQ(overlay.competitor_erased.size(), 2u);
  EXPECT_EQ(overlay.competitors_erased, 1u);
  EXPECT_NE(overlay.competitor_erased[0], 0);  // row 0 is id *a (id-sorted)
  EXPECT_EQ(overlay.competitor_erased[1], 0);
  EXPECT_EQ(overlay.live_competitors(*t.AcquireView().snapshot), 1u);
}

TEST(RebuildProtocolTest, FreezeMergePublishAbsorbsBacklog) {
  Result<std::unique_ptr<LiveTable>> table = MakeTable(2);
  ASSERT_TRUE(table.ok());
  LiveTable& t = **table;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        t.InsertCompetitor({0.1 * (i + 1), 0.9 - 0.1 * i}).ok());
  }
  ASSERT_TRUE(t.InsertProduct({0.5, 0.5}).ok());
  ASSERT_TRUE(t.EraseCompetitor(2).ok());
  EXPECT_EQ(t.delta_backlog(), 7u);

  std::optional<LiveTable::RebuildJob> job = t.BeginRebuild();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->ops.size(), 7u);
  EXPECT_EQ(job->next_epoch, 2u);
  // A second BeginRebuild while one is in flight is refused.
  EXPECT_FALSE(t.BeginRebuild().has_value());

  // Updates during the merge stay visible and pending.
  ASSERT_TRUE(t.InsertCompetitor({0.7, 0.7}).ok());
  EXPECT_EQ(t.delta_backlog(), 8u);

  Result<std::shared_ptr<const Snapshot>> merged = MergeSnapshot(
      *job->base, job->ops, job->next_epoch, t.index_options());
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ((*merged)->competitors().size(), 4u);  // 5 inserted - 1 erased
  EXPECT_EQ((*merged)->products().size(), 1u);
  t.CompleteRebuild(*merged);

  EXPECT_EQ(t.epoch(), 2u);
  EXPECT_EQ(t.delta_backlog(), 1u);  // only the mid-merge insert remains
  EXPECT_EQ(t.live_competitor_count(), 5u);
}

TEST(RebuildProtocolTest, AbandonReoffersFrozenOps) {
  Result<std::unique_ptr<LiveTable>> table = MakeTable(2);
  ASSERT_TRUE(table.ok());
  LiveTable& t = **table;
  ASSERT_TRUE(t.InsertCompetitor({0.4, 0.4}).ok());

  std::optional<LiveTable::RebuildJob> job = t.BeginRebuild();
  ASSERT_TRUE(job.has_value());
  t.AbandonRebuild();
  EXPECT_EQ(t.epoch(), 1u);
  EXPECT_EQ(t.delta_backlog(), 1u);

  // The next rebuild sees the same op again.
  std::optional<LiveTable::RebuildJob> retry = t.BeginRebuild();
  ASSERT_TRUE(retry.has_value());
  ASSERT_EQ(retry->ops.size(), 1u);
  EXPECT_EQ(retry->ops[0].id, job->ops[0].id);
  t.AbandonRebuild();
}

TEST(RebuildProtocolTest, MaybeRebuildInlineHonorsThreshold) {
  Result<std::unique_ptr<LiveTable>> table = MakeTable(2);
  ASSERT_TRUE(table.ok());
  LiveTable& t = **table;
  RebuildPolicy policy;
  policy.threshold_ops = 3;

  ASSERT_TRUE(t.InsertCompetitor({0.1, 0.1}).ok());
  Result<PublishKind> below = MaybeRebuildInline(&t, policy);
  ASSERT_TRUE(below.ok());
  EXPECT_EQ(*below, PublishKind::kNone);
  EXPECT_EQ(t.epoch(), 1u);

  ASSERT_TRUE(t.InsertCompetitor({0.2, 0.2}).ok());
  ASSERT_TRUE(t.InsertCompetitor({0.3, 0.3}).ok());
  // The base snapshot has no indexed rows yet, so the first publish is
  // always a major compaction.
  Result<PublishKind> at = MaybeRebuildInline(&t, policy);
  ASSERT_TRUE(at.ok());
  EXPECT_EQ(*at, PublishKind::kMajor);
  EXPECT_EQ(t.epoch(), 2u);
  EXPECT_EQ(t.delta_backlog(), 0u);

  // A small backlog against an indexed base (1 tail row on 3 indexed is
  // under the 50% tail threshold) patches instead of rebuilding.
  ASSERT_TRUE(t.InsertCompetitor({0.4, 0.4}).ok());
  ASSERT_TRUE(t.InsertProduct({0.6, 0.6}).ok());
  ASSERT_TRUE(t.InsertProduct({0.7, 0.7}).ok());
  Result<PublishKind> patched = MaybeRebuildInline(&t, policy);
  ASSERT_TRUE(patched.ok());
  EXPECT_EQ(*patched, PublishKind::kPatch);
  EXPECT_EQ(t.epoch(), 3u);
  EXPECT_EQ(t.delta_backlog(), 0u);
  EXPECT_EQ(t.live_competitor_count(), 4u);
  EXPECT_EQ(t.live_product_count(), 2u);
}

TEST(LiveTableTest, WriteAheadHookObservesEveryAcceptedUpdate) {
  Result<std::unique_ptr<LiveTable>> table = MakeTable(2);
  ASSERT_TRUE(table.ok());
  LiveTable& t = **table;
  std::vector<DeltaOp> wal;
  t.SetAppendHook([&](const DeltaOp& op) { wal.push_back(op); });

  ASSERT_TRUE(t.InsertCompetitor({0.1, 0.2}).ok());
  ASSERT_TRUE(t.InsertProduct({0.3, 0.4}).ok());
  EXPECT_EQ(t.InsertProduct({0.3}).status().code(),
            StatusCode::kInvalidArgument);  // rejected: not logged
  ASSERT_TRUE(t.EraseCompetitor(1).ok());

  ASSERT_EQ(wal.size(), 3u);
  EXPECT_EQ(wal[0].target, DeltaTarget::kCompetitor);
  EXPECT_EQ(wal[0].kind, DeltaKind::kInsert);
  EXPECT_EQ(wal[1].target, DeltaTarget::kProduct);
  EXPECT_EQ(wal[2].kind, DeltaKind::kErase);
  EXPECT_EQ(wal[2].id, 1u);
}

}  // namespace
}  // namespace skyup
