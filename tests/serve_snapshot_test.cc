// Tests for the versioned snapshot store (serve/snapshot.h): construction
// invariants, stable-id round trips, epoch ordering in the store, and
// shared_ptr-based lifetime of superseded snapshots.

#include "serve/snapshot.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "skyline/dominating_skyline.h"

namespace skyup {
namespace {

Result<std::shared_ptr<const Snapshot>> MakeSnapshot(uint64_t epoch) {
  Dataset competitors(2);
  competitors.Add({0.1, 0.2});
  competitors.Add({0.5, 0.1});
  Dataset products(2);
  products.Add({0.9, 0.9});
  return Snapshot::Create(epoch, std::move(competitors), {1, 2},
                          std::move(products), {1});
}

TEST(SnapshotTest, CreateBindsIndexAndIds) {
  Result<std::shared_ptr<const Snapshot>> snapshot = MakeSnapshot(1);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  const Snapshot& s = **snapshot;
  EXPECT_EQ(s.epoch(), 1u);
  EXPECT_EQ(s.dims(), 2u);
  EXPECT_EQ(s.competitors().size(), 2u);
  EXPECT_EQ(s.products().size(), 1u);
  EXPECT_EQ(s.competitor_id(0), 1u);
  EXPECT_EQ(s.competitor_id(1), 2u);
  EXPECT_EQ(s.product_id(0), 1u);
  EXPECT_EQ(s.CompetitorRow(2), 1);
  EXPECT_EQ(s.CompetitorRow(99), kInvalidPointId);
  EXPECT_EQ(s.ProductRow(1), 0);
  EXPECT_EQ(s.ProductRow(99), kInvalidPointId);

  // The bundled index probes the bundled competitor dataset.
  const double probe[] = {0.9, 0.9};
  std::vector<PointId> sky = DominatingSkyline(s.index(), probe, nullptr);
  EXPECT_EQ(sky.size(), 2u);
}

TEST(SnapshotTest, EmptyTablesAreValid) {
  Result<std::shared_ptr<const Snapshot>> snapshot =
      Snapshot::Create(1, Dataset(3), {}, Dataset(3), {});
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ((*snapshot)->competitors().size(), 0u);
  const double probe[] = {0.5, 0.5, 0.5};
  EXPECT_TRUE(DominatingSkyline((*snapshot)->index(), probe, nullptr).empty());
}

TEST(SnapshotTest, CreateRejectsMalformedInputs) {
  {
    // id count != row count
    Dataset p(2);
    p.Add({0.1, 0.2});
    Result<std::shared_ptr<const Snapshot>> s =
        Snapshot::Create(1, std::move(p), {1, 2}, Dataset(2), {});
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // ids must be strictly ascending
    Dataset p(2);
    p.Add({0.1, 0.2});
    p.Add({0.3, 0.4});
    Result<std::shared_ptr<const Snapshot>> s =
        Snapshot::Create(1, std::move(p), {5, 5}, Dataset(2), {});
    EXPECT_FALSE(s.ok());
  }
  {
    // dims mismatch between tables
    Result<std::shared_ptr<const Snapshot>> s =
        Snapshot::Create(1, Dataset(2), {}, Dataset(3), {});
    EXPECT_FALSE(s.ok());
  }
}

TEST(SnapshotStoreTest, PublishAdvancesEpochAndAcquireTracks) {
  SnapshotStore store;
  EXPECT_EQ(store.epoch(), 0u);
  EXPECT_EQ(store.Acquire(), nullptr);

  Result<std::shared_ptr<const Snapshot>> first = MakeSnapshot(1);
  ASSERT_TRUE(first.ok());
  store.Publish(*first);
  EXPECT_EQ(store.epoch(), 1u);
  EXPECT_EQ(store.Acquire()->epoch(), 1u);

  Result<std::shared_ptr<const Snapshot>> second = MakeSnapshot(2);
  ASSERT_TRUE(second.ok());
  store.Publish(*second);
  EXPECT_EQ(store.epoch(), 2u);
  EXPECT_EQ(store.Acquire()->epoch(), 2u);
}

TEST(SnapshotStoreTest, SupersededSnapshotOutlivesPublishWhileHeld) {
  SnapshotStore store;
  Result<std::shared_ptr<const Snapshot>> first = MakeSnapshot(1);
  ASSERT_TRUE(first.ok());
  // Move the snapshot into the store so this test holds no extra
  // reference that would pin it past the reader below.
  store.Publish(std::move(*first));

  // A reader holds epoch 1 across two later publishes.
  std::shared_ptr<const Snapshot> held = store.Acquire();
  std::weak_ptr<const Snapshot> watch = held;
  for (uint64_t e = 2; e <= 3; ++e) {
    Result<std::shared_ptr<const Snapshot>> next = MakeSnapshot(e);
    ASSERT_TRUE(next.ok());
    store.Publish(*next);
  }
  EXPECT_EQ(held->epoch(), 1u);
  EXPECT_EQ(held->competitors().size(), 2u);  // still fully usable
  EXPECT_FALSE(watch.expired());

  // Reclamation happens exactly when the last holder lets go.
  held.reset();
  EXPECT_TRUE(watch.expired());
}

}  // namespace
}  // namespace skyup
