#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace skyup {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStatsTest, KnownSeries) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats s;
  s.Add(-10.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -10.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(PearsonTest, PerfectPositiveCorrelation) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegativeCorrelation) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateInputsReturnZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1.0}, {2.0}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({3, 3, 3}, {1, 2, 3}), 0.0);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.75), 7.5);
}

TEST(QuantileTest, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(QuantileTest, ClampsOutOfRangeQ) {
  std::vector<double> v = {1, 2, 3};
  EXPECT_DOUBLE_EQ(Quantile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 2.0), 3.0);
}

}  // namespace
}  // namespace skyup
