#include "obs/metrics.h"

#include <cctype>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace skyup {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetOverwrites) {
  Gauge g;
  g.Set(1.5);
  g.Set(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), -2.0);
}

TEST(HistogramTest, EmptyHistogramQuantilesAreZero) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, SingleSampleDrivesEveryQuantile) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(1.5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.5);
  // Every quantile resolves to the one occupied bucket (1, 2]; the exact
  // value is interpolated inside it, so only the bracket is guaranteed.
  for (double q : {0.01, 0.5, 0.99, 1.0}) {
    const double v = h.Quantile(q);
    EXPECT_GT(v, 1.0) << "q=" << q;
    EXPECT_LE(v, 2.0) << "q=" << q;
  }
}

TEST(HistogramTest, SamplesBeyondLastBucketClampToLastFiniteBound) {
  Histogram h({1.0, 2.0});
  h.Observe(100.0);  // lands in the +Inf bucket
  h.Observe(250.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket_counts().back(), 2u);
  // The histogram cannot resolve beyond its last finite bound, so the
  // quantile clamps there (Prometheus convention) rather than inventing
  // a value.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 2.0);
  EXPECT_DOUBLE_EQ(h.sum(), 350.0);  // the sum still sees the raw values
}

TEST(HistogramTest, BoundaryValueLandsInTheLowerBucket) {
  Histogram h({1.0, 2.0});
  h.Observe(1.0);  // le="1" is inclusive, Prometheus-style
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 0u);
}

TEST(HistogramTest, MergeIsAssociative) {
  const std::vector<double> bounds = {1e-3, 1e-2, 1e-1, 1.0};
  const std::vector<double> samples_a = {2e-3, 5e-2, 0.4};
  const std::vector<double> samples_b = {7e-4, 9e-2};
  const std::vector<double> samples_c = {0.9, 3.0, 2e-2};

  Histogram a1(bounds), b1(bounds), c1(bounds);
  for (double v : samples_a) a1.Observe(v);
  for (double v : samples_b) b1.Observe(v);
  for (double v : samples_c) c1.Observe(v);
  // (a + b) + c
  Histogram left(bounds);
  left.MergeFrom(a1);
  left.MergeFrom(b1);
  Histogram left_total(bounds);
  left_total.MergeFrom(left);
  left_total.MergeFrom(c1);
  // a + (b + c)
  Histogram right(bounds);
  right.MergeFrom(b1);
  right.MergeFrom(c1);
  Histogram right_total(bounds);
  right_total.MergeFrom(a1);
  right_total.MergeFrom(right);

  EXPECT_EQ(left_total.count(), right_total.count());
  EXPECT_DOUBLE_EQ(left_total.sum(), right_total.sum());
  EXPECT_EQ(left_total.bucket_counts(), right_total.bucket_counts());
  for (double q : {0.25, 0.5, 0.95}) {
    EXPECT_DOUBLE_EQ(left_total.Quantile(q), right_total.Quantile(q));
  }
}

TEST(HistogramTest, MergeMatchesObservingEverythingDirectly) {
  const std::vector<double>& bounds =
      Histogram::DefaultLatencyBucketsSeconds();
  Histogram direct(bounds), part1(bounds), part2(bounds);
  const std::vector<double> samples = {1e-6, 3e-5, 2e-4, 0.5, 42.0};
  for (size_t i = 0; i < samples.size(); ++i) {
    direct.Observe(samples[i]);
    (i % 2 == 0 ? part1 : part2).Observe(samples[i]);
  }
  part1.MergeFrom(part2);
  EXPECT_EQ(direct.bucket_counts(), part1.bucket_counts());
  EXPECT_DOUBLE_EQ(direct.sum(), part1.sum());
}

TEST(HistogramTest, SingleBucketHighQuantilesInterpolateNotClamp) {
  // Regression: the quantile rank used to be ceil(q * count), an integer.
  // With all N observations in one bucket and N <= 100, ceil(0.99 * N)
  // == N, so p99 (and p95, and p90...) collapsed to the bucket's upper
  // edge — indistinguishable from p100 and a lie about the tail. The
  // fractional (Prometheus-style) rank interpolates instead.
  Histogram h({1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) h.Observe(1.5);  // all in (1, 2]
  const double p50 = h.Quantile(0.50);
  const double p99 = h.Quantile(0.99);
  EXPECT_DOUBLE_EQ(p50, 1.5);   // halfway into the bucket
  EXPECT_DOUBLE_EQ(p99, 1.99);  // 99% of the way in — NOT the edge
  EXPECT_LT(p99, 2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 2.0);  // only p100 reaches the edge
}

TEST(HistogramTest, QuantileOrderIsMonotone) {
  Histogram h(Histogram::DefaultLatencyBucketsSeconds());
  for (int i = 1; i <= 1000; ++i) h.Observe(i * 1e-5);
  double previous = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, previous);
    previous = v;
  }
}

TEST(MetricsRegistryTest, ReregisteringReturnsTheSameMetric) {
  MetricsRegistry registry;
  Counter* a = registry.AddCounter("skyup_widgets_total", "widgets");
  Counter* b = registry.AddCounter("skyup_widgets_total", "widgets");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.size(), 1u);
  a->Increment(3);
  b->Increment(4);
  EXPECT_EQ(a->value(), 7u);
}

TEST(MetricsRegistryTest, PointersSurviveManyRegistrations) {
  MetricsRegistry registry;
  Counter* first = registry.AddCounter("skyup_first_total", "first");
  for (int i = 0; i < 100; ++i) {
    registry.AddCounter("skyup_c" + std::to_string(i) + "_total", "bulk");
  }
  first->Increment();  // must not be dangling after vector growth
  EXPECT_EQ(first->value(), 1u);
}

TEST(MetricsRegistryTest, PrometheusExposition) {
  MetricsRegistry registry;
  registry.AddCounter("skyup_ops_total", "operations")->Increment(5);
  registry.AddGauge("skyup_temp", "temperature")->Set(21.5);
  Histogram* h = registry.AddHistogram("skyup_lat_seconds", "latency",
                                       std::vector<double>{0.1, 1.0});
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(5.0);

  std::ostringstream out;
  registry.WritePrometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE skyup_ops_total counter"), std::string::npos);
  EXPECT_NE(text.find("skyup_ops_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE skyup_temp gauge"), std::string::npos);
  EXPECT_NE(text.find("skyup_temp 21.5"), std::string::npos);
  // Buckets are cumulative: 1 under 0.1, 2 under 1, 3 under +Inf.
  EXPECT_NE(text.find("skyup_lat_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("skyup_lat_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("skyup_lat_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("skyup_lat_seconds_count 3"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonExportHasAllSections) {
  MetricsRegistry registry;
  registry.AddCounter("skyup_ops_total", "operations")->Increment(2);
  registry.AddGauge("skyup_temp", "temperature")->Set(-3.25);
  registry.AddHistogram("skyup_lat_seconds", "latency",
                        std::vector<double>{0.1, 1.0})
      ->Observe(0.2);

  std::ostringstream out;
  registry.WriteJson(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("\"skyup_ops_total\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"gauges\""), std::string::npos);
  EXPECT_NE(text.find("-3.25"), std::string::npos);
  EXPECT_NE(text.find("\"histograms\""), std::string::npos);
  EXPECT_NE(text.find("\"p95\""), std::string::npos);
  EXPECT_NE(text.find("\"+Inf\""), std::string::npos);
}

TEST(MetricsRegistryTest, EmptyRegistryStillWritesValidShells) {
  MetricsRegistry registry;
  std::ostringstream prom, json;
  registry.WritePrometheus(prom);
  registry.WriteJson(json);
  EXPECT_TRUE(prom.str().empty());
  EXPECT_NE(json.str().find("\"counters\": {}"), std::string::npos);
}

// ---- Minimal JSON parser (tests only) --------------------------------
//
// Just enough of RFC 8259 to round-trip WriteJson's output: objects,
// arrays, strings with escapes, numbers, true/false/null. Parse failures
// surface as a null position, so EXPECT below pinpoints the offset.

struct JsonParser {
  const std::string& text;
  size_t pos = 0;
  bool failed = false;

  explicit JsonParser(const std::string& t) : text(t) {}

  void Fail() { failed = true; }
  void SkipWs() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\n' ||
                                 text[pos] == '\t' || text[pos] == '\r')) {
      ++pos;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  void Expect(char c) {
    if (!Consume(c)) Fail();
  }
  void ParseString() {
    Expect('"');
    while (!failed && pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') {
        ++pos;
        if (pos >= text.size()) return Fail();
        const char e = text[pos];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos;
            if (pos >= text.size() || !isxdigit(text[pos])) return Fail();
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return Fail();
        }
      }
      ++pos;
    }
    Expect('"');
  }
  void ParseNumber() {
    SkipWs();
    const size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (isdigit(text[pos]) || text[pos] == '.' || text[pos] == 'e' ||
            text[pos] == 'E' || text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) Fail();
  }
  bool ConsumeWord(const char* w) {
    SkipWs();
    const size_t len = strlen(w);
    if (text.compare(pos, len, w) == 0) {
      pos += len;
      return true;
    }
    return false;
  }
  void ParseValue() {
    if (failed) return;
    SkipWs();
    if (pos >= text.size()) return Fail();
    const char c = text[pos];
    if (c == '{') {
      ParseObject();
    } else if (c == '[') {
      ParseArray();
    } else if (c == '"') {
      ParseString();
    } else if (ConsumeWord("true") || ConsumeWord("false") ||
               ConsumeWord("null")) {
      // literal consumed
    } else {
      ParseNumber();
    }
  }
  void ParseObject() {
    Expect('{');
    if (Consume('}')) return;
    do {
      ParseString();
      Expect(':');
      ParseValue();
    } while (!failed && Consume(','));
    Expect('}');
  }
  void ParseArray() {
    Expect('[');
    if (Consume(']')) return;
    do {
      ParseValue();
    } while (!failed && Consume(','));
    Expect(']');
  }

  /// True iff the whole text is exactly one valid JSON value.
  bool ParseAll() {
    ParseValue();
    SkipWs();
    return !failed && pos == text.size();
  }
};

TEST(MetricsRegistryTest, JsonExportRoundTripsThroughAParser) {
  MetricsRegistry registry;
  registry.AddCounter("skyup_ops_total", "operations")->Increment(7);
  registry.AddGauge("skyup_temp", "temperature")->Set(-0.5);
  Histogram* h = registry.AddHistogram(
      "skyup_lat_seconds", "latency", std::vector<double>{0.1, 1.0});
  h->Observe(0.2);
  h->Observe(5.0);  // +Inf bucket

  std::ostringstream out;
  registry.WriteJson(out);
  const std::string text = out.str();
  JsonParser parser(text);
  EXPECT_TRUE(parser.ParseAll())
      << "WriteJson output is not valid JSON at offset " << parser.pos
      << ":\n"
      << text;
  // Spot-check that the values actually made the trip.
  EXPECT_NE(text.find("\"skyup_ops_total\": 7"), std::string::npos);
  EXPECT_NE(text.find("\"count\": 2"), std::string::npos);
}

TEST(MetricsRegistryTest, EmptyJsonExportRoundTrips) {
  MetricsRegistry registry;
  std::ostringstream out;
  registry.WriteJson(out);
  const std::string text = out.str();
  JsonParser parser(text);
  EXPECT_TRUE(parser.ParseAll()) << text;
}

TEST(DefaultLatencyBucketsTest, StrictlyAscendingAndSpanMicrosToSeconds) {
  const std::vector<double>& bounds =
      Histogram::DefaultLatencyBucketsSeconds();
  ASSERT_FALSE(bounds.empty());
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  EXPECT_DOUBLE_EQ(bounds.back(), 10.0);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

}  // namespace
}  // namespace skyup
