#include "core/single_upgrade.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "core/dominance.h"
#include "data/generator.h"
#include "skyline/skyline.h"
#include "util/random.h"

namespace skyup {
namespace {

constexpr double kEps = 1e-6;

std::vector<const double*> Ptrs(const std::vector<std::vector<double>>& rows) {
  std::vector<const double*> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(r.data());
  return out;
}

TEST(UpgradeProductTest, EmptySkylineMeansAlreadyCompetitive) {
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(2);
  const std::vector<double> p = {0.5, 0.5};
  UpgradeOutcome out = UpgradeProduct({}, p.data(), 2, f, kEps);
  EXPECT_TRUE(out.already_competitive);
  EXPECT_DOUBLE_EQ(out.cost, 0.0);
  EXPECT_EQ(out.upgraded, p);
}

TEST(UpgradeProductTest, SingleDominatorBeatOnCheapestDimension) {
  // Linear costs make the arithmetic exact: w0 steep, w1 gentle.
  auto steep = std::make_shared<const LinearCost>(10.0, 8.0);
  auto gentle = std::make_shared<const LinearCost>(10.0, 1.0);
  Result<ProductCostFunction> f = ProductCostFunction::Sum({steep, gentle});
  ASSERT_TRUE(f.ok());

  const std::vector<double> s = {0.2, 0.2};
  const std::vector<double> p = {0.6, 0.6};
  UpgradeOutcome out = UpgradeProduct(Ptrs({s}), p.data(), 2, *f, kEps);

  // Beating s on dim 0 costs 8*(0.6-0.2+eps); on dim 1 only 1*(0.4+eps).
  EXPECT_FALSE(out.already_competitive);
  EXPECT_NEAR(out.cost, 1.0 * (0.4 + kEps), 1e-9);
  EXPECT_NEAR(out.upgraded[1], s[1] - kEps, 1e-12);
  EXPECT_DOUBLE_EQ(out.upgraded[0], p[0]);  // untouched dimension
  EXPECT_FALSE(Dominates(s.data(), out.upgraded.data(), 2));
}

TEST(UpgradeProductTest, FigureOneMultiDimensionUpgradeWins) {
  // Figure 1(b): two skyline points; slipping between them on both
  // dimensions is cheaper than beating both on one dimension when costs
  // are steep near the extremes (reciprocal cost).
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(2, 1e-3);
  const std::vector<double> s1 = {0.1, 0.6};
  const std::vector<double> s2 = {0.5, 0.2};
  const std::vector<double> p = {0.8, 0.8};
  UpgradeOutcome out = UpgradeProduct(Ptrs({s1, s2}), p.data(), 2, f, kEps);

  EXPECT_FALSE(Dominates(s1.data(), out.upgraded.data(), 2));
  EXPECT_FALSE(Dominates(s2.data(), out.upgraded.data(), 2));
  // The consecutive-pair candidate (s2.x - eps, s1.y - eps) beats both
  // single-dimension candidates (going to x < 0.1 or y < 0.2).
  const double single_x =
      f.AttributeCost(0, s1[0] - kEps) - f.AttributeCost(0, p[0]);
  const double single_y =
      f.AttributeCost(1, s2[1] - kEps) - f.AttributeCost(1, p[1]);
  EXPECT_LT(out.cost, single_x);
  EXPECT_LT(out.cost, single_y);
  EXPECT_NEAR(out.upgraded[0], s2[0] - kEps, 1e-12);
  EXPECT_NEAR(out.upgraded[1], s1[1] - kEps, 1e-12);
}

TEST(UpgradeProductTest, CostIsNonNegative) {
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(3);
  const std::vector<double> s = {0.3, 0.3, 0.3};
  const std::vector<double> p = {0.5, 0.5, 0.5};
  UpgradeOutcome out = UpgradeProduct(Ptrs({s}), p.data(), 3, f, kEps);
  EXPECT_GT(out.cost, 0.0);
}

TEST(UpgradeProductTest, UpgradedNeverWorseThanOriginal) {
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(2);
  const std::vector<double> s1 = {0.2, 0.7};
  const std::vector<double> s2 = {0.6, 0.3};
  const std::vector<double> p = {0.9, 0.9};
  UpgradeOutcome out = UpgradeProduct(Ptrs({s1, s2}), p.data(), 2, f, kEps);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_LE(out.upgraded[i], p[i]);
  }
}

TEST(UpgradeProductTest, WeightedCostShiftsChosenDimension) {
  auto lin = std::make_shared<const LinearCost>(1.0, 1.0);
  const std::vector<double> s = {0.5, 0.5};
  const std::vector<double> p = {0.8, 0.9};

  // Weight dimension 0 heavily: upgrading dim 1 becomes the cheap option.
  Result<ProductCostFunction> heavy0 =
      ProductCostFunction::WeightedSum({lin, lin}, {100.0, 1.0});
  ASSERT_TRUE(heavy0.ok());
  UpgradeOutcome out0 = UpgradeProduct(Ptrs({s}), p.data(), 2, *heavy0, kEps);
  EXPECT_DOUBLE_EQ(out0.upgraded[0], p[0]);
  EXPECT_LT(out0.upgraded[1], s[1]);

  // And vice versa.
  Result<ProductCostFunction> heavy1 =
      ProductCostFunction::WeightedSum({lin, lin}, {1.0, 100.0});
  ASSERT_TRUE(heavy1.ok());
  UpgradeOutcome out1 = UpgradeProduct(Ptrs({s}), p.data(), 2, *heavy1, kEps);
  EXPECT_LT(out1.upgraded[0], s[0]);
  EXPECT_DOUBLE_EQ(out1.upgraded[1], p[1]);
}

TEST(UpgradeProductTest, LargeSkylineStillSatisfiesLemmaOne) {
  // An anti-correlated skyline staircase with many steps.
  std::vector<std::vector<double>> sky;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.01 + 0.01 * i;
    sky.push_back({x, 0.52 - x});
  }
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(2, 1e-3);
  const std::vector<double> p = {0.9, 0.9};
  UpgradeOutcome out = UpgradeProduct(Ptrs(sky), p.data(), 2, f, kEps);
  EXPECT_GT(out.cost, 0.0);
  for (const auto& s : sky) {
    EXPECT_FALSE(Dominates(s.data(), out.upgraded.data(), 2));
  }
}

// Property sweep over dimensionalities and distributions: Lemma 1 and
// cost-positivity must hold on randomized dominator skylines.
class UpgradeLemmaSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(UpgradeLemmaSweep, LemmaOneOnRandomInputs) {
  const size_t dims = GetParam();
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(dims, 1e-3);
  Rng rng(7000 + dims);

  for (int trial = 0; trial < 40; ++trial) {
    // A product in (1,2]^d dominated by random competitors in [0,1]^d.
    Result<Dataset> competitors = GenerateCompetitors(
        120, dims, Distribution::kAntiCorrelated, 300 + trial);
    ASSERT_TRUE(competitors.ok());
    std::vector<double> p(dims);
    for (auto& v : p) v = rng.NextDouble(1.0 + 1e-9, 2.0);

    // All competitors dominate p; the skyline of the whole set applies.
    std::vector<PointId> sky_ids = SkylineSfs(*competitors);
    std::vector<const double*> sky;
    for (PointId id : sky_ids) sky.push_back(competitors->data(id));

    UpgradeOutcome out = UpgradeProduct(sky, p.data(), dims, f, kEps);
    EXPECT_GT(out.cost, 0.0);
    EXPECT_FALSE(out.already_competitive);
    for (const double* s : sky) {
      ASSERT_FALSE(Dominates(s, out.upgraded.data(), dims))
          << "Lemma 1 violated at trial " << trial;
    }
    // And transitively no competitor at all dominates the result.
    for (size_t i = 0; i < competitors->size(); ++i) {
      ASSERT_FALSE(Dominates(competitors->data(static_cast<PointId>(i)),
                             out.upgraded.data(), dims));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, UpgradeLemmaSweep,
                         ::testing::Values<size_t>(1, 2, 3, 4, 5, 6),
                         [](const auto& param_info) {
                           // Append form dodges gcc 12's -Wrestrict
                           // false positive (PR105329).
                           std::string name = "d";
                           name += std::to_string(param_info.param);
                           return name;
                         });

TEST(UpgradeProductTest, ChoosesGloballyCheapestAmongCandidates) {
  // Exhaustively recompute all candidate costs the algorithm considers and
  // confirm the returned cost is their minimum.
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(3, 1e-3);
  Rng rng(42);
  Result<Dataset> competitors =
      GenerateCompetitors(60, 3, Distribution::kIndependent, 77);
  ASSERT_TRUE(competitors.ok());
  std::vector<double> p = {1.5, 1.5, 1.5};

  std::vector<PointId> sky_ids = SkylineSfs(*competitors);
  std::vector<const double*> sky;
  for (PointId id : sky_ids) sky.push_back(competitors->data(id));
  ASSERT_GE(sky.size(), 2u);

  UpgradeOutcome out = UpgradeProduct(sky, p.data(), 3, f, kEps);

  double expected = std::numeric_limits<double>::infinity();
  const double base = f.Cost(p);
  for (size_t k = 0; k < 3; ++k) {
    std::vector<const double*> sorted = sky;
    std::sort(sorted.begin(), sorted.end(),
              [k](const double* a, const double* b) { return a[k] < b[k]; });
    std::vector<double> cand = p;
    cand[k] = sorted.front()[k] - kEps;
    expected = std::min(expected, f.Cost(cand) - base);
    for (size_t i = 0; i + 1 < sorted.size(); ++i) {
      for (size_t x = 0; x < 3; ++x) {
        cand[x] = (x == k ? sorted[i + 1][x] : sorted[i][x]) - kEps;
      }
      expected = std::min(expected, f.Cost(cand) - base);
    }
  }
  EXPECT_NEAR(out.cost, expected, 1e-9);
}

}  // namespace
}  // namespace skyup
