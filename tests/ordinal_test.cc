#include "data/ordinal.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/dominance.h"
#include "core/planner.h"

namespace skyup {
namespace {

OrdinalScale Stars() {
  Result<OrdinalScale> scale = OrdinalScale::Create(
      {"5-star", "4-star", "3-star", "2-star", "1-star"});
  EXPECT_TRUE(scale.ok());
  return std::move(scale).value();
}

TEST(OrdinalScaleTest, CreateValidatesInput) {
  EXPECT_FALSE(OrdinalScale::Create({}).ok());
  EXPECT_FALSE(OrdinalScale::Create({"a", ""}).ok());
  EXPECT_FALSE(OrdinalScale::Create({"a", "b", "a"}).ok());
  EXPECT_TRUE(OrdinalScale::Create({"only"}).ok());
}

TEST(OrdinalScaleTest, RankEmbedsBestAsZero) {
  OrdinalScale stars = Stars();
  EXPECT_EQ(stars.size(), 5u);
  Result<double> best = stars.Rank("5-star");
  Result<double> worst = stars.Rank("1-star");
  ASSERT_TRUE(best.ok() && worst.ok());
  EXPECT_DOUBLE_EQ(*best, 0.0);
  EXPECT_DOUBLE_EQ(*worst, 4.0);
  EXPECT_FALSE(stars.Rank("6-star").ok());
}

TEST(OrdinalScaleTest, LevelInvertsRank) {
  OrdinalScale stars = Stars();
  for (size_t r = 0; r < stars.size(); ++r) {
    Result<double> back = stars.Rank(stars.Level(r));
    ASSERT_TRUE(back.ok());
    EXPECT_DOUBLE_EQ(*back, static_cast<double>(r));
  }
}

TEST(OrdinalScaleTest, UnrankMapsUpgradedValuesToAchievableLevels) {
  OrdinalScale stars = Stars();
  // "Strictly better than 3-star" (rank 2 - eps) means 4-star (rank 1).
  EXPECT_EQ(stars.Unrank(2.0 - 1e-6), "4-star");
  EXPECT_EQ(stars.Unrank(2.0), "3-star");
  EXPECT_EQ(stars.Unrank(3.7), "2-star");
  // Beyond-best upgrades clamp to the best level.
  EXPECT_EQ(stars.Unrank(-0.5), "5-star");
  EXPECT_EQ(stars.Unrank(99.0), "1-star");
}

TEST(TabulatedCostTest, CreateValidates) {
  EXPECT_FALSE(TabulatedCost::Create({1.0}).ok());
  EXPECT_FALSE(TabulatedCost::Create({1.0, 2.0}).ok());  // rising
  EXPECT_TRUE(TabulatedCost::Create({5.0, 3.0, 3.0, 1.0}).ok());
}

TEST(TabulatedCostTest, InterpolatesAndClamps) {
  auto cost = TabulatedCost::Create({10.0, 6.0, 1.0});
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ((*cost)->Cost(0.0), 10.0);
  EXPECT_DOUBLE_EQ((*cost)->Cost(1.0), 6.0);
  EXPECT_DOUBLE_EQ((*cost)->Cost(2.0), 1.0);
  EXPECT_DOUBLE_EQ((*cost)->Cost(0.5), 8.0);
  EXPECT_DOUBLE_EQ((*cost)->Cost(1.5), 3.5);
  // Clamped outside the table — upgraded ranks like -epsilon stay finite.
  EXPECT_DOUBLE_EQ((*cost)->Cost(-0.3), 10.0);
  EXPECT_DOUBLE_EQ((*cost)->Cost(7.0), 1.0);
}

TEST(TabulatedCostTest, NameDescribes) {
  auto cost = TabulatedCost::Create({4.0, 2.0});
  ASSERT_TRUE(cost.ok());
  EXPECT_NE((*cost)->name().find("tabulated"), std::string::npos);
}

// End-to-end: a mixed numeric + ordinal product space (the paper's first
// research direction). Hotels have (price, star rating); the rating is an
// ordinal dimension priced by a tabulated cost.
TEST(OrdinalIntegrationTest, MixedNumericOrdinalUpgrade) {
  OrdinalScale stars = Stars();

  // Embed: (normalized price in [0,1], star rank).
  auto embed = [&](double price_unit, const char* level) {
    Result<double> rank = stars.Rank(level);
    EXPECT_TRUE(rank.ok());
    return std::vector<double>{price_unit, *rank};
  };

  Dataset competitors(2);
  competitors.Add(embed(0.30, "5-star"));
  competitors.Add(embed(0.20, "4-star"));
  competitors.Add(embed(0.10, "3-star"));

  Dataset products(2);
  products.Add(embed(0.50, "2-star"));  // dominated by all three

  auto price_cost = std::make_shared<const ReciprocalCost>(0.05);
  auto star_cost = std::move(TabulatedCost::Create({50.0, 30.0, 18.0, 8.0,
                                                    2.0}))
                       .value();
  Result<ProductCostFunction> cost_fn =
      ProductCostFunction::Sum({price_cost, star_cost});
  ASSERT_TRUE(cost_fn.ok());

  Result<UpgradePlanner> planner =
      UpgradePlanner::Create(competitors, products, *cost_fn);
  ASSERT_TRUE(planner.ok());
  Result<std::vector<UpgradeResult>> top = planner->TopK(1, Algorithm::kJoin);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 1u);
  const UpgradeResult& r = (*top)[0];
  EXPECT_GT(r.cost, 0.0);

  // The upgraded plan decodes to a real catalog entry.
  const std::string new_level = stars.Unrank(r.upgraded[1]);
  Result<double> new_rank = stars.Rank(new_level);
  ASSERT_TRUE(new_rank.ok());
  EXPECT_LE(*new_rank, 3.0);  // at least as good as before
  EXPECT_LE(r.upgraded[0], 0.5 + 1e-12);

  // Decoded plan is not dominated by any competitor (decode rounds the
  // ordinal rank *down*, i.e. to a better level, so dominance-freedom is
  // preserved).
  const std::vector<double> decoded = {r.upgraded[0], *new_rank};
  for (size_t i = 0; i < competitors.size(); ++i) {
    EXPECT_FALSE(Dominates(competitors.data(static_cast<PointId>(i)),
                           decoded.data(), 2));
  }
}

}  // namespace
}  // namespace skyup
