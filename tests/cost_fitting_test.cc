#include "data/cost_fitting.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/random.h"

namespace skyup {
namespace {

TEST(CostFittingTest, RejectsDegenerateInput) {
  EXPECT_FALSE(FitAttributeCost({}).ok());
  EXPECT_FALSE(FitAttributeCost({{1.0, 2.0}}).ok());
  EXPECT_FALSE(
      FitAttributeCost({{1.0, 2.0}, {1.0, 3.0}}).ok());  // one distinct x
  EXPECT_FALSE(FitAttributeCost(
                   {{1.0, 2.0}, {2.0, std::nan("")}})
                   .ok());
}

TEST(CostFittingTest, PerfectlyMonotoneDataIsReproduced) {
  auto fit = FitAttributeCost({{0.0, 10.0}, {1.0, 6.0}, {2.0, 1.0}});
  ASSERT_TRUE(fit.ok());
  EXPECT_DOUBLE_EQ((*fit)->Cost(0.0), 10.0);
  EXPECT_DOUBLE_EQ((*fit)->Cost(1.0), 6.0);
  EXPECT_DOUBLE_EQ((*fit)->Cost(2.0), 1.0);
  EXPECT_DOUBLE_EQ((*fit)->Cost(0.5), 8.0);  // interpolated
  EXPECT_NEAR((*fit)->rmse(), 0.0, 1e-12);
}

TEST(CostFittingTest, ClampsBeyondKnots) {
  auto fit = FitAttributeCost({{1.0, 5.0}, {2.0, 3.0}});
  ASSERT_TRUE(fit.ok());
  EXPECT_DOUBLE_EQ((*fit)->Cost(0.0), 5.0);
  EXPECT_DOUBLE_EQ((*fit)->Cost(99.0), 3.0);
}

TEST(CostFittingTest, ViolatorsArePooled) {
  // The middle sample rises (violating monotonicity); PAVA pools it with
  // a neighbor so the fit is non-increasing: {10, then avg(4,6)=5, 5}.
  auto fit = FitAttributeCost({{0.0, 10.0}, {1.0, 4.0}, {2.0, 6.0}});
  ASSERT_TRUE(fit.ok());
  EXPECT_DOUBLE_EQ((*fit)->Cost(0.0), 10.0);
  EXPECT_DOUBLE_EQ((*fit)->Cost(1.0), 5.0);
  EXPECT_DOUBLE_EQ((*fit)->Cost(2.0), 5.0);
  EXPECT_GT((*fit)->rmse(), 0.0);
}

TEST(CostFittingTest, ConstantDataFitsConstant) {
  auto fit = FitAttributeCost({{0.0, 3.0}, {1.0, 3.0}, {2.0, 3.0}});
  ASSERT_TRUE(fit.ok());
  EXPECT_DOUBLE_EQ((*fit)->Cost(1.5), 3.0);
}

TEST(CostFittingTest, DuplicateValuesAveragedBeforeFit) {
  auto fit = FitAttributeCost({{1.0, 4.0}, {1.0, 6.0}, {2.0, 2.0}});
  ASSERT_TRUE(fit.ok());
  EXPECT_DOUBLE_EQ((*fit)->Cost(1.0), 5.0);
  EXPECT_DOUBLE_EQ((*fit)->Cost(2.0), 2.0);
}

TEST(CostFittingTest, FitIsAlwaysMonotoneOnNoisyData) {
  Rng rng(33);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<CostSample> samples;
    for (int i = 0; i < 60; ++i) {
      const double x = rng.NextDouble(0.0, 2.0);
      // True decreasing cost plus noise.
      const double y = 5.0 - 2.0 * x + rng.NextGaussian() * 0.8;
      samples.push_back({x, y});
    }
    auto fit = FitAttributeCost(samples);
    ASSERT_TRUE(fit.ok());
    const auto& knots = (*fit)->knots();
    for (size_t i = 1; i < knots.size(); ++i) {
      ASSERT_LT(knots[i - 1].value, knots[i].value);
      ASSERT_GE(knots[i - 1].cost, knots[i].cost - 1e-12);
    }
    // Evaluation is monotone too.
    double prev = (*fit)->Cost(-1.0);
    for (double x = -0.9; x < 3.0; x += 0.1) {
      const double cur = (*fit)->Cost(x);
      ASSERT_LE(cur, prev + 1e-12);
      prev = cur;
    }
  }
}

TEST(CostFittingTest, FittedFunctionWorksInsideProductCost) {
  // End to end: fit a per-dimension cost from samples and use it in the
  // planner's monotonicity validator.
  Rng rng(34);
  std::vector<CostSample> samples;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.NextDouble(0.0, 1.0);
    samples.push_back({x, 1.0 / (x + 0.1) + rng.NextGaussian() * 0.05});
  }
  auto fit = FitAttributeCost(samples);
  ASSERT_TRUE(fit.ok());
  Result<ProductCostFunction> product =
      ProductCostFunction::Sum({*fit, *fit});
  ASSERT_TRUE(product.ok());
  EXPECT_TRUE(product->CheckMonotonicity(0.0, 1.0, 1024).ok());
}

TEST(CostFittingTest, LeastSquaresAgainstBruteForceOnTinyCase) {
  // 3 points with one violation: the PAVA solution must beat (or tie)
  // any other monotone assignment on a coarse grid search.
  const std::vector<CostSample> samples = {{0, 4.0}, {1, 7.0}, {2, 3.0}};
  auto fit = FitAttributeCost(samples);
  ASSERT_TRUE(fit.ok());
  auto sq_err = [&](double y0, double y1, double y2) {
    return (y0 - 4) * (y0 - 4) + (y1 - 7) * (y1 - 7) + (y2 - 3) * (y2 - 3);
  };
  const auto& k = (*fit)->knots();
  const double fitted = sq_err(k[0].cost, k[1].cost, k[2].cost);
  for (double y0 = 0; y0 <= 8; y0 += 0.25) {
    for (double y1 = 0; y1 <= y0; y1 += 0.25) {
      for (double y2 = 0; y2 <= y1; y2 += 0.25) {
        ASSERT_LE(fitted, sq_err(y0, y1, y2) + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace skyup
