// Tests for the sharded parallel query engine (util/parallel.h +
// core/parallel_probing.cc): the ParallelFor primitive, the shared CAS-min
// threshold, field-complete ExecStats merging, validation parity with the
// sequential entry points, and exact-result determinism on tie-heavy data
// across thread counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "core/parallel_probing.h"
#include "core/planner.h"
#include "core/probing.h"
#include "core/topk_common.h"
#include "data/generator.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace skyup {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 2u, 7u, 64u}) {
    for (size_t n : {0u, 1u, 3u, 1000u}) {
      std::vector<int> hits(n, 0);
      ParallelFor(n, threads, [&](size_t /*shard*/, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) ++hits[i];
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i], 1) << "threads=" << threads << " n=" << n
                              << " i=" << i;
      }
    }
  }
}

TEST(ParallelForTest, ShardsAreContiguousAndOrdered) {
  std::vector<std::pair<size_t, size_t>> ranges(4);
  ParallelFor(10, 4, [&](size_t shard, size_t begin, size_t end) {
    ranges[shard] = {begin, end};
  });
  size_t expect_begin = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_EQ(begin, expect_begin);
    EXPECT_GT(end, begin);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, 10u);
}

// Regression for the old ceil-division split: with items barely above the
// thread count (e.g. 5 over 4), trailing shards received zero items while
// earlier shards doubled up. The balanced partition keeps every shard
// non-empty and all shard sizes within one of each other.
TEST(ParallelForTest, TinyInputsYieldBalancedNonEmptyShards) {
  for (size_t threads : {2u, 3u, 4u, 7u, 8u}) {
    for (size_t n : {2u, 3u, 5u, 7u, 9u, 11u, 13u}) {
      std::mutex mu;
      std::vector<size_t> sizes;
      ParallelFor(n, threads, [&](size_t /*shard*/, size_t begin, size_t end) {
        std::lock_guard<std::mutex> lock(mu);
        sizes.push_back(end - begin);
      });
      EXPECT_EQ(sizes.size(), std::min(threads, n))
          << "threads=" << threads << " n=" << n;
      size_t lo = n, hi = 0, total = 0;
      for (size_t s : sizes) {
        lo = std::min(lo, s);
        hi = std::max(hi, s);
        total += s;
      }
      EXPECT_GE(lo, 1u) << "empty shard: threads=" << threads << " n=" << n;
      EXPECT_LE(hi - lo, 1u) << "imbalance: threads=" << threads << " n=" << n;
      EXPECT_EQ(total, n);
    }
  }
}

// Zero items must be a clean no-op: no shard callbacks, no threads, no
// division-by-zero in the partition arithmetic (items/threads with threads
// resolved from 0 items).
TEST(ParallelForTest, ZeroItemsInvokesNoShards) {
  for (size_t threads : {0u, 1u, 4u}) {
    size_t calls = 0;
    ParallelFor(0, threads,
                [&](size_t /*shard*/, size_t /*begin*/, size_t /*end*/) {
                  ++calls;
                });
    EXPECT_EQ(calls, 0u) << "threads=" << threads;
  }
}

TEST(ResolveThreadCountTest, CapsAndDefaults) {
  EXPECT_EQ(ResolveThreadCount(4, 100), 4u);
  EXPECT_EQ(ResolveThreadCount(4, 2), 2u);
  EXPECT_EQ(ResolveThreadCount(7, 0), 1u);  // never zero workers
  EXPECT_GE(ResolveThreadCount(0, 1000), 1u);
}

TEST(AtomicCostThresholdTest, OnlyEverLowers) {
  AtomicCostThreshold tau;
  EXPECT_EQ(tau.Get(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(tau.RelaxTo(5.0));
  EXPECT_EQ(tau.Get(), 5.0);
  EXPECT_FALSE(tau.RelaxTo(7.0));  // raising is a no-op
  EXPECT_EQ(tau.Get(), 5.0);
  EXPECT_FALSE(tau.RelaxTo(5.0));  // equal is a no-op
  EXPECT_TRUE(tau.RelaxTo(1.5));
  EXPECT_EQ(tau.Get(), 1.5);
}

TEST(AtomicCostThresholdTest, ConcurrentRelaxKeepsMinimum) {
  AtomicCostThreshold tau;
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&tau, w] {
      for (int i = 1000; i > 0; --i) {
        tau.RelaxTo(static_cast<double>(i + w));
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(tau.Get(), 1.0);
}

// Every ExecStats field must survive MergeFrom; the static_assert inside
// MergeFrom already pins the field count, this pins the arithmetic.
TEST(ExecStatsTest, MergeFromSumsEveryField) {
  ExecStats a;
  a.products_processed = 1;
  a.dominators_fetched = 2;
  a.skyline_points_total = 3;
  a.upgrade_calls = 4;
  a.heap_pops = 5;
  a.t_expansions = 6;
  a.p_refinements = 7;
  a.lbc_evaluations = 8;
  a.jl_entries_pruned = 9;
  a.candidates_pruned = 10;
  a.threshold_updates = 11;
  a.nodes_visited = 12;
  a.points_scanned = 13;
  a.block_kernel_calls = 14;

  ExecStats b;
  b.products_processed = 100;
  b.dominators_fetched = 200;
  b.skyline_points_total = 300;
  b.upgrade_calls = 400;
  b.heap_pops = 500;
  b.t_expansions = 600;
  b.p_refinements = 700;
  b.lbc_evaluations = 800;
  b.jl_entries_pruned = 900;
  b.candidates_pruned = 1000;
  b.threshold_updates = 1100;
  b.nodes_visited = 1200;
  b.points_scanned = 1300;
  b.block_kernel_calls = 1400;

  a += b;
  EXPECT_EQ(a.products_processed, 101u);
  EXPECT_EQ(a.dominators_fetched, 202u);
  EXPECT_EQ(a.skyline_points_total, 303u);
  EXPECT_EQ(a.upgrade_calls, 404u);
  EXPECT_EQ(a.heap_pops, 505u);
  EXPECT_EQ(a.t_expansions, 606u);
  EXPECT_EQ(a.p_refinements, 707u);
  EXPECT_EQ(a.lbc_evaluations, 808u);
  EXPECT_EQ(a.jl_entries_pruned, 909u);
  EXPECT_EQ(a.candidates_pruned, 1010u);
  EXPECT_EQ(a.threshold_updates, 1111u);
  EXPECT_EQ(a.nodes_visited, 1212u);
  EXPECT_EQ(a.points_scanned, 1313u);
  EXPECT_EQ(a.block_kernel_calls, 1414u);
}

struct Fixture {
  Dataset competitors;
  Dataset products;
  ProductCostFunction cost_fn;
};

Fixture Make(size_t np, size_t nt, size_t dims, Distribution distribution,
             uint64_t seed) {
  Result<Dataset> p = GenerateCompetitors(np, dims, distribution, seed);
  Result<Dataset> t = GenerateProducts(nt, dims, distribution, seed + 1);
  EXPECT_TRUE(p.ok() && t.ok());
  return Fixture{std::move(p).value(), std::move(t).value(),
                 ProductCostFunction::ReciprocalSum(dims, 1e-3)};
}

// A candidate set where every cost appears many times: each base product is
// replicated verbatim, so the (cost, id) tie-break does all the ranking
// work and any ordering drift between paths becomes visible.
Dataset TieHeavyProducts(const Dataset& base, size_t copies) {
  Dataset out(base.dims());
  out.Reserve(base.size() * copies);
  for (size_t c = 0; c < copies; ++c) {
    for (size_t i = 0; i < base.size(); ++i) {
      out.Add(base.data(static_cast<PointId>(i)));
    }
  }
  return out;
}

void ExpectBitIdentical(const std::vector<UpgradeResult>& expected,
                        const std::vector<UpgradeResult>& actual,
                        const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].product_id, expected[i].product_id)
        << label << " rank=" << i;
    EXPECT_EQ(actual[i].cost, expected[i].cost) << label << " rank=" << i;
    EXPECT_EQ(actual[i].upgraded, expected[i].upgraded)
        << label << " rank=" << i;
    EXPECT_EQ(actual[i].already_competitive, expected[i].already_competitive)
        << label << " rank=" << i;
  }
}

std::vector<size_t> ThreadSweep() {
  return {1, 2, 7, std::max<size_t>(1, std::thread::hardware_concurrency())};
}

TEST(ParallelEngineTest, TieHeavyImprovedProbingIsDeterministic) {
  for (auto distribution :
       {Distribution::kIndependent, Distribution::kAntiCorrelated}) {
    Fixture fx = Make(600, 45, 3, distribution, 101);
    Dataset products = TieHeavyProducts(fx.products, 8);  // 360, all 8-fold
    Result<RTree> tree = RTree::BulkLoad(fx.competitors);
    ASSERT_TRUE(tree.ok());

    Result<std::vector<UpgradeResult>> sequential =
        TopKImprovedProbing(tree.value(), products, fx.cost_fn, 20);
    ASSERT_TRUE(sequential.ok());

    for (size_t threads : ThreadSweep()) {
      ExecStats stats;
      Result<std::vector<UpgradeResult>> parallel =
          TopKImprovedProbingParallel(tree.value(), products, fx.cost_fn, 20,
                                      1e-6, threads, &stats);
      ASSERT_TRUE(parallel.ok());
      ExpectBitIdentical(*sequential, *parallel,
                         "improved threads=" + std::to_string(threads));
      // Aggregated stats must be self-consistent: every candidate was
      // either pruned by the lower bound or went through Algorithm 1.
      EXPECT_EQ(stats.products_processed, products.size());
      EXPECT_EQ(stats.upgrade_calls + stats.candidates_pruned,
                stats.products_processed)
          << "threads=" << threads;
    }
  }
}

TEST(ParallelEngineTest, BasicProbingParallelMatchesSequential) {
  Fixture fx = Make(700, 90, 3, Distribution::kAntiCorrelated, 55);
  Result<RTree> tree = RTree::BulkLoad(fx.competitors);
  ASSERT_TRUE(tree.ok());
  Result<std::vector<UpgradeResult>> sequential =
      TopKBasicProbing(tree.value(), fx.products, fx.cost_fn, 12);
  ASSERT_TRUE(sequential.ok());
  for (size_t threads : ThreadSweep()) {
    ExecStats stats;
    Result<std::vector<UpgradeResult>> parallel = TopKBasicProbingParallel(
        tree.value(), fx.products, fx.cost_fn, 12, 1e-6, threads, &stats);
    ASSERT_TRUE(parallel.ok());
    ExpectBitIdentical(*sequential, *parallel,
                       "basic threads=" + std::to_string(threads));
    EXPECT_EQ(stats.upgrade_calls + stats.candidates_pruned,
              stats.products_processed);
  }
}

TEST(ParallelEngineTest, BruteForceParallelMatchesSequential) {
  Fixture fx = Make(300, 60, 2, Distribution::kIndependent, 77);
  Result<std::vector<UpgradeResult>> sequential =
      TopKBruteForce(fx.competitors, fx.products, fx.cost_fn, 9);
  ASSERT_TRUE(sequential.ok());
  for (size_t threads : ThreadSweep()) {
    ExecStats stats;
    Result<std::vector<UpgradeResult>> parallel = TopKBruteForceParallel(
        fx.competitors, fx.products, fx.cost_fn, 9, 1e-6, threads, &stats);
    ASSERT_TRUE(parallel.ok());
    ExpectBitIdentical(*sequential, *parallel,
                       "brute threads=" + std::to_string(threads));
    EXPECT_EQ(stats.upgrade_calls + stats.candidates_pruned,
              stats.products_processed);
  }
}

// Interleaves near-competitive candidates (drawn from the competitor
// distribution, many of them undominated) with deeply dominated ones from
// the shifted (1,2]^d product region. The cheap candidates pull the top-k
// threshold toward zero early in every shard, after which the positive
// lower bound of each deeply dominated candidate exceeds it.
Dataset MixedPositionProducts(size_t n_each, size_t dims, uint64_t seed) {
  Result<Dataset> competitive =
      GenerateCompetitors(n_each, dims, Distribution::kAntiCorrelated, seed);
  Result<Dataset> dominated =
      GenerateProducts(n_each, dims, Distribution::kAntiCorrelated, seed + 1);
  EXPECT_TRUE(competitive.ok() && dominated.ok());
  Dataset out(dims);
  out.Reserve(2 * n_each);
  for (size_t i = 0; i < n_each; ++i) {
    out.Add(competitive->data(static_cast<PointId>(i)));
    out.Add(dominated->data(static_cast<PointId>(i)));
  }
  return out;
}

// The lower-bound cut must actually fire on a mixed catalog — and must
// never change the result.
TEST(ParallelEngineTest, PruningFiresOnMixedCatalog) {
  Result<Dataset> p =
      GenerateCompetitors(2000, 3, Distribution::kAntiCorrelated, 13);
  ASSERT_TRUE(p.ok());
  Dataset products = MixedPositionProducts(200, 3, 1300);
  ProductCostFunction cost_fn = ProductCostFunction::ReciprocalSum(3, 1e-3);
  Result<RTree> tree = RTree::BulkLoad(*p);
  ASSERT_TRUE(tree.ok());

  Result<std::vector<UpgradeResult>> sequential =
      TopKImprovedProbing(tree.value(), products, cost_fn, 5);
  ASSERT_TRUE(sequential.ok());
  for (size_t threads : ThreadSweep()) {
    ExecStats stats;
    Result<std::vector<UpgradeResult>> parallel = TopKImprovedProbingParallel(
        tree.value(), products, cost_fn, 5, 1e-6, threads, &stats);
    ASSERT_TRUE(parallel.ok());
    ExpectBitIdentical(*sequential, *parallel,
                       "pruned threads=" + std::to_string(threads));
    EXPECT_GT(stats.candidates_pruned, 0u) << "threads=" << threads;
    EXPECT_GT(stats.threshold_updates, 0u) << "threads=" << threads;
    EXPECT_GT(stats.lbc_evaluations, 0u) << "threads=" << threads;
    EXPECT_EQ(stats.upgrade_calls + stats.candidates_pruned,
              stats.products_processed);
  }
}

// Sequential and parallel entry points must reject bad input with the
// exact same diagnostics (shared ValidateTopKArgs).
TEST(ParallelEngineTest, ValidationMatchesSequentialDiagnostics) {
  Fixture fx = Make(100, 10, 2, Distribution::kIndependent, 21);
  Result<RTree> tree = RTree::BulkLoad(fx.competitors);
  ASSERT_TRUE(tree.ok());
  Dataset empty(2);
  Dataset wrong_dims(3);
  wrong_dims.Add(std::vector<double>{1.0, 1.0, 1.0});

  struct Case {
    const char* name;
    Result<std::vector<UpgradeResult>> sequential;
    Result<std::vector<UpgradeResult>> parallel;
  };
  Case cases[] = {
      {"k=0", TopKImprovedProbing(tree.value(), fx.products, fx.cost_fn, 0),
       TopKImprovedProbingParallel(tree.value(), fx.products, fx.cost_fn, 0)},
      {"epsilon<0",
       TopKImprovedProbing(tree.value(), fx.products, fx.cost_fn, 1, -1.0),
       TopKImprovedProbingParallel(tree.value(), fx.products, fx.cost_fn, 1,
                                   -1.0)},
      {"empty T", TopKImprovedProbing(tree.value(), empty, fx.cost_fn, 1),
       TopKImprovedProbingParallel(tree.value(), empty, fx.cost_fn, 1)},
      {"dims mismatch",
       TopKImprovedProbing(tree.value(), wrong_dims, fx.cost_fn, 1),
       TopKImprovedProbingParallel(tree.value(), wrong_dims, fx.cost_fn, 1)},
  };
  for (Case& c : cases) {
    EXPECT_FALSE(c.sequential.ok()) << c.name;
    EXPECT_FALSE(c.parallel.ok()) << c.name;
    EXPECT_EQ(c.sequential.status().code(), c.parallel.status().code())
        << c.name;
    EXPECT_EQ(c.sequential.status().message(), c.parallel.status().message())
        << c.name;
  }
}

TEST(QueryControlTest, PreCancelledQueryUnwindsWithCancelled) {
  Fixture fx = Make(400, 80, 3, Distribution::kAntiCorrelated, 91);
  Result<RTree> tree = RTree::BulkLoad(fx.competitors);
  ASSERT_TRUE(tree.ok());
  QueryControl control;
  control.Cancel();
  Result<std::vector<UpgradeResult>> top = TopKImprovedProbingParallel(
      tree.value(), fx.products, fx.cost_fn, 5, 1e-6, 4, nullptr, nullptr,
      &control);
  ASSERT_FALSE(top.ok());
  EXPECT_EQ(top.status().code(), StatusCode::kCancelled);
}

TEST(QueryControlTest, ExpiredDeadlineUnwindsWithDeadlineExceeded) {
  Fixture fx = Make(400, 80, 3, Distribution::kAntiCorrelated, 92);
  Result<RTree> tree = RTree::BulkLoad(fx.competitors);
  ASSERT_TRUE(tree.ok());
  QueryControl control;
  control.SetDeadline(SteadyClock::now() - std::chrono::milliseconds(1));
  Result<std::vector<UpgradeResult>> top = TopKImprovedProbingParallel(
      tree.value(), fx.products, fx.cost_fn, 5, 1e-6, 4, nullptr, nullptr,
      &control);
  ASSERT_FALSE(top.ok());
  EXPECT_EQ(top.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(QueryControlTest, CancellationWinsWhenBothFired) {
  // The contract pins the tie: cancellation is checked before the
  // deadline, so a token with both fired reports kCancelled.
  QueryControl control;
  control.SetDeadline(SteadyClock::now() - std::chrono::milliseconds(1));
  control.Cancel();
  EXPECT_EQ(control.Check().code(), StatusCode::kCancelled);
}

TEST(QueryControlTest, UnfiredControlLeavesResultsBitIdentical) {
  Fixture fx = Make(500, 70, 3, Distribution::kIndependent, 93);
  Result<RTree> tree = RTree::BulkLoad(fx.competitors);
  ASSERT_TRUE(tree.ok());
  QueryControl control;
  control.SetDeadline(SteadyClock::now() + std::chrono::hours(1));
  for (size_t threads : ThreadSweep()) {
    Result<std::vector<UpgradeResult>> plain = TopKImprovedProbingParallel(
        tree.value(), fx.products, fx.cost_fn, 7, 1e-6, threads);
    Result<std::vector<UpgradeResult>> tracked = TopKImprovedProbingParallel(
        tree.value(), fx.products, fx.cost_fn, 7, 1e-6, threads, nullptr,
        nullptr, &control);
    ASSERT_TRUE(plain.ok() && tracked.ok());
    ExpectBitIdentical(plain.value(), tracked.value(),
                       "control threads=" + std::to_string(threads));
  }
}

TEST(QueryControlTest, StatsStayConsistentOnEarlyUnwind) {
  // Even a cancelled query must merge whatever per-shard accounting
  // happened; the accounting identity is enforced by DCHECK inside the
  // engine, here we just confirm the call survives with stats attached.
  Fixture fx = Make(600, 120, 3, Distribution::kAntiCorrelated, 94);
  Result<RTree> tree = RTree::BulkLoad(fx.competitors);
  ASSERT_TRUE(tree.ok());
  QueryControl control;
  control.Cancel();
  ExecStats stats;
  Result<std::vector<UpgradeResult>> top = TopKImprovedProbingParallel(
      tree.value(), fx.products, fx.cost_fn, 5, 1e-6, 4, &stats, nullptr,
      &control);
  ASSERT_FALSE(top.ok());
  EXPECT_EQ(stats.upgrade_calls + stats.candidates_pruned,
            stats.products_processed);
}

TEST(QueryControlTest, PlannerChecksControlUpFront) {
  Fixture fx = Make(200, 30, 3, Distribution::kIndependent, 95);
  Result<UpgradePlanner> planner = UpgradePlanner::Create(
      fx.competitors, fx.products, fx.cost_fn, PlannerOptions{});
  ASSERT_TRUE(planner.ok());
  QueryControl control;
  control.Cancel();
  // Sequential algorithms check once before running.
  Result<std::vector<UpgradeResult>> top = planner->TopK(
      3, Algorithm::kJoin, nullptr, nullptr, &control);
  ASSERT_FALSE(top.ok());
  EXPECT_EQ(top.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace skyup
