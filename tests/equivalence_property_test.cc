// Cross-algorithm equivalence: the paper states that probing and join
// "basically yield the same upgrading results" (Section III-B5). This suite
// randomizes workloads across distributions, dimensionalities, fanouts, and
// lower-bound kinds, and checks all algorithms against the brute-force
// oracle. The join runs in the library's sound bound mode, where the
// equality is provable; the paper mode's agreement rate is measured in
// bench_ablation instead.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/join.h"
#include "core/planner.h"
#include "core/probing.h"
#include "data/generator.h"
#include "util/random.h"

namespace skyup {
namespace {

struct SweepParam {
  size_t np;
  size_t nt;
  size_t dims;
  Distribution distribution;
  size_t fanout;
  uint64_t seed;
};

std::string ParamName(const SweepParam& p) {
  // Built by append: gcc 12's -Wrestrict false-fires on chained
  // `const char* + std::string` concatenation (PR105329).
  std::string name = "P";
  name += std::to_string(p.np);
  name += "_T";
  name += std::to_string(p.nt);
  name += "_d";
  name += std::to_string(p.dims);
  name += '_';
  name += "iac"[static_cast<int>(p.distribution)];
  name += "_f";
  name += std::to_string(p.fanout);
  name += "_s";
  name += std::to_string(p.seed);
  return name;
}

class EquivalenceSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EquivalenceSweep, AllAlgorithmsMatchOracleCosts) {
  const SweepParam param = GetParam();
  Result<Dataset> p = GenerateCompetitors(param.np, param.dims,
                                          param.distribution, param.seed);
  Result<Dataset> t = GenerateProducts(param.nt, param.dims,
                                       param.distribution, param.seed + 1);
  ASSERT_TRUE(p.ok() && t.ok());
  ProductCostFunction f =
      ProductCostFunction::ReciprocalSum(param.dims, 1e-3);

  const size_t k = std::min<size_t>(10, param.nt);
  Result<std::vector<UpgradeResult>> oracle = TopKBruteForce(*p, *t, f, k);
  ASSERT_TRUE(oracle.ok());

  PlannerOptions options;
  options.rtree_fanout = param.fanout;
  options.bound_mode = BoundMode::kSound;
  for (auto kind : {LowerBoundKind::kNaive, LowerBoundKind::kConservative,
                    LowerBoundKind::kAggressive}) {
    options.lower_bound = kind;
    Result<UpgradePlanner> planner = UpgradePlanner::Create(*p, *t, f,
                                                            options);
    ASSERT_TRUE(planner.ok());
    for (auto algo : {Algorithm::kBasicProbing, Algorithm::kImprovedProbing,
                      Algorithm::kJoin}) {
      Result<std::vector<UpgradeResult>> got = planner->TopK(k, algo);
      ASSERT_TRUE(got.ok())
          << AlgorithmName(algo) << ": " << got.status().ToString();
      ASSERT_EQ(got->size(), oracle->size()) << AlgorithmName(algo);
      for (size_t i = 0; i < k; ++i) {
        ASSERT_NEAR((*got)[i].cost, (*oracle)[i].cost, 1e-9)
            << AlgorithmName(algo) << " with " << LowerBoundKindName(kind)
            << " diverged at rank " << i;
      }
      // Probing results do not depend on the lower-bound kind; only run
      // them once.
      if (kind != LowerBoundKind::kNaive &&
          algo != Algorithm::kJoin) {
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EquivalenceSweep,
    ::testing::Values(
        SweepParam{300, 40, 2, Distribution::kIndependent, 8, 1},
        SweepParam{300, 40, 2, Distribution::kAntiCorrelated, 8, 2},
        SweepParam{300, 40, 2, Distribution::kCorrelated, 8, 3},
        SweepParam{500, 60, 3, Distribution::kIndependent, 16, 4},
        SweepParam{500, 60, 3, Distribution::kAntiCorrelated, 16, 5},
        SweepParam{400, 50, 4, Distribution::kIndependent, 4, 6},
        SweepParam{400, 50, 4, Distribution::kAntiCorrelated, 32, 7},
        SweepParam{350, 45, 5, Distribution::kIndependent, 16, 8},
        SweepParam{350, 45, 5, Distribution::kAntiCorrelated, 16, 9},
        SweepParam{250, 30, 6, Distribution::kAntiCorrelated, 8, 10}),
    [](const auto& param_info) { return ParamName(param_info.param); });

// Mixed-position products: unlike the paper's (1,2]^c layout, place T
// points *inside* the competitor cube so some are undominated, some nearly
// competitive, some deep — exercising all LBC cases.
TEST(EquivalencePropertyTest, MixedPositionProductsAgree) {
  Rng rng(777);
  for (int trial = 0; trial < 6; ++trial) {
    const size_t dims = 2 + static_cast<size_t>(trial % 3);
    Result<Dataset> p = GenerateCompetitors(
        400, dims,
        trial % 2 == 0 ? Distribution::kIndependent
                       : Distribution::kAntiCorrelated,
        900 + static_cast<uint64_t>(trial));
    ASSERT_TRUE(p.ok());
    Dataset t(dims);
    for (int i = 0; i < 50; ++i) {
      std::vector<double> row(dims);
      for (auto& v : row) v = rng.NextDouble(0.0, 1.4);
      t.Add(row);
    }
    ProductCostFunction f = ProductCostFunction::ReciprocalSum(dims, 1e-3);

    Result<std::vector<UpgradeResult>> oracle = TopKBruteForce(*p, t, f, 15);
    ASSERT_TRUE(oracle.ok());

    PlannerOptions options;
    options.bound_mode = BoundMode::kSound;
    options.rtree_fanout = 8;
    Result<UpgradePlanner> planner = UpgradePlanner::Create(*p, t, f,
                                                            options);
    ASSERT_TRUE(planner.ok());
    for (auto algo : {Algorithm::kBasicProbing, Algorithm::kImprovedProbing,
                      Algorithm::kJoin}) {
      Result<std::vector<UpgradeResult>> got = planner->TopK(15, algo);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(got->size(), oracle->size());
      for (size_t i = 0; i < got->size(); ++i) {
        ASSERT_NEAR((*got)[i].cost, (*oracle)[i].cost, 1e-9)
            << AlgorithmName(algo) << " trial " << trial << " rank " << i;
      }
    }
  }
}

// Degenerate layouts that stress edge paths.
TEST(EquivalencePropertyTest, ManyDuplicateCompetitors) {
  Dataset p(2);
  for (int i = 0; i < 200; ++i) p.Add({0.5, 0.5});
  p.Add({0.2, 0.8});
  Dataset t(2);
  t.Add({1.0, 1.0});
  t.Add({0.4, 0.6});  // undominated: beats the clones on x, (0.2,0.8) on y
  t.Add({0.6, 0.9});  // dominated by (0.5,0.5) and (0.2,0.8)
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(2, 1e-3);

  Result<std::vector<UpgradeResult>> oracle = TopKBruteForce(p, t, f, 3);
  ASSERT_TRUE(oracle.ok());
  PlannerOptions options;
  options.bound_mode = BoundMode::kSound;
  options.rtree_fanout = 4;
  Result<UpgradePlanner> planner = UpgradePlanner::Create(p, t, f, options);
  ASSERT_TRUE(planner.ok());
  for (auto algo : {Algorithm::kBasicProbing, Algorithm::kImprovedProbing,
                    Algorithm::kJoin}) {
    Result<std::vector<UpgradeResult>> got = planner->TopK(3, algo);
    ASSERT_TRUE(got.ok());
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_NEAR((*got)[i].cost, (*oracle)[i].cost, 1e-9)
          << AlgorithmName(algo);
    }
  }
}

TEST(EquivalencePropertyTest, SingleCompetitorSingleProduct) {
  Dataset p(3);
  p.Add({0.1, 0.2, 0.3});
  Dataset t(3);
  t.Add({0.5, 0.5, 0.5});
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(3, 1e-3);

  Result<std::vector<UpgradeResult>> oracle = TopKBruteForce(p, t, f, 1);
  ASSERT_TRUE(oracle.ok());
  Result<UpgradePlanner> planner = UpgradePlanner::Create(p, t, f);
  ASSERT_TRUE(planner.ok());
  for (auto algo : {Algorithm::kBasicProbing, Algorithm::kImprovedProbing,
                    Algorithm::kJoin}) {
    Result<std::vector<UpgradeResult>> got = planner->TopK(1, algo);
    ASSERT_TRUE(got.ok());
    EXPECT_NEAR((*got)[0].cost, (*oracle)[0].cost, 1e-9);
    EXPECT_EQ((*got)[0].product_id, 0);
  }
}

// The full progressive stream in sound mode must equal the full sorted
// oracle ranking, not just the first k.
TEST(EquivalencePropertyTest, FullStreamMatchesOracle) {
  Result<Dataset> p =
      GenerateCompetitors(600, 3, Distribution::kAntiCorrelated, 1001);
  Result<Dataset> t =
      GenerateProducts(70, 3, Distribution::kAntiCorrelated, 1002);
  ASSERT_TRUE(p.ok() && t.ok());
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(3, 1e-3);

  Result<std::vector<UpgradeResult>> oracle =
      TopKBruteForce(*p, *t, f, t->size());
  ASSERT_TRUE(oracle.ok());

  PlannerOptions options;
  options.bound_mode = BoundMode::kSound;
  Result<UpgradePlanner> planner = UpgradePlanner::Create(*p, *t, f, options);
  ASSERT_TRUE(planner.ok());
  Result<JoinCursor> cursor = planner->OpenJoinCursor();
  ASSERT_TRUE(cursor.ok());

  size_t rank = 0;
  while (auto r = cursor->Next()) {
    ASSERT_LT(rank, oracle->size());
    ASSERT_NEAR(r->cost, (*oracle)[rank].cost, 1e-9) << "rank " << rank;
    ++rank;
  }
  EXPECT_EQ(rank, oracle->size());
}

}  // namespace
}  // namespace skyup
