#include "core/planner.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "data/generator.h"
#include "data/normalize.h"

namespace skyup {
namespace {

Dataset MakeDataset(const std::vector<std::vector<double>>& rows) {
  Result<Dataset> r = Dataset::FromRows(rows);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

// The paper's motivating example: Tables I and II. Standby time and camera
// pixels are maximize-preferred; weight is minimize-preferred.
struct PhoneExample {
  Dataset competitors;  // Table I, normalized
  Dataset products;     // Table II, normalized
  Normalizer normalizer;
};

PhoneExample MakePhones() {
  Dataset raw_p = MakeDataset({{140, 200, 2.0},
                               {180, 150, 3.0},
                               {100, 160, 3.0},
                               {180, 180, 3.0},
                               {120, 180, 4.0},
                               {150, 150, 3.0}});
  Dataset raw_t = MakeDataset({{150, 120, 2.0},
                               {180, 130, 1.0},
                               {180, 120, 3.0},
                               {220, 180, 2.0}});
  Result<Normalizer> norm = Normalizer::FitAll(
      {&raw_p, &raw_t},
      {Direction::kMinimize, Direction::kMaximize, Direction::kMaximize});
  EXPECT_TRUE(norm.ok());
  return PhoneExample{norm->Normalize(raw_p), norm->Normalize(raw_t),
                      std::move(norm).value()};
}

TEST(PlannerTest, CreateValidatesInputs) {
  Dataset p = MakeDataset({{1, 2}});
  Dataset t = MakeDataset({{3, 4}});
  ProductCostFunction f2 = ProductCostFunction::ReciprocalSum(2);
  ProductCostFunction f3 = ProductCostFunction::ReciprocalSum(3);

  EXPECT_TRUE(UpgradePlanner::Create(p, t, f2).ok());
  EXPECT_FALSE(UpgradePlanner::Create(Dataset(2), t, f2).ok());
  EXPECT_FALSE(UpgradePlanner::Create(p, Dataset(2), f2).ok());
  EXPECT_FALSE(UpgradePlanner::Create(p, t, f3).ok());
  EXPECT_FALSE(UpgradePlanner::Create(p, MakeDataset({{1, 2, 3}}), f2).ok());

  PlannerOptions bad_eps;
  bad_eps.epsilon = -1;
  EXPECT_FALSE(UpgradePlanner::Create(p, t, f2, bad_eps).ok());
  PlannerOptions bad_fanout;
  bad_fanout.rtree_fanout = 1;
  EXPECT_FALSE(UpgradePlanner::Create(p, t, f2, bad_fanout).ok());
}

TEST(PlannerTest, AllAlgorithmsAgreeOnPhoneExample) {
  PhoneExample ex = MakePhones();
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(3, 1e-2);
  Result<UpgradePlanner> planner =
      UpgradePlanner::Create(ex.competitors, ex.products, f);
  ASSERT_TRUE(planner.ok());

  Result<std::vector<UpgradeResult>> reference =
      planner->TopK(4, Algorithm::kBruteForce);
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(reference->size(), 4u);
  // Every phone in T is dominated (the paper's premise).
  for (const UpgradeResult& r : *reference) {
    EXPECT_FALSE(r.already_competitive);
    EXPECT_GT(r.cost, 0.0);
  }

  for (auto algo : {Algorithm::kBasicProbing, Algorithm::kImprovedProbing,
                    Algorithm::kJoin}) {
    Result<std::vector<UpgradeResult>> got = planner->TopK(4, algo);
    ASSERT_TRUE(got.ok()) << AlgorithmName(algo);
    ASSERT_EQ(got->size(), 4u);
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_EQ((*got)[i].product_id, (*reference)[i].product_id)
          << AlgorithmName(algo) << " rank " << i;
      EXPECT_NEAR((*got)[i].cost, (*reference)[i].cost, 1e-9);
    }
  }
}

TEST(PlannerTest, DenormalizedUpgradeImprovesMaximizeDims) {
  PhoneExample ex = MakePhones();
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(3, 1e-2);
  Result<UpgradePlanner> planner =
      UpgradePlanner::Create(ex.competitors, ex.products, f);
  ASSERT_TRUE(planner.ok());
  Result<std::vector<UpgradeResult>> top = planner->TopK(1, Algorithm::kJoin);
  ASSERT_TRUE(top.ok());
  const UpgradeResult& best = (*top)[0];

  const std::vector<double> upgraded_raw =
      ex.normalizer.Denormalize(best.upgraded);
  const std::vector<double> original_raw = ex.normalizer.Denormalize(
      std::vector<double>(ex.products.data(best.product_id),
                          ex.products.data(best.product_id) + 3));
  // Weight can only shrink; standby and pixels can only grow.
  EXPECT_LE(upgraded_raw[0], original_raw[0] + 1e-6);
  EXPECT_GE(upgraded_raw[1], original_raw[1] - 1e-6);
  EXPECT_GE(upgraded_raw[2], original_raw[2] - 1e-6);
}

TEST(PlannerTest, MonotonicityValidationRejectsBadCostFunction) {
  Dataset p = MakeDataset({{0.1, 0.1}, {0.9, 0.9}});
  Dataset t = MakeDataset({{1.5, 1.5}});

  // A cost that *rises* with the attribute value violates the paper's
  // monotonicity assumption (better products would be cheaper).
  class Rising final : public AttributeCostFunction {
   public:
    double Cost(double value) const override { return value * value; }
    std::string name() const override { return "rising"; }
  };
  Result<ProductCostFunction> bad = ProductCostFunction::Sum(
      {std::make_shared<const Rising>(), std::make_shared<const Rising>()});
  ASSERT_TRUE(bad.ok());
  PlannerOptions options;
  options.validate_monotonicity = true;
  Result<UpgradePlanner> planner =
      UpgradePlanner::Create(p, t, std::move(bad).value(), options);
  ASSERT_FALSE(planner.ok());
  EXPECT_EQ(planner.status().code(), StatusCode::kFailedPrecondition);

  Result<UpgradePlanner> good = UpgradePlanner::Create(
      p, t, ProductCostFunction::ReciprocalSum(2), options);
  EXPECT_TRUE(good.ok()) << good.status().ToString();
}

TEST(PlannerTest, JoinCursorStreamsAllProducts) {
  Result<Dataset> p =
      GenerateCompetitors(400, 2, Distribution::kIndependent, 61);
  Result<Dataset> t = GenerateProducts(30, 2, Distribution::kIndependent, 62);
  ASSERT_TRUE(p.ok() && t.ok());
  Result<UpgradePlanner> planner = UpgradePlanner::Create(
      *p, *t, ProductCostFunction::ReciprocalSum(2, 1e-3));
  ASSERT_TRUE(planner.ok());

  Result<JoinCursor> cursor = planner->OpenJoinCursor();
  ASSERT_TRUE(cursor.ok());
  size_t n = 0;
  while (cursor->Next()) ++n;
  EXPECT_EQ(n, 30u);
}

TEST(PlannerTest, TopKWithinSetRanksCatalog) {
  // A catalog where members 0 and 1 are undominated, 2 and 3 dominated;
  // 2 sits nearer the frontier than 3.
  Dataset catalog = MakeDataset(
      {{0.1, 0.9}, {0.9, 0.1}, {0.5, 0.95}, {1.8, 1.8}});
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(2, 1e-3);
  Result<std::vector<UpgradeResult>> top =
      UpgradePlanner::TopKWithinSet(catalog, f, 4);
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  ASSERT_EQ(top->size(), 4u);
  EXPECT_TRUE((*top)[0].already_competitive);
  EXPECT_TRUE((*top)[1].already_competitive);
  EXPECT_DOUBLE_EQ((*top)[0].cost, 0.0);
  // (0.5, 0.95) is dominated by (0.1, 0.9) but sits just off the frontier.
  EXPECT_FALSE((*top)[2].already_competitive);
  EXPECT_FALSE((*top)[3].already_competitive);
  EXPECT_LT((*top)[2].cost, (*top)[3].cost);
}

TEST(PlannerTest, TopKWithinSetDuplicatesAreCompetitive) {
  // Two identical points do not dominate each other.
  Dataset catalog = MakeDataset({{0.5, 0.5}, {0.5, 0.5}, {0.8, 0.8}});
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(2, 1e-3);
  Result<std::vector<UpgradeResult>> top =
      UpgradePlanner::TopKWithinSet(catalog, f, 3);
  ASSERT_TRUE(top.ok());
  EXPECT_TRUE((*top)[0].already_competitive);
  EXPECT_TRUE((*top)[1].already_competitive);
  EXPECT_FALSE((*top)[2].already_competitive);
}

TEST(PlannerTest, TopKWithReportMatchesTopKAndCarriesTelemetry) {
  PhoneExample ex = MakePhones();
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(3, 1e-2);
  Result<UpgradePlanner> planner =
      UpgradePlanner::Create(ex.competitors, ex.products, f);
  ASSERT_TRUE(planner.ok());

  for (auto algo : {Algorithm::kImprovedProbing, Algorithm::kJoin,
                    Algorithm::kBruteForce}) {
    Result<std::vector<UpgradeResult>> plain = planner->TopK(4, algo);
    ASSERT_TRUE(plain.ok()) << AlgorithmName(algo);
    Result<TopKReport> report = planner->TopKWithReport(4, algo);
    ASSERT_TRUE(report.ok()) << AlgorithmName(algo);

    EXPECT_EQ(report->algorithm, algo);
    EXPECT_EQ(report->k, 4u);
    ASSERT_EQ(report->results.size(), plain->size()) << AlgorithmName(algo);
    for (size_t i = 0; i < plain->size(); ++i) {
      EXPECT_EQ(report->results[i].product_id, (*plain)[i].product_id);
      EXPECT_NEAR(report->results[i].cost, (*plain)[i].cost, 1e-9);
    }

    EXPECT_GT(report->wall_seconds, 0.0);
    // Single-threaded engines flush exactly one shard of phase timings,
    // and the rollup accounts for some nonzero slice of the run.
    EXPECT_GE(report->telemetry.phases.per_shard.size(), 1u)
        << AlgorithmName(algo);
    EXPECT_GT(report->telemetry.phases.total.TotalSeconds(), 0.0)
        << AlgorithmName(algo);
    EXPECT_GT(report->stats.products_processed, 0u) << AlgorithmName(algo);
  }
}

TEST(PlannerTest, TopKTelemetryOutParamIsOptional) {
  PhoneExample ex = MakePhones();
  ProductCostFunction f = ProductCostFunction::ReciprocalSum(3, 1e-2);
  Result<UpgradePlanner> planner =
      UpgradePlanner::Create(ex.competitors, ex.products, f);
  ASSERT_TRUE(planner.ok());

  QueryTelemetry telemetry;
  Result<std::vector<UpgradeResult>> r =
      planner->TopK(2, Algorithm::kImprovedProbing, nullptr, &telemetry);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(telemetry.phases.per_shard.size(), 1u);
  EXPECT_GT(telemetry.probe_latency.count(), 0u);

  // Passing no telemetry sink still works (the default path).
  Result<std::vector<UpgradeResult>> quiet =
      planner->TopK(2, Algorithm::kImprovedProbing);
  ASSERT_TRUE(quiet.ok());
  EXPECT_EQ(quiet->size(), r->size());
}

TEST(PlannerTest, AlgorithmNames) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kBruteForce), "brute-force");
  EXPECT_STREQ(AlgorithmName(Algorithm::kBasicProbing), "basic-probing");
  EXPECT_STREQ(AlgorithmName(Algorithm::kImprovedProbing),
               "improved-probing");
  EXPECT_STREQ(AlgorithmName(Algorithm::kJoin), "join");
}

TEST(PlannerTest, SoundBoundModeOptionFlowsThrough) {
  Result<Dataset> p =
      GenerateCompetitors(300, 3, Distribution::kAntiCorrelated, 71);
  Result<Dataset> t =
      GenerateProducts(40, 3, Distribution::kAntiCorrelated, 72);
  ASSERT_TRUE(p.ok() && t.ok());
  PlannerOptions options;
  options.bound_mode = BoundMode::kSound;
  options.lower_bound = LowerBoundKind::kAggressive;
  Result<UpgradePlanner> planner = UpgradePlanner::Create(
      *p, *t, ProductCostFunction::ReciprocalSum(3, 1e-3), options);
  ASSERT_TRUE(planner.ok());

  Result<std::vector<UpgradeResult>> join = planner->TopK(8, Algorithm::kJoin);
  Result<std::vector<UpgradeResult>> oracle =
      planner->TopK(8, Algorithm::kBruteForce);
  ASSERT_TRUE(join.ok() && oracle.ok());
  ASSERT_EQ(join->size(), oracle->size());
  for (size_t i = 0; i < join->size(); ++i) {
    EXPECT_NEAR((*join)[i].cost, (*oracle)[i].cost, 1e-9);
  }
}

}  // namespace
}  // namespace skyup
