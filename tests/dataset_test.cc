#include "core/dataset.h"

#include <gtest/gtest.h>

#include <vector>

namespace skyup {
namespace {

TEST(DatasetTest, AddAndRead) {
  Dataset ds(2);
  const PointId a = ds.Add({1.0, 2.0});
  const PointId b = ds.Add({3.0, 4.0});
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.dims(), 2u);
  EXPECT_DOUBLE_EQ(ds.data(a)[0], 1.0);
  EXPECT_DOUBLE_EQ(ds.data(b)[1], 4.0);
}

TEST(DatasetTest, PointViewReflectsStorage) {
  Dataset ds(3);
  ds.Add({1, 2, 3});
  PointView v = ds.point(0);
  EXPECT_EQ(v.dims(), 3u);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(DatasetTest, MaterializeCopies) {
  Dataset ds(2);
  ds.Add({5, 6});
  Point p = ds.Materialize(0);
  EXPECT_EQ(p.id, 0);
  EXPECT_EQ(p.coords, (std::vector<double>{5, 6}));
}

TEST(DatasetTest, FromRowsBuildsDataset) {
  Result<Dataset> r = Dataset::FromRows({{1, 2}, {3, 4}, {5, 6}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
  EXPECT_DOUBLE_EQ(r->data(2)[1], 6.0);
}

TEST(DatasetTest, FromRowsRejectsEmpty) {
  EXPECT_FALSE(Dataset::FromRows({}).ok());
}

TEST(DatasetTest, FromRowsRejectsRaggedRows) {
  Result<Dataset> r = Dataset::FromRows({{1, 2}, {3}});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetTest, FromRowsRejectsZeroArity) {
  EXPECT_FALSE(Dataset::FromRows({{}}).ok());
}

TEST(DatasetTest, Corners) {
  Dataset ds(2);
  ds.Add({1, 9});
  ds.Add({5, 2});
  ds.Add({3, 3});
  EXPECT_EQ(ds.MinCorner(), (std::vector<double>{1, 2}));
  EXPECT_EQ(ds.MaxCorner(), (std::vector<double>{5, 9}));
}

TEST(DatasetTest, EmptyFlag) {
  Dataset ds(4);
  EXPECT_TRUE(ds.empty());
  ds.Add({1, 2, 3, 4});
  EXPECT_FALSE(ds.empty());
}

TEST(DatasetTest, StorageIsContiguous) {
  Dataset ds(2);
  ds.Reserve(3);
  ds.Add({1, 2});
  ds.Add({3, 4});
  ds.Add({5, 6});
  // Row i starts exactly dims doubles after row i-1.
  EXPECT_EQ(ds.data(1), ds.data(0) + 2);
  EXPECT_EQ(ds.data(2), ds.data(0) + 4);
}

TEST(DatasetTest, CopyIsIndependent) {
  Dataset ds(1);
  ds.Add({1});
  Dataset copy = ds;
  copy.Add({2});
  EXPECT_EQ(ds.size(), 1u);
  EXPECT_EQ(copy.size(), 2u);
}

TEST(DatasetTest, SelfAppendSurvivesReallocation) {
  // Regression: Add(const double*) with a pointer into the dataset's own
  // storage used to be undefined behavior when the append reallocated —
  // vector::insert invalidates the source range mid-copy.
  Dataset ds(3);
  ds.Add({1, 2, 3});
  // Force many reallocation cycles while always appending row 0 of the
  // current storage.
  for (int i = 0; i < 200; ++i) {
    ds.Add(ds.data(0));
  }
  ASSERT_EQ(ds.size(), 201u);
  for (size_t i = 0; i < ds.size(); ++i) {
    const double* row = ds.data(static_cast<PointId>(i));
    EXPECT_EQ(row[0], 1.0);
    EXPECT_EQ(row[1], 2.0);
    EXPECT_EQ(row[2], 3.0);
  }
}

TEST(DatasetTest, SelfAppendOfLastRow) {
  Dataset ds(2);
  ds.Add({4, 5});
  ds.Add({6, 7});
  // The last row sits right at the end of storage; appending it must read
  // the values before (or despite) any growth.
  ds.Add(ds.data(1));
  ASSERT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds.data(2)[0], 6.0);
  EXPECT_EQ(ds.data(2)[1], 7.0);
}

TEST(DatasetTest, ForeignPointerAppendStillWorks) {
  Dataset ds(2);
  const double outside[] = {8.0, 9.0};
  ds.Add(outside);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds.data(0)[0], 8.0);
  EXPECT_EQ(ds.data(0)[1], 9.0);
}

}  // namespace
}  // namespace skyup
