// Tests for the serving-layer top-k engine (serve/query.h): exactness of
// the snapshot+overlay path against a rebuild-from-scratch oracle
// (including pending erases served by the mask-aware probe, with no
// fallback rescan), empty-table behavior, argument validation,
// cancellation, the sound-prune face gate, and the serve stat counters.

#include "serve/query.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "serve/live_table.h"
#include "serve/rebuilder.h"
#include "util/random.h"

namespace skyup {
namespace {

Result<std::unique_ptr<LiveTable>> MakeTable(size_t dims) {
  LiveTableOptions options;
  options.dims = dims;
  return LiveTable::Create(options);
}

ProductCostFunction CostFn(size_t dims) {
  return ProductCostFunction::ReciprocalSum(dims, 1e-3);
}

// Forces one rebuild so every pending delta lands in the snapshot.
void RebuildNow(LiveTable* table) {
  std::optional<LiveTable::RebuildJob> job = table->BeginRebuild();
  if (!job.has_value()) return;
  Result<std::shared_ptr<const Snapshot>> merged = MergeSnapshot(
      *job->base, job->ops, job->next_epoch, table->index_options());
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  table->CompleteRebuild(*merged);
}

void ExpectExactlyEqual(const std::vector<UpgradeResult>& a,
                        const std::vector<UpgradeResult>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].product_id, b[i].product_id) << label << " rank " << i;
    EXPECT_EQ(a[i].cost, b[i].cost) << label << " rank " << i;
    EXPECT_EQ(a[i].upgraded, b[i].upgraded) << label << " rank " << i;
  }
}

TEST(TopKOverlayTest, EmptyLiveProductSetYieldsEmptyResult) {
  Result<std::unique_ptr<LiveTable>> table = MakeTable(2);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->InsertCompetitor({0.1, 0.1}).ok());
  Result<std::vector<UpgradeResult>> top =
      TopKOverlay((*table)->AcquireView(), CostFn(2), 3);
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  EXPECT_TRUE(top->empty());
}

TEST(TopKOverlayTest, ValidatesArguments) {
  Result<std::unique_ptr<LiveTable>> table = MakeTable(2);
  ASSERT_TRUE(table.ok());
  ReadView view = (*table)->AcquireView();
  EXPECT_EQ(TopKOverlay(view, CostFn(2), 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TopKOverlay(view, CostFn(2), 1, -1.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TopKOverlay(view, CostFn(3), 1).status().code(),
            StatusCode::kInvalidArgument);
  ReadView null_view;
  EXPECT_EQ(TopKOverlay(null_view, CostFn(2), 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TopKOverlayTest, ResultsCarryStableIds) {
  Result<std::unique_ptr<LiveTable>> table = MakeTable(2);
  ASSERT_TRUE(table.ok());
  LiveTable& t = **table;
  ASSERT_TRUE(t.InsertCompetitor({0.1, 0.1}).ok());
  Result<uint64_t> p1 = t.InsertProduct({0.9, 0.9});
  Result<uint64_t> p2 = t.InsertProduct({0.8, 0.8});
  ASSERT_TRUE(p1.ok() && p2.ok());
  ASSERT_TRUE(t.EraseProduct(*p1).ok());

  Result<std::vector<UpgradeResult>> top =
      TopKOverlay(t.AcquireView(), CostFn(2), 5);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 1u);  // only p2 is live
  EXPECT_EQ(static_cast<uint64_t>((*top)[0].product_id), *p2);
}

// The load-bearing property: for random interleavings of inserts/erases
// with rebuilds at arbitrary points, the overlay path must return exactly
// what a freshly rebuilt (no overlay) query returns.
TEST(TopKOverlayTest, OverlayMatchesRebuildOracleOnRandomWorkloads) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 1299709);
    const size_t dims = 2 + static_cast<size_t>(rng.NextUint64(3));
    Result<std::unique_ptr<LiveTable>> table = MakeTable(dims);
    ASSERT_TRUE(table.ok());
    LiveTable& t = **table;
    std::vector<uint64_t> live_p, live_t;
    std::vector<double> coords(dims);

    for (int step = 0; step < 220; ++step) {
      const uint64_t roll = rng.NextUint64(100);
      if (roll < 40 || (roll < 70 && live_p.size() < 3)) {
        for (double& c : coords) c = rng.NextDouble();
        Result<uint64_t> id = t.InsertCompetitor(coords);
        ASSERT_TRUE(id.ok());
        live_p.push_back(*id);
      } else if (roll < 55) {
        for (double& c : coords) c = rng.NextDouble();
        Result<uint64_t> id = t.InsertProduct(coords);
        ASSERT_TRUE(id.ok());
        live_t.push_back(*id);
      } else if (roll < 70 && !live_p.empty()) {
        const size_t at = static_cast<size_t>(rng.NextUint64(live_p.size()));
        ASSERT_TRUE(t.EraseCompetitor(live_p[at]).ok());
        live_p[at] = live_p.back();
        live_p.pop_back();
      } else if (roll < 80 && !live_t.empty()) {
        const size_t at = static_cast<size_t>(rng.NextUint64(live_t.size()));
        ASSERT_TRUE(t.EraseProduct(live_t[at]).ok());
        live_t[at] = live_t.back();
        live_t.pop_back();
      } else if (roll < 85) {
        RebuildNow(&t);
      } else {
        const size_t k = 1 + static_cast<size_t>(rng.NextUint64(8));
        ServeStats stats;
        Result<std::vector<UpgradeResult>> overlay_top = TopKOverlay(
            t.AcquireView(), CostFn(dims), k, 1e-6, nullptr, &stats);
        ASSERT_TRUE(overlay_top.ok()) << overlay_top.status().ToString();

        // Oracle: fold everything into a fresh snapshot, query with an
        // empty overlay.
        RebuildNow(&t);
        ReadView clean = t.AcquireView();
        ASSERT_TRUE(clean.deltas.empty());
        Result<std::vector<UpgradeResult>> oracle_top =
            TopKOverlay(clean, CostFn(dims), k);
        ASSERT_TRUE(oracle_top.ok());
        ExpectExactlyEqual(*overlay_top, *oracle_top,
                           "seed=" + std::to_string(seed) +
                               " step=" + std::to_string(step));
      }
    }
  }
}

TEST(TopKOverlayTest, MaskAwareProbeServesSkylineMemberDeathWithoutRescan) {
  Result<std::unique_ptr<LiveTable>> table = MakeTable(2);
  ASSERT_TRUE(table.ok());
  LiveTable& t = **table;
  // One dominating competitor, one dominated one; snapshot them.
  Result<uint64_t> strong = t.InsertCompetitor({0.1, 0.1});
  ASSERT_TRUE(strong.ok());
  ASSERT_TRUE(t.InsertCompetitor({0.4, 0.4}).ok());
  ASSERT_TRUE(t.InsertProduct({0.9, 0.9}).ok());
  RebuildNow(&t);

  // Killing the skyline member after the snapshot used to force a full
  // linear rescan; the mask-aware probe now surfaces the competitor it
  // was masking directly from the index, with no fallback.
  ASSERT_TRUE(t.EraseCompetitor(*strong).ok());
  ServeStats stats;
  Result<std::vector<UpgradeResult>> top =
      TopKOverlay(t.AcquireView(), CostFn(2), 1, 1e-6, nullptr, &stats);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(stats.erase_fallback_scans, 0u);
  EXPECT_EQ(stats.candidates_evaluated, 1u);
  // The dead row attains the live box's min corner, so this query must
  // have sat out the prune rather than trusting a stale face.
  EXPECT_EQ(stats.prune_disabled_queries, 1u);

  // And the surviving competitor now drives the upgrade target.
  ASSERT_EQ(top->size(), 1u);
  Result<std::vector<UpgradeResult>> oracle = [&] {
    RebuildNow(&t);
    return TopKOverlay(t.AcquireView(), CostFn(2), 1);
  }();
  ASSERT_TRUE(oracle.ok());
  ExpectExactlyEqual(*top, *oracle, "post-erase");
}

TEST(TopKOverlayTest, SoundPrunePreservesExactTopKAcrossPatchedEpochs) {
  // A workload big enough for the prune to actually fire: many dominated
  // products, small k, erases and inserts folded through patch publishes.
  Result<std::unique_ptr<LiveTable>> table = MakeTable(2);
  ASSERT_TRUE(table.ok());
  LiveTable& t = **table;
  Rng rng(20260807);
  std::vector<uint64_t> competitor_ids;
  std::vector<double> coords(2);
  for (int i = 0; i < 64; ++i) {
    for (double& c : coords) c = rng.NextDouble(0.1, 1.0);
    Result<uint64_t> id = t.InsertCompetitor(coords);
    ASSERT_TRUE(id.ok());
    competitor_ids.push_back(*id);
  }
  for (int i = 0; i < 32; ++i) {
    for (double& c : coords) c = rng.NextDouble(1.0, 2.0);
    ASSERT_TRUE(t.InsertProduct(coords).ok());
  }
  RebuildNow(&t);

  RebuildPolicy policy;
  policy.threshold_ops = 2;
  size_t patches = 0;
  for (int round = 0; round < 12; ++round) {
    const size_t at =
        static_cast<size_t>(rng.NextUint64(competitor_ids.size()));
    ASSERT_TRUE(t.EraseCompetitor(competitor_ids[at]).ok());
    competitor_ids[at] = competitor_ids.back();
    competitor_ids.pop_back();
    for (double& c : coords) c = rng.NextDouble(0.1, 1.0);
    Result<uint64_t> id = t.InsertCompetitor(coords);
    ASSERT_TRUE(id.ok());
    competitor_ids.push_back(*id);
    Result<PublishKind> published = MaybeRebuildInline(&t, policy);
    ASSERT_TRUE(published.ok());
    if (*published == PublishKind::kPatch) ++patches;

    ServeStats stats;
    Result<std::vector<UpgradeResult>> pruned = TopKOverlay(
        t.AcquireView(), CostFn(2), 2, 1e-6, nullptr, &stats);
    ASSERT_TRUE(pruned.ok());
    RebuildNow(&t);
    ReadView clean = t.AcquireView();
    ASSERT_TRUE(clean.deltas.empty());
    Result<std::vector<UpgradeResult>> oracle =
        TopKOverlay(clean, CostFn(2), 2);
    ASSERT_TRUE(oracle.ok());
    ExpectExactlyEqual(*pruned, *oracle,
                       "round=" + std::to_string(round));
    EXPECT_EQ(stats.erase_fallback_scans, 0u);
  }
  // Every round's 2-op backlog crossed the threshold against a well-fed
  // indexed base, so the publishes above really were patches.
  EXPECT_GT(patches, 0u);
}

TEST(TopKOverlayTest, CancelledControlUnwinds) {
  Result<std::unique_ptr<LiveTable>> table = MakeTable(2);
  ASSERT_TRUE(table.ok());
  LiveTable& t = **table;
  ASSERT_TRUE(t.InsertCompetitor({0.1, 0.1}).ok());
  ASSERT_TRUE(t.InsertProduct({0.9, 0.9}).ok());
  QueryControl control;
  control.Cancel();
  Result<std::vector<UpgradeResult>> top =
      TopKOverlay(t.AcquireView(), CostFn(2), 1, 1e-6, &control);
  ASSERT_FALSE(top.ok());
  EXPECT_EQ(top.status().code(), StatusCode::kCancelled);
}

TEST(TopKOverlayTest, StatsCountDeltaScans) {
  Result<std::unique_ptr<LiveTable>> table = MakeTable(2);
  ASSERT_TRUE(table.ok());
  LiveTable& t = **table;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(t.InsertCompetitor({0.2 + 0.1 * i, 0.8 - 0.1 * i}).ok());
  }
  ASSERT_TRUE(t.InsertProduct({0.9, 0.9}).ok());
  ServeStats stats;
  ASSERT_TRUE(
      TopKOverlay(t.AcquireView(), CostFn(2), 1, 1e-6, nullptr, &stats)
          .ok());
  EXPECT_EQ(stats.delta_ops_scanned, 5u);
  EXPECT_EQ(stats.candidates_evaluated, 1u);
  EXPECT_EQ(stats.erase_fallback_scans, 0u);
}

}  // namespace
}  // namespace skyup
