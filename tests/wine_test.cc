#include "data/wine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/dominance.h"
#include "skyline/skyline.h"
#include "util/stats.h"

namespace skyup {
namespace {

std::vector<double> Column(const Dataset& ds, size_t dim) {
  std::vector<double> out;
  out.reserve(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    out.push_back(ds.data(static_cast<PointId>(i))[dim]);
  }
  return out;
}

TEST(WineTest, DefaultCardinalityMatchesUciDataset) {
  Result<Dataset> wine = SynthesizeWine();
  ASSERT_TRUE(wine.ok());
  EXPECT_EQ(wine->size(), 4898u);
  EXPECT_EQ(wine->dims(), 3u);
}

TEST(WineTest, MarginalsMatchPublishedStatistics) {
  Result<Dataset> wine = SynthesizeWine(4898, 2012);
  ASSERT_TRUE(wine.ok());

  struct Expect {
    size_t col;
    double mean, sd, lo, hi;
  };
  // Published UCI winequality-white statistics.
  const Expect expectations[] = {
      {0, 0.0458, 0.0218, 0.009, 0.346},  // chlorides
      {1, 0.4898, 0.1141, 0.22, 1.08},    // sulphates
      {2, 138.36, 42.50, 9.0, 440.0},     // total sulfur dioxide
  };
  for (const Expect& e : expectations) {
    RunningStats stats;
    for (double v : Column(*wine, e.col)) stats.Add(v);
    EXPECT_NEAR(stats.mean(), e.mean, 0.05 * e.mean + 1e-6) << e.col;
    EXPECT_NEAR(stats.stddev(), e.sd, 0.15 * e.sd + 1e-6) << e.col;
    EXPECT_GE(stats.min(), e.lo);
    EXPECT_LE(stats.max(), e.hi);
  }
}

TEST(WineTest, MildPositiveCorrelations) {
  Result<Dataset> wine = SynthesizeWine(4898, 2012);
  ASSERT_TRUE(wine.ok());
  const double r_ct = PearsonCorrelation(Column(*wine, 0), Column(*wine, 2));
  EXPECT_GT(r_ct, 0.1);  // chlorides ~ total SO2: mild positive
  EXPECT_LT(r_ct, 0.35);
}

TEST(WineTest, DeterministicPerSeed) {
  Result<Dataset> a = SynthesizeWine(100, 5);
  Result<Dataset> b = SynthesizeWine(100, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a->data(static_cast<PointId>(i))[2],
                     b->data(static_cast<PointId>(i))[2]);
  }
}

TEST(WineTest, AttributeCombinationsMatchTableThree) {
  const auto combos = WineAttributeCombinations();
  ASSERT_EQ(combos.size(), 4u);
  EXPECT_EQ(WineComboLabel(combos[0]), "c,s");
  EXPECT_EQ(WineComboLabel(combos[1]), "c,t");
  EXPECT_EQ(WineComboLabel(combos[2]), "s,t");
  EXPECT_EQ(WineComboLabel(combos[3]), "c,s,t");
}

TEST(WineTest, SubsetProjectsAndNormalizes) {
  Result<Dataset> wine = SynthesizeWine(500, 3);
  ASSERT_TRUE(wine.ok());
  Result<Dataset> sub = WineSubset(
      *wine, {WineAttr::kChlorides, WineAttr::kTotalSulfurDioxide});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->dims(), 2u);
  EXPECT_EQ(sub->size(), 500u);
  double lo0 = 1e9, hi0 = -1e9;
  for (size_t i = 0; i < sub->size(); ++i) {
    const double* p = sub->data(static_cast<PointId>(i));
    EXPECT_GE(p[0], 0.0);
    EXPECT_LE(p[0], 1.0);
    EXPECT_GE(p[1], 0.0);
    EXPECT_LE(p[1], 1.0);
    lo0 = std::min(lo0, p[0]);
    hi0 = std::max(hi0, p[0]);
  }
  EXPECT_DOUBLE_EQ(lo0, 0.0);
  EXPECT_DOUBLE_EQ(hi0, 1.0);
}

TEST(WineTest, SubsetRejectsBadInputs) {
  Result<Dataset> wine = SynthesizeWine(50, 3);
  ASSERT_TRUE(wine.ok());
  EXPECT_FALSE(WineSubset(*wine, {}).ok());
  Dataset two(2);
  two.Add({1, 2});
  EXPECT_FALSE(WineSubset(two, {WineAttr::kChlorides}).ok());
}

TEST(WineTest, SplitProducesPaperCardinalities) {
  Result<Dataset> wine = SynthesizeWine(4898, 2012);
  ASSERT_TRUE(wine.ok());
  Result<Dataset> sub = WineSubset(
      *wine, {WineAttr::kChlorides, WineAttr::kSulphates,
              WineAttr::kTotalSulfurDioxide});
  ASSERT_TRUE(sub.ok());
  Result<WineSplit> split = SplitWine(*sub, 1000);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_EQ(split->products.size(), 1000u);
  EXPECT_EQ(split->competitors.size(), 3898u);
}

TEST(WineTest, SplitProductsAreAllDominated) {
  Result<Dataset> wine = SynthesizeWine(800, 9);
  ASSERT_TRUE(wine.ok());
  Result<Dataset> sub =
      WineSubset(*wine, {WineAttr::kChlorides, WineAttr::kSulphates});
  ASSERT_TRUE(sub.ok());
  Result<WineSplit> split = SplitWine(*sub, 100);
  ASSERT_TRUE(split.ok());

  // Every product must be dominated by at least one competitor.
  for (size_t i = 0; i < split->products.size(); ++i) {
    const double* t = split->products.data(static_cast<PointId>(i));
    bool dominated = false;
    for (size_t j = 0; j < split->competitors.size() && !dominated; ++j) {
      dominated = Dominates(
          split->competitors.data(static_cast<PointId>(j)), t, 2);
    }
    ASSERT_TRUE(dominated) << "product " << i << " lost its dominators";
  }
}

TEST(WineTest, SplitRejectsOverdraw) {
  Result<Dataset> wine = SynthesizeWine(50, 10);
  ASSERT_TRUE(wine.ok());
  Result<Dataset> sub =
      WineSubset(*wine, {WineAttr::kChlorides, WineAttr::kSulphates});
  ASSERT_TRUE(sub.ok());
  Result<WineSplit> split = SplitWine(*sub, 10000);
  ASSERT_FALSE(split.ok());
  EXPECT_EQ(split.status().code(), StatusCode::kFailedPrecondition);
}

TEST(WineTest, AttrNames) {
  EXPECT_STREQ(WineAttrName(WineAttr::kChlorides), "chlorides");
  EXPECT_STREQ(WineAttrName(WineAttr::kSulphates), "sulphates");
  EXPECT_STREQ(WineAttrName(WineAttr::kTotalSulfurDioxide),
               "total sulfur dioxide");
}

}  // namespace
}  // namespace skyup
