// Differential fuzz: BNL vs SFS vs DNC vs BBS skylines on adversarial
// inputs (ties, duplicates, degenerate coordinates, singletons,
// all-dominated sets). The algorithms may pick different representatives
// of duplicated coordinate vectors, so agreement is on the *distinct
// coordinate set*; on top of that the harness re-proves the skyline
// definition itself: members are mutually incomparable, and every input
// point is dominated-or-equalled by some member.

#include <algorithm>
#include <set>
#include <vector>

#include "core/dominance.h"
#include "fuzz_common.h"
#include "rtree/rtree.h"
#include "skyline/skyline.h"

namespace skyup {
namespace fuzz {
namespace {

std::set<std::vector<double>> CoordSet(const Dataset& data,
                                       const std::vector<PointId>& ids) {
  std::set<std::vector<double>> out;
  for (PointId id : ids) {
    const double* p = data.data(id);
    out.emplace(p, p + data.dims());
  }
  return out;
}

void RunOne(uint64_t seed) {
  Rng rng(seed);
  Shape shape = Shape::kMixed;
  const Dataset data = GenAnyDataset(&rng, 120, 5, &shape);
  const size_t dims = data.dims();

  const std::vector<PointId> bnl = SkylineBnl(data);
  const std::vector<PointId> sfs = SkylineSfs(data);
  const std::vector<PointId> dnc = SkylineDnc(data);
  RTreeOptions options;
  options.max_entries = 2 + static_cast<size_t>(rng.NextUint64(15));
  Result<RTree> tree = RTree::BulkLoad(data, options);
  SKYUP_CHECK(tree.ok()) << tree.status().ToString() << " seed=" << seed;
  const std::vector<PointId> bbs = SkylineBbs(*tree);

  const std::set<std::vector<double>> oracle = CoordSet(data, bnl);
  for (const auto* other : {&sfs, &dnc, &bbs}) {
    const char* name = other == &sfs ? "SFS" : other == &dnc ? "DNC" : "BBS";
    SKYUP_CHECK(CoordSet(data, *other) == oracle)
        << name << " skyline disagrees with BNL (" << other->size() << " vs "
        << bnl.size() << " ids), shape=" << ShapeName(shape)
        << " seed=" << seed << " rows: " << RowsToString(data);
    // One representative per distinct coordinate vector — no duplicates.
    SKYUP_CHECK(CoordSet(data, *other).size() == other->size())
        << name << " returned duplicate coordinate vectors, shape="
        << ShapeName(shape) << " seed=" << seed;
  }

  // The definition, re-proven from scratch: mutual incomparability...
  for (size_t i = 0; i < bnl.size(); ++i) {
    for (size_t j = 0; j < bnl.size(); ++j) {
      if (i == j) continue;
      SKYUP_CHECK(!Dominates(data.data(bnl[i]), data.data(bnl[j]), dims))
          << "skyline members " << bnl[i] << " and " << bnl[j]
          << " are comparable, shape=" << ShapeName(shape)
          << " seed=" << seed;
    }
  }
  // ... and completeness: nothing outside it is undominated.
  for (size_t i = 0; i < data.size(); ++i) {
    const double* p = data.data(static_cast<PointId>(i));
    bool covered = false;
    for (PointId s : bnl) {
      if (DominatesOrEqual(data.data(s), p, dims)) {
        covered = true;
        break;
      }
    }
    SKYUP_CHECK(covered)
        << "input point " << i << " escapes the skyline, shape="
        << ShapeName(shape) << " seed=" << seed;
  }
}

}  // namespace
}  // namespace fuzz
}  // namespace skyup

SKYUP_FUZZ_DRIVER("fuzz_skyline", skyup::fuzz::RunOne)
