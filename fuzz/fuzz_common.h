#ifndef SKYUP_FUZZ_FUZZ_COMMON_H_
#define SKYUP_FUZZ_FUZZ_COMMON_H_

// Shared scaffolding of the differential fuzz harnesses.
//
// Each harness defines one deterministic `RunOne(uint64_t seed)` that
// generates an adversarial workload from the seed, runs two or more
// independent implementations of the same contract, and aborts (via
// SKYUP_CHECK) on the first divergence — printing the seed so the case
// replays exactly.
//
// Two drivers share that function:
//   * the default self-driving loop: `fuzz_<x> [iterations] [base_seed]`
//     sweeps seeds base_seed .. base_seed+iterations-1 (CI smoke mode runs
//     >= 10k iterations of every harness);
//   * a libFuzzer entry point, compiled when the toolchain provides
//     -fsanitize=fuzzer (clang; enable with -DSKYUP_FUZZ_LIBFUZZER=ON),
//     which derives the seed from the input bytes so coverage feedback can
//     steer the generator.
//
// Generation is intentionally skewed toward the edge cases skyline code is
// notorious for mishandling: coordinate ties (grid-snapped values),
// exact duplicate rows, degenerate dimensions (constant, or all points on
// a diagonal), single-point sets, and all-dominated sets with one crushing
// competitor. Coordinates are always finite (NaN-free by construction).

#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "util/check.h"
#include "util/random.h"

namespace skyup {
namespace fuzz {

/// Workload shapes the generator cycles through. kMixed draws fresh
/// uniform values; everything else is an adversarial special case.
enum class Shape {
  kMixed = 0,       ///< uniform values, moderate size
  kTies,            ///< values snapped to a tiny grid: massive tie volume
  kDuplicates,      ///< few distinct rows, each repeated many times
  kDegenerate,      ///< constant dimensions and/or a shared diagonal
  kSinglePoint,     ///< exactly one point
  kAllDominated,    ///< one point dominating everything else
  kShapeCount,
};

const char* ShapeName(Shape shape);

/// Deterministically generates a dataset of `dims` dimensions with at most
/// `max_points` points (at least 1) of the given shape. All coordinates
/// are finite and lie in [0, 4).
Dataset GenDataset(Rng* rng, Shape shape, size_t max_points, size_t dims);

/// Draws shape/dims/size from the rng and generates. `out_shape` (optional)
/// reports the chosen shape for diagnostics.
Dataset GenAnyDataset(Rng* rng, size_t max_points, size_t max_dims,
                      Shape* out_shape = nullptr);

/// A point comparable against `data`'s points: mostly in the same range,
/// sometimes an exact copy of an existing row (tie stress), sometimes
/// outside the hull.
std::vector<double> GenQueryPoint(Rng* rng, const Dataset& data);

/// "(a, b, c)" etc. for divergence diagnostics.
std::string RowsToString(const Dataset& data);

/// The self-driving loop. `run_one` must abort on divergence. Returns the
/// process exit code.
int FuzzMain(int argc, char** argv, const char* name,
             void (*run_one)(uint64_t seed));

}  // namespace fuzz
}  // namespace skyup

/// Expands to `main` (and, under SKYUP_FUZZ_LIBFUZZER, the
/// LLVMFuzzerTestOneInput hook) for a harness whose body is
/// `void RunOne(uint64_t seed)`.
#ifdef SKYUP_FUZZ_LIBFUZZER
#define SKYUP_FUZZ_DRIVER(name, run_one)                                  \
  extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) { \
    uint64_t seed = 0xcbf29ce484222325ULL;                                \
    for (size_t i = 0; i < size; ++i) {                                   \
      seed = (seed ^ data[i]) * 0x100000001b3ULL;                         \
    }                                                                     \
    run_one(seed);                                                        \
    return 0;                                                             \
  }
#else
#define SKYUP_FUZZ_DRIVER(name, run_one)                          \
  int main(int argc, char** argv) {                               \
    return ::skyup::fuzz::FuzzMain(argc, argv, name, run_one);    \
  }
#endif

#endif  // SKYUP_FUZZ_FUZZ_COMMON_H_
