// Differential fuzz: the flat arena snapshot (rtree/flat_rtree.h) against
// the pointer R-tree it was built from. Checks both structures' own
// validators, then the behavioral contracts that must be *bit-identical*
// across the two forms: BBS skylines and constrained dominating-skyline
// probes (same entries, same order, same tie-breaks). A second phase
// tombstones a random subset in the flat snapshot while physically deleting
// the same rows from the pointer tree; pointer deletion restructures
// (condense-tree + reinsert), so post-delete equivalence is checked on
// coordinate value multisets plus a brute-force skyline oracle over the
// surviving rows, not on id order.

#include <algorithm>
#include <vector>

#include "core/dominance.h"
#include "fuzz_common.h"
#include "rtree/flat_rtree.h"
#include "rtree/rtree.h"
#include "skyline/dominating_skyline.h"
#include "skyline/skyline.h"

namespace skyup {
namespace fuzz {
namespace {

// Rows as a sorted coordinate multiset (duplicates kept: equal points never
// dominate each other, so both forms admit all copies).
std::vector<std::vector<double>> Values(const Dataset& data,
                                        const std::vector<PointId>& rows) {
  std::vector<std::vector<double>> out;
  out.reserve(rows.size());
  for (PointId id : rows) {
    const double* p = data.data(id);
    out.emplace_back(p, p + data.dims());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void RunOne(uint64_t seed) {
  Rng rng(seed);
  Shape shape = Shape::kMixed;
  const Dataset data = GenAnyDataset(&rng, 80, 5, &shape);

  RTreeOptions options;
  options.max_entries = 2 + static_cast<size_t>(rng.NextUint64(15));
  Result<RTree> tree = RTree::BulkLoad(data, options);
  SKYUP_CHECK(tree.ok()) << tree.status().ToString() << " seed=" << seed;

  // A fraction of runs exercises the dynamic-insert path (and both split
  // strategies) instead of STR, so flattening isn't tested on packed
  // trees only.
  if (rng.NextUint64(4) == 0) {
    RTreeOptions dyn = options;
    dyn.split = rng.NextUint64(2) == 0 ? SplitStrategy::kQuadratic
                                       : SplitStrategy::kRStar;
    RTree built(&data, dyn);
    for (size_t i = 0; i < data.size(); ++i) {
      built.Insert(static_cast<PointId>(i));
    }
    tree = std::move(built);
  }

  SKYUP_CHECK_OK(tree->Validate());
  FlatRTree flat = FlatRTree::FromTree(*tree);
  SKYUP_CHECK_OK(flat.Validate());
  SKYUP_CHECK(flat.size() == tree->size())
      << "flat holds " << flat.size() << " of " << tree->size()
      << " points, seed=" << seed;

  // BBS skyline: identical result *order*, not just the same set.
  const std::vector<PointId> sky_ptr = SkylineBbs(*tree);
  const std::vector<PointId> sky_flat = SkylineBbs(flat);
  SKYUP_CHECK(sky_ptr == sky_flat)
      << "BBS skyline diverged (ptr " << sky_ptr.size() << " vs flat "
      << sky_flat.size() << " points), shape=" << ShapeName(shape)
      << " seed=" << seed << " rows: " << RowsToString(data);

  // Dominating-skyline probes from adversarial query points.
  const size_t probes = 1 + static_cast<size_t>(rng.NextUint64(5));
  for (size_t i = 0; i < probes; ++i) {
    const std::vector<double> q = GenQueryPoint(&rng, data);
    const std::vector<PointId> dom_ptr = DominatingSkyline(*tree, q.data());
    const std::vector<PointId> dom_flat = DominatingSkyline(flat, q.data());
    SKYUP_CHECK(dom_ptr == dom_flat)
        << "DominatingSkyline diverged for q=" << PointToString(q)
        << " (ptr " << dom_ptr.size() << " vs flat " << dom_flat.size()
        << "), shape=" << ShapeName(shape) << " seed=" << seed;
  }

  // ---- Delete phase ----
  std::vector<uint8_t> alive(data.size(), 1);
  size_t live = data.size();
  const size_t attempts = static_cast<size_t>(rng.NextUint64(data.size() + 1));
  for (size_t e = 0; e < attempts; ++e) {
    const PointId row = static_cast<PointId>(rng.NextUint64(data.size()));
    if (!alive[static_cast<size_t>(row)]) {
      SKYUP_CHECK(!flat.Erase(row))
          << "double erase accepted for row " << row << ", seed=" << seed;
      continue;
    }
    SKYUP_CHECK(flat.Erase(row)) << "erase rejected for live row " << row
                                 << ", seed=" << seed;
    SKYUP_CHECK(tree->Delete(row))
        << "pointer delete rejected row " << row << ", seed=" << seed;
    alive[static_cast<size_t>(row)] = 0;
    --live;
    SKYUP_CHECK_OK(flat.Validate());
    SKYUP_CHECK(flat.live_size() == live)
        << "live tally " << flat.live_size() << " != " << live
        << ", seed=" << seed;
  }
  // Out-of-range erases are rejected without side effects.
  SKYUP_CHECK(!flat.Erase(static_cast<PointId>(data.size())));
  SKYUP_CHECK(!flat.Erase(static_cast<PointId>(-1)));
  SKYUP_CHECK(flat.live_size() == live);
  SKYUP_CHECK(flat.tombstones() == data.size() - live);

  if (live > 0) {
    SKYUP_CHECK_OK(tree->Validate());
    // Full skyline of the survivors: value multisets must coincide.
    const auto sky_p = Values(data, SkylineBbs(*tree));
    const auto sky_f = Values(data, SkylineBbs(flat));
    SKYUP_CHECK(sky_p == sky_f)
        << "post-delete BBS skyline diverged (ptr " << sky_p.size()
        << " vs flat " << sky_f.size() << "), shape=" << ShapeName(shape)
        << " seed=" << seed << " rows: " << RowsToString(data);
  } else {
    SKYUP_CHECK(SkylineBbs(flat).empty());
    SKYUP_CHECK(flat.root_mbr().IsEmpty());
  }

  // Post-delete probes, with a brute-force oracle: every returned point is
  // a live strict dominator of q not dominated by another live dominator,
  // and together they cover every live dominator.
  const size_t dims = data.dims();
  for (size_t i = 0; i < probes; ++i) {
    const std::vector<double> q = GenQueryPoint(&rng, data);
    const std::vector<PointId> dom_flat = DominatingSkyline(flat, q.data());
    for (PointId id : dom_flat) {
      SKYUP_CHECK(alive[static_cast<size_t>(id)] &&
                  Dominates(data.data(id), q.data(), dims))
          << "probe returned dead/non-dominating row " << id << " for q="
          << PointToString(q) << ", seed=" << seed;
    }
    for (size_t r = 0; r < data.size(); ++r) {
      if (!alive[r]) continue;
      const double* row = data.data(static_cast<PointId>(r));
      if (!Dominates(row, q.data(), dims)) continue;
      bool covered = false;
      for (PointId id : dom_flat) {
        if (DominatesOrEqual(data.data(id), row, dims)) {
          covered = true;
          break;
        }
        SKYUP_CHECK(!Dominates(row, data.data(id), dims))
            << "probe kept row " << id << " dominated by live row " << r
            << " for q=" << PointToString(q) << ", seed=" << seed;
      }
      SKYUP_CHECK(covered) << "live dominator row " << r
                           << " not covered by probe result for q="
                           << PointToString(q) << ", seed=" << seed;
    }
    if (live > 0) {
      const auto vals_p = Values(data, DominatingSkyline(*tree, q.data()));
      const auto vals_f = Values(data, dom_flat);
      SKYUP_CHECK(vals_p == vals_f)
          << "post-delete DominatingSkyline diverged for q="
          << PointToString(q) << " (ptr " << vals_p.size() << " vs flat "
          << vals_f.size() << "), shape=" << ShapeName(shape)
          << " seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace fuzz
}  // namespace skyup

SKYUP_FUZZ_DRIVER("fuzz_flat_vs_pointer", skyup::fuzz::RunOne)
