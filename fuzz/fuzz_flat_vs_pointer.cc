// Differential fuzz: the flat arena snapshot (rtree/flat_rtree.h) against
// the pointer R-tree it was built from. Checks both structures' own
// validators, then the behavioral contracts that must be *bit-identical*
// across the two forms: BBS skylines and constrained dominating-skyline
// probes (same entries, same order, same tie-breaks).

#include <vector>

#include "fuzz_common.h"
#include "rtree/flat_rtree.h"
#include "rtree/rtree.h"
#include "skyline/dominating_skyline.h"
#include "skyline/skyline.h"

namespace skyup {
namespace fuzz {
namespace {

void RunOne(uint64_t seed) {
  Rng rng(seed);
  Shape shape = Shape::kMixed;
  const Dataset data = GenAnyDataset(&rng, 80, 5, &shape);

  RTreeOptions options;
  options.max_entries = 2 + static_cast<size_t>(rng.NextUint64(15));
  Result<RTree> tree = RTree::BulkLoad(data, options);
  SKYUP_CHECK(tree.ok()) << tree.status().ToString() << " seed=" << seed;

  // A fraction of runs exercises the dynamic-insert path (and both split
  // strategies) instead of STR, so flattening isn't tested on packed
  // trees only.
  if (rng.NextUint64(4) == 0) {
    RTreeOptions dyn = options;
    dyn.split = rng.NextUint64(2) == 0 ? SplitStrategy::kQuadratic
                                       : SplitStrategy::kRStar;
    RTree built(&data, dyn);
    for (size_t i = 0; i < data.size(); ++i) {
      built.Insert(static_cast<PointId>(i));
    }
    tree = std::move(built);
  }

  SKYUP_CHECK_OK(tree->Validate());
  const FlatRTree flat = FlatRTree::FromTree(*tree);
  SKYUP_CHECK_OK(flat.Validate());
  SKYUP_CHECK(flat.size() == tree->size())
      << "flat holds " << flat.size() << " of " << tree->size()
      << " points, seed=" << seed;

  // BBS skyline: identical result *order*, not just the same set.
  const std::vector<PointId> sky_ptr = SkylineBbs(*tree);
  const std::vector<PointId> sky_flat = SkylineBbs(flat);
  SKYUP_CHECK(sky_ptr == sky_flat)
      << "BBS skyline diverged (ptr " << sky_ptr.size() << " vs flat "
      << sky_flat.size() << " points), shape=" << ShapeName(shape)
      << " seed=" << seed << " rows: " << RowsToString(data);

  // Dominating-skyline probes from adversarial query points.
  const size_t probes = 1 + static_cast<size_t>(rng.NextUint64(5));
  for (size_t i = 0; i < probes; ++i) {
    const std::vector<double> q = GenQueryPoint(&rng, data);
    const std::vector<PointId> dom_ptr = DominatingSkyline(*tree, q.data());
    const std::vector<PointId> dom_flat = DominatingSkyline(flat, q.data());
    SKYUP_CHECK(dom_ptr == dom_flat)
        << "DominatingSkyline diverged for q=" << PointToString(q)
        << " (ptr " << dom_ptr.size() << " vs flat " << dom_flat.size()
        << "), shape=" << ShapeName(shape) << " seed=" << seed;
  }
}

}  // namespace
}  // namespace fuzz
}  // namespace skyup

SKYUP_FUZZ_DRIVER("fuzz_flat_vs_pointer", skyup::fuzz::RunOne)
