// Differential fuzz of cross-query amortization: grouped execution
// (`TopKOverlayBatch`) with the epoch-scoped skyline memo enabled vs the
// per-query engine (`TopKOverlay`) on the SAME view with the memo
// stripped. Both run against identical live state, so every ranked
// answer must agree exactly — ids, costs (bit for bit), upgraded
// vectors, flags.
//
// Stress axes the amortization layers add on top of fuzz_serve:
//   * memo reuse across queries and epochs: tiny byte budgets force
//     evictions; inline rebuilds roll the epoch and must invalidate
//     (a stale hit would surface instantly as a divergence);
//   * overlay churn between batches within one epoch: erases of indexed
//     rows advance the memo's erased-count clock, inserts must not
//     perturb cached probes;
//   * batch-boundary shuffles: the same query list re-executed under a
//     different random split into groups (including all-solo) must
//     reproduce the grouped answers;
//   * repeat execution: an identical batch re-run on a warmed memo (hit
//     path) must reproduce the cold answers.

#include <cstdint>
#include <iterator>
#include <map>
#include <memory>
#include <vector>

#include "core/cost_function.h"
#include "fuzz_common.h"
#include "serve/live_table.h"
#include "serve/query.h"
#include "serve/rebuilder.h"

namespace skyup {
namespace fuzz {
namespace {

void CheckSameMember(const std::vector<UpgradeResult>& want,
                     const std::vector<UpgradeResult>& got, const char* where,
                     uint64_t seed, int step, size_t member) {
  SKYUP_CHECK(got.size() == want.size())
      << where << " member " << member << ": " << got.size()
      << " results vs " << want.size() << ", seed=" << seed
      << " step=" << step;
  for (size_t i = 0; i < want.size(); ++i) {
    SKYUP_CHECK(got[i].product_id == want[i].product_id)
        << where << " member " << member << " rank " << i << ": product "
        << got[i].product_id << " vs " << want[i].product_id
        << ", seed=" << seed << " step=" << step;
    // lint: float-eq-ok (differential oracle: grouped + memoized execution
    // must agree bit-exactly with the per-query memo-off engine)
    SKYUP_CHECK(got[i].cost == want[i].cost)
        << where << " member " << member << " rank " << i << ": cost "
        << got[i].cost << " vs " << want[i].cost << ", seed=" << seed
        << " step=" << step;
    SKYUP_CHECK(got[i].upgraded == want[i].upgraded)
        << where << " member " << member << " rank " << i
        << ": upgraded vector diverges, seed=" << seed << " step=" << step;
    SKYUP_CHECK(got[i].already_competitive == want[i].already_competitive)
        << where << " member " << member << " rank " << i
        << ": competitive flag diverges, seed=" << seed << " step=" << step;
  }
}

void RunOne(uint64_t seed) {
  Rng rng(seed);
  const size_t dims = 2 + static_cast<size_t>(rng.NextUint64(3));
  const double epsilon = 1e-6;
  const ProductCostFunction cost_fn =
      ProductCostFunction::ReciprocalSum(dims, 1e-3);

  LiveTableOptions options;
  options.dims = dims;
  options.rtree_fanout = 2 + static_cast<size_t>(rng.NextUint64(7));
  // 256 B .. 128 KB: the low end holds almost nothing, so eviction and
  // the store-after-evict path run constantly; the high end keeps entries
  // alive across whole epochs.
  options.memo_cache_bytes = static_cast<size_t>(1)
                             << (8 + rng.NextUint64(10));
  Result<std::unique_ptr<LiveTable>> table = LiveTable::Create(options);
  SKYUP_CHECK(table.ok()) << table.status().ToString() << " seed=" << seed;
  LiveTable& t = **table;

  RebuildPolicy policy;
  policy.threshold_ops = 1 + static_cast<size_t>(rng.NextUint64(16));
  policy.compact_tombstone_pct = 5 + static_cast<size_t>(rng.NextUint64(96));
  policy.compact_tail_pct = 10 + static_cast<size_t>(rng.NextUint64(191));

  std::vector<uint64_t> live_p;
  std::vector<uint64_t> live_t;

  const int steps = 25 + static_cast<int>(rng.NextUint64(40));
  for (int step = 0; step < steps; ++step) {
    const uint64_t roll = rng.NextUint64(100);
    if (roll < 30 || live_p.empty()) {
      std::vector<double> coords(dims);
      for (double& c : coords) c = rng.NextDouble(0.0, 4.0);
      Result<uint64_t> id = t.InsertCompetitor(coords);
      SKYUP_CHECK(id.ok()) << id.status().ToString() << " seed=" << seed;
      live_p.push_back(*id);
    } else if (roll < 45) {
      std::vector<double> coords(dims);
      for (double& c : coords) c = rng.NextDouble(0.0, 4.0);
      Result<uint64_t> id = t.InsertProduct(coords);
      SKYUP_CHECK(id.ok()) << id.status().ToString() << " seed=" << seed;
      live_t.push_back(*id);
    } else if (roll < 60 && !live_p.empty()) {
      // Erase-heavy on P by design: erases of *indexed* rows are what
      // advance the memo's erased-count clock mid-epoch.
      const size_t at = static_cast<size_t>(rng.NextUint64(live_p.size()));
      SKYUP_CHECK(t.EraseCompetitor(live_p[at]).ok()) << "seed=" << seed;
      live_p[at] = live_p.back();
      live_p.pop_back();
    } else if (roll < 67 && !live_t.empty()) {
      const size_t at = static_cast<size_t>(rng.NextUint64(live_t.size()));
      SKYUP_CHECK(t.EraseProduct(live_t[at]).ok()) << "seed=" << seed;
      live_t[at] = live_t.back();
      live_t.pop_back();
    } else {
      // Grouped execution vs the per-query memo-off oracle, same state.
      const size_t n = 1 + static_cast<size_t>(rng.NextUint64(12));
      std::vector<BatchQuery> queries(n);
      for (BatchQuery& q : queries) {
        q.k = 1 + static_cast<size_t>(rng.NextUint64(6));
      }
      ReadView view = t.AcquireView();
      ReadView plain = view;
      plain.memo.reset();
      // The memo-off oracle also drops the shared upgrade cache so its
      // answers are recomputed from scratch (and so the grouped engine's
      // cache hits are cross-checked, not mirrored).
      plain.cache.reset();

      std::vector<std::vector<UpgradeResult>> oracle(n);
      for (size_t i = 0; i < n; ++i) {
        Result<std::vector<UpgradeResult>> got =
            TopKOverlay(plain, cost_fn, queries[i].k, epsilon);
        SKYUP_CHECK(got.ok())
            << got.status().ToString() << " seed=" << seed;
        oracle[i] = std::move(*got);
      }

      std::vector<BatchQueryResult> batched;
      TopKOverlayBatch(view, cost_fn, queries, epsilon, &batched);
      SKYUP_CHECK(batched.size() == n) << "seed=" << seed;
      for (size_t i = 0; i < n; ++i) {
        SKYUP_CHECK(batched[i].status.ok())
            << batched[i].status.ToString() << " seed=" << seed;
        CheckSameMember(oracle[i], batched[i].results, "grouped", seed, step,
                        i);
      }

      // Re-run the identical group on the now-warmed memo: the hit path
      // must reproduce the cold answers.
      std::vector<BatchQueryResult> warmed;
      TopKOverlayBatch(view, cost_fn, queries, epsilon, &warmed);
      for (size_t i = 0; i < n; ++i) {
        SKYUP_CHECK(warmed[i].status.ok())
            << warmed[i].status.ToString() << " seed=" << seed;
        CheckSameMember(oracle[i], warmed[i].results, "warmed", seed, step,
                        i);
      }

      // Batch-boundary shuffle: the same query list split into random
      // contiguous groups (size 1 = solo memo-on execution) must agree.
      size_t begin = 0;
      while (begin < n) {
        const size_t width =
            1 + static_cast<size_t>(rng.NextUint64(n - begin));
        const std::vector<BatchQuery> part(queries.begin() + begin,
                                           queries.begin() + begin + width);
        std::vector<BatchQueryResult> split;
        TopKOverlayBatch(view, cost_fn, part, epsilon, &split);
        for (size_t i = 0; i < width; ++i) {
          SKYUP_CHECK(split[i].status.ok())
              << split[i].status.ToString() << " seed=" << seed;
          CheckSameMember(oracle[begin + i], split[i].results, "split", seed,
                          step, begin + i);
        }
        begin += width;
      }
    }
    // Inline epoch rolls: every publish must invalidate the memo (the
    // next batch would otherwise consume probes from the old epoch).
    Result<PublishKind> rebuilt = MaybeRebuildInline(&t, policy);
    SKYUP_CHECK(rebuilt.ok()) << rebuilt.status().ToString()
                              << " seed=" << seed;
  }
}

}  // namespace
}  // namespace fuzz
}  // namespace skyup

SKYUP_FUZZ_DRIVER("fuzz_batch_exec", skyup::fuzz::RunOne)
