// Differential fuzz of the full top-k upgrade pipeline: the index-free
// brute-force oracle vs basic probing vs improved probing (pointer and
// flat-arena) vs the sharded parallel engine at several thread counts.
// All of these promise *bit-identical* ranked results — same product ids,
// same costs (exact double equality), same upgraded vectors — because
// they share one tie-break order and sound pruning only.

#include <vector>

#include "core/cost_function.h"
#include "core/parallel_probing.h"
#include "core/probing.h"
#include "fuzz_common.h"
#include "rtree/flat_rtree.h"
#include "rtree/rtree.h"

namespace skyup {
namespace fuzz {
namespace {

void CheckSameResults(const std::vector<UpgradeResult>& oracle,
                      const std::vector<UpgradeResult>& got, const char* name,
                      uint64_t seed) {
  SKYUP_CHECK(got.size() == oracle.size())
      << name << " returned " << got.size() << " results vs oracle "
      << oracle.size() << ", seed=" << seed;
  for (size_t i = 0; i < oracle.size(); ++i) {
    SKYUP_CHECK(got[i].product_id == oracle[i].product_id)
        << name << " rank " << i << ": product " << got[i].product_id
        << " vs oracle " << oracle[i].product_id << ", seed=" << seed;
    // lint: float-eq-ok (differential oracle: implementations must agree
    // bit-exactly, tolerance would mask real drift)
    SKYUP_CHECK(got[i].cost == oracle[i].cost)
        << name << " rank " << i << ": cost " << got[i].cost << " vs oracle "
        << oracle[i].cost << ", seed=" << seed;
    SKYUP_CHECK(got[i].upgraded == oracle[i].upgraded)
        << name << " rank " << i << ": upgraded vector diverges ("
        << PointToString(got[i].upgraded) << " vs "
        << PointToString(oracle[i].upgraded) << "), seed=" << seed;
    SKYUP_CHECK(got[i].already_competitive == oracle[i].already_competitive)
        << name << " rank " << i << ": already_competitive flag diverges"
        << ", seed=" << seed;
  }
}

void RunOne(uint64_t seed) {
  Rng rng(seed);
  Shape cshape = Shape::kMixed;
  const Dataset competitors = GenAnyDataset(&rng, 60, 4, &cshape);
  const auto pshape = static_cast<Shape>(
      rng.NextUint64(static_cast<uint64_t>(Shape::kShapeCount)));
  const Dataset products = GenDataset(&rng, pshape, 24, competitors.dims());

  const size_t k = 1 + static_cast<size_t>(rng.NextUint64(products.size() + 2));
  const double epsilon = 1e-6;
  const ProductCostFunction cost_fn =
      ProductCostFunction::ReciprocalSum(competitors.dims(), 1e-3);

  const Result<std::vector<UpgradeResult>> oracle =
      TopKBruteForce(competitors, products, cost_fn, k, epsilon);
  SKYUP_CHECK(oracle.ok()) << oracle.status().ToString() << " seed=" << seed;

  RTreeOptions options;
  options.max_entries = 2 + static_cast<size_t>(rng.NextUint64(15));
  const Result<RTree> tree = RTree::BulkLoad(competitors, options);
  SKYUP_CHECK(tree.ok()) << tree.status().ToString() << " seed=" << seed;
  const FlatRTree flat = FlatRTree::FromTree(*tree);

  const Result<std::vector<UpgradeResult>> basic =
      TopKBasicProbing(*tree, products, cost_fn, k, epsilon);
  SKYUP_CHECK(basic.ok()) << basic.status().ToString() << " seed=" << seed;
  CheckSameResults(*oracle, *basic, "TopKBasicProbing", seed);

  const Result<std::vector<UpgradeResult>> improved =
      TopKImprovedProbing(*tree, products, cost_fn, k, epsilon);
  SKYUP_CHECK(improved.ok()) << improved.status().ToString()
                             << " seed=" << seed;
  CheckSameResults(*oracle, *improved, "TopKImprovedProbing(ptr)", seed);

  const Result<std::vector<UpgradeResult>> improved_flat =
      TopKImprovedProbing(flat, products, cost_fn, k, epsilon);
  SKYUP_CHECK(improved_flat.ok())
      << improved_flat.status().ToString() << " seed=" << seed;
  CheckSameResults(*oracle, *improved_flat, "TopKImprovedProbing(flat)",
                   seed);

  // The sharded engine must agree for every thread count, including
  // thread counts exceeding the product count (empty-shard hazard).
  const size_t threads = 1 + static_cast<size_t>(rng.NextUint64(4));
  ExecStats stats;
  const Result<std::vector<UpgradeResult>> parallel =
      TopKImprovedProbingParallel(flat, products, cost_fn, k, epsilon,
                                  threads, &stats);
  SKYUP_CHECK(parallel.ok()) << parallel.status().ToString()
                             << " seed=" << seed;
  CheckSameResults(*oracle, *parallel, "TopKImprovedProbingParallel", seed);
  SKYUP_CHECK(stats.products_processed == products.size())
      << "parallel engine processed " << stats.products_processed << " of "
      << products.size() << " candidates, threads=" << threads
      << " seed=" << seed;

  const Result<std::vector<UpgradeResult>> brute_parallel =
      TopKBruteForceParallel(competitors, products, cost_fn, k, epsilon,
                             threads);
  SKYUP_CHECK(brute_parallel.ok())
      << brute_parallel.status().ToString() << " seed=" << seed;
  CheckSameResults(*oracle, *brute_parallel, "TopKBruteForceParallel", seed);

  static_cast<void>(cshape);  // shapes are for gdb inspection of a replay
  static_cast<void>(pshape);
}

}  // namespace
}  // namespace fuzz
}  // namespace skyup

SKYUP_FUZZ_DRIVER("fuzz_topk", skyup::fuzz::RunOne)
