// Differential fuzz: the runtime-dispatched batched dominance kernels
// (AVX2 when compiled in and supported) against the always-built scalar
// oracle, plus the pairwise predicates against the one-pass classifier.
// Any divergence is a miscompiled or mis-specified kernel — the SIMD and
// scalar paths promise bit-identical IEEE comparisons.

#include <vector>

#include "core/dominance.h"
#include "core/dominance_batch.h"
#include "fuzz_common.h"

namespace skyup {
namespace fuzz {
namespace {

void RunOne(uint64_t seed) {
  Rng rng(seed);
  Shape shape = Shape::kMixed;
  const Dataset block_points = GenAnyDataset(&rng, 40, 6, &shape);
  const size_t dims = block_points.dims();

  SoaBlock block(dims);
  for (size_t i = 0; i < block_points.size(); ++i) {
    block.Append(block_points.data(static_cast<PointId>(i)));
  }
  const SoaView view = block.view();

  const size_t queries = 1 + static_cast<size_t>(rng.NextUint64(6));
  for (size_t qi = 0; qi < queries; ++qi) {
    const std::vector<double> q = GenQueryPoint(&rng, block_points);

    // DominatesAny: dispatched vs scalar vs pairwise reduction.
    const bool any = DominatesAny(view, q.data());
    const bool any_scalar = DominatesAnyScalar(view, q.data());
    bool any_pairwise = false;
    for (size_t i = 0; i < block_points.size() && !any_pairwise; ++i) {
      any_pairwise = DominatesOrEqual(block_points.data(static_cast<PointId>(i)),
                                      q.data(), dims);
    }
    SKYUP_CHECK(any == any_scalar && any == any_pairwise)
        << "DominatesAny divergence: dispatched=" << any
        << " scalar=" << any_scalar << " pairwise=" << any_pairwise
        << " shape=" << ShapeName(shape) << " seed=" << seed;

    // FilterDominated, both strictness modes.
    for (const bool strict : {true, false}) {
      std::vector<uint32_t> got, oracle;
      const size_t got_n = FilterDominated(view, q.data(), &got, strict);
      const size_t oracle_n =
          FilterDominatedScalar(view, q.data(), &oracle, strict);
      SKYUP_CHECK(got_n == oracle_n && got == oracle)
          << "FilterDominated(strict=" << strict
          << ") divergence: dispatched " << got.size() << " lanes vs scalar "
          << oracle.size() << " shape=" << ShapeName(shape)
          << " seed=" << seed;
      for (const uint32_t lane : got) {
        const double* s = block_points.data(static_cast<PointId>(lane));
        const bool expect = strict ? Dominates(s, q.data(), dims)
                                   : DominatesOrEqual(s, q.data(), dims);
        SKYUP_CHECK(expect)
            << "FilterDominated kept lane " << lane
            << " that the pairwise predicate rejects, strict=" << strict
            << " seed=" << seed;
      }
    }

    // ClassifyBlock vs scalar vs per-pair Compare.
    std::vector<DomRelation> got(block_points.size());
    std::vector<DomRelation> oracle(block_points.size());
    ClassifyBlock(view, q.data(), got.data());
    ClassifyBlockScalar(view, q.data(), oracle.data());
    for (size_t i = 0; i < block_points.size(); ++i) {
      const DomRelation pairwise =
          Compare(block_points.data(static_cast<PointId>(i)), q.data(), dims);
      SKYUP_CHECK(got[i] == oracle[i] && got[i] == pairwise)
          << "ClassifyBlock divergence at lane " << i
          << ": dispatched=" << static_cast<int>(got[i])
          << " scalar=" << static_cast<int>(oracle[i])
          << " pairwise=" << static_cast<int>(pairwise)
          << " shape=" << ShapeName(shape) << " seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace fuzz
}  // namespace skyup

SKYUP_FUZZ_DRIVER("fuzz_dominance_kernels", skyup::fuzz::RunOne)
