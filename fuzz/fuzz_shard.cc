// Differential fuzz of the shard-per-core serving tier: the same
// interleaved stream of inserts/erases/queries/publishes runs against a
// sharded server (scatter-gather over N spatial shards behind one
// cross-shard epoch) and against the single-table server as oracle
// (shards=0, the historical path fuzz_serve already pins to a
// from-scratch oracle). Results must agree exactly — sharding is a
// partition of pure work, so it may never change a byte of output.
//
// Shard counts deliberately include 1 (degenerate partition) and counts
// larger than the competitor set (empty shards must freeze/publish as
// identity patches without desynchronizing the cross-shard epoch).
// Beyond results, the fuzz also pins the epoch protocol: after every
// op, the sharded server's epoch and total delta backlog must equal the
// single table's — publish cycles fire on the same op counts.

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/cost_function.h"
#include "fuzz_common.h"
#include "serve/server.h"

namespace skyup {
namespace fuzz {
namespace {

void CheckSameResults(const std::vector<UpgradeResult>& oracle,
                      const std::vector<UpgradeResult>& got, size_t shards,
                      uint64_t seed, int step) {
  SKYUP_CHECK(got.size() == oracle.size())
      << "sharded(" << shards << ") returned " << got.size()
      << " results vs single-table " << oracle.size() << ", seed=" << seed
      << " step=" << step;
  for (size_t i = 0; i < oracle.size(); ++i) {
    SKYUP_CHECK(got[i].product_id == oracle[i].product_id)
        << "shards=" << shards << " rank " << i << ": product "
        << got[i].product_id << " vs " << oracle[i].product_id
        << ", seed=" << seed << " step=" << step;
    // lint: float-eq-ok (differential oracle: scatter-gather must agree
    // bit-exactly with the single-table engine)
    SKYUP_CHECK(got[i].cost == oracle[i].cost)
        << "shards=" << shards << " rank " << i << ": cost " << got[i].cost
        << " vs " << oracle[i].cost << ", seed=" << seed << " step=" << step;
    SKYUP_CHECK(got[i].upgraded == oracle[i].upgraded)
        << "shards=" << shards << " rank " << i
        << ": upgraded vector diverges, seed=" << seed << " step=" << step;
    SKYUP_CHECK(got[i].already_competitive == oracle[i].already_competitive)
        << "shards=" << shards << " rank " << i
        << ": competitive flag diverges, seed=" << seed << " step=" << step;
  }
}

void RunOne(uint64_t seed) {
  Rng rng(seed);
  const size_t dims = 2 + static_cast<size_t>(rng.NextUint64(3));
  // 1 and 9 matter: the degenerate partition, and more shards than the
  // table will hold rows for most of the run.
  constexpr size_t kShardChoices[] = {1, 2, 3, 5, 9};
  const size_t shards = kShardChoices[rng.NextUint64(5)];
  const ProductCostFunction cost_fn =
      ProductCostFunction::ReciprocalSum(dims, 1e-3);

  ServerOptions base;
  base.dims = dims;
  base.background_rebuild = false;  // deterministic inline publishes
  base.rebuild_threshold_ops = 1 + static_cast<size_t>(rng.NextUint64(16));
  base.compact_tombstone_pct = 5 + static_cast<size_t>(rng.NextUint64(96));
  base.compact_tail_pct = 10 + static_cast<size_t>(rng.NextUint64(191));
  base.memo_cache_mb = rng.NextUint64(2) == 0 ? 0 : 1;
  base.query_threads = 1;
  base.flight_recorder = false;

  ServerOptions sharded_options = base;
  sharded_options.shards = shards;
  // Exercise both scatter modes: one worker per shard and serial scatter.
  sharded_options.shard_query_threads = rng.NextUint64(2) == 0 ? 0 : 1;

  Result<std::unique_ptr<Server>> oracle = Server::Create(cost_fn, base);
  SKYUP_CHECK(oracle.ok()) << oracle.status().ToString() << " seed=" << seed;
  Result<std::unique_ptr<Server>> sharded =
      Server::Create(cost_fn, sharded_options);
  SKYUP_CHECK(sharded.ok()) << sharded.status().ToString()
                            << " seed=" << seed;

  std::vector<uint64_t> live_p;
  std::vector<uint64_t> live_t;

  const int steps = 40 + static_cast<int>(rng.NextUint64(60));
  for (int step = 0; step < steps; ++step) {
    const uint64_t roll = rng.NextUint64(100);
    if (roll < 30 || (roll < 65 && live_p.empty())) {
      std::vector<double> coords(dims);
      for (double& c : coords) c = rng.NextDouble(0.0, 4.0);
      Result<uint64_t> a = (*oracle)->InsertCompetitor(coords);
      Result<uint64_t> b = (*sharded)->InsertCompetitor(coords);
      SKYUP_CHECK(a.ok() && b.ok()) << "seed=" << seed << " step=" << step;
      SKYUP_CHECK(*a == *b) << "competitor id diverges: " << *a << " vs "
                            << *b << ", seed=" << seed << " step=" << step;
      live_p.push_back(*a);
    } else if (roll < 45) {
      std::vector<double> coords(dims);
      for (double& c : coords) c = rng.NextDouble(0.0, 4.0);
      Result<uint64_t> a = (*oracle)->InsertProduct(coords);
      Result<uint64_t> b = (*sharded)->InsertProduct(coords);
      SKYUP_CHECK(a.ok() && b.ok()) << "seed=" << seed << " step=" << step;
      SKYUP_CHECK(*a == *b) << "product id diverges: " << *a << " vs " << *b
                            << ", seed=" << seed << " step=" << step;
      live_t.push_back(*a);
    } else if (roll < 58 && !live_p.empty()) {
      const size_t at = static_cast<size_t>(rng.NextUint64(live_p.size()));
      const uint64_t id = live_p[at];
      live_p[at] = live_p.back();
      live_p.pop_back();
      const Status a = (*oracle)->EraseCompetitor(id);
      const Status b = (*sharded)->EraseCompetitor(id);
      SKYUP_CHECK(a.code() == b.code())
          << "erase p " << id << ": " << a.ToString() << " vs "
          << b.ToString() << ", seed=" << seed << " step=" << step;
    } else if (roll < 68 && !live_t.empty()) {
      const size_t at = static_cast<size_t>(rng.NextUint64(live_t.size()));
      const uint64_t id = live_t[at];
      live_t[at] = live_t.back();
      live_t.pop_back();
      const Status a = (*oracle)->EraseProduct(id);
      const Status b = (*sharded)->EraseProduct(id);
      SKYUP_CHECK(a.code() == b.code())
          << "erase t " << id << ": " << a.ToString() << " vs "
          << b.ToString() << ", seed=" << seed << " step=" << step;
    } else if (roll < 72) {
      // Erase an id that never existed (or is long gone): both modes
      // must agree on the rejection, and the sharded id router must not
      // leak state for it.
      const uint64_t bogus = 1000000 + rng.NextUint64(1000);
      const Status a = (*oracle)->EraseCompetitor(bogus);
      const Status b = (*sharded)->EraseCompetitor(bogus);
      SKYUP_CHECK(a.code() == b.code())
          << "bogus erase: " << a.ToString() << " vs " << b.ToString()
          << ", seed=" << seed << " step=" << step;
    } else {
      QueryRequest request;
      request.k = 1 + static_cast<size_t>(rng.NextUint64(6));
      const QueryResponse a = (*oracle)->Query(request);
      const QueryResponse b = (*sharded)->Query(request);
      SKYUP_CHECK(a.status.ok()) << a.status.ToString() << " seed=" << seed;
      SKYUP_CHECK(b.status.ok()) << b.status.ToString() << " seed=" << seed;
      CheckSameResults(a.results, b.results, shards, seed, step);
      SKYUP_CHECK(a.epoch == b.epoch)
          << "query epoch diverges: " << a.epoch << " vs " << b.epoch
          << ", seed=" << seed << " step=" << step;
    }
    // The cross-shard epoch protocol must stay in lockstep with the
    // single table: publish cycles fire on the same total op counts.
    SKYUP_CHECK((*oracle)->CurrentEpoch() == (*sharded)->CurrentEpoch())
        << "epoch diverges: " << (*oracle)->CurrentEpoch() << " vs "
        << (*sharded)->CurrentEpoch() << ", seed=" << seed
        << " step=" << step << " shards=" << shards;
    SKYUP_CHECK((*oracle)->DeltaBacklog() == (*sharded)->DeltaBacklog())
        << "backlog diverges: " << (*oracle)->DeltaBacklog() << " vs "
        << (*sharded)->DeltaBacklog() << ", seed=" << seed
        << " step=" << step << " shards=" << shards;
  }

  // Final sweep: a batch of query sizes over the settled state.
  for (size_t k = 1; k <= 8; ++k) {
    QueryRequest request;
    request.k = k;
    const QueryResponse a = (*oracle)->Query(request);
    const QueryResponse b = (*sharded)->Query(request);
    SKYUP_CHECK(a.status.ok() && b.status.ok()) << "seed=" << seed;
    CheckSameResults(a.results, b.results, shards, seed, steps);
  }
}

}  // namespace
}  // namespace fuzz
}  // namespace skyup

SKYUP_FUZZ_DRIVER("fuzz_shard", skyup::fuzz::RunOne)
