#include "fuzz_common.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace skyup {
namespace fuzz {

const char* ShapeName(Shape shape) {
  switch (shape) {
    case Shape::kMixed:
      return "mixed";
    case Shape::kTies:
      return "ties";
    case Shape::kDuplicates:
      return "duplicates";
    case Shape::kDegenerate:
      return "degenerate";
    case Shape::kSinglePoint:
      return "single-point";
    case Shape::kAllDominated:
      return "all-dominated";
    case Shape::kShapeCount:
      break;
  }
  return "?";
}

namespace {

// Snaps to a grid of `levels` distinct values per dimension — the tie
// machine. levels == 2 or 3 makes equal coordinates the common case.
double Snap(double v, uint64_t levels) {
  const double step = 4.0 / static_cast<double>(levels);
  const auto cell = static_cast<uint64_t>(v / step);
  return static_cast<double>(cell < levels ? cell : levels - 1) * step;
}

}  // namespace

Dataset GenDataset(Rng* rng, Shape shape, size_t max_points, size_t dims) {
  SKYUP_CHECK(rng != nullptr && max_points >= 1 && dims >= 1);
  const size_t n = 1 + static_cast<size_t>(rng->NextUint64(max_points));
  Dataset data(dims);
  std::vector<double> row(dims);

  switch (shape) {
    case Shape::kMixed: {
      for (size_t i = 0; i < n; ++i) {
        for (auto& v : row) v = rng->NextDouble(0.0, 4.0);
        data.Add(row);
      }
      break;
    }
    case Shape::kTies: {
      const uint64_t levels = 2 + rng->NextUint64(3);  // 2..4 values/dim
      for (size_t i = 0; i < n; ++i) {
        for (auto& v : row) v = Snap(rng->NextDouble(0.0, 4.0), levels);
        data.Add(row);
      }
      break;
    }
    case Shape::kDuplicates: {
      const size_t distinct = 1 + static_cast<size_t>(rng->NextUint64(4));
      std::vector<std::vector<double>> rows(distinct, row);
      for (auto& r : rows) {
        for (auto& v : r) v = rng->NextDouble(0.0, 4.0);
      }
      for (size_t i = 0; i < n; ++i) {
        data.Add(rows[rng->NextUint64(distinct)]);
      }
      break;
    }
    case Shape::kDegenerate: {
      // Some dimensions frozen to a constant, the rest driven by a single
      // shared parameter (all points on a monotone curve), with occasional
      // jitter so a few points leave the curve.
      std::vector<bool> frozen(dims);
      for (size_t d = 0; d < dims; ++d) frozen[d] = rng->NextUint64(2) == 0;
      const double constant = rng->NextDouble(0.0, 4.0);
      for (size_t i = 0; i < n; ++i) {
        const double tpar = rng->NextDouble(0.0, 4.0);
        for (size_t d = 0; d < dims; ++d) {
          row[d] = frozen[d] ? constant : tpar;
          if (rng->NextUint64(8) == 0) row[d] = rng->NextDouble(0.0, 4.0);
        }
        data.Add(row);
      }
      break;
    }
    case Shape::kSinglePoint: {
      for (auto& v : row) v = rng->NextDouble(0.0, 4.0);
      data.Add(row);
      break;
    }
    case Shape::kAllDominated: {
      // One crushing competitor at the low corner; everyone else strictly
      // worse on every dimension.
      for (auto& v : row) v = rng->NextDouble(0.0, 0.5);
      data.Add(row);
      std::vector<double> worse(dims);
      for (size_t i = 1; i < n; ++i) {
        for (size_t d = 0; d < dims; ++d) {
          worse[d] = row[d] + rng->NextDouble(0.25, 3.0);
        }
        data.Add(worse);
      }
      break;
    }
    case Shape::kShapeCount:
      SKYUP_CHECK(false) << "kShapeCount is not a shape";
  }
  return data;
}

Dataset GenAnyDataset(Rng* rng, size_t max_points, size_t max_dims,
                      Shape* out_shape) {
  SKYUP_CHECK(max_dims >= 1);
  const auto shape = static_cast<Shape>(
      rng->NextUint64(static_cast<uint64_t>(Shape::kShapeCount)));
  const size_t dims = 1 + static_cast<size_t>(rng->NextUint64(max_dims));
  if (out_shape != nullptr) *out_shape = shape;
  return GenDataset(rng, shape, max_points, dims);
}

std::vector<double> GenQueryPoint(Rng* rng, const Dataset& data) {
  const size_t dims = data.dims();
  std::vector<double> q(dims);
  const uint64_t mode = rng->NextUint64(4);
  if (mode == 0 && !data.empty()) {
    // Exact copy of an existing row: the hardest tie case.
    const auto id = static_cast<PointId>(rng->NextUint64(data.size()));
    const double* p = data.data(id);
    q.assign(p, p + dims);
  } else if (mode == 1) {
    // Outside the [0, 4) hull (either side), so the dominator set is
    // everything or nothing.
    const double offset = rng->NextUint64(2) == 0 ? 5.0 : -1.5;
    for (auto& v : q) v = offset + rng->NextDouble(0.0, 0.5);
  } else {
    for (auto& v : q) v = rng->NextDouble(0.0, 4.0);
  }
  return q;
}

std::string RowsToString(const Dataset& data) {
  std::ostringstream out;
  for (size_t i = 0; i < data.size(); ++i) {
    out << (i == 0 ? "" : " ")
        << PointToString(data.data(static_cast<PointId>(i)), data.dims());
  }
  return out.str();
}

int FuzzMain(int argc, char** argv, const char* name,
             void (*run_one)(uint64_t seed)) {
  uint64_t iterations = 2000;
  uint64_t base_seed = 1;
  if (argc > 1) iterations = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) base_seed = std::strtoull(argv[2], nullptr, 10);
  if (iterations == 0) {
    std::fprintf(stderr, "usage: %s [iterations] [base_seed]\n", argv[0]);
    return 2;
  }
  for (uint64_t i = 0; i < iterations; ++i) {
    const uint64_t seed = base_seed + i;
    // The seed is printed *before* the run so a SKYUP_CHECK abort inside
    // run_one always leaves the failing seed on stderr.
    if (i % 1000 == 0) {
      std::fprintf(stderr, "[%s] seed %" PRIu64 " (%" PRIu64 "/%" PRIu64
                           " done)\n",
                   name, seed, i, iterations);
    }
    run_one(seed);
  }
  std::fprintf(stderr, "[%s] OK: %" PRIu64 " iterations, seeds %" PRIu64
                       "..%" PRIu64 "\n",
               name, iterations, base_seed, base_seed + iterations - 1);
  return 0;
}

}  // namespace fuzz
}  // namespace skyup
