// Differential fuzz of the live serving layer: random interleavings of
// inserts/erases on P and T, inline snapshot rebuilds at a random
// threshold, and top-k queries through the snapshot+overlay engine
// (serve/query.h) — checked for exact equality against an independent
// from-scratch oracle that never sees a snapshot, an index, or an
// overlay: a plain map of live rows, a linear dominator scan, a skyline
// reduction, and Algorithm 1 per candidate.
//
// Also stresses the two serving-specific hazards:
//   * stale views: a view captured mid-stream is re-queried after more
//     updates and rebuilds land — its results must match the oracle state
//     at capture time, not the current state;
//   * post-rebuild agreement: after a forced full rebuild (empty overlay),
//     the same query must return the same results it returned through the
//     overlay.

#include <cstdint>
#include <iterator>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/cost_function.h"
#include "core/dominance.h"
#include "core/single_upgrade.h"
#include "core/topk_common.h"
#include "fuzz_common.h"
#include "serve/live_table.h"
#include "serve/query.h"
#include "serve/rebuilder.h"
#include "skyline/skyline.h"

namespace skyup {
namespace fuzz {
namespace {

// Oracle state: live rows by stable id. std::map keeps iteration in id
// order, matching the enumeration order the serving engine guarantees.
using OracleTable = std::map<uint64_t, std::vector<double>>;

std::vector<UpgradeResult> OracleTopK(const OracleTable& live_p,
                                      const OracleTable& live_t,
                                      const ProductCostFunction& cost_fn,
                                      size_t dims, size_t k,
                                      double epsilon) {
  TopKCollector collector(k);
  for (const auto& [tid, t] : live_t) {
    std::vector<const double*> dominators;
    for (const auto& [pid, p] : live_p) {
      if (Dominates(p.data(), t.data(), dims)) {
        dominators.push_back(p.data());
      }
    }
    SkylineOfPointers(&dominators, dims);
    UpgradeOutcome outcome =
        UpgradeProduct(dominators, t.data(), dims, cost_fn, epsilon);
    if (collector.Admits(outcome.cost)) {
      collector.Add(UpgradeResult{static_cast<PointId>(tid), outcome.cost,
                                  std::move(outcome.upgraded),
                                  outcome.already_competitive});
    }
  }
  return collector.Finish();
}

void CheckSameResults(const std::vector<UpgradeResult>& oracle,
                      const std::vector<UpgradeResult>& got,
                      const char* where, uint64_t seed, int step) {
  SKYUP_CHECK(got.size() == oracle.size())
      << where << " returned " << got.size() << " results vs oracle "
      << oracle.size() << ", seed=" << seed << " step=" << step;
  for (size_t i = 0; i < oracle.size(); ++i) {
    SKYUP_CHECK(got[i].product_id == oracle[i].product_id)
        << where << " rank " << i << ": product " << got[i].product_id
        << " vs oracle " << oracle[i].product_id << ", seed=" << seed
        << " step=" << step;
    // lint: float-eq-ok (differential oracle: the overlay engine must
    // agree bit-exactly with the from-scratch computation)
    SKYUP_CHECK(got[i].cost == oracle[i].cost)
        << where << " rank " << i << ": cost " << got[i].cost
        << " vs oracle " << oracle[i].cost << ", seed=" << seed
        << " step=" << step;
    SKYUP_CHECK(got[i].upgraded == oracle[i].upgraded)
        << where << " rank " << i << ": upgraded vector diverges, seed="
        << seed << " step=" << step;
    SKYUP_CHECK(got[i].already_competitive == oracle[i].already_competitive)
        << where << " rank " << i << ": competitive flag diverges, seed="
        << seed << " step=" << step;
  }
}

// A stale view plus the oracle state frozen at capture time.
struct StaleCheck {
  ReadView view;
  OracleTable live_p;
  OracleTable live_t;
  int captured_at = 0;
};

void RunOne(uint64_t seed) {
  Rng rng(seed);
  const size_t dims = 2 + static_cast<size_t>(rng.NextUint64(3));
  const double epsilon = 1e-6;
  const ProductCostFunction cost_fn =
      ProductCostFunction::ReciprocalSum(dims, 1e-3);

  LiveTableOptions options;
  options.dims = dims;
  // Tiny fanouts + thresholds exercise deep trees and frequent rebuilds.
  options.rtree_fanout = 2 + static_cast<size_t>(rng.NextUint64(7));
  Result<std::unique_ptr<LiveTable>> table = LiveTable::Create(options);
  SKYUP_CHECK(table.ok()) << table.status().ToString() << " seed=" << seed;
  LiveTable& t = **table;

  RebuildPolicy policy;
  policy.threshold_ops = 1 + static_cast<size_t>(rng.NextUint64(16));
  // Random patch-vs-major escalation points: low ones force frequent
  // compactions, high ones let tombstones and tails pile up across many
  // patched epochs — both sides of ChoosePublish get exercised.
  policy.compact_tombstone_pct = 5 + static_cast<size_t>(rng.NextUint64(96));
  policy.compact_tail_pct = 10 + static_cast<size_t>(rng.NextUint64(191));

  // A quarter of the seeds run erase-heavy: patched snapshots accumulate
  // index tombstones and queries carry pending erases, which is what the
  // mask-aware probe and the prune face-disable path need to see.
  const bool erase_heavy = rng.NextUint64(4) == 0;
  const uint64_t p_ins_below = erase_heavy ? 20 : 30;
  const uint64_t t_ins_below = p_ins_below + 15;
  const uint64_t p_del_below = t_ins_below + (erase_heavy ? 25 : 13);
  const uint64_t t_del_below = p_del_below + 10;
  const uint64_t capture_below = t_del_below + 4;

  OracleTable live_p;
  OracleTable live_t;
  std::vector<StaleCheck> stale;

  const int steps = 30 + static_cast<int>(rng.NextUint64(50));
  for (int step = 0; step < steps; ++step) {
    const uint64_t roll = rng.NextUint64(100);
    if (roll < p_ins_below || (roll < 60 && live_p.empty())) {
      // Insert competitor. Sometimes duplicate an existing row exactly
      // (tie stress for the skyline reduction).
      std::vector<double> coords(dims);
      if (!live_p.empty() && rng.NextUint64(4) == 0) {
        coords = live_p.begin()->second;
      } else {
        for (double& c : coords) c = rng.NextDouble(0.0, 4.0);
      }
      Result<uint64_t> id = t.InsertCompetitor(coords);
      SKYUP_CHECK(id.ok()) << id.status().ToString() << " seed=" << seed;
      live_p.emplace(*id, std::move(coords));
    } else if (roll < t_ins_below) {
      std::vector<double> coords(dims);
      for (double& c : coords) c = rng.NextDouble(0.0, 4.0);
      Result<uint64_t> id = t.InsertProduct(coords);
      SKYUP_CHECK(id.ok()) << id.status().ToString() << " seed=" << seed;
      live_t.emplace(*id, std::move(coords));
    } else if (roll < p_del_below && !live_p.empty()) {
      auto victim = live_p.begin();
      std::advance(victim,
                   static_cast<long>(rng.NextUint64(live_p.size())));
      SKYUP_CHECK(t.EraseCompetitor(victim->first).ok()) << "seed=" << seed;
      live_p.erase(victim);
    } else if (roll < t_del_below && !live_t.empty()) {
      auto victim = live_t.begin();
      std::advance(victim,
                   static_cast<long>(rng.NextUint64(live_t.size())));
      SKYUP_CHECK(t.EraseProduct(victim->first).ok()) << "seed=" << seed;
      live_t.erase(victim);
    } else if (roll < capture_below) {
      // Capture a view to re-query later, against today's oracle state.
      stale.push_back(StaleCheck{t.AcquireView(), live_p, live_t, step});
    } else {
      const size_t k = 1 + static_cast<size_t>(rng.NextUint64(6));
      Result<std::vector<UpgradeResult>> got =
          TopKOverlay(t.AcquireView(), cost_fn, k, epsilon);
      SKYUP_CHECK(got.ok()) << got.status().ToString() << " seed=" << seed;
      CheckSameResults(
          OracleTopK(live_p, live_t, cost_fn, dims, k, epsilon), *got,
          "overlay", seed, step);
    }
    // Inline rebuild exactly like the deterministic serving mode; the
    // policy decides per cycle whether it patches or compacts.
    Result<PublishKind> rebuilt = MaybeRebuildInline(&t, policy);
    SKYUP_CHECK(rebuilt.ok()) << rebuilt.status().ToString()
                              << " seed=" << seed;
  }

  // Stale views answer as of their capture instant, however many rebuilds
  // have landed since.
  for (const StaleCheck& check : stale) {
    const size_t k = 1 + static_cast<size_t>(rng.NextUint64(6));
    Result<std::vector<UpgradeResult>> got =
        TopKOverlay(check.view, cost_fn, k, epsilon);
    SKYUP_CHECK(got.ok()) << got.status().ToString() << " seed=" << seed;
    CheckSameResults(
        OracleTopK(check.live_p, check.live_t, cost_fn, dims, k, epsilon),
        *got, "stale-view", seed, check.captured_at);
  }

  // Force a final full rebuild: the clean (no-overlay) query must agree
  // with both the oracle and the overlay answer for the same state.
  const size_t k = 1 + static_cast<size_t>(rng.NextUint64(6));
  Result<std::vector<UpgradeResult>> via_overlay =
      TopKOverlay(t.AcquireView(), cost_fn, k, epsilon);
  SKYUP_CHECK(via_overlay.ok())
      << via_overlay.status().ToString() << " seed=" << seed;
  std::optional<LiveTable::RebuildJob> job = t.BeginRebuild();
  if (job.has_value()) {
    Result<std::shared_ptr<const Snapshot>> merged = MergeSnapshot(
        *job->base, job->ops, job->next_epoch, t.index_options());
    SKYUP_CHECK(merged.ok()) << merged.status().ToString()
                             << " seed=" << seed;
    t.CompleteRebuild(*merged);
  }
  ReadView clean = t.AcquireView();
  SKYUP_CHECK(clean.deltas.empty()) << "seed=" << seed;
  // Drop the table's upgrade cache from this view: the clean query then
  // recomputes every candidate from scratch, so the agreement check below
  // is also a cache-on vs cache-off differential (the overlay answer was
  // free to reuse cached results for the same state).
  clean.cache.reset();
  Result<std::vector<UpgradeResult>> via_snapshot =
      TopKOverlay(clean, cost_fn, k, epsilon);
  SKYUP_CHECK(via_snapshot.ok())
      << via_snapshot.status().ToString() << " seed=" << seed;
  CheckSameResults(*via_overlay, *via_snapshot, "post-rebuild", seed,
                   steps);
  CheckSameResults(OracleTopK(live_p, live_t, cost_fn, dims, k, epsilon),
                   *via_snapshot, "final-oracle", seed, steps);
}

}  // namespace
}  // namespace fuzz
}  // namespace skyup

SKYUP_FUZZ_DRIVER("fuzz_serve", skyup::fuzz::RunOne)
