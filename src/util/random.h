#ifndef SKYUP_UTIL_RANDOM_H_
#define SKYUP_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace skyup {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// The library never uses std::mt19937 so that generated workloads are
/// bit-identical across standard-library implementations; every generator
/// in `src/data` is seeded explicitly to make experiments reproducible.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Uniform integer in [0, n). `n` must be > 0.
  uint64_t NextUint64(uint64_t n);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace skyup

#endif  // SKYUP_UTIL_RANDOM_H_
