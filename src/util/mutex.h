#ifndef SKYUP_UTIL_MUTEX_H_
#define SKYUP_UTIL_MUTEX_H_

// Capability-annotated synchronization wrappers. Every mutex, condition
// variable, and lock holder in src/ goes through these types (lint rule
// "raw-mutex", tools/lint.py) so Clang Thread Safety Analysis can see
// the whole concurrent surface:
//
//   Mutex / MutexLock         annotated std::mutex + RAII scoped lock
//   SharedMutex               annotated std::shared_mutex
//   ReaderLock / WriterLock   RAII shared / exclusive lock holders
//   CondVar                   condition variable waiting on a Mutex
//
// Under non-Clang compilers the wrappers collapse to literal aliases of
// the standard types (zero cost, identical call-site syntax). Under
// Clang they are thin inline shims whose lock/unlock methods carry
// acquire/release attributes — same codegen, plus static checking.
//
// Call-site contract shared by both sides:
//   - `MutexLock lock(mu_);` acquires for the enclosing scope.
//   - `cv_.wait(mu_);` / `cv_.wait_for(mu_, d);` /
//     `cv_.wait_until(mu_, tp);` wait with the Mutex itself (CondVar is
//     std::condition_variable_any underneath, so no std::unique_lock —
//     which the analysis cannot see through — ever appears at call
//     sites). Predicates are written as explicit `while (!P) wait;`
//     loops so the analysis checks the guarded reads in P.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace skyup {

#if defined(__clang__)

class SKYUP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SKYUP_ACQUIRE() { mu_.lock(); }
  void unlock() SKYUP_RELEASE() { mu_.unlock(); }
  bool try_lock() SKYUP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

class SKYUP_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() SKYUP_ACQUIRE() { mu_.lock(); }
  void unlock() SKYUP_RELEASE() { mu_.unlock(); }
  bool try_lock() SKYUP_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void lock_shared() SKYUP_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() SKYUP_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// Canonical scoped holder from the Clang TSA documentation: the ctor
// acquires (and announces it), the dtor releases.
class SKYUP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SKYUP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SKYUP_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

class SKYUP_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) SKYUP_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() SKYUP_RELEASE() { mu_.unlock_shared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

class SKYUP_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) SKYUP_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterLock() SKYUP_RELEASE() { mu_.unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Waits directly on a Mutex (condition_variable_any underneath), so the
// held capability stays visible to the analysis across the wait. Every
// wait method REQUIRES the mutex; the wait itself unlocks/relocks inside
// the standard library, which is invisible to (and ignored by) TSA —
// exactly the std::condition_variable contract.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& mu) SKYUP_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& timeout)
      SKYUP_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      SKYUP_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

 private:
  std::condition_variable_any cv_;
};

#else  // !defined(__clang__)

// Literal aliases: the annotated call-site syntax above is exactly the
// standard-library syntax, so non-Clang builds use the real types with
// no wrapper in the way.
using Mutex = std::mutex;
using SharedMutex = std::shared_mutex;
using MutexLock = std::scoped_lock<std::mutex>;
using ReaderLock = std::shared_lock<std::shared_mutex>;
using WriterLock = std::scoped_lock<std::shared_mutex>;
using CondVar = std::condition_variable_any;

#endif  // defined(__clang__)

}  // namespace skyup

#endif  // SKYUP_UTIL_MUTEX_H_
