#ifndef SKYUP_UTIL_LOGGING_H_
#define SKYUP_UTIL_LOGGING_H_

#include <sstream>
#include <string>

// The contract macros (SKYUP_CHECK and friends) moved to util/check.h;
// this include keeps every historical `#include "util/logging.h"` user of
// them compiling.
#include "util/check.h"

namespace skyup {

/// Severity levels for the minimal logging facility used by the library.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum severity; messages below it are dropped.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction.
/// Not for direct use; see the SKYUP_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Streams a message at the given severity:
///   SKYUP_LOG(kInfo) << "built tree with " << n << " leaves";
#define SKYUP_LOG(severity)                                          \
  if (::skyup::LogLevel::severity >= ::skyup::GetLogLevel())         \
  ::skyup::internal::LogMessage(::skyup::LogLevel::severity,         \
                                __FILE__, __LINE__)                  \
      .stream()

}  // namespace skyup

#endif  // SKYUP_UTIL_LOGGING_H_
