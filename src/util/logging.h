#ifndef SKYUP_UTIL_LOGGING_H_
#define SKYUP_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace skyup {

/// Severity levels for the minimal logging facility used by the library.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum severity; messages below it are dropped.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction.
/// Not for direct use; see the SKYUP_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Aborts the process after emitting the accumulated message. Used by
/// SKYUP_CHECK on invariant violations.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

/// Streams a message at the given severity:
///   SKYUP_LOG(kInfo) << "built tree with " << n << " leaves";
#define SKYUP_LOG(severity)                                          \
  if (::skyup::LogLevel::severity >= ::skyup::GetLogLevel())         \
  ::skyup::internal::LogMessage(::skyup::LogLevel::severity,         \
                                __FILE__, __LINE__)                  \
      .stream()

/// Aborts with a diagnostic when `condition` is false. Active in all build
/// types: these guard internal invariants whose violation would otherwise
/// corrupt results silently.
#define SKYUP_CHECK(condition)                                           \
  if (!(condition))                                                      \
  ::skyup::internal::FatalLogMessage(__FILE__, __LINE__, #condition)     \
      .stream()

/// Debug-only check, compiled out in NDEBUG builds.
#ifdef NDEBUG
#define SKYUP_DCHECK(condition) \
  if (false) SKYUP_CHECK(condition)
#else
#define SKYUP_DCHECK(condition) SKYUP_CHECK(condition)
#endif

}  // namespace skyup

#endif  // SKYUP_UTIL_LOGGING_H_
