#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace skyup {

namespace {
// splitmix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  SKYUP_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextUint64(uint64_t n) {
  SKYUP_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

}  // namespace skyup
