#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace skyup {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const size_t n = x.size();
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double Quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

}  // namespace skyup
