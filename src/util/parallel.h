#ifndef SKYUP_UTIL_PARALLEL_H_
#define SKYUP_UTIL_PARALLEL_H_

// Minimal sharded-parallelism primitives shared by the query engine and
// the benches: a contiguous-range ParallelFor over std::thread workers and
// a lock-free, monotonically non-increasing cost threshold (CAS-min).
//
// Static concurrency analysis note: ParallelFor is the one place work
// crosses threads without a capability changing hands — Clang Thread
// Safety Analysis cannot follow the spawn/join handoff, so a `body` that
// touches guarded state must acquire the guarding lock *inside* the
// lambda (as core/parallel_probing.cc does for its stop status). The
// join in ParallelFor is still the happens-before edge that lets callers
// read the workers' results unlocked afterwards.

#include <atomic>
#include <cstddef>
#include <functional>

namespace skyup {

/// Number of workers actually used for `items` units of work: `requested`
/// capped at `items`, with 0 meaning one per hardware thread. Always >= 1.
size_t ResolveThreadCount(size_t requested, size_t items);

/// Splits [0, items) into near-equal contiguous shards and runs
/// `body(shard, begin, end)` on each, shard 0 on the calling thread and the
/// rest on their own std::thread. Returns only after every shard finished.
/// `threads` is resolved with `ResolveThreadCount`; `body` must be safe to
/// run concurrently on disjoint ranges.
void ParallelFor(size_t items, size_t threads,
                 const std::function<void(size_t shard, size_t begin,
                                          size_t end)>& body);

/// A cost bound shared by all workers of one query, maintained lock-free
/// with compare-exchange. Starts at +infinity ("admit everything");
/// workers only ever lower it as their local top-k buffers fill, so it
/// converges onto the global k-th-best cost. Reads are relaxed: a stale
/// (larger) value merely weakens pruning, never correctness.
class AtomicCostThreshold {
 public:
  AtomicCostThreshold();

  /// Current bound. A candidate whose cost (or sound lower bound on it)
  /// strictly exceeds this value is provably outside the global top-k.
  double Get() const;

  /// Lowers the bound to `value` if that improves on the current one
  /// (CAS-min loop). Returns true iff this call changed the threshold.
  bool RelaxTo(double value);

 private:
  std::atomic<double> threshold_;
};

}  // namespace skyup

#endif  // SKYUP_UTIL_PARALLEL_H_
