#ifndef SKYUP_UTIL_LOCK_ORDER_H_
#define SKYUP_UTIL_LOCK_ORDER_H_

// Global lock-acquisition order, encoded as capability "rank" tokens so
// Clang Thread Safety Analysis (-Wthread-safety-beta) turns potential
// deadlocks into compile errors.
//
// A Rank is a capability that is never acquired at runtime; it exists
// only to anchor SKYUP_ACQUIRED_BEFORE/AFTER edges. Each real mutex is
// sandwiched between two adjacent ranks, which places every mutex class
// in one total order without pairwise edges between unrelated mutexes.
// The analysis computes the transitive closure, so acquiring a
// lower-band mutex while holding a higher-band one is rejected at
// compile time.
//
// Declared order, outermost (acquired first) to innermost:
//
//   kFrontDoor     TenantRegistry::mu_ (tenant lookup/create may admit a
//        |                             query — the whole serving stack
//        |                             nests under the registry)
//   kServerQueue   Server::queue_mu_   (admission queue + worker wakeup)
//        |
//   kServerStats   Server::stats_mu_   (ServeStats + latency histograms;
//        |                             Submit records rejects while
//        |                             holding the queue lock)
//   kRebuilder     Rebuilder::mu_      (Server::stats() reads publish
//        |                             counters under stats_mu_)
//   kShardTable    ShardedTable::epoch_mu_ / route_mu_ — cross-shard
//        |         epoch fence and id routing; both sit above every
//        |         per-shard LiveTable lock they coordinate, and are
//        |         mutually non-nesting
//   kTable         LiveTable::mu_      (delta apply / view acquisition)
//        |
//   kTableSub      DeltaLog, UpgradeCache, SkylineMemo shards,
//        |         SnapshotStore — table substructures locked while
//        |         LiveTable::mu_ is held; mutually non-nesting
//   kObsRegistry   trace registry, MetricsRegistry — any layer may
//        |         export metrics/spans while holding serving locks
//   kObsFlight     FlightRecorder::mu_ — query records are appended
//        |         from outcome paths that may hold stats_mu_, and
//        |         system samples are taken while reading table stats
//   kObsLog        LogSink::mu_ — the true leaf: every layer (including
//                  the flight recorder and the registries above) must
//                  be able to emit a structured log line from anywhere,
//                  so nothing is ever acquired under the log sink.
//
// See docs/algorithms.md ("Static concurrency analysis") for the full
// capability map and the rationale for each edge.

#include "util/thread_annotations.h"

namespace skyup {
namespace lock_order {

class SKYUP_CAPABILITY("lock_rank") Rank {
 public:
  Rank() = default;
  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;
};

inline Rank kFrontDoor;
inline Rank kServerQueue SKYUP_ACQUIRED_AFTER(kFrontDoor);
inline Rank kServerStats SKYUP_ACQUIRED_AFTER(kServerQueue);
inline Rank kRebuilder SKYUP_ACQUIRED_AFTER(kServerStats);
inline Rank kShardTable SKYUP_ACQUIRED_AFTER(kRebuilder);
inline Rank kTable SKYUP_ACQUIRED_AFTER(kShardTable);
inline Rank kTableSub SKYUP_ACQUIRED_AFTER(kTable);
inline Rank kObsRegistry SKYUP_ACQUIRED_AFTER(kTableSub);
inline Rank kObsFlight SKYUP_ACQUIRED_AFTER(kObsRegistry);
inline Rank kObsLog SKYUP_ACQUIRED_AFTER(kObsFlight);

}  // namespace lock_order
}  // namespace skyup

#endif  // SKYUP_UTIL_LOCK_ORDER_H_
