#ifndef SKYUP_UTIL_CSV_H_
#define SKYUP_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace skyup {

/// A parsed CSV table: a header row (possibly empty) and numeric rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;
};

/// Parses numeric CSV text. If `has_header` is true the first line is kept
/// as column names. Every remaining field must parse as a double; rows with
/// inconsistent arity are an error. Blank lines are skipped.
Result<CsvTable> ParseCsv(const std::string& text, bool has_header);

/// Reads and parses a CSV file. See `ParseCsv`.
Result<CsvTable> ReadCsvFile(const std::string& path, bool has_header);

/// Serializes a table to CSV text with 6 significant digits.
std::string ToCsv(const CsvTable& table);

/// Writes a table to a file, overwriting it.
Status WriteCsvFile(const std::string& path, const CsvTable& table);

}  // namespace skyup

#endif  // SKYUP_UTIL_CSV_H_
