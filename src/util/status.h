#ifndef SKYUP_UTIL_STATUS_H_
#define SKYUP_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace skyup {

/// Error categories used across the library. Modeled after the
/// RocksDB/Arrow status idiom: functions that can fail return a `Status`
/// (or a `Result<T>`), never throw.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIOError,
  kNotSupported,
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
};

/// Returns a human-readable name for `code` (e.g., "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value.
///
/// The OK status carries no message and allocates nothing. Error statuses
/// carry a code and a free-form message describing the failure.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. `code` must not
  /// be `kOk`; use the default constructor for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code_ != StatusCode::kOk);
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper: holds either a `T` or an error `Status`.
///
/// Usage:
///   Result<RTree> r = RTree::BulkLoad(...);
///   if (!r.ok()) return r.status();
///   RTree tree = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }

  /// The error status, or OK if this result holds a value.
  const Status& status() const { return status_; }

  /// Accessors require `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates an error status out of the current function.
#define SKYUP_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::skyup::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (false)

}  // namespace skyup

#endif  // SKYUP_UTIL_STATUS_H_
