#ifndef SKYUP_UTIL_THREAD_ANNOTATIONS_H_
#define SKYUP_UTIL_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis attribute macros (abseil-style, SKYUP_
// prefixed). Under Clang these expand to the capability attributes the
// analysis consumes; every other compiler sees empty macros, so the
// annotated tree costs nothing and parses identically everywhere.
//
// The analysis itself is opt-in: configure with -DSKYUP_THREAD_SAFETY=ON
// under a Clang toolchain and -Wthread-safety/-Wthread-safety-beta run as
// errors over every translation unit. tests/tsa_fail/ holds compile-fail
// seeds proving the annotations bite (ctest label "static").
//
// Vocabulary (see docs/algorithms.md, "Static concurrency analysis"):
//   SKYUP_CAPABILITY("mutex")    a type whose instances are lockable
//   SKYUP_SCOPED_CAPABILITY      RAII type that acquires in its ctor
//   SKYUP_GUARDED_BY(mu)         data member readable/writable only
//                                while mu is held
//   SKYUP_PT_GUARDED_BY(mu)      as above, for the pointee of a pointer
//   SKYUP_REQUIRES(mu)           function precondition: caller holds mu
//   SKYUP_ACQUIRE / SKYUP_RELEASE  function acquires/releases mu itself
//   SKYUP_EXCLUDES(mu)           caller must NOT hold mu (anti-reentrancy)
//   SKYUP_ACQUIRED_BEFORE/AFTER  declared lock order; inversions are
//                                compile errors under -Wthread-safety-beta
//   SKYUP_NO_THREAD_SAFETY_ANALYSIS  per-function escape hatch; every use
//                                must carry a "// tsa: <why>" comment
//                                (lint-enforced, tools/lint.py)

#if defined(__clang__)
#define SKYUP_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SKYUP_THREAD_ANNOTATION__(x)
#endif

#define SKYUP_CAPABILITY(x) SKYUP_THREAD_ANNOTATION__(capability(x))

#define SKYUP_SCOPED_CAPABILITY SKYUP_THREAD_ANNOTATION__(scoped_lockable)

#define SKYUP_GUARDED_BY(x) SKYUP_THREAD_ANNOTATION__(guarded_by(x))

#define SKYUP_PT_GUARDED_BY(x) SKYUP_THREAD_ANNOTATION__(pt_guarded_by(x))

#define SKYUP_ACQUIRED_BEFORE(...) \
  SKYUP_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

#define SKYUP_ACQUIRED_AFTER(...) \
  SKYUP_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

#define SKYUP_REQUIRES(...) \
  SKYUP_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

#define SKYUP_REQUIRES_SHARED(...) \
  SKYUP_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

#define SKYUP_ACQUIRE(...) \
  SKYUP_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

#define SKYUP_ACQUIRE_SHARED(...) \
  SKYUP_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

#define SKYUP_RELEASE(...) \
  SKYUP_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

#define SKYUP_RELEASE_SHARED(...) \
  SKYUP_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

#define SKYUP_TRY_ACQUIRE(...) \
  SKYUP_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

#define SKYUP_EXCLUDES(...) SKYUP_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

#define SKYUP_ASSERT_CAPABILITY(x) \
  SKYUP_THREAD_ANNOTATION__(assert_capability(x))

#define SKYUP_RETURN_CAPABILITY(x) SKYUP_THREAD_ANNOTATION__(lock_returned(x))

#define SKYUP_NO_THREAD_SAFETY_ANALYSIS \
  SKYUP_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // SKYUP_UTIL_THREAD_ANNOTATIONS_H_
