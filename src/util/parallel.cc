#include "util/parallel.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "util/check.h"

namespace skyup {

size_t ResolveThreadCount(size_t requested, size_t items) {
  if (requested == 0) {
    requested = std::max(1u, std::thread::hardware_concurrency());
  }
  return std::max<size_t>(1, std::min(requested, items));
}

void ParallelFor(size_t items, size_t threads,
                 const std::function<void(size_t, size_t, size_t)>& body) {
  if (items == 0) return;
  threads = ResolveThreadCount(threads, items);
  // Balanced contiguous partition: shard s covers
  // [s*items/threads, (s+1)*items/threads), so shard sizes differ by at
  // most one and — because ResolveThreadCount caps threads at items —
  // every shard is non-empty. The previous ceil-division split handed
  // trailing shards zero items whenever threads did not divide items
  // (e.g. 5 items over 4 threads ran as 2/2/1/0).
  std::vector<std::thread> workers;
  workers.reserve(threads - 1);
  for (size_t s = 1; s < threads; ++s) {
    const size_t begin = s * items / threads;
    const size_t end = (s + 1) * items / threads;
    SKYUP_DCHECK(begin < end) << "empty shard " << s << " of " << threads
                              << " over " << items << " items";
    workers.emplace_back([&body, s, begin, end] { body(s, begin, end); });
  }
  body(0, 0, items / threads);
  for (std::thread& w : workers) w.join();
}

AtomicCostThreshold::AtomicCostThreshold()
    : threshold_(std::numeric_limits<double>::infinity()) {}

double AtomicCostThreshold::Get() const {
  // lint: relaxed-ok (stale larger bound only weakens pruning, header doc)
  return threshold_.load(std::memory_order_relaxed);
}

bool AtomicCostThreshold::RelaxTo(double value) {
  // A NaN bound would silently disable pruning forever (every comparison
  // below is false); surface it instead of converging to garbage.
  SKYUP_DCHECK(!std::isnan(value)) << "RelaxTo(NaN)";
  // lint: relaxed-ok (monotone CAS-min; no payload rides on the value)
  double current = threshold_.load(std::memory_order_relaxed);
  while (value < current) {
    // lint: relaxed-ok (same rationale as the load above)
    if (threshold_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

}  // namespace skyup
