#ifndef SKYUP_UTIL_STATS_H_
#define SKYUP_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace skyup {

/// Streaming univariate statistics (Welford's algorithm).
///
/// Used by the data generators' self-checks and by the benchmark harness to
/// summarize repeated timing runs.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Pearson correlation of two equal-length series; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// The q-quantile (0 <= q <= 1) by linear interpolation on a copy of `v`.
/// Returns 0 for an empty vector.
double Quantile(std::vector<double> v, double q);

}  // namespace skyup

#endif  // SKYUP_UTIL_STATS_H_
