#ifndef SKYUP_UTIL_TIMER_H_
#define SKYUP_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace skyup {

/// The one clock every timing facility in the library reads: `Timer`,
/// `ScopedTimer`, the trace spans (obs/trace.h), and the phase clocks
/// (obs/phase_timings.h). Monotonic by contract — wall-clock adjustments
/// (NTP slews, suspend/resume jumps) can never make an elapsed reading go
/// backwards or a span get a negative duration.
using SteadyClock = std::chrono::steady_clock;
static_assert(SteadyClock::is_steady,
              "skyup timing requires a monotonic clock; steady_clock must "
              "be steady on every conforming implementation");

/// Monotonic stopwatch with second/millisecond/microsecond readouts.
///
/// Starts running on construction; `Restart()` resets the origin.
class Timer {
 public:
  Timer() : start_(SteadyClock::now()) {}

  /// Resets the timer origin to now.
  void Restart() { start_ = SteadyClock::now(); }

  /// Elapsed time since construction or the last `Restart()`.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(SteadyClock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               SteadyClock::now() - start_)
        .count();
  }

 private:
  SteadyClock::time_point start_;
};

/// Adds the lifetime of the scope to `*sink` (seconds) on destruction, so
/// repeated passes through a region accumulate into one total:
///
///   double load_seconds = 0.0;
///   { ScopedTimer t(&load_seconds); LoadThings(); }
///
/// A null sink disables the timer entirely (no clock reads).
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {
    if (sink_ != nullptr) start_ = SteadyClock::now();
  }
  ~ScopedTimer() {
    if (sink_ != nullptr) {
      *sink_ +=
          std::chrono::duration<double>(SteadyClock::now() - start_).count();
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  SteadyClock::time_point start_;
};

}  // namespace skyup

#endif  // SKYUP_UTIL_TIMER_H_
