#ifndef SKYUP_UTIL_TIMER_H_
#define SKYUP_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace skyup {

/// Wall-clock stopwatch with millisecond/microsecond readouts.
///
/// Starts running on construction; `Restart()` resets the origin.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the timer origin to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last `Restart()`.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace skyup

#endif  // SKYUP_UTIL_TIMER_H_
