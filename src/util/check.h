#ifndef SKYUP_UTIL_CHECK_H_
#define SKYUP_UTIL_CHECK_H_

// The contract layer: every internal invariant of the library is asserted
// through the macros below, and how much of that checking is compiled in
// is a build-time decision.
//
// `SKYUP_CHECK_LEVEL` (a CMake option of the same name) selects one of
// three levels:
//
//   0  "off"       every macro compiles to nothing (conditions are
//                  type-checked but never evaluated). For benchmarking the
//                  raw algorithms only — argument validation vanishes too.
//   1  "cheap"     the default. `SKYUP_CHECK` is active; `SKYUP_DCHECK`
//                  follows NDEBUG (on in Debug, out in Release). Only O(1)
//                  conditions may sit behind these two on hot paths.
//   2  "paranoid"  everything is active, including `SKYUP_DCHECK` in
//                  Release builds and the `SKYUP_PARANOID*` hooks, which
//                  are allowed to be expensive: full structure validation
//                  (e.g. FlatRTree::Validate per traversal entry), skyline
//                  postconditions (mutual incomparability), cost-function
//                  monotonicity spot checks.
//
// Macro summary:
//   SKYUP_CHECK(cond) << "diag";      fatal if !cond      (level >= cheap)
//   SKYUP_DCHECK(cond) << "diag";     debug-only check    (see above)
//   SKYUP_PARANOID(cond) << "diag";   expensive check     (paranoid only)
//   SKYUP_CHECK_OK(status_expr);      fatal on non-OK     (level >= cheap)
//   SKYUP_PARANOID_OK(status_expr);   fatal on non-OK     (paranoid only)
//
// A failed check prints "[FATAL file:line] check failed: <cond> <diag>"
// to stderr and aborts: an invariant violation means results can no longer
// be trusted, so there is nothing sensible to return.

#include <sstream>
#include <string>

#include "util/status.h"

#ifndef SKYUP_CHECK_LEVEL
#define SKYUP_CHECK_LEVEL 1
#endif

#if SKYUP_CHECK_LEVEL < 0 || SKYUP_CHECK_LEVEL > 2
#error "SKYUP_CHECK_LEVEL must be 0 (off), 1 (cheap), or 2 (paranoid)"
#endif

namespace skyup {

/// The compiled-in check level of this translation unit: 0 off, 1 cheap,
/// 2 paranoid. (A constant, not a function, so tests can static_assert
/// against it.)
inline constexpr int kCheckLevel = SKYUP_CHECK_LEVEL;

/// Human-readable name of `kCheckLevel`.
constexpr const char* CheckLevelName() {
  return kCheckLevel == 0 ? "off" : kCheckLevel == 1 ? "cheap" : "paranoid";
}

namespace internal {

/// Accumulates the diagnostic of a failed check and aborts the process on
/// destruction. Not for direct use; see SKYUP_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Swallows streamed diagnostics of compiled-out checks; optimizes to
/// nothing (the guarding branch is `if (false && ...)`).
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace skyup

// A check that is compiled out: the condition stays in the (dead) branch
// so the expressions it names remain odr-used — no -Wunused warnings, no
// behavior differences in what must compile — but it is never evaluated.
#define SKYUP_INTERNAL_ELIDED_CHECK(condition) \
  if (false && (condition)) ::skyup::internal::NullStream()

#define SKYUP_INTERNAL_ACTIVE_CHECK(condition)                        \
  if (!(condition))                                                   \
  ::skyup::internal::FatalLogMessage(__FILE__, __LINE__, #condition)  \
      .stream()

/// Aborts with a diagnostic when `condition` is false. The workhorse
/// contract macro: active at level cheap and above, so it may only guard
/// O(1) conditions on hot paths.
#if SKYUP_CHECK_LEVEL >= 1
#define SKYUP_CHECK(condition) SKYUP_INTERNAL_ACTIVE_CHECK(condition)
#else
#define SKYUP_CHECK(condition) SKYUP_INTERNAL_ELIDED_CHECK(condition)
#endif

/// Debug-only check: compiled out in NDEBUG builds at level cheap, forced
/// on (even in Release) at level paranoid, always out at level off.
#if SKYUP_CHECK_LEVEL >= 2 || (SKYUP_CHECK_LEVEL >= 1 && !defined(NDEBUG))
#define SKYUP_DCHECK(condition) SKYUP_INTERNAL_ACTIVE_CHECK(condition)
#else
#define SKYUP_DCHECK(condition) SKYUP_INTERNAL_ELIDED_CHECK(condition)
#endif

/// Expensive invariant check, active only at level paranoid. The condition
/// may be super-constant work (full tree validation, O(n^2) skyline
/// postconditions); at lower levels it is not evaluated at all.
#if SKYUP_CHECK_LEVEL >= 2
#define SKYUP_PARANOID(condition) SKYUP_INTERNAL_ACTIVE_CHECK(condition)
#else
#define SKYUP_PARANOID(condition) SKYUP_INTERNAL_ELIDED_CHECK(condition)
#endif

// Status-returning validators (e.g. FlatRTree::Validate) plug in through
// these: the failure message is the validator's own diagnostic.
#if SKYUP_CHECK_LEVEL >= 1
#define SKYUP_CHECK_OK(expr)                                       \
  do {                                                             \
    const ::skyup::Status skyup_internal_status = (expr);          \
    SKYUP_CHECK(skyup_internal_status.ok())                        \
        << skyup_internal_status.ToString();                       \
  } while (false)
#else
#define SKYUP_CHECK_OK(expr)                       \
  do {                                             \
    if (false) static_cast<void>(expr);            \
  } while (false)
#endif

#if SKYUP_CHECK_LEVEL >= 2
#define SKYUP_PARANOID_OK(expr)                                    \
  do {                                                             \
    const ::skyup::Status skyup_internal_status = (expr);          \
    SKYUP_PARANOID(skyup_internal_status.ok())                     \
        << skyup_internal_status.ToString();                       \
  } while (false)
#else
#define SKYUP_PARANOID_OK(expr)                    \
  do {                                             \
    if (false) static_cast<void>(expr);            \
  } while (false)
#endif

#endif  // SKYUP_UTIL_CHECK_H_
