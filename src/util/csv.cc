#include "util/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace skyup {

namespace {

std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  for (char ch : line) {
    if (ch == ',') {
      fields.push_back(field);
      field.clear();
    } else if (ch != '\r') {
      field.push_back(ch);
    }
  }
  fields.push_back(field);
  return fields;
}

Status ParseDouble(const std::string& field, size_t line_no, double* out) {
  const char* begin = field.c_str();
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(begin, &end);
  if (end == begin || errno == ERANGE) {
    return Status::InvalidArgument("line " + std::to_string(line_no) +
                                   ": cannot parse field '" + field +
                                   "' as a number");
  }
  // Trailing whitespace is fine; any other trailing junk is an error.
  for (; *end != '\0'; ++end) {
    if (*end != ' ' && *end != '\t') {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": trailing characters in field '" +
                                     field + "'");
    }
  }
  *out = v;
  return Status::OK();
}

}  // namespace

Result<CsvTable> ParseCsv(const std::string& text, bool has_header) {
  CsvTable table;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  size_t arity = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line == "\r") continue;
    std::vector<std::string> fields = SplitFields(line);
    if (has_header && !saw_header) {
      table.header = std::move(fields);
      arity = table.header.size();
      saw_header = true;
      continue;
    }
    if (arity == 0) arity = fields.size();
    if (fields.size() != arity) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": expected " +
          std::to_string(arity) + " fields, got " +
          std::to_string(fields.size()));
    }
    std::vector<double> row(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      SKYUP_RETURN_IF_ERROR(ParseDouble(fields[i], line_no, &row[i]));
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path, bool has_header) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str(), has_header);
}

std::string ToCsv(const CsvTable& table) {
  std::ostringstream out;
  out.precision(6);
  if (!table.header.empty()) {
    for (size_t i = 0; i < table.header.size(); ++i) {
      if (i > 0) out << ',';
      out << table.header[i];
    }
    out << '\n';
  }
  for (const auto& row : table.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << row[i];
    }
    out << '\n';
  }
  return out.str();
}

Status WriteCsvFile(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << ToCsv(table);
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace skyup
