#ifndef SKYUP_SERVE_LIVE_TABLE_H_
#define SKYUP_SERVE_LIVE_TABLE_H_

// The mutable heart of the serving layer: current snapshot + delta logs +
// stable-id allocation, with the freeze/merge/publish protocol the
// rebuilder drives.
//
// Concurrency model: one mutex guards all mutable state (snapshot pointer,
// frozen/active logs, id counters, live-id sets). Updates and view capture
// are short critical sections; queries run entirely outside the lock
// against their captured `ReadView`; the rebuild merge runs outside the
// lock against frozen data. Old snapshots are reclaimed by shared_ptr when
// the last in-flight view drops. The discipline is machine-checked: every
// guarded member carries SKYUP_GUARDED_BY(mu_) and `mu_` sits in the
// kTable band of the global lock order (util/lock_order.h), above the
// substructure locks (delta log, caches, memo shards) it nests.

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "rtree/rtree.h"
#include "serve/delta_log.h"
#include "serve/snapshot.h"
#include "util/lock_order.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace skyup {

class UpgradeCache;
class SkylineMemo;

struct LiveTableOptions {
  size_t dims = 0;  ///< required, >= 1
  /// Fanout of the per-snapshot STR bulk load.
  size_t rtree_fanout = 64;
  /// Byte budget of the epoch-scoped skyline memo cache
  /// (serve/skyline_memo.h) handed to every view; 0 disables memoization.
  size_t memo_cache_bytes = 0;
  /// When false the table keeps no upgrade-result cache and views carry a
  /// null `cache` handle. ShardedTable turns this off for its shards: a
  /// shard-local cache would hold shard-local dominator sets (unsound to
  /// serve as global results), so the sharded tier feeds one global cache
  /// from the routed op stream instead (serve/shard/sharded_table.h).
  bool upgrade_cache = true;
};

class LiveTable {
 public:
  /// Starts empty at epoch 1 (an empty snapshot is published immediately,
  /// so `AcquireView` never returns a null snapshot).
  static Result<std::unique_ptr<LiveTable>> Create(LiveTableOptions options);

  LiveTable(const LiveTable&) = delete;
  LiveTable& operator=(const LiveTable&) = delete;

  /// Accepted updates return the new row's stable id; erases of unknown or
  /// already-erased ids return `kNotFound`, arity mismatches
  /// `kInvalidArgument`. Every accepted update is in the delta log (and
  /// visible to subsequently captured views) before the call returns.
  Result<uint64_t> InsertCompetitor(const std::vector<double>& coords);
  Result<uint64_t> InsertProduct(const std::vector<double>& coords);
  Status EraseCompetitor(uint64_t id);
  Status EraseProduct(uint64_t id);

  /// Insert with a caller-chosen stable id — the sharded table allocates
  /// ids globally (in op order, across shards) and routes each row to one
  /// shard, so per-shard counters cannot be the id authority. The id must
  /// be unique within this table (the caller's routing map guarantees it);
  /// the local counter advances past it so the auto-allocating inserts
  /// above stay collision-free if mixed.
  Result<uint64_t> InsertCompetitorWithId(uint64_t id,
                                          const std::vector<double>& coords);
  Result<uint64_t> InsertProductWithId(uint64_t id,
                                       const std::vector<double>& coords);

  /// Captures a consistent point-in-time view: the current snapshot plus
  /// every delta accepted so far. The view (and the epoch it pins) stays
  /// valid until dropped, across any number of later publishes.
  ReadView AcquireView() const;

  /// Write-ahead hook on the *active* log (serve/delta_log.h). Install
  /// before concurrent use.
  void SetAppendHook(DeltaLog::AppendHook hook);

  uint64_t epoch() const;
  /// Delta ops not yet absorbed by a published snapshot (frozen + active).
  size_t delta_backlog() const;
  /// Seconds since the current snapshot was built.
  double snapshot_age_seconds() const;
  size_t live_competitor_count() const;
  size_t live_product_count() const;
  size_t dims() const { return options_.dims; }

  /// One consistent health snapshot for the flight recorder's periodic
  /// system samples — everything the individual accessors above report,
  /// plus the snapshot index's tombstone fraction and the skyline memo's
  /// footprint, all read under ONE lock acquisition so the fields
  /// describe the same instant.
  struct Diagnostics {
    uint64_t epoch = 0;
    double snapshot_age_seconds = 0;
    uint64_t delta_backlog = 0;
    double tombstone_pct = 0;  ///< dead fraction of indexed slots, in %
    uint64_t memo_bytes = 0;   ///< 0 when memoization is disabled
    uint64_t live_competitors = 0;
    uint64_t live_products = 0;
  };
  Diagnostics SampleDiagnostics() const;

  /// One rebuild cycle's input, captured by `BeginRebuild`.
  struct RebuildJob {
    std::shared_ptr<const Snapshot> base;
    std::vector<DeltaOp> ops;  ///< everything frozen for this rebuild
    uint64_t next_epoch = 0;
  };

  /// Freezes the active log into the frozen log and hands back a merge
  /// job, or nullopt when a rebuild is already in flight or there is
  /// nothing to absorb. While the job is outstanding, new updates keep
  /// accumulating in the (reset) active log and remain query-visible via
  /// `AcquireView`. `allow_empty` offers a job even with no pending ops —
  /// the sharded table bumps every shard's epoch in lock-step, including
  /// shards that saw no traffic this cycle.
  std::optional<RebuildJob> BeginRebuild(bool allow_empty = false);

  /// Publishes the merged snapshot and drops the frozen ops it absorbed.
  /// `snapshot` must be the merge of the outstanding job.
  void CompleteRebuild(std::shared_ptr<const Snapshot> snapshot);

  /// Abandons the outstanding job (merge failed); the frozen ops stay
  /// pending and the next `BeginRebuild` re-offers them.
  void AbandonRebuild();

  const RTreeOptions& index_options() const { return index_options_; }

 private:
  explicit LiveTable(LiveTableOptions options);

  /// `forced_id` 0 = allocate from the local counter.
  Result<uint64_t> Insert(DeltaTarget target,
                          const std::vector<double>& coords,
                          uint64_t forced_id);
  Status Erase(DeltaTarget target, uint64_t id);

  LiveTableOptions options_;
  RTreeOptions index_options_;

  mutable Mutex mu_ SKYUP_ACQUIRED_AFTER(lock_order::kTable)
      SKYUP_ACQUIRED_BEFORE(lock_order::kTableSub);
  std::shared_ptr<const Snapshot> snapshot_ SKYUP_GUARDED_BY(mu_);
  /// Ops offered to the in-flight rebuild.
  std::vector<DeltaOp> frozen_ SKYUP_GUARDED_BY(mu_);
  /// The active log has its own internal lock, but every access (append,
  /// freeze, view copy, hook install) happens under `mu_` — that external
  /// serialization is what DeltaLog::Append's write-ahead contract relies
  /// on, so the member is guarded too.
  DeltaLog active_ SKYUP_GUARDED_BY(mu_);
  bool rebuild_in_flight_ SKYUP_GUARDED_BY(mu_) = false;
  uint64_t next_competitor_id_ SKYUP_GUARDED_BY(mu_) = 1;
  uint64_t next_product_id_ SKYUP_GUARDED_BY(mu_) = 1;
  std::unordered_set<uint64_t> live_competitors_ SKYUP_GUARDED_BY(mu_);
  std::unordered_set<uint64_t> live_products_ SKYUP_GUARDED_BY(mu_);
  /// Shared upgrade-result cache, fed every accepted op under `mu_` and
  /// handed to every view (serve/upgrade_cache.h has the soundness story).
  std::shared_ptr<UpgradeCache> cache_ SKYUP_GUARDED_BY(mu_);
  /// Shared epoch-scoped skyline memo; dropped wholesale on every publish
  /// under `mu_`. Null when `memo_cache_bytes == 0`.
  std::shared_ptr<SkylineMemo> memo_ SKYUP_GUARDED_BY(mu_);
};

}  // namespace skyup

#endif  // SKYUP_SERVE_LIVE_TABLE_H_
