#ifndef SKYUP_SERVE_SHARD_REGISTRY_H_
#define SKYUP_SERVE_SHARD_REGISTRY_H_

// Multi-tenant registry for the network front door: named P/T dataset
// pairs, each backed by its own `Server` (own snapshots, own delta log,
// own admission queue — tenants share nothing but the process).
//
// Tenant model:
//   - A tenant is created explicitly (`create` on the wire) with its
//     own dims, shard count, and admission quota; the registry stamps a
//     numeric tenant id (1-based, creation order) into the tenant's
//     `ServerOptions::tenant_id`, so flight records and slow-query logs
//     attribute work to the tenant that caused it.
//   - The per-tenant admission quota is `ServerOptions::max_pending`:
//     one tenant saturating its queue gets `ResourceExhausted` on its
//     own connections while other tenants' queues stay unaffected.
//   - Base options (rebuild policy, batching, memo budget, flight
//     recorder flags) come from the registry-wide template supplied at
//     construction; per-tenant create parameters override dims/shards/
//     quota only.
//
// The registry mutex sits in the `kFrontDoor` band — the outermost rank
// in the process — because tenant creation constructs a full Server
// (which starts threads and takes serving-stack locks) while the map is
// held against a racing create of the same name.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/server.h"
#include "util/lock_order.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace skyup {

class TenantRegistry {
 public:
  /// `base` is the options template every tenant inherits; its dims /
  /// shards / tenant_id fields are overridden per create.
  explicit TenantRegistry(ServerOptions base) : base_(std::move(base)) {}

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Creates tenant `name` with its own server. `shards == 0` keeps the
  /// tenant on the single-table path; `quota == 0` inherits the base
  /// `max_pending`. Fails with kFailedPrecondition if the name exists
  /// and kInvalidArgument on a malformed name or dims.
  Result<std::shared_ptr<Server>> Create(const std::string& name, size_t dims,
                                         size_t shards, size_t quota);

  /// The tenant's server, or kNotFound. The returned shared_ptr keeps
  /// the server alive across concurrent erase/shutdown, so handlers
  /// never hold the registry lock while serving.
  Result<std::shared_ptr<Server>> Find(const std::string& name) const;

  /// Tenant names in lexicographic order.
  std::vector<std::string> Names() const;

  size_t size() const;

 private:
  const ServerOptions base_;
  mutable Mutex mu_ SKYUP_ACQUIRED_AFTER(lock_order::kFrontDoor)
      SKYUP_ACQUIRED_BEFORE(lock_order::kServerQueue);
  std::map<std::string, std::shared_ptr<Server>> tenants_
      SKYUP_GUARDED_BY(mu_);
  uint64_t next_tenant_id_ SKYUP_GUARDED_BY(mu_) = 0;
};

}  // namespace skyup

#endif  // SKYUP_SERVE_SHARD_REGISTRY_H_
