#ifndef SKYUP_SERVE_SHARD_SHARDED_TABLE_H_
#define SKYUP_SERVE_SHARD_SHARDED_TABLE_H_

// Shard-per-core live state: N independent `LiveTable` shards (each with
// its own delta log, rebuilder input, and skyline memo) behind one id
// space, one spatial router, one cross-shard epoch, and one *global*
// upgrade-result cache.
//
// Invariants this file owns:
//
//   * Global stable ids. Ids are allocated here, in op order, from one
//     pair of counters (competitors and products each count from 1) —
//     exactly the id sequence a single-table server would hand out, which
//     is what keeps `--shards N` replays byte-identical to `--shards 1`.
//     A routing map remembers each id's shard so erases find their row.
//
//   * One epoch across all shards. Publishes are *cycles*: every shard is
//     frozen (two-phase: freeze all, merge all outside the locks, then
//     install all), and the install happens under the writer side of
//     `epoch_mu_` while `AcquireViews` captures all shard views under the
//     reader side — so every query sees either all-old or all-new, never
//     a mix, and per-shard epochs never diverge (idle shards publish an
//     O(rows) identity patch to keep step).
//
//   * Deterministic publish instants. The inline trigger fires on the
//     *total* backlog across shards — the same op count a single table
//     would have accumulated — so cycle boundaries in `--replay` are a
//     pure function of the op stream, independent of shard count.
//
//   * One upgrade cache, global dominators. A shard's own UpgradeCache
//     would hold outcomes derived from shard-local dominator sets —
//     unsound to serve as global answers — so per-shard caches are
//     disabled (LiveTableOptions::upgrade_cache) and this table feeds a
//     single cache with the routed op stream instead, under `route_mu_`
//     in id-allocation order, *before* the op reaches its shard. An
//     entry therefore survives only ops that provably leave its global
//     dominator skyline unchanged; the per-op proofs are against the
//     entry's stored value set, so they hold for any subset of the
//     surviving ops a capture may have seen (serve/upgrade_cache.h).
//     `AcquireViews` stamps the cache clock before touching any shard,
//     which makes `Store`'s no-op-landed check imply the views were
//     captured at exactly the stamped version.
//
// The scatter-gather query engine over the captured views lives in
// serve/shard/shard_query.h.

#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/live_table.h"
#include "serve/rebuilder.h"
#include "serve/shard/partitioner.h"
#include "util/lock_order.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace skyup {

struct ShardedTableOptions {
  size_t dims = 0;    ///< required, >= 1
  size_t shards = 1;  ///< required, >= 1
  size_t rtree_fanout = 64;
  /// Per-shard memo budget; the total across shards matches what the
  /// caller would have given a single table.
  size_t memo_cache_bytes = 0;
  /// Competitor inserts routed to shard 0 before the STR tiles are fitted
  /// (serve/shard/partitioner.h).
  size_t partition_fit_after = 256;
};

/// All shard views of one epoch, captured atomically with respect to
/// publish cycles.
struct ShardedView {
  std::vector<ReadView> views;  ///< views[s] is shard s
  uint64_t epoch = 0;           ///< common epoch of every view
  /// The table's global upgrade-result cache (per-shard `views[s].cache`
  /// handles are null) and its validity clock at capture. Same contract
  /// as ReadView::version/cache, but over the cross-shard op stream.
  uint64_t version = 0;
  std::shared_ptr<UpgradeCache> cache;
};

class ShardedTable {
 public:
  static Result<std::unique_ptr<ShardedTable>> Create(
      ShardedTableOptions options);
  ~ShardedTable();

  ShardedTable(const ShardedTable&) = delete;
  ShardedTable& operator=(const ShardedTable&) = delete;

  /// Update API, same contract as LiveTable: global stable ids in op
  /// order, `kNotFound` for dead ids, `kInvalidArgument` for arity.
  Result<uint64_t> InsertCompetitor(const std::vector<double>& coords);
  Result<uint64_t> InsertProduct(const std::vector<double>& coords);
  Status EraseCompetitor(uint64_t id);
  Status EraseProduct(uint64_t id);

  /// Captures one consistent view of every shard: all at the same epoch
  /// (publish installs are excluded for the duration of the capture).
  ShardedView AcquireViews() const;

  /// Deterministic-mode publish check: one cycle when the total backlog
  /// reaches `policy.threshold_ops`. Returns the number of shard
  /// publishes performed (0 = below threshold).
  Result<size_t> MaybePublishInline(const RebuildPolicy& policy);

  /// Background coordination (the sharded analogue of `Rebuilder`):
  /// Start/Stop are externally serialized; Nudge wakes the loop early.
  void Start(const RebuildPolicy& policy);
  void Stop();
  void Nudge();

  /// Common epoch of all shards.
  uint64_t epoch() const;
  /// Total delta ops not yet absorbed, across shards.
  size_t delta_backlog() const;
  /// Aggregated health sample: epoch/age from shard 0 (all shards publish
  /// together), sums for backlog/memo/live counts, max tombstone ratio.
  LiveTable::Diagnostics SampleDiagnostics() const;

  /// Shard publishes by kind, summed over cycles (one cycle publishes
  /// every shard).
  uint64_t rebuilds_published() const;
  uint64_t patches_published() const;
  uint64_t publish_cycles() const;
  Status last_error() const;

  size_t shards() const { return tables_.size(); }
  size_t dims() const { return options_.dims; }
  LiveTable& shard(size_t s) { return *tables_[s]; }
  static const char* partitioner_kind() { return ShardPartitioner::kind(); }

 private:
  explicit ShardedTable(ShardedTableOptions options);

  Result<size_t> PublishCycle(const RebuildPolicy& policy)
      SKYUP_REQUIRES(coord_mu_);
  bool ShouldPublish(const RebuildPolicy& policy) const;
  void Loop() SKYUP_EXCLUDES(coord_mu_);

  ShardedTableOptions options_;
  std::vector<std::unique_ptr<LiveTable>> tables_;

  /// The global upgrade-result cache (see the class comment). Set once in
  /// Create and never reseated; the cache is internally synchronized, so
  /// only the *feed order* needs `route_mu_` (OnDeltaOp is called while
  /// it is held).
  std::shared_ptr<UpgradeCache> cache_;

  /// Id allocation + spatial routing. kShardTable band: held while the
  /// target shard's kTable lock is taken inside the insert, never
  /// together with `epoch_mu_`.
  mutable Mutex route_mu_ SKYUP_ACQUIRED_AFTER(lock_order::kShardTable)
      SKYUP_ACQUIRED_BEFORE(lock_order::kTable);
  std::unique_ptr<ShardPartitioner> partitioner_ SKYUP_GUARDED_BY(route_mu_);
  uint64_t next_competitor_id_ SKYUP_GUARDED_BY(route_mu_) = 1;
  uint64_t next_product_id_ SKYUP_GUARDED_BY(route_mu_) = 1;
  std::unordered_map<uint64_t, uint32_t> competitor_shard_
      SKYUP_GUARDED_BY(route_mu_);
  std::unordered_map<uint64_t, uint32_t> product_shard_
      SKYUP_GUARDED_BY(route_mu_);

  /// The cross-shard epoch fence: readers capture all views under the
  /// shared side, a publish cycle installs all shards under the exclusive
  /// side. Same band as `route_mu_` (mutually non-nesting).
  // A fence, not a data guard: the shard state it orders lives behind
  // each LiveTable's own mutex.
  // lint: guarded-by-ok (excludes publish installs during AcquireViews)
  mutable SharedMutex epoch_mu_ SKYUP_ACQUIRED_AFTER(lock_order::kShardTable)
      SKYUP_ACQUIRED_BEFORE(lock_order::kTable);

  /// Publish-cycle serialization + coordinator handshake + counters. Sits
  /// above the kShardTable band: a cycle holds it across freeze, merge,
  /// and install (which takes `epoch_mu_` and every shard's table lock).
  mutable Mutex coord_mu_ SKYUP_ACQUIRED_AFTER(lock_order::kRebuilder)
      SKYUP_ACQUIRED_BEFORE(lock_order::kShardTable);
  CondVar coord_cv_;
  bool running_ SKYUP_GUARDED_BY(coord_mu_) = false;
  bool stop_ SKYUP_GUARDED_BY(coord_mu_) = false;
  /// Written by Start() before the loop thread exists, read-only after —
  /// same publication discipline as Rebuilder's policy; no guard.
  RebuildPolicy policy_;
  uint64_t majors_ SKYUP_GUARDED_BY(coord_mu_) = 0;
  uint64_t patches_ SKYUP_GUARDED_BY(coord_mu_) = 0;
  uint64_t cycles_ SKYUP_GUARDED_BY(coord_mu_) = 0;
  Status last_error_ SKYUP_GUARDED_BY(coord_mu_);
  /// Start/Stop are externally serialized (class contract), no guard.
  std::thread coord_thread_;
};

}  // namespace skyup

#endif  // SKYUP_SERVE_SHARD_SHARDED_TABLE_H_
