#ifndef SKYUP_SERVE_SHARD_WIRE_H_
#define SKYUP_SERVE_SHARD_WIRE_H_

// The front-door wire protocol: length-prefixed text frames over TCP.
//
// Framing: every message — request or response — is one frame:
//
//   <decimal payload length>\n<payload bytes>
//
// The length header is plain ASCII digits (no sign, no padding) so the
// protocol can be driven by hand (`printf '4\nping' | nc`), and the
// explicit length means payloads may contain newlines: multi-row
// commands (`load`) and multi-row responses (`topk`, `stats`) are one
// frame each, not a line-oriented dribble.
//
// Requests (first payload line, space-separated tokens):
//
//   ping
//   create <tenant> dims=<D> [shards=<N>] [quota=<Q>]
//   load <tenant>            (+ one line per row: "p,<v1>,..." / "t,...")
//   add <tenant> <p|t> <v1> <v2> ...
//   erase <tenant> <p|t> <id>
//   topk <tenant> <k> [timeout=<seconds>]
//   stats <tenant>
//   shutdown
//
// Responses: `+ok` (optionally followed by `key=value` tokens and body
// lines) on success, `-err <StatusCodeName> <message>` on failure. The
// code name round-trips through `StatusCodeName`, so a client recovers
// the same `StatusCode` the remote handler produced (admission
// rejections stay `ResourceExhausted` across the wire).
//
// Coordinates are formatted with enough digits (%.17g) that a double
// survives the text round trip bit-exactly — a workload driven through
// the wire sees the same values an in-process caller would.
//
// This header also provides `WireLoadTarget`, the remote backend for the
// closed-loop load generator (`serve --load-gen --connect HOST:PORT`):
// each client thread dials its own connection and speaks the protocol
// above against one named tenant.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "serve/load_gen.h"
#include "util/status.h"

namespace skyup {

/// Hard cap on a single frame's payload (requests and responses alike);
/// oversized frames fail the read instead of buffering without bound.
inline constexpr size_t kWireMaxFrameBytes = 8u << 20;

/// Writes one `<len>\n<payload>` frame to `fd`. Retries short writes;
/// fails with kIOError on a closed peer.
Status WireWriteFrame(int fd, const std::string& payload);

/// Reads one frame from `fd`. `eof_ok` distinguishes a clean peer close
/// before any header byte (returns kCancelled) from a mid-frame close
/// (always kIOError).
Result<std::string> WireReadFrame(int fd, bool eof_ok = false);

/// Formats a space-separated coordinate token list for `add`, with
/// round-trip-exact doubles (`load` rows are the same values joined with
/// commas behind a `p,`/`t,` tag instead).
std::string WireFormatCoords(const std::vector<double>& coords);

/// One blocking client connection. Not thread-safe: the protocol is
/// strict request/response, so callers wanting concurrency dial one
/// client per thread (exactly what `WireLoadTarget` does).
class WireClient {
 public:
  /// Dials `host:port` (numeric or resolvable host).
  static Result<WireClient> Dial(const std::string& host, uint16_t port);
  ~WireClient();

  WireClient(WireClient&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  WireClient& operator=(WireClient&& other) noexcept;
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// One round trip: sends `request` as a frame, returns the raw
  /// response payload (including the `+ok` / `-err` first line).
  Result<std::string> Call(const std::string& request);

  /// Typed helpers over Call(); `-err` responses come back as the
  /// original Status (code recovered from the wire code name).
  Status Ping();
  /// Creates (or, when `attach_existing`, attaches to an already created)
  /// tenant; returns its numeric tenant id.
  Result<uint64_t> CreateTenant(const std::string& tenant, size_t dims,
                                size_t shards, size_t quota,
                                bool attach_existing = false);
  Result<uint64_t> Insert(const std::string& tenant, bool competitor,
                          const std::vector<double>& coords);
  Status Erase(const std::string& tenant, bool competitor, uint64_t id);
  /// Runs a top-k query, discarding the result rows (the load generator
  /// measures status and latency; correctness is the fuzzer's job).
  Status TopK(const std::string& tenant, size_t k, double timeout_seconds);
  /// The remote tenant's stats as ordered key=value pairs.
  Result<std::vector<std::pair<std::string, std::string>>> Stats(
      const std::string& tenant);
  /// Asks the remote front door to stop accepting and shut down.
  Status Shutdown();

 private:
  explicit WireClient(int fd) : fd_(fd) {}

  int fd_ = -1;
};

/// The load generator's remote backend: one control connection for the
/// backlog probes plus one fresh connection per client thread, all
/// against the named tenant (created on the remote side first — see
/// WireClient::CreateTenant).
class WireLoadTarget : public LoadTarget {
 public:
  static Result<std::unique_ptr<WireLoadTarget>> Create(
      const std::string& host, uint16_t port, const std::string& tenant);

  Result<std::unique_ptr<LoadConnection>> Connect(size_t client) override;
  Result<uint64_t> DeltaBacklog() override;
  Result<uint64_t> RebuildThresholdOps() override;

 private:
  WireLoadTarget(std::string host, uint16_t port, std::string tenant,
                 WireClient control)
      : host_(std::move(host)),
        port_(port),
        tenant_(std::move(tenant)),
        control_(std::move(control)) {}

  Result<uint64_t> StatU64(const std::string& key);

  std::string host_;
  uint16_t port_;
  std::string tenant_;
  WireClient control_;
};

}  // namespace skyup

#endif  // SKYUP_SERVE_SHARD_WIRE_H_
