#ifndef SKYUP_SERVE_SHARD_FRONT_DOOR_H_
#define SKYUP_SERVE_SHARD_FRONT_DOOR_H_

// The multi-tenant network front door: a TCP listener speaking the
// length-prefixed text protocol of serve/shard/wire.h, dispatching each
// request through a command table onto the tenant registry.
//
// Connection model: one accept thread plus one thread per connection.
// The protocol is strict request/response per connection, so a
// connection thread is a plain loop — read frame, handle, write frame —
// with no cross-connection state beyond the registry. A `shutdown`
// command (or `Stop()`) closes the listener and every live connection,
// then joins all threads; `WaitForShutdown()` lets `serve --listen`
// block until either arrives.
//
// Command table (see wire.h for exact request/response grammar):
//
//   ping       liveness probe
//   create     register a tenant (dims, shard count, admission quota)
//   load       bulk rows into a tenant ("p,..."/"t,..." lines)
//   add        one competitor/product row -> stable id
//   erase      erase by stable id
//   topk       top-k upgrade query through the tenant's worker pool
//   stats      tenant counters as key=value lines
//   shutdown   stop the front door
//
// Every data command names its tenant, so one connection may interleave
// tenants and an idle tenant costs nothing.

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/shard/registry.h"
#include "util/lock_order.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace skyup {

struct FrontDoorOptions {
  /// TCP port to listen on (loopback only); 0 = ephemeral, read the
  /// chosen port back via `port()`.
  uint16_t port = 0;
  /// Options template every tenant inherits (rebuild policy, batching,
  /// memo budget, observability); `create` overrides dims/shards/quota.
  ServerOptions tenant_base;
};

class FrontDoor {
 public:
  /// Binds, listens, and starts the accept thread.
  static Result<std::unique_ptr<FrontDoor>> Start(FrontDoorOptions options);
  ~FrontDoor();

  FrontDoor(const FrontDoor&) = delete;
  FrontDoor& operator=(const FrontDoor&) = delete;

  /// The bound port (the ephemeral choice when options.port was 0).
  uint16_t port() const { return port_; }

  TenantRegistry& registry() { return registry_; }

  /// Blocks until a `shutdown` command arrives or `Stop()` is called.
  void WaitForShutdown();

  /// Closes the listener and all live connections, joins every thread.
  /// Idempotent; the destructor calls it.
  void Stop();

 private:
  explicit FrontDoor(FrontDoorOptions options)
      : options_(options), registry_(options.tenant_base) {}

  void AcceptLoop();
  void ServeConnection(int fd);
  /// Executes one request payload; returns the response payload and sets
  /// `*shutdown` when the command was `shutdown`.
  std::string HandleRequest(const std::string& request, bool* shutdown);

  const FrontDoorOptions options_;
  TenantRegistry registry_;
  int listen_fd_ = -1;   ///< written once in Start, closed in Stop
  uint16_t port_ = 0;    ///< written once in Start
  std::thread accept_thread_;

  Mutex mu_ SKYUP_ACQUIRED_AFTER(lock_order::kFrontDoor)
      SKYUP_ACQUIRED_BEFORE(lock_order::kServerQueue);
  CondVar cv_;
  bool stopping_ SKYUP_GUARDED_BY(mu_) = false;
  bool shutdown_requested_ SKYUP_GUARDED_BY(mu_) = false;
  /// Live connection sockets, so Stop can unblock their reads.
  std::vector<int> live_fds_ SKYUP_GUARDED_BY(mu_);
  /// Connection threads; finished threads stay joinable here until Stop.
  std::vector<std::thread> conn_threads_ SKYUP_GUARDED_BY(mu_);
};

}  // namespace skyup

#endif  // SKYUP_SERVE_SHARD_FRONT_DOOR_H_
