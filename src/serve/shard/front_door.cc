#include "serve/shard/front_door.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <utility>

#include "serve/shard/wire.h"

namespace skyup {
namespace {

std::string Num17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Status ParseU64(const std::string& field, uint64_t* out) {
  if (field.empty()) return Status::InvalidArgument("empty integer field");
  uint64_t value = 0;
  for (char c : field) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad integer field '" + field + "'");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return Status::OK();
}

Status ParseF64(const std::string& field, double* out) {
  char* end = nullptr;
  *out = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad numeric field '" + field + "'");
  }
  return Status::OK();
}

std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> tokens;
  size_t at = 0;
  while (at < line.size()) {
    while (at < line.size() && line[at] == ' ') ++at;
    size_t end = at;
    while (end < line.size() && line[end] != ' ') ++end;
    if (end > at) tokens.push_back(line.substr(at, end - at));
    at = end;
  }
  return tokens;
}

std::vector<std::string> SplitCommas(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  for (;;) {
    const size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

// `-err <Code> <message>`; newlines in the message would break the
// response's line structure, so they flatten to spaces.
std::string ErrResponse(const Status& status) {
  std::string message = status.message();
  for (char& c : message) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  std::string out = "-err ";
  out += StatusCodeName(status.code());
  out += ' ';
  out += message;
  return out;
}

// Looks up `key=` among option-style tokens (tokens[from..]); missing
// keys return `fallback`, malformed values an error.
Result<uint64_t> OptionU64(const std::vector<std::string>& tokens, size_t from,
                           const std::string& key, uint64_t fallback) {
  const std::string prefix = key + "=";
  for (size_t i = from; i < tokens.size(); ++i) {
    if (tokens[i].rfind(prefix, 0) == 0) {
      uint64_t value = 0;
      Status st = ParseU64(tokens[i].substr(prefix.size()), &value);
      if (!st.ok()) return st;
      return value;
    }
  }
  return fallback;
}

}  // namespace

Result<std::unique_ptr<FrontDoor>> FrontDoor::Start(FrontDoorOptions options) {
  std::unique_ptr<FrontDoor> door(new FrontDoor(options));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  // Loopback only: the front door is a bench/CI harness, not an
  // internet-facing daemon.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int bind_errno = errno;
    ::close(fd);
    return Status::IOError("bind port " + std::to_string(options.port) +
                           ": " + std::strerror(bind_errno));
  }
  if (::listen(fd, 128) != 0) {
    const int listen_errno = errno;
    ::close(fd);
    return Status::IOError(std::string("listen: ") +
                           std::strerror(listen_errno));
  }
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) != 0) {
    const int name_errno = errno;
    ::close(fd);
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(name_errno));
  }
  door->listen_fd_ = fd;
  door->port_ = ntohs(bound.sin_port);
  door->accept_thread_ = std::thread(&FrontDoor::AcceptLoop, door.get());
  return door;
}

FrontDoor::~FrontDoor() { Stop(); }

void FrontDoor::WaitForShutdown() {
  MutexLock lock(mu_);
  while (!shutdown_requested_ && !stopping_) cv_.wait(mu_);
}

void FrontDoor::Stop() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
    cv_.notify_all();
    // Unblock every connection read; the connection thread itself still
    // owns the close (exactly-once), so this is shutdown(), not close().
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    MutexLock lock(mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void FrontDoor::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (Stop) or fatal — either way, done
    }
    MutexLock lock(mu_);
    if (stopping_) {
      ::close(fd);
      continue;
    }
    live_fds_.push_back(fd);
    conn_threads_.emplace_back(&FrontDoor::ServeConnection, this, fd);
  }
}

void FrontDoor::ServeConnection(int fd) {
  for (;;) {
    Result<std::string> request = WireReadFrame(fd, /*eof_ok=*/true);
    if (!request.ok()) break;  // clean peer close, Stop, or a broken frame
    bool shutdown = false;
    const std::string response = HandleRequest(*request, &shutdown);
    if (!WireWriteFrame(fd, response).ok()) break;
    if (shutdown) {
      MutexLock lock(mu_);
      shutdown_requested_ = true;
      cv_.notify_all();
    }
  }
  MutexLock lock(mu_);
  for (size_t i = 0; i < live_fds_.size(); ++i) {
    if (live_fds_[i] == fd) {
      live_fds_[i] = live_fds_.back();
      live_fds_.pop_back();
      break;
    }
  }
  ::close(fd);
}

std::string FrontDoor::HandleRequest(const std::string& request,
                                     bool* shutdown) {
  const size_t nl = request.find('\n');
  const std::string first =
      nl == std::string::npos ? request : request.substr(0, nl);
  const std::vector<std::string> tokens = SplitTokens(first);
  if (tokens.empty()) {
    return ErrResponse(Status::InvalidArgument("empty command"));
  }
  const std::string& cmd = tokens[0];

  if (cmd == "ping") return "+ok pong";

  if (cmd == "shutdown") {
    *shutdown = true;
    return "+ok bye";
  }

  if (cmd == "create") {
    if (tokens.size() < 3) {
      return ErrResponse(Status::InvalidArgument(
          "usage: create <tenant> dims=<D> [shards=<N>] [quota=<Q>]"));
    }
    Result<uint64_t> dims = OptionU64(tokens, 2, "dims", 0);
    Result<uint64_t> shards = OptionU64(tokens, 2, "shards", 0);
    Result<uint64_t> quota = OptionU64(tokens, 2, "quota", 0);
    if (!dims.ok()) return ErrResponse(dims.status());
    if (!shards.ok()) return ErrResponse(shards.status());
    if (!quota.ok()) return ErrResponse(quota.status());
    Result<std::shared_ptr<Server>> created =
        registry_.Create(tokens[1], static_cast<size_t>(*dims),
                         static_cast<size_t>(*shards),
                         static_cast<size_t>(*quota));
    if (!created.ok()) return ErrResponse(created.status());
    return "+ok tenant=" + std::to_string((*created)->options().tenant_id);
  }

  // Every remaining command names its tenant as tokens[1].
  if (tokens.size() < 2) {
    return ErrResponse(
        Status::InvalidArgument("command '" + cmd + "' needs a tenant"));
  }
  Result<std::shared_ptr<Server>> found = registry_.Find(tokens[1]);
  if (!found.ok()) return ErrResponse(found.status());
  Server& server = **found;
  const size_t dims = server.options().dims;

  if (cmd == "add") {
    if (tokens.size() != 3 + dims || (tokens[2] != "p" && tokens[2] != "t")) {
      return ErrResponse(Status::InvalidArgument(
          "usage: add <tenant> <p|t> <" + std::to_string(dims) + " coords>"));
    }
    std::vector<double> coords(dims);
    for (size_t d = 0; d < dims; ++d) {
      Status st = ParseF64(tokens[3 + d], &coords[d]);
      if (!st.ok()) return ErrResponse(st);
    }
    Result<uint64_t> id = tokens[2] == "p" ? server.InsertCompetitor(coords)
                                           : server.InsertProduct(coords);
    if (!id.ok()) return ErrResponse(id.status());
    return "+ok id=" + std::to_string(*id);
  }

  if (cmd == "erase") {
    if (tokens.size() != 4 || (tokens[2] != "p" && tokens[2] != "t")) {
      return ErrResponse(
          Status::InvalidArgument("usage: erase <tenant> <p|t> <id>"));
    }
    uint64_t id = 0;
    Status st = ParseU64(tokens[3], &id);
    if (!st.ok()) return ErrResponse(st);
    Status erased = tokens[2] == "p" ? server.EraseCompetitor(id)
                                     : server.EraseProduct(id);
    if (!erased.ok()) return ErrResponse(erased);
    return "+ok";
  }

  if (cmd == "load") {
    // Bulk rows ride in the same frame, one "p,..."/"t,..." line each.
    uint64_t np = 0;
    uint64_t nt = 0;
    size_t line_no = 1;
    size_t at = nl;
    while (at != std::string::npos && at + 1 < request.size()) {
      const size_t start = at + 1;
      const size_t end = request.find('\n', start);
      const std::string line = end == std::string::npos
                                   ? request.substr(start)
                                   : request.substr(start, end - start);
      at = end;
      ++line_no;
      if (line.empty()) continue;
      const std::vector<std::string> fields = SplitCommas(line);
      if (fields.size() != dims + 1 ||
          (fields[0] != "p" && fields[0] != "t")) {
        return ErrResponse(Status::InvalidArgument(
            "load line " + std::to_string(line_no) + ": expected <p|t>," +
            std::to_string(dims) + " coords"));
      }
      std::vector<double> coords(dims);
      for (size_t d = 0; d < dims; ++d) {
        Status st = ParseF64(fields[1 + d], &coords[d]);
        if (!st.ok()) return ErrResponse(st);
      }
      Result<uint64_t> id = fields[0] == "p" ? server.InsertCompetitor(coords)
                                             : server.InsertProduct(coords);
      if (!id.ok()) return ErrResponse(id.status());
      if (fields[0] == "p") {
        ++np;
      } else {
        ++nt;
      }
    }
    return "+ok p=" + std::to_string(np) + " t=" + std::to_string(nt);
  }

  if (cmd == "topk") {
    if (tokens.size() < 3) {
      return ErrResponse(Status::InvalidArgument(
          "usage: topk <tenant> <k> [timeout=<seconds>]"));
    }
    uint64_t k = 0;
    Status st = ParseU64(tokens[2], &k);
    if (!st.ok() || k == 0) {
      return ErrResponse(Status::InvalidArgument("bad k '" + tokens[2] + "'"));
    }
    QueryRequest query;
    query.k = static_cast<size_t>(k);
    for (size_t i = 3; i < tokens.size(); ++i) {
      if (tokens[i].rfind("timeout=", 0) == 0) {
        Status parsed = ParseF64(tokens[i].substr(8), &query.timeout_seconds);
        if (!parsed.ok()) return ErrResponse(parsed);
      }
    }
    // Through the worker pool: admission control (the tenant's quota)
    // and grouped execution behave exactly as for in-process callers.
    QueryResponse response = server.Submit(std::move(query)).get();
    if (!response.status.ok()) return ErrResponse(response.status);
    std::string out = "+ok n=" + std::to_string(response.results.size()) +
                      " epoch=" + std::to_string(response.epoch);
    for (size_t r = 0; r < response.results.size(); ++r) {
      const UpgradeResult& res = response.results[r];
      out += '\n';
      out += std::to_string(r + 1);
      out += " id=" + std::to_string(res.product_id);
      out += " cost=" + Num17(res.cost);
      out += " upgraded=";
      for (size_t d = 0; d < res.upgraded.size(); ++d) {
        if (d > 0) out += ';';
        out += Num17(res.upgraded[d]);
      }
    }
    return out;
  }

  if (cmd == "stats") {
    const ServeStats stats = server.stats();
    std::string out = "+ok";
    auto line = [&out](const char* key, uint64_t value) {
      out += '\n';
      out += key;
      out += '=';
      out += std::to_string(value);
    };
    line("tenant_id", server.options().tenant_id);
    line("dims", dims);
    line("shards", server.options().shards);
    line("quota", server.options().max_pending);
    line("epoch", server.CurrentEpoch());
    line("delta_backlog", server.DeltaBacklog());
    line("rebuild_threshold_ops", server.options().rebuild_threshold_ops);
    line("queries_executed", stats.queries_executed);
    line("queries_rejected", stats.queries_rejected);
    line("queries_timed_out", stats.queries_timed_out);
    line("updates_applied", stats.updates_applied);
    line("updates_rejected", stats.updates_rejected);
    line("rebuilds_published", stats.rebuilds_published);
    line("patches_published", stats.patches_published);
    line("memo_hits", stats.memo_hits);
    line("memo_misses", stats.memo_misses);
    line("batches_executed", stats.batches_executed);
    line("batched_queries", stats.batched_queries);
    line("shard_queries", stats.shard_queries);
    line("shard_fanout", stats.shard_fanout);
    return out;
  }

  return ErrResponse(
      Status::InvalidArgument("unknown command '" + cmd + "'"));
}

}  // namespace skyup
