#include "serve/shard/sharded_table.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "obs/log.h"
#include "serve/upgrade_cache.h"
#include "util/check.h"

namespace skyup {

ShardedTable::ShardedTable(ShardedTableOptions options) : options_(options) {}

ShardedTable::~ShardedTable() { Stop(); }

Result<std::unique_ptr<ShardedTable>> ShardedTable::Create(
    ShardedTableOptions options) {
  if (options.dims < 1) {
    return Status::InvalidArgument("sharded table dims must be >= 1");
  }
  if (options.shards < 1) {
    return Status::InvalidArgument("sharded table shards must be >= 1");
  }
  std::unique_ptr<ShardedTable> sharded(new ShardedTable(options));
  sharded->tables_.reserve(options.shards);
  LiveTableOptions shard_options;
  shard_options.dims = options.dims;
  shard_options.rtree_fanout = options.rtree_fanout;
  shard_options.memo_cache_bytes = options.memo_cache_bytes / options.shards;
  // Shard-local caches would hold shard-local dominator sets; the global
  // cache below replaces them (see the class comment).
  shard_options.upgrade_cache = false;
  for (size_t s = 0; s < options.shards; ++s) {
    Result<std::unique_ptr<LiveTable>> table =
        LiveTable::Create(shard_options);
    if (!table.ok()) return table.status();
    sharded->tables_.push_back(std::move(table).value());
  }
  {
    // Not shared yet; the lock only keeps the GUARDED_BY invariant
    // unconditional (same construction pattern as LiveTable::Create).
    MutexLock lock(sharded->route_mu_);
    ShardPartitionerOptions part;
    part.dims = options.dims;
    part.shards = options.shards;
    part.fit_after = options.partition_fit_after;
    sharded->partitioner_ = std::make_unique<ShardPartitioner>(part);
  }
  sharded->cache_ = std::make_shared<UpgradeCache>(options.dims);
  return sharded;
}

Result<uint64_t> ShardedTable::InsertCompetitor(
    const std::vector<double>& coords) {
  if (coords.size() != options_.dims) {
    return Status::InvalidArgument(
        "insert has " + std::to_string(coords.size()) + " coords, table is " +
        std::to_string(options_.dims) + "-dimensional");
  }
  uint64_t id;
  uint32_t shard;
  {
    MutexLock lock(route_mu_);
    id = next_competitor_id_++;
    shard = partitioner_->RouteCompetitor(coords);
    competitor_shard_.emplace(id, shard);
    // Feed the global cache in id-allocation order, before the op can
    // reach its shard (so no reader sees an op the cache hasn't vetted
    // entries against). A shard apply cannot fail past this point — arity
    // was checked above and the forced id is fresh — so the cache never
    // observes a phantom op.
    cache_->OnDeltaOp(
        DeltaOp{DeltaTarget::kCompetitor, DeltaKind::kInsert, id, coords});
  }
  return tables_[shard]->InsertCompetitorWithId(id, coords);
}

Result<uint64_t> ShardedTable::InsertProduct(
    const std::vector<double>& coords) {
  if (coords.size() != options_.dims) {
    return Status::InvalidArgument(
        "insert has " + std::to_string(coords.size()) + " coords, table is " +
        std::to_string(options_.dims) + "-dimensional");
  }
  uint64_t id;
  uint32_t shard;
  {
    MutexLock lock(route_mu_);
    id = next_product_id_++;
    shard = partitioner_->RouteProduct(coords);
    product_shard_.emplace(id, shard);
    cache_->OnDeltaOp(
        DeltaOp{DeltaTarget::kProduct, DeltaKind::kInsert, id, coords});
  }
  return tables_[shard]->InsertProductWithId(id, coords);
}

Status ShardedTable::EraseCompetitor(uint64_t id) {
  uint32_t shard;
  {
    MutexLock lock(route_mu_);
    auto it = competitor_shard_.find(id);
    if (it == competitor_shard_.end()) {
      return Status::NotFound("competitor id " + std::to_string(id) +
                              " is not live");
    }
    shard = it->second;
    competitor_shard_.erase(it);
    cache_->OnDeltaOp(
        DeltaOp{DeltaTarget::kCompetitor, DeltaKind::kErase, id, {}});
  }
  return tables_[shard]->EraseCompetitor(id);
}

Status ShardedTable::EraseProduct(uint64_t id) {
  uint32_t shard;
  {
    MutexLock lock(route_mu_);
    auto it = product_shard_.find(id);
    if (it == product_shard_.end()) {
      return Status::NotFound("product id " + std::to_string(id) +
                              " is not live");
    }
    shard = it->second;
    product_shard_.erase(it);
    cache_->OnDeltaOp(
        DeltaOp{DeltaTarget::kProduct, DeltaKind::kErase, id, {}});
  }
  return tables_[shard]->EraseProduct(id);
}

ShardedView ShardedTable::AcquireViews() const {
  // The reader side of the epoch fence: a publish cycle installs every
  // shard under the writer side, so the views captured here are all-old
  // or all-new — one epoch, never a mix.
  ShardedView sharded;
  // Cache clock FIRST, before any shard is captured: Store() publishes an
  // entry only when no op landed after this stamp, and an op can reach a
  // shard only after it bumped the clock — so a successful store implies
  // the views below were captured at exactly `version` (the class comment
  // has the full soundness argument, including mid-capture ops).
  sharded.version = cache_->version();
  sharded.cache = cache_;
  ReaderLock lock(epoch_mu_);
  sharded.views.reserve(tables_.size());
  for (const std::unique_ptr<LiveTable>& table : tables_) {
    sharded.views.push_back(table->AcquireView());
  }
  sharded.epoch = sharded.views.front().epoch();
  for (const ReadView& view : sharded.views) {
    SKYUP_DCHECK(view.epoch() == sharded.epoch)
        << "mixed epochs under the reader fence: " << view.epoch() << " vs "
        << sharded.epoch;
  }
  return sharded;
}

Result<size_t> ShardedTable::MaybePublishInline(const RebuildPolicy& policy) {
  MutexLock lock(coord_mu_);
  if (delta_backlog() < policy.threshold_ops) return size_t{0};
  return PublishCycle(policy);
}

// One publish cycle, all shards in lock-step:
//   freeze    every shard's delta log (allow_empty keeps idle shards in
//             the cycle so epochs never diverge),
//   merge     each shard outside every lock readers touch — patch or
//             compact per shard-local churn (ChoosePublish),
//   install   all shards under the exclusive epoch fence.
// Serialized by coord_mu_ (held by the caller), so freeze never finds a
// rebuild already in flight.
Result<size_t> ShardedTable::PublishCycle(const RebuildPolicy& policy) {
  const size_t n = tables_.size();
  std::vector<LiveTable::RebuildJob> jobs;
  jobs.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    std::optional<LiveTable::RebuildJob> job =
        tables_[s]->BeginRebuild(/*allow_empty=*/true);
    SKYUP_CHECK(job.has_value())
        << "shard " << s << " had a rebuild in flight during a cycle";
    jobs.push_back(std::move(*job));
  }

  size_t cycle_majors = 0;
  std::vector<std::shared_ptr<const Snapshot>> next(n);
  for (size_t s = 0; s < n; ++s) {
    const PublishKind kind = ChoosePublish(*jobs[s].base, jobs[s].ops, policy);
    Result<std::shared_ptr<const Snapshot>> merged =
        kind == PublishKind::kMajor
            ? MergeSnapshot(*jobs[s].base, jobs[s].ops, jobs[s].next_epoch,
                            tables_[s]->index_options())
            : PatchSnapshot(*jobs[s].base, jobs[s].ops, jobs[s].next_epoch);
    if (!merged.ok()) {
      // Unwind the whole cycle: every shard keeps its frozen ops pending
      // and the next cycle re-offers them; no shard installs, so the
      // common-epoch invariant holds.
      for (size_t u = 0; u < n; ++u) tables_[u]->AbandonRebuild();
      last_error_ = merged.status();
      return merged.status();
    }
    if (kind == PublishKind::kMajor) ++cycle_majors;
    next[s] = std::move(merged).value();
  }

  {
    WriterLock fence(epoch_mu_);
    for (size_t s = 0; s < n; ++s) {
      tables_[s]->CompleteRebuild(std::move(next[s]));
    }
  }
  majors_ += cycle_majors;
  patches_ += n - cycle_majors;
  ++cycles_;
  if (LogEnabled(LogLevel::kInfo)) {
    LogRecord(LogLevel::kInfo, "publish_cycle")
        .U64("epoch", jobs.front().next_epoch)
        .U64("shards", n)
        .U64("majors", cycle_majors);
  }
  return n;
}

bool ShardedTable::ShouldPublish(const RebuildPolicy& policy) const {
  const size_t backlog = delta_backlog();
  if (backlog == 0) return false;
  // All shards publish together, so shard 0's snapshot age is the cycle
  // age; hysteresis mirrors Rebuilder::ShouldRebuild.
  if (policy.min_publish_interval_seconds > 0.0 &&
      tables_.front()->snapshot_age_seconds() <
          policy.min_publish_interval_seconds) {
    return false;
  }
  if (backlog >= policy.threshold_ops) return true;
  return policy.max_age_seconds > 0.0 &&
         backlog >= policy.min_publish_backlog &&
         tables_.front()->snapshot_age_seconds() >= policy.max_age_seconds;
}

void ShardedTable::Start(const RebuildPolicy& policy) {
  policy_ = policy;
  MutexLock lock(coord_mu_);
  SKYUP_CHECK(!running_) << "shard coordinator already started";
  running_ = true;
  stop_ = false;
  coord_thread_ = std::thread([this] { Loop(); });
}

void ShardedTable::Stop() {
  {
    MutexLock lock(coord_mu_);
    if (!running_) return;
    stop_ = true;
  }
  coord_cv_.notify_all();
  coord_thread_.join();
  MutexLock lock(coord_mu_);
  running_ = false;
}

void ShardedTable::Nudge() { coord_cv_.notify_all(); }

void ShardedTable::Loop() {
  const auto interval = std::chrono::duration_cast<SteadyClock::duration>(
      std::chrono::duration<double>(
          std::max(policy_.poll_interval_seconds, 1e-3)));
  for (;;) {
    MutexLock lock(coord_mu_);
    if (stop_) return;
    coord_cv_.wait_for(coord_mu_, interval);
    if (stop_) return;
    // The cycle runs under coord_mu_ (its REQUIRES contract): Stop() waits
    // out at most one cycle, and Nudge() never blocks (notify only).
    if (ShouldPublish(policy_)) {
      Result<size_t> outcome = PublishCycle(policy_);
      if (!outcome.ok()) last_error_ = outcome.status();
    }
  }
}

uint64_t ShardedTable::epoch() const {
  ReaderLock lock(epoch_mu_);
  return tables_.front()->epoch();
}

size_t ShardedTable::delta_backlog() const {
  size_t total = 0;
  for (const std::unique_ptr<LiveTable>& table : tables_) {
    total += table->delta_backlog();
  }
  return total;
}

LiveTable::Diagnostics ShardedTable::SampleDiagnostics() const {
  LiveTable::Diagnostics agg;
  bool first = true;
  for (const std::unique_ptr<LiveTable>& table : tables_) {
    const LiveTable::Diagnostics d = table->SampleDiagnostics();
    if (first) {
      agg.epoch = d.epoch;
      agg.snapshot_age_seconds = d.snapshot_age_seconds;
      first = false;
    }
    agg.delta_backlog += d.delta_backlog;
    agg.tombstone_pct = std::max(agg.tombstone_pct, d.tombstone_pct);
    agg.memo_bytes += d.memo_bytes;
    agg.live_competitors += d.live_competitors;
    agg.live_products += d.live_products;
  }
  return agg;
}

uint64_t ShardedTable::rebuilds_published() const {
  MutexLock lock(coord_mu_);
  return majors_;
}

uint64_t ShardedTable::patches_published() const {
  MutexLock lock(coord_mu_);
  return patches_;
}

uint64_t ShardedTable::publish_cycles() const {
  MutexLock lock(coord_mu_);
  return cycles_;
}

Status ShardedTable::last_error() const {
  MutexLock lock(coord_mu_);
  return last_error_;
}

}  // namespace skyup
