#include "serve/shard/partitioner.h"

#include <algorithm>

#include "util/check.h"

namespace skyup {

ShardPartitioner::ShardPartitioner(ShardPartitionerOptions options)
    : options_(options) {
  SKYUP_CHECK(options_.dims >= 1) << "partitioner dims must be >= 1";
  SKYUP_CHECK(options_.shards >= 1) << "partitioner shards must be >= 1";
  if (options_.shards == 1) {
    // Trivial partition: a single leaf so Walk() has a tree to walk.
    fitted_ = true;
    nodes_.emplace_back();
  }
  if (options_.fit_after < 1) options_.fit_after = 1;
}

uint32_t ShardPartitioner::RouteCompetitor(const std::vector<double>& coords) {
  if (fitted_) return Walk(coords.data());
  buffer_.insert(buffer_.end(), coords.begin(), coords.end());
  if (++seen_competitors_ >= options_.fit_after) Fit();
  return 0;
}

uint32_t ShardPartitioner::RouteProduct(
    const std::vector<double>& coords) const {
  if (!fitted_) return 0;
  return Walk(coords.data());
}

uint32_t ShardPartitioner::Walk(const double* coords) const {
  uint32_t node = 0;
  while (nodes_[node].dim >= 0) {
    const Node& n = nodes_[node];
    node = coords[n.dim] < n.cut ? n.left : n.right;
  }
  return nodes_[node].shard;
}

void ShardPartitioner::Fit() {
  std::vector<uint32_t> points(seen_competitors_);
  for (uint32_t i = 0; i < points.size(); ++i) points[i] = i;
  nodes_.clear();
  Build(points, 0, static_cast<uint32_t>(options_.shards), /*depth=*/0);
  fitted_ = true;
  buffer_.clear();
  buffer_.shrink_to_fit();
}

// One STR level: sort the slab's points on the cycled dimension (ties
// broken by arrival index, so the cut is a pure function of the op
// stream), split the shard budget in half, and cut at the matching
// quantile. Recursion bottoms out in one leaf per shard.
uint32_t ShardPartitioner::Build(std::vector<uint32_t>& points,
                                 uint32_t first_shard, uint32_t num_shards,
                                 size_t depth) {
  const uint32_t index = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back();
  if (num_shards == 1) {
    nodes_[index].shard = first_shard;
    return index;
  }
  const size_t dim = depth % options_.dims;
  const double* coords = buffer_.data();
  const size_t dims = options_.dims;
  std::sort(points.begin(), points.end(),
            [coords, dims, dim](uint32_t a, uint32_t b) {
              const double ca = coords[a * dims + dim];
              const double cb = coords[b * dims + dim];
              // lint: float-eq-ok (exact tie-break comparison; equal
              // keys fall through to the arrival index, total order)
              if (ca != cb) return ca < cb;
              return a < b;
            });
  const uint32_t left_shards = num_shards / 2;
  const size_t cut_pos =
      points.empty()
          ? 0
          : points.size() * left_shards / num_shards;
  // `< cut` routes left; with an empty or degenerate slab the cut falls
  // on the slab minimum and everything routes right — pure imbalance,
  // never incorrectness.
  const double cut = points.empty()
                         ? 0.0
                         : coords[points[std::min(cut_pos, points.size() - 1)] *
                                      dims +
                                  dim];
  std::vector<uint32_t> left_points(points.begin(),
                                    points.begin() + cut_pos);
  std::vector<uint32_t> right_points(points.begin() + cut_pos, points.end());
  points.clear();
  points.shrink_to_fit();
  const uint32_t left =
      Build(left_points, first_shard, left_shards, depth + 1);
  const uint32_t right = Build(right_points, first_shard + left_shards,
                               num_shards - left_shards, depth + 1);
  nodes_[index].dim = static_cast<int32_t>(dim);
  nodes_[index].cut = cut;
  nodes_[index].left = left;
  nodes_[index].right = right;
  return index;
}

}  // namespace skyup
