#include "serve/shard/wire.h"

#include <netdb.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <utility>

namespace skyup {
namespace {

// MSG_NOSIGNAL keeps a dead peer an EPIPE errno instead of a process
// signal; connection errors must surface as Status, never as SIGPIPE.
#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

std::string Num17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Status ParseU64(const std::string& field, uint64_t* out) {
  if (field.empty()) return Status::InvalidArgument("empty integer field");
  uint64_t value = 0;
  for (char c : field) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad integer field '" + field + "'");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return Status::OK();
}

StatusCode StatusCodeFromName(const std::string& name) {
  static constexpr StatusCode kCodes[] = {
      StatusCode::kInvalidArgument,    StatusCode::kNotFound,
      StatusCode::kOutOfRange,         StatusCode::kFailedPrecondition,
      StatusCode::kInternal,           StatusCode::kIOError,
      StatusCode::kNotSupported,       StatusCode::kCancelled,
      StatusCode::kDeadlineExceeded,   StatusCode::kResourceExhausted,
  };
  for (StatusCode code : kCodes) {
    if (name == StatusCodeName(code)) return code;
  }
  // A code this build does not know still fails loudly, just untyped.
  return StatusCode::kInternal;
}

std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> tokens;
  size_t at = 0;
  while (at < line.size()) {
    while (at < line.size() && line[at] == ' ') ++at;
    size_t end = at;
    while (end < line.size() && line[end] != ' ') ++end;
    if (end > at) tokens.push_back(line.substr(at, end - at));
    at = end;
  }
  return tokens;
}

std::string FirstLine(const std::string& payload) {
  const size_t nl = payload.find('\n');
  return nl == std::string::npos ? payload : payload.substr(0, nl);
}

// `+ok a=1 b=2` -> value of `key=`, or nullopt.
Result<uint64_t> OkDetailU64(const std::string& first_line,
                             const std::string& key) {
  const std::string prefix = key + "=";
  for (const std::string& token : SplitTokens(first_line)) {
    if (token.rfind(prefix, 0) == 0) {
      uint64_t value = 0;
      Status st = ParseU64(token.substr(prefix.size()), &value);
      if (!st.ok()) return st;
      return value;
    }
  }
  return Status::Internal("response lacks '" + key + "=': " + first_line);
}

// Decodes a `-err <Code> <message>` line back into the remote Status;
// any other shape is a protocol error.
Status DecodeError(const std::string& first_line) {
  const std::vector<std::string> tokens = SplitTokens(first_line);
  if (tokens.empty() || tokens[0] != "-err" || tokens.size() < 2) {
    return Status::Internal("malformed wire response: " + first_line);
  }
  std::string message;
  for (size_t i = 2; i < tokens.size(); ++i) {
    if (i > 2) message += ' ';
    message += tokens[i];
  }
  return Status(StatusCodeFromName(tokens[1]), std::move(message));
}

// Shared success/error triage: OK iff the payload starts with `+ok`.
Status CheckOk(const std::string& payload) {
  const std::string first = FirstLine(payload);
  if (first.rfind("+ok", 0) == 0) return Status::OK();
  return DecodeError(first);
}

Status SendAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, kSendFlags);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("wire send: ") +
                             std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

// The load generator's per-client wire connection: every LoadConnection
// op is one protocol round trip against the target tenant.
class WireConnection : public LoadConnection {
 public:
  WireConnection(WireClient client, std::string tenant)
      : client_(std::move(client)), tenant_(std::move(tenant)) {}

  Result<uint64_t> InsertCompetitor(
      const std::vector<double>& coords) override {
    return client_.Insert(tenant_, /*competitor=*/true, coords);
  }
  Result<uint64_t> InsertProduct(const std::vector<double>& coords) override {
    return client_.Insert(tenant_, /*competitor=*/false, coords);
  }
  Status EraseCompetitor(uint64_t id) override {
    return client_.Erase(tenant_, /*competitor=*/true, id);
  }
  Status EraseProduct(uint64_t id) override {
    return client_.Erase(tenant_, /*competitor=*/false, id);
  }
  Status Query(size_t k, double timeout_seconds) override {
    return client_.TopK(tenant_, k, timeout_seconds);
  }

 private:
  WireClient client_;
  std::string tenant_;
};

}  // namespace

Status WireWriteFrame(int fd, const std::string& payload) {
  if (payload.empty()) {
    return Status::InvalidArgument("wire frames may not be empty");
  }
  if (payload.size() > kWireMaxFrameBytes) {
    return Status::InvalidArgument("wire frame exceeds max size");
  }
  // One send for header+payload: tiny frames (the common case) go out in
  // a single segment instead of tripping delayed-ACK interactions.
  std::string framed = std::to_string(payload.size());
  framed += '\n';
  framed += payload;
  return SendAll(fd, framed.data(), framed.size());
}

Result<std::string> WireReadFrame(int fd, bool eof_ok) {
  // Header: ASCII digits up to '\n'. Read byte-wise — it is at most a
  // handful of bytes and keeps the payload read exactly sized.
  uint64_t len = 0;
  size_t header_bytes = 0;
  for (;;) {
    char c = 0;
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("wire recv: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      if (eof_ok && header_bytes == 0) {
        return Status::Cancelled("peer closed the connection");
      }
      return Status::IOError("peer closed mid-frame");
    }
    if (c == '\n') {
      if (header_bytes == 0) {
        return Status::IOError("wire frame with empty length header");
      }
      break;
    }
    if (c < '0' || c > '9' || header_bytes >= 12) {
      return Status::IOError("malformed wire frame length header");
    }
    len = len * 10 + static_cast<uint64_t>(c - '0');
    ++header_bytes;
  }
  if (len == 0 || len > kWireMaxFrameBytes) {
    return Status::IOError("wire frame length out of range: " +
                           std::to_string(len));
  }
  std::string payload(static_cast<size_t>(len), '\0');
  size_t got = 0;
  while (got < payload.size()) {
    const ssize_t n = ::recv(fd, &payload[got], payload.size() - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("wire recv: ") +
                             std::strerror(errno));
    }
    if (n == 0) return Status::IOError("peer closed mid-frame");
    got += static_cast<size_t>(n);
  }
  return payload;
}

std::string WireFormatCoords(const std::vector<double>& coords) {
  std::string out;
  for (size_t d = 0; d < coords.size(); ++d) {
    if (d > 0) out += ' ';
    out += Num17(coords[d]);
  }
  return out;
}

Result<WireClient> WireClient::Dial(const std::string& host, uint16_t port) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* addrs = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &addrs);
  if (rc != 0) {
    return Status::IOError("resolve '" + host + "': " + gai_strerror(rc));
  }
  int fd = -1;
  int last_errno = 0;
  for (struct addrinfo* a = addrs; a != nullptr; a = a->ai_next) {
    fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, a->ai_addr, a->ai_addrlen) == 0) break;
    last_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(addrs);
  if (fd < 0) {
    return Status::IOError("connect " + host + ":" + port_str + ": " +
                           std::strerror(last_errno));
  }
  return WireClient(fd);
}

WireClient::~WireClient() {
  if (fd_ >= 0) ::close(fd_);
}

WireClient& WireClient::operator=(WireClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<std::string> WireClient::Call(const std::string& request) {
  if (fd_ < 0) return Status::FailedPrecondition("wire client not connected");
  Status sent = WireWriteFrame(fd_, request);
  if (!sent.ok()) return sent;
  return WireReadFrame(fd_);
}

Status WireClient::Ping() {
  Result<std::string> response = Call("ping");
  if (!response.ok()) return response.status();
  return CheckOk(*response);
}

Result<uint64_t> WireClient::CreateTenant(const std::string& tenant,
                                          size_t dims, size_t shards,
                                          size_t quota, bool attach_existing) {
  std::string request = "create " + tenant + " dims=" + std::to_string(dims);
  if (shards > 0) request += " shards=" + std::to_string(shards);
  if (quota > 0) request += " quota=" + std::to_string(quota);
  Result<std::string> response = Call(request);
  if (!response.ok()) return response.status();
  Status ok = CheckOk(*response);
  if (!ok.ok()) {
    // Attach mode tolerates a tenant another client created first; its
    // id comes back in the error detail's stead via `stats`.
    if (attach_existing && ok.code() == StatusCode::kFailedPrecondition) {
      Result<std::vector<std::pair<std::string, std::string>>> stats =
          Stats(tenant);
      if (!stats.ok()) return stats.status();
      for (const auto& [key, value] : *stats) {
        if (key == "tenant_id") {
          uint64_t id = 0;
          Status st = ParseU64(value, &id);
          if (!st.ok()) return st;
          return id;
        }
      }
      return Status::Internal("stats response lacks tenant_id");
    }
    return ok;
  }
  return OkDetailU64(FirstLine(*response), "tenant");
}

Result<uint64_t> WireClient::Insert(const std::string& tenant, bool competitor,
                                    const std::vector<double>& coords) {
  std::string request = "add " + tenant + (competitor ? " p " : " t ") +
                        WireFormatCoords(coords);
  Result<std::string> response = Call(request);
  if (!response.ok()) return response.status();
  Status ok = CheckOk(*response);
  if (!ok.ok()) return ok;
  return OkDetailU64(FirstLine(*response), "id");
}

Status WireClient::Erase(const std::string& tenant, bool competitor,
                         uint64_t id) {
  Result<std::string> response =
      Call("erase " + tenant + (competitor ? " p " : " t ") +
           std::to_string(id));
  if (!response.ok()) return response.status();
  return CheckOk(*response);
}

Status WireClient::TopK(const std::string& tenant, size_t k,
                        double timeout_seconds) {
  std::string request = "topk " + tenant + ' ' + std::to_string(k);
  if (timeout_seconds > 0.0) request += " timeout=" + Num17(timeout_seconds);
  Result<std::string> response = Call(request);
  if (!response.ok()) return response.status();
  return CheckOk(*response);
}

Result<std::vector<std::pair<std::string, std::string>>> WireClient::Stats(
    const std::string& tenant) {
  Result<std::string> response = Call("stats " + tenant);
  if (!response.ok()) return response.status();
  Status ok = CheckOk(*response);
  if (!ok.ok()) return ok;
  std::vector<std::pair<std::string, std::string>> pairs;
  size_t at = response->find('\n');
  while (at != std::string::npos) {
    const size_t start = at + 1;
    const size_t end = response->find('\n', start);
    const std::string line =
        end == std::string::npos ? response->substr(start)
                                 : response->substr(start, end - start);
    const size_t eq = line.find('=');
    if (eq != std::string::npos) {
      pairs.emplace_back(line.substr(0, eq), line.substr(eq + 1));
    }
    at = end;
  }
  return pairs;
}

Status WireClient::Shutdown() {
  Result<std::string> response = Call("shutdown");
  if (!response.ok()) return response.status();
  return CheckOk(*response);
}

Result<std::unique_ptr<WireLoadTarget>> WireLoadTarget::Create(
    const std::string& host, uint16_t port, const std::string& tenant) {
  Result<WireClient> control = WireClient::Dial(host, port);
  if (!control.ok()) return control.status();
  Status ping = control->Ping();
  if (!ping.ok()) return ping;
  return std::unique_ptr<WireLoadTarget>(new WireLoadTarget(
      host, port, tenant, std::move(control).value()));
}

Result<std::unique_ptr<LoadConnection>> WireLoadTarget::Connect(size_t) {
  Result<WireClient> client = WireClient::Dial(host_, port_);
  if (!client.ok()) return client.status();
  return std::unique_ptr<LoadConnection>(
      std::make_unique<WireConnection>(std::move(client).value(), tenant_));
}

Result<uint64_t> WireLoadTarget::StatU64(const std::string& key) {
  Result<std::vector<std::pair<std::string, std::string>>> stats =
      control_.Stats(tenant_);
  if (!stats.ok()) return stats.status();
  for (const auto& [stat_key, value] : *stats) {
    if (stat_key == key) {
      uint64_t parsed = 0;
      Status st = ParseU64(value, &parsed);
      if (!st.ok()) return st;
      return parsed;
    }
  }
  return Status::Internal("remote stats lack '" + key + "'");
}

Result<uint64_t> WireLoadTarget::DeltaBacklog() {
  return StatU64("delta_backlog");
}

Result<uint64_t> WireLoadTarget::RebuildThresholdOps() {
  return StatU64("rebuild_threshold_ops");
}

}  // namespace skyup
