#ifndef SKYUP_SERVE_SHARD_SHARD_QUERY_H_
#define SKYUP_SERVE_SHARD_SHARD_QUERY_H_

// Scatter-gather top-k over a consistent set of shard views.
//
// Each shard worker sweeps the products *owned by its shard*; for every
// candidate it gathers the global dominator skyline by probing every
// shard's index (mask-aware, memoized per shard) and folding the
// per-shard skylines member by member (skyline/incremental.h) — skyline
// of a union equals the skyline of the per-part skylines, and Algorithm 1
// is a pure function of the dominator *value set*, so each candidate's
// outcome is bit-identical to the single-table engine's. Workers share
// the PR-1 lock-free CAS-min cost threshold: a cheap upgrade found on one
// shard immediately tightens the sound box prune on all others. Results
// merge under the cost-then-id total order, which is offer-order
// independent — so the final top-k is byte-identical to `TopKOverlay`
// over the same live state regardless of shard count or interleaving
// (fuzz/fuzz_shard.cc enforces this, and the `--shards N` replay guard
// rides on it).
//
// Caching: a *shard-local* upgrade cache would memoize outcomes against
// shard-local dominators — not the global answer — so the shards keep
// none (LiveTableOptions::upgrade_cache is off). Instead each candidate
// consults the table's single GLOBAL cache (`ShardedView::cache`), fed
// with the cross-shard op stream by ShardedTable, whose hits are the
// exact Algorithm-1 outcome against the full competitor set and skip the
// whole per-shard gather. The per-shard skyline memos ARE sound and
// accelerate the cache-miss path — they memoize exact per-shard
// index-probe value sets keyed by epoch and erased-prefix length, the
// same contract the single-table engine relies on (docs/algorithms.md,
// "Sharded serving & wire protocol").

#include <cstdint>
#include <vector>

#include "core/cost_function.h"
#include "core/query_control.h"
#include "core/upgrade_result.h"
#include "obs/phase_timings.h"
#include "serve/query.h"
#include "serve/serve_stats.h"
#include "serve/shard/sharded_table.h"
#include "util/status.h"

namespace skyup {

/// Wall-time attribution across shard workers, for the flight recorder's
/// "which shard dominated this query" story. Always cheap to fill (two
/// clock reads per worker).
struct ShardQueryInfo {
  uint32_t shard_count = 0;
  uint32_t slowest_shard = 0;  ///< arg-max of per-worker wall time
  double slowest_shard_seconds = 0.0;
};

/// Top-k upgrades over the sharded live state. `threads` workers sweep
/// the shards (0 = one per shard, capped by the shard count); `control`,
/// `stats`, `telemetry`, and `info` may be null. Counter semantics match
/// `TopKOverlay`, plus `shard_queries`/`shard_fanout`; cache counters
/// track the global cache (see the header comment).
Result<std::vector<UpgradeResult>> TopKSharded(
    const ShardedView& sharded, const ProductCostFunction& cost_fn, size_t k,
    double epsilon, size_t threads = 0,
    const QueryControl* control = nullptr, ServeStats* stats = nullptr,
    QueryTelemetry* telemetry = nullptr, ShardQueryInfo* info = nullptr);

/// Grouped execution over one captured view set, the sharded analogue of
/// `TopKOverlayBatch`: every member shares the per-shard contexts, the
/// global live box, and — per candidate — the global-cache lookup, the
/// dominator gather, and the upgrade, so a group of B queries costs one
/// candidate sweep instead of B. `(*out)[i]` is exactly what the
/// corresponding solo `TopKSharded` call would have returned (same
/// offer-order and stale-prune-safety arguments as the single-table batch
/// engine). `queries.size()` must be in [1, kMaxServeBatch].
void TopKShardedBatch(const ShardedView& sharded,
                      const ProductCostFunction& cost_fn,
                      const std::vector<BatchQuery>& queries, double epsilon,
                      size_t threads, std::vector<BatchQueryResult>* out,
                      ServeStats* stats = nullptr);

}  // namespace skyup

#endif  // SKYUP_SERVE_SHARD_SHARD_QUERY_H_
