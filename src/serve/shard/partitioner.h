#ifndef SKYUP_SERVE_SHARD_PARTITIONER_H_
#define SKYUP_SERVE_SHARD_PARTITIONER_H_

// Spatial shard assignment for the shard-per-core serving tier: STR tiles
// over the competitor space, grown online.
//
// The partitioner starts in a *bootstrap* phase — the first `fit_after`
// competitor inserts all land on shard 0 while their coordinates are
// buffered. At the fit point it builds a tile tree by recursive
// Sort-Tile-Recursive slab splits (quantile cuts on cycled dimensions,
// shard counts halved per level, so any shard count works, not just
// perfect powers); every later insert — competitor or product, products
// co-partition with the competitors they compete against — routes by
// walking the cuts. Placement is pure load balancing: queries probe every
// shard, so a point on the "wrong" shard costs locality, never
// correctness. What matters is that routing is a deterministic function
// of the op stream, which keeps `--shards N` replays reproducible: the
// fit set is the op stream's own prefix in arrival order, and ties on a
// cut value always route right.
//
// Not internally synchronized — the sharded table calls it under its
// routing lock (kShardTable band).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace skyup {

struct ShardPartitionerOptions {
  size_t dims = 0;    ///< required, >= 1
  size_t shards = 1;  ///< required, >= 1
  /// Competitor inserts buffered before the tile tree is fitted. With one
  /// shard no fit ever happens (everything is shard 0 by definition).
  size_t fit_after = 256;
};

class ShardPartitioner {
 public:
  explicit ShardPartitioner(ShardPartitionerOptions options);

  ShardPartitioner(const ShardPartitioner&) = delete;
  ShardPartitioner& operator=(const ShardPartitioner&) = delete;

  /// Routes a competitor insert. Bootstrap phase: buffers the coords,
  /// returns 0, and fits the tiles once `fit_after` competitors were seen.
  uint32_t RouteCompetitor(const std::vector<double>& coords);

  /// Routes a product insert (never feeds the fit buffer: tiles describe
  /// the competitor distribution, products just follow it).
  uint32_t RouteProduct(const std::vector<double>& coords) const;

  bool fitted() const { return fitted_; }
  size_t shards() const { return options_.shards; }
  /// Partitioner identity recorded in bench JSON for reproducibility.
  static const char* kind() { return "str-tiles"; }

 private:
  struct Node {
    int32_t dim = -1;   ///< -1 = leaf
    double cut = 0.0;   ///< route left iff coord[dim] < cut
    uint32_t left = 0;  ///< node indices (internal nodes only)
    uint32_t right = 0;
    uint32_t shard = 0;  ///< leaves only
  };

  void Fit();
  uint32_t Build(std::vector<uint32_t>& points, uint32_t first_shard,
                 uint32_t num_shards, size_t depth);
  uint32_t Walk(const double* coords) const;

  ShardPartitionerOptions options_;
  bool fitted_ = false;
  size_t seen_competitors_ = 0;
  std::vector<double> buffer_;  ///< bootstrap coords, dims-strided
  std::vector<Node> nodes_;     ///< nodes_[0] is the root once fitted
};

}  // namespace skyup

#endif  // SKYUP_SERVE_SHARD_PARTITIONER_H_
