#include "serve/shard/shard_query.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <utility>

#include "core/dominance_batch.h"
#include "core/lower_bounds.h"
#include "core/single_upgrade.h"
#include "core/topk_common.h"
#include "obs/trace.h"
#include "rtree/mbr.h"
#include "serve/query.h"
#include "serve/skyline_memo.h"
#include "serve/upgrade_cache.h"
#include "skyline/dominating_skyline.h"
#include "skyline/incremental.h"
#include "util/check.h"
#include "util/mutex.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace skyup {

namespace {

// Read-only per-shard context shared by every worker: overlays are built
// once on the issuing thread, then only read concurrently.
struct ShardContext {
  explicit ShardContext(const ReadView& view) : overlay(BuildOverlay(view)) {}
  DeltaOverlay overlay;
  const uint8_t* erase_mask = nullptr;
  SoaView tail_view;
  SoaView inserted_view;
  size_t indexed = 0;
  uint64_t erased_indexed = 0;  ///< the shard memo's erased-prefix clock
};

// Same memo clock as the single-table engine (serve/query.cc): erased
// *indexed* rows of one shard form a prefix of that shard's epoch-local
// erase sequence.
uint64_t ErasedIndexedCount(const DeltaOverlay& overlay, size_t indexed) {
  uint64_t n = 0;
  for (PointId row : overlay.erased_competitor_rows) {
    if (static_cast<size_t>(row) < indexed) ++n;
  }
  return n;
}

// Shared query-time state over one captured view set: the per-shard
// contexts plus the global live box and its prune soundness gate. Built
// once per solo query — or once per batch GROUP, which is where the
// grouped engine's amortization comes from.
struct ShardGather {
  explicit ShardGather(size_t dims) : live_box(dims) {}
  std::vector<ShardContext> ctx;
  Mbr live_box;
  bool have_box = false;
  bool prune_ok = true;
};

// Global live box = union of the per-shard live boxes; each per-shard
// box is assembled exactly like the single-table engine's (index root
// MBR, live tail rows, overlay inserts), so the union equals the box a
// single table holding P would compute. The face-touch soundness gate
// is evaluated against the GLOBAL box: a pending indexed erase on any
// shard that attains a face of the union voids kSound's attainment
// guarantee for every worker.
ShardGather BuildShardGather(const ShardedView& sharded, size_t dims,
                             ServeStats* shared_stats) {
  const size_t num_shards = sharded.views.size();
  ShardGather g(dims);
  g.ctx.reserve(num_shards);
  for (const ReadView& view : sharded.views) {
    g.ctx.emplace_back(view);
    ShardContext& c = g.ctx.back();
    const Snapshot& base = *view.snapshot;
    c.erase_mask = c.overlay.competitors_erased > 0
                       ? c.overlay.competitor_erased.data()
                       : nullptr;
    c.tail_view = base.tail_view();
    c.inserted_view = c.overlay.competitor_block.view();
    c.indexed = base.indexed_competitors();
    c.erased_indexed = ErasedIndexedCount(c.overlay, c.indexed);
    shared_stats->delta_ops_scanned += view.deltas.size();
  }

  for (size_t s = 0; s < num_shards; ++s) {
    const Snapshot& base = *sharded.views[s].snapshot;
    const ShardContext& c = g.ctx[s];
    const Mbr root = base.index().root_mbr();
    if (!root.IsEmpty()) g.live_box.Expand(root);
    for (size_t j = 0; j < base.tail_competitors(); ++j) {
      const size_t row = c.indexed + j;
      if (c.erase_mask != nullptr && c.erase_mask[row] != 0) continue;
      g.live_box.Expand(base.competitors().data(static_cast<PointId>(row)));
    }
    for (size_t j = 0; j < c.overlay.inserted_competitors.size(); ++j) {
      g.live_box.Expand(
          c.overlay.inserted_competitors.data(static_cast<PointId>(j)));
    }
  }
  g.have_box = !g.live_box.IsEmpty();
  if (g.have_box) {
    for (size_t s = 0; s < num_shards && g.prune_ok; ++s) {
      const Snapshot& base = *sharded.views[s].snapshot;
      const ShardContext& c = g.ctx[s];
      if (c.erase_mask == nullptr) continue;
      for (PointId r : c.overlay.erased_competitor_rows) {
        if (static_cast<size_t>(r) >= c.indexed) continue;
        const double* q = base.competitors().data(r);
        for (size_t d = 0; d < dims && g.prune_ok; ++d) {
          // lint: float-eq-ok (exact face-touch test: box faces are
          // copies of competitor coordinates, equality is the precise
          // attainment predicate — same argument as serve/query.cc)
          if (q[d] == g.live_box.min(d) || q[d] == g.live_box.max(d)) {
            g.prune_ok = false;
          }
        }
        if (!g.prune_ok) break;
      }
    }
    if (!g.prune_ok) ++shared_stats->prune_disabled_queries;
  }
  return g;
}

}  // namespace

Result<std::vector<UpgradeResult>> TopKSharded(
    const ShardedView& sharded, const ProductCostFunction& cost_fn, size_t k,
    double epsilon, size_t threads, const QueryControl* control,
    ServeStats* stats, QueryTelemetry* telemetry, ShardQueryInfo* info) {
  const size_t num_shards = sharded.views.size();
  if (num_shards == 0) {
    return Status::InvalidArgument("sharded view has no shards");
  }
  for (const ReadView& view : sharded.views) {
    if (view.snapshot == nullptr) {
      return Status::InvalidArgument("shard view has no snapshot");
    }
  }
  const size_t dims = sharded.views.front().snapshot->dims();
  SKYUP_RETURN_IF_ERROR(ValidateTopKQueryShape(dims, cost_fn, k, epsilon));
  SKYUP_TRACE_SPAN_Q("serve/topk-shard",
                     control != nullptr ? control->query_id() : 0);

  ServeStats shared_stats;
  shared_stats.shard_queries = 1;
  shared_stats.shard_fanout = num_shards;

  const ShardGather gather = BuildShardGather(sharded, dims, &shared_stats);
  const std::vector<ShardContext>& ctx = gather.ctx;
  const Mbr& live_box = gather.live_box;
  const bool have_box = gather.have_box;
  const bool prune_ok = gather.prune_ok;

  // Per-worker output slots, written only by the owning worker; the
  // ParallelFor join is the happens-before edge for the merge below.
  struct WorkerState {
    explicit WorkerState(size_t k) : collector(k) {}
    TopKCollector collector;
    ServeStats stats;
    double wall_seconds = 0.0;
  };
  std::vector<WorkerState> workers;
  workers.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) workers.emplace_back(k);
  std::vector<std::unique_ptr<ShardTelemetry>> worker_telemetry(num_shards);
  if (telemetry != nullptr) {
    for (size_t s = 0; s < num_shards; ++s) {
      worker_telemetry[s] = std::make_unique<ShardTelemetry>();
    }
  }

  // The cross-shard shared threshold (PR-1 CAS-min): every worker relaxes
  // it with its local k-th cost; every worker prunes against the min of
  // its own k-th and the shared bound. Any worker's k-th cost is an upper
  // bound of the final global k-th, so the shared min is too — pruning
  // against it is sound, and a cheap upgrade found on one shard tightens
  // traversal on all others immediately.
  AtomicCostThreshold threshold;
  std::atomic<bool> stop{false};
  // lint: guarded-by-ok (function-local: GUARDED_BY only applies to
  // members/globals; the ParallelFor join orders the final unlocked read)
  Mutex stop_mu;
  Status stop_status;

  ParallelFor(
      num_shards, threads == 0 ? num_shards : threads,
      [&](size_t, size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s) {
          SKYUP_TRACE_SPAN_Q("serve/shard-worker",
                             control != nullptr ? control->query_id() : 0);
          Timer worker_wall;
          WorkerState& w = workers[s];
          ShardTelemetry* const tel = worker_telemetry[s].get();
          const Snapshot& own = *sharded.views[s].snapshot;
          const ShardContext& own_ctx = ctx[s];

          size_t since_poll = 0;
          auto should_stop = [&]() {
            // lint: relaxed-ok (advisory early-out; the join publishes)
            if (stop.load(std::memory_order_relaxed)) return true;
            if (control == nullptr) return false;
            if (since_poll++ % QueryControl::kPollStride != 0) return false;
            Status st = control->Check();
            if (st.ok()) return false;
            {
              MutexLock lock(stop_mu);
              if (stop_status.ok()) stop_status = std::move(st);
            }
            // lint: relaxed-ok (advisory early-out; the join publishes)
            stop.store(true, std::memory_order_relaxed);
            return true;
          };

          // Scratch reused across candidates (worker-local).
          std::vector<PointId> sky_rows;
          std::vector<uint32_t> scan_hits;
          std::vector<const double*> dominators;
          UpgradeCache* const cache = sharded.cache.get();
          UpgradeCache::Hit hit;

          auto evaluate = [&](uint64_t stable_id, const double* t) {
            // Global cache first: a hit is the exact Algorithm-1 outcome
            // for this product against the FULL competitor set at the
            // sharded view's version — the cache is fed the cross-shard
            // op stream (serve/shard/sharded_table.h), so unlike a
            // shard-local cache it is sound to serve as a global answer,
            // and the whole per-shard gather below is skipped.
            if (cache != nullptr &&
                cache->Lookup(stable_id, sharded.version, epsilon,
                              w.collector.KthCost(), &hit)) {
              ++w.stats.cache_hits;
              if (w.collector.Admits(hit.cost)) {
                w.collector.Add(UpgradeResult{static_cast<PointId>(stable_id),
                                              hit.cost,
                                              std::move(hit.upgraded),
                                              hit.already_competitive});
                threshold.RelaxTo(w.collector.KthCost());
              }
              LapOther(tel);  // cache-served: no probe/upgrade to charge
              return;
            }
            if (cache != nullptr) ++w.stats.cache_misses;

            // Sound box prune against the tighter of the local k-th and
            // the shared cross-shard bound. Both only shrink over time
            // and both upper-bound the final global k-th cost, so a
            // candidate whose sound lower bound exceeds either is
            // provably outside the final top-k — prune differences can
            // never reach the result set.
            if (prune_ok && have_box) {
              const double cutoff =
                  std::min(w.collector.KthCost(), threshold.Get());
              const double bound =
                  LbcPair(t, live_box.min_data(), live_box.max_data(), dims,
                          cost_fn, BoundMode::kSound);
              LapPrune(tel);
              if (bound > cutoff) {
                ++w.stats.candidates_pruned;
                return;
              }
            }

            // Gather: probe every shard's index (memoized per shard),
            // seed the skyline with the first shard's probe rows (an
            // index probe already returns a skyline), then fold every
            // further member point by point. Folding preserves value-set
            // semantics, and skyline(union) = skyline(union of
            // skylines), so `dominators` ends as the exact global
            // dominator skyline of t.
            dominators.clear();
            for (size_t v = 0; v < num_shards; ++v) {
              const Snapshot& base = *sharded.views[v].snapshot;
              const ShardContext& c = ctx[v];
              SkylineMemo* const memo = sharded.views[v].memo.get();
              if (memo != nullptr &&
                  memo->Lookup(sharded.epoch, t, c.erased_indexed,
                               &sky_rows)) {
                ++w.stats.memo_hits;
              } else {
                if (memo != nullptr) ++w.stats.memo_misses;
                DominatingSkylineInto(base.index(), t, c.erase_mask,
                                      &sky_rows);
                if (memo != nullptr) {
                  memo->Store(sharded.epoch, t, c.erased_indexed, sky_rows);
                }
              }
              if (dominators.empty()) {
                for (PointId row : sky_rows) {
                  dominators.push_back(base.competitors().data(row));
                }
              } else {
                for (PointId row : sky_rows) {
                  PatchSkylineInsert(&dominators,
                                     base.competitors().data(row), dims);
                }
              }
              LapProbe(tel);
              if (!c.tail_view.empty()) {
                scan_hits.clear();
                FilterDominated(c.tail_view, t, &scan_hits, /*strict=*/true);
                for (uint32_t j : scan_hits) {
                  const size_t row = c.indexed + j;
                  if (c.erase_mask != nullptr && c.erase_mask[row] != 0) {
                    continue;
                  }
                  PatchSkylineInsert(
                      &dominators,
                      base.competitors().data(static_cast<PointId>(row)),
                      dims);
                }
              }
              if (!c.inserted_view.empty()) {
                scan_hits.clear();
                FilterDominated(c.inserted_view, t, &scan_hits,
                                /*strict=*/true);
                for (uint32_t j : scan_hits) {
                  PatchSkylineInsert(
                      &dominators,
                      c.overlay.inserted_competitors.data(
                          static_cast<PointId>(j)),
                      dims);
                }
              }
              LapSkyline(tel);
            }

            ++w.stats.candidates_evaluated;
            UpgradeOutcome outcome =
                UpgradeProduct(dominators, t, dims, cost_fn, epsilon);
            if (cache != nullptr) {
              // `dominators` ended as the exact GLOBAL dominator skyline
              // (the fold above spans every shard), which is precisely
              // the value set the cache's invalidation proofs run
              // against; copied before the result moves on.
              cache->Store(stable_id, t, sharded.version, epsilon, outcome,
                           dominators);
            }
            if (w.collector.Admits(outcome.cost)) {
              w.collector.Add(UpgradeResult{static_cast<PointId>(stable_id),
                                            outcome.cost,
                                            std::move(outcome.upgraded),
                                            outcome.already_competitive});
              threshold.RelaxTo(w.collector.KthCost());
            }
            LapUpgrade(tel);
          };

          const Dataset& own_products = own.products();
          for (size_t i = 0; i < own_products.size() && !should_stop();
               ++i) {
            if (own_ctx.overlay.product_erased[i] != 0) continue;
            evaluate(own.product_id(static_cast<PointId>(i)),
                     own_products.data(static_cast<PointId>(i)));
          }
          for (size_t j = 0; j < own_ctx.overlay.inserted_products.size() &&
                             !should_stop();
               ++j) {
            evaluate(own_ctx.overlay.inserted_product_ids[j],
                     own_ctx.overlay.inserted_products.data(
                         static_cast<PointId>(j)));
          }
          // Residual loop/collector time since the last lap — charged on
          // both exits, so a cancelled worker still reports its phases.
          LapMerge(tel);
          w.wall_seconds = worker_wall.ElapsedSeconds();
        }
      });

  if (info != nullptr) {
    info->shard_count = static_cast<uint32_t>(num_shards);
    info->slowest_shard = 0;
    info->slowest_shard_seconds = workers.front().wall_seconds;
    for (size_t s = 1; s < num_shards; ++s) {
      if (workers[s].wall_seconds > info->slowest_shard_seconds) {
        info->slowest_shard = static_cast<uint32_t>(s);
        info->slowest_shard_seconds = workers[s].wall_seconds;
      }
    }
  }
  for (WorkerState& w : workers) shared_stats.MergeFrom(w.stats);
  if (telemetry != nullptr) {
    for (size_t s = 0; s < num_shards; ++s) {
      worker_telemetry[s]->FlushInto(telemetry);
    }
  }
  if (stats != nullptr) stats->MergeFrom(shared_stats);
  {
    // The join above synchronized every worker's writes; the lock is
    // uncontended and only keeps the read disciplined.
    MutexLock lock(stop_mu);
    if (!stop_status.ok()) return stop_status;
  }

  // Gather: fold the per-worker top-k sets under the same cost-then-id
  // total order the workers used. The union of worker sweeps is exactly
  // the live product set (shards partition it), so this is the k smallest
  // of the same offer multiset the single-table engine sees.
  TopKCollector merged(k);
  for (WorkerState& w : workers) {
    for (UpgradeResult& r : w.collector.Finish()) {
      if (merged.Admits(r.cost)) merged.Add(std::move(r));
    }
  }
  return merged.Finish();
}

// Grouped scatter-gather. The batch inherits both exactness arguments of
// the single-table grouped engine (serve/query.cc): offers reach every
// member collector in candidate order, and per-member skip decisions use
// cutoffs that upper-bound that member's final k-th cost — a per-shard
// worker's cutoff is min(its local k-th, the member's cross-shard CAS-min
// threshold), both sound for the same reason as the solo engine's. The
// amortization is what makes the sharded tier saturate: the per-shard
// contexts, the global live box, and — per candidate — the global-cache
// lookup, the gather, and the upgrade are all paid once per GROUP instead
// of once per member.
void TopKShardedBatch(const ShardedView& sharded,
                      const ProductCostFunction& cost_fn,
                      const std::vector<BatchQuery>& queries, double epsilon,
                      size_t threads, std::vector<BatchQueryResult>* out,
                      ServeStats* stats) {
  SKYUP_CHECK(out != nullptr);
  SKYUP_CHECK(queries.size() >= 1 && queries.size() <= kMaxServeBatch)
      << "batch width out of range";
  const size_t n_members = queries.size();
  out->clear();
  out->resize(n_members);
  const size_t num_shards = sharded.views.size();
  Status view_status;
  if (num_shards == 0) {
    view_status = Status::InvalidArgument("sharded view has no shards");
  }
  for (const ReadView& view : sharded.views) {
    if (view.snapshot == nullptr) {
      view_status = Status::InvalidArgument("shard view has no snapshot");
      break;
    }
  }
  if (!view_status.ok()) {
    for (BatchQueryResult& r : *out) r.status = view_status;
    return;
  }
  const size_t dims = sharded.views.front().snapshot->dims();
  SKYUP_TRACE_SPAN("serve/topk-shard-batch");

  ServeStats shared_stats;
  uint64_t live_init = 0;
  for (size_t i = 0; i < n_members; ++i) {
    Status shape = ValidateTopKQueryShape(dims, cost_fn, queries[i].k,
                                          epsilon);
    if (!shape.ok()) {
      (*out)[i].status = std::move(shape);
      continue;
    }
    live_init |= uint64_t{1} << i;
  }
  const uint64_t participants =
      static_cast<uint64_t>(__builtin_popcountll(live_init));
  shared_stats.shard_queries = participants;
  shared_stats.shard_fanout = participants * num_shards;
  if (live_init == 0) {
    if (stats != nullptr) stats->MergeFrom(shared_stats);
    return;
  }

  const ShardGather gather = BuildShardGather(sharded, dims, &shared_stats);
  const std::vector<ShardContext>& ctx = gather.ctx;

  // Per-member cross-shard thresholds (one CAS-min each, exactly the solo
  // engine's), a shared live mask (bits drop when a member's control
  // fires), and first-error-wins per-member stop status.
  std::vector<AtomicCostThreshold> thresholds(n_members);
  std::atomic<uint64_t> live{live_init};
  // lint: guarded-by-ok (function-local: GUARDED_BY only applies to
  // members/globals; the ParallelFor join orders the final unlocked read)
  Mutex stop_mu;
  std::vector<Status> member_stop(n_members);

  struct WorkerState {
    std::vector<TopKCollector> collectors;  ///< one per member
    ServeStats stats;
  };
  std::vector<WorkerState> workers(num_shards);
  for (WorkerState& w : workers) {
    w.collectors.reserve(n_members);
    for (size_t i = 0; i < n_members; ++i) {
      // Dead members get a placeholder that never participates.
      w.collectors.emplace_back((live_init >> i) & 1 ? queries[i].k : 1);
    }
  }

  ParallelFor(
      num_shards, threads == 0 ? num_shards : threads,
      [&](size_t, size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s) {
          WorkerState& w = workers[s];
          const Snapshot& own = *sharded.views[s].snapshot;
          const ShardContext& own_ctx = ctx[s];

          size_t since_poll = 0;
          auto poll = [&]() {
            if (since_poll++ % QueryControl::kPollStride != 0) return;
            // lint: relaxed-ok (advisory liveness mask; the join publishes)
            uint64_t mask = live.load(std::memory_order_relaxed);
            for (uint64_t m = mask; m != 0; m &= m - 1) {
              const size_t i = static_cast<size_t>(__builtin_ctzll(m));
              const QueryControl* const control = queries[i].control;
              if (control == nullptr) continue;
              Status st = control->Check();
              if (st.ok()) continue;
              {
                MutexLock lock(stop_mu);
                if (member_stop[i].ok()) member_stop[i] = std::move(st);
              }
              // lint: relaxed-ok (advisory early-out; the join publishes)
              live.fetch_and(~(uint64_t{1} << i),
                             std::memory_order_relaxed);
            }
          };

          // Scratch reused across candidates (worker-local).
          std::vector<PointId> sky_rows;
          std::vector<uint32_t> scan_hits;
          std::vector<const double*> dominators;
          UpgradeCache* const cache = sharded.cache.get();
          UpgradeCache::Hit hit;

          auto offer = [&](uint64_t mask, uint64_t stable_id, double cost,
                           const std::vector<double>& upgraded,
                           bool already_competitive) {
            for (uint64_t m = mask; m != 0; m &= m - 1) {
              const size_t i = static_cast<size_t>(__builtin_ctzll(m));
              TopKCollector& collector = w.collectors[i];
              if (collector.Admits(cost)) {
                collector.Add(UpgradeResult{static_cast<PointId>(stable_id),
                                            cost, upgraded,
                                            already_competitive});
                thresholds[i].RelaxTo(collector.KthCost());
              }
            }
          };

          auto evaluate = [&](uint64_t stable_id, const double* t) {
            // lint: relaxed-ok (advisory liveness mask; the join publishes)
            uint64_t mask = live.load(std::memory_order_relaxed);
            if (mask == 0) return;
            // Shared global-cache lookup; the admit hint is the max k-th
            // over this worker's live members, so any member that admits
            // the hit had the payload copied (serve/query.cc).
            if (cache != nullptr) {
              double hint = -std::numeric_limits<double>::infinity();
              for (uint64_t m = mask; m != 0; m &= m - 1) {
                const double kth =
                    w.collectors[static_cast<size_t>(__builtin_ctzll(m))]
                        .KthCost();
                if (kth > hint) hint = kth;
              }
              if (cache->Lookup(stable_id, sharded.version, epsilon, hint,
                                &hit)) {
                ++w.stats.cache_hits;
                offer(mask, stable_id, hit.cost, hit.upgraded,
                      hit.already_competitive);
                return;
              }
              ++w.stats.cache_misses;
            }

            if (gather.prune_ok && gather.have_box) {
              const double bound =
                  LbcPair(t, gather.live_box.min_data(),
                          gather.live_box.max_data(), dims, cost_fn,
                          BoundMode::kSound);
              uint64_t keep = 0;
              for (uint64_t m = mask; m != 0; m &= m - 1) {
                const size_t i = static_cast<size_t>(__builtin_ctzll(m));
                const double cutoff = std::min(w.collectors[i].KthCost(),
                                               thresholds[i].Get());
                if (!(bound > cutoff)) keep |= uint64_t{1} << i;
              }
              w.stats.candidates_pruned += static_cast<uint64_t>(
                  __builtin_popcountll(mask & ~keep));
              mask = keep;
              if (mask == 0) return;
            }

            // Identical gather to the solo engine: exact global dominator
            // skyline via per-shard memoized probes + overlay folds.
            dominators.clear();
            for (size_t v = 0; v < num_shards; ++v) {
              const Snapshot& base = *sharded.views[v].snapshot;
              const ShardContext& c = ctx[v];
              SkylineMemo* const memo = sharded.views[v].memo.get();
              if (memo != nullptr &&
                  memo->Lookup(sharded.epoch, t, c.erased_indexed,
                               &sky_rows)) {
                ++w.stats.memo_hits;
              } else {
                if (memo != nullptr) ++w.stats.memo_misses;
                DominatingSkylineInto(base.index(), t, c.erase_mask,
                                      &sky_rows);
                if (memo != nullptr) {
                  memo->Store(sharded.epoch, t, c.erased_indexed, sky_rows);
                }
              }
              if (dominators.empty()) {
                for (PointId row : sky_rows) {
                  dominators.push_back(base.competitors().data(row));
                }
              } else {
                for (PointId row : sky_rows) {
                  PatchSkylineInsert(&dominators,
                                     base.competitors().data(row), dims);
                }
              }
              if (!c.tail_view.empty()) {
                scan_hits.clear();
                FilterDominated(c.tail_view, t, &scan_hits, /*strict=*/true);
                for (uint32_t j : scan_hits) {
                  const size_t row = c.indexed + j;
                  if (c.erase_mask != nullptr && c.erase_mask[row] != 0) {
                    continue;
                  }
                  PatchSkylineInsert(
                      &dominators,
                      base.competitors().data(static_cast<PointId>(row)),
                      dims);
                }
              }
              if (!c.inserted_view.empty()) {
                scan_hits.clear();
                FilterDominated(c.inserted_view, t, &scan_hits,
                                /*strict=*/true);
                for (uint32_t j : scan_hits) {
                  PatchSkylineInsert(
                      &dominators,
                      c.overlay.inserted_competitors.data(
                          static_cast<PointId>(j)),
                      dims);
                }
              }
            }

            ++w.stats.candidates_evaluated;
            UpgradeOutcome outcome =
                UpgradeProduct(dominators, t, dims, cost_fn, epsilon);
            if (cache != nullptr) {
              cache->Store(stable_id, t, sharded.version, epsilon, outcome,
                           dominators);
            }
            offer(mask, stable_id, outcome.cost, outcome.upgraded,
                  outcome.already_competitive);
          };

          const Dataset& own_products = own.products();
          for (size_t i = 0;
               i < own_products.size() &&
               // lint: relaxed-ok (advisory early-out; the join publishes)
               live.load(std::memory_order_relaxed) != 0;
               ++i) {
            poll();
            if (own_ctx.overlay.product_erased[i] != 0) continue;
            evaluate(own.product_id(static_cast<PointId>(i)),
                     own_products.data(static_cast<PointId>(i)));
          }
          for (size_t j = 0;
               j < own_ctx.overlay.inserted_products.size() &&
               // lint: relaxed-ok (advisory early-out; the join publishes)
               live.load(std::memory_order_relaxed) != 0;
               ++j) {
            poll();
            evaluate(own_ctx.overlay.inserted_product_ids[j],
                     own_ctx.overlay.inserted_products.data(
                         static_cast<PointId>(j)));
          }
        }
      });

  // The join above synchronized every worker's writes and control verdict.
  for (WorkerState& w : workers) shared_stats.MergeFrom(w.stats);
  if (stats != nullptr) stats->MergeFrom(shared_stats);
  for (size_t i = 0; i < n_members; ++i) {
    if (((live_init >> i) & 1) == 0) continue;  // shape error, already set
    if (!member_stop[i].ok()) {
      (*out)[i].status = member_stop[i];
      continue;
    }
    TopKCollector merged(queries[i].k);
    for (WorkerState& w : workers) {
      for (UpgradeResult& r : w.collectors[i].Finish()) {
        if (merged.Admits(r.cost)) merged.Add(std::move(r));
      }
    }
    (*out)[i].results = merged.Finish();
  }
}

}  // namespace skyup
