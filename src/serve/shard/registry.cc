#include "serve/shard/registry.h"

#include <utility>

namespace skyup {

namespace {

// Tenant names travel inside space-separated wire commands and become
// log/metric labels, so the charset is deliberately narrow.
bool ValidTenantName(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    c == '.';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

Result<std::shared_ptr<Server>> TenantRegistry::Create(const std::string& name,
                                                       size_t dims,
                                                       size_t shards,
                                                       size_t quota) {
  if (!ValidTenantName(name)) {
    return Status::InvalidArgument(
        "tenant names are 1-64 chars of [A-Za-z0-9._-]");
  }
  if (dims == 0) {
    return Status::InvalidArgument("tenant dims must be >= 1");
  }
  MutexLock lock(mu_);
  if (tenants_.count(name) != 0) {
    return Status::FailedPrecondition("tenant '" + name + "' already exists");
  }
  ServerOptions options = base_;
  options.dims = dims;
  options.shards = shards;
  if (quota > 0) options.max_pending = quota;
  options.tenant_id = next_tenant_id_ + 1;
  Result<std::unique_ptr<Server>> server = Server::Create(
      ProductCostFunction::ReciprocalSum(dims, 1e-3), std::move(options));
  if (!server.ok()) return server.status();
  ++next_tenant_id_;
  std::shared_ptr<Server> shared = std::move(server).value();
  tenants_.emplace(name, shared);
  return shared;
}

Result<std::shared_ptr<Server>> TenantRegistry::Find(
    const std::string& name) const {
  MutexLock lock(mu_);
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    return Status::NotFound("no tenant '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> TenantRegistry::Names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, server] : tenants_) names.push_back(name);
  return names;
}

size_t TenantRegistry::size() const {
  MutexLock lock(mu_);
  return tenants_.size();
}

}  // namespace skyup
