#ifndef SKYUP_SERVE_SERVER_H_
#define SKYUP_SERVE_SERVER_H_

// The serving front door: a bounded-queue session executor over one
// `LiveTable`. Updates apply synchronously (validated, logged, visible);
// queries either run inline (`Query`, the deterministic path) or through
// the worker pool (`Submit`) with admission control — a full queue rejects
// with `kResourceExhausted` instead of building unbounded backlog — and
// per-query deadlines enforced cooperatively by the overlay engine
// (core/query_control.h). Snapshot regeneration runs on the background
// `Rebuilder`, or inline after each update when
// `ServerOptions::background_rebuild` is false (replay mode).

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/cost_function.h"
#include "core/query_control.h"
#include "obs/metrics.h"
#include "serve/live_table.h"
#include "serve/query.h"
#include "serve/rebuilder.h"
#include "serve/serve_stats.h"
#include "util/lock_order.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace skyup {

struct ServerOptions {
  size_t dims = 0;  ///< required, >= 1
  /// Worker threads draining the `Submit` queue.
  size_t query_threads = 2;
  /// Admission control: queued-but-not-started queries beyond this are
  /// rejected with `kResourceExhausted`.
  size_t max_pending = 64;
  double default_epsilon = 1e-6;
  size_t rtree_fanout = 64;
  /// Rebuild triggers and publish policy (serve/rebuilder.h).
  size_t rebuild_threshold_ops = 1024;
  double rebuild_max_age_seconds = 0.0;
  /// Storm hysteresis (background rebuilder): the age trigger needs at
  /// least this backlog, and publishes are rate-capped to one per
  /// interval. Echoed into ServeStats.
  size_t publish_min_backlog = 1;
  double publish_min_interval_seconds = 0.0;
  /// Patch-vs-major escalation thresholds (percent of indexed slots);
  /// rebuilder.h explains the defaults.
  size_t compact_tombstone_pct = 50;
  size_t compact_tail_pct = 150;
  /// True: a background rebuilder thread folds the delta log. False: the
  /// size threshold is applied inline after each accepted update —
  /// deterministic, used by `--replay`.
  bool background_rebuild = true;
  /// Grouped execution width: workers drain up to this many queued queries
  /// and run them as one shared traversal (serve/query.h,
  /// TopKOverlayBatch). 1 = per-query execution (the batching-off
  /// baseline); max kMaxServeBatch. Results are bit-identical either way.
  size_t batch_max = 1;
  /// With batch_max > 1: a worker that finds fewer than batch_max queued
  /// queries waits up to this long for more before executing what it has.
  /// 0 = never wait (drain whatever is queued).
  size_t batch_wait_us = 200;
  /// Byte budget (in MB) of the epoch-scoped skyline memo shared by all
  /// queries (serve/skyline_memo.h); 0 disables memoization.
  size_t memo_cache_mb = 16;
};

struct QueryRequest {
  size_t k = 1;
  /// 0 = no deadline. Enforced from submission time (queue wait counts).
  double timeout_seconds = 0.0;
  /// Optional external cancel/deadline token; when set, the server uses it
  /// instead of allocating one (the caller may `Cancel()` it any time).
  std::shared_ptr<QueryControl> control;
};

struct QueryResponse {
  Status status;  ///< OK, kResourceExhausted, kDeadlineExceeded, kCancelled
  /// Ranked results; `product_id` carries the *stable id*.
  std::vector<UpgradeResult> results;
  /// Epoch of the snapshot the query ran against (0 if it never ran).
  uint64_t epoch = 0;
  double wall_seconds = 0.0;
};

class Server {
 public:
  static Result<std::unique_ptr<Server>> Create(ProductCostFunction cost_fn,
                                                ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Update API — thin validated wrappers over the live table; rejected
  /// updates are counted but change nothing.
  Result<uint64_t> InsertCompetitor(const std::vector<double>& coords);
  Result<uint64_t> InsertProduct(const std::vector<double>& coords);
  Status EraseCompetitor(uint64_t id);
  Status EraseProduct(uint64_t id);

  /// Runs the query inline on the calling thread (still honors the
  /// request's deadline/control). The deterministic path.
  QueryResponse Query(const QueryRequest& request);

  /// Runs a group of queries inline as ONE shared traversal (the
  /// deterministic grouped path `--replay` uses when batching is on).
  /// `responses[i]` corresponds to `requests[i]` and is bit-identical to
  /// `Query(requests[i])`. Group size must be <= kMaxServeBatch.
  std::vector<QueryResponse> QueryBatch(
      const std::vector<QueryRequest>& requests);

  /// Enqueues the query for the worker pool. The future always resolves:
  /// with results, with the admission rejection, or with the
  /// deadline/cancel status.
  std::future<QueryResponse> Submit(QueryRequest request);

  /// Aggregate counters since construction (one consistent copy).
  ServeStats stats() const;

  /// Registers the serve counters, liveness gauges (epoch, snapshot age,
  /// delta backlog, live row counts), and the query latency histogram.
  void FillMetrics(MetricsRegistry* registry) const;

  LiveTable& table() { return *table_; }
  const ServerOptions& options() const { return options_; }

  /// Test seam: while held, workers do not dequeue — admission and
  /// deadline behavior become deterministic to test.
  void HoldWorkersForTest();
  void ReleaseWorkersForTest();

 private:
  Server(ProductCostFunction cost_fn, ServerOptions options,
         std::unique_ptr<LiveTable> table);

  struct PendingQuery {
    QueryRequest request;
    std::promise<QueryResponse> promise;
    std::shared_ptr<QueryControl> control;
  };

  QueryResponse Execute(const QueryRequest& request,
                        const QueryControl* control);
  std::vector<QueryResponse> ExecuteBatch(
      const std::vector<const QueryRequest*>& requests,
      const std::vector<const QueryControl*>& controls);
  /// Callable while holding `queue_mu_` (Submit records rejections inside
  /// its admission critical section — the queue -> stats edge of the
  /// declared lock order), but never while holding `stats_mu_` itself.
  void RecordOutcome(const QueryResponse& response)
      SKYUP_EXCLUDES(stats_mu_);
  void AfterUpdate(const Result<uint64_t>& outcome)
      SKYUP_EXCLUDES(stats_mu_);
  void AfterUpdate(const Status& outcome) SKYUP_EXCLUDES(stats_mu_);
  void WorkerLoop() SKYUP_EXCLUDES(queue_mu_, stats_mu_);

  ProductCostFunction cost_fn_;
  ServerOptions options_;
  std::unique_ptr<LiveTable> table_;
  std::unique_ptr<Rebuilder> rebuilder_;
  RebuildPolicy inline_policy_;

  // kServerStats band: acquired under `queue_mu_` (Submit's rejection
  // accounting) and above the rebuilder lock (stats() reads the publish
  // counters) and the metrics registry (FillMetrics exports under it).
  mutable Mutex stats_mu_ SKYUP_ACQUIRED_AFTER(lock_order::kServerStats)
      SKYUP_ACQUIRED_BEFORE(lock_order::kRebuilder);
  ServeStats stats_ SKYUP_GUARDED_BY(stats_mu_);
  Histogram query_latency_ SKYUP_GUARDED_BY(stats_mu_){
      Histogram::DefaultLatencyBucketsSeconds()};
  /// Queries per grouped execution (observed per drain when batching on).
  Histogram batch_size_ SKYUP_GUARDED_BY(stats_mu_){
      {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}};

  // kServerQueue band: the outermost lock in the process — nothing is
  // ever acquired before it.
  Mutex queue_mu_ SKYUP_ACQUIRED_AFTER(lock_order::kServerQueue)
      SKYUP_ACQUIRED_BEFORE(lock_order::kServerStats);
  CondVar queue_cv_;
  std::deque<PendingQuery> queue_ SKYUP_GUARDED_BY(queue_mu_);
  bool shutdown_ SKYUP_GUARDED_BY(queue_mu_) = false;
  bool hold_workers_ SKYUP_GUARDED_BY(queue_mu_) = false;
  /// Written once at construction, joined once at destruction; no guard.
  std::vector<std::thread> workers_;
};

}  // namespace skyup

#endif  // SKYUP_SERVE_SERVER_H_
