#ifndef SKYUP_SERVE_SERVER_H_
#define SKYUP_SERVE_SERVER_H_

// The serving front door: a bounded-queue session executor over one
// `LiveTable`. Updates apply synchronously (validated, logged, visible);
// queries either run inline (`Query`, the deterministic path) or through
// the worker pool (`Submit`) with admission control — a full queue rejects
// with `kResourceExhausted` instead of building unbounded backlog — and
// per-query deadlines enforced cooperatively by the overlay engine
// (core/query_control.h). Snapshot regeneration runs on the background
// `Rebuilder`, or inline after each update when
// `ServerOptions::background_rebuild` is false (replay mode).

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "core/cost_function.h"
#include "core/query_control.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "serve/live_table.h"
#include "serve/query.h"
#include "serve/rebuilder.h"
#include "serve/serve_stats.h"
#include "serve/shard/shard_query.h"
#include "util/lock_order.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace skyup {

struct ServerOptions {
  size_t dims = 0;  ///< required, >= 1
  /// Shard-per-core serving: 0 keeps the single-`LiveTable` path
  /// byte-for-byte (the historical server); N >= 1 partitions P (and
  /// co-partitions T) into N spatial shards behind one id space and one
  /// cross-shard epoch (serve/shard/sharded_table.h), and queries run the
  /// scatter-gather engine (serve/shard/shard_query.h). Results are
  /// byte-identical for any value — fuzz/fuzz_shard.cc and the `--shards`
  /// replay CI guard enforce it.
  size_t shards = 0;
  /// Scatter-gather workers per sharded query; 0 = one per shard. Serial
  /// scatter (1) trades per-query latency for cross-query throughput when
  /// the worker pool already saturates the cores. Results are identical
  /// either way (offer-order independence).
  size_t shard_query_threads = 0;
  /// Front-door tenant id stamped into flight records (0 = single-tenant).
  uint64_t tenant_id = 0;
  /// Worker threads draining the `Submit` queue.
  size_t query_threads = 2;
  /// Admission control: queued-but-not-started queries beyond this are
  /// rejected with `kResourceExhausted`.
  size_t max_pending = 64;
  double default_epsilon = 1e-6;
  size_t rtree_fanout = 64;
  /// Rebuild triggers and publish policy (serve/rebuilder.h).
  size_t rebuild_threshold_ops = 1024;
  double rebuild_max_age_seconds = 0.0;
  /// Storm hysteresis (background rebuilder): the age trigger needs at
  /// least this backlog, and publishes are rate-capped to one per
  /// interval. Echoed into ServeStats.
  size_t publish_min_backlog = 1;
  double publish_min_interval_seconds = 0.0;
  /// Patch-vs-major escalation thresholds (percent of indexed slots);
  /// rebuilder.h explains the defaults.
  size_t compact_tombstone_pct = 50;
  size_t compact_tail_pct = 150;
  /// True: a background rebuilder thread folds the delta log. False: the
  /// size threshold is applied inline after each accepted update —
  /// deterministic, used by `--replay`.
  bool background_rebuild = true;
  /// Grouped execution width: workers drain up to this many queued queries
  /// and run them as one shared traversal (serve/query.h,
  /// TopKOverlayBatch). 1 = per-query execution (the batching-off
  /// baseline); max kMaxServeBatch. Results are bit-identical either way.
  size_t batch_max = 1;
  /// With batch_max > 1: a worker that finds fewer than batch_max queued
  /// queries waits up to this long for more before executing what it has.
  /// 0 = never wait (drain whatever is queued).
  size_t batch_wait_us = 200;
  /// Byte budget (in MB) of the epoch-scoped skyline memo shared by all
  /// queries (serve/skyline_memo.h); 0 disables memoization.
  size_t memo_cache_mb = 16;
  /// Flight recorder (obs/flight_recorder.h): always-on bounded-memory
  /// rings of completed-query records and periodic system samples, kept
  /// for post-hoc dumps. Observe-only — turning it off changes nothing
  /// but the per-query record cost (one relaxed load when off).
  bool flight_recorder = true;
  size_t flight_query_ring = 1024;  ///< completed-query records retained
  size_t flight_sample_ring = 256;  ///< system samples retained
  /// Queries whose end-to-end latency reaches this many microseconds are
  /// promoted: marked slow in their flight record and emitted as a
  /// structured-log record carrying their retained trace spans.
  /// 0 disables promotion.
  uint64_t slow_query_us = 0;
  /// Period of background system samples; each lands in the sample ring
  /// and is emitted as a structured-log heartbeat. 0 = no sampler (a
  /// fresh sample is still taken at every dump).
  size_t stats_interval_ms = 0;
  /// Where `RequestDump()` (e.g. a SIGUSR1 handler) writes the JSONL
  /// diagnostics dump. Empty = dump requests are ignored. The
  /// diagnostics thread runs when this is set or the sampler is on.
  std::string flight_dump_path;
};

struct QueryRequest {
  size_t k = 1;
  /// 0 = no deadline. Enforced from submission time (queue wait counts).
  double timeout_seconds = 0.0;
  /// Optional external cancel/deadline token; when set, the server uses it
  /// instead of allocating one (the caller may `Cancel()` it any time).
  std::shared_ptr<QueryControl> control;
};

struct QueryResponse {
  Status status;  ///< OK, kResourceExhausted, kDeadlineExceeded, kCancelled
  /// Ranked results; `product_id` carries the *stable id*.
  std::vector<UpgradeResult> results;
  /// Epoch of the snapshot the query ran against (0 if it never ran).
  uint64_t epoch = 0;
  double wall_seconds = 0.0;
};

class Server {
 public:
  static Result<std::unique_ptr<Server>> Create(ProductCostFunction cost_fn,
                                                ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Update API — thin validated wrappers over the live table; rejected
  /// updates are counted but change nothing.
  Result<uint64_t> InsertCompetitor(const std::vector<double>& coords);
  Result<uint64_t> InsertProduct(const std::vector<double>& coords);
  Status EraseCompetitor(uint64_t id);
  Status EraseProduct(uint64_t id);

  /// Runs the query inline on the calling thread (still honors the
  /// request's deadline/control). The deterministic path.
  QueryResponse Query(const QueryRequest& request);

  /// Runs a group of queries inline as ONE shared traversal (the
  /// deterministic grouped path `--replay` uses when batching is on).
  /// `responses[i]` corresponds to `requests[i]` and is bit-identical to
  /// `Query(requests[i])`. Group size must be <= kMaxServeBatch.
  std::vector<QueryResponse> QueryBatch(
      const std::vector<QueryRequest>& requests);

  /// Enqueues the query for the worker pool. The future always resolves:
  /// with results, with the admission rejection, or with the
  /// deadline/cancel status.
  std::future<QueryResponse> Submit(QueryRequest request);

  /// Aggregate counters since construction (one consistent copy).
  ServeStats stats() const;

  /// Dumps the flight recorder as JSONL (`flight_meta`, `query`, and
  /// `sample` lines). Takes one fresh system sample first, so the dump
  /// always ends with the state of "now". Observe-only and safe on a
  /// live server — admission and workers are never paused.
  void DumpDiagnostics(std::ostream& out);

  /// Requests an asynchronous diagnostics dump to
  /// `options().flight_dump_path`, drained by the diagnostics thread.
  /// Async-signal-safe: one lock-free atomic store, nothing else — this
  /// is exactly what a SIGUSR1 handler may call.
  void RequestDump() {
    // lint: relaxed-ok (lone request flag; the diagnostics thread polls
    // it and a late observation only delays the dump by one poll)
    dump_requested_.store(true, std::memory_order_relaxed);
  }

  /// The recorder itself, for tests and external dump plumbing.
  FlightRecorder& flight_recorder() { return recorder_; }

  /// Registers the serve counters, liveness gauges (epoch, snapshot age,
  /// delta backlog, live row counts), and the query latency histogram.
  void FillMetrics(MetricsRegistry* registry) const;

  /// Mode-independent liveness accessors (replay and the load generator
  /// use these; `table()` only exists on the unsharded path).
  uint64_t CurrentEpoch() const;
  size_t DeltaBacklog() const;

  bool sharded() const { return sharded_ != nullptr; }
  /// Unsharded mode only (shards == 0); the historical accessor.
  LiveTable& table() { return *table_; }
  /// Sharded mode only (shards >= 1).
  ShardedTable& sharded_table() { return *sharded_; }
  const ServerOptions& options() const { return options_; }

  /// Test seam: while held, workers do not dequeue — admission and
  /// deadline behavior become deterministic to test.
  void HoldWorkersForTest();
  void ReleaseWorkersForTest();

 private:
  /// Exactly one of `table` / `sharded` is set, per `options.shards`.
  Server(ProductCostFunction cost_fn, ServerOptions options,
         std::unique_ptr<LiveTable> table,
         std::unique_ptr<ShardedTable> sharded);

  struct PendingQuery {
    QueryRequest request;
    std::promise<QueryResponse> promise;
    std::shared_ptr<QueryControl> control;
    SteadyClock::time_point admitted{};  ///< for queue-wait attribution
  };

  /// `record` may be null (recorder off); when set, Execute fills the
  /// execution-side fields (epoch, k, results, counters, phases).
  QueryResponse Execute(const QueryRequest& request,
                        const QueryControl* control,
                        QueryFlightRecord* record);
  std::vector<QueryResponse> ExecuteBatch(
      const std::vector<const QueryRequest*>& requests,
      const std::vector<const QueryControl*>& controls,
      std::vector<QueryFlightRecord>* records);
  /// Callable while holding `queue_mu_` (Submit records rejections inside
  /// its admission critical section — the queue -> stats edge of the
  /// declared lock order), but never while holding `stats_mu_` itself.
  void RecordOutcome(const QueryResponse& response)
      SKYUP_EXCLUDES(stats_mu_);
  void AfterUpdate(const Result<uint64_t>& outcome)
      SKYUP_EXCLUDES(stats_mu_);
  void AfterUpdate(const Status& outcome) SKYUP_EXCLUDES(stats_mu_);
  void WorkerLoop() SKYUP_EXCLUDES(queue_mu_, stats_mu_);

  /// Admission-order query id; 0 is reserved for "never admitted".
  uint64_t NextQueryId() {
    // lint: relaxed-ok (pure id allocation; only uniqueness matters)
    return next_query_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  /// Stamps outcome fields (id, status, timing, slow promotion) and
  /// appends the record to the flight ring. `record` null = recorder off.
  void FinishFlight(QueryFlightRecord* record, const QueryResponse& response,
                    uint64_t query_id, double queue_seconds);
  /// Flight record for an admission rejection (shutdown / queue full).
  /// Called under `queue_mu_`; the recorder lock is a kObsFlight leaf, so
  /// the nesting is within the declared order.
  void RecordRejection(const QueryControl& control,
                       const QueryResponse& response);
  /// One consistent system sample into the sample ring; heartbeat=true
  /// also emits it as a structured-log record.
  void TakeSystemSample(bool heartbeat)
      SKYUP_EXCLUDES(queue_mu_, stats_mu_);
  void DiagnosticsLoop() SKYUP_EXCLUDES(diag_mu_);
  void WriteRequestedDump();

  ProductCostFunction cost_fn_;
  ServerOptions options_;
  std::unique_ptr<LiveTable> table_;      ///< shards == 0
  std::unique_ptr<ShardedTable> sharded_;  ///< shards >= 1
  std::unique_ptr<Rebuilder> rebuilder_;
  RebuildPolicy inline_policy_;

  // kServerStats band: acquired under `queue_mu_` (Submit's rejection
  // accounting) and above the rebuilder lock (stats() reads the publish
  // counters) and the metrics registry (FillMetrics exports under it).
  mutable Mutex stats_mu_ SKYUP_ACQUIRED_AFTER(lock_order::kServerStats)
      SKYUP_ACQUIRED_BEFORE(lock_order::kRebuilder);
  ServeStats stats_ SKYUP_GUARDED_BY(stats_mu_);
  Histogram query_latency_ SKYUP_GUARDED_BY(stats_mu_){
      Histogram::DefaultLatencyBucketsSeconds()};
  /// Queries per grouped execution (observed per drain when batching on).
  Histogram batch_size_ SKYUP_GUARDED_BY(stats_mu_){
      {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}};

  // kServerQueue band: the outermost lock in the process — nothing is
  // ever acquired before it.
  Mutex queue_mu_ SKYUP_ACQUIRED_AFTER(lock_order::kServerQueue)
      SKYUP_ACQUIRED_BEFORE(lock_order::kServerStats);
  CondVar queue_cv_;
  std::deque<PendingQuery> queue_ SKYUP_GUARDED_BY(queue_mu_);
  bool shutdown_ SKYUP_GUARDED_BY(queue_mu_) = false;
  bool hold_workers_ SKYUP_GUARDED_BY(queue_mu_) = false;
  /// Written once at construction, joined once at destruction; no guard.
  std::vector<std::thread> workers_;

  // Flight recorder + diagnostics thread. The recorder has its own leaf
  // lock (kObsFlight); `diag_mu_` only covers the sampler's shutdown
  // handshake and is never held while sampling, so it sits beside
  // `queue_mu_` in the order without nesting anything.
  FlightRecorder recorder_;
  std::atomic<uint64_t> next_query_id_{0};
  std::atomic<uint64_t> next_batch_id_{0};
  std::atomic<bool> dump_requested_{false};
  Mutex diag_mu_ SKYUP_ACQUIRED_AFTER(lock_order::kServerQueue)
      SKYUP_ACQUIRED_BEFORE(lock_order::kServerStats);
  CondVar diag_cv_;
  bool diag_shutdown_ SKYUP_GUARDED_BY(diag_mu_) = false;
  std::thread diag_thread_;  ///< joined at destruction; no guard
};

}  // namespace skyup

#endif  // SKYUP_SERVE_SERVER_H_
