#include "serve/live_table.h"

#include <string>
#include <utility>

#include "serve/skyline_memo.h"
#include "serve/upgrade_cache.h"
#include "util/check.h"

namespace skyup {

LiveTable::LiveTable(LiveTableOptions options) : options_(options) {
  index_options_.max_entries = options_.rtree_fanout;
}

Result<std::unique_ptr<LiveTable>> LiveTable::Create(
    LiveTableOptions options) {
  if (options.dims < 1) {
    return Status::InvalidArgument("live table dims must be >= 1");
  }
  if (options.rtree_fanout < 2) {
    return Status::InvalidArgument("R-tree fanout must be at least 2");
  }
  std::unique_ptr<LiveTable> table(new LiveTable(options));
  Result<std::shared_ptr<const Snapshot>> initial = Snapshot::Create(
      /*epoch=*/1, Dataset(options.dims), {}, Dataset(options.dims), {},
      table->index_options_);
  if (!initial.ok()) return initial.status();
  {
    // The table is not shared yet, so the lock is uncontended — taken only
    // so the GUARDED_BY invariant on these members holds on every write.
    MutexLock lock(table->mu_);
    table->snapshot_ = std::move(initial).value();
    if (options.upgrade_cache) {
      table->cache_ = std::make_shared<UpgradeCache>(options.dims);
    }
    if (options.memo_cache_bytes > 0) {
      table->memo_ = std::make_shared<SkylineMemo>(options.dims,
                                                   options.memo_cache_bytes);
    }
  }
  return table;
}

Result<uint64_t> LiveTable::Insert(DeltaTarget target,
                                   const std::vector<double>& coords,
                                   uint64_t forced_id) {
  if (coords.size() != options_.dims) {
    return Status::InvalidArgument(
        "insert has " + std::to_string(coords.size()) + " coords, table is " +
        std::to_string(options_.dims) + "-dimensional");
  }
  MutexLock lock(mu_);
  const bool is_competitor = target == DeltaTarget::kCompetitor;
  uint64_t& counter =
      is_competitor ? next_competitor_id_ : next_product_id_;
  const uint64_t id = forced_id != 0 ? forced_id : counter++;
  if (forced_id != 0 && counter <= forced_id) counter = forced_id + 1;
  DeltaOp op{target, DeltaKind::kInsert, id, coords};
  active_.Append(op);
  if (cache_ != nullptr) cache_->OnDeltaOp(op);
  (is_competitor ? live_competitors_ : live_products_).insert(id);
  return id;
}

Status LiveTable::Erase(DeltaTarget target, uint64_t id) {
  MutexLock lock(mu_);
  const bool is_competitor = target == DeltaTarget::kCompetitor;
  std::unordered_set<uint64_t>& live =
      is_competitor ? live_competitors_ : live_products_;
  if (live.erase(id) == 0) {
    return Status::NotFound(
        std::string(is_competitor ? "competitor" : "product") + " id " +
        std::to_string(id) + " is not live");
  }
  DeltaOp op{target, DeltaKind::kErase, id, {}};
  active_.Append(op);
  if (cache_ != nullptr) cache_->OnDeltaOp(op);
  return Status::OK();
}

Result<uint64_t> LiveTable::InsertCompetitor(
    const std::vector<double>& coords) {
  return Insert(DeltaTarget::kCompetitor, coords, /*forced_id=*/0);
}

Result<uint64_t> LiveTable::InsertProduct(const std::vector<double>& coords) {
  return Insert(DeltaTarget::kProduct, coords, /*forced_id=*/0);
}

Result<uint64_t> LiveTable::InsertCompetitorWithId(
    uint64_t id, const std::vector<double>& coords) {
  if (id == 0) return Status::InvalidArgument("stable id 0 is reserved");
  return Insert(DeltaTarget::kCompetitor, coords, id);
}

Result<uint64_t> LiveTable::InsertProductWithId(
    uint64_t id, const std::vector<double>& coords) {
  if (id == 0) return Status::InvalidArgument("stable id 0 is reserved");
  return Insert(DeltaTarget::kProduct, coords, id);
}

Status LiveTable::EraseCompetitor(uint64_t id) {
  return Erase(DeltaTarget::kCompetitor, id);
}

Status LiveTable::EraseProduct(uint64_t id) {
  return Erase(DeltaTarget::kProduct, id);
}

ReadView LiveTable::AcquireView() const {
  MutexLock lock(mu_);
  ReadView view;
  view.snapshot = snapshot_;
  view.deltas = frozen_;
  std::vector<DeltaOp> active = active_.CopyAll();
  view.deltas.insert(view.deltas.end(),
                     std::make_move_iterator(active.begin()),
                     std::make_move_iterator(active.end()));
  // Under the same mutex that serialized every OnDeltaOp, so the version
  // stamp is exactly the op count this view's deltas reflect.
  view.version = cache_ != nullptr ? cache_->version() : 0;
  view.cache = cache_;
  view.memo = memo_;
  return view;
}

void LiveTable::SetAppendHook(DeltaLog::AppendHook hook) {
  MutexLock lock(mu_);
  active_.SetAppendHook(std::move(hook));
}

uint64_t LiveTable::epoch() const {
  MutexLock lock(mu_);
  return snapshot_->epoch();
}

size_t LiveTable::delta_backlog() const {
  MutexLock lock(mu_);
  return frozen_.size() + active_.size();
}

double LiveTable::snapshot_age_seconds() const {
  MutexLock lock(mu_);
  return std::chrono::duration<double>(SteadyClock::now() -
                                       snapshot_->published_at())
      .count();
}

size_t LiveTable::live_competitor_count() const {
  MutexLock lock(mu_);
  return live_competitors_.size();
}

size_t LiveTable::live_product_count() const {
  MutexLock lock(mu_);
  return live_products_.size();
}

LiveTable::Diagnostics LiveTable::SampleDiagnostics() const {
  MutexLock lock(mu_);
  Diagnostics d;
  d.epoch = snapshot_->epoch();
  d.snapshot_age_seconds =
      std::chrono::duration<double>(SteadyClock::now() -
                                    snapshot_->published_at())
          .count();
  d.delta_backlog = frozen_.size() + active_.size();
  const FlatRTree& index = snapshot_->index();
  if (index.size() > 0) {
    d.tombstone_pct = 100.0 * static_cast<double>(index.tombstones()) /
                      static_cast<double>(index.size());
  }
  // bytes_used() takes the memo's internal shard locks — kTableSub band,
  // nested under mu_ exactly like every other memo call under the table
  // lock.
  if (memo_ != nullptr) d.memo_bytes = memo_->bytes_used();
  d.live_competitors = live_competitors_.size();
  d.live_products = live_products_.size();
  return d;
}

std::optional<LiveTable::RebuildJob> LiveTable::BeginRebuild(
    bool allow_empty) {
  MutexLock lock(mu_);
  if (rebuild_in_flight_) return std::nullopt;
  std::vector<DeltaOp> active = active_.CopyAll();
  if (!allow_empty && frozen_.empty() && active.empty()) return std::nullopt;
  // Freeze: the active ops move behind the frozen fence; the active log
  // restarts empty so updates racing with the merge land after the fence.
  frozen_.insert(frozen_.end(), std::make_move_iterator(active.begin()),
                 std::make_move_iterator(active.end()));
  active_.Clear();
  rebuild_in_flight_ = true;
  RebuildJob job;
  job.base = snapshot_;
  job.ops = frozen_;
  job.next_epoch = snapshot_->epoch() + 1;
  return job;
}

void LiveTable::CompleteRebuild(std::shared_ptr<const Snapshot> snapshot) {
  SKYUP_CHECK(snapshot != nullptr);
  MutexLock lock(mu_);
  SKYUP_CHECK(rebuild_in_flight_)
      << "CompleteRebuild without a matching BeginRebuild";
  SKYUP_CHECK(snapshot->epoch() == snapshot_->epoch() + 1)
      << "rebuild produced epoch " << snapshot->epoch() << ", expected "
      << snapshot_->epoch() + 1;
  snapshot_ = std::move(snapshot);
  frozen_.clear();
  rebuild_in_flight_ = false;
  // Epoch rollover: old-epoch memo entries can never match new-epoch
  // lookups (entries self-describe their epoch), so dropping the cache is
  // purely memory reclamation — the "free invalidation" of epoch scoping.
  if (memo_ != nullptr) memo_->OnPublish();
}

void LiveTable::AbandonRebuild() {
  MutexLock lock(mu_);
  SKYUP_CHECK(rebuild_in_flight_)
      << "AbandonRebuild without a matching BeginRebuild";
  rebuild_in_flight_ = false;
}

}  // namespace skyup
