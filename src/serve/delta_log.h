#ifndef SKYUP_SERVE_DELTA_LOG_H_
#define SKYUP_SERVE_DELTA_LOG_H_

// The append-only delta pipeline between snapshots: every accepted update
// (insert/erase on P or T) becomes a `DeltaOp` in a `DeltaLog`; queries
// fold the log's prefix into a `DeltaOverlay` over their snapshot, and the
// rebuilder folds the whole log into the next snapshot.
//
// Overlay soundness (full argument in docs/algorithms.md):
//   - erased competitors are composed into the index probe as a per-row
//     mask (DominatingSkylineInto): a masked point never enters the
//     traversal's dominance window, so live dominators it would have
//     shadowed are discovered by the same probe — exactness without any
//     linear rescan;
//   - inserted competitors (and the snapshot's unindexed tail) are scanned
//     through the batched dominance kernels and folded into the probed
//     skyline one point at a time (skyline/incremental.h), preserving the
//     value set a from-scratch skyline reduction would produce;
//   - the box lower-bound prune stays sound because live-node MBRs are
//     re-tightened on every index tombstone and a query's prune is
//     disabled when a *pending* overlay erase touches a face of the live
//     bounding box (serve/query.cc has the face argument).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/dataset.h"
#include "core/dominance_batch.h"
#include "serve/snapshot.h"
#include "util/lock_order.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace skyup {

class UpgradeCache;
class SkylineMemo;

enum class DeltaTarget : uint8_t {
  kCompetitor,  ///< the paper's P
  kProduct,     ///< the paper's T
};

enum class DeltaKind : uint8_t { kInsert, kErase };

/// One accepted update. `coords` is sized `dims` for inserts and empty for
/// erases; `id` is the table-scoped stable id the op creates or removes.
struct DeltaOp {
  DeltaTarget target = DeltaTarget::kCompetitor;
  DeltaKind kind = DeltaKind::kInsert;
  uint64_t id = 0;
  std::vector<double> coords;
};

/// Append-only op buffer with write-ahead semantics: the append hook (a
/// durability seam — tests assert on it, a real deployment would fsync a
/// WAL record in it) runs *before* the op becomes visible to any reader.
/// Appends are serialized; reads snapshot a prefix under a shared lock.
class DeltaLog {
 public:
  using AppendHook = std::function<void(const DeltaOp&)>;

  DeltaLog() = default;
  DeltaLog(const DeltaLog&) = delete;
  DeltaLog& operator=(const DeltaLog&) = delete;

  /// Installs the write-ahead hook (null to clear). Takes the log's write
  /// lock, but is still not synchronized with the hook *invocation* in
  /// Append (which deliberately runs unlocked) — install before the log
  /// goes live.
  void SetAppendHook(AppendHook hook);

  /// Appends one op. The hook observes the op strictly before any reader
  /// can (write-ahead visibility point); it runs outside the log's lock,
  /// so it may read the log. Appends must be externally serialized (the
  /// live table holds its mutex across Append).
  void Append(DeltaOp op);

  size_t size() const;
  bool empty() const { return size() == 0; }

  /// Copies ops `[0, end)` in append order. `end` is clamped to `size()`.
  std::vector<DeltaOp> CopyPrefix(size_t end) const;

  /// Copies everything appended so far.
  std::vector<DeltaOp> CopyAll() const;

  /// Drops all ops (rebuild absorbed them). Caller must guarantee no
  /// reader still expects them — in the live table, the frozen log is
  /// cleared only after its replacement snapshot is published.
  void Clear();

 private:
  mutable SharedMutex mu_ SKYUP_ACQUIRED_AFTER(lock_order::kTableSub)
      SKYUP_ACQUIRED_BEFORE(lock_order::kObsRegistry);
  AppendHook hook_ SKYUP_GUARDED_BY(mu_);
  std::vector<DeltaOp> ops_ SKYUP_GUARDED_BY(mu_);
};

/// What one query runs against: an immutable snapshot plus the delta ops
/// accepted before the view was taken. Capturing a view is cheap (one
/// shared_ptr copy + one op-vector copy of the bounded backlog); the view
/// stays consistent forever, no matter what publishes after it.
struct ReadView {
  std::shared_ptr<const Snapshot> snapshot;
  std::vector<DeltaOp> deltas;  ///< frozen ++ active, in append order
  /// Count of ops the table had accepted when the view was captured — the
  /// validity clock for `cache` (serve/upgrade_cache.h). The cache is the
  /// table's shared upgrade-result cache; null disables caching for
  /// queries through this view.
  uint64_t version = 0;
  std::shared_ptr<UpgradeCache> cache;
  /// The table's shared epoch-scoped skyline memo (serve/skyline_memo.h);
  /// null disables dominator-skyline memoization for this view.
  std::shared_ptr<SkylineMemo> memo;

  uint64_t epoch() const { return snapshot->epoch(); }
};

/// The delta log digested for one query: erase bitmaps over the snapshot's
/// base rows, plus the alive inserted rows of both tables. Inserted
/// competitors are also mirrored into an SoA block so the per-candidate
/// dominator scan runs through the batched kernels.
struct DeltaOverlay {
  explicit DeltaOverlay(size_t dims)
      : inserted_competitors(dims),
        inserted_products(dims),
        competitor_block(dims) {}

  /// `competitor_erased[row]` != 0 iff the snapshot's competitor row was
  /// erased after the snapshot was cut. Same for products.
  std::vector<uint8_t> competitor_erased;
  std::vector<uint8_t> product_erased;
  size_t competitors_erased = 0;
  size_t products_erased = 0;
  /// The rows flagged in `competitor_erased`, in op order — the query
  /// engine's prune-soundness face check walks these without scanning the
  /// whole bitmap.
  std::vector<PointId> erased_competitor_rows;

  /// Rows inserted after the snapshot and still alive at view time,
  /// ascending by stable id (ids only grow, appends happen in id order).
  Dataset inserted_competitors;
  std::vector<uint64_t> inserted_competitor_ids;
  Dataset inserted_products;
  std::vector<uint64_t> inserted_product_ids;

  /// SoA mirror of `inserted_competitors` for the batched kernels.
  SoaBlock competitor_block;

  size_t live_competitors(const Snapshot& base) const {
    // Overlay erases always target snapshot-*live* rows (the live table
    // validates ids), so the subtraction never double-counts a tombstone.
    return base.live_competitors() - competitors_erased +
           inserted_competitors.size();
  }
  size_t live_products(const Snapshot& base) const {
    return base.live_products() - products_erased +
           inserted_products.size();
  }
};

/// Folds `view.deltas` over `view.snapshot` into an overlay. Ops arrive in
/// append order, so insert-then-erase sequences cancel correctly.
DeltaOverlay BuildOverlay(const ReadView& view);

}  // namespace skyup

#endif  // SKYUP_SERVE_DELTA_LOG_H_
