#include "serve/snapshot.h"

#include <string>
#include <utility>

#include "util/check.h"

namespace skyup {

namespace {

Status ValidateIds(const Dataset& data, const std::vector<uint64_t>& ids,
                   const char* what) {
  if (ids.size() != data.size()) {
    return Status::InvalidArgument(
        std::string(what) + " id vector has " + std::to_string(ids.size()) +
        " entries for " + std::to_string(data.size()) + " rows");
  }
  for (size_t i = 1; i < ids.size(); ++i) {
    if (ids[i - 1] >= ids[i]) {
      return Status::InvalidArgument(
          std::string(what) + " ids not strictly ascending at row " +
          std::to_string(i));
    }
  }
  return Status::OK();
}

}  // namespace

Snapshot::Snapshot(uint64_t epoch, std::unique_ptr<Dataset> competitors,
                   std::vector<uint64_t> competitor_ids,
                   std::unique_ptr<Dataset> products,
                   std::vector<uint64_t> product_ids)
    : epoch_(epoch),
      competitors_(std::move(competitors)),
      products_(std::move(products)),
      competitor_ids_(std::move(competitor_ids)),
      product_ids_(std::move(product_ids)),
      tail_block_(competitors_->dims()) {
  competitor_rows_.reserve(competitor_ids_.size());
  for (size_t i = 0; i < competitor_ids_.size(); ++i) {
    competitor_rows_.emplace(competitor_ids_[i], static_cast<PointId>(i));
  }
  product_rows_.reserve(product_ids_.size());
  for (size_t i = 0; i < product_ids_.size(); ++i) {
    product_rows_.emplace(product_ids_[i], static_cast<PointId>(i));
  }
}

Result<std::shared_ptr<const Snapshot>> Snapshot::Create(
    uint64_t epoch, Dataset competitors,
    std::vector<uint64_t> competitor_ids, Dataset products,
    std::vector<uint64_t> product_ids, RTreeOptions index_options) {
  if (competitors.dims() != products.dims()) {
    return Status::InvalidArgument(
        "snapshot P/T dimensionality mismatch: " +
        std::to_string(competitors.dims()) + " vs " +
        std::to_string(products.dims()));
  }
  SKYUP_RETURN_IF_ERROR(ValidateIds(competitors, competitor_ids,
                                    "competitor"));
  SKYUP_RETURN_IF_ERROR(ValidateIds(products, product_ids, "product"));

  // Two-phase: place the datasets behind stable addresses first, then
  // index — the flat index keeps a raw pointer to the competitor dataset.
  auto snapshot = std::shared_ptr<Snapshot>(new Snapshot(
      epoch, std::make_unique<Dataset>(std::move(competitors)),
      std::move(competitor_ids),
      std::make_unique<Dataset>(std::move(products)),
      std::move(product_ids)));
  Result<FlatRTree> index =
      FlatRTree::BulkLoadSnapshot(*snapshot->competitors_, index_options);
  if (!index.ok()) return index.status();
  snapshot->index_ = std::move(index).value();
  snapshot->published_at_ = SteadyClock::now();
  return std::shared_ptr<const Snapshot>(std::move(snapshot));
}

void SnapshotStore::Publish(std::shared_ptr<const Snapshot> snapshot) {
  SKYUP_CHECK(snapshot != nullptr) << "cannot publish a null snapshot";
  MutexLock lock(mu_);
  SKYUP_CHECK(current_ == nullptr || snapshot->epoch() > current_->epoch())
      << "snapshot epochs must strictly increase: " << snapshot->epoch()
      << " after " << current_->epoch();
  current_ = std::move(snapshot);
}

std::shared_ptr<const Snapshot> SnapshotStore::Acquire() const {
  MutexLock lock(mu_);
  return current_;
}

uint64_t SnapshotStore::epoch() const {
  MutexLock lock(mu_);
  return current_ == nullptr ? 0 : current_->epoch();
}

}  // namespace skyup
