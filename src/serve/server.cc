#include "serve/server.h"

#include <utility>

#include "util/check.h"
#include "util/timer.h"

namespace skyup {

Server::Server(ProductCostFunction cost_fn, ServerOptions options,
               std::unique_ptr<LiveTable> table)
    : cost_fn_(std::move(cost_fn)),
      options_(options),
      table_(std::move(table)) {}

Result<std::unique_ptr<Server>> Server::Create(ProductCostFunction cost_fn,
                                               ServerOptions options) {
  if (options.dims < 1) {
    return Status::InvalidArgument("server dims must be >= 1");
  }
  if (cost_fn.dims() != options.dims) {
    return Status::InvalidArgument(
        "cost function dimensionality " + std::to_string(cost_fn.dims()) +
        " does not match server dims " + std::to_string(options.dims));
  }
  if (options.query_threads < 1) {
    return Status::InvalidArgument("query_threads must be >= 1");
  }
  if (options.max_pending < 1) {
    return Status::InvalidArgument("max_pending must be >= 1");
  }
  if (options.default_epsilon <= 0.0) {
    return Status::InvalidArgument("default_epsilon must be positive");
  }
  if (options.rebuild_threshold_ops < 1) {
    return Status::InvalidArgument("rebuild_threshold_ops must be >= 1");
  }
  LiveTableOptions table_options;
  table_options.dims = options.dims;
  table_options.rtree_fanout = options.rtree_fanout;
  Result<std::unique_ptr<LiveTable>> table =
      LiveTable::Create(table_options);
  if (!table.ok()) return table.status();

  std::unique_ptr<Server> server(new Server(
      std::move(cost_fn), options, std::move(table).value()));
  RebuildPolicy policy;
  policy.threshold_ops = options.rebuild_threshold_ops;
  policy.max_age_seconds = options.rebuild_max_age_seconds;
  policy.min_publish_backlog = options.publish_min_backlog;
  policy.min_publish_interval_seconds = options.publish_min_interval_seconds;
  policy.compact_tombstone_pct = options.compact_tombstone_pct;
  policy.compact_tail_pct = options.compact_tail_pct;
  server->inline_policy_ = policy;
  // Config echoes: a stats dump documents the policy it ran under.
  server->stats_.rebuild_threshold_ops = options.rebuild_threshold_ops;
  server->stats_.publish_min_backlog = options.publish_min_backlog;
  server->stats_.publish_min_interval_ms = static_cast<uint64_t>(
      options.publish_min_interval_seconds * 1000.0);
  server->stats_.compact_tombstone_pct = options.compact_tombstone_pct;
  server->stats_.compact_tail_pct = options.compact_tail_pct;
  if (options.background_rebuild) {
    server->rebuilder_ =
        std::make_unique<Rebuilder>(server->table_.get(), policy);
    server->rebuilder_->Start();
  }
  server->workers_.reserve(options.query_threads);
  for (size_t i = 0; i < options.query_threads; ++i) {
    server->workers_.emplace_back([raw = server.get()] {
      raw->WorkerLoop();
    });
  }
  return server;
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    shutdown_ = true;
    hold_workers_ = false;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Drain: resolve every query the workers never picked up.
  for (PendingQuery& pending : queue_) {
    QueryResponse response;
    response.status = Status::Cancelled("server shutting down");
    RecordOutcome(response);
    pending.promise.set_value(std::move(response));
  }
  if (rebuilder_ != nullptr) rebuilder_->Stop();
}

void Server::AfterUpdate(const Result<uint64_t>& outcome) {
  AfterUpdate(outcome.status());
}

void Server::AfterUpdate(const Status& outcome) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (outcome.ok()) {
      ++stats_.updates_applied;
    } else {
      ++stats_.updates_rejected;
    }
  }
  if (!outcome.ok()) return;
  if (rebuilder_ != nullptr) {
    rebuilder_->Nudge();
    return;
  }
  // Deterministic mode: apply the size threshold right here, so rebuild
  // timing (and the patch-vs-major choice) is a pure function of the op
  // sequence.
  Result<PublishKind> published =
      MaybeRebuildInline(table_.get(), inline_policy_);
  if (published.ok() && *published != PublishKind::kNone) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (*published == PublishKind::kMajor) {
      ++stats_.rebuilds_published;
    } else {
      ++stats_.patches_published;
    }
  }
}

Result<uint64_t> Server::InsertCompetitor(
    const std::vector<double>& coords) {
  Result<uint64_t> outcome = table_->InsertCompetitor(coords);
  AfterUpdate(outcome);
  return outcome;
}

Result<uint64_t> Server::InsertProduct(const std::vector<double>& coords) {
  Result<uint64_t> outcome = table_->InsertProduct(coords);
  AfterUpdate(outcome);
  return outcome;
}

Status Server::EraseCompetitor(uint64_t id) {
  Status outcome = table_->EraseCompetitor(id);
  AfterUpdate(outcome);
  return outcome;
}

Status Server::EraseProduct(uint64_t id) {
  Status outcome = table_->EraseProduct(id);
  AfterUpdate(outcome);
  return outcome;
}

QueryResponse Server::Execute(const QueryRequest& request,
                              const QueryControl* control) {
  QueryResponse response;
  Timer wall;
  ReadView view = table_->AcquireView();
  response.epoch = view.epoch();
  ServeStats query_stats;
  Result<std::vector<UpgradeResult>> results =
      TopKOverlay(view, cost_fn_, request.k, options_.default_epsilon,
                  control, &query_stats);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.MergeFrom(query_stats);
  }
  if (results.ok()) {
    response.results = std::move(results).value();
  } else {
    response.status = results.status();
  }
  response.wall_seconds = wall.ElapsedSeconds();
  return response;
}

void Server::RecordOutcome(const QueryResponse& response) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  switch (response.status.code()) {
    case StatusCode::kOk:
      ++stats_.queries_executed;
      query_latency_.Observe(response.wall_seconds);
      break;
    case StatusCode::kDeadlineExceeded:
      ++stats_.queries_timed_out;
      break;
    case StatusCode::kResourceExhausted:
      ++stats_.queries_rejected;
      break;
    default:
      // Cancelled / invalid-argument queries count as neither executed
      // nor rejected; callers see the status.
      break;
  }
}

QueryResponse Server::Query(const QueryRequest& request) {
  std::shared_ptr<QueryControl> control = request.control;
  if (control == nullptr && request.timeout_seconds > 0.0) {
    control = std::make_shared<QueryControl>();
  }
  if (control != nullptr && request.timeout_seconds > 0.0) {
    control->SetTimeout(request.timeout_seconds);
  }
  QueryResponse response = Execute(request, control.get());
  RecordOutcome(response);
  return response;
}

std::future<QueryResponse> Server::Submit(QueryRequest request) {
  PendingQuery pending;
  pending.control = request.control;
  if (pending.control == nullptr) {
    pending.control = std::make_shared<QueryControl>();
  }
  if (request.timeout_seconds > 0.0) {
    // The clock starts at admission: time spent queued counts against the
    // deadline, so a saturated server sheds load instead of serving
    // answers nobody is waiting for anymore.
    pending.control->SetTimeout(request.timeout_seconds);
  }
  pending.request = std::move(request);
  std::future<QueryResponse> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (shutdown_) {
      QueryResponse response;
      response.status = Status::Cancelled("server shutting down");
      RecordOutcome(response);
      pending.promise.set_value(std::move(response));
      return future;
    }
    if (queue_.size() >= options_.max_pending) {
      QueryResponse response;
      response.status = Status::ResourceExhausted(
          "query queue full (" + std::to_string(options_.max_pending) +
          " pending)");
      RecordOutcome(response);
      pending.promise.set_value(std::move(response));
      return future;
    }
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
  return future;
}

void Server::WorkerLoop() {
  for (;;) {
    PendingQuery pending;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return shutdown_ || (!hold_workers_ && !queue_.empty());
      });
      if (shutdown_) return;
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    QueryResponse response;
    // A query whose deadline lapsed while queued is shed without running.
    Status admission = pending.control->Check();
    if (!admission.ok()) {
      response.status = std::move(admission);
    } else {
      response = Execute(pending.request, pending.control.get());
    }
    RecordOutcome(response);
    pending.promise.set_value(std::move(response));
  }
}

ServeStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ServeStats copy = stats_;
  if (rebuilder_ != nullptr) {
    copy.rebuilds_published = rebuilder_->rebuilds_published();
    copy.patches_published = rebuilder_->patches_published();
  }
  return copy;
}

void Server::FillMetrics(MetricsRegistry* registry) const {
  SKYUP_CHECK(registry != nullptr);
  AddServeStatsMetrics(stats(), registry);
  registry
      ->AddGauge("skyup_serve_snapshot_epoch",
                 "epoch of the currently published snapshot")
      ->Set(static_cast<double>(table_->epoch()));
  registry
      ->AddGauge("skyup_serve_snapshot_age_seconds",
                 "seconds since the current snapshot was built")
      ->Set(table_->snapshot_age_seconds());
  registry
      ->AddGauge("skyup_serve_delta_backlog_ops",
                 "delta ops not yet absorbed by a snapshot")
      ->Set(static_cast<double>(table_->delta_backlog()));
  registry
      ->AddGauge("skyup_serve_live_competitors",
                 "live competitor rows (snapshot + overlay)")
      ->Set(static_cast<double>(table_->live_competitor_count()));
  registry
      ->AddGauge("skyup_serve_live_products",
                 "live product rows (snapshot + overlay)")
      ->Set(static_cast<double>(table_->live_product_count()));
  std::lock_guard<std::mutex> lock(stats_mu_);
  registry
      ->AddHistogram("skyup_serve_query_latency_seconds",
                     "end-to-end serve query latency",
                     query_latency_.bounds())
      ->MergeFrom(query_latency_);
}

void Server::HoldWorkersForTest() {
  std::lock_guard<std::mutex> lock(queue_mu_);
  hold_workers_ = true;
}

void Server::ReleaseWorkersForTest() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    hold_workers_ = false;
  }
  queue_cv_.notify_all();
}

}  // namespace skyup
