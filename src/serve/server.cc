#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <optional>
#include <utility>

#include "obs/log.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/timer.h"

namespace skyup {

namespace {

uint64_t NowUnixMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Server::Server(ProductCostFunction cost_fn, ServerOptions options,
               std::unique_ptr<LiveTable> table,
               std::unique_ptr<ShardedTable> sharded)
    : cost_fn_(std::move(cost_fn)),
      options_(options),
      table_(std::move(table)),
      sharded_(std::move(sharded)),
      recorder_(FlightRecorderOptions{options.flight_query_ring,
                                      options.flight_sample_ring}) {
  recorder_.set_enabled(options_.flight_recorder);
}

Result<std::unique_ptr<Server>> Server::Create(ProductCostFunction cost_fn,
                                               ServerOptions options) {
  if (options.dims < 1) {
    return Status::InvalidArgument("server dims must be >= 1");
  }
  if (cost_fn.dims() != options.dims) {
    return Status::InvalidArgument(
        "cost function dimensionality " + std::to_string(cost_fn.dims()) +
        " does not match server dims " + std::to_string(options.dims));
  }
  if (options.query_threads < 1) {
    return Status::InvalidArgument("query_threads must be >= 1");
  }
  if (options.max_pending < 1) {
    return Status::InvalidArgument("max_pending must be >= 1");
  }
  if (options.default_epsilon <= 0.0) {
    return Status::InvalidArgument("default_epsilon must be positive");
  }
  if (options.rebuild_threshold_ops < 1) {
    return Status::InvalidArgument("rebuild_threshold_ops must be >= 1");
  }
  if (options.batch_max < 1 || options.batch_max > kMaxServeBatch) {
    return Status::InvalidArgument(
        "batch_max must be in [1, " + std::to_string(kMaxServeBatch) + "]");
  }
  std::unique_ptr<LiveTable> live_table;
  std::unique_ptr<ShardedTable> sharded_table;
  if (options.shards == 0) {
    LiveTableOptions table_options;
    table_options.dims = options.dims;
    table_options.rtree_fanout = options.rtree_fanout;
    table_options.memo_cache_bytes = options.memo_cache_mb * (1u << 20);
    Result<std::unique_ptr<LiveTable>> table =
        LiveTable::Create(table_options);
    if (!table.ok()) return table.status();
    live_table = std::move(table).value();
  } else {
    ShardedTableOptions shard_options;
    shard_options.dims = options.dims;
    shard_options.shards = options.shards;
    shard_options.rtree_fanout = options.rtree_fanout;
    shard_options.memo_cache_bytes = options.memo_cache_mb * (1u << 20);
    Result<std::unique_ptr<ShardedTable>> sharded =
        ShardedTable::Create(shard_options);
    if (!sharded.ok()) return sharded.status();
    sharded_table = std::move(sharded).value();
  }

  std::unique_ptr<Server> server(new Server(std::move(cost_fn), options,
                                            std::move(live_table),
                                            std::move(sharded_table)));
  RebuildPolicy policy;
  policy.threshold_ops = options.rebuild_threshold_ops;
  policy.max_age_seconds = options.rebuild_max_age_seconds;
  policy.min_publish_backlog = options.publish_min_backlog;
  policy.min_publish_interval_seconds = options.publish_min_interval_seconds;
  policy.compact_tombstone_pct = options.compact_tombstone_pct;
  policy.compact_tail_pct = options.compact_tail_pct;
  server->inline_policy_ = policy;
  {
    // Config echoes: a stats dump documents the policy it ran under. No
    // worker exists yet, so the lock is uncontended — taken only to keep
    // the GUARDED_BY invariant on stats_ unconditional.
    MutexLock lock(server->stats_mu_);
    server->stats_.rebuild_threshold_ops = options.rebuild_threshold_ops;
    server->stats_.publish_min_backlog = options.publish_min_backlog;
    server->stats_.publish_min_interval_ms = static_cast<uint64_t>(
        options.publish_min_interval_seconds * 1000.0);
    server->stats_.compact_tombstone_pct = options.compact_tombstone_pct;
    server->stats_.compact_tail_pct = options.compact_tail_pct;
    server->stats_.batch_max_queries = options.batch_max;
    server->stats_.batch_wait_us = options.batch_wait_us;
    server->stats_.memo_cache_mb = options.memo_cache_mb;
    server->stats_.shards = options.shards;
  }
  if (options.background_rebuild) {
    if (server->sharded_ != nullptr) {
      server->sharded_->Start(policy);
    } else {
      server->rebuilder_ =
          std::make_unique<Rebuilder>(server->table_.get(), policy);
      server->rebuilder_->Start();
    }
  }
  server->workers_.reserve(options.query_threads);
  for (size_t i = 0; i < options.query_threads; ++i) {
    server->workers_.emplace_back([raw = server.get()] {
      raw->WorkerLoop();
    });
  }
  // The diagnostics thread exists only when it has work: periodic
  // samples, or a dump path that RequestDump() targets.
  if (options.stats_interval_ms > 0 || !options.flight_dump_path.empty()) {
    server->diag_thread_ = std::thread([raw = server.get()] {
      raw->DiagnosticsLoop();
    });
  }
  return server;
}

Server::~Server() {
  {
    MutexLock lock(diag_mu_);
    diag_shutdown_ = true;
  }
  diag_cv_.notify_all();
  if (diag_thread_.joinable()) diag_thread_.join();
  {
    MutexLock lock(queue_mu_);
    shutdown_ = true;
    hold_workers_ = false;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Drain: resolve every query the workers never picked up. The workers
  // are joined, so the lock is uncontended; RecordOutcome under it is the
  // same queue -> stats nesting Submit establishes.
  {
    MutexLock lock(queue_mu_);
    for (PendingQuery& pending : queue_) {
      QueryResponse response;
      response.status = Status::Cancelled("server shutting down");
      RecordOutcome(response);
      pending.promise.set_value(std::move(response));
    }
  }
  if (rebuilder_ != nullptr) rebuilder_->Stop();
  if (sharded_ != nullptr) sharded_->Stop();
}

void Server::AfterUpdate(const Result<uint64_t>& outcome) {
  AfterUpdate(outcome.status());
}

void Server::AfterUpdate(const Status& outcome) {
  {
    MutexLock lock(stats_mu_);
    if (outcome.ok()) {
      ++stats_.updates_applied;
    } else {
      ++stats_.updates_rejected;
    }
  }
  if (!outcome.ok()) return;
  if (options_.background_rebuild) {
    if (sharded_ != nullptr) {
      sharded_->Nudge();
    } else {
      rebuilder_->Nudge();
    }
    return;
  }
  // Deterministic mode: apply the size threshold right here, so rebuild
  // timing (and the patch-vs-major choice) is a pure function of the op
  // sequence. In sharded mode the trigger fires on the TOTAL backlog —
  // the op count a single table would have accumulated — so publish-cycle
  // boundaries are identical for every shard count (the `--shards` replay
  // guard depends on this). Cycle counters live in the sharded table;
  // stats() overlays them.
  if (sharded_ != nullptr) {
    // A failed cycle is remembered by the sharded table (last_error());
    // frozen ops stay pending and the next cycle re-offers them.
    (void)sharded_->MaybePublishInline(inline_policy_);
    return;
  }
  Result<PublishKind> published =
      MaybeRebuildInline(table_.get(), inline_policy_);
  if (published.ok() && *published != PublishKind::kNone) {
    MutexLock lock(stats_mu_);
    if (*published == PublishKind::kMajor) {
      ++stats_.rebuilds_published;
    } else {
      ++stats_.patches_published;
    }
  }
}

Result<uint64_t> Server::InsertCompetitor(
    const std::vector<double>& coords) {
  Result<uint64_t> outcome = sharded_ != nullptr
                                 ? sharded_->InsertCompetitor(coords)
                                 : table_->InsertCompetitor(coords);
  AfterUpdate(outcome);
  return outcome;
}

Result<uint64_t> Server::InsertProduct(const std::vector<double>& coords) {
  Result<uint64_t> outcome = sharded_ != nullptr
                                 ? sharded_->InsertProduct(coords)
                                 : table_->InsertProduct(coords);
  AfterUpdate(outcome);
  return outcome;
}

Status Server::EraseCompetitor(uint64_t id) {
  Status outcome = sharded_ != nullptr ? sharded_->EraseCompetitor(id)
                                       : table_->EraseCompetitor(id);
  AfterUpdate(outcome);
  return outcome;
}

Status Server::EraseProduct(uint64_t id) {
  Status outcome = sharded_ != nullptr ? sharded_->EraseProduct(id)
                                       : table_->EraseProduct(id);
  AfterUpdate(outcome);
  return outcome;
}

QueryResponse Server::Execute(const QueryRequest& request,
                              const QueryControl* control,
                              QueryFlightRecord* record) {
  QueryResponse response;
  Timer wall;
  ServeStats query_stats;
  // Phase attribution costs per-candidate clock laps, so it is collected
  // only for queries that both want a record and carry a control (every
  // Submit allocates one; the deterministic control-free inline path —
  // what --replay and the benches drive — stays lap-free).
  std::optional<QueryTelemetry> telemetry;
  if (record != nullptr && control != nullptr) telemetry.emplace();
  ShardQueryInfo shard_info;
  Result<std::vector<UpgradeResult>> results =
      [&]() -> Result<std::vector<UpgradeResult>> {
    if (sharded_ != nullptr) {
      ShardedView views = sharded_->AcquireViews();
      response.epoch = views.epoch;
      return TopKSharded(views, cost_fn_, request.k,
                         options_.default_epsilon,
                         options_.shard_query_threads, control, &query_stats,
                         telemetry.has_value() ? &*telemetry : nullptr,
                         &shard_info);
    }
    ReadView view = table_->AcquireView();
    response.epoch = view.epoch();
    return TopKOverlay(view, cost_fn_, request.k, options_.default_epsilon,
                       control, &query_stats,
                       telemetry.has_value() ? &*telemetry : nullptr);
  }();
  {
    MutexLock lock(stats_mu_);
    stats_.MergeFrom(query_stats);
  }
  if (results.ok()) {
    response.results = std::move(results).value();
  } else {
    response.status = results.status();
  }
  response.wall_seconds = wall.ElapsedSeconds();
  if (record != nullptr) {
    record->epoch = response.epoch;
    record->k = static_cast<uint32_t>(request.k);
    if (telemetry.has_value()) record->phases = telemetry->phases.total;
    record->candidates_evaluated = query_stats.candidates_evaluated;
    record->candidates_pruned = query_stats.candidates_pruned;
    record->delta_ops_scanned = query_stats.delta_ops_scanned;
    record->cache_hits = query_stats.cache_hits;
    record->cache_misses = query_stats.cache_misses;
    record->memo_hits = query_stats.memo_hits;
    record->memo_misses = query_stats.memo_misses;
    record->shard_count = shard_info.shard_count;
    record->slowest_shard = shard_info.slowest_shard;
    record->slowest_shard_seconds = shard_info.slowest_shard_seconds;
  }
  return response;
}

std::vector<QueryResponse> Server::ExecuteBatch(
    const std::vector<const QueryRequest*>& requests,
    const std::vector<const QueryControl*>& controls,
    std::vector<QueryFlightRecord>* records) {
  SKYUP_CHECK(requests.size() == controls.size());
  SKYUP_CHECK(!requests.empty() && requests.size() <= kMaxServeBatch);
  Timer wall;
  ServeStats batch_stats;
  batch_stats.batches_executed = 1;
  if (requests.size() >= 2) batch_stats.batched_queries = requests.size();
  std::vector<BatchQueryResult> outcomes;
  uint64_t group_epoch = 0;
  std::vector<BatchQuery> batch;
  batch.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    BatchQuery q;
    q.k = requests[i]->k;
    q.control = controls[i];
    batch.push_back(q);
  }
  if (sharded_ != nullptr) {
    // Sharded grouped execution: one consistent view set AND one candidate
    // sweep for the whole group (serve/shard/shard_query.h) — each
    // member's result is bit-identical to its solo execution.
    ShardedView views = sharded_->AcquireViews();
    group_epoch = views.epoch;
    TopKShardedBatch(views, cost_fn_, batch, options_.default_epsilon,
                     options_.shard_query_threads, &outcomes, &batch_stats);
  } else {
    ReadView view = table_->AcquireView();
    group_epoch = view.epoch();
    TopKOverlayBatch(view, cost_fn_, batch, options_.default_epsilon,
                     &outcomes, &batch_stats);
  }
  const double elapsed = wall.ElapsedSeconds();
  {
    MutexLock lock(stats_mu_);
    stats_.MergeFrom(batch_stats);
    batch_size_.Observe(static_cast<double>(requests.size()));
  }
  std::vector<QueryResponse> responses(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    responses[i].epoch = group_epoch;
    responses[i].wall_seconds = elapsed;
    if (outcomes[i].status.ok()) {
      responses[i].results = std::move(outcomes[i].results);
    } else {
      responses[i].status = std::move(outcomes[i].status);
    }
  }
  if (records != nullptr) {
    // Batch members share one traversal, so per-member work counters and
    // phase laps are not attributable — records carry the shared batch id
    // (0 for a group of one) plus the member's own epoch/k/outcome, and
    // leave the counters zero.
    records->assign(requests.size(), QueryFlightRecord{});
    const uint64_t batch_id =
        requests.size() >= 2
            // lint: relaxed-ok (pure id allocation; only uniqueness matters)
            ? next_batch_id_.fetch_add(1, std::memory_order_relaxed) + 1
            : 0;
    for (size_t i = 0; i < requests.size(); ++i) {
      (*records)[i].batch_id = batch_id;
      (*records)[i].epoch = group_epoch;
      (*records)[i].k = static_cast<uint32_t>(requests[i]->k);
    }
  }
  return responses;
}

void Server::RecordOutcome(const QueryResponse& response) {
  MutexLock lock(stats_mu_);
  switch (response.status.code()) {
    case StatusCode::kOk:
      ++stats_.queries_executed;
      query_latency_.Observe(response.wall_seconds);
      break;
    case StatusCode::kDeadlineExceeded:
      ++stats_.queries_timed_out;
      break;
    case StatusCode::kResourceExhausted:
      ++stats_.queries_rejected;
      break;
    default:
      // Cancelled / invalid-argument queries count as neither executed
      // nor rejected; callers see the status.
      break;
  }
}

QueryResponse Server::Query(const QueryRequest& request) {
  std::shared_ptr<QueryControl> control = request.control;
  if (control == nullptr && request.timeout_seconds > 0.0) {
    control = std::make_shared<QueryControl>();
  }
  if (control != nullptr && request.timeout_seconds > 0.0) {
    control->SetTimeout(request.timeout_seconds);
  }
  const uint64_t query_id = NextQueryId();
  if (control != nullptr) control->set_query_id(query_id);
  const bool record_flight = recorder_.enabled();
  QueryFlightRecord record;
  QueryResponse response =
      Execute(request, control.get(), record_flight ? &record : nullptr);
  RecordOutcome(response);
  if (record_flight) {
    FinishFlight(&record, response, query_id, /*queue_seconds=*/0.0);
  }
  return response;
}

std::vector<QueryResponse> Server::QueryBatch(
    const std::vector<QueryRequest>& requests) {
  if (requests.empty()) return {};
  // Same control/timeout plumbing as Query(), per member.
  std::vector<std::shared_ptr<QueryControl>> owned(requests.size());
  std::vector<const QueryControl*> controls(requests.size(), nullptr);
  std::vector<const QueryRequest*> request_ptrs(requests.size());
  std::vector<uint64_t> query_ids(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    std::shared_ptr<QueryControl> control = requests[i].control;
    if (control == nullptr && requests[i].timeout_seconds > 0.0) {
      control = std::make_shared<QueryControl>();
    }
    if (control != nullptr && requests[i].timeout_seconds > 0.0) {
      control->SetTimeout(requests[i].timeout_seconds);
    }
    query_ids[i] = NextQueryId();
    if (control != nullptr) control->set_query_id(query_ids[i]);
    owned[i] = control;
    controls[i] = control.get();
    request_ptrs[i] = &requests[i];
  }
  const bool record_flight = recorder_.enabled();
  std::vector<QueryFlightRecord> records;
  std::vector<QueryResponse> responses = ExecuteBatch(
      request_ptrs, controls, record_flight ? &records : nullptr);
  for (size_t i = 0; i < responses.size(); ++i) {
    RecordOutcome(responses[i]);
    if (record_flight) {
      FinishFlight(&records[i], responses[i], query_ids[i],
                   /*queue_seconds=*/0.0);
    }
  }
  return responses;
}

std::future<QueryResponse> Server::Submit(QueryRequest request) {
  PendingQuery pending;
  pending.control = request.control;
  if (pending.control == nullptr) {
    pending.control = std::make_shared<QueryControl>();
  }
  if (request.timeout_seconds > 0.0) {
    // The clock starts at admission: time spent queued counts against the
    // deadline, so a saturated server sheds load instead of serving
    // answers nobody is waiting for anymore.
    pending.control->SetTimeout(request.timeout_seconds);
  }
  // The id is assigned at admission (before the accept/reject decision),
  // so even rejected queries are attributable in the flight ring. The
  // queue mutex publishes it to the worker along with the rest of the
  // pending entry.
  pending.control->set_query_id(NextQueryId());
  pending.admitted = SteadyClock::now();
  pending.request = std::move(request);
  std::future<QueryResponse> future = pending.promise.get_future();
  {
    MutexLock lock(queue_mu_);
    if (shutdown_) {
      QueryResponse response;
      response.status = Status::Cancelled("server shutting down");
      RecordOutcome(response);
      RecordRejection(*pending.control, response);
      pending.promise.set_value(std::move(response));
      return future;
    }
    if (queue_.size() >= options_.max_pending) {
      QueryResponse response;
      response.status = Status::ResourceExhausted(
          "query queue full (" + std::to_string(options_.max_pending) +
          " pending)");
      RecordOutcome(response);
      RecordRejection(*pending.control, response);
      pending.promise.set_value(std::move(response));
      return future;
    }
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
  return future;
}

void Server::WorkerLoop() {
  const size_t cap = options_.batch_max;
  for (;;) {
    std::vector<PendingQuery> group;
    {
      // Explicit wait loops (not predicate lambdas): the analysis checks
      // each guarded read against the lock actually held here.
      MutexLock lock(queue_mu_);
      while (!(shutdown_ || (!hold_workers_ && !queue_.empty()))) {
        queue_cv_.wait(queue_mu_);
      }
      if (shutdown_) return;
      if (cap > 1 && options_.batch_wait_us > 0 && queue_.size() < cap) {
        // Bounded wait to fill the group; on timeout run what arrived.
        // After a shutdown wakes this wait we still drain and execute what
        // we take — returning while holding queries would strand promises.
        const auto deadline =
            SteadyClock::now() +
            std::chrono::microseconds(options_.batch_wait_us);
        while (!(shutdown_ || queue_.size() >= cap)) {
          if (queue_cv_.wait_until(queue_mu_, deadline) ==
              std::cv_status::timeout) {
            break;
          }
        }
      }
      if (hold_workers_) continue;  // test seam engaged mid-wait
      while (!queue_.empty() && group.size() < cap) {
        group.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    if (group.empty()) continue;

    const bool record_flight = recorder_.enabled();
    // Queue wait is measured to one instant for the whole group — members
    // executed together waited together.
    const SteadyClock::time_point exec_start = SteadyClock::now();
    std::vector<QueryFlightRecord> records(record_flight ? group.size() : 0);

    // Members whose deadline lapsed while queued are shed without running.
    std::vector<size_t> runnable;
    std::vector<QueryResponse> responses(group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      Status admission = group[i].control->Check();
      if (!admission.ok()) {
        responses[i].status = std::move(admission);
        if (record_flight) {
          records[i].k = static_cast<uint32_t>(group[i].request.k);
        }
      } else {
        runnable.push_back(i);
      }
    }
    if (runnable.size() == 1 && cap == 1) {
      // Batching off: the historical per-query path.
      PendingQuery& pending = group[runnable.front()];
      responses[runnable.front()] =
          Execute(pending.request, pending.control.get(),
                  record_flight ? &records[runnable.front()] : nullptr);
    } else if (!runnable.empty()) {
      std::vector<const QueryRequest*> requests;
      std::vector<const QueryControl*> controls;
      requests.reserve(runnable.size());
      controls.reserve(runnable.size());
      for (size_t i : runnable) {
        requests.push_back(&group[i].request);
        controls.push_back(group[i].control.get());
      }
      std::vector<QueryFlightRecord> grouped_records;
      std::vector<QueryResponse> grouped =
          ExecuteBatch(requests, controls,
                       record_flight ? &grouped_records : nullptr);
      for (size_t u = 0; u < runnable.size(); ++u) {
        responses[runnable[u]] = std::move(grouped[u]);
        if (record_flight) records[runnable[u]] = grouped_records[u];
      }
    }
    for (size_t i = 0; i < group.size(); ++i) {
      RecordOutcome(responses[i]);
      if (record_flight) {
        const double queue_seconds =
            std::chrono::duration<double>(exec_start - group[i].admitted)
                .count();
        FinishFlight(&records[i], responses[i],
                     group[i].control->query_id(), queue_seconds);
      }
      group[i].promise.set_value(std::move(responses[i]));
    }
  }
}

void Server::FinishFlight(QueryFlightRecord* record,
                          const QueryResponse& response, uint64_t query_id,
                          double queue_seconds) {
  record->query_id = query_id;
  record->tenant_id = options_.tenant_id;
  record->status = response.status.code();
  record->results = static_cast<uint32_t>(response.results.size());
  record->queue_seconds = queue_seconds;
  record->wall_seconds = queue_seconds + response.wall_seconds;
  record->end_ts_us = NowUnixMicros();
  if (options_.slow_query_us > 0 &&
      record->wall_seconds * 1e6 >=
          static_cast<double>(options_.slow_query_us)) {
    record->slow = true;
    if (LogEnabled(LogLevel::kWarn)) {
      // The tail of this thread's trace ring is the query's own span
      // history — the thread that finishes a query is the thread that
      // executed it. Spans tagged with a different query id (a previous
      // query on this worker) are filtered out.
      std::string spans;
      RecentSpan recent[16];
      const size_t count = CollectRecentSpans(16, recent);
      for (size_t i = 0; i < count; ++i) {
        if (recent[i].qid != 0 && recent[i].qid != query_id) continue;
        if (!spans.empty()) spans += ';';
        spans += recent[i].name;
        spans += ':';
        spans += std::to_string(recent[i].dur_ns / 1000);
        spans += "us";
      }
      LogRecord log(LogLevel::kWarn, "slow_query");
      log.U64("query_id", record->query_id)
          .U64("batch_id", record->batch_id)
          .U64("tenant_id", record->tenant_id)
          .U64("epoch", record->epoch)
          .Str("status", std::string(StatusCodeName(record->status)))
          .U64("k", record->k)
          .U64("results", record->results)
          .F64("queue_s", record->queue_seconds)
          .F64("wall_s", record->wall_seconds)
          .F64("probe_s", record->phases.probe_seconds)
          .F64("skyline_s", record->phases.skyline_seconds)
          .F64("upgrade_s", record->phases.upgrade_seconds)
          .F64("prune_s", record->phases.prune_seconds)
          .F64("merge_s", record->phases.merge_seconds)
          .F64("other_s", record->phases.other_seconds)
          .U64("candidates_evaluated", record->candidates_evaluated)
          .U64("candidates_pruned", record->candidates_pruned)
          .U64("cache_hits", record->cache_hits)
          .U64("memo_hits", record->memo_hits);
      if (record->shard_count > 0) {
        // Sharded serve: name the shard that dominated the wall time.
        log.U64("shard_count", record->shard_count)
            .U64("slowest_shard", record->slowest_shard)
            .F64("slowest_shard_s", record->slowest_shard_seconds);
      }
      if (!spans.empty()) log.Str("spans", spans);
    }
  }
  recorder_.RecordQuery(*record);
}

void Server::RecordRejection(const QueryControl& control,
                             const QueryResponse& response) {
  if (!recorder_.enabled()) return;
  QueryFlightRecord record;
  FinishFlight(&record, response, control.query_id(), /*queue_seconds=*/0.0);
}

void Server::TakeSystemSample(bool heartbeat) {
  SystemSample sample;
  sample.ts_us = NowUnixMicros();
  const LiveTable::Diagnostics diag = sharded_ != nullptr
                                          ? sharded_->SampleDiagnostics()
                                          : table_->SampleDiagnostics();
  sample.epoch = diag.epoch;
  sample.snapshot_age_seconds = diag.snapshot_age_seconds;
  sample.delta_backlog = diag.delta_backlog;
  sample.tombstone_pct = diag.tombstone_pct;
  sample.memo_bytes = diag.memo_bytes;
  sample.live_competitors = diag.live_competitors;
  sample.live_products = diag.live_products;
  {
    MutexLock lock(queue_mu_);
    sample.queue_depth = queue_.size();
  }
  const ServeStats current = stats();
  sample.rebuilds_published = current.rebuilds_published;
  sample.patches_published = current.patches_published;
  recorder_.RecordSample(sample);
  if (heartbeat && LogEnabled(LogLevel::kInfo)) {
    LogRecord(LogLevel::kInfo, "heartbeat")
        .U64("epoch", sample.epoch)
        .F64("snapshot_age_s", sample.snapshot_age_seconds)
        .U64("queue_depth", sample.queue_depth)
        .U64("delta_backlog", sample.delta_backlog)
        .F64("tombstone_pct", sample.tombstone_pct)
        .U64("memo_bytes", sample.memo_bytes)
        .U64("rebuilds", sample.rebuilds_published)
        .U64("patches", sample.patches_published)
        .U64("live_competitors", sample.live_competitors)
        .U64("live_products", sample.live_products);
  }
}

void Server::DumpDiagnostics(std::ostream& out) {
  TakeSystemSample(/*heartbeat=*/false);
  recorder_.WriteJsonl(out);
}

void Server::WriteRequestedDump() {
  if (options_.flight_dump_path.empty()) return;
  std::ofstream out(options_.flight_dump_path,
                    std::ios::out | std::ios::trunc);
  if (!out.good()) {
    LogRecord(LogLevel::kError, "flight_dump_failed")
        .Str("path", options_.flight_dump_path);
    return;
  }
  DumpDiagnostics(out);
  out.flush();
  LogRecord(LogLevel::kInfo, "flight_dump")
      .Str("path", options_.flight_dump_path)
      .U64("queries", recorder_.stats().queries_recorded)
      .U64("samples", recorder_.stats().samples_recorded);
  FlushLogSink();
}

void Server::DiagnosticsLoop() {
  // Poll fast enough that a SIGUSR1-requested dump lands promptly while
  // still honoring the sample period; shutdown cuts through via the
  // condvar, so the poll interval never delays destruction.
  const bool sampling = options_.stats_interval_ms > 0;
  const auto poll = std::chrono::milliseconds(
      sampling ? std::min<size_t>(options_.stats_interval_ms, 50) : 50);
  auto next_sample = SteadyClock::now() +
                     std::chrono::milliseconds(options_.stats_interval_ms);
  for (;;) {
    {
      MutexLock lock(diag_mu_);
      if (!diag_shutdown_) diag_cv_.wait_for(diag_mu_, poll);
      if (diag_shutdown_) break;
    }
    // lint: relaxed-ok (lone request flag; rationale on RequestDump())
    if (dump_requested_.exchange(false, std::memory_order_relaxed)) {
      WriteRequestedDump();
    }
    if (sampling && SteadyClock::now() >= next_sample) {
      TakeSystemSample(/*heartbeat=*/true);
      next_sample = SteadyClock::now() +
                    std::chrono::milliseconds(options_.stats_interval_ms);
    }
  }
  // Shutdown drain: a dump requested moments before exit still lands.
  // lint: relaxed-ok (lone request flag; rationale on RequestDump())
  if (dump_requested_.exchange(false, std::memory_order_relaxed)) {
    WriteRequestedDump();
  }
}

ServeStats Server::stats() const {
  MutexLock lock(stats_mu_);
  ServeStats copy = stats_;
  if (sharded_ != nullptr) {
    // The sharded table owns the publish counters in both inline and
    // background mode (one cycle publishes every shard).
    copy.rebuilds_published = sharded_->rebuilds_published();
    copy.patches_published = sharded_->patches_published();
  } else if (rebuilder_ != nullptr) {
    copy.rebuilds_published = rebuilder_->rebuilds_published();
    copy.patches_published = rebuilder_->patches_published();
  }
  return copy;
}

uint64_t Server::CurrentEpoch() const {
  return sharded_ != nullptr ? sharded_->epoch() : table_->epoch();
}

size_t Server::DeltaBacklog() const {
  return sharded_ != nullptr ? sharded_->delta_backlog()
                             : table_->delta_backlog();
}

void Server::FillMetrics(MetricsRegistry* registry) const {
  SKYUP_CHECK(registry != nullptr);
  AddServeStatsMetrics(stats(), registry);
  // One consistent health sample serves both modes (the sharded sample
  // aggregates across shards exactly like the heartbeat's).
  const LiveTable::Diagnostics diag = sharded_ != nullptr
                                          ? sharded_->SampleDiagnostics()
                                          : table_->SampleDiagnostics();
  registry
      ->AddGauge("skyup_serve_snapshot_epoch",
                 "epoch of the currently published snapshot")
      ->Set(static_cast<double>(diag.epoch));
  registry
      ->AddGauge("skyup_serve_snapshot_age_seconds",
                 "seconds since the current snapshot was built")
      ->Set(diag.snapshot_age_seconds);
  registry
      ->AddGauge("skyup_serve_delta_backlog_ops",
                 "delta ops not yet absorbed by a snapshot")
      ->Set(static_cast<double>(diag.delta_backlog));
  registry
      ->AddGauge("skyup_serve_live_competitors",
                 "live competitor rows (snapshot + overlay)")
      ->Set(static_cast<double>(diag.live_competitors));
  registry
      ->AddGauge("skyup_serve_live_products",
                 "live product rows (snapshot + overlay)")
      ->Set(static_cast<double>(diag.live_products));
  MutexLock lock(stats_mu_);
  registry
      ->AddHistogram("skyup_serve_query_latency_seconds",
                     "end-to-end serve query latency",
                     query_latency_.bounds())
      ->MergeFrom(query_latency_);
  registry
      ->AddHistogram("skyup_serve_batch_size_queries",
                     "queries per grouped execution",
                     batch_size_.bounds())
      ->MergeFrom(batch_size_);
}

void Server::HoldWorkersForTest() {
  MutexLock lock(queue_mu_);
  hold_workers_ = true;
}

void Server::ReleaseWorkersForTest() {
  {
    MutexLock lock(queue_mu_);
    hold_workers_ = false;
  }
  queue_cv_.notify_all();
}

}  // namespace skyup
