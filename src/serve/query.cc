#include "serve/query.h"

#include <string>
#include <utility>

#include "core/dominance.h"
#include "core/single_upgrade.h"
#include "core/topk_common.h"
#include "obs/trace.h"
#include "skyline/dominating_skyline.h"
#include "skyline/skyline.h"
#include "util/check.h"

namespace skyup {

Result<std::vector<UpgradeResult>> TopKOverlay(
    const ReadView& view, const ProductCostFunction& cost_fn, size_t k,
    double epsilon, const QueryControl* control, ServeStats* stats) {
  if (view.snapshot == nullptr) {
    return Status::InvalidArgument("read view has no snapshot");
  }
  const Snapshot& base = *view.snapshot;
  const size_t dims = base.dims();
  if (k == 0) return Status::InvalidArgument("k must be at least 1");
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (cost_fn.dims() != dims) {
    return Status::InvalidArgument(
        "cost function dimensionality " + std::to_string(cost_fn.dims()) +
        " does not match table dimensionality " + std::to_string(dims));
  }
  SKYUP_TRACE_SPAN("serve/topk-overlay");

  ServeStats local;
  DeltaOverlay overlay = BuildOverlay(view);
  local.delta_ops_scanned += view.deltas.size();

  const SoaView inserted_view = overlay.competitor_block.view();
  const bool have_p_erases = overlay.competitors_erased > 0;
  TopKCollector collector(k);

  size_t since_poll = 0;
  Status stop_status;
  auto should_stop = [&]() {
    if (control == nullptr) return false;
    if (since_poll++ % QueryControl::kPollStride != 0) return false;
    Status st = control->Check();
    if (st.ok()) return false;
    stop_status = std::move(st);
    return true;
  };

  std::vector<uint32_t> inserted_hits;
  std::vector<const double*> dominators;
  auto evaluate = [&](uint64_t stable_id, const double* t) {
    // Probe the (possibly stale) base index for the base-P dominator
    // skyline. Sound against the live state once patched below.
    std::vector<PointId> sky_rows = DominatingSkyline(base.index(), t,
                                                      nullptr);

    // Erase-invalidation check: the stale probe is exact iff every
    // returned skyline member is still live — a dead member may have been
    // masking live dominators, so only then pay for the full rescan.
    bool fallback = false;
    if (have_p_erases) {
      for (PointId row : sky_rows) {
        if (overlay.competitor_erased[static_cast<size_t>(row)] != 0) {
          fallback = true;
          break;
        }
      }
    }

    dominators.clear();
    if (fallback) {
      ++local.erase_fallback_scans;
      const Dataset& p = base.competitors();
      for (size_t i = 0; i < p.size(); ++i) {
        if (overlay.competitor_erased[i] != 0) continue;
        const double* q = p.data(static_cast<PointId>(i));
        if (Dominates(q, t, dims)) dominators.push_back(q);
      }
    } else {
      for (PointId row : sky_rows) {
        dominators.push_back(base.competitors().data(row));
      }
    }

    // Inserted competitors: linear scan through the batched kernels.
    if (!inserted_view.empty()) {
      inserted_hits.clear();
      FilterDominated(inserted_view, t, &inserted_hits, /*strict=*/true);
      for (uint32_t j : inserted_hits) {
        dominators.push_back(
            overlay.inserted_competitors.data(static_cast<PointId>(j)));
      }
    }

    // Re-reduce: overlay inserts may dominate base skyline members (and
    // vice versa), and UpgradeProduct requires a mutually non-dominating,
    // distinct set.
    SkylineOfPointers(&dominators, dims);

    ++local.candidates_evaluated;
    UpgradeOutcome outcome =
        UpgradeProduct(dominators, t, dims, cost_fn, epsilon);
    if (collector.Admits(outcome.cost)) {
      collector.Add(UpgradeResult{static_cast<PointId>(stable_id),
                                  outcome.cost, std::move(outcome.upgraded),
                                  outcome.already_competitive});
    }
  };

  const Dataset& base_products = base.products();
  for (size_t i = 0; i < base_products.size() && !should_stop(); ++i) {
    if (overlay.product_erased[i] != 0) continue;
    evaluate(base.product_id(static_cast<PointId>(i)),
             base_products.data(static_cast<PointId>(i)));
  }
  for (size_t j = 0;
       j < overlay.inserted_products.size() && stop_status.ok() &&
       !should_stop();
       ++j) {
    evaluate(overlay.inserted_product_ids[j],
             overlay.inserted_products.data(static_cast<PointId>(j)));
  }
  if (stats != nullptr) stats->MergeFrom(local);
  if (!stop_status.ok()) return stop_status;
  return collector.Finish();
}

}  // namespace skyup
