#include "serve/query.h"

#include <utility>
#include <vector>

#include "core/dominance_batch.h"
#include "core/lower_bounds.h"
#include "core/single_upgrade.h"
#include "core/topk_common.h"
#include "obs/trace.h"
#include "rtree/mbr.h"
#include "serve/upgrade_cache.h"
#include "skyline/dominating_skyline.h"
#include "skyline/incremental.h"
#include "util/check.h"

namespace skyup {

Result<std::vector<UpgradeResult>> TopKOverlay(
    const ReadView& view, const ProductCostFunction& cost_fn, size_t k,
    double epsilon, const QueryControl* control, ServeStats* stats) {
  if (view.snapshot == nullptr) {
    return Status::InvalidArgument("read view has no snapshot");
  }
  const Snapshot& base = *view.snapshot;
  const size_t dims = base.dims();
  SKYUP_RETURN_IF_ERROR(ValidateTopKQueryShape(dims, cost_fn, k, epsilon));
  SKYUP_TRACE_SPAN("serve/topk-overlay");

  ServeStats local;
  DeltaOverlay overlay = BuildOverlay(view);
  local.delta_ops_scanned += view.deltas.size();

  const size_t indexed = base.indexed_competitors();
  const uint8_t* erase_mask = overlay.competitors_erased > 0
                                  ? overlay.competitor_erased.data()
                                  : nullptr;
  const SoaView tail_view = base.tail_view();
  const SoaView inserted_view = overlay.competitor_block.view();

  // Bounding box of the *live* competitor set. The index root MBR is
  // exact over the snapshot's live indexed rows (tombstone erases condense
  // it); the unindexed tail and overlay inserts expand it point by point.
  // Overlay-erased tail rows are skipped here; overlay-erased *indexed*
  // rows cannot be subtracted from a box, which is what the face check
  // below is for.
  Mbr live_box = base.index().root_mbr();
  if (live_box.IsEmpty()) live_box = Mbr(dims);
  for (size_t j = 0; j < base.tail_competitors(); ++j) {
    const size_t row = indexed + j;
    if (erase_mask != nullptr && erase_mask[row] != 0) continue;
    live_box.Expand(base.competitors().data(static_cast<PointId>(row)));
  }
  for (size_t j = 0; j < overlay.inserted_competitors.size(); ++j) {
    live_box.Expand(
        overlay.inserted_competitors.data(static_cast<PointId>(j)));
  }
  const bool have_box = !live_box.IsEmpty();

  // Soundness gate for the box lower bound: kSound's per-dimension escape
  // assumes every *min* face of the box is attained by a live competitor.
  // Pending overlay erases of indexed rows are still inside the root MBR,
  // so if such a row touches any face of the final box the attainment
  // guarantee is gone and the prune sits out this query (conservative:
  // max faces only need containment, but the check covers both).
  bool prune_ok = true;
  if (have_box && erase_mask != nullptr) {
    for (PointId r : overlay.erased_competitor_rows) {
      if (static_cast<size_t>(r) >= indexed) continue;
      const double* q = base.competitors().data(r);
      for (size_t d = 0; d < dims && prune_ok; ++d) {
        // lint: float-eq-ok (exact face-touch test: the box faces are
        // copies of competitor coordinates, so equality is the precise
        // "this erased row attains a face" predicate)
        if (q[d] == live_box.min(d) || q[d] == live_box.max(d)) {
          prune_ok = false;
        }
      }
      if (!prune_ok) break;
    }
    if (!prune_ok) ++local.prune_disabled_queries;
  }

  TopKCollector collector(k);

  size_t since_poll = 0;
  Status stop_status;
  auto should_stop = [&]() {
    if (control == nullptr) return false;
    if (since_poll++ % QueryControl::kPollStride != 0) return false;
    Status st = control->Check();
    if (st.ok()) return false;
    stop_status = std::move(st);
    return true;
  };

  // Scratch reused across candidates — no per-candidate allocations once
  // the buffers reach steady-state capacity.
  std::vector<PointId> sky_rows;
  std::vector<uint32_t> scan_hits;
  std::vector<const double*> dominators;
  UpgradeCache* const cache = view.cache.get();
  UpgradeCache::Hit hit;
  auto evaluate = [&](uint64_t stable_id, const double* t) {
    // Cached result first: a hit is the exact Algorithm-1 outcome for
    // this product at this view's version (serve/upgrade_cache.h), so the
    // probe, the overlay folds, and the upgrade itself are all skipped.
    if (cache != nullptr && cache->Lookup(stable_id, view.version, epsilon,
                                          collector.KthCost(), &hit)) {
      ++local.cache_hits;
      if (collector.Admits(hit.cost)) {
        collector.Add(UpgradeResult{static_cast<PointId>(stable_id),
                                    hit.cost, std::move(hit.upgraded),
                                    hit.already_competitive});
      }
      return;
    }
    if (cache != nullptr) ++local.cache_misses;

    // Sound box prune: with a full collector, any candidate whose bound
    // already exceeds the current k-th cost cannot enter the top-k.
    // KthCost() is +inf until k candidates are held, so nothing is ever
    // pruned before the collector can reject it honestly.
    if (prune_ok && have_box) {
      const double bound =
          LbcPair(t, live_box.min_data(), live_box.max_data(), dims,
                  cost_fn, BoundMode::kSound);
      if (bound > collector.KthCost()) {
        ++local.candidates_pruned;
        return;
      }
    }

    // One tombstone- and overlay-mask-aware probe: erased rows never enter
    // the traversal's dominance window, so the probe returns the exact
    // live-indexed dominator skyline — no invalidation, no rescan.
    DominatingSkylineInto(base.index(), t, erase_mask, &sky_rows);
    dominators.clear();
    for (PointId row : sky_rows) {
      dominators.push_back(base.competitors().data(row));
    }

    // Fold the snapshot tail, then the overlay inserts, into the skyline
    // one point at a time. Each patch preserves the value-set semantics of
    // a from-scratch reduction, so the final dominator set is exactly what
    // a rebuilt snapshot would have probed.
    if (!tail_view.empty()) {
      scan_hits.clear();
      FilterDominated(tail_view, t, &scan_hits, /*strict=*/true);
      for (uint32_t j : scan_hits) {
        const size_t row = indexed + j;
        if (erase_mask != nullptr && erase_mask[row] != 0) continue;
        PatchSkylineInsert(&dominators,
                           base.competitors().data(static_cast<PointId>(row)),
                           dims);
      }
    }
    if (!inserted_view.empty()) {
      scan_hits.clear();
      FilterDominated(inserted_view, t, &scan_hits, /*strict=*/true);
      for (uint32_t j : scan_hits) {
        PatchSkylineInsert(
            &dominators,
            overlay.inserted_competitors.data(static_cast<PointId>(j)),
            dims);
      }
    }

    ++local.candidates_evaluated;
    UpgradeOutcome outcome =
        UpgradeProduct(dominators, t, dims, cost_fn, epsilon);
    if (cache != nullptr) {
      // `dominators` is the exact live dominator skyline the outcome was
      // derived from; the cache copies both before the result moves on.
      cache->Store(stable_id, t, view.version, epsilon, outcome,
                   dominators);
    }
    if (collector.Admits(outcome.cost)) {
      collector.Add(UpgradeResult{static_cast<PointId>(stable_id),
                                  outcome.cost, std::move(outcome.upgraded),
                                  outcome.already_competitive});
    }
  };

  const Dataset& base_products = base.products();
  for (size_t i = 0; i < base_products.size() && !should_stop(); ++i) {
    if (overlay.product_erased[i] != 0) continue;
    evaluate(base.product_id(static_cast<PointId>(i)),
             base_products.data(static_cast<PointId>(i)));
  }
  for (size_t j = 0;
       j < overlay.inserted_products.size() && stop_status.ok() &&
       !should_stop();
       ++j) {
    evaluate(overlay.inserted_product_ids[j],
             overlay.inserted_products.data(static_cast<PointId>(j)));
  }
  if (stats != nullptr) stats->MergeFrom(local);
  if (!stop_status.ok()) return stop_status;
  return collector.Finish();
}

}  // namespace skyup
