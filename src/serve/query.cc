#include "serve/query.h"

#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "core/dominance_batch.h"
#include "core/lower_bounds.h"
#include "core/single_upgrade.h"
#include "core/topk_common.h"
#include "obs/trace.h"
#include "rtree/mbr.h"
#include "serve/skyline_memo.h"
#include "serve/upgrade_cache.h"
#include "skyline/dominating_skyline.h"
#include "skyline/incremental.h"
#include "util/check.h"

namespace skyup {

namespace {

// The skyline memo's erased-row clock. Within an epoch the delta log is
// append-only, so the erased *indexed* rows a view observes are a prefix
// of the epoch's erase sequence — fully described by their count. Erases
// of tail rows are excluded: the indexed probe never reads them, so views
// differing only in tail erases share memo entries soundly.
uint64_t ErasedIndexedCount(const DeltaOverlay& overlay, size_t indexed) {
  uint64_t n = 0;
  for (PointId row : overlay.erased_competitor_rows) {
    if (static_cast<size_t>(row) < indexed) ++n;
  }
  return n;
}

}  // namespace

Result<std::vector<UpgradeResult>> TopKOverlay(
    const ReadView& view, const ProductCostFunction& cost_fn, size_t k,
    double epsilon, const QueryControl* control, ServeStats* stats,
    QueryTelemetry* telemetry) {
  if (view.snapshot == nullptr) {
    return Status::InvalidArgument("read view has no snapshot");
  }
  const Snapshot& base = *view.snapshot;
  const size_t dims = base.dims();
  SKYUP_RETURN_IF_ERROR(ValidateTopKQueryShape(dims, cost_fn, k, epsilon));
  SKYUP_TRACE_SPAN_Q("serve/topk-overlay",
                     control != nullptr ? control->query_id() : 0);

  // Phase attribution is opt-in per query: a null telemetry sink compiles
  // every lap below down to a pointer test (obs/phase_timings.h), so only
  // queries the flight recorder asked to attribute pay the clock reads.
  std::unique_ptr<ShardTelemetry> shard_telemetry;
  if (telemetry != nullptr) {
    shard_telemetry = std::make_unique<ShardTelemetry>();
  }
  ShardTelemetry* const tel = shard_telemetry.get();

  ServeStats local;
  DeltaOverlay overlay = BuildOverlay(view);
  local.delta_ops_scanned += view.deltas.size();

  const size_t indexed = base.indexed_competitors();
  const uint8_t* erase_mask = overlay.competitors_erased > 0
                                  ? overlay.competitor_erased.data()
                                  : nullptr;
  const SoaView tail_view = base.tail_view();
  const SoaView inserted_view = overlay.competitor_block.view();

  // Bounding box of the *live* competitor set. The index root MBR is
  // exact over the snapshot's live indexed rows (tombstone erases condense
  // it); the unindexed tail and overlay inserts expand it point by point.
  // Overlay-erased tail rows are skipped here; overlay-erased *indexed*
  // rows cannot be subtracted from a box, which is what the face check
  // below is for.
  Mbr live_box = base.index().root_mbr();
  if (live_box.IsEmpty()) live_box = Mbr(dims);
  for (size_t j = 0; j < base.tail_competitors(); ++j) {
    const size_t row = indexed + j;
    if (erase_mask != nullptr && erase_mask[row] != 0) continue;
    live_box.Expand(base.competitors().data(static_cast<PointId>(row)));
  }
  for (size_t j = 0; j < overlay.inserted_competitors.size(); ++j) {
    live_box.Expand(
        overlay.inserted_competitors.data(static_cast<PointId>(j)));
  }
  const bool have_box = !live_box.IsEmpty();

  // Soundness gate for the box lower bound: kSound's per-dimension escape
  // assumes every *min* face of the box is attained by a live competitor.
  // Pending overlay erases of indexed rows are still inside the root MBR,
  // so if such a row touches any face of the final box the attainment
  // guarantee is gone and the prune sits out this query (conservative:
  // max faces only need containment, but the check covers both).
  bool prune_ok = true;
  if (have_box && erase_mask != nullptr) {
    for (PointId r : overlay.erased_competitor_rows) {
      if (static_cast<size_t>(r) >= indexed) continue;
      const double* q = base.competitors().data(r);
      for (size_t d = 0; d < dims && prune_ok; ++d) {
        // lint: float-eq-ok (exact face-touch test: the box faces are
        // copies of competitor coordinates, so equality is the precise
        // "this erased row attains a face" predicate)
        if (q[d] == live_box.min(d) || q[d] == live_box.max(d)) {
          prune_ok = false;
        }
      }
      if (!prune_ok) break;
    }
    if (!prune_ok) ++local.prune_disabled_queries;
  }

  TopKCollector collector(k);

  size_t since_poll = 0;
  Status stop_status;
  auto should_stop = [&]() {
    if (control == nullptr) return false;
    if (since_poll++ % QueryControl::kPollStride != 0) return false;
    Status st = control->Check();
    if (st.ok()) return false;
    stop_status = std::move(st);
    return true;
  };

  // Scratch reused across candidates — no per-candidate allocations once
  // the buffers reach steady-state capacity.
  std::vector<PointId> sky_rows;
  std::vector<uint32_t> scan_hits;
  std::vector<const double*> dominators;
  UpgradeCache* const cache = view.cache.get();
  UpgradeCache::Hit hit;
  SkylineMemo* const memo = view.memo.get();
  const uint64_t epoch = view.epoch();
  const uint64_t erased_indexed = ErasedIndexedCount(overlay, indexed);
  auto evaluate = [&](uint64_t stable_id, const double* t) {
    // Cached result first: a hit is the exact Algorithm-1 outcome for
    // this product at this view's version (serve/upgrade_cache.h), so the
    // probe, the overlay folds, and the upgrade itself are all skipped.
    if (cache != nullptr && cache->Lookup(stable_id, view.version, epsilon,
                                          collector.KthCost(), &hit)) {
      ++local.cache_hits;
      if (collector.Admits(hit.cost)) {
        collector.Add(UpgradeResult{static_cast<PointId>(stable_id),
                                    hit.cost, std::move(hit.upgraded),
                                    hit.already_competitive});
      }
      LapOther(tel);  // cache-served: no probe/upgrade phase to charge
      return;
    }
    if (cache != nullptr) ++local.cache_misses;

    // Sound box prune: with a full collector, any candidate whose bound
    // already exceeds the current k-th cost cannot enter the top-k.
    // KthCost() is +inf until k candidates are held, so nothing is ever
    // pruned before the collector can reject it honestly.
    if (prune_ok && have_box) {
      const double bound =
          LbcPair(t, live_box.min_data(), live_box.max_data(), dims,
                  cost_fn, BoundMode::kSound);
      LapPrune(tel);
      if (bound > collector.KthCost()) {
        ++local.candidates_pruned;
        return;
      }
    }

    // One tombstone- and overlay-mask-aware probe: erased rows never enter
    // the traversal's dominance window, so the probe returns the exact
    // live-indexed dominator skyline — no invalidation, no rescan. The
    // epoch-scoped memo short-circuits it when any query of this epoch
    // (under the same erased-indexed prefix) probed the same point: the
    // memoized rows are that probe's exact value set
    // (serve/skyline_memo.h), and the overlay folds below re-apply this
    // view's own deltas on top either way.
    if (memo != nullptr &&
        memo->Lookup(epoch, t, erased_indexed, &sky_rows)) {
      ++local.memo_hits;
    } else {
      if (memo != nullptr) ++local.memo_misses;
      DominatingSkylineInto(base.index(), t, erase_mask, &sky_rows);
      if (memo != nullptr) memo->Store(epoch, t, erased_indexed, sky_rows);
    }
    dominators.clear();
    for (PointId row : sky_rows) {
      dominators.push_back(base.competitors().data(row));
    }
    LapProbe(tel);

    // Fold the snapshot tail, then the overlay inserts, into the skyline
    // one point at a time. Each patch preserves the value-set semantics of
    // a from-scratch reduction, so the final dominator set is exactly what
    // a rebuilt snapshot would have probed.
    if (!tail_view.empty()) {
      scan_hits.clear();
      FilterDominated(tail_view, t, &scan_hits, /*strict=*/true);
      for (uint32_t j : scan_hits) {
        const size_t row = indexed + j;
        if (erase_mask != nullptr && erase_mask[row] != 0) continue;
        PatchSkylineInsert(&dominators,
                           base.competitors().data(static_cast<PointId>(row)),
                           dims);
      }
    }
    if (!inserted_view.empty()) {
      scan_hits.clear();
      FilterDominated(inserted_view, t, &scan_hits, /*strict=*/true);
      for (uint32_t j : scan_hits) {
        PatchSkylineInsert(
            &dominators,
            overlay.inserted_competitors.data(static_cast<PointId>(j)),
            dims);
      }
    }
    LapSkyline(tel);

    ++local.candidates_evaluated;
    UpgradeOutcome outcome =
        UpgradeProduct(dominators, t, dims, cost_fn, epsilon);
    if (cache != nullptr) {
      // `dominators` is the exact live dominator skyline the outcome was
      // derived from; the cache copies both before the result moves on.
      cache->Store(stable_id, t, view.version, epsilon, outcome,
                   dominators);
    }
    if (collector.Admits(outcome.cost)) {
      collector.Add(UpgradeResult{static_cast<PointId>(stable_id),
                                  outcome.cost, std::move(outcome.upgraded),
                                  outcome.already_competitive});
    }
    LapUpgrade(tel);
  };

  const Dataset& base_products = base.products();
  for (size_t i = 0; i < base_products.size() && !should_stop(); ++i) {
    if (overlay.product_erased[i] != 0) continue;
    evaluate(base.product_id(static_cast<PointId>(i)),
             base_products.data(static_cast<PointId>(i)));
  }
  for (size_t j = 0;
       j < overlay.inserted_products.size() && stop_status.ok() &&
       !should_stop();
       ++j) {
    evaluate(overlay.inserted_product_ids[j],
             overlay.inserted_products.data(static_cast<PointId>(j)));
  }
  if (tel != nullptr) {
    // Residual loop/collector time since the last lap, then flush — this
    // runs on BOTH exits, so a deadline-killed query still reports the
    // phases it paid before unwinding.
    tel->LapMerge();
    tel->FlushInto(telemetry);
  }
  if (stats != nullptr) stats->MergeFrom(local);
  if (!stop_status.ok()) return stop_status;
  return collector.Finish();
}

// Grouped execution. Exactness hinges on two properties, both argued in
// docs/algorithms.md ("Cross-query amortization"):
//  1. Offer order: a candidate's outcome is offered to every participating
//     collector in candidate order, even when its resolution (cache hit,
//     memo hit, tile probe) happened out of order — so each collector sees
//     exactly the solo sequence of (cost, id) offers.
//  2. Stale-prune safety: per-candidate skip decisions are made with the
//     collector state at *buffering* time, whose k-th cost is an upper
//     bound of the solo value at that candidate (offers only lower it).
//     The batch therefore prunes a subset of what solo prunes; the extra
//     evaluated candidates carry cost >= bound > solo k-th cost and are
//     rejected by Admits at offer time, leaving the collector unchanged.
void TopKOverlayBatch(const ReadView& view,
                      const ProductCostFunction& cost_fn,
                      const std::vector<BatchQuery>& queries,
                      double epsilon, std::vector<BatchQueryResult>* out,
                      ServeStats* stats) {
  SKYUP_CHECK(out != nullptr);
  SKYUP_CHECK(queries.size() >= 1 && queries.size() <= kMaxServeBatch)
      << "batch width out of range";
  const size_t n = queries.size();
  out->clear();
  out->resize(n);
  if (view.snapshot == nullptr) {
    for (BatchQueryResult& r : *out) {
      r.status = Status::InvalidArgument("read view has no snapshot");
    }
    return;
  }
  const Snapshot& base = *view.snapshot;
  const size_t dims = base.dims();
  SKYUP_TRACE_SPAN("serve/topk-overlay-batch");

  ServeStats local;
  DeltaOverlay overlay = BuildOverlay(view);
  // Shared overlay fold: counted once per group, not once per member.
  local.delta_ops_scanned += view.deltas.size();

  const size_t indexed = base.indexed_competitors();
  const uint8_t* erase_mask = overlay.competitors_erased > 0
                                  ? overlay.competitor_erased.data()
                                  : nullptr;
  const SoaView tail_view = base.tail_view();
  const SoaView inserted_view = overlay.competitor_block.view();

  // Live bounding box + prune soundness gate: identical to the solo
  // engine's (the box depends only on the view, which the group shares).
  Mbr live_box = base.index().root_mbr();
  if (live_box.IsEmpty()) live_box = Mbr(dims);
  for (size_t j = 0; j < base.tail_competitors(); ++j) {
    const size_t row = indexed + j;
    if (erase_mask != nullptr && erase_mask[row] != 0) continue;
    live_box.Expand(base.competitors().data(static_cast<PointId>(row)));
  }
  for (size_t j = 0; j < overlay.inserted_competitors.size(); ++j) {
    live_box.Expand(
        overlay.inserted_competitors.data(static_cast<PointId>(j)));
  }
  const bool have_box = !live_box.IsEmpty();
  bool prune_ok = true;
  if (have_box && erase_mask != nullptr) {
    for (PointId r : overlay.erased_competitor_rows) {
      if (static_cast<size_t>(r) >= indexed) continue;
      const double* q = base.competitors().data(r);
      for (size_t d = 0; d < dims && prune_ok; ++d) {
        // lint: float-eq-ok (exact face-touch test, see TopKOverlay)
        if (q[d] == live_box.min(d) || q[d] == live_box.max(d)) {
          prune_ok = false;
        }
      }
      if (!prune_ok) break;
    }
    if (!prune_ok) ++local.prune_disabled_queries;
  }

  struct QueryState {
    explicit QueryState(size_t k) : collector(k) {}
    TopKCollector collector;
    const QueryControl* control = nullptr;
    size_t since_poll = 0;
    Status stop;
  };
  std::vector<QueryState> qs;
  qs.reserve(n);
  uint64_t live = 0;  // bit i = queries[i] is valid and still running
  for (size_t i = 0; i < n; ++i) {
    Status shape =
        ValidateTopKQueryShape(dims, cost_fn, queries[i].k, epsilon);
    if (!shape.ok()) {
      (*out)[i].status = std::move(shape);
      qs.emplace_back(1);  // placeholder, never participates
      continue;
    }
    qs.emplace_back(queries[i].k);
    qs.back().control = queries[i].control;
    live |= uint64_t{1} << i;
  }
  if (live == 0) {
    if (stats != nullptr) stats->MergeFrom(local);
    return;
  }

  UpgradeCache* const cache = view.cache.get();
  SkylineMemo* const memo = view.memo.get();
  const uint64_t epoch = view.epoch();
  const uint64_t erased_indexed = ErasedIndexedCount(overlay, indexed);

  // A buffered candidate: who still wants it and how far resolution got.
  enum class ItemKind : uint8_t { kCacheHit, kSkylineReady, kNeedsProbe };
  struct Item {
    uint64_t stable_id = 0;
    const double* t = nullptr;  // stable: points into snapshot/overlay data
    uint64_t offer_mask = 0;
    ItemKind kind = ItemKind::kNeedsProbe;
    UpgradeCache::Hit hit;           // kCacheHit
    std::vector<PointId> sky_rows;   // kSkylineReady
  };
  std::vector<Item> pending;
  size_t pending_head = 0;
  std::vector<size_t> tile_items;  // pending indices awaiting the probe
  std::vector<const double*> tile_ptrs;
  std::vector<std::vector<PointId>> tile_results(kMaxDominanceTile);

  // Scratch reused across candidates.
  std::vector<PointId> sky_rows;
  std::vector<uint32_t> scan_hits;
  std::vector<const double*> dominators;
  UpgradeCache::Hit hit;

  // Resolved-candidate completion: collectors are up to date here (every
  // earlier candidate has been offered), so Admits/Add see the exact solo
  // state.
  auto complete = [&](Item& item) {
    if (item.kind == ItemKind::kCacheHit) {
      for (uint64_t m = item.offer_mask; m != 0; m &= m - 1) {
        QueryState& q = qs[static_cast<size_t>(__builtin_ctzll(m))];
        if (q.collector.Admits(item.hit.cost)) {
          q.collector.Add(UpgradeResult{
              static_cast<PointId>(item.stable_id), item.hit.cost,
              item.hit.upgraded, item.hit.already_competitive});
        }
      }
      return;
    }
    dominators.clear();
    for (PointId row : item.sky_rows) {
      dominators.push_back(base.competitors().data(row));
    }
    if (!tail_view.empty()) {
      scan_hits.clear();
      FilterDominated(tail_view, item.t, &scan_hits, /*strict=*/true);
      for (uint32_t j : scan_hits) {
        const size_t row = indexed + j;
        if (erase_mask != nullptr && erase_mask[row] != 0) continue;
        PatchSkylineInsert(&dominators,
                           base.competitors().data(static_cast<PointId>(row)),
                           dims);
      }
    }
    if (!inserted_view.empty()) {
      scan_hits.clear();
      FilterDominated(inserted_view, item.t, &scan_hits, /*strict=*/true);
      for (uint32_t j : scan_hits) {
        PatchSkylineInsert(
            &dominators,
            overlay.inserted_competitors.data(static_cast<PointId>(j)),
            dims);
      }
    }
    ++local.candidates_evaluated;
    UpgradeOutcome outcome =
        UpgradeProduct(dominators, item.t, dims, cost_fn, epsilon);
    if (cache != nullptr) {
      cache->Store(item.stable_id, item.t, view.version, epsilon, outcome,
                   dominators);
    }
    for (uint64_t m = item.offer_mask; m != 0; m &= m - 1) {
      QueryState& q = qs[static_cast<size_t>(__builtin_ctzll(m))];
      if (q.collector.Admits(outcome.cost)) {
        q.collector.Add(UpgradeResult{static_cast<PointId>(item.stable_id),
                                      outcome.cost, outcome.upgraded,
                                      outcome.already_competitive});
      }
    }
  };

  // Probes every tile member with one shared traversal, then drains the
  // whole pending run in candidate order.
  auto flush = [&]() {
    if (!tile_items.empty()) {
      tile_ptrs.clear();
      for (size_t idx : tile_items) tile_ptrs.push_back(pending[idx].t);
      DominatingSkylineTileInto(base.index(), tile_ptrs.data(),
                                tile_ptrs.size(), erase_mask,
                                tile_results.data());
      for (size_t u = 0; u < tile_items.size(); ++u) {
        Item& item = pending[tile_items[u]];
        item.sky_rows = std::move(tile_results[u]);
        item.kind = ItemKind::kSkylineReady;
        if (memo != nullptr) {
          memo->Store(epoch, item.t, erased_indexed, item.sky_rows);
        }
      }
      tile_items.clear();
    }
    for (; pending_head < pending.size(); ++pending_head) {
      complete(pending[pending_head]);
    }
    pending.clear();
    pending_head = 0;
  };

  auto process_candidate = [&](uint64_t stable_id, const double* t) {
    // Shared upgrade-cache lookup. The admit hint is the max k-th cost over
    // the group: any member that later admits the hit satisfies
    // cost <= its-kth <= hint, so the payload was copied (the same
    // invariant the solo engine's per-query hint provides).
    if (cache != nullptr) {
      double hint = -std::numeric_limits<double>::infinity();
      for (uint64_t m = live; m != 0; m &= m - 1) {
        const double kth =
            qs[static_cast<size_t>(__builtin_ctzll(m))].collector.KthCost();
        if (kth > hint) hint = kth;
      }
      if (cache->Lookup(stable_id, view.version, epsilon, hint, &hit)) {
        ++local.cache_hits;
        Item item;
        item.stable_id = stable_id;
        item.t = t;
        item.offer_mask = live;
        item.kind = ItemKind::kCacheHit;
        item.hit = std::move(hit);
        if (pending.empty()) {
          complete(item);
        } else {
          pending.push_back(std::move(item));
        }
        return;
      }
      ++local.cache_misses;
    }

    uint64_t mask = live;
    if (prune_ok && have_box) {
      const double bound = LbcPair(t, live_box.min_data(),
                                   live_box.max_data(), dims, cost_fn,
                                   BoundMode::kSound);
      uint64_t keep = 0;
      for (uint64_t m = mask; m != 0; m &= m - 1) {
        const size_t i = static_cast<size_t>(__builtin_ctzll(m));
        if (!(bound > qs[i].collector.KthCost())) keep |= uint64_t{1} << i;
      }
      local.candidates_pruned +=
          static_cast<uint64_t>(__builtin_popcountll(mask & ~keep));
      mask = keep;
    }
    if (mask == 0) return;

    if (memo != nullptr && memo->Lookup(epoch, t, erased_indexed,
                                        &sky_rows)) {
      ++local.memo_hits;
      Item item;
      item.stable_id = stable_id;
      item.t = t;
      item.offer_mask = mask;
      item.kind = ItemKind::kSkylineReady;
      item.sky_rows = std::move(sky_rows);
      sky_rows = {};
      if (pending.empty()) {
        complete(item);
      } else {
        pending.push_back(std::move(item));
      }
      return;
    }
    if (memo != nullptr) ++local.memo_misses;

    Item item;
    item.stable_id = stable_id;
    item.t = t;
    item.offer_mask = mask;
    item.kind = ItemKind::kNeedsProbe;
    pending.push_back(std::move(item));
    tile_items.push_back(pending.size() - 1);
    if (tile_items.size() == kMaxDominanceTile) flush();
  };

  // Cooperative cancellation, per member: mirrors the solo loop's
  // once-per-candidate-row poll stride.
  auto poll = [&]() {
    for (uint64_t m = live; m != 0; m &= m - 1) {
      const size_t i = static_cast<size_t>(__builtin_ctzll(m));
      QueryState& q = qs[i];
      if (q.control == nullptr) continue;
      if (q.since_poll++ % QueryControl::kPollStride != 0) continue;
      Status st = q.control->Check();
      if (!st.ok()) {
        q.stop = std::move(st);
        live &= ~(uint64_t{1} << i);
      }
    }
  };

  const Dataset& base_products = base.products();
  for (size_t i = 0; i < base_products.size() && live != 0; ++i) {
    poll();
    if (live == 0) break;
    if (overlay.product_erased[i] != 0) continue;
    process_candidate(base.product_id(static_cast<PointId>(i)),
                      base_products.data(static_cast<PointId>(i)));
  }
  for (size_t j = 0; j < overlay.inserted_products.size() && live != 0;
       ++j) {
    poll();
    if (live == 0) break;
    process_candidate(overlay.inserted_product_ids[j],
                      overlay.inserted_products.data(static_cast<PointId>(j)));
  }
  flush();

  for (size_t i = 0; i < n; ++i) {
    BatchQueryResult& r = (*out)[i];
    if (!r.status.ok()) continue;  // invalid shape, already recorded
    if (!qs[i].stop.ok()) {
      r.status = qs[i].stop;
      continue;
    }
    r.results = qs[i].collector.Finish();
  }
  if (stats != nullptr) stats->MergeFrom(local);
}

}  // namespace skyup
