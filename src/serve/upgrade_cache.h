#ifndef SKYUP_SERVE_UPGRADE_CACHE_H_
#define SKYUP_SERVE_UPGRADE_CACHE_H_

// Versioned per-product cache of Algorithm-1 results with dominance-based
// invalidation, shared by every query view of one live table.
//
// A product's upgrade result is a pure function of its coordinates, the
// cost function, epsilon, and the *value set* of its dominator skyline.
// Updates that provably leave that value set unchanged therefore cannot
// change the result, so the cache keeps each entry until an accepted op
// actually threatens its skyline:
//   - competitor insert q invalidates t's entry iff q dominates t and no
//     stored skyline member dominates-or-equals q (a member covering q
//     keeps q out of the skyline; transitivity covers everything q would
//     have shadowed);
//   - competitor erase r invalidates t's entry iff r dominates t and no
//     stored member *strictly* dominates r (a strict dominator proves r
//     was never a skyline value and that r's shadow stays covered; an
//     erase of a member — or of a duplicate of one — conservatively
//     invalidates);
//   - product erase drops the entry; product insert starts uncached.
//
// Versioning makes reuse sound across stale views: `version()` counts the
// accepted ops observed (the table calls OnDeltaOp under its mutex, in
// acceptance order, before the op is visible to any reader), every
// ReadView stamps the count at capture, and a hit requires
// `entry.version <= view.version` — an entry that survived invalidation
// through the current version has an unchanged skyline at every version
// since it was stored, including the view's. `Store` drops results whose
// view is no longer current, so a slow query can never publish a stale
// entry.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/single_upgrade.h"
#include "serve/delta_log.h"
#include "util/lock_order.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace skyup {

class UpgradeCache {
 public:
  explicit UpgradeCache(size_t dims);

  UpgradeCache(const UpgradeCache&) = delete;
  UpgradeCache& operator=(const UpgradeCache&) = delete;

  /// Observes one accepted op. Must be called in acceptance order, before
  /// any reader can see the op (the live table calls this under its mutex,
  /// right after the delta-log append). Erase ops carry no coordinates, so
  /// the cache keeps its own id -> coords map of live competitors, fed by
  /// the same op stream.
  void OnDeltaOp(const DeltaOp& op);

  /// Number of ops observed so far (the view-version clock).
  uint64_t version() const;

  struct Hit {
    double cost = 0.0;
    bool already_competitive = false;
    /// True iff `upgraded` was filled (cost <= the admit hint). The cost
    /// alone decides admission, so losers skip the vector copy.
    bool payload_copied = false;
    std::vector<double> upgraded;
  };

  /// Looks up the cached result for `product_id`, valid at `view_version`
  /// under exactly this `epsilon`. On a hit, `out->upgraded` is copied
  /// only when the cached cost is <= `admit_hint` (pass the collector's
  /// current k-th cost).
  bool Lookup(uint64_t product_id, uint64_t view_version, double epsilon,
              double admit_hint, Hit* out) const;

  /// Stores a freshly computed result together with the dominator-skyline
  /// values it was derived from. Dropped silently when an op landed after
  /// `view_version` — the result may already be stale.
  void Store(uint64_t product_id, const double* coords,
             uint64_t view_version, double epsilon,
             const UpgradeOutcome& outcome,
             const std::vector<const double*>& skyline);

  size_t size() const;
  size_t dims() const { return dims_; }

 private:
  struct Entry {
    std::vector<double> coords;   ///< the product's coordinates
    std::vector<double> skyline;  ///< flattened dominator-skyline values
    std::vector<double> upgraded;
    double cost = 0.0;
    double epsilon = 0.0;
    bool already_competitive = false;
    uint64_t version = 0;  ///< ops observed when the entry was computed
  };

  const size_t dims_;
  mutable Mutex mu_ SKYUP_ACQUIRED_AFTER(lock_order::kTableSub)
      SKYUP_ACQUIRED_BEFORE(lock_order::kObsRegistry);
  uint64_t version_ SKYUP_GUARDED_BY(mu_) = 0;
  std::unordered_map<uint64_t, Entry> entries_ SKYUP_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::vector<double>> competitor_coords_
      SKYUP_GUARDED_BY(mu_);
};

}  // namespace skyup

#endif  // SKYUP_SERVE_UPGRADE_CACHE_H_
