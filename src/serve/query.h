#ifndef SKYUP_SERVE_QUERY_H_
#define SKYUP_SERVE_QUERY_H_

// The serving-layer top-k engine: one query against a captured `ReadView`
// (immutable snapshot + delta overlay).
//
// Per candidate, the engine runs one *mask-aware* probe of the snapshot's
// flat index — index tombstones and pending overlay erases are composed
// into a per-row mask, so a dead competitor never enters the traversal's
// dominance window and can never shadow a live dominator; the probe
// returns the exact live-indexed dominator skyline with no invalidation
// rescan. The snapshot's unindexed tail and the overlay's inserts are then
// folded in one point at a time (skyline/incremental.h), preserving
// value-set semantics, and Algorithm 1 runs exactly. Results carry
// *stable ids* in `UpgradeResult::product_id` and are exactly what a
// from-scratch rebuild of the live state would return (the differential
// fuzz harness fuzz/fuzz_serve.cc enforces equality).
//
// The sound box lower-bound prune of the batch engines runs here too: the
// live bounding box starts from the index root MBR (kept exact over live
// rows by tombstone condensation) and expands by live tail rows and
// overlay inserts. The one hole — a *pending* overlay erase whose row
// still props up a face of the box, breaking kSound's face-attainment
// guarantee — is closed per query by disabling the prune when any pending
// erased indexed row touches a face (`prune_disabled_queries` counts
// these). docs/algorithms.md, "Serving & online updates", has the full
// argument.

#include <cstdint>
#include <vector>

#include "core/cost_function.h"
#include "core/query_control.h"
#include "core/upgrade_result.h"
#include "obs/phase_timings.h"
#include "serve/delta_log.h"
#include "serve/serve_stats.h"
#include "util/status.h"

namespace skyup {

/// Top-k upgrades over the live state captured by `view`. Candidates are
/// every live product (base rows not erased + overlay inserts); ids in the
/// results are stable ids. An empty live product set yields an empty
/// result (unlike the batch engines, which reject empty T). `control` and
/// `stats` may be null; the engine bumps `delta_ops_scanned`,
/// `candidates_evaluated`, `candidates_pruned`, and
/// `prune_disabled_queries` (`erase_fallback_scans` stays 0 — the
/// mask-aware probe removed the fallback path it counted). `telemetry`
/// (may be null) collects the per-phase wall breakdown via per-candidate
/// clock laps — the flight recorder requests it for controlled queries;
/// null keeps the hot path free of clock reads.
Result<std::vector<UpgradeResult>> TopKOverlay(
    const ReadView& view, const ProductCostFunction& cost_fn, size_t k,
    double epsilon = 1e-6, const QueryControl* control = nullptr,
    ServeStats* stats = nullptr, QueryTelemetry* telemetry = nullptr);

/// Maximum number of queries one grouped execution accepts (per-candidate
/// participation masks are one `uint64_t`).
inline constexpr size_t kMaxServeBatch = 64;

/// One member of a grouped execution. All members share the view, the cost
/// function, and epsilon; `k` and the cancel/deadline token are per query.
struct BatchQuery {
  size_t k = 1;
  const QueryControl* control = nullptr;  ///< may be null
};

/// Outcome slot for one member: exactly what the corresponding solo
/// `TopKOverlay` call would have returned.
struct BatchQueryResult {
  Status status;
  std::vector<UpgradeResult> results;
};

/// Grouped execution: runs every query in `queries` against the same view
/// as ONE candidate sweep. Per candidate, the sound box prune and the
/// upgrade-cache lookup are shared; candidates that still need an index
/// probe are buffered into a tile of up to `kMaxDominanceTile` points and
/// probed with one shared traversal (`DominatingSkylineTileInto`); resolved
/// candidates are then *offered to every participating collector in
/// candidate order*, which makes each member's result bit-identical to its
/// solo execution (docs/algorithms.md, "Cross-query amortization", has the
/// stale-prune and offer-order arguments). Work counters amortize:
/// `delta_ops_scanned` and `candidates_evaluated` count shared work once
/// per group, not once per member.
///
/// `out` is resized to `queries.size()`; `out[i]` corresponds to
/// `queries[i]`. `queries.size()` must be in [1, kMaxServeBatch].
void TopKOverlayBatch(const ReadView& view,
                      const ProductCostFunction& cost_fn,
                      const std::vector<BatchQuery>& queries,
                      double epsilon, std::vector<BatchQueryResult>* out,
                      ServeStats* stats = nullptr);

}  // namespace skyup

#endif  // SKYUP_SERVE_QUERY_H_
