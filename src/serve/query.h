#ifndef SKYUP_SERVE_QUERY_H_
#define SKYUP_SERVE_QUERY_H_

// The serving-layer top-k engine: one query against a captured `ReadView`
// (immutable snapshot + delta overlay).
//
// Per candidate, the engine probes the snapshot's flat index for the base
// dominator skyline, patches it with the overlay — a linear batched-kernel
// scan over inserted competitors, and an erase-invalidation check that
// falls back to a full live-row scan only when an erased competitor shows
// up in the probed skyline — re-reduces to a skyline, and runs Algorithm 1
// exactly. Results carry *stable ids* in `UpgradeResult::product_id` and
// are exactly what a from-scratch rebuild of the live state would return
// (the differential fuzz harness fuzz/fuzz_serve.cc enforces equality).
//
// Unlike the batch engines, no box lower-bound prune runs here: a P-erase
// can only lower upgrade costs, so a bound derived from the (stale) base
// root MBR is not sound against the live state. docs/algorithms.md,
// "Serving & online updates", has the full argument.

#include <cstdint>
#include <vector>

#include "core/cost_function.h"
#include "core/query_control.h"
#include "core/upgrade_result.h"
#include "serve/delta_log.h"
#include "serve/serve_stats.h"
#include "util/status.h"

namespace skyup {

/// Top-k upgrades over the live state captured by `view`. Candidates are
/// every live product (base rows not erased + overlay inserts); ids in the
/// results are stable ids. An empty live product set yields an empty
/// result (unlike the batch engines, which reject empty T). `control` and
/// `stats` may be null; the engine bumps `delta_ops_scanned`,
/// `erase_fallback_scans`, and `candidates_evaluated`.
Result<std::vector<UpgradeResult>> TopKOverlay(
    const ReadView& view, const ProductCostFunction& cost_fn, size_t k,
    double epsilon = 1e-6, const QueryControl* control = nullptr,
    ServeStats* stats = nullptr);

}  // namespace skyup

#endif  // SKYUP_SERVE_QUERY_H_
