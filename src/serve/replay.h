#ifndef SKYUP_SERVE_REPLAY_H_
#define SKYUP_SERVE_REPLAY_H_

// Deterministic serve workloads: a tiny line-oriented format for
// interleaved update + query streams, a seeded generator, and a replayer
// that drives a `Server` in deterministic mode (inline rebuilds, inline
// queries) and emits a byte-stable result log — two replays of the same
// workload must `cmp` equal, which CI enforces.
//
// Format (text, one op per line; blank lines and `#` comments ignored):
//
//   # skyup serve workload dims=2      <- required header, fixes dims
//   ip,0.5,0.25                        <- insert competitor (P), coords
//   it,0.9,0.8                         <- insert product (T), coords
//   ep,3                               <- erase competitor by stable id
//   et,1                               <- erase product by stable id
//   q,5                                <- top-k query, k=5
//
// Stable ids are assigned by the server in op order (competitors and
// products each count up from 1), so a workload can name ids it created
// earlier without any out-of-band state.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.h"

namespace skyup {

class Server;

enum class ReplayOpKind : uint8_t {
  kInsertCompetitor,
  kInsertProduct,
  kEraseCompetitor,
  kEraseProduct,
  kQuery,
};

struct ReplayOp {
  ReplayOpKind kind;
  std::vector<double> coords;  ///< inserts only
  uint64_t id = 0;             ///< erases only
  size_t k = 0;                ///< queries only
};

struct ReplayWorkload {
  size_t dims = 0;
  std::vector<ReplayOp> ops;
};

/// Parses workload text (see the format comment above).
Result<ReplayWorkload> ParseWorkload(const std::string& text);
Result<ReplayWorkload> ReadWorkloadFile(const std::string& path);

/// Writes a seeded random workload of `num_ops` ops in the format above.
/// Op mix: ~35% insert P, ~15% insert T, ~15% erase P, ~10% erase T, ~25%
/// query (erases of an empty table degrade to inserts, so small prefixes
/// stay valid); coords uniform in [0, 1); k uniform in [1, 10]. The same
/// (seed, num_ops, dims) always produces byte-identical output.
Status GenerateWorkload(uint64_t seed, size_t num_ops, size_t dims,
                        std::ostream& out);

struct ReplayReport {
  size_t inserts_p = 0;
  size_t inserts_t = 0;
  size_t erases_p = 0;
  size_t erases_t = 0;
  size_t queries = 0;
  uint64_t final_epoch = 0;
  size_t final_backlog = 0;
  double wall_seconds = 0.0;
};

/// Replays `workload` against `server`, writing one result block per query
/// to `out`. The server must be in deterministic mode
/// (`background_rebuild == false`); the result log is then a pure function
/// of the workload. When the server's `batch_max` is > 1, runs of
/// consecutive queries execute as one grouped traversal (`QueryBatch`) —
/// the log stays byte-identical to `batch_max == 1`, which CI's batch
/// guard enforces. Costs print with `%.12g`. Returns the op counts;
/// fails fast on the first op the server rejects for a structural reason
/// (arity mismatch, unknown id).
Result<ReplayReport> Replay(Server* server, const ReplayWorkload& workload,
                            std::ostream& out);

}  // namespace skyup

#endif  // SKYUP_SERVE_REPLAY_H_
