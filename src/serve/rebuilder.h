#ifndef SKYUP_SERVE_REBUILDER_H_
#define SKYUP_SERVE_REBUILDER_H_

// Snapshot publication: folding a frozen delta-log prefix into the next
// epoch, either synchronously (`MaybeRebuildInline`, the deterministic
// mode replay uses) or on a background thread (`Rebuilder`). Publication
// is atomic via `LiveTable::CompleteRebuild`; in-flight queries keep
// their pinned epochs until they drop them.
//
// Two publish flavors share the pipeline:
//   - *patch* (`PatchSnapshot`): O(rows) clone of the base — erases
//     become index tombstones with condensed MBRs, competitor inserts
//     join an unindexed tail, products are compacted. The common case.
//   - *major* (`MergeSnapshot`): full merge + STR bulk load. Demoted to
//     occasional compaction, triggered when the patched index would carry
//     too many tombstones or too large a tail (`RebuildPolicy`).

#include <cstdint>
#include <memory>
#include <thread>

#include "serve/live_table.h"
#include "serve/snapshot.h"
#include "util/lock_order.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace skyup {

/// Pure merge: applies `ops` (append order) over `base` and bulk-loads the
/// result as epoch `next_epoch`. Rows of the result are ordered ascending
/// by stable id, so merge output is a deterministic function of
/// (base, ops) — the replay-determinism and differential-fuzz anchor.
/// Skips base rows the base snapshot itself already tombstoned.
Result<std::shared_ptr<const Snapshot>> MergeSnapshot(
    const Snapshot& base, const std::vector<DeltaOp>& ops,
    uint64_t next_epoch, RTreeOptions index_options);

/// What one publish cycle produced. Queries behave identically either
/// way; the distinction is purely cost/bookkeeping (ServeStats keeps
/// separate `patches_published` / `rebuilds_published` counters).
enum class PublishKind : uint8_t {
  kNone,   ///< nothing published (empty backlog / thresholds not met)
  kPatch,  ///< incremental PatchSnapshot publish
  kMajor,  ///< full MergeSnapshot compaction
};

/// When to fold the delta log into the next snapshot, and when a publish
/// must be a major compaction instead of a patch.
struct RebuildPolicy {
  /// Publish once the backlog holds at least this many ops.
  size_t threshold_ops = 1024;
  /// Also publish a non-empty backlog once the snapshot is older than
  /// this many seconds (<= 0 disables the age trigger — required for
  /// deterministic replay). Only the background rebuilder applies it.
  double max_age_seconds = 0.0;
  /// Background rebuilder poll interval between nudges.
  double poll_interval_seconds = 0.05;
  /// Storm hysteresis, background rebuilder only: the age trigger never
  /// fires below this backlog, and no publish (either trigger) happens
  /// within this many seconds of the previous one. The op-count threshold
  /// still wins eventually, so a sustained burst is bounded by
  /// `threshold_ops`, not starved.
  size_t min_publish_backlog = 1;
  double min_publish_interval_seconds = 0.0;
  /// Patch-vs-major decision: publish a major compaction when the patched
  /// index would be at least this % tombstones, or the unindexed tail
  /// would reach this % of the indexed slot count. A base with no indexed
  /// rows always compacts (first publish, or everything previously
  /// erased). The defaults let the index carry half its slots as
  /// tombstones and a tail 1.5x its size before paying a full STR
  /// rebuild — the mask-aware probe and batched tail scan keep queries
  /// exact and fast well past these points, so compactions stay rare
  /// (single digits on the 20k-op churn bench).
  size_t compact_tombstone_pct = 50;
  size_t compact_tail_pct = 150;
};

/// Pure decision function for one publish cycle (exposed for tests and
/// the fuzzer): whether folding `ops` over `base` should patch or
/// compact, per `policy`. Never returns kNone.
PublishKind ChoosePublish(const Snapshot& base,
                          const std::vector<DeltaOp>& ops,
                          const RebuildPolicy& policy);

/// One synchronous check-and-publish step against the size threshold:
/// returns what was published (kNone below threshold). The deterministic
/// serving mode calls this after every accepted update.
Result<PublishKind> MaybeRebuildInline(LiveTable* table,
                                       const RebuildPolicy& policy);

/// Background rebuild loop: wakes on `Nudge()` or every poll interval,
/// rebuilds when the policy triggers, publishes, repeats. Start/Stop are
/// not thread-safe against each other; everything else is.
class Rebuilder {
 public:
  Rebuilder(LiveTable* table, RebuildPolicy policy);
  ~Rebuilder();

  Rebuilder(const Rebuilder&) = delete;
  Rebuilder& operator=(const Rebuilder&) = delete;

  void Start();
  /// Stops the loop; joins the thread. Idempotent.
  void Stop();
  /// Wakes the loop early (an update was applied).
  void Nudge();

  /// Major compactions / incremental patches published so far.
  uint64_t rebuilds_published() const;
  uint64_t patches_published() const;
  /// Last merge failure, OK if none (merge failures leave the frozen ops
  /// pending and the loop retries on the next trigger).
  Status last_error() const;

 private:
  void Loop();
  bool ShouldRebuild() const;

  LiveTable* table_;
  RebuildPolicy policy_;

  // kRebuilder band: Server::stats() reads the publish counters while
  // holding its stats lock, and the loop's rebuild work — which takes
  // LiveTable::mu_ (kTable) — always runs with `mu_` released.
  mutable Mutex mu_ SKYUP_ACQUIRED_AFTER(lock_order::kRebuilder)
      SKYUP_ACQUIRED_BEFORE(lock_order::kTable);
  CondVar cv_;
  bool running_ SKYUP_GUARDED_BY(mu_) = false;
  bool stop_ SKYUP_GUARDED_BY(mu_) = false;
  uint64_t published_ SKYUP_GUARDED_BY(mu_) = 0;
  uint64_t patches_ SKYUP_GUARDED_BY(mu_) = 0;
  Status last_error_ SKYUP_GUARDED_BY(mu_);
  /// Start/Stop are externally serialized (class contract above), so the
  /// handle itself needs no guard.
  std::thread thread_;
};

}  // namespace skyup

#endif  // SKYUP_SERVE_REBUILDER_H_
