#ifndef SKYUP_SERVE_REBUILDER_H_
#define SKYUP_SERVE_REBUILDER_H_

// Snapshot regeneration: folding a frozen delta-log prefix into a fresh
// STR bulk-loaded snapshot, either synchronously (`MaybeRebuildInline`,
// the deterministic mode replay uses) or on a background thread
// (`Rebuilder`). Publication is atomic via `LiveTable::CompleteRebuild`;
// in-flight queries keep their pinned epochs until they drop them.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "serve/live_table.h"
#include "serve/snapshot.h"
#include "util/status.h"

namespace skyup {

/// Pure merge: applies `ops` (append order) over `base` and bulk-loads the
/// result as epoch `next_epoch`. Rows of the result are ordered ascending
/// by stable id, so merge output is a deterministic function of
/// (base, ops) — the replay-determinism and differential-fuzz anchor.
Result<std::shared_ptr<const Snapshot>> MergeSnapshot(
    const Snapshot& base, const std::vector<DeltaOp>& ops,
    uint64_t next_epoch, RTreeOptions index_options);

/// When to fold the delta log into a fresh snapshot.
struct RebuildPolicy {
  /// Rebuild once the backlog holds at least this many ops.
  size_t threshold_ops = 1024;
  /// Also rebuild a non-empty backlog once the snapshot is older than
  /// this many seconds (<= 0 disables the age trigger — required for
  /// deterministic replay). Only the background rebuilder applies it.
  double max_age_seconds = 0.0;
  /// Background rebuilder poll interval between nudges.
  double poll_interval_seconds = 0.05;
};

/// One synchronous check-and-rebuild step against the size threshold:
/// returns true when a snapshot was published. The deterministic serving
/// mode calls this after every accepted update.
Result<bool> MaybeRebuildInline(LiveTable* table,
                                const RebuildPolicy& policy);

/// Background rebuild loop: wakes on `Nudge()` or every poll interval,
/// rebuilds when the policy triggers, publishes, repeats. Start/Stop are
/// not thread-safe against each other; everything else is.
class Rebuilder {
 public:
  Rebuilder(LiveTable* table, RebuildPolicy policy);
  ~Rebuilder();

  Rebuilder(const Rebuilder&) = delete;
  Rebuilder& operator=(const Rebuilder&) = delete;

  void Start();
  /// Stops the loop; joins the thread. Idempotent.
  void Stop();
  /// Wakes the loop early (an update was applied).
  void Nudge();

  /// Rebuild cycles published so far.
  uint64_t rebuilds_published() const;
  /// Last merge failure, OK if none (merge failures leave the frozen ops
  /// pending and the loop retries on the next trigger).
  Status last_error() const;

 private:
  void Loop();
  bool ShouldRebuild() const;

  LiveTable* table_;
  RebuildPolicy policy_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  bool stop_ = false;
  uint64_t published_ = 0;
  Status last_error_;
  std::thread thread_;
};

}  // namespace skyup

#endif  // SKYUP_SERVE_REBUILDER_H_
