#include "serve/load_gen.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/timer.h"

namespace skyup {
namespace {

// Per-client tallies, merged after join. Latencies are recorded only for
// queries that completed OK — rejected/expired queries would skew the
// percentiles toward the (cheap) failure path.
struct ClientTally {
  std::vector<double> latencies;
  uint64_t queries_issued = 0;
  uint64_t queries_ok = 0;
  uint64_t queries_rejected = 0;
  uint64_t queries_timed_out = 0;
  uint64_t queries_failed = 0;
  uint64_t updates_applied = 0;
  uint64_t updates_rejected = 0;
};

std::vector<double> RandomPoint(Rng* rng, size_t dims) {
  std::vector<double> coords(dims);
  for (size_t d = 0; d < dims; ++d) coords[d] = rng->NextDouble();
  return coords;
}

// The in-process connection: a thin shim over Server. Queries go through
// Submit().get() so they take the worker-pool path (queue formation,
// admission control, grouped execution).
class ServerConnection : public LoadConnection {
 public:
  explicit ServerConnection(Server* server) : server_(server) {}

  Result<uint64_t> InsertCompetitor(
      const std::vector<double>& coords) override {
    return server_->InsertCompetitor(coords);
  }
  Result<uint64_t> InsertProduct(const std::vector<double>& coords) override {
    return server_->InsertProduct(coords);
  }
  Status EraseCompetitor(uint64_t id) override {
    return server_->EraseCompetitor(id);
  }
  Status EraseProduct(uint64_t id) override {
    return server_->EraseProduct(id);
  }
  Status Query(size_t k, double timeout_seconds) override {
    QueryRequest request;
    request.k = k;
    request.timeout_seconds = timeout_seconds;
    return server_->Submit(std::move(request)).get().status;
  }

 private:
  Server* server_;
};

class ServerTarget : public LoadTarget {
 public:
  explicit ServerTarget(Server* server) : server_(server) {}

  Result<std::unique_ptr<LoadConnection>> Connect(size_t) override {
    return std::unique_ptr<LoadConnection>(
        std::make_unique<ServerConnection>(server_));
  }
  Result<uint64_t> DeltaBacklog() override {
    return static_cast<uint64_t>(server_->DeltaBacklog());
  }
  Result<uint64_t> RebuildThresholdOps() override {
    return static_cast<uint64_t>(server_->options().rebuild_threshold_ops);
  }

 private:
  Server* server_;
};

// One closed-loop client. Erase targets come from the ids this client
// inserted itself, so no cross-thread id bookkeeping is needed; a client
// with nothing left to erase inserts instead.
void ClientLoop(LoadConnection* conn, const LoadGenOptions& options,
                size_t client, SteadyClock::time_point start,
                SteadyClock::time_point deadline, ClientTally* tally) {
  Rng rng(options.seed + client);
  std::vector<uint64_t> own_competitors;
  std::vector<uint64_t> own_products;

  const bool paced = options.target_qps > 0.0;
  std::chrono::duration<double> interval{0.0};
  SteadyClock::time_point next_due = start;
  if (paced) {
    interval = std::chrono::duration<double>(
        static_cast<double>(options.clients) / options.target_qps);
    // Stagger the fleet across one interval so paced clients do not fire
    // in lockstep.
    next_due += std::chrono::duration_cast<SteadyClock::duration>(
        interval * (static_cast<double>(client) /
                    static_cast<double>(options.clients)));
  }

  while (SteadyClock::now() < deadline) {
    if (paced) {
      if (next_due >= deadline) break;
      std::this_thread::sleep_until(next_due);
      next_due += std::chrono::duration_cast<SteadyClock::duration>(interval);
    }

    if (rng.NextDouble() < options.query_fraction) {
      ++tally->queries_issued;
      Timer timer;
      const Status status = conn->Query(options.k, options.timeout_seconds);
      const double seconds = timer.ElapsedSeconds();
      if (status.ok()) {
        ++tally->queries_ok;
        tally->latencies.push_back(seconds);
      } else if (status.code() == StatusCode::kResourceExhausted) {
        ++tally->queries_rejected;
      } else if (status.code() == StatusCode::kDeadlineExceeded) {
        ++tally->queries_timed_out;
      } else {
        ++tally->queries_failed;
      }
      continue;
    }

    // Update: split evenly between competitor and product ops; erase when
    // this client has an id of the right kind, otherwise insert.
    const uint64_t kind = rng.NextUint64(4);
    const bool on_products = kind >= 2;
    std::vector<uint64_t>* pool = on_products ? &own_products : &own_competitors;
    const bool erase = (kind % 2 == 1) && !pool->empty();
    if (erase) {
      const size_t at = static_cast<size_t>(rng.NextUint64(pool->size()));
      const uint64_t id = (*pool)[at];
      (*pool)[at] = pool->back();
      pool->pop_back();
      const Status status = on_products ? conn->EraseProduct(id)
                                        : conn->EraseCompetitor(id);
      if (status.ok()) {
        ++tally->updates_applied;
      } else {
        ++tally->updates_rejected;
      }
    } else {
      const std::vector<double> coords = RandomPoint(&rng, options.dims);
      Result<uint64_t> inserted = on_products
                                      ? conn->InsertProduct(coords)
                                      : conn->InsertCompetitor(coords);
      if (inserted.ok()) {
        pool->push_back(inserted.value());
        ++tally->updates_applied;
      } else {
        ++tally->updates_rejected;
      }
    }
  }
}

}  // namespace

Result<LoadGenReport> RunLoadGenOn(LoadTarget* target,
                                   const LoadGenOptions& options) {
  SKYUP_CHECK(target != nullptr);
  if (options.dims == 0) {
    return Status::InvalidArgument("load_gen: dims must be >= 1");
  }
  if (options.clients == 0) {
    return Status::InvalidArgument("load_gen: clients must be >= 1");
  }
  if (!(options.duration_seconds > 0.0)) {
    return Status::InvalidArgument("load_gen: duration must be > 0");
  }
  if (options.query_fraction < 0.0 || options.query_fraction > 1.0) {
    return Status::InvalidArgument("load_gen: query_fraction not in [0, 1]");
  }
  if (options.target_qps < 0.0) {
    return Status::InvalidArgument("load_gen: target_qps must be >= 0");
  }

  // Preload from a stream disjoint from every client stream (clients use
  // seed + 1 .. seed + clients).
  Result<std::unique_ptr<LoadConnection>> preload_conn = target->Connect(0);
  if (!preload_conn.ok()) return preload_conn.status();
  Rng preload_rng(options.seed + options.clients + 1);
  for (size_t i = 0; i < options.preload_competitors; ++i) {
    Result<uint64_t> inserted = (*preload_conn)
                                    ->InsertCompetitor(
                                        RandomPoint(&preload_rng, options.dims));
    if (!inserted.ok()) return inserted.status();
  }
  for (size_t i = 0; i < options.preload_products; ++i) {
    Result<uint64_t> inserted =
        (*preload_conn)
            ->InsertProduct(RandomPoint(&preload_rng, options.dims));
    if (!inserted.ok()) return inserted.status();
  }

  // Let the rebuilder fold the preload into the indexed snapshot before
  // the clock starts, so the measured window exercises the index rather
  // than a giant overlay. Bounded wait: background publishes are
  // rate-capped, and with rebuilds disabled the backlog never drains.
  Result<uint64_t> backlog_goal = target->RebuildThresholdOps();
  if (!backlog_goal.ok()) return backlog_goal.status();
  Timer drain_timer;
  for (;;) {
    Result<uint64_t> backlog = target->DeltaBacklog();
    if (!backlog.ok()) return backlog.status();
    if (*backlog < *backlog_goal || drain_timer.ElapsedSeconds() >= 30.0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Dial every client before the clock starts: connection setup (a TCP
  // handshake on the wire target) must not eat into the measured window.
  std::vector<std::unique_ptr<LoadConnection>> conns;
  conns.reserve(options.clients);
  for (size_t c = 0; c < options.clients; ++c) {
    Result<std::unique_ptr<LoadConnection>> conn = target->Connect(c + 1);
    if (!conn.ok()) return conn.status();
    conns.push_back(std::move(conn).value());
  }

  const SteadyClock::time_point start = SteadyClock::now();
  const SteadyClock::time_point stop_at =
      start + std::chrono::duration_cast<SteadyClock::duration>(
                  std::chrono::duration<double>(options.duration_seconds));

  std::vector<ClientTally> tallies(options.clients);
  std::vector<std::thread> clients;
  clients.reserve(options.clients);
  for (size_t c = 0; c < options.clients; ++c) {
    clients.emplace_back(ClientLoop, conns[c].get(), std::cref(options), c + 1,
                         start, stop_at, &tallies[c]);
  }
  for (std::thread& t : clients) t.join();
  const double wall =
      std::chrono::duration<double>(SteadyClock::now() - start).count();

  LoadGenReport report;
  report.wall_seconds = wall;
  std::vector<double> latencies;
  uint64_t queries_issued = 0;
  for (ClientTally& tally : tallies) {
    queries_issued += tally.queries_issued;
    report.queries_ok += tally.queries_ok;
    report.queries_rejected += tally.queries_rejected;
    report.queries_timed_out += tally.queries_timed_out;
    report.queries_failed += tally.queries_failed;
    report.updates_applied += tally.updates_applied;
    report.updates_rejected += tally.updates_rejected;
    latencies.insert(latencies.end(), tally.latencies.begin(),
                     tally.latencies.end());
  }
  if (wall > 0.0) {
    report.offered_qps = options.target_qps > 0.0
                             ? options.target_qps
                             : static_cast<double>(queries_issued) / wall;
    report.achieved_qps = static_cast<double>(report.queries_ok) / wall;
  }
  if (!latencies.empty()) {
    report.latency_p50_seconds = Quantile(latencies, 0.50);
    report.latency_p95_seconds = Quantile(latencies, 0.95);
    report.latency_p99_seconds = Quantile(latencies, 0.99);
    report.latency_max_seconds =
        *std::max_element(latencies.begin(), latencies.end());
  }
  return report;
}

Result<LoadGenReport> RunLoadGen(Server* server,
                                 const LoadGenOptions& options) {
  SKYUP_CHECK(server != nullptr);
  if (options.dims != server->options().dims) {
    return Status::InvalidArgument("load_gen: dims must match the server's");
  }
  ServerTarget target(server);
  return RunLoadGenOn(&target, options);
}

}  // namespace skyup
