#include "serve/rebuilder.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/log.h"
#include "util/check.h"

namespace skyup {

Result<std::shared_ptr<const Snapshot>> MergeSnapshot(
    const Snapshot& base, const std::vector<DeltaOp>& ops,
    uint64_t next_epoch, RTreeOptions index_options) {
  const size_t dims = base.dims();

  struct TableMerge {
    std::unordered_map<uint64_t, std::vector<double>> rows;
  };
  TableMerge competitors;
  TableMerge products;
  competitors.rows.reserve(base.live_competitors());
  for (size_t i = 0; i < base.competitors().size(); ++i) {
    // A patched base keeps tombstoned rows in place for the index's sake;
    // the compaction drops them here.
    if (!base.competitor_alive(static_cast<PointId>(i))) continue;
    const double* p = base.competitors().data(static_cast<PointId>(i));
    competitors.rows.emplace(base.competitor_id(static_cast<PointId>(i)),
                             std::vector<double>(p, p + dims));
  }
  products.rows.reserve(base.products().size());
  for (size_t i = 0; i < base.products().size(); ++i) {
    const double* p = base.products().data(static_cast<PointId>(i));
    products.rows.emplace(base.product_id(static_cast<PointId>(i)),
                          std::vector<double>(p, p + dims));
  }

  for (const DeltaOp& op : ops) {
    TableMerge& table =
        op.target == DeltaTarget::kCompetitor ? competitors : products;
    if (op.kind == DeltaKind::kInsert) {
      if (op.coords.size() != dims) {
        return Status::InvalidArgument(
            "delta insert arity mismatch during merge");
      }
      table.rows[op.id] = op.coords;
    } else {
      table.rows.erase(op.id);
    }
  }

  // Sort-by-id makes the merged row order a pure function of the live id
  // set — independent of hash order and of when rebuilds happened.
  auto to_sorted = [dims](const TableMerge& table, Dataset* data,
                          std::vector<uint64_t>* ids) {
    std::vector<std::pair<uint64_t, const std::vector<double>*>> sorted;
    sorted.reserve(table.rows.size());
    // lint: unordered-iter-ok (collected pairs are sorted by id right
    // below; hash order never reaches the output)
    for (const auto& entry : table.rows) {
      sorted.emplace_back(entry.first, &entry.second);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    data->Reserve(sorted.size());
    ids->reserve(sorted.size());
    for (const auto& [id, coords] : sorted) {
      data->Add(*coords);
      ids->push_back(id);
    }
  };
  Dataset merged_competitors(dims);
  std::vector<uint64_t> competitor_ids;
  to_sorted(competitors, &merged_competitors, &competitor_ids);
  Dataset merged_products(dims);
  std::vector<uint64_t> product_ids;
  to_sorted(products, &merged_products, &product_ids);

  return Snapshot::Create(next_epoch, std::move(merged_competitors),
                          std::move(competitor_ids),
                          std::move(merged_products), std::move(product_ids),
                          index_options);
}

Result<std::shared_ptr<const Snapshot>> PatchSnapshot(
    const Snapshot& base, const std::vector<DeltaOp>& ops,
    uint64_t next_epoch) {
  const size_t dims = base.dims();
  const size_t indexed = base.indexed_competitors();

  // Resolve the ops against three disjoint universes: pending inserts of
  // this very batch (insert-then-erase cancels), the base's unindexed
  // tail (compacted below), and indexed base rows (erases become index
  // tombstones). Same id-resolution scheme as BuildOverlay.
  struct Pending {
    uint64_t id;
    const double* coords;
    bool alive;
  };
  std::vector<Pending> tail;  // surviving base tail ++ batch inserts
  std::unordered_map<uint64_t, size_t> tail_index;
  tail.reserve(base.tail_competitors() + ops.size());
  for (size_t r = indexed; r < base.competitors().size(); ++r) {
    tail_index.emplace(base.competitor_id(static_cast<PointId>(r)),
                       tail.size());
    tail.push_back(Pending{base.competitor_id(static_cast<PointId>(r)),
                           base.competitors().data(static_cast<PointId>(r)),
                           true});
  }
  std::vector<Pending> products;
  std::unordered_map<uint64_t, size_t> product_index;
  products.reserve(base.products().size() + ops.size());
  for (size_t r = 0; r < base.products().size(); ++r) {
    product_index.emplace(base.product_id(static_cast<PointId>(r)),
                          products.size());
    products.push_back(Pending{base.product_id(static_cast<PointId>(r)),
                               base.products().data(static_cast<PointId>(r)),
                               true});
  }
  std::vector<PointId> tombstone_rows;  // indexed base rows to erase
  for (const DeltaOp& op : ops) {
    const bool is_competitor = op.target == DeltaTarget::kCompetitor;
    std::vector<Pending>& pending = is_competitor ? tail : products;
    std::unordered_map<uint64_t, size_t>& index =
        is_competitor ? tail_index : product_index;
    if (op.kind == DeltaKind::kInsert) {
      if (op.coords.size() != dims) {
        return Status::InvalidArgument(
            "delta insert arity mismatch during patch");
      }
      index.emplace(op.id, pending.size());
      pending.push_back(Pending{op.id, op.coords.data(), true});
      continue;
    }
    auto hit = index.find(op.id);
    if (hit != index.end()) {
      pending[hit->second].alive = false;
      continue;
    }
    if (is_competitor) {
      const PointId row = base.CompetitorRow(op.id);
      SKYUP_DCHECK(row != kInvalidPointId &&
                   static_cast<size_t>(row) < indexed &&
                   base.competitor_alive(row))
          << "erase of unknown competitor id " << op.id
          << " reached the patcher";
      if (row != kInvalidPointId) tombstone_rows.push_back(row);
    } else {
      SKYUP_DCHECK(false) << "erase of unknown product id " << op.id
                          << " reached the patcher";
    }
  }

  // Assemble the next epoch: the indexed competitor prefix is copied
  // verbatim (tombstoned rows included — the cloned arena references rows
  // by number), then the compacted tail; products are fully compacted.
  // Appends happen in id order, so both id vectors stay strictly
  // ascending (ids are handed out monotonically).
  Dataset competitors(dims);
  std::vector<uint64_t> competitor_ids;
  competitors.Reserve(indexed + tail.size());
  competitor_ids.reserve(indexed + tail.size());
  for (size_t r = 0; r < indexed; ++r) {
    competitors.Add(base.competitors().data(static_cast<PointId>(r)));
    competitor_ids.push_back(base.competitor_id(static_cast<PointId>(r)));
  }
  for (const Pending& p : tail) {
    if (!p.alive) continue;
    competitors.Add(p.coords);
    competitor_ids.push_back(p.id);
  }
  Dataset merged_products(dims);
  std::vector<uint64_t> product_ids;
  merged_products.Reserve(products.size());
  product_ids.reserve(products.size());
  for (const Pending& p : products) {
    if (!p.alive) continue;
    merged_products.Add(p.coords);
    product_ids.push_back(p.id);
  }

  auto snapshot = std::shared_ptr<Snapshot>(new Snapshot(
      next_epoch, std::make_unique<Dataset>(std::move(competitors)),
      std::move(competitor_ids),
      std::make_unique<Dataset>(std::move(merged_products)),
      std::move(product_ids)));
  snapshot->index_ = base.index().Clone(snapshot->competitors_.get());
  for (PointId row : tombstone_rows) {
    const bool erased = snapshot->index_.Erase(row);
    SKYUP_DCHECK(erased) << "patch tombstone missed indexed row " << row;
    (void)erased;
  }
  for (size_t r = indexed; r < snapshot->competitors_->size(); ++r) {
    snapshot->tail_block_.Append(
        snapshot->competitors_->data(static_cast<PointId>(r)));
  }
  SKYUP_PARANOID_OK(snapshot->index_.Validate());
  snapshot->published_at_ = SteadyClock::now();
  return std::shared_ptr<const Snapshot>(std::move(snapshot));
}

PublishKind ChoosePublish(const Snapshot& base,
                          const std::vector<DeltaOp>& ops,
                          const RebuildPolicy& policy) {
  const size_t indexed = base.indexed_competitors();
  if (indexed == 0) return PublishKind::kMajor;
  // Estimates, not exact accounting: an erase of a not-yet-applied insert
  // counts as both an insert and an erase here. The thresholds are
  // heuristics; over-estimating churn merely compacts a little earlier.
  size_t tombstones = base.index().tombstones();
  size_t tail = base.tail_competitors();
  for (const DeltaOp& op : ops) {
    if (op.target != DeltaTarget::kCompetitor) continue;
    if (op.kind == DeltaKind::kInsert) {
      ++tail;
    } else {
      const PointId row = base.CompetitorRow(op.id);
      if (row != kInvalidPointId && static_cast<size_t>(row) < indexed) {
        ++tombstones;
      }
    }
  }
  if (tombstones * 100 >= indexed * policy.compact_tombstone_pct) {
    return PublishKind::kMajor;
  }
  if (tail * 100 >= indexed * policy.compact_tail_pct) {
    return PublishKind::kMajor;
  }
  return PublishKind::kPatch;
}

namespace {

// Runs one freeze -> patch-or-merge -> publish cycle if `table` has a
// backlog and no rebuild is in flight. Returns what was published.
Result<PublishKind> RebuildOnce(LiveTable* table,
                                const RebuildPolicy& policy) {
  std::optional<LiveTable::RebuildJob> job = table->BeginRebuild();
  if (!job.has_value()) return PublishKind::kNone;
  const PublishKind kind = ChoosePublish(*job->base, job->ops, policy);
  Result<std::shared_ptr<const Snapshot>> next =
      kind == PublishKind::kMajor
          ? MergeSnapshot(*job->base, job->ops, job->next_epoch,
                          table->index_options())
          : PatchSnapshot(*job->base, job->ops, job->next_epoch);
  if (!next.ok()) {
    table->AbandonRebuild();
    return next.status();
  }
  table->CompleteRebuild(std::move(next).value());
  if (LogEnabled(LogLevel::kInfo)) {
    LogRecord(LogLevel::kInfo, "publish")
        .U64("epoch", job->next_epoch)
        .Str("kind", kind == PublishKind::kMajor ? "major" : "patch")
        .U64("ops", job->ops.size());
  }
  return kind;
}

}  // namespace

Result<PublishKind> MaybeRebuildInline(LiveTable* table,
                                       const RebuildPolicy& policy) {
  if (table->delta_backlog() < policy.threshold_ops) {
    return PublishKind::kNone;
  }
  return RebuildOnce(table, policy);
}

Rebuilder::Rebuilder(LiveTable* table, RebuildPolicy policy)
    : table_(table), policy_(policy) {
  SKYUP_CHECK(table_ != nullptr);
}

Rebuilder::~Rebuilder() { Stop(); }

void Rebuilder::Start() {
  MutexLock lock(mu_);
  SKYUP_CHECK(!running_) << "rebuilder already started";
  running_ = true;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void Rebuilder::Stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  MutexLock lock(mu_);
  running_ = false;
}

void Rebuilder::Nudge() { cv_.notify_all(); }

uint64_t Rebuilder::rebuilds_published() const {
  MutexLock lock(mu_);
  return published_;
}

uint64_t Rebuilder::patches_published() const {
  MutexLock lock(mu_);
  return patches_;
}

Status Rebuilder::last_error() const {
  MutexLock lock(mu_);
  return last_error_;
}

bool Rebuilder::ShouldRebuild() const {
  const size_t backlog = table_->delta_backlog();
  if (backlog == 0) return false;
  // Storm hysteresis: publishing too often turns every handful of updates
  // into a snapshot flip. No trigger fires within the minimum interval of
  // the previous publish, and the age trigger additionally demands a
  // minimum backlog worth publishing.
  if (policy_.min_publish_interval_seconds > 0.0 &&
      table_->snapshot_age_seconds() <
          policy_.min_publish_interval_seconds) {
    return false;
  }
  if (backlog >= policy_.threshold_ops) return true;
  return policy_.max_age_seconds > 0.0 &&
         backlog >= policy_.min_publish_backlog &&
         table_->snapshot_age_seconds() >= policy_.max_age_seconds;
}

void Rebuilder::Loop() {
  const auto interval = std::chrono::duration_cast<SteadyClock::duration>(
      std::chrono::duration<double>(
          std::max(policy_.poll_interval_seconds, 1e-3)));
  for (;;) {
    {
      MutexLock lock(mu_);
      if (stop_) return;
      cv_.wait_for(mu_, interval);
      if (stop_) return;
    }
    // The rebuild runs unlocked: Stop() must stay responsive, Nudge()
    // must never block behind a merge, and RebuildOnce takes the table
    // mutex — a band *below* `mu_`, so holding `mu_` across it would
    // invert the declared order.
    PublishKind published = PublishKind::kNone;
    Status error;
    if (ShouldRebuild()) {
      Result<PublishKind> outcome = RebuildOnce(table_, policy_);
      if (outcome.ok()) {
        published = *outcome;
      } else {
        error = outcome.status();
      }
    }
    MutexLock lock(mu_);
    if (published == PublishKind::kMajor) ++published_;
    if (published == PublishKind::kPatch) ++patches_;
    if (!error.ok()) last_error_ = error;
  }
}

}  // namespace skyup
