#include "serve/rebuilder.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/check.h"

namespace skyup {

Result<std::shared_ptr<const Snapshot>> MergeSnapshot(
    const Snapshot& base, const std::vector<DeltaOp>& ops,
    uint64_t next_epoch, RTreeOptions index_options) {
  const size_t dims = base.dims();

  struct TableMerge {
    std::unordered_map<uint64_t, std::vector<double>> rows;
  };
  TableMerge competitors;
  TableMerge products;
  competitors.rows.reserve(base.competitors().size());
  for (size_t i = 0; i < base.competitors().size(); ++i) {
    const double* p = base.competitors().data(static_cast<PointId>(i));
    competitors.rows.emplace(base.competitor_id(static_cast<PointId>(i)),
                             std::vector<double>(p, p + dims));
  }
  products.rows.reserve(base.products().size());
  for (size_t i = 0; i < base.products().size(); ++i) {
    const double* p = base.products().data(static_cast<PointId>(i));
    products.rows.emplace(base.product_id(static_cast<PointId>(i)),
                          std::vector<double>(p, p + dims));
  }

  for (const DeltaOp& op : ops) {
    TableMerge& table =
        op.target == DeltaTarget::kCompetitor ? competitors : products;
    if (op.kind == DeltaKind::kInsert) {
      if (op.coords.size() != dims) {
        return Status::InvalidArgument(
            "delta insert arity mismatch during merge");
      }
      table.rows[op.id] = op.coords;
    } else {
      table.rows.erase(op.id);
    }
  }

  // Sort-by-id makes the merged row order a pure function of the live id
  // set — independent of hash order and of when rebuilds happened.
  auto to_sorted = [dims](const TableMerge& table, Dataset* data,
                          std::vector<uint64_t>* ids) {
    std::vector<std::pair<uint64_t, const std::vector<double>*>> sorted;
    sorted.reserve(table.rows.size());
    // lint: unordered-iter-ok (collected pairs are sorted by id right
    // below; hash order never reaches the output)
    for (const auto& entry : table.rows) {
      sorted.emplace_back(entry.first, &entry.second);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    data->Reserve(sorted.size());
    ids->reserve(sorted.size());
    for (const auto& [id, coords] : sorted) {
      data->Add(*coords);
      ids->push_back(id);
    }
  };
  Dataset merged_competitors(dims);
  std::vector<uint64_t> competitor_ids;
  to_sorted(competitors, &merged_competitors, &competitor_ids);
  Dataset merged_products(dims);
  std::vector<uint64_t> product_ids;
  to_sorted(products, &merged_products, &product_ids);

  return Snapshot::Create(next_epoch, std::move(merged_competitors),
                          std::move(competitor_ids),
                          std::move(merged_products), std::move(product_ids),
                          index_options);
}

namespace {

// Runs one freeze -> merge -> publish cycle if `table` has a backlog and
// no rebuild is in flight. Returns true when a snapshot was published.
Result<bool> RebuildOnce(LiveTable* table) {
  std::optional<LiveTable::RebuildJob> job = table->BeginRebuild();
  if (!job.has_value()) return false;
  Result<std::shared_ptr<const Snapshot>> merged = MergeSnapshot(
      *job->base, job->ops, job->next_epoch, table->index_options());
  if (!merged.ok()) {
    table->AbandonRebuild();
    return merged.status();
  }
  table->CompleteRebuild(std::move(merged).value());
  return true;
}

}  // namespace

Result<bool> MaybeRebuildInline(LiveTable* table,
                                const RebuildPolicy& policy) {
  if (table->delta_backlog() < policy.threshold_ops) return false;
  return RebuildOnce(table);
}

Rebuilder::Rebuilder(LiveTable* table, RebuildPolicy policy)
    : table_(table), policy_(policy) {
  SKYUP_CHECK(table_ != nullptr);
}

Rebuilder::~Rebuilder() { Stop(); }

void Rebuilder::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  SKYUP_CHECK(!running_) << "rebuilder already started";
  running_ = true;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void Rebuilder::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void Rebuilder::Nudge() { cv_.notify_all(); }

uint64_t Rebuilder::rebuilds_published() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

Status Rebuilder::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

bool Rebuilder::ShouldRebuild() const {
  const size_t backlog = table_->delta_backlog();
  if (backlog == 0) return false;
  if (backlog >= policy_.threshold_ops) return true;
  return policy_.max_age_seconds > 0.0 &&
         table_->snapshot_age_seconds() >= policy_.max_age_seconds;
}

void Rebuilder::Loop() {
  const auto interval = std::chrono::duration_cast<SteadyClock::duration>(
      std::chrono::duration<double>(
          std::max(policy_.poll_interval_seconds, 1e-3)));
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, interval);
    if (stop_) break;
    // The rebuild runs unlocked: Stop() must stay responsive and Nudge()
    // must never block behind a merge.
    lock.unlock();
    bool published = false;
    Status error;
    if (ShouldRebuild()) {
      Result<bool> outcome = RebuildOnce(table_);
      if (outcome.ok()) {
        published = *outcome;
      } else {
        error = outcome.status();
      }
    }
    lock.lock();
    if (published) ++published_;
    if (!error.ok()) last_error_ = error;
  }
}

}  // namespace skyup
