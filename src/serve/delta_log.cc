#include "serve/delta_log.h"

#include <unordered_map>
#include <utility>

#include "util/check.h"
#include "util/mutex.h"

namespace skyup {

void DeltaLog::SetAppendHook(AppendHook hook) {
  WriterLock lock(mu_);
  hook_ = std::move(hook);
}

// The write-ahead contract requires the hook to run *outside* the log's
// lock (the op must stay invisible to readers while the hook executes,
// and the hook may read the log). Appends are externally serialized —
// the live table holds its mutex across Append — so the unlocked hook_
// read cannot race the SetAppendHook writer in any program that obeys
// the install-before-live contract.
// tsa: unlocked hook_ read is externally serialized; rationale above.
void DeltaLog::Append(DeltaOp op) SKYUP_NO_THREAD_SAFETY_ANALYSIS {
  // Write-ahead visibility point: the hook runs before the lock is even
  // taken, so the op is invisible to every reader while the hook executes
  // and the hook may read the log (e.g. to record its append offset).
  // Appends are externally serialized (the live table holds its mutex
  // across Append), which is what keeps hook order == log order.
  if (hook_) hook_(op);
  WriterLock lock(mu_);
  ops_.push_back(std::move(op));
}

size_t DeltaLog::size() const {
  ReaderLock lock(mu_);
  return ops_.size();
}

std::vector<DeltaOp> DeltaLog::CopyPrefix(size_t end) const {
  ReaderLock lock(mu_);
  if (end > ops_.size()) end = ops_.size();
  return std::vector<DeltaOp>(ops_.begin(),
                              ops_.begin() + static_cast<ptrdiff_t>(end));
}

std::vector<DeltaOp> DeltaLog::CopyAll() const {
  ReaderLock lock(mu_);
  return ops_;
}

void DeltaLog::Clear() {
  WriterLock lock(mu_);
  ops_.clear();
}

DeltaOverlay BuildOverlay(const ReadView& view) {
  SKYUP_CHECK(view.snapshot != nullptr)
      << "BuildOverlay needs a snapshot-bearing view";
  const Snapshot& base = *view.snapshot;
  const size_t dims = base.dims();
  DeltaOverlay overlay(dims);
  overlay.competitor_erased.assign(base.competitors().size(), 0);
  overlay.product_erased.assign(base.products().size(), 0);

  // Ops referencing post-snapshot inserts resolve here, not in the base
  // row maps; `alive` flips when an insert is erased later in the log.
  struct Pending {
    uint64_t id;
    const std::vector<double>* coords;
    bool alive;
  };
  std::vector<Pending> pending_competitors;
  std::vector<Pending> pending_products;
  std::unordered_map<uint64_t, size_t> competitor_index;
  std::unordered_map<uint64_t, size_t> product_index;

  for (const DeltaOp& op : view.deltas) {
    const bool is_competitor = op.target == DeltaTarget::kCompetitor;
    std::vector<Pending>& pending =
        is_competitor ? pending_competitors : pending_products;
    std::unordered_map<uint64_t, size_t>& index =
        is_competitor ? competitor_index : product_index;
    if (op.kind == DeltaKind::kInsert) {
      SKYUP_DCHECK(op.coords.size() == dims);
      index.emplace(op.id, pending.size());
      pending.push_back(Pending{op.id, &op.coords, true});
      continue;
    }
    auto inserted = index.find(op.id);
    if (inserted != index.end()) {
      pending[inserted->second].alive = false;
      continue;
    }
    const PointId row =
        is_competitor ? base.CompetitorRow(op.id) : base.ProductRow(op.id);
    // The live table validates every erase against its live-id set before
    // logging it, so the id must resolve either above or here.
    SKYUP_DCHECK(row != kInvalidPointId)
        << "erase of unknown id " << op.id << " reached the overlay";
    if (row == kInvalidPointId) continue;
    const size_t r = static_cast<size_t>(row);
    if (is_competitor) {
      if (overlay.competitor_erased[r] == 0) {
        overlay.competitor_erased[r] = 1;
        ++overlay.competitors_erased;
        overlay.erased_competitor_rows.push_back(row);
      }
    } else {
      if (overlay.product_erased[r] == 0) {
        overlay.product_erased[r] = 1;
        ++overlay.products_erased;
      }
    }
  }

  // Ids are handed out monotonically, so append order == id order and the
  // compacted alive rows land ascending by stable id.
  for (const Pending& p : pending_competitors) {
    if (!p.alive) continue;
    overlay.inserted_competitors.Add(*p.coords);
    overlay.inserted_competitor_ids.push_back(p.id);
    overlay.competitor_block.Append(p.coords->data());
  }
  for (const Pending& p : pending_products) {
    if (!p.alive) continue;
    overlay.inserted_products.Add(*p.coords);
    overlay.inserted_product_ids.push_back(p.id);
  }
  return overlay;
}

}  // namespace skyup
