#include "serve/replay.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "serve/server.h"
#include "util/random.h"
#include "util/timer.h"

namespace skyup {

namespace {

constexpr char kHeaderPrefix[] = "# skyup serve workload dims=";

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::vector<std::string> SplitCommas(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  for (;;) {
    size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

Status ParseDouble(const std::string& field, double* out) {
  char* end = nullptr;
  *out = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad numeric field '" + field + "'");
  }
  return Status::OK();
}

Status ParseUint(const std::string& field, uint64_t* out) {
  if (field.empty()) return Status::InvalidArgument("empty integer field");
  uint64_t value = 0;
  for (char c : field) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad integer field '" + field + "'");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return Status::OK();
}

}  // namespace

Result<ReplayWorkload> ParseWorkload(const std::string& text) {
  ReplayWorkload workload;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind(kHeaderPrefix, 0) == 0) {
        uint64_t dims = 0;
        Status st = ParseUint(line.substr(sizeof(kHeaderPrefix) - 1), &dims);
        if (!st.ok() || dims == 0) {
          return Status::InvalidArgument("bad workload header: " + line);
        }
        workload.dims = static_cast<size_t>(dims);
        saw_header = true;
      }
      continue;
    }
    if (!saw_header) {
      return Status::InvalidArgument(
          "workload must start with '" + std::string(kHeaderPrefix) + "D'");
    }
    const std::vector<std::string> fields = SplitCommas(line);
    const std::string& tag = fields[0];
    ReplayOp op;
    if (tag == "ip" || tag == "it") {
      op.kind = tag == "ip" ? ReplayOpKind::kInsertCompetitor
                            : ReplayOpKind::kInsertProduct;
      if (fields.size() != workload.dims + 1) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) + ": insert expects " +
            std::to_string(workload.dims) + " coords");
      }
      op.coords.reserve(workload.dims);
      for (size_t i = 1; i < fields.size(); ++i) {
        double v = 0.0;
        Status st = ParseDouble(fields[i], &v);
        if (!st.ok()) {
          return Status::InvalidArgument(
              "line " + std::to_string(line_no) + ": " + st.message());
        }
        op.coords.push_back(v);
      }
    } else if (tag == "ep" || tag == "et") {
      op.kind = tag == "ep" ? ReplayOpKind::kEraseCompetitor
                            : ReplayOpKind::kEraseProduct;
      if (fields.size() != 2) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) + ": erase expects one id");
      }
      Status st = ParseUint(fields[1], &op.id);
      if (!st.ok() || op.id == 0) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) + ": bad erase id");
      }
    } else if (tag == "q") {
      op.kind = ReplayOpKind::kQuery;
      if (fields.size() != 2) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) + ": query expects one k");
      }
      uint64_t k = 0;
      Status st = ParseUint(fields[1], &k);
      if (!st.ok() || k == 0) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) + ": bad query k");
      }
      op.k = static_cast<size_t>(k);
    } else {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": unknown op tag '" + tag +
          "'");
    }
    workload.ops.push_back(std::move(op));
  }
  if (!saw_header) {
    return Status::InvalidArgument("workload is empty (no header)");
  }
  return workload;
}

Result<ReplayWorkload> ReadWorkloadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open workload file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseWorkload(buffer.str());
}

Status GenerateWorkload(uint64_t seed, size_t num_ops, size_t dims,
                        std::ostream& out) {
  if (dims < 1) return Status::InvalidArgument("dims must be >= 1");
  if (num_ops < 1) return Status::InvalidArgument("num_ops must be >= 1");
  Rng rng(seed);
  // Mirror the server's id allocation (each table counts up from 1) so
  // erases can name live ids without running a server here.
  std::vector<uint64_t> live_p;
  std::vector<uint64_t> live_t;
  uint64_t next_p = 1;
  uint64_t next_t = 1;
  out << kHeaderPrefix << dims << "\n";
  auto emit_insert = [&](bool competitor) {
    out << (competitor ? "ip" : "it");
    for (size_t d = 0; d < dims; ++d) out << ',' << Num(rng.NextDouble());
    out << "\n";
    if (competitor) {
      live_p.push_back(next_p++);
    } else {
      live_t.push_back(next_t++);
    }
  };
  auto take_random = [&](std::vector<uint64_t>* ids) {
    const size_t at = static_cast<size_t>(rng.NextUint64(ids->size()));
    const uint64_t id = (*ids)[at];
    (*ids)[at] = ids->back();
    ids->pop_back();
    return id;
  };
  for (size_t i = 0; i < num_ops; ++i) {
    const uint64_t roll = rng.NextUint64(100);
    if (roll < 35) {
      emit_insert(/*competitor=*/true);
    } else if (roll < 50) {
      emit_insert(/*competitor=*/false);
    } else if (roll < 65) {
      if (live_p.empty()) {
        emit_insert(/*competitor=*/true);
      } else {
        out << "ep," << take_random(&live_p) << "\n";
      }
    } else if (roll < 75) {
      if (live_t.empty()) {
        emit_insert(/*competitor=*/false);
      } else {
        out << "et," << take_random(&live_t) << "\n";
      }
    } else {
      out << "q," << (1 + rng.NextUint64(10)) << "\n";
    }
  }
  if (!out) return Status::IOError("workload write failed");
  return Status::OK();
}

Result<ReplayReport> Replay(Server* server, const ReplayWorkload& workload,
                            std::ostream& out) {
  if (server == nullptr) return Status::InvalidArgument("null server");
  if (server->options().background_rebuild) {
    return Status::InvalidArgument(
        "replay requires deterministic mode (background_rebuild=false)");
  }
  if (server->options().dims != workload.dims) {
    return Status::InvalidArgument(
        "workload dims " + std::to_string(workload.dims) +
        " do not match server dims " +
        std::to_string(server->options().dims));
  }
  ReplayReport report;
  Timer wall;
  // One result block per query, identical whether the query ran solo or
  // grouped (TopKOverlayBatch is bit-identical to per-query execution, so
  // the batch_max setting must not change the log bytes — CI compares).
  auto emit_query_block = [&](size_t k, const QueryResponse& response) {
    ++report.queries;
    // Deliberately no wall times or epochs here: everything printed is a
    // pure function of the op stream, so two replays must be
    // byte-identical.
    out << "query " << report.queries << " k=" << k
        << " results=" << response.results.size() << "\n";
    for (size_t r = 0; r < response.results.size(); ++r) {
      const UpgradeResult& res = response.results[r];
      out << "  " << (r + 1) << " id=" << res.product_id
          << " cost=" << Num(res.cost) << " upgraded=";
      for (size_t d = 0; d < res.upgraded.size(); ++d) {
        if (d > 0) out << ';';
        out << Num(res.upgraded[d]);
      }
      out << "\n";
    }
  };
  const size_t batch_cap = server->options().batch_max;
  size_t op_no = 0;
  for (size_t op_at = 0; op_at < workload.ops.size(); ++op_at) {
    const ReplayOp& op = workload.ops[op_at];
    ++op_no;
    // Grouped path: a run of consecutive queries (no update between them
    // sees the same live state) executes as one shared traversal.
    if (op.kind == ReplayOpKind::kQuery && batch_cap > 1) {
      size_t run = 1;
      while (run < batch_cap && op_at + run < workload.ops.size() &&
             workload.ops[op_at + run].kind == ReplayOpKind::kQuery) {
        ++run;
      }
      std::vector<QueryRequest> requests(run);
      for (size_t i = 0; i < run; ++i) {
        requests[i].k = workload.ops[op_at + i].k;
      }
      const std::vector<QueryResponse> responses = server->QueryBatch(requests);
      for (size_t i = 0; i < run; ++i) {
        if (!responses[i].status.ok()) {
          return Status::Internal(
              "op " + std::to_string(op_no + i) +
              ": query failed: " + responses[i].status.message());
        }
        emit_query_block(requests[i].k, responses[i]);
      }
      op_at += run - 1;
      op_no += run - 1;
      continue;
    }
    switch (op.kind) {
      case ReplayOpKind::kInsertCompetitor: {
        Result<uint64_t> id = server->InsertCompetitor(op.coords);
        if (!id.ok()) {
          return Status::InvalidArgument(
              "op " + std::to_string(op_no) +
              ": insert rejected: " + id.status().message());
        }
        ++report.inserts_p;
        break;
      }
      case ReplayOpKind::kInsertProduct: {
        Result<uint64_t> id = server->InsertProduct(op.coords);
        if (!id.ok()) {
          return Status::InvalidArgument(
              "op " + std::to_string(op_no) +
              ": insert rejected: " + id.status().message());
        }
        ++report.inserts_t;
        break;
      }
      case ReplayOpKind::kEraseCompetitor:
      case ReplayOpKind::kEraseProduct: {
        const bool competitor = op.kind == ReplayOpKind::kEraseCompetitor;
        Status st = competitor ? server->EraseCompetitor(op.id)
                               : server->EraseProduct(op.id);
        if (!st.ok()) {
          return Status::InvalidArgument(
              "op " + std::to_string(op_no) +
              ": erase rejected: " + st.message());
        }
        if (competitor) {
          ++report.erases_p;
        } else {
          ++report.erases_t;
        }
        break;
      }
      case ReplayOpKind::kQuery: {
        QueryRequest request;
        request.k = op.k;
        QueryResponse response = server->Query(request);
        if (!response.status.ok()) {
          return Status::Internal(
              "op " + std::to_string(op_no) +
              ": query failed: " + response.status.message());
        }
        emit_query_block(op.k, response);
        break;
      }
    }
  }
  // Mode-independent accessors: in sharded mode the epoch is the common
  // cross-shard epoch and the backlog is the total across shards — both
  // match the single-table values for the same op stream (synchronized
  // publish cycles fire on the total backlog), so the `# replay:` summary
  // agrees across `--shards` values too.
  report.final_epoch = server->CurrentEpoch();
  report.final_backlog = server->DeltaBacklog();
  report.wall_seconds = wall.ElapsedSeconds();
  if (!out) return Status::IOError("result write failed");
  return report;
}

}  // namespace skyup
