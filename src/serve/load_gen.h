#ifndef SKYUP_SERVE_LOAD_GEN_H_
#define SKYUP_SERVE_LOAD_GEN_H_

// Closed-loop load generator for the serving layer.
//
// A fixed fleet of client threads drives a serving target through a
// narrow connection interface: queries on the in-process target go
// through `Submit(...).get()` — the worker-pool path, so queue
// formation, admission control, and grouped execution
// (`ServerOptions::batch_max`) behave exactly as they would under real
// load — and updates apply synchronously from the client thread. The
// same fleet can instead dial a remote front door over the wire
// protocol (`serve --listen`): see `WireLoadTarget` in
// serve/shard/wire.h, which plugs in below without touching the loop.
// Each client is *closed loop*: it issues its next operation only after
// the previous one completed. With `target_qps == 0` the fleet runs as
// fast as the server allows (the saturation measurement); with a
// target, each client paces itself on a fixed per-client interval so
// the fleet's aggregate offered rate approximates the target.
//
// Everything is deterministic given `LoadGenOptions::seed` except timing:
// client c draws from its own `Rng(seed + c)` stream, so the *sequence*
// of operations per client is reproducible even though their interleaving
// across clients is not (this is a throughput harness, not a correctness
// harness — correctness is fuzz_batch_exec's job).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/server.h"
#include "util/status.h"

namespace skyup {

struct LoadGenOptions {
  /// Dimensionality of generated points; must match the server's.
  size_t dims = 0;
  /// Client threads, each one closed-loop connection. Must be >= 1.
  size_t clients = 8;
  /// Wall-clock run length after preload. Must be > 0.
  double duration_seconds = 5.0;
  /// Aggregate offered rate across all clients; 0 = unpaced (saturation).
  double target_qps = 0.0;
  /// Fraction of operations that are queries; the rest are updates
  /// (inserts/erases of competitors and products). Must be in [0, 1].
  double query_fraction = 0.9;
  /// Top-k per query.
  size_t k = 10;
  /// Per-query deadline forwarded to the server; 0 = none.
  double timeout_seconds = 0.0;
  /// Rows inserted before the clock starts (competitors feed the index
  /// after the forced initial rebuild; products are the candidate set).
  size_t preload_competitors = 20000;
  size_t preload_products = 2000;
  /// Seed for the deterministic per-client operation streams.
  uint64_t seed = 42;
};

struct LoadGenReport {
  /// Measured window (>= duration_seconds; includes clients draining
  /// their final in-flight operation).
  double wall_seconds = 0.0;
  /// Rate the clients attempted: completed queries for the closed loop,
  /// or the configured target when pacing.
  double offered_qps = 0.0;
  /// Queries that returned OK per wall second.
  double achieved_qps = 0.0;
  uint64_t queries_ok = 0;
  uint64_t queries_rejected = 0;  ///< admission control (kResourceExhausted)
  uint64_t queries_timed_out = 0;
  uint64_t queries_failed = 0;  ///< any other non-OK status
  uint64_t updates_applied = 0;
  uint64_t updates_rejected = 0;
  /// Query latency from issue to completion — queue wait (and, on the
  /// wire target, network round trip) included, because that is what a
  /// client experiences.
  double latency_p50_seconds = 0.0;
  double latency_p95_seconds = 0.0;
  double latency_p99_seconds = 0.0;
  double latency_max_seconds = 0.0;
};

/// One client's handle on the serving target. Implementations need not
/// be thread-safe: the fleet gives each client thread its own
/// connection, and the preload runs on the main thread before any
/// client starts.
class LoadConnection {
 public:
  virtual ~LoadConnection() = default;
  virtual Result<uint64_t> InsertCompetitor(
      const std::vector<double>& coords) = 0;
  virtual Result<uint64_t> InsertProduct(const std::vector<double>& coords) = 0;
  virtual Status EraseCompetitor(uint64_t id) = 0;
  virtual Status EraseProduct(uint64_t id) = 0;
  /// Issues a top-k query and waits for the outcome. Results themselves
  /// are discarded — the load generator measures status and latency.
  virtual Status Query(size_t k, double timeout_seconds) = 0;
};

/// The serving target as the fleet sees it: a connection factory plus
/// the backlog probe the preload drain polls.
class LoadTarget {
 public:
  virtual ~LoadTarget() = default;
  /// Makes the connection for client `client` (1-based; 0 = preload).
  virtual Result<std::unique_ptr<LoadConnection>> Connect(size_t client) = 0;
  /// Unpublished delta ops on the target, so the preload can wait for
  /// the initial rebuild before the measured window starts.
  virtual Result<uint64_t> DeltaBacklog() = 0;
  /// The publish trigger: the drain loop waits for the backlog to fall
  /// below this.
  virtual Result<uint64_t> RebuildThresholdOps() = 0;
};

/// Preloads the target, runs the client fleet for `duration_seconds`, and
/// reports throughput and latency. The target keeps all state changes the
/// run made (callers wanting a pristine table should use a fresh one).
/// Fails on invalid options or if any preload insert is rejected.
Result<LoadGenReport> RunLoadGenOn(LoadTarget* target,
                                   const LoadGenOptions& options);

/// The in-process target: drives `server` directly (queries through the
/// worker pool). Dims are validated against the server's options.
Result<LoadGenReport> RunLoadGen(Server* server, const LoadGenOptions& options);

}  // namespace skyup

#endif  // SKYUP_SERVE_LOAD_GEN_H_
