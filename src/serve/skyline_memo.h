#ifndef SKYUP_SERVE_SKYLINE_MEMO_H_
#define SKYUP_SERVE_SKYLINE_MEMO_H_

// Epoch-scoped dominator-skyline memo cache (ROADMAP item 2). Nearby
// candidates have heavily overlapping anti-dominant regions and recompute
// near-identical dominator skylines; within one snapshot epoch the indexed
// part of that computation is a pure function of (epoch, probe point,
// erased-indexed-row count), so its result can be memoized and shared
// across the whole query stream.
//
// Soundness argument (also in docs/algorithms.md):
//  - The probe `DominatingSkylineInto(snapshot.index(), t, erase_mask, ..)`
//    reads only the immutable snapshot index and the erase mask restricted
//    to *indexed* rows. Within an epoch the delta log is append-only, so
//    the set of erased indexed rows visible to a view is fully described by
//    its *count*: a view with the same epoch and the same count has seen
//    exactly the same prefix of erase operations (erases of tail/overlay
//    rows never affect the indexed probe and are excluded from the count).
//  - Keys quantize the probe coordinates only to pick a bucket; every entry
//    stores the exact coordinates and is compared exactly on lookup, so
//    key collisions can cause misses, never wrong results.
//  - Publishing a new snapshot changes the epoch; entries self-describe
//    their epoch and never match a different one, and `OnPublish` drops the
//    whole cache — invalidation is free, there is nothing to diff.
//
// A hit returns the memoized dominator rows; the caller replays its own
// overlay deltas on top (tail/insert folds via `PatchSkylineInsert`), so
// overlay churn needs no invalidation either. Hit results may order
// equal-key members differently than a fresh probe would for a different
// caller; all consumers are invariant to that (see DominatingSkylineTileInto
// docs).
//
// Concurrency: 16-way sharded by key hash, one mutex per shard; lookups and
// stores from concurrent server workers contend only within a shard.
// Memory is bounded per shard; eviction drops whole buckets FIFO by
// creation order (LRU-ish: freshly created buckets — the ones the live
// query mix is touching — survive longest).

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/point.h"
#include "util/lock_order.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace skyup {

class SkylineMemo {
 public:
  /// `dims` is the coordinate count of every probe point; `max_bytes` is
  /// the total payload budget across all shards (>= 1; entries beyond it
  /// evict oldest-bucket-first per shard).
  SkylineMemo(size_t dims, size_t max_bytes);

  SkylineMemo(const SkylineMemo&) = delete;
  SkylineMemo& operator=(const SkylineMemo&) = delete;

  /// Looks up the memoized indexed-dominator skyline for probe point `t`
  /// (exact coordinate match) under snapshot `epoch` with
  /// `erased_indexed` erased indexed rows visible. On a hit, fills `rows`
  /// (cleared first) and returns true.
  bool Lookup(uint64_t epoch, const double* t, uint64_t erased_indexed,
              std::vector<PointId>* rows);

  /// Memoizes a probe result. Safe to call with a result computed under a
  /// stale view after a publish: the entry can only ever match readers of
  /// the same (epoch, erased_indexed) view, for which it is exact.
  void Store(uint64_t epoch, const double* t, uint64_t erased_indexed,
             const std::vector<PointId>& rows);

  /// Epoch rollover: drops every entry. Called under the table's publish
  /// lock; entries from the old epoch could never match new-epoch lookups
  /// anyway (see Lookup), so this only reclaims memory.
  void OnPublish();

  size_t max_bytes() const { return max_bytes_; }

  /// Diagnostics (aggregated across shards under the shard locks).
  size_t entry_count() const;
  size_t bytes_used() const;
  uint64_t evictions() const;

 private:
  struct Entry {
    uint64_t epoch = 0;
    uint64_t erased_indexed = 0;
    std::vector<double> t;
    std::vector<PointId> rows;
  };
  struct Bucket {
    std::vector<Entry> entries;
  };
  // Shard locks sit in the table-substructure band: Store/OnPublish run
  // while LiveTable::mu_ is held, and shards are only ever locked one at
  // a time (the diagnostics aggregate sequentially).
  struct Shard {
    mutable Mutex mu SKYUP_ACQUIRED_AFTER(lock_order::kTableSub)
        SKYUP_ACQUIRED_BEFORE(lock_order::kObsRegistry);
    std::unordered_map<uint64_t, Bucket> buckets SKYUP_GUARDED_BY(mu);
    std::vector<uint64_t> fifo
        SKYUP_GUARDED_BY(mu);        // bucket keys in creation order
    size_t fifo_head SKYUP_GUARDED_BY(mu) = 0;  // evicted prefix of `fifo`
    size_t bytes SKYUP_GUARDED_BY(mu) = 0;
    uint64_t evictions SKYUP_GUARDED_BY(mu) = 0;
  };

  static constexpr size_t kShards = 16;

  uint64_t KeyOf(const double* t) const;
  static size_t EntryBytes(const Entry& e);
  void EvictLocked(Shard* shard) SKYUP_REQUIRES(shard->mu);

  const size_t dims_;
  const size_t max_bytes_;
  const size_t shard_budget_;
  Shard shards_[kShards];
};

}  // namespace skyup

#endif  // SKYUP_SERVE_SKYLINE_MEMO_H_
