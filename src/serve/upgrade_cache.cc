#include "serve/upgrade_cache.h"

#include <utility>

#include "core/dominance.h"
#include "util/check.h"

namespace skyup {
namespace {

// `skyline` is a flattened row-major value list (size % dims == 0).
bool AnyMemberDominatesOrEqual(const std::vector<double>& skyline,
                               const double* q, size_t dims) {
  for (size_t i = 0; i + dims <= skyline.size(); i += dims) {
    if (DominatesOrEqual(skyline.data() + i, q, dims)) return true;
  }
  return false;
}

bool AnyMemberStrictlyDominates(const std::vector<double>& skyline,
                                const double* q, size_t dims) {
  for (size_t i = 0; i + dims <= skyline.size(); i += dims) {
    if (Dominates(skyline.data() + i, q, dims)) return true;
  }
  return false;
}

}  // namespace

UpgradeCache::UpgradeCache(size_t dims) : dims_(dims) {}

void UpgradeCache::OnDeltaOp(const DeltaOp& op) {
  MutexLock lock(mu_);
  ++version_;
  if (op.target == DeltaTarget::kProduct) {
    // Product inserts start uncached (the first query computes and
    // stores); a product erase just drops its entry. Neither can affect
    // any *other* product's dominator skyline.
    if (op.kind == DeltaKind::kErase) entries_.erase(op.id);
    return;
  }
  const bool is_insert = op.kind == DeltaKind::kInsert;
  std::vector<double> erased_coords;
  const double* q = nullptr;
  if (is_insert) {
    q = op.coords.data();
  } else {
    auto it = competitor_coords_.find(op.id);
    SKYUP_CHECK(it != competitor_coords_.end())
        << "competitor erase " << op.id
        << " reached the cache before its insert";
    erased_coords = std::move(it->second);
    competitor_coords_.erase(it);
    q = erased_coords.data();
  }
  for (auto it = entries_.begin(); it != entries_.end();) {
    const Entry& entry = it->second;
    bool stale = false;
    if (Dominates(q, entry.coords.data(), dims_)) {
      // Invalidation predicates from the header: an op on a dominator of
      // this product is harmless only while the stored skyline provably
      // absorbs it — a member covering an inserted q, or a member strictly
      // below an erased r.
      stale = is_insert
                  ? !AnyMemberDominatesOrEqual(entry.skyline, q, dims_)
                  : !AnyMemberStrictlyDominates(entry.skyline, q, dims_);
    }
    it = stale ? entries_.erase(it) : std::next(it);
  }
  if (is_insert) competitor_coords_.emplace(op.id, op.coords);
}

uint64_t UpgradeCache::version() const {
  MutexLock lock(mu_);
  return version_;
}

bool UpgradeCache::Lookup(uint64_t product_id, uint64_t view_version,
                          double epsilon, double admit_hint,
                          Hit* out) const {
  MutexLock lock(mu_);
  auto it = entries_.find(product_id);
  if (it == entries_.end()) return false;
  const Entry& entry = it->second;
  // Computed against ops the view has not absorbed: unusable for it.
  if (entry.version > view_version) return false;
  // lint: float-eq-ok (epsilon is a query parameter; reuse requires the
  // exact same value, not a nearby one)
  if (entry.epsilon != epsilon) return false;
  out->cost = entry.cost;
  out->already_competitive = entry.already_competitive;
  out->payload_copied = entry.cost <= admit_hint;
  if (out->payload_copied) out->upgraded = entry.upgraded;
  return true;
}

void UpgradeCache::Store(uint64_t product_id, const double* coords,
                         uint64_t view_version, double epsilon,
                         const UpgradeOutcome& outcome,
                         const std::vector<const double*>& skyline) {
  MutexLock lock(mu_);
  // An op landed while this query was computing: ops after `view_version`
  // were never checked against this result, so it may already be stale.
  if (version_ != view_version) return;
  Entry entry;
  entry.coords.assign(coords, coords + dims_);
  entry.skyline.reserve(skyline.size() * dims_);
  for (const double* member : skyline) {
    entry.skyline.insert(entry.skyline.end(), member, member + dims_);
  }
  entry.upgraded = outcome.upgraded;
  entry.cost = outcome.cost;
  entry.epsilon = epsilon;
  entry.already_competitive = outcome.already_competitive;
  entry.version = view_version;
  entries_[product_id] = std::move(entry);
}

size_t UpgradeCache::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

}  // namespace skyup
