#ifndef SKYUP_SERVE_SNAPSHOT_H_
#define SKYUP_SERVE_SNAPSHOT_H_

// Versioned, immutable serving snapshots.
//
// A `Snapshot` bundles everything one epoch of the live state needs to
// answer queries: the competitor set P (plus its flat arena index), the
// candidate set T, and the row <-> stable-id maps that connect dataset
// rows to the ids the serving API speaks. Snapshots are reference-counted
// (`shared_ptr`) and never mutated after publication — readers acquire one
// from the `SnapshotStore`, run against it for as long as they like, and
// drop it; the last release of a superseded epoch frees it. That is the
// entire reclamation protocol: no epochs to retire by hand, no hazard
// pointers (docs/algorithms.md, "Serving & online updates").
//
// Snapshots come in two flavors sharing one representation:
//   - a *major* snapshot (Snapshot::Create / MergeSnapshot): every
//     competitor row is indexed and live, no tail;
//   - a *patched* snapshot (PatchSnapshot, serve/rebuilder.cc): cloned
//     from a base snapshot in O(rows) without an index rebuild. Erased
//     indexed competitors become index tombstones (their dataset rows and
//     ids stay in place — the cloned arena references rows by number);
//     inserted competitors live in an unindexed, compacted *tail*
//     `[indexed_competitors(), competitors().size())` mirrored into an
//     SoA block for the batched kernels. Products carry no index, so the
//     product table is simply compacted: every product row is live.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/dataset.h"
#include "core/dominance_batch.h"
#include "core/point.h"
#include "rtree/flat_rtree.h"
#include "util/lock_order.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace skyup {

struct DeltaOp;
class Snapshot;

/// Declared here (defined in serve/rebuilder.cc) so it can be a friend.
Result<std::shared_ptr<const Snapshot>> PatchSnapshot(
    const Snapshot& base, const std::vector<DeltaOp>& ops,
    uint64_t next_epoch);

/// One immutable epoch of serving state. Rows of both datasets are ordered
/// ascending by stable id, so any scan in row order is deterministic and
/// id-ordered by construction.
class Snapshot {
 public:
  /// Builds a snapshot from id-ordered rows. `competitor_ids[i]` /
  /// `product_ids[i]` is the stable id of row `i`; both vectors must be
  /// strictly ascending and sized to their dataset. Empty datasets are
  /// legal (a live table can have everything erased).
  static Result<std::shared_ptr<const Snapshot>> Create(
      uint64_t epoch, Dataset competitors,
      std::vector<uint64_t> competitor_ids, Dataset products,
      std::vector<uint64_t> product_ids, RTreeOptions index_options = {});

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  uint64_t epoch() const { return epoch_; }
  const Dataset& competitors() const { return *competitors_; }
  const Dataset& products() const { return *products_; }
  const FlatRTree& index() const { return index_; }
  size_t dims() const { return competitors_->dims(); }

  /// Competitor rows `[0, indexed_competitors())` are covered by the flat
  /// index (possibly tombstoned); rows from there on are the live,
  /// unindexed tail a patch appended.
  size_t indexed_competitors() const { return index_.size(); }
  size_t tail_competitors() const {
    return competitors_->size() - index_.size();
  }
  /// SoA mirror of the tail rows; lane `j` is row
  /// `indexed_competitors() + j`.
  SoaView tail_view() const { return tail_block_.view(); }

  /// Liveness of a competitor row: tail rows are always live, indexed
  /// rows are live unless tombstoned.
  bool competitor_alive(PointId row) const {
    return static_cast<size_t>(row) >= index_.size() ||
           index_.row_alive(row);
  }
  size_t live_competitors() const {
    return index_.live_size() + tail_competitors();
  }
  /// Every product row is live (patches compact the product table).
  size_t live_products() const { return products_->size(); }

  /// Stable id of a competitor/product row.
  uint64_t competitor_id(PointId row) const {
    return competitor_ids_[static_cast<size_t>(row)];
  }
  uint64_t product_id(PointId row) const {
    return product_ids_[static_cast<size_t>(row)];
  }
  const std::vector<uint64_t>& competitor_ids() const {
    return competitor_ids_;
  }
  const std::vector<uint64_t>& product_ids() const { return product_ids_; }

  /// Row of a stable id, or `kInvalidPointId` if the id is not in this
  /// snapshot (it may still be live via the delta log).
  PointId CompetitorRow(uint64_t id) const {
    auto it = competitor_rows_.find(id);
    return it == competitor_rows_.end() ? kInvalidPointId : it->second;
  }
  PointId ProductRow(uint64_t id) const {
    auto it = product_rows_.find(id);
    return it == product_rows_.end() ? kInvalidPointId : it->second;
  }

  /// Steady-clock instant `Create` finished (snapshot-age metric).
  SteadyClock::time_point published_at() const { return published_at_; }

 private:
  // The patch path needs the private constructor plus write access to the
  // index clone and tail block while assembling the next epoch.
  friend Result<std::shared_ptr<const Snapshot>> PatchSnapshot(
      const Snapshot& base, const std::vector<DeltaOp>& ops,
      uint64_t next_epoch);

  Snapshot(uint64_t epoch, std::unique_ptr<Dataset> competitors,
           std::vector<uint64_t> competitor_ids,
           std::unique_ptr<Dataset> products,
           std::vector<uint64_t> product_ids);

  uint64_t epoch_;
  // unique_ptr keeps dataset addresses stable: the flat index holds a raw
  // `const Dataset*` into competitors_.
  std::unique_ptr<Dataset> competitors_;
  std::unique_ptr<Dataset> products_;
  std::vector<uint64_t> competitor_ids_;
  std::vector<uint64_t> product_ids_;
  std::unordered_map<uint64_t, PointId> competitor_rows_;
  std::unordered_map<uint64_t, PointId> product_rows_;
  FlatRTree index_;
  SoaBlock tail_block_;
  SteadyClock::time_point published_at_;
};

/// Publication point between the rebuilder (single writer at a time) and
/// query threads (any number of readers). `Acquire` is one shared_ptr copy
/// under a mutex; the snapshot itself is immutable, so that is the only
/// synchronization readers ever need.
class SnapshotStore {
 public:
  SnapshotStore() = default;
  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Atomically replaces the current snapshot. The epoch must strictly
  /// increase across publishes (checked).
  void Publish(std::shared_ptr<const Snapshot> snapshot);

  /// The current snapshot (never null once one is published). The caller's
  /// reference keeps the epoch alive for the duration of its query.
  std::shared_ptr<const Snapshot> Acquire() const;

  /// Epoch of the current snapshot, 0 before the first publish.
  uint64_t epoch() const;

 private:
  mutable Mutex mu_ SKYUP_ACQUIRED_AFTER(lock_order::kTableSub)
      SKYUP_ACQUIRED_BEFORE(lock_order::kObsRegistry);
  std::shared_ptr<const Snapshot> current_ SKYUP_GUARDED_BY(mu_);
};

}  // namespace skyup

#endif  // SKYUP_SERVE_SNAPSHOT_H_
