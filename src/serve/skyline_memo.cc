#include "serve/skyline_memo.h"

#include <cstring>

#include "util/logging.h"

namespace skyup {

namespace {

// splitmix64 finalizer: the bucket-key mixer. Only distribution quality
// matters here — collisions are resolved by exact compare.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Canonicalized box key: truncate the low 32 mantissa bits of each
// coordinate (relative quantization, ~1e-7, range-independent and with no
// float->int overflow hazard) so near-identical probe points land in the
// same bucket. +0.0/-0.0 collapse to one cell explicitly; IEEE comparisons
// cannot distinguish them, and entries compare with `==` anyway.
uint64_t QuantizeCoord(double v) {
  if (v == 0.0) return 0;  // lint: float-eq-ok
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits & ~0xffffffffull;
}

constexpr size_t kMaxBucketEntries = 64;

}  // namespace

SkylineMemo::SkylineMemo(size_t dims, size_t max_bytes)
    : dims_(dims),
      max_bytes_(max_bytes),
      shard_budget_(max_bytes / kShards + 1) {
  SKYUP_CHECK(dims >= 1) << "memo dims must be positive";
  SKYUP_CHECK(max_bytes >= 1) << "memo byte budget must be positive";
}

uint64_t SkylineMemo::KeyOf(const double* t) const {
  uint64_t h = 0x51ab2ea7315309ddull;
  for (size_t d = 0; d < dims_; ++d) {
    h = Mix(h ^ QuantizeCoord(t[d]));
  }
  return h;
}

size_t SkylineMemo::EntryBytes(const Entry& e) {
  return sizeof(Entry) + e.t.capacity() * sizeof(double) +
         e.rows.capacity() * sizeof(PointId);
}

bool SkylineMemo::Lookup(uint64_t epoch, const double* t,
                         uint64_t erased_indexed, std::vector<PointId>* rows) {
  const uint64_t key = KeyOf(t);
  Shard& shard = shards_[key % kShards];
  MutexLock lock(shard.mu);
  auto it = shard.buckets.find(key);
  if (it == shard.buckets.end()) return false;
  for (const Entry& e : it->second.entries) {
    if (e.epoch != epoch || e.erased_indexed != erased_indexed) continue;
    bool same = true;
    for (size_t d = 0; d < dims_ && same; ++d) {
      same = e.t[d] == t[d];  // lint: float-eq-ok
    }
    if (!same) continue;
    rows->assign(e.rows.begin(), e.rows.end());
    return true;
  }
  return false;
}

void SkylineMemo::Store(uint64_t epoch, const double* t,
                        uint64_t erased_indexed,
                        const std::vector<PointId>& rows) {
  const uint64_t key = KeyOf(t);
  Shard& shard = shards_[key % kShards];
  Entry entry;
  entry.epoch = epoch;
  entry.erased_indexed = erased_indexed;
  entry.t.assign(t, t + dims_);
  entry.rows = rows;
  const size_t entry_bytes = EntryBytes(entry);

  MutexLock lock(shard.mu);
  auto [it, created] = shard.buckets.try_emplace(key);
  if (created) shard.fifo.push_back(key);
  Bucket& bucket = it->second;
  if (bucket.entries.size() >= kMaxBucketEntries) {
    // Pathological pileup in one cell (adversarially aligned probes):
    // bound the linear lookup scan by dropping the oldest entry.
    shard.bytes -= EntryBytes(bucket.entries.front());
    bucket.entries.erase(bucket.entries.begin());
    ++shard.evictions;
  }
  bucket.entries.push_back(std::move(entry));
  shard.bytes += entry_bytes;
  if (shard.bytes > shard_budget_) EvictLocked(&shard);
}

void SkylineMemo::EvictLocked(Shard* shard) {
  while (shard->bytes > shard_budget_ && shard->fifo_head < shard->fifo.size()) {
    const uint64_t victim = shard->fifo[shard->fifo_head++];
    auto it = shard->buckets.find(victim);
    if (it == shard->buckets.end()) continue;
    for (const Entry& e : it->second.entries) {
      shard->bytes -= EntryBytes(e);
      ++shard->evictions;
    }
    shard->buckets.erase(it);
  }
  if (shard->fifo_head == shard->fifo.size()) {
    shard->fifo.clear();
    shard->fifo_head = 0;
  }
}

void SkylineMemo::OnPublish() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.buckets.clear();
    shard.fifo.clear();
    shard.fifo_head = 0;
    shard.bytes = 0;
  }
}

size_t SkylineMemo::entry_count() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [key, bucket] : shard.buckets) {
      n += bucket.entries.size();
    }
  }
  return n;
}

size_t SkylineMemo::bytes_used() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    n += shard.bytes;
  }
  return n;
}

uint64_t SkylineMemo::evictions() const {
  uint64_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    n += shard.evictions;
  }
  return n;
}

}  // namespace skyup
