#include "serve/serve_stats.h"

namespace skyup {

void AddServeStatsMetrics(const ServeStats& stats,
                          MetricsRegistry* registry) {
  // Tripwire (the ExecStats pattern): a new ServeStats counter changes the
  // struct size and breaks this assert until it gets registered below.
  static_assert(sizeof(ServeStats) == 9 * sizeof(uint64_t),
                "ServeStats gained/lost a counter: register it here");
  auto add = [registry](const char* name, const char* help, uint64_t value) {
    registry->AddCounter(name, help)->Increment(value);
  };
  add("skyup_serve_queries_executed_total",
      "serve queries that ran to completion", stats.queries_executed);
  add("skyup_serve_queries_rejected_total",
      "serve queries rejected by admission control",
      stats.queries_rejected);
  add("skyup_serve_queries_timed_out_total",
      "serve queries whose deadline fired", stats.queries_timed_out);
  add("skyup_serve_updates_applied_total",
      "inserts/erases accepted into the delta log", stats.updates_applied);
  add("skyup_serve_updates_rejected_total",
      "invalid updates rejected (unknown id, bad arity)",
      stats.updates_rejected);
  add("skyup_serve_rebuilds_published_total",
      "snapshots published by the rebuilder", stats.rebuilds_published);
  add("skyup_serve_delta_ops_scanned_total",
      "delta ops folded into per-query overlays", stats.delta_ops_scanned);
  add("skyup_serve_erase_fallback_scans_total",
      "index probes invalidated by a competitor erase (linear rescan)",
      stats.erase_fallback_scans);
  add("skyup_serve_candidates_evaluated_total",
      "Algorithm-1 evaluations across serve queries",
      stats.candidates_evaluated);
}

}  // namespace skyup
