#include "serve/serve_stats.h"

namespace skyup {

void AddServeStatsMetrics(const ServeStats& stats,
                          MetricsRegistry* registry) {
  // Tripwire (the ExecStats pattern): a new ServeStats counter changes the
  // struct size and breaks this assert until it gets registered below.
  static_assert(sizeof(ServeStats) == 29 * sizeof(uint64_t),
                "ServeStats gained/lost a counter: register it here");
  auto add = [registry](const char* name, const char* help, uint64_t value) {
    registry->AddCounter(name, help)->Increment(value);
  };
  auto echo = [registry](const char* name, const char* help,
                         uint64_t value) {
    registry->AddGauge(name, help)->Set(static_cast<double>(value));
  };
  add("skyup_serve_queries_executed_total",
      "serve queries that ran to completion", stats.queries_executed);
  add("skyup_serve_queries_rejected_total",
      "serve queries rejected by admission control",
      stats.queries_rejected);
  add("skyup_serve_queries_timed_out_total",
      "serve queries whose deadline fired", stats.queries_timed_out);
  add("skyup_serve_updates_applied_total",
      "inserts/erases accepted into the delta log", stats.updates_applied);
  add("skyup_serve_updates_rejected_total",
      "invalid updates rejected (unknown id, bad arity)",
      stats.updates_rejected);
  add("skyup_serve_rebuilds_published_total",
      "major compactions published by the rebuilder",
      stats.rebuilds_published);
  add("skyup_serve_patches_published_total",
      "incremental snapshot patches published by the rebuilder",
      stats.patches_published);
  add("skyup_serve_delta_ops_scanned_total",
      "delta ops folded into per-query overlays", stats.delta_ops_scanned);
  add("skyup_serve_erase_fallback_scans_total",
      "index probes invalidated by a competitor erase (linear rescan)",
      stats.erase_fallback_scans);
  add("skyup_serve_candidates_evaluated_total",
      "Algorithm-1 evaluations across serve queries",
      stats.candidates_evaluated);
  add("skyup_serve_candidates_pruned_total",
      "candidates skipped by the sound box lower bound",
      stats.candidates_pruned);
  add("skyup_serve_prune_disabled_queries_total",
      "queries whose prune was disabled by a face-touching pending erase",
      stats.prune_disabled_queries);
  add("skyup_serve_cache_hits_total",
      "candidates answered from the upgrade-result cache",
      stats.cache_hits);
  add("skyup_serve_cache_misses_total",
      "candidates recomputed and stored in the upgrade-result cache",
      stats.cache_misses);
  add("skyup_serve_memo_hits_total",
      "index probes answered from the epoch-scoped skyline memo",
      stats.memo_hits);
  add("skyup_serve_memo_misses_total",
      "index probes run and stored in the skyline memo",
      stats.memo_misses);
  add("skyup_serve_batches_executed_total",
      "grouped executions drained from the queue (singletons included)",
      stats.batches_executed);
  add("skyup_serve_batched_queries_total",
      "queries executed inside a group of two or more",
      stats.batched_queries);
  add("skyup_serve_shard_queries_total",
      "queries served by the sharded scatter-gather engine",
      stats.shard_queries);
  add("skyup_serve_shard_fanout_total",
      "per-shard probes issued by sharded queries (fanout x shard_queries)",
      stats.shard_fanout);
  echo("skyup_serve_rebuild_threshold_ops",
       "configured backlog size that forces a publish",
       stats.rebuild_threshold_ops);
  echo("skyup_serve_publish_min_backlog",
       "configured minimum backlog for the age-triggered publish",
       stats.publish_min_backlog);
  echo("skyup_serve_publish_min_interval_ms",
       "configured minimum milliseconds between publishes",
       stats.publish_min_interval_ms);
  echo("skyup_serve_compact_tombstone_pct",
       "configured tombstone %% that escalates a patch to a compaction",
       stats.compact_tombstone_pct);
  echo("skyup_serve_compact_tail_pct",
       "configured unindexed-tail %% that escalates a patch to a compaction",
       stats.compact_tail_pct);
  echo("skyup_serve_batch_max_queries",
       "configured grouped-execution width cap (1 = per-query execution)",
       stats.batch_max_queries);
  echo("skyup_serve_batch_wait_us",
       "configured max microseconds a worker waits to fill a batch",
       stats.batch_wait_us);
  echo("skyup_serve_memo_cache_mb",
       "configured skyline-memo byte budget in MB (0 = memo disabled)",
       stats.memo_cache_mb);
  echo("skyup_serve_shards",
       "configured shard count (0 = single-table serving)", stats.shards);
}

}  // namespace skyup
