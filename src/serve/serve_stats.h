#ifndef SKYUP_SERVE_SERVE_STATS_H_
#define SKYUP_SERVE_SERVE_STATS_H_

// Serving-layer work counters — the `ExecStats` of src/serve/: how many
// queries ran/were rejected/timed out, how many updates were applied, how
// much delta-overlay work queries paid, and how often rebuilds published.
// Aggregated with the same merge-tripwire convention as `ExecStats` and
// `PhaseTimings` (tools/lint.py cross-checks fields vs MergeFrom lines vs
// the static_assert multiplier).

#include <cstdint>

#include "obs/metrics.h"

namespace skyup {

struct ServeStats {
  uint64_t queries_executed = 0;    ///< queries that ran to completion
  uint64_t queries_rejected = 0;    ///< admission-control rejections
  uint64_t queries_timed_out = 0;   ///< deadline fired (queued or running)
  uint64_t updates_applied = 0;     ///< inserts/erases accepted into the log
  uint64_t updates_rejected = 0;    ///< invalid updates (bad id, bad arity)
  uint64_t rebuilds_published = 0;  ///< snapshots published by the rebuilder
  uint64_t delta_ops_scanned = 0;   ///< delta ops folded into query overlays
  uint64_t erase_fallback_scans = 0;  ///< probes invalidated by a P-erase
  uint64_t candidates_evaluated = 0;  ///< Algorithm-1 calls across queries

  /// Field-wise sum. Same tripwire as ExecStats: adding a counter changes
  /// the struct size, which trips the assert until the new field is summed
  /// below — and tools/lint.py cross-checks all three.
  ServeStats& MergeFrom(const ServeStats& other) {
    static_assert(sizeof(ServeStats) == 9 * sizeof(uint64_t),
                  "ServeStats gained/lost a counter: update MergeFrom");
    auto add = [](uint64_t* into, uint64_t delta) { *into += delta; };
    add(&queries_executed, other.queries_executed);
    add(&queries_rejected, other.queries_rejected);
    add(&queries_timed_out, other.queries_timed_out);
    add(&updates_applied, other.updates_applied);
    add(&updates_rejected, other.updates_rejected);
    add(&rebuilds_published, other.rebuilds_published);
    add(&delta_ops_scanned, other.delta_ops_scanned);
    add(&erase_fallback_scans, other.erase_fallback_scans);
    add(&candidates_evaluated, other.candidates_evaluated);
    return *this;
  }
};

/// Registers every ServeStats counter as `skyup_serve_<field>_total`.
void AddServeStatsMetrics(const ServeStats& stats, MetricsRegistry* registry);

}  // namespace skyup

#endif  // SKYUP_SERVE_SERVE_STATS_H_
