#ifndef SKYUP_SERVE_SERVE_STATS_H_
#define SKYUP_SERVE_SERVE_STATS_H_

// Serving-layer work counters — the `ExecStats` of src/serve/: how many
// queries ran/were rejected/timed out, how many updates were applied, how
// much delta-overlay work queries paid, and how often rebuilds published.
// Aggregated with the same merge-tripwire convention as `ExecStats` and
// `PhaseTimings` (tools/lint.py cross-checks fields vs MergeFrom lines vs
// the static_assert multiplier).

#include <cstdint>

#include "obs/metrics.h"

namespace skyup {

struct ServeStats {
  uint64_t queries_executed = 0;    ///< queries that ran to completion
  uint64_t queries_rejected = 0;    ///< admission-control rejections
  uint64_t queries_timed_out = 0;   ///< deadline fired (queued or running)
  uint64_t updates_applied = 0;     ///< inserts/erases accepted into the log
  uint64_t updates_rejected = 0;    ///< invalid updates (bad id, bad arity)
  uint64_t rebuilds_published = 0;  ///< major compactions (full STR rebuild)
  uint64_t patches_published = 0;   ///< incremental patch publishes
  uint64_t delta_ops_scanned = 0;   ///< delta ops folded into query overlays
  uint64_t erase_fallback_scans = 0;  ///< probes invalidated by a P-erase
  uint64_t candidates_evaluated = 0;  ///< Algorithm-1 calls across queries
  uint64_t candidates_pruned = 0;     ///< skipped via the sound box bound
  uint64_t prune_disabled_queries = 0;  ///< pending erase touched a box face
  uint64_t cache_hits = 0;    ///< candidates served from the upgrade cache
  uint64_t cache_misses = 0;  ///< candidates recomputed (and re-cached)
  uint64_t memo_hits = 0;     ///< index probes served from the skyline memo
  uint64_t memo_misses = 0;   ///< index probes run (and memoized)
  uint64_t batches_executed = 0;  ///< grouped executions (incl. singletons)
  uint64_t batched_queries = 0;   ///< queries that ran inside a group of >=2
  uint64_t shard_queries = 0;     ///< queries served by scatter-gather
  uint64_t shard_fanout = 0;      ///< shard probes issued by sharded queries

  /// Config echoes, not counters: the server stamps its effective policy
  /// here once at creation so a stats dump documents the knobs it ran
  /// under. Query-local stats leave them zero, so the MergeFrom sum is a
  /// no-op for them.
  uint64_t rebuild_threshold_ops = 0;     ///< publish at this backlog
  uint64_t publish_min_backlog = 0;       ///< age trigger needs this many ops
  uint64_t publish_min_interval_ms = 0;   ///< publish rate cap (hysteresis)
  uint64_t compact_tombstone_pct = 0;     ///< major when tombstones reach %
  uint64_t compact_tail_pct = 0;          ///< major when tail reaches %
  uint64_t batch_max_queries = 0;         ///< grouped-execution width cap
  uint64_t batch_wait_us = 0;             ///< max batch-fill wait
  uint64_t memo_cache_mb = 0;             ///< skyline-memo byte budget (MB)
  uint64_t shards = 0;                    ///< shard count (0 = unsharded)

  /// Field-wise sum. Same tripwire as ExecStats: adding a counter changes
  /// the struct size, which trips the assert until the new field is summed
  /// below — and tools/lint.py cross-checks all three.
  ServeStats& MergeFrom(const ServeStats& other) {
    static_assert(sizeof(ServeStats) == 29 * sizeof(uint64_t),
                  "ServeStats gained/lost a counter: update MergeFrom");
    auto add = [](uint64_t* into, uint64_t delta) { *into += delta; };
    add(&queries_executed, other.queries_executed);
    add(&queries_rejected, other.queries_rejected);
    add(&queries_timed_out, other.queries_timed_out);
    add(&updates_applied, other.updates_applied);
    add(&updates_rejected, other.updates_rejected);
    add(&rebuilds_published, other.rebuilds_published);
    add(&patches_published, other.patches_published);
    add(&delta_ops_scanned, other.delta_ops_scanned);
    add(&erase_fallback_scans, other.erase_fallback_scans);
    add(&candidates_evaluated, other.candidates_evaluated);
    add(&candidates_pruned, other.candidates_pruned);
    add(&prune_disabled_queries, other.prune_disabled_queries);
    add(&cache_hits, other.cache_hits);
    add(&cache_misses, other.cache_misses);
    add(&memo_hits, other.memo_hits);
    add(&memo_misses, other.memo_misses);
    add(&batches_executed, other.batches_executed);
    add(&batched_queries, other.batched_queries);
    add(&shard_queries, other.shard_queries);
    add(&shard_fanout, other.shard_fanout);
    add(&rebuild_threshold_ops, other.rebuild_threshold_ops);
    add(&publish_min_backlog, other.publish_min_backlog);
    add(&publish_min_interval_ms, other.publish_min_interval_ms);
    add(&compact_tombstone_pct, other.compact_tombstone_pct);
    add(&compact_tail_pct, other.compact_tail_pct);
    add(&batch_max_queries, other.batch_max_queries);
    add(&batch_wait_us, other.batch_wait_us);
    add(&memo_cache_mb, other.memo_cache_mb);
    add(&shards, other.shards);
    return *this;
  }
};

/// Registers every ServeStats counter as `skyup_serve_<field>_total`.
void AddServeStatsMetrics(const ServeStats& stats, MetricsRegistry* registry);

}  // namespace skyup

#endif  // SKYUP_SERVE_SERVE_STATS_H_
