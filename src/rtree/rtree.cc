#include "rtree/rtree.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "util/logging.h"

namespace skyup {

namespace {

// Guttman's quadratic PickSeeds/split over abstract entries. `Entry` is
// moved between vectors; `mbr_of` maps an entry to its bounding box.
template <typename Entry, typename MbrOf>
void QuadraticSplit(std::vector<Entry>* entries, MbrOf mbr_of,
                    size_t min_entries, std::vector<Entry>* group1,
                    std::vector<Entry>* group2) {
  const size_t n = entries->size();
  SKYUP_CHECK(n >= 2);

  // PickSeeds: the pair wasting the most area if grouped together.
  size_t seed1 = 0, seed2 = 1;
  double worst_waste = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    const Mbr bi = mbr_of((*entries)[i]);
    for (size_t j = i + 1; j < n; ++j) {
      const Mbr bj = mbr_of((*entries)[j]);
      Mbr merged = bi;
      merged.Expand(bj);
      const double waste = merged.Area() - bi.Area() - bj.Area();
      if (waste > worst_waste) {
        worst_waste = waste;
        seed1 = i;
        seed2 = j;
      }
    }
  }

  Mbr box1 = mbr_of((*entries)[seed1]);
  Mbr box2 = mbr_of((*entries)[seed2]);
  group1->push_back(std::move((*entries)[seed1]));
  group2->push_back(std::move((*entries)[seed2]));

  std::vector<Entry> rest;
  rest.reserve(n - 2);
  for (size_t i = 0; i < n; ++i) {
    if (i != seed1 && i != seed2) rest.push_back(std::move((*entries)[i]));
  }
  entries->clear();

  // PickNext: repeatedly assign the entry with the strongest preference.
  while (!rest.empty()) {
    // Min-fill guarantee: if one group must take everything left, do so.
    if (group1->size() + rest.size() == min_entries) {
      for (auto& e : rest) {
        box1.Expand(mbr_of(e));
        group1->push_back(std::move(e));
      }
      rest.clear();
      break;
    }
    if (group2->size() + rest.size() == min_entries) {
      for (auto& e : rest) {
        box2.Expand(mbr_of(e));
        group2->push_back(std::move(e));
      }
      rest.clear();
      break;
    }

    size_t best = 0;
    double best_pref = -1.0;
    double best_d1 = 0.0, best_d2 = 0.0;
    for (size_t i = 0; i < rest.size(); ++i) {
      const Mbr b = mbr_of(rest[i]);
      const double d1 = box1.Enlargement(b);
      const double d2 = box2.Enlargement(b);
      const double pref = std::fabs(d1 - d2);
      if (pref > best_pref) {
        best_pref = pref;
        best = i;
        best_d1 = d1;
        best_d2 = d2;
      }
    }

    Entry picked = std::move(rest[best]);
    rest.erase(rest.begin() + static_cast<ptrdiff_t>(best));
    const Mbr b = mbr_of(picked);
    bool to_first;
    if (best_d1 != best_d2) {
      to_first = best_d1 < best_d2;
    } else if (box1.Area() != box2.Area()) {
      to_first = box1.Area() < box2.Area();
    } else {
      to_first = group1->size() <= group2->size();
    }
    if (to_first) {
      box1.Expand(b);
      group1->push_back(std::move(picked));
    } else {
      box2.Expand(b);
      group2->push_back(std::move(picked));
    }
  }
}

// R*-tree split (Beckmann et al.): ChooseSplitAxis minimizes the sum of
// margins over all legal distributions per axis; ChooseSplitIndex then
// minimizes overlap (ties: total area) along the chosen axis. Entries are
// considered in two sort orders per axis (by lower and by upper bound);
// this implementation follows the original except that forced reinsertion
// is omitted — the library bulk-loads its big trees with STR, so dynamic
// splits are a secondary path where the split quality alone suffices.
template <typename Entry, typename MbrOf>
void RStarSplit(std::vector<Entry>* entries, MbrOf mbr_of, size_t dims,
                size_t min_entries, std::vector<Entry>* group1,
                std::vector<Entry>* group2) {
  const size_t n = entries->size();
  SKYUP_CHECK(n >= 2 && min_entries >= 1 && 2 * min_entries <= n);
  const size_t distributions = n - 2 * min_entries + 1;

  // Prefix/suffix boxes for the current order; reused per (axis, order).
  std::vector<Mbr> prefix(n, Mbr(dims));
  std::vector<Mbr> suffix(n, Mbr(dims));
  auto evaluate_order = [&](double* margin_sum, double* best_overlap,
                            double* best_area, size_t* best_split) {
    prefix[0] = mbr_of((*entries)[0]);
    for (size_t i = 1; i < n; ++i) {
      prefix[i] = prefix[i - 1];
      prefix[i].Expand(mbr_of((*entries)[i]));
    }
    suffix[n - 1] = mbr_of((*entries)[n - 1]);
    for (size_t i = n - 1; i-- > 0;) {
      suffix[i] = suffix[i + 1];
      suffix[i].Expand(mbr_of((*entries)[i]));
    }
    *margin_sum = 0.0;
    *best_overlap = std::numeric_limits<double>::infinity();
    *best_area = std::numeric_limits<double>::infinity();
    *best_split = min_entries;
    for (size_t d = 0; d < distributions; ++d) {
      const size_t split = min_entries + d;  // first group = [0, split)
      const Mbr& a = prefix[split - 1];
      const Mbr& b = suffix[split];
      *margin_sum += a.Margin() + b.Margin();
      const double overlap = a.OverlapArea(b);
      const double area = a.Area() + b.Area();
      if (overlap < *best_overlap ||
          (overlap == *best_overlap && area < *best_area)) {
        *best_overlap = overlap;
        *best_area = area;
        *best_split = split;
      }
    }
  };

  double best_axis_margin = std::numeric_limits<double>::infinity();
  size_t best_axis = 0;
  bool best_by_upper = false;
  for (size_t axis = 0; axis < dims; ++axis) {
    for (bool by_upper : {false, true}) {
      std::sort(entries->begin(), entries->end(),
                [&](const Entry& x, const Entry& y) {
                  const Mbr bx = mbr_of(x);
                  const Mbr by = mbr_of(y);
                  const double vx = by_upper ? bx.max(axis) : bx.min(axis);
                  const double vy = by_upper ? by.max(axis) : by.min(axis);
                  return vx < vy;
                });
      double margin_sum, overlap, area;
      size_t split;
      evaluate_order(&margin_sum, &overlap, &area, &split);
      if (margin_sum < best_axis_margin) {
        best_axis_margin = margin_sum;
        best_axis = axis;
        best_by_upper = by_upper;
      }
    }
  }

  // Re-sort along the winning (axis, order) and pick the best distribution.
  std::sort(entries->begin(), entries->end(),
            [&](const Entry& x, const Entry& y) {
              const Mbr bx = mbr_of(x);
              const Mbr by = mbr_of(y);
              const double vx =
                  best_by_upper ? bx.max(best_axis) : bx.min(best_axis);
              const double vy =
                  best_by_upper ? by.max(best_axis) : by.min(best_axis);
              return vx < vy;
            });
  double margin_sum, overlap, area;
  size_t split;
  evaluate_order(&margin_sum, &overlap, &area, &split);

  group1->reserve(split);
  group2->reserve(n - split);
  for (size_t i = 0; i < n; ++i) {
    if (i < split) {
      group1->push_back(std::move((*entries)[i]));
    } else {
      group2->push_back(std::move((*entries)[i]));
    }
  }
  entries->clear();
}

// Dispatches to the configured split heuristic.
template <typename Entry, typename MbrOf>
void SplitEntries(SplitStrategy strategy, std::vector<Entry>* entries,
                  MbrOf mbr_of, size_t dims, size_t min_entries,
                  std::vector<Entry>* group1, std::vector<Entry>* group2) {
  switch (strategy) {
    case SplitStrategy::kQuadratic:
      QuadraticSplit(entries, mbr_of, min_entries, group1, group2);
      return;
    case SplitStrategy::kRStar:
      RStarSplit(entries, mbr_of, dims, min_entries, group1, group2);
      return;
  }
  SKYUP_CHECK(false) << "unknown split strategy";
}

}  // namespace

RTree::RTree(const Dataset* dataset, Options options)
    : dataset_(dataset), options_(options) {
  SKYUP_CHECK(dataset_ != nullptr);
  SKYUP_CHECK(options_.max_entries >= 2)
      << "R-tree fanout must be at least 2";
  SKYUP_CHECK(dataset_->dims() <= kMaxDims);
  if (options_.min_entries == 0) {
    options_.min_entries = std::max<size_t>(1, options_.max_entries * 2 / 5);
  }
  SKYUP_CHECK(options_.min_entries <= options_.max_entries / 2)
      << "min_entries must be at most half of max_entries";
  root_ = std::make_unique<RTreeNode>();
  root_->mbr = Mbr(dataset_->dims());
  root_->level = 0;
}

size_t RTree::min_entries() const { return options_.min_entries; }

void RTree::Insert(PointId id) {
  SKYUP_CHECK(id >= 0 && static_cast<size_t>(id) < dataset_->size())
      << "point id " << id << " out of range";
  const double* coords = dataset_->data(id);
  std::unique_ptr<RTreeNode> sibling =
      InsertRecursive(root_.get(), id, coords);
  if (sibling != nullptr) {
    // Root split: grow the tree by one level.
    auto new_root = std::make_unique<RTreeNode>();
    new_root->level = root_->level + 1;
    new_root->mbr = root_->mbr;
    new_root->mbr.Expand(sibling->mbr);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(sibling));
    root_ = std::move(new_root);
  }
  ++size_;
}

std::unique_ptr<RTreeNode> RTree::InsertRecursive(RTreeNode* node, PointId id,
                                                  const double* coords) {
  node->mbr.Expand(coords);
  if (node->is_leaf()) {
    node->points.push_back(id);
    if (node->points.size() > options_.max_entries) return SplitLeaf(node);
    return nullptr;
  }

  const Mbr point_box = Mbr::FromPoint(coords, dataset_->dims());
  RTreeNode* child = ChooseSubtree(node, point_box);
  std::unique_ptr<RTreeNode> split = InsertRecursive(child, id, coords);
  if (split != nullptr) {
    node->children.push_back(std::move(split));
    if (node->children.size() > options_.max_entries) {
      return SplitInternal(node);
    }
  }
  return nullptr;
}

bool RTree::Delete(PointId id) {
  if (id < 0 || static_cast<size_t>(id) >= dataset_->size()) return false;
  const double* coords = dataset_->data(id);
  std::vector<PointId> orphans;
  if (!DeleteRecursive(root_.get(), id, coords, &orphans)) return false;
  --size_;

  // Shrink the tree while the root is an internal node with one child.
  while (!root_->is_leaf() && root_->children.size() == 1) {
    root_ = std::move(root_->children.front());
  }

  // Reinsert points stranded by dissolved nodes. Insert() counts them as
  // new, so compensate.
  for (PointId orphan : orphans) {
    --size_;
    Insert(orphan);
  }
  return true;
}

bool RTree::DeleteRecursive(RTreeNode* node, PointId id, const double* coords,
                            std::vector<PointId>* orphans) {
  if (node->is_leaf()) {
    auto it = std::find(node->points.begin(), node->points.end(), id);
    if (it == node->points.end()) return false;
    node->points.erase(it);
    RecomputeMbr(node);
    return true;
  }

  for (size_t i = 0; i < node->children.size(); ++i) {
    RTreeNode* child = node->children[i].get();
    if (!child->mbr.Contains(coords)) continue;
    if (!DeleteRecursive(child, id, coords, orphans)) continue;

    if (child->entry_count() < options_.min_entries) {
      // Condense: dissolve the child, stranding its points for reinsertion.
      std::vector<const RTreeNode*> stack = {child};
      while (!stack.empty()) {
        const RTreeNode* m = stack.back();
        stack.pop_back();
        if (m->is_leaf()) {
          orphans->insert(orphans->end(), m->points.begin(),
                          m->points.end());
        } else {
          for (const auto& grandchild : m->children) {
            stack.push_back(grandchild.get());
          }
        }
      }
      node->children.erase(node->children.begin() +
                           static_cast<ptrdiff_t>(i));
    }
    RecomputeMbr(node);
    return true;
  }
  return false;
}

RTreeNode* RTree::ChooseSubtree(RTreeNode* node, const Mbr& box) const {
  SKYUP_DCHECK(!node->children.empty());
  RTreeNode* best = node->children[0].get();
  double best_enlargement = best->mbr.Enlargement(box);
  double best_area = best->mbr.Area();
  for (size_t i = 1; i < node->children.size(); ++i) {
    RTreeNode* cand = node->children[i].get();
    const double enlargement = cand->mbr.Enlargement(box);
    const double area = cand->mbr.Area();
    if (enlargement < best_enlargement ||
        (enlargement == best_enlargement && area < best_area)) {
      best = cand;
      best_enlargement = enlargement;
      best_area = area;
    }
  }
  return best;
}

std::unique_ptr<RTreeNode> RTree::SplitLeaf(RTreeNode* node) {
  const Dataset* data = dataset_;
  const size_t dims = data->dims();
  auto mbr_of = [data, dims](PointId id) {
    return Mbr::FromPoint(data->data(id), dims);
  };
  std::vector<PointId> entries = std::move(node->points);
  node->points.clear();
  std::vector<PointId> group1, group2;
  SplitEntries(options_.split, &entries, mbr_of, dims, min_entries(),
               &group1, &group2);

  node->points = std::move(group1);
  RecomputeMbr(node);

  auto sibling = std::make_unique<RTreeNode>();
  sibling->level = 0;
  sibling->points = std::move(group2);
  RecomputeMbr(sibling.get());
  return sibling;
}

std::unique_ptr<RTreeNode> RTree::SplitInternal(RTreeNode* node) {
  auto mbr_of = [](const std::unique_ptr<RTreeNode>& child) {
    return child->mbr;
  };
  std::vector<std::unique_ptr<RTreeNode>> entries = std::move(node->children);
  node->children.clear();
  std::vector<std::unique_ptr<RTreeNode>> group1, group2;
  SplitEntries(options_.split, &entries, mbr_of, dataset_->dims(),
               min_entries(), &group1, &group2);

  node->children = std::move(group1);
  RecomputeMbr(node);

  auto sibling = std::make_unique<RTreeNode>();
  sibling->level = node->level;
  sibling->children = std::move(group2);
  RecomputeMbr(sibling.get());
  return sibling;
}

void RTree::RecomputeMbr(RTreeNode* node) const {
  node->mbr = Mbr(dataset_->dims());
  if (node->is_leaf()) {
    for (PointId id : node->points) node->mbr.Expand(dataset_->data(id));
  } else {
    for (const auto& child : node->children) node->mbr.Expand(child->mbr);
  }
}

void RTree::RangeQuery(const Mbr& box, std::vector<PointId>* out) const {
  SKYUP_CHECK(out != nullptr);
  if (empty()) return;
  std::vector<const RTreeNode*> stack = {root_.get()};
  while (!stack.empty()) {
    const RTreeNode* node = stack.back();
    stack.pop_back();
    if (!node->mbr.Intersects(box)) continue;
    if (node->is_leaf()) {
      for (PointId id : node->points) {
        if (box.Contains(dataset_->data(id))) out->push_back(id);
      }
    } else {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
}

size_t RTree::CountRange(const Mbr& box) const {
  if (empty()) return 0;
  size_t count = 0;
  std::vector<const RTreeNode*> stack = {root_.get()};
  while (!stack.empty()) {
    const RTreeNode* node = stack.back();
    stack.pop_back();
    if (!node->mbr.Intersects(box)) continue;
    if (box.ContainsBox(node->mbr)) {
      // Whole subtree inside the box: count without descending to points.
      std::vector<const RTreeNode*> inner = {node};
      while (!inner.empty()) {
        const RTreeNode* m = inner.back();
        inner.pop_back();
        if (m->is_leaf()) {
          count += m->points.size();
        } else {
          for (const auto& child : m->children) inner.push_back(child.get());
        }
      }
      continue;
    }
    if (node->is_leaf()) {
      for (PointId id : node->points) {
        if (box.Contains(dataset_->data(id))) ++count;
      }
    } else {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  return count;
}

namespace {

struct ValidateContext {
  const Dataset* dataset;
  size_t max_entries;
  size_t min_entries;
  size_t point_count = 0;
  int leaf_depth = -1;  // levels are uniform; leaves must all be level 0
};

Status ValidateNode(const RTreeNode* node, bool is_root,
                    ValidateContext* ctx) {
  const size_t count = node->entry_count();
  if (!is_root && (count < ctx->min_entries || count > ctx->max_entries)) {
    return Status::Internal("node at level " + std::to_string(node->level) +
                            " has " + std::to_string(count) +
                            " entries, outside [" +
                            std::to_string(ctx->min_entries) + ", " +
                            std::to_string(ctx->max_entries) + "]");
  }
  if (is_root && count > ctx->max_entries) {
    return Status::Internal("root overflows with " + std::to_string(count) +
                            " entries");
  }

  Mbr expected(ctx->dataset->dims());
  if (node->is_leaf()) {
    if (!node->children.empty()) {
      return Status::Internal("leaf node has children");
    }
    for (PointId id : node->points) {
      if (id < 0 || static_cast<size_t>(id) >= ctx->dataset->size()) {
        return Status::Internal("leaf references invalid point id " +
                                std::to_string(id));
      }
      expected.Expand(ctx->dataset->data(id));
    }
    ctx->point_count += node->points.size();
  } else {
    if (!node->points.empty()) {
      return Status::Internal("internal node holds points");
    }
    for (const auto& child : node->children) {
      if (child->level != node->level - 1) {
        return Status::Internal("child level " +
                                std::to_string(child->level) +
                                " under node level " +
                                std::to_string(node->level));
      }
      SKYUP_RETURN_IF_ERROR(ValidateNode(child.get(), false, ctx));
      expected.Expand(child->mbr);
    }
  }

  if (count > 0 && !(node->mbr == expected)) {
    return Status::Internal("MBR mismatch at level " +
                            std::to_string(node->level) + ": stored " +
                            node->mbr.ToString() + ", expected " +
                            expected.ToString());
  }
  return Status::OK();
}

}  // namespace

Status RTree::Validate() const {
  ValidateContext ctx;
  ctx.dataset = dataset_;
  ctx.max_entries = options_.max_entries;
  ctx.min_entries = options_.min_entries;
  SKYUP_RETURN_IF_ERROR(ValidateNode(root_.get(), /*is_root=*/true, &ctx));
  if (ctx.point_count != size_) {
    return Status::Internal("tree reports size " + std::to_string(size_) +
                            " but holds " + std::to_string(ctx.point_count) +
                            " points");
  }
  return Status::OK();
}

RTreeStats RTree::Stats() const {
  RTreeStats stats;
  stats.point_count = size_;
  stats.height = static_cast<size_t>(root_->level) + 1;
  std::vector<const RTreeNode*> stack = {root_.get()};
  while (!stack.empty()) {
    const RTreeNode* node = stack.back();
    stack.pop_back();
    ++stats.node_count;
    if (node->is_leaf()) {
      ++stats.leaf_count;
    } else {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  return stats;
}

}  // namespace skyup
